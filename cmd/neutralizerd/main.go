// Command neutralizerd runs a neutralizer over real UDP sockets: the
// deployable counterpart of the emulated experiments.
//
// Transport model: since the daemon cannot inject raw IP packets without
// privileges, serialized IPv4 shim packets ride inside UDP datagrams
// (IPv4-in-UDP tunneling). Peers register the inner IPv4 address they
// own, either implicitly (the daemon learns the mapping from the source
// address of inbound packets) or explicitly with a one-byte control
// frame: 0x00 ‖ IPv4(4).
//
// Data plane: because the neutralizer is stateless, the daemon scales by
// running replicas of the same core. -workers N spawns N goroutines that
// share the UDP socket, each processing packets through its own
// zero-allocation scratch. -batch M (M > 1) switches to a
// reader-plus-shard-pool pipeline: one goroutine drains up to M
// datagrams per wakeup and pushes them through an N-replica core.Pool.
//
// Usage:
//
//	neutralizerd -listen :7777 -anycast 10.200.0.1 -customers 10.10.0.0/16 -workers 4 -batch 64
//
// Flags configure the master-key root (hex; random if empty), the epoch
// length, and the optional dynamic-address pool.
//
// Observability: -metrics ADDR serves the live export surface —
// Prometheus text on /metrics, a JSON snapshot on /metrics.json, NDJSON
// frames (one per second, backpressured: slow consumers drop frames,
// the data plane never stalls) on /stream, and pprof under
// /debug/pprof/. The data-plane counters are atomic stripes: per-worker
// packet/drop/crypto-cache families from the shard pool, plus the
// neutralizer's own stats snapshot.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"netneutral"
	"netneutral/internal/core"
	"netneutral/internal/obs"
	"netneutral/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7777", "UDP listen address")
	anycastFlag := flag.String("anycast", "10.200.0.1", "anycast service address (inner IPv4)")
	customers := flag.String("customers", "10.10.0.0/16", "comma-separated customer prefixes")
	rootHex := flag.String("root", "", "32-hex-char master key root (random if empty)")
	epoch := flag.Duration("epoch", time.Hour, "master key epoch length")
	dynPool := flag.String("dynpool", "", "optional dynamic-address pool prefix (enables §3.4 QoS remedy)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats logging interval (0 disables)")
	workers := flag.Int("workers", 1, "data-plane workers (socket readers, or pool shards with -batch)")
	batch := flag.Int("batch", 1, "datagrams per pool batch (>1 enables the sharded batch pipeline)")
	batchWait := flag.Duration("batchwait", 500*time.Microsecond, "max wait to fill a batch after the first datagram")
	metrics := flag.String("metrics", "", "serve /metrics, /metrics.json, /stream and /debug/pprof on this address (\":0\" picks a port)")
	flag.Parse()

	if err := run(options{
		listen: *listen, anycast: *anycastFlag, customers: *customers,
		rootHex: *rootHex, epoch: *epoch, dynPool: *dynPool,
		statsEvery: *statsEvery, workers: *workers, batch: *batch,
		batchWait: *batchWait, metrics: *metrics,
	}); err != nil {
		log.Fatalf("neutralizerd: %v", err)
	}
}

type options struct {
	listen, anycast, customers, rootHex, dynPool string
	epoch, statsEvery, batchWait                 time.Duration
	workers, batch                               int
	metrics                                      string
}

func run(o options) error {
	anycast, err := netip.ParseAddr(o.anycast)
	if err != nil {
		return fmt.Errorf("bad -anycast: %w", err)
	}
	var prefixes []netip.Prefix
	for _, p := range strings.Split(o.customers, ",") {
		pfx, err := netip.ParsePrefix(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad -customers entry %q: %w", p, err)
		}
		prefixes = append(prefixes, pfx)
	}
	if o.workers < 1 || o.workers > 1024 {
		return fmt.Errorf("bad -workers %d", o.workers)
	}
	// Each batch slot owns a full-datagram (64 KiB) read buffer, so the
	// cap keeps the upfront allocation to at most 64 MiB.
	if o.batch < 1 || o.batch > 1024 {
		return fmt.Errorf("bad -batch %d (1..1024)", o.batch)
	}
	var root netneutral.MasterKey
	if o.rootHex == "" {
		b := make([]byte, len(root))
		if _, err := randRead(b); err != nil {
			return err
		}
		copy(root[:], b)
		log.Printf("generated master key root %s (replicas must share it)", hex.EncodeToString(root[:]))
	} else {
		b, err := hex.DecodeString(o.rootHex)
		if err != nil || len(b) != len(root) {
			return fmt.Errorf("bad -root: want %d hex bytes", len(root))
		}
		copy(root[:], b)
	}

	cfg := netneutral.NeutralizerConfig{
		Schedule: netneutral.NewKeySchedule(root, time.Now().Truncate(o.epoch), o.epoch),
		Anycast:  anycast,
		IsCustomer: func(a netip.Addr) bool {
			for _, p := range prefixes {
				if p.Contains(a) {
					return true
				}
			}
			return false
		},
	}
	if o.dynPool != "" {
		pfx, err := netip.ParsePrefix(o.dynPool)
		if err != nil {
			return fmt.Errorf("bad -dynpool: %w", err)
		}
		cfg.DynAddrPool = pfx
	}

	pc, err := net.ListenPacket("udp", o.listen)
	if err != nil {
		return err
	}
	conn, ok := pc.(*net.UDPConn)
	if !ok {
		pc.Close()
		return fmt.Errorf("listener is %T, not *net.UDPConn", pc)
	}
	defer conn.Close()

	d := &daemon{conn: conn, reg: newRegistry(), opts: o}
	mode := fmt.Sprintf("%d worker(s), per-packet", o.workers)
	if o.batch > 1 {
		mode = fmt.Sprintf("%d shard(s), batch=%d", o.workers, o.batch)
	}
	log.Printf("neutralizer listening on %s, anycast %v, customers %v (%s)",
		conn.LocalAddr(), anycast, prefixes, mode)

	// The metrics registry is created before the data plane so the pool
	// can hand each worker its atomic counter stripes up front.
	var mreg *obs.Registry
	var mln net.Listener
	if o.metrics != "" {
		mln, err = net.Listen("tcp", o.metrics)
		if err != nil {
			return fmt.Errorf("bad -metrics: %w", err)
		}
		mreg = obs.NewRegistry()
		mreg.GaugeFunc("neutralizerd_peers",
			"Inner addresses with a registered tunnel endpoint.",
			func() float64 { return float64(d.reg.len()) }, obs.Volatile())
	}

	var statsFn func() netneutral.NeutralizerStats
	done := make(chan error, o.workers)
	if o.batch > 1 {
		pool, err := netneutral.NewNeutralizerPool(netneutral.NeutralizerPoolConfig{
			Workers: o.workers, Config: cfg,
		})
		if err != nil {
			return err
		}
		defer pool.Close()
		statsFn = pool.Stats
		if mreg != nil {
			pool.Instrument(mreg)
		}
		go func() { done <- d.runBatched(pool) }()
	} else {
		neut, err := netneutral.NewNeutralizer(cfg)
		if err != nil {
			return err
		}
		statsFn = func() netneutral.NeutralizerStats { return neut.Stats().Snapshot() }
		if mreg != nil {
			core.RegisterStats(mreg, statsFn)
		}
		for i := 0; i < o.workers; i++ {
			go func() { done <- d.runPerPacket(neut) }()
		}
	}

	if mreg != nil {
		stream := obs.NewStreamer()
		stream.Register(mreg)
		go func() {
			// Wall-clock frame ticker: the daemon has no epoch barriers,
			// so /stream gets one merged snapshot per second. Publish
			// never blocks; slow subscribers lose frames, counted in
			// obs_stream_dropped_frames_total.
			for range time.Tick(time.Second) {
				if stream.Active() {
					stream.Publish(obs.MarshalFrame(mreg.Snapshot()))
				}
			}
		}()
		log.Printf("metrics listening on http://%s/metrics", mln.Addr())
		go func() {
			_ = http.Serve(mln, obs.NewHandler(obs.HandlerConfig{Source: mreg, Streamer: stream}))
		}()
	}

	if o.statsEvery > 0 {
		go func() {
			for range time.Tick(o.statsEvery) {
				s := statsFn()
				log.Printf("stats: setups=%d data=%d return=%d grants=%d drops(epoch=%d,block=%d,cust=%d,malformed=%d) peers=%d",
					s.KeySetups, s.DataForwarded, s.ReturnForwarded,
					s.GrantsStamped, s.DropStaleEpoch, s.DropBadAddrBlock,
					s.DropNotCustomer, s.DropMalformed, d.reg.len())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutting down")
		conn.Close()
	}()
	return <-done
}

// daemon bundles the socket and the inner-address registry shared by all
// transport loops.
type daemon struct {
	conn *net.UDPConn
	reg  *registry
	opts options
}

// ingest handles registration for one inbound datagram and reports
// whether it was a control frame (fully consumed).
func (d *daemon) ingest(pkt []byte, from netip.AddrPort) bool {
	if len(pkt) >= 5 && pkt[0] == 0x00 {
		d.reg.set(netip.AddrFrom4([4]byte(pkt[1:5])), from)
		return true
	}
	if src, _, err := wire.IPv4Addrs(pkt); err == nil {
		d.reg.set(src, from)
	}
	return false
}

// deliver tunnels one output packet to the peer registered for its inner
// destination. Unknown destinations are dropped, as a border router
// would drop a packet with no route.
func (d *daemon) deliver(pkt []byte) {
	_, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return
	}
	if peer, ok := d.reg.get(dst); ok {
		if _, err := d.conn.WriteToUDPAddrPort(pkt, peer); err != nil && !isClosed(err) {
			log.Printf("write to %v: %v", peer, err)
		}
	}
}

// runPerPacket is the -batch=1 loop: read, process through this worker's
// scratch, transmit. Several of these run concurrently against the one
// shared stateless Neutralizer; the scratch (and read buffer) are the
// only per-worker state.
func (d *daemon) runPerPacket(neut *netneutral.Neutralizer) error {
	buf := make([]byte, 64<<10)
	scratch := netneutral.NewScratch()
	for {
		n, from, err := d.conn.ReadFromUDPAddrPort(buf)
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		pkt := buf[:n]
		if d.ingest(pkt, from) {
			continue
		}
		scratch.Reset()
		outs, err := neut.ProcessScratch(scratch, pkt)
		if err != nil {
			continue // counted in stats
		}
		for _, o := range outs {
			d.deliver(o.Pkt)
		}
	}
}

// runBatched is the -batch>1 pipeline: one reader drains up to batch
// datagrams per wakeup (waiting at most -batchwait after the first) and
// pushes them through the shard pool in a single ProcessBatch call.
func (d *daemon) runBatched(pool *netneutral.NeutralizerPool) error {
	batch := d.opts.batch
	bufs := make([][]byte, batch)
	for i := range bufs {
		bufs[i] = make([]byte, 64<<10)
	}
	pkts := make([][]byte, 0, batch)
	for {
		pkts = pkts[:0]
		// Block for the first datagram of the batch.
		if err := d.conn.SetReadDeadline(time.Time{}); err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		n, from, err := d.conn.ReadFromUDPAddrPort(bufs[0])
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		if !d.ingest(bufs[0][:n], from) {
			pkts = append(pkts, bufs[0][:n])
		}
		// Opportunistically drain more, bounded by -batchwait.
		if err := d.conn.SetReadDeadline(time.Now().Add(d.opts.batchWait)); err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		for len(pkts) < batch {
			b := bufs[len(pkts)]
			n, from, err := d.conn.ReadFromUDPAddrPort(b)
			if err != nil {
				if isClosed(err) {
					return nil
				}
				break // deadline: ship what we have
			}
			if !d.ingest(b[:n], from) {
				pkts = append(pkts, b[:n])
			}
		}
		if len(pkts) == 0 {
			continue
		}
		outs, _ := pool.ProcessBatch(pkts)
		for _, o := range outs {
			d.deliver(o.Pkt)
		}
	}
}

// registry maps inner IPv4 addresses to tunnel endpoints. AddrPort
// values are comparable, so the hot path can check for a no-op update
// under the read lock and skip the write lock entirely.
type registry struct {
	mu sync.RWMutex
	m  map[netip.Addr]netip.AddrPort
}

func newRegistry() *registry { return &registry{m: make(map[netip.Addr]netip.AddrPort)} }

func (r *registry) set(a netip.Addr, peer netip.AddrPort) {
	r.mu.RLock()
	cur, ok := r.m[a]
	r.mu.RUnlock()
	if ok && cur == peer {
		return
	}
	r.mu.Lock()
	r.m[a] = peer
	r.mu.Unlock()
}

func (r *registry) get(a netip.Addr) (netip.AddrPort, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.m[a]
	return p, ok
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

func isClosed(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}

func randRead(b []byte) (int, error) { return rand.Read(b) }
