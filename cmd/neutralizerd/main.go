// Command neutralizerd runs a neutralizer over real UDP sockets: the
// deployable counterpart of the emulated experiments.
//
// Transport model: since the daemon cannot inject raw IP packets without
// privileges, serialized IPv4 shim packets ride inside UDP datagrams
// (IPv4-in-UDP tunneling). Peers register the inner IPv4 address they
// own, either implicitly (the daemon learns the mapping from the source
// address of inbound packets) or explicitly with a one-byte control
// frame: 0x00 ‖ IPv4(4).
//
// Usage:
//
//	neutralizerd -listen :7777 -anycast 10.200.0.1 -customers 10.10.0.0/16
//
// Flags configure the master-key root (hex; random if empty), the epoch
// length, and the optional dynamic-address pool.
package main

import (
	"crypto/rand"
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"netneutral"
	"netneutral/internal/wire"
)

func main() {
	listen := flag.String("listen", ":7777", "UDP listen address")
	anycastFlag := flag.String("anycast", "10.200.0.1", "anycast service address (inner IPv4)")
	customers := flag.String("customers", "10.10.0.0/16", "comma-separated customer prefixes")
	rootHex := flag.String("root", "", "32-hex-char master key root (random if empty)")
	epoch := flag.Duration("epoch", time.Hour, "master key epoch length")
	dynPool := flag.String("dynpool", "", "optional dynamic-address pool prefix (enables §3.4 QoS remedy)")
	statsEvery := flag.Duration("stats", 30*time.Second, "stats logging interval (0 disables)")
	flag.Parse()

	if err := run(*listen, *anycastFlag, *customers, *rootHex, *epoch, *dynPool, *statsEvery); err != nil {
		log.Fatalf("neutralizerd: %v", err)
	}
}

func run(listen, anycastFlag, customers, rootHex string, epoch time.Duration, dynPool string, statsEvery time.Duration) error {
	anycast, err := netip.ParseAddr(anycastFlag)
	if err != nil {
		return fmt.Errorf("bad -anycast: %w", err)
	}
	var prefixes []netip.Prefix
	for _, p := range strings.Split(customers, ",") {
		pfx, err := netip.ParsePrefix(strings.TrimSpace(p))
		if err != nil {
			return fmt.Errorf("bad -customers entry %q: %w", p, err)
		}
		prefixes = append(prefixes, pfx)
	}
	var root netneutral.MasterKey
	if rootHex == "" {
		b := make([]byte, len(root))
		if _, err := randRead(b); err != nil {
			return err
		}
		copy(root[:], b)
		log.Printf("generated master key root %s (replicas must share it)", hex.EncodeToString(root[:]))
	} else {
		b, err := hex.DecodeString(rootHex)
		if err != nil || len(b) != len(root) {
			return fmt.Errorf("bad -root: want %d hex bytes", len(root))
		}
		copy(root[:], b)
	}

	cfg := netneutral.NeutralizerConfig{
		Schedule: netneutral.NewKeySchedule(root, time.Now().Truncate(epoch), epoch),
		Anycast:  anycast,
		IsCustomer: func(a netip.Addr) bool {
			for _, p := range prefixes {
				if p.Contains(a) {
					return true
				}
			}
			return false
		},
	}
	if dynPool != "" {
		pfx, err := netip.ParsePrefix(dynPool)
		if err != nil {
			return fmt.Errorf("bad -dynpool: %w", err)
		}
		cfg.DynAddrPool = pfx
	}
	neut, err := netneutral.NewNeutralizer(cfg)
	if err != nil {
		return err
	}

	conn, err := net.ListenPacket("udp", listen)
	if err != nil {
		return err
	}
	defer conn.Close()
	log.Printf("neutralizer listening on %s, anycast %v, customers %v", conn.LocalAddr(), anycast, prefixes)

	reg := newRegistry()
	if statsEvery > 0 {
		go func() {
			for range time.Tick(statsEvery) {
				s := neut.Stats()
				log.Printf("stats: setups=%d data=%d return=%d grants=%d drops(epoch=%d,block=%d,cust=%d,malformed=%d) peers=%d",
					s.KeySetups.Load(), s.DataForwarded.Load(), s.ReturnForwarded.Load(),
					s.GrantsStamped.Load(), s.DropStaleEpoch.Load(), s.DropBadAddrBlock.Load(),
					s.DropNotCustomer.Load(), s.DropMalformed.Load(), reg.len())
			}
		}()
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sig
		log.Print("shutting down")
		conn.Close()
	}()

	buf := make([]byte, 64<<10)
	for {
		n, from, err := conn.ReadFrom(buf)
		if err != nil {
			if isClosed(err) {
				return nil
			}
			return err
		}
		pkt := buf[:n]
		// Control frame: explicit registration.
		if n >= 5 && pkt[0] == 0x00 {
			a := netip.AddrFrom4([4]byte(pkt[1:5]))
			reg.set(a, from)
			continue
		}
		// Learn the sender's inner address.
		if src, _, err := wire.IPv4Addrs(pkt); err == nil {
			reg.set(src, from)
		}
		outs, err := neut.Process(pkt)
		if err != nil {
			continue // counted in stats
		}
		for _, o := range outs {
			_, dst, err := wire.IPv4Addrs(o.Pkt)
			if err != nil {
				continue
			}
			if peer, ok := reg.get(dst); ok {
				if _, err := conn.WriteTo(o.Pkt, peer); err != nil && !isClosed(err) {
					log.Printf("write to %v: %v", peer, err)
				}
			}
		}
	}
}

// registry maps inner IPv4 addresses to tunnel endpoints.
type registry struct {
	mu sync.RWMutex
	m  map[netip.Addr]net.Addr
}

func newRegistry() *registry { return &registry{m: make(map[netip.Addr]net.Addr)} }

func (r *registry) set(a netip.Addr, peer net.Addr) {
	r.mu.Lock()
	r.m[a] = peer
	r.mu.Unlock()
}

func (r *registry) get(a netip.Addr) (net.Addr, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.m[a]
	return p, ok
}

func (r *registry) len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.m)
}

func isClosed(err error) bool {
	return err != nil && strings.Contains(err.Error(), "use of closed network connection")
}

func randRead(b []byte) (int, error) { return rand.Read(b) }
