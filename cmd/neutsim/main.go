// Command neutsim runs the paper's Figure 1 scenario on the emulated
// Internet and narrates what happens: which packets the discriminatory
// ISP sees, what its classifier catches, and whether the targeted
// customer's traffic survives.
//
// With -hosts it instead runs the metro-scale scenario: a fan-out
// topology (supportive ISP + discriminatory transit + N customer hosts,
// built by netem.BuildFanout) with the stateless neutralizer at the
// border, reporting engine throughput (sim-events/sec, packets/sec)
// alongside the scenario verdicts.
//
// With -arms it runs the E7 arms race at a chosen scale: app-shaped
// flows (VoIP / video / bulk / web) under {plaintext, encrypted,
// encrypted+cloak} against {port-rule, statistical-dpi} adversaries,
// reporting classifier accuracy, per-class goodput and the cloak's
// measured cost. A failed arms-race verdict exits non-zero, which is
// how CI smokes the arms path at reduced scale.
//
// With -audit it runs the E8 neutrality audit: paired differential
// probes (app-shaped suspect flow vs shape-neutral control) from
// -vantages outside vantage points plus inside reference paths,
// against the full ISP ladder {neutral, port-rule, dpi, dpi+stealth,
// dpi+probe-evasion} x {plaintext, encrypted} x {naive, interleaved},
// reporting per-cell detection power, the neutral false-positive rate,
// and path-segment localization. A failed audit verdict exits
// non-zero; CI smokes it at reduced scale.
//
// With -realproto it runs the E10 real-protocol scenario: a blocking
// DNS client and unmodified net/http servers and clients execute over
// simnet's virtual-time sockets — DNS bootstrap, §3.2 key setup, and
// keep-alive HTTP requests through the neutralizer — while the
// E7-trained DPI classifier taps transit and an E8-style audit vantage
// measures real request latencies against a targeted throttler. Every
// verdict is self-enforced (eval.RealProtoStats.Enforce); a violation
// exits non-zero, and the narration is deterministic for a fixed -seed,
// which is how CI byte-diffs two runs.
//
// With -backbone it runs the E13 continental scenario: -metros metro
// fan-outs (each with -hosts customers, its own address blocks and its
// own anycast neutralizer) stitched through a transit core with
// wide-area delays, carrying neutralized cross-backbone flows, plain
// cross-metro probes, and fluid background load at once. The run is an
// identity sweep over worker counts {1, -simworkers}; a determinism
// violation or misdelivery exits non-zero. Deterministic facts go to
// stdout (two runs with the same flags byte-diff clean, which is how CI
// smokes this path), wall-clock figures to stderr.
//
// With -parscale it runs the E9 parallel-scaling sweep: the metro
// workload (downstream neutralized load plus intra-subtree chatter) at
// worker counts 1/2/4, enforcing that every deterministic outcome is
// bit-identical across worker counts and reporting events/sec per
// worker count. A determinism violation exits non-zero; CI smokes it at
// reduced scale.
//
// -seed threads one seed through every RNG in the run — simulator,
// policies, per-flow jitter, and end-host identity generation — so any
// scenario replays bit-identically. -simworkers picks how many threads
// execute the sharded metro/audit engines; by the engine's determinism
// contract it changes wall-clock time, never results.
//
// Usage:
//
//	neutsim                       # plain vs neutralized, summary
//	neutsim -neutralize=false     # only the plain phase
//	neutsim -packets 50 -trace all  # per-packet trace of the AT&T segment
//	neutsim -hosts 10000 -duration 2s -seed 7   # metro-scale run
//	neutsim -hosts 1000 -trace all -traceout t.json  # metro + Perfetto trace
//	neutsim -hosts 1000 -trace 0.01 -metrics :0      # sampled flows on /trace.json
//	neutsim -hosts 1000 -simworkers 2           # metro on 2 workers
//	neutsim -hosts 1000 -metrics :0             # metro + /metrics, /stream, pprof
//	neutsim -arms -flows 8 -duration 2s -seed 7 # arms race, 8 flows/class
//	neutsim -audit -vantages 8 -trials 10 -seed 7 # neutrality audit
//	neutsim -parscale -hosts 2000 -duration 500ms # E9 worker sweep
//	neutsim -realproto -seed 7                    # E10 real protocols
//	neutsim -backbone -metros 4 -hosts 1000 -simworkers 2  # E13 backbone
package main

import (
	"flag"
	"fmt"
	"log"
	mathrand "math/rand"
	"net"
	"net/http"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"netneutral"
	"netneutral/internal/audit"
	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/e2e"
	"netneutral/internal/endhost"
	"netneutral/internal/eval"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/obs"
	"netneutral/internal/shim"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

var (
	annAddr  = netip.MustParseAddr("172.16.1.10")
	attAddr  = netip.MustParseAddr("172.16.0.1")
	anyAddr  = netip.MustParseAddr("10.200.0.1")
	googAddr = netip.MustParseAddr("10.10.0.5")
	custNet  = netip.MustParsePrefix("10.10.0.0/16")
	start    = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
)

func main() {
	packets := flag.Int("packets", 20, "data packets to attempt")
	neutralize := flag.Bool("neutralize", true, "also run the neutralized phase")
	trace := flag.String("trace", "", "flow tracing spec: \"all\" records every flow, a fraction in (0,1) samples that share of flows deterministically, 0xHEX tags one flow hash, SRC-DST[/PROTO] tags one address pair; in the Figure-1 scenario any non-empty value prints each packet crossing the discriminatory ISP")
	traceOut := flag.String("traceout", "", "write the metro run's traced spans as Chrome trace-event JSON (load in Perfetto or chrome://tracing) to this file")
	seed := flag.Int64("seed", 1, "seed threaded to every RNG (simulator, policies, jitter, identities)")
	hosts := flag.Int("hosts", 0, "run the metro-scale scenario with this many customer hosts (0 = Figure-1 narration)")
	arms := flag.Bool("arms", false, "run the E7 arms-race scenario (dpi adversary vs cloaking)")
	flows := flag.Int("flows", 25, "arms race: flows per application class")
	auditFlag := flag.Bool("audit", false, "run the E8 neutrality audit (differential probing vs stealthy throttling)")
	parscale := flag.Bool("parscale", false, "run the E9 parallel-scaling sweep (worker counts 1/2/4, bit-identical outcomes enforced)")
	backbone := flag.Bool("backbone", false, "run the E13 continental backbone (-metros fan-outs of -hosts customers each through a transit core, fluid background load, worker-identity sweep)")
	metros := flag.Int("metros", 6, "backbone: metro count")
	realproto := flag.Bool("realproto", false, "run the E10 real-protocol scenario (dns + net/http over simnet vs dpi and audit)")
	simWorkers := flag.Int("simworkers", 1, "threads executing the sharded metro/audit engine (results are identical at any value)")
	vantages := flag.Int("vantages", 12, "audit: outside vantage points (inside reference vantages scale as 1/3)")
	trials := flag.Int("trials", 12, "audit: paired measurement trials per vantage")
	duration := flag.Duration("duration", 2*time.Second, "simulated traffic duration for the metro/arms scenarios")
	metricsAddr := flag.String("metrics", "", "serve /metrics, /metrics.json, /stream, /flight.json and /debug/pprof on this address during the metro run (\":0\" picks a port; bound address is printed)")
	metricsHold := flag.Duration("metricshold", 5*time.Second, "keep the -metrics server up this long after the run so scrapers can read the final state")
	flag.Parse()

	if *realproto {
		runRealProto(*seed)
		return
	}
	if *parscale {
		runParScale(*hosts, *seed, *duration)
		return
	}
	if *backbone {
		runBackbone(*metros, *hosts, *seed, *duration, *simWorkers)
		return
	}
	if *auditFlag {
		runAudit(*vantages, *trials, *seed, *simWorkers)
		return
	}
	if *arms {
		runArms(*flows, *seed, *duration)
		return
	}
	if *hosts > 0 {
		runMetro(*hosts, *seed, *duration, *simWorkers, *metricsAddr, *metricsHold, *trace, *traceOut)
		return
	}
	if *metricsAddr != "" {
		log.Fatal("neutsim: -metrics requires the metro scenario (-hosts N)")
	}
	if *traceOut != "" {
		log.Fatal("neutsim: -traceout requires the metro scenario (-hosts N)")
	}

	fmt.Println("== phase 1: plain addressing, ISP targets the customer ==")
	delivered, hits := runPlain(*packets, *trace != "", *seed)
	fmt.Printf("delivered %d/%d; classifier hits %d — deterministic harm\n\n", delivered, *packets, hits)

	if !*neutralize {
		return
	}
	fmt.Println("== phase 2: neutralized, same classifier ==")
	delivered2, hits2, sawCustomer := runNeutralized(*packets, *trace != "", *seed+1)
	fmt.Printf("delivered %d/%d; classifier hits %d; ISP saw customer address: %v\n",
		delivered2, *packets, hits2, sawCustomer)
	fmt.Println("the ISP can degrade the supportive ISP's traffic as a whole, but cannot single out the customer")
}

// runAudit drives the E8 audit matrix and narrates the detection
// ladder; any failed verdict (see eval.RunAudit) exits non-zero.
func runAudit(vantages, trials int, seed int64, workers int) {
	inside := vantages / 3
	if inside < 1 {
		inside = 1
	}
	fmt.Printf("== neutrality audit: %d outside + %d inside vantages, %d paired trials each, %d sim worker(s) ==\n",
		vantages, inside, trials, workers)
	st, err := eval.RunAudit(eval.AuditConfig{
		Vantages: vantages, InsideVantages: inside, Trials: trials, Seed: seed, Workers: workers,
	})
	if err != nil {
		log.Fatal(err)
	}
	cell := func(i eval.AuditISP, m eval.ArmsMode, s audit.Strategy) *eval.AuditCell {
		return st.Cell(i, m, s)
	}
	dpiInt := cell(eval.ISPDPI, eval.ModeEncrypted, audit.StrategyInterleaved)
	portPlain := cell(eval.ISPPortRule, eval.ModePlaintext, audit.StrategyInterleaved)
	portEnc := cell(eval.ISPPortRule, eval.ModeEncrypted, audit.StrategyInterleaved)
	stealth := cell(eval.ISPDPIStealth, eval.ModeEncrypted, audit.StrategyInterleaved)
	evNaive := cell(eval.ISPDPIEvasion, eval.ModeEncrypted, audit.StrategyNaive)
	evInt := cell(eval.ISPDPIEvasion, eval.ModeEncrypted, audit.StrategyInterleaved)
	fmt.Printf("neutral ISP          false-positive rate %4.1f%%  (every mode, strategy, vantage class)\n",
		100*st.FalsePositiveRate())
	fmt.Printf("port rule  plaintext power %3.0f%%  (rule fires on the app port: audit convicts)\n",
		100*portPlain.Summary.Power)
	fmt.Printf("port rule  encrypted power %3.0f%%  (nothing to detect: encryption restored neutrality)\n",
		100*portEnc.Summary.Power)
	fmt.Printf("dpi        encrypted power %3.0f%%, localized %s  (suspect goodput %.0f%% vs control %.0f%%)\n",
		100*dpiInt.Summary.Power, dpiInt.Summary.Localized,
		100*dpiInt.SuspectGoodput, 100*dpiInt.ControlGoodput)
	fmt.Printf("dpi+stealth          power %3.0f%%, aggregate convicts: %v  (partial+duty dilutes single vantages)\n",
		100*stealth.Summary.Power, stealth.Summary.Discriminating)
	fmt.Printf("dpi+evasion  naive   power %3.0f%%  (young-flow whitelist defeats burst probing)\n",
		100*evNaive.Summary.Power)
	fmt.Printf("dpi+evasion  interleaved power %3.0f%%  (long-lived app-shaped probes age past it)\n",
		100*evInt.Summary.Power)
}

// runArms drives the E7 arms-race matrix and narrates the ladder; any
// failed verdict (see eval.RunArms) exits non-zero.
func runArms(flowsPerClass int, seed int64, duration time.Duration) {
	nFlows := trafficgen.NumApps * flowsPerClass
	fmt.Printf("== arms race: %d app-shaped flows vs port rules and statistical dpi ==\n", nFlows)
	st, err := eval.RunArms(eval.ArmsConfig{FlowsPerClass: flowsPerClass, Seed: seed, Duration: duration})
	if err != nil {
		log.Fatal(err)
	}
	voip := int(trafficgen.AppVoIP)
	pp := st.Cell(eval.ModePlaintext, eval.AdvPortRule)
	pe := st.Cell(eval.ModeEncrypted, eval.AdvPortRule)
	de := st.Cell(eval.ModeEncrypted, eval.AdvDPI)
	dc := st.Cell(eval.ModeCloaked, eval.AdvDPI)
	fmt.Printf("port rule   plaintext    voip goodput %3.0f%%  (%d port matches: the strawman works)\n",
		100*pp.Goodput[voip], pp.PortHits)
	fmt.Printf("port rule   encrypted    voip goodput %3.0f%%  (%d matches: the paper's claim holds)\n",
		100*pe.Goodput[voip], pe.PortHits)
	fmt.Printf("dpi         encrypted    accuracy %3.0f%%, voip goodput %3.0f%%  (encryption alone is not enough)\n",
		100*de.Accuracy, 100*de.Goodput[voip])
	fmt.Printf("dpi         +cloak       accuracy %3.0f%%, voip goodput %3.0f%%  (fingerprint erased)\n",
		100*dc.Accuracy, 100*dc.Goodput[voip])
	fmt.Printf("cloak cost  %.1fx wire bytes per real byte, +%v mean frame latency\n",
		dc.CloakOverhead, dc.CloakDelay.Round(time.Millisecond))
}

// runMetro drives the metro-scale fan-out scenario and narrates the
// engine-level numbers. With metricsAddr set it mounts the full export
// surface on the run's registry: a Recorder publishing a merged
// snapshot at every epoch barrier (so mid-run scrapes are
// barrier-consistent), an NDJSON streamer, a FlightRecorder, and pprof.
// A non-empty traceSpec sizes the flight recorder from the flowspec
// (independent of -metrics); traceOut then writes the assembled spans
// as Chrome trace-event JSON after the run.
func runMetro(hosts int, seed int64, duration time.Duration, workers int, metricsAddr string, hold time.Duration, traceSpec, traceOut string) {
	fmt.Printf("== metro scale: %d customers behind one neutralizer domain, %d sim worker(s) ==\n", hosts, workers)
	cfg := eval.MetroConfig{Hosts: hosts, Seed: seed, Duration: duration, Workers: workers}
	var fr *obs.FlightRecorder
	if traceSpec != "" {
		fcfg, tags, err := parseFlowSpec(traceSpec)
		if err != nil {
			log.Fatal(err)
		}
		fr = obs.NewFlightRecorder(fcfg)
		for _, t := range tags {
			fr.Tag(t)
		}
	}
	var ln net.Listener
	if metricsAddr != "" {
		var err error
		if ln, err = net.Listen("tcp", metricsAddr); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("metrics listening on http://%s/metrics\n", ln.Addr())
	}
	if fr != nil || ln != nil {
		cfg.Attach = func(sim *netem.Simulator) {
			if fr == nil {
				fr = obs.NewFlightRecorder(obs.FlightConfig{})
			}
			fr.Register(sim.Metrics())
			sim.AttachFlightRecorder(fr)
			if ln == nil {
				return
			}
			rec := obs.NewRecorder(sim.Metrics(), obs.RecorderConfig{
				RingSize: 512, Interval: time.Millisecond,
			})
			rec.Register()
			stream := obs.NewStreamer()
			stream.Register(sim.Metrics())
			rec.SetStreamer(stream)
			sim.OnBarrier(func(now time.Time) { rec.Tick(now.UnixNano()) })
			go func() {
				_ = http.Serve(ln, obs.NewHandler(obs.HandlerConfig{
					Source: rec, Streamer: stream, Flight: fr,
				}))
			}()
		}
	}
	st, err := eval.RunMetro(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("topology        %d hosts (%d shards) built in %v\n", st.Hosts, st.Shards, st.BuildTime.Round(time.Millisecond))
	fmt.Printf("traffic         %d neutralized packets over %v simulated\n", st.Sent, duration)
	fmt.Printf("delivered       %d/%d (dropped %d)\n", st.Delivered, st.Sent, st.Dropped)
	fmt.Printf("classifier hits %d — the transit ISP cannot single out a customer\n", st.ClassifierHits)
	fmt.Printf("engine          %d sim events in %v wall: %.0f events/sec, %.0f fwd pps, %.0f delivered pps\n",
		st.SimEvents, st.RunTime.Round(time.Millisecond), st.EventsPerSec, st.ForwardPps, st.DeliveredPps)
	fmt.Printf("packet pool     %d buffers backed %d checkouts\n", st.PoolAllocated, st.PoolGets)
	if traceOut != "" {
		if fr == nil {
			log.Fatal("neutsim: -traceout requires -trace")
		}
		out, err := os.Create(traceOut)
		if err != nil {
			log.Fatal(err)
		}
		spans := obs.AssembleSpans(fr.Events())
		if err := obs.WriteChromeTrace(out, spans); err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("trace           %d flows, %d retained events written to %s (Perfetto-loadable)\n",
			len(spans), fr.Sampled()-fr.Evicted(), traceOut)
	}
	if metricsAddr != "" && hold > 0 {
		fmt.Printf("metrics holding for %v (final state scrapeable)\n", hold)
		time.Sleep(hold)
	}
}

// runRealProto drives the E10 real-protocol scenario and narrates it;
// any failed self-check (eval.RealProtoStats.Enforce) exits non-zero.
// The narration depends only on -seed, so two runs byte-diff clean.
func runRealProto(seed int64) {
	fmt.Println("== real protocols over the sim: blocking dns + unmodified net/http ==")
	st, err := eval.RunRealProto(eval.RealProtoConfig{Seed: seed})
	if err != nil {
		log.Fatal(err)
	}
	if err := st.Enforce(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dns         plain rtt %v, encrypted rtt %v  (blocking client, exact virtual latency)\n",
		st.DNS.PlainRTT, st.DNS.EncRTT)
	fmt.Printf("dns         nxdomain surfaced: %v; dead-port read deadline fired: %v\n",
		st.DNS.NXDomainOK, st.DNS.TimeoutOK)
	fmt.Printf("http        %d/%d keep-alive requests ok through shim conduits, mean rtt %v\n",
		st.HTTP.OK, st.HTTP.Want, st.HTTP.MeanRTT.Round(time.Microsecond))
	fmt.Printf("dpi tap     %d client flows observed at transit; classified as {%s} — never voip, never the customer\n",
		st.HTTP.Flows, st.HTTP.ClassHist())
	fmt.Printf("audit       clean path discriminated=%v  (%d trials of real request latency)\n",
		st.Neutral.Discriminated, st.Neutral.Trials)
	fmt.Printf("audit       20ms targeted throttle discriminated=%v  (delay gap %.1fx, MW p=%.2g)\n",
		st.Throttled.Discriminated, st.Throttled.DelayGap, st.Throttled.DelayMW.P)
	fmt.Printf("trace       %d journeys attributed exactly; %d throttled journeys carry 20ms rule-caused delay each\n",
		st.NeutralTrace.Journeys+st.ThrottledTrace.Journeys, st.ThrottledTrace.Throttled)
	fmt.Println("determinism verified per seed: simnet parks real goroutines and replays bit-identically")
}

// parseFlowSpec interprets the -trace flowspec for the metro scenario:
//
//	all              record every event of every flow
//	0.25             flow-keyed sampling: record all events of that
//	                 deterministic fraction of flows (flow < f*2^64)
//	0xDEADBEEF       tag one flow by its 64-bit flow hash
//	10.0.0.1-10.0.1.5[/17]  tag the flow between two addresses
//	                 (IP protocol defaults to UDP)
//
// Tagged and fraction-selected flows are recorded in full, on top of
// the recorder's default 1-in-64 head sampling; the selection is a pure
// function of flow identity, so the traced set replays bit-identically
// at any -simworkers.
func parseFlowSpec(spec string) (obs.FlightConfig, []uint64, error) {
	// Tracing rings are sized generously: the spec asks for specific
	// flows end to end, so give them room before eviction clips spans.
	cfg := obs.FlightConfig{RingSize: 1 << 14}
	switch {
	case spec == "all":
		cfg.SampleFlows = 1
		return cfg, nil, nil
	case strings.HasPrefix(spec, "0x") || strings.HasPrefix(spec, "0X"):
		id, err := strconv.ParseUint(spec[2:], 16, 64)
		if err != nil {
			return cfg, nil, fmt.Errorf("neutsim: -trace %q: bad flow hash: %v", spec, err)
		}
		return cfg, []uint64{id}, nil
	case strings.Contains(spec, "-"):
		pair, protoStr, hasProto := strings.Cut(spec, "/")
		proto := uint64(wire.ProtoUDP)
		if hasProto {
			var err error
			if proto, err = strconv.ParseUint(protoStr, 10, 8); err != nil {
				return cfg, nil, fmt.Errorf("neutsim: -trace %q: bad protocol: %v", spec, err)
			}
		}
		srcStr, dstStr, _ := strings.Cut(pair, "-")
		src, err := netip.ParseAddr(srcStr)
		if err != nil {
			return cfg, nil, fmt.Errorf("neutsim: -trace %q: bad source: %v", spec, err)
		}
		dst, err := netip.ParseAddr(dstStr)
		if err != nil {
			return cfg, nil, fmt.Errorf("neutsim: -trace %q: bad destination: %v", spec, err)
		}
		key, err := netem.FlowKeyFrom(src, dst, uint8(proto))
		if err != nil {
			return cfg, nil, fmt.Errorf("neutsim: -trace %q: %v", spec, err)
		}
		return cfg, []uint64{netem.FlowKeyHash(key)}, nil
	default:
		frac, err := strconv.ParseFloat(spec, 64)
		if err != nil || frac <= 0 || frac > 1 {
			return cfg, nil, fmt.Errorf("neutsim: -trace %q: want \"all\", a fraction in (0,1], 0xHEX, or SRC-DST[/PROTO]", spec)
		}
		cfg.SampleFlows = frac
		return cfg, nil, nil
	}
}

// runBackbone drives the E13 continental scenario: an identity sweep
// over worker counts {1, workers}; eval.RunBackboneIdentity exits
// non-zero (via log.Fatal) on any determinism violation, misdelivery,
// or classifier hit. Everything printed to stdout is a pure function of
// the flags, so CI byte-diffs two runs; wall-clock figures go to stderr.
func runBackbone(metros, hostsPerMetro int, seed int64, duration time.Duration, workers int) {
	if hostsPerMetro <= 0 {
		hostsPerMetro = 1000
	}
	sweep := []int{1}
	if workers > 1 {
		sweep = append(sweep, workers)
	}
	fmt.Printf("== continental backbone: %d metros x %d customers, worker sweep %v ==\n",
		metros, hostsPerMetro, sweep)
	runs, err := eval.RunBackboneIdentity(eval.BackboneConfig{
		Metros: metros, HostsPerMetro: hostsPerMetro, Seed: seed,
		Duration: duration, Observe: true,
	}, sweep)
	if err != nil {
		log.Fatal(err)
	}
	st := runs[0]
	fmt.Printf("topology        %d customers across %d shards, prefix-compressed FIBs (core holds %d routes)\n",
		st.Hosts, st.Shards, 3*st.Metros)
	fmt.Printf("traffic         %d neutralized + %d plain cross-metro packets over %v simulated\n",
		st.NeutSent, st.CrossSent, duration)
	fmt.Printf("delivered       %d/%d (dropped %d)\n",
		st.Delivered, st.NeutSent+st.CrossSent, st.Dropped)
	fmt.Printf("classifier hits %d — the core cannot single out a customer\n", st.ClassifierHits)
	fmt.Printf("fluid           %d background bytes accounted in %d rate ticks, zero packet events\n",
		st.FluidBytes, st.FluidTicks)
	fmt.Printf("engine          %d sim events per run\n", st.SimEvents)
	fmt.Printf("determinism     verified: identical outcomes (incl. fluid + observation digest) at worker counts %v\n", sweep)
	for _, r := range runs {
		fmt.Fprintf(os.Stderr, "workers=%d built in %v, ran %v wall (%.0f events/sec)\n",
			r.Workers, r.BuildTime.Round(time.Millisecond),
			r.RunTime.Round(time.Millisecond), r.EventsPerSec)
	}
}

// runParScale drives the E9 worker sweep; RunParScale exits non-zero
// (via log.Fatal) when any worker count produces a different outcome.
func runParScale(hosts int, seed int64, duration time.Duration) {
	if hosts <= 0 {
		hosts = 10000
	}
	fmt.Printf("== parallel scaling: %d customers, worker sweep with bit-identical replay ==\n", hosts)
	st, err := eval.RunParScale(eval.ParScaleConfig{
		Hosts: hosts, Seed: seed, Duration: duration, Workers: []int{1, 2, 4},
	})
	if err != nil {
		log.Fatal(err)
	}
	first := st.Runs[0].Stats
	fmt.Printf("workload        %d neutralized + %d intra-subtree packets across %d shards\n",
		first.Sent, first.LocalSent, first.Shards)
	for _, r := range st.Runs {
		fmt.Printf("workers=%d       %12.0f events/sec  (%.2fx of 1 worker)\n",
			r.Workers, r.Stats.EventsPerSec, r.Speedup)
	}
	fmt.Println("determinism     verified: identical outcomes at every worker count")
}

func buildWorld(seed int64) (*netem.Simulator, *netem.Node, *netem.Node, *netem.Node, *netem.Node, *core.Neutralizer) {
	sim := netem.NewSimulator(start, seed)
	ann := sim.MustAddNode("ann", "att", annAddr)
	att := sim.MustAddNode("att-core", "att", attAddr)
	border := sim.MustAddNode("cogent-border", "cogent")
	goog := sim.MustAddNode("google", "cogent", googAddr)
	sim.Connect(ann, att, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.Connect(att, border, netem.LinkConfig{Delay: 8 * time.Millisecond})
	sim.Connect(border, goog, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.AddAnycast(anyAddr, border)
	sim.BuildRoutes()

	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   netneutral.NewKeySchedule(aesutil.Key{7}, start, time.Hour),
		Anycast:    anyAddr,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
		Clock:      sim.Now,
		Rand:       mathrand.New(mathrand.NewSource(seed + 9)),
	})
	if err != nil {
		log.Fatal(err)
	}
	border.SetHandler(func(_ time.Time, pkt []byte) {
		outs, err := neut.Process(pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			_ = border.Send(o.Pkt)
		}
	})
	return sim, ann, att, border, goog, neut
}

func attachTrace(att *netem.Node, trace bool) {
	if !trace {
		return
	}
	att.AddTransitHook(func(now time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
		src, dst, err := wire.IPv4Addrs(pkt)
		if err != nil {
			return netem.Deliver
		}
		proto, _ := wire.IPv4Proto(pkt)
		kind := fmt.Sprintf("proto=%d", proto)
		if proto == wire.ProtoShim {
			if t, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:]); ok {
				kind = "shim/" + t.String()
			}
		}
		fmt.Printf("  [AT&T sees] %v -> %v  %s  %dB\n", src, dst, kind, len(pkt))
		return netem.Deliver
	})
}

func runPlain(packets int, trace bool, seed int64) (delivered int, hits uint64) {
	sim, ann, att, _, goog, _ := buildWorld(seed)
	attachTrace(att, trace)
	policy := isp.NewPolicy(nil, isp.Rule{
		Name: "target-google", Match: isp.MatchDstAddr(googAddr), Action: isp.Action{DropProb: 1},
	})
	att.AddTransitHook(policy.Hook())
	goog.SetHandler(func(time.Time, []byte) { delivered++ })

	payload := []byte("GET /")
	for i := 0; i < packets; i++ {
		sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			buf := wire.NewSerializeBuffer(28, len(payload))
			buf.PushPayload(payload)
			_ = wire.SerializeLayers(buf,
				&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: annAddr, Dst: googAddr},
				&wire.UDP{SrcPort: 4000, DstPort: 80},
			)
			_ = ann.Send(buf.Bytes())
		})
	}
	sim.Run()
	return delivered, policy.Hits("target-google")
}

func runNeutralized(packets int, trace bool, seed int64) (delivered int, hits uint64, sawCustomer bool) {
	sim, ann, att, _, goog, _ := buildWorld(seed)
	attachTrace(att, trace)
	policy := isp.NewPolicy(nil, isp.Rule{
		Name: "target-google", Match: isp.MatchDstAddr(googAddr), Action: isp.Action{DropProb: 1},
	})
	eav := isp.NewEavesdropper()
	att.AddTransitHook(eav.Hook())
	att.AddTransitHook(policy.Hook())

	mkHost := func(node *netem.Node, s int64) *endhost.Host {
		// Identities derive from the run seed too, so a -seed run
		// replays bit-identically (key material included).
		id, err := e2e.NewIdentity(mathrand.New(mathrand.NewSource(s)), 0)
		if err != nil {
			log.Fatal(err)
		}
		h, err := endhost.NewHost(endhost.Config{
			Addr:      node.Addr(),
			Transport: func(pkt []byte) error { return node.Send(pkt) },
			Identity:  id,
			Clock:     sim.Now,
			Rand:      mathrand.New(mathrand.NewSource(s)),
		})
		if err != nil {
			log.Fatal(err)
		}
		node.SetHandler(h.HandlePacket)
		return h
	}
	googleHost := mkHost(goog, seed+21)
	annHost := mkHost(ann, seed+22)
	googleHost.SetOnData(func(netip.Addr, []byte) { delivered++ })

	if err := annHost.Setup(anyAddr); err != nil {
		log.Fatal(err)
	}
	sim.RunFor(time.Second)
	if !annHost.HasConduit(anyAddr) {
		log.Fatal("neutsim: key setup failed")
	}
	if err := annHost.Connect(anyAddr, googAddr, googleHost.Identity()); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < packets; i++ {
		sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			_ = annHost.Send(googAddr, []byte("GET /"))
		})
	}
	sim.RunFor(2 * time.Second)
	return delivered, policy.Hits("target-google"), eav.SawAddr(googAddr)
}
