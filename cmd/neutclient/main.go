// Command neutclient exercises a running neutralizerd over real UDP:
// key setup, hidden-destination data, and the return path.
//
// Run a customer-side echo server (Google's role):
//
//	neutclient -neut 127.0.0.1:7777 -self 10.10.0.5 -serve
//
// Then talk to it from the outside (Ann's role), naming the peer only in
// the encrypted shim — the daemon never sees the destination in clear:
//
//	neutclient -neut 127.0.0.1:7777 -self 172.16.1.10 \
//	    -peer 10.10.0.5 -peerkey <hex from the server's output> \
//	    -send "hello through the neutralizer"
//
// The Host state machine is not concurrency-safe, so the client drives
// everything — socket reads included — from a single goroutine.
package main

import (
	"encoding/hex"
	"flag"
	"fmt"
	"log"
	"net"
	"net/netip"
	"os"
	"time"

	"netneutral"
	"netneutral/internal/e2e"
)

type delivery struct {
	peer netip.Addr
	data []byte
}

func main() {
	neutAddr := flag.String("neut", "127.0.0.1:7777", "neutralizerd UDP address")
	anycast := flag.String("anycast", "10.200.0.1", "neutralizer anycast address (inner IPv4)")
	self := flag.String("self", "", "this host's inner IPv4 address (required)")
	peer := flag.String("peer", "", "peer inner IPv4 address (client mode)")
	peerKey := flag.String("peerkey", "", "peer public key, hex (client mode; from server output)")
	msg := flag.String("send", "hello", "message to send (client mode)")
	serve := flag.Bool("serve", false, "run as a customer-side echo server")
	wait := flag.Duration("wait", 3*time.Second, "client: how long to wait for each phase")
	flag.Parse()

	if *self == "" {
		log.Fatal("neutclient: -self is required")
	}
	selfAddr, err := netip.ParseAddr(*self)
	if err != nil {
		log.Fatalf("neutclient: bad -self: %v", err)
	}
	anyAddr, err := netip.ParseAddr(*anycast)
	if err != nil {
		log.Fatalf("neutclient: bad -anycast: %v", err)
	}

	conn, err := net.Dial("udp", *neutAddr)
	if err != nil {
		log.Fatalf("neutclient: dial: %v", err)
	}
	defer conn.Close()

	// Register our inner address with the daemon (control frame).
	a4 := selfAddr.As4()
	if _, err := conn.Write(append([]byte{0x00}, a4[:]...)); err != nil {
		log.Fatalf("neutclient: register: %v", err)
	}

	id, err := netneutral.NewIdentity(0)
	if err != nil {
		log.Fatal(err)
	}
	var inbox []delivery
	host, err := netneutral.NewHost(netneutral.HostConfig{
		Addr:      selfAddr,
		Identity:  id,
		Transport: func(pkt []byte) error { _, err := conn.Write(pkt); return err },
		OnData: func(p netip.Addr, data []byte) {
			inbox = append(inbox, delivery{p, append([]byte(nil), data...)})
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// pump reads datagrams into the host until deadline or until stop()
	// reports true; single goroutine, so the Host never races.
	buf := make([]byte, 64<<10)
	pump := func(deadline time.Time, stop func() bool) {
		for !stop() && time.Now().Before(deadline) {
			_ = conn.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue // deadline tick
			}
			host.HandlePacket(time.Now(), buf[:n])
		}
	}

	if *serve {
		fmt.Printf("serving as %v via %s\n", selfAddr, *neutAddr)
		fmt.Printf("public key (give to clients as -peerkey):\n%s\n", hex.EncodeToString(id.Public().Marshal()))
		for {
			pump(time.Now().Add(time.Hour), func() bool { return len(inbox) > 0 })
			for _, m := range inbox {
				fmt.Printf("from %v: %q — echoing\n", m.peer, m.data)
				if err := host.Send(m.peer, append([]byte("echo: "), m.data...)); err != nil {
					log.Printf("echo: %v", err)
				}
			}
			inbox = inbox[:0]
		}
	}

	// Client mode.
	if *peer == "" || *peerKey == "" {
		log.Fatal("neutclient: client mode needs -peer and -peerkey")
	}
	peerAddr, err := netip.ParseAddr(*peer)
	if err != nil {
		log.Fatalf("neutclient: bad -peer: %v", err)
	}
	pkb, err := hex.DecodeString(*peerKey)
	if err != nil {
		log.Fatalf("neutclient: bad -peerkey: %v", err)
	}
	pub, err := e2e.UnmarshalPublicKey(pkb)
	if err != nil {
		log.Fatalf("neutclient: bad -peerkey: %v", err)
	}

	if err := host.Setup(anyAddr); err != nil {
		log.Fatalf("neutclient: setup: %v", err)
	}
	pump(time.Now().Add(*wait), func() bool { return host.HasConduit(anyAddr) })
	if !host.HasConduit(anyAddr) {
		log.Fatal("neutclient: key setup timed out")
	}
	fmt.Printf("conduit established with %v (provisional=%v)\n", anyAddr, host.ConduitProvisional(anyAddr))

	if err := host.Connect(anyAddr, peerAddr, pub); err != nil {
		log.Fatalf("neutclient: connect: %v", err)
	}
	if err := host.Send(peerAddr, []byte(*msg)); err != nil {
		log.Fatalf("neutclient: send: %v", err)
	}
	pump(time.Now().Add(*wait), func() bool { return len(inbox) > 0 })
	if len(inbox) == 0 {
		log.Fatal("neutclient: no reply")
	}
	fmt.Printf("reply from %v: %q\n", inbox[0].peer, inbox[0].data)
	fmt.Printf("conduit provisional after reply: %v (grant applied)\n", host.ConduitProvisional(anyAddr))
	os.Exit(0)
}
