// Command neutbench regenerates every number, table and figure-level
// claim from the paper's evaluation (§4) plus the behavioural claims of
// Figures 1-2 and the §3 design discussions. Each experiment prints
// paper-vs-measured rows.
//
// Usage:
//
//	neutbench            # run everything
//	neutbench -exp E3    # run one experiment
//	neutbench -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"

	"netneutral"
)

func main() {
	exp := flag.String("exp", "", "experiment id to run (default: all)")
	list := flag.Bool("list", false, "list experiments and exit")
	flag.Parse()

	if *list {
		for _, e := range netneutral.Experiments() {
			fmt.Printf("%-4s %s\n", e.ID, e.Title)
		}
		return
	}
	run := netneutral.Experiments()
	if *exp != "" {
		e, ok := netneutral.ExperimentByID(*exp)
		if !ok {
			fmt.Fprintf(os.Stderr, "neutbench: unknown experiment %q (try -list)\n", *exp)
			os.Exit(2)
		}
		run = []netneutral.Experiment{e}
	}
	failed := 0
	for _, e := range run {
		res, err := e.Run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "neutbench: %s failed: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Println(res.String())
	}
	if failed > 0 {
		os.Exit(1)
	}
}
