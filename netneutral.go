// Package netneutral is the public facade of the netneutral project: a
// full implementation of the neutralizer design from "A Technical
// Approach to Net Neutrality" (Yang, Tsudik, Liu — HotNets-V, 2006).
//
// The design prevents an ISP from discriminating against packets based on
// content, application type, or non-customer addresses, while leaving
// tiered (DiffServ) service intact. Its core is the neutralizer: a
// stateless service at a supportive ISP's border that hides customer
// addresses behind an anycast address, deriving every session key on the
// fly as Ks = hash(KM, nonce, srcIP).
//
// This package re-exports the main entry points; the implementation
// lives in the internal packages (see README.md "Module layout" for the
// full inventory):
//
//   - NewNeutralizer: the border service (internal/core)
//   - NewKeySchedule: the shared master-key schedule (internal/crypto/keys)
//   - NewHost: the end-host shim stack (internal/endhost)
//   - NewSimulator: the discrete-event network emulator (internal/netem)
//   - NewSimNet: virtual-time net.Conn/net.PacketConn endpoints over the
//     emulator, so real protocol stacks (net/http, blocking resolvers)
//     run unmodified inside deterministic simulations (internal/simnet)
//   - NewDPIEngine: the statistical traffic-analysis adversary (internal/dpi)
//   - NewCloakShaper: padding/timing countermeasures (internal/cloak)
//   - NewAuditProber / AuditDecide / AuditSummarize: the active
//     neutrality auditor (internal/audit)
//   - NewMetricsRegistry / NewMetricsRecorder / NewFlightRecorder /
//     NewMetricsHandler: the zero-alloc observability plane (internal/obs)
//   - Experiments / ExperimentByID: the paper-reproduction harness (internal/eval)
//
// A minimal in-process conversation:
//
//	sched := netneutral.NewKeySchedule(root, time.Now(), time.Hour)
//	neut, _ := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
//	    Schedule:   sched,
//	    Anycast:    netip.MustParseAddr("10.200.0.1"),
//	    IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
//	})
//	outs, err := neut.Process(pkt) // stateless; run as many replicas as you like
//
// See examples/ for runnable end-to-end scenarios and cmd/neutbench for
// the evaluation harness.
package netneutral

import (
	"net/http"
	"time"

	"netneutral/internal/audit"
	"netneutral/internal/cloak"
	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/dpi"
	"netneutral/internal/e2e"
	"netneutral/internal/endhost"
	"netneutral/internal/eval"
	"netneutral/internal/netem"
	"netneutral/internal/obs"
	"netneutral/internal/simnet"
)

// Neutralizer is the stateless border service (the paper's primary
// contribution). See NeutralizerConfig for construction.
type Neutralizer = core.Neutralizer

// NeutralizerConfig configures a Neutralizer.
type NeutralizerConfig = core.Config

// Outgoing is a packet a Neutralizer asks its caller to transmit.
type Outgoing = core.Outgoing

// NewNeutralizer creates a neutralizer instance. All replicas of a domain
// share the same KeySchedule, which is what makes the service anycastable
// and fault-tolerant.
func NewNeutralizer(cfg NeutralizerConfig) (*Neutralizer, error) { return core.New(cfg) }

// Scratch is per-worker reusable state for the zero-allocation
// processing path (Neutralizer.ProcessScratch). One per goroutine.
type Scratch = core.Scratch

// NewScratch creates an empty scratch; buffers grow on demand and are
// retained across Reset.
func NewScratch() *Scratch { return core.NewScratch() }

// NeutralizerPool is a sharded in-process data plane: N stateless
// Neutralizer replicas sharing one key schedule, fed by per-shard worker
// goroutines through ProcessBatch. Because session keys are recomputed
// from each packet, any replica can process any packet — the same
// property that makes the service anycastable across machines.
type NeutralizerPool = core.Pool

// NeutralizerPoolConfig configures a NeutralizerPool.
type NeutralizerPoolConfig = core.PoolConfig

// NewNeutralizerPool builds the replicas and starts the shard workers.
func NewNeutralizerPool(cfg NeutralizerPoolConfig) (*NeutralizerPool, error) {
	return core.NewPool(cfg)
}

// NeutralizerStats is a mergeable point-in-time copy of neutralizer
// counters (one replica's, or a whole pool's).
type NeutralizerStats = core.StatsSnapshot

// KeySchedule derives per-epoch master keys KM from a root secret and
// session keys Ks = hash(KM, nonce, srcIP).
type KeySchedule = keys.Schedule

// MasterKey is a 128-bit symmetric key.
type MasterKey = aesutil.Key

// NewKeySchedule creates a schedule anchored at start; epochLen <= 0
// selects the paper's hourly rotation.
func NewKeySchedule(root MasterKey, start time.Time, epochLen time.Duration) *KeySchedule {
	return keys.NewSchedule(root, start, epochLen)
}

// Host is the end-host shim stack: key setup, hidden-destination data
// packets, grant refresh, reverse-direction initiation.
type Host = endhost.Host

// HostConfig configures a Host.
type HostConfig = endhost.Config

// NewHost creates an end host.
func NewHost(cfg HostConfig) (*Host, error) { return endhost.NewHost(cfg) }

// Identity is a long-term end-to-end key pair, published via DNS
// bootstrap records.
type Identity = e2e.Identity

// NewIdentity generates an identity (bits <= 0 selects the default
// 1024-bit strength the paper suggests).
func NewIdentity(bits int) (*Identity, error) { return e2e.NewIdentity(nil, bits) }

// Simulator is the deterministic discrete-event network emulator used by
// the experiments and examples.
type Simulator = netem.Simulator

// NewSimulator creates an emulator with a virtual clock starting at start
// and a seeded PRNG.
func NewSimulator(start time.Time, seed int64) *Simulator { return netem.NewSimulator(start, seed) }

// SimNet bridges ordinary blocking Go code onto a Simulator: sockets
// whose reads, deadlines and sleeps advance virtual time while the
// driver keeps seeded runs bit-identical. Workload goroutines are
// registered with SimNet.Go and the run is driven by SimNet.Run.
type SimNet = simnet.Net

// NewSimNet wraps a serial Simulator. The Simulator must not be stepped
// directly while the SimNet drives it.
func NewSimNet(sim *Simulator) *SimNet { return simnet.New(sim) }

// SimUDPConn is a virtual-time datagram endpoint (net.PacketConn, and
// net.Conn once connected) on a simulated node.
type SimUDPConn = simnet.UDPConn

// SimStreamConn is a virtual-time ordered byte stream (net.Conn) over
// the simulated fabric — the conn type net/http runs on in experiments.
type SimStreamConn = simnet.StreamConn

// SimStreamListener accepts SimStreamConns (net.Listener).
type SimStreamListener = simnet.StreamListener

// DPIEngine is the statistical traffic-analysis adversary: a stateful
// flow tracker, a trained application classifier, and per-class
// enforcement (token-bucket policing, probabilistic drop) compiled into
// one transit hook. It is what a discriminatory ISP deploys once
// encryption defeats its port and payload rules.
type DPIEngine = dpi.Engine

// DPIEngineConfig configures a DPIEngine.
type DPIEngineConfig = dpi.EngineConfig

// NewDPIEngine builds a statistical adversary.
func NewDPIEngine(cfg DPIEngineConfig) *DPIEngine { return dpi.NewEngine(cfg) }

// CloakShaper is the end-host countermeasure to statistical traffic
// analysis: padding to size buckets, tick-grid timing quantization, and
// optional cover traffic, with measured goodput/latency cost.
type CloakShaper = cloak.Shaper

// CloakConfig configures a CloakShaper.
type CloakConfig = cloak.Config

// CloakClock is the scheduling surface a CloakShaper runs on;
// *Simulator satisfies it.
type CloakClock = cloak.Clock

// NewCloakShaper creates a shaper emitting cloaked frames through emit.
func NewCloakShaper(cfg CloakConfig, clk CloakClock, emit func(frame []byte)) *CloakShaper {
	return cloak.NewShaper(cfg, clk, emit)
}

// AuditProber runs one vantage point's paired differential probe (an
// app-shaped suspect flow vs a shape-neutral control flow) and
// accounts per-trial goodput, delay and loss — the end-host side of
// detecting discrimination, complementing the neutralizer's prevention.
type AuditProber = audit.Prober

// AuditProberConfig configures an AuditProber.
type AuditProberConfig = audit.ProberConfig

// NewAuditProber validates the config and prepares the trial ledger;
// call Run to schedule the probe on its simulator.
func NewAuditProber(cfg AuditProberConfig) (*AuditProber, error) { return audit.NewProber(cfg) }

// AuditReport is one vantage's measurement, with a strict wire
// encoding (audit.AppendReport / audit.DecodeReport) for shipping to
// an aggregator.
type AuditReport = audit.Report

// AuditVerdict is one vantage's statistical decision.
type AuditVerdict = audit.Verdict

// AuditDecisionConfig parameterizes the per-vantage decision rule; the
// zero value gets conservative defaults.
type AuditDecisionConfig = audit.DecisionConfig

// AuditSummary is the cross-vantage aggregation: detection power, the
// ISP-level ruling, and path-segment localization.
type AuditSummary = audit.Summary

// AuditDecide applies the differential decision rule (Mann-Whitney,
// Kolmogorov-Smirnov and exceedance tests with practical-effect gates)
// to one vantage report.
func AuditDecide(r *AuditReport, cfg AuditDecisionConfig) AuditVerdict {
	return audit.Decide(r, cfg)
}

// AuditSummarize decides each report and aggregates across vantages;
// minFraction <= 0 selects the default aggregation threshold.
func AuditSummarize(reports []*AuditReport, cfg AuditDecisionConfig, minFraction float64) AuditSummary {
	return audit.Summarize(reports, cfg, minFraction)
}

// MetricsRegistry holds named counter, gauge and histogram families
// whose hot-path update is a plain increment on a cache-line-padded,
// single-writer stripe (zero allocations, no atomics on the
// deterministic sim path; atomic stripes serve concurrent writers).
// Simulator.Metrics returns the emulator's registry; NeutralizerPool
// exposes Instrument for the data plane's.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry creates an empty registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsSnapshot is a merged point-in-time view of every registered
// family.
type MetricsSnapshot = obs.Snapshot

// MetricsRecorder samples a registry into fixed-size time-series rings
// at existing synchronization points (the emulator's epoch barriers via
// Simulator.OnBarrier), so recording never perturbs a seeded run.
type MetricsRecorder = obs.Recorder

// MetricsRecorderConfig sizes a MetricsRecorder.
type MetricsRecorderConfig = obs.RecorderConfig

// NewMetricsRecorder creates a recorder over reg.
func NewMetricsRecorder(reg *MetricsRegistry, cfg MetricsRecorderConfig) *MetricsRecorder {
	return obs.NewRecorder(reg, cfg)
}

// FlightRecorder keeps bounded rings of head-sampled simulator trace
// events (attach with Simulator.AttachFlightRecorder), replacing
// unbounded trace fan-out with a fixed memory budget.
type FlightRecorder = obs.FlightRecorder

// FlightRecorderConfig sizes a FlightRecorder.
type FlightRecorderConfig = obs.FlightConfig

// NewFlightRecorder creates a flight recorder.
func NewFlightRecorder(cfg FlightRecorderConfig) *FlightRecorder { return obs.NewFlightRecorder(cfg) }

// MetricsHandlerConfig wires the HTTP export surface (/metrics,
// /metrics.json, /stream, /flight.json, pprof).
type MetricsHandlerConfig = obs.HandlerConfig

// NewMetricsHandler builds the export mux both daemons mount behind
// their -metrics flag.
func NewMetricsHandler(cfg MetricsHandlerConfig) *http.ServeMux { return obs.NewHandler(cfg) }

// Experiment is one registered paper-reproduction unit.
type Experiment = eval.Experiment

// ExperimentResult is an experiment's paper-vs-measured row set.
type ExperimentResult = eval.Result

// Experiments returns every registered experiment (E1-E10, F1-F2, A1-A8 —
// `neutbench -list` prints the index; see README.md).
func Experiments() []Experiment { return eval.All() }

// ExperimentByID looks up an experiment by its index id (e.g. "E3").
func ExperimentByID(id string) (Experiment, bool) { return eval.ByID(id) }
