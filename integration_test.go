// Integration tests exercising the public facade end to end, including
// the real-UDP deployment path used by cmd/neutralizerd and
// cmd/neutclient.
package netneutral_test

import (
	"net"
	"net/netip"
	"testing"
	"time"

	"netneutral"
	"netneutral/internal/wire"
)

var (
	itAnycast = netip.MustParseAddr("10.200.0.1")
	itAnn     = netip.MustParseAddr("172.16.1.10")
	itGoogle  = netip.MustParseAddr("10.10.0.5")
	itCustNet = netip.MustParsePrefix("10.10.0.0/16")
)

// TestFacadeInProcessConversation drives the whole protocol through the
// public API with a synchronous in-memory wire.
func TestFacadeInProcessConversation(t *testing.T) {
	sched := netneutral.NewKeySchedule(netneutral.MasterKey{9}, time.Now(), time.Hour)
	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   sched,
		Anycast:    itAnycast,
		IsCustomer: func(a netip.Addr) bool { return itCustNet.Contains(a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	hosts := map[netip.Addr]*netneutral.Host{}
	var route func(pkt []byte) error
	route = func(pkt []byte) error {
		_, dst, err := wire.IPv4Addrs(pkt)
		if err != nil {
			return err
		}
		if dst == itAnycast {
			outs, err := neut.Process(pkt)
			if err != nil {
				return err
			}
			for _, o := range outs {
				if err := route(o.Pkt); err != nil {
					return err
				}
			}
			return nil
		}
		if h, ok := hosts[dst]; ok {
			h.HandlePacket(time.Now(), pkt)
		}
		return nil
	}
	mk := func(addr netip.Addr) *netneutral.Host {
		id, err := netneutral.NewIdentity(0)
		if err != nil {
			t.Fatal(err)
		}
		h, err := netneutral.NewHost(netneutral.HostConfig{
			Addr: addr, Identity: id, Transport: route,
		})
		if err != nil {
			t.Fatal(err)
		}
		hosts[addr] = h
		return h
	}
	ann, google := mk(itAnn), mk(itGoogle)

	var got []string
	google.SetOnData(func(peer netip.Addr, data []byte) {
		got = append(got, string(data))
		if err := google.Send(peer, []byte("ack:"+string(data))); err != nil {
			t.Errorf("reply: %v", err)
		}
	})
	var acks []string
	ann.SetOnData(func(_ netip.Addr, data []byte) { acks = append(acks, string(data)) })

	if err := ann.Setup(itAnycast); err != nil {
		t.Fatal(err)
	}
	if !ann.HasConduit(itAnycast) {
		t.Fatal("no conduit")
	}
	if err := ann.Connect(itAnycast, itGoogle, google.Identity()); err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"one", "two", "three"} {
		if err := ann.Send(itGoogle, []byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	if len(got) != 3 || len(acks) != 3 {
		t.Fatalf("messages: got=%v acks=%v", got, acks)
	}
	if ann.ConduitProvisional(itAnycast) {
		t.Error("grant should have retired the provisional key")
	}
	if neut.DynAddrCount() != 0 {
		t.Error("data path created per-flow state")
	}
}

// TestExperimentRegistryRunsF2 spot-checks the facade-exposed experiment
// registry (the full matrix runs in internal/eval's tests).
func TestExperimentRegistryRunsF2(t *testing.T) {
	if len(netneutral.Experiments()) != 21 {
		t.Fatalf("experiments = %d, want 21", len(netneutral.Experiments()))
	}
	exp, ok := netneutral.ExperimentByID("F2")
	if !ok {
		t.Fatal("F2 missing")
	}
	res, err := exp.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		if row.Measured != "pass" {
			t.Errorf("F2 %q = %s", row.Metric, row.Measured)
		}
	}
}

// TestUDPTunnelDeployment reproduces the neutralizerd/neutclient
// deployment in-process: a neutralizer behind a real UDP socket, two
// hosts tunneling IPv4-in-UDP through it, full conversation with key
// refresh. This is the paper's system running over the actual network
// stack.
func TestUDPTunnelDeployment(t *testing.T) {
	sched := netneutral.NewKeySchedule(netneutral.MasterKey{5}, time.Now(), time.Hour)
	neut, err := netneutral.NewNeutralizer(netneutral.NeutralizerConfig{
		Schedule:   sched,
		Anycast:    itAnycast,
		IsCustomer: func(a netip.Addr) bool { return itCustNet.Contains(a) },
	})
	if err != nil {
		t.Fatal(err)
	}
	daemon, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer daemon.Close()

	// Daemon loop: learn inner->outer mappings, process, forward.
	reg := map[netip.Addr]*net.UDPAddr{}
	go func() {
		buf := make([]byte, 64<<10)
		for {
			n, from, err := daemon.ReadFromUDP(buf)
			if err != nil {
				return
			}
			pkt := buf[:n]
			if src, _, err := wire.IPv4Addrs(pkt); err == nil {
				reg[src] = from
			}
			outs, err := neut.Process(pkt)
			if err != nil {
				continue
			}
			for _, o := range outs {
				if _, dst, err := wire.IPv4Addrs(o.Pkt); err == nil {
					if peer, ok := reg[dst]; ok {
						_, _ = daemon.WriteToUDP(o.Pkt, peer)
					}
				}
			}
		}
	}()

	mkTunnelHost := func(addr netip.Addr) (*netneutral.Host, *net.UDPConn, *[]string) {
		conn, err := net.DialUDP("udp4", nil, daemon.LocalAddr().(*net.UDPAddr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { conn.Close() })
		id, err := netneutral.NewIdentity(0)
		if err != nil {
			t.Fatal(err)
		}
		var inbox []string
		h, err := netneutral.NewHost(netneutral.HostConfig{
			Addr:     addr,
			Identity: id,
			Transport: func(pkt []byte) error {
				_, err := conn.Write(pkt)
				return err
			},
			OnData: func(_ netip.Addr, data []byte) { inbox = append(inbox, string(data)) },
		})
		if err != nil {
			t.Fatal(err)
		}
		return h, conn, &inbox
	}
	ann, annConn, annInbox := mkTunnelHost(itAnn)
	google, googleConn, googleInbox := mkTunnelHost(itGoogle)

	// Single-goroutine pumps per host (Host is not concurrency-safe, so
	// each host is driven by exactly one goroutine after setup).
	pump := func(h *netneutral.Host, conn *net.UDPConn, until func() bool) {
		buf := make([]byte, 64<<10)
		deadline := time.Now().Add(5 * time.Second)
		for !until() && time.Now().Before(deadline) {
			_ = conn.SetReadDeadline(time.Now().Add(20 * time.Millisecond))
			n, err := conn.Read(buf)
			if err != nil {
				continue
			}
			h.HandlePacket(time.Now(), buf[:n])
		}
	}

	// Google registers its inner address by sending any packet; a
	// key-fetch works and doubles as liveness.
	if err := google.InitiateTo(itAnycast, itAnn, ann.Identity(), nil); err != nil {
		t.Fatal(err)
	}
	pump(google, googleConn, func() bool { return google.Stats().ReverseInits > 0 })

	if err := ann.Setup(itAnycast); err != nil {
		t.Fatal(err)
	}
	pump(ann, annConn, func() bool { return ann.HasConduit(itAnycast) })
	if !ann.HasConduit(itAnycast) {
		t.Fatal("UDP key setup timed out")
	}
	if err := ann.Connect(itAnycast, itGoogle, google.Identity()); err != nil {
		t.Fatal(err)
	}
	if err := ann.Send(itGoogle, []byte("over real sockets")); err != nil {
		t.Fatal(err)
	}
	pump(google, googleConn, func() bool { return len(*googleInbox) > 0 })
	if len(*googleInbox) == 0 || (*googleInbox)[0] != "over real sockets" {
		t.Fatalf("google inbox = %v", *googleInbox)
	}
	// Reply path.
	if err := google.Send(itAnn, []byte("ack over sockets")); err != nil {
		t.Fatal(err)
	}
	pump(ann, annConn, func() bool { return len(*annInbox) > 0 })
	// The reverse-init earlier may have already delivered data; accept
	// either ordering but require the ack.
	found := false
	for _, m := range *annInbox {
		if m == "ack over sockets" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ann inbox = %v", *annInbox)
	}
}
