// Command tracecheck validates a Chrome trace-event JSON file (as
// written by `neutsim -traceout` or served on /trace.json) against the
// schema invariants the observability plane guarantees: required keys
// per event, known phases, non-decreasing timestamps globally and per
// (pid, tid) lane, non-negative durations on "X" slices, and balanced
// B/E pairs. CI runs it on the trace-smoke artifact; any violation
// exits non-zero.
//
// Usage:
//
//	go run ./scripts/tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"

	"netneutral/internal/obs"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.json>")
		os.Exit(2)
	}
	if err := run(os.Args[1]); err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", os.Args[1], err)
		os.Exit(1)
	}
}

func run(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if err := obs.ValidateChromeTrace(data); err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			slices++
		}
	}
	if slices == 0 {
		return fmt.Errorf("no span events (only metadata)")
	}
	fmt.Printf("tracecheck: ok (%d events, %d spans/instants)\n", len(doc.TraceEvents), slices)
	return nil
}
