// Command benchjson converts `go test -bench -benchmem` output on stdin
// into the BENCH_*.json schema used to track the performance trajectory
// across PRs (see scripts/bench.sh). It also evaluates the data-plane
// acceptance checks: BenchmarkProcessBatch must report zero allocations
// per op, and BenchmarkDataPathParallel at 4 workers should reach >= 2x
// the single-worker rate — a check that is only meaningful (and only
// enforced) when the host actually has >= 4 CPUs, so the host core count
// is recorded alongside every run. The netem engine checks ride along:
// BenchmarkNetemForward must be zero-alloc, BenchmarkNetemMetro's
// sim events/sec and forwarded pps are recorded so the metro-scale path
// can be tracked across PRs, and BenchmarkNetemMetroParallel's
// per-worker events/s feed the sharded engine's scaling check
// (netem_parallel_speedup: 4 workers >= 2x serial, enforced only on
// hosts with >= 4 CPUs). So do the dpi arms-race checks:
// BenchmarkDPIFeatureUpdate and BenchmarkDPIClassify must be zero-alloc
// (they sit on the transit hot path), the classifier's held-out
// accuracy on encrypted uncloaked traffic must reach 0.90, and the
// cloak goodput overhead (wire bytes per real byte) is recorded. The
// audit checks complete the set: BenchmarkAuditTrial's measured
// detection power against blatant dpi throttling must reach 0.90
// (audit_detection_power) and its neutral-ISP false-positive rate must
// stay at or below 0.05 (audit_false_positive_rate). Finally
// BenchmarkSimnetUDPEcho's "rtps" metric (blocking UDP echo round trips
// per wall second through the simnet bridge) is recorded as
// simnet_echo_rtps so the virtual-time driver's overhead is tracked
// across PRs. The observability plane adds two more: BenchmarkObsInc
// (one counter-stripe increment) must be zero-alloc
// (obs_inc_zero_alloc), and BenchmarkNetemMetroObs — the metro run with
// the epoch recorder and flight recorder live — must stay within 5% of
// BenchmarkNetemMetro's events/s (obs_overhead_pct). The causal-tracing
// plane adds two more: BenchmarkTraceOff (forwarding with per-hop delay
// attribution armed but no recorder attached) must be zero-alloc
// (trace_off_zero_alloc), and BenchmarkNetemMetroTrace — the metro run
// with 1% of flows traced end to end — must also stay within 5% of the
// untraced run's events/s (trace_overhead_pct). The continental
// backbone (PR 10) adds three: BenchmarkBackboneBuild's normalized
// construction time must stay <= 1000 ms per 100k hosts
// (backbone_build_ms_per_100k_hosts, the 1M-hosts-in-10s gate) with its
// resident B/host recorded (backbone_bytes_per_host), and
// BenchmarkBackboneEvents' 8-worker rate must reach 10M events/s
// (backbone_events_per_sec) — enforced only on hosts with >= 8 cores.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark result line.
type Bench struct {
	Name        string   `json:"name"`
	Iters       int64    `json:"iters"`
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	MBPerS      *float64 `json:"mb_per_s,omitempty"`
	PktsPerOp   int64    `json:"pkts_per_op"`
	Kpps        float64  `json:"kpps"`
	// EventsPerSec and PktsPerSec carry the netem engine metrics
	// (BenchmarkNetemMetro's "events/s" and "pps" report units).
	EventsPerSec *float64 `json:"events_per_sec,omitempty"`
	PktsPerSec   *float64 `json:"pkts_per_sec,omitempty"`
	// Accuracy carries BenchmarkDPIClassify's "acc" metric (held-out
	// classifier accuracy on encrypted uncloaked traffic); Overhead
	// carries BenchmarkCloakFrame's "xreal" metric (cloak wire bytes
	// per real byte).
	Accuracy *float64 `json:"accuracy,omitempty"`
	Overhead *float64 `json:"overhead_x_real,omitempty"`
	// Power and FPR carry BenchmarkAuditTrial's "power" (detection
	// power against blatant dpi throttling) and "fpr" (neutral-ISP
	// false-positive rate) metrics.
	Power *float64 `json:"audit_power,omitempty"`
	FPR   *float64 `json:"audit_fpr,omitempty"`
	// RTPerSec carries BenchmarkSimnetUDPEcho's "rtps" metric (blocking
	// echo round trips per wall second over the simnet bridge).
	RTPerSec *float64 `json:"rt_per_sec,omitempty"`
	// MsPer100kHosts and BytesPerHost carry BenchmarkBackboneBuild's
	// normalized construction time ("ms/100khosts") and resident heap
	// cost per customer host ("B/host") on the continental backbone.
	MsPer100kHosts *float64 `json:"ms_per_100k_hosts,omitempty"`
	BytesPerHost   *float64 `json:"bytes_per_host,omitempty"`
}

// Report is the BENCH_*.json document.
type Report struct {
	GeneratedBy string            `json:"generated_by"`
	Timestamp   string            `json:"timestamp"`
	Git         string            `json:"git,omitempty"`
	GoVersion   string            `json:"go_version"`
	GOOS        string            `json:"goos"`
	GOARCH      string            `json:"goarch"`
	CPU         string            `json:"cpu,omitempty"`
	Cores       int               `json:"cores"`
	Benchmarks  []Bench           `json:"benchmarks"`
	Checks      map[string]string `json:"checks"`
}

var (
	pktsRe = regexp.MustCompile(`pkts=(\d+)`)
	cpuSfx = regexp.MustCompile(`-\d+$`)
)

func main() {
	rep := Report{
		GeneratedBy: "scripts/bench.sh",
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
		Git:         os.Getenv("BENCH_GIT"),
		GoVersion:   runtime.Version(),
		GOOS:        runtime.GOOS,
		GOARCH:      runtime.GOARCH,
		Cores:       runtime.NumCPU(),
		Checks:      map[string]string{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if cpu, ok := strings.CutPrefix(line, "cpu:"); ok {
			rep.CPU = strings.TrimSpace(cpu)
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		b := Bench{Name: cpuSfx.ReplaceAllString(fields[0], ""), PktsPerOp: 1}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		b.Iters = iters
		if m := pktsRe.FindStringSubmatch(b.Name); m != nil {
			b.PktsPerOp, _ = strconv.ParseInt(m[1], 10, 64)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
			case "B/op":
				b.BytesPerOp = ptr(v)
			case "allocs/op":
				b.AllocsPerOp = ptr(v)
			case "MB/s":
				b.MBPerS = ptr(v)
			case "kpps":
				b.Kpps = v
			case "events/s":
				b.EventsPerSec = ptr(v)
			case "pps":
				b.PktsPerSec = ptr(v)
			case "acc":
				b.Accuracy = ptr(v)
			case "xreal":
				b.Overhead = ptr(v)
			case "power":
				b.Power = ptr(v)
			case "fpr":
				b.FPR = ptr(v)
			case "rtps":
				b.RTPerSec = ptr(v)
			case "ms/100khosts":
				b.MsPer100kHosts = ptr(v)
			case "B/host":
				b.BytesPerHost = ptr(v)
			}
		}
		if b.Kpps == 0 && b.NsPerOp > 0 {
			b.Kpps = float64(b.PktsPerOp) / b.NsPerOp * 1e6
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	evalChecks(&rep)
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	for k, v := range rep.Checks {
		fmt.Fprintf(os.Stderr, "check %-28s %s\n", k+":", v)
	}
}

func ptr(v float64) *float64 { return &v }

// evalChecks records the acceptance checks for the zero-alloc sharded
// data plane.
func evalChecks(rep *Report) {
	var batch, fwd, metro, metroObs, metroTrace, traceOff, obsInc, dpiClassify, dpiUpdate, cloakFrame, auditTrial, simnetEcho, bbBuild *Bench
	rates := map[string]float64{}
	parRates := map[string]float64{}
	bbRates := map[string]float64{}
	for i, b := range rep.Benchmarks {
		if strings.HasPrefix(b.Name, "BenchmarkProcessBatch/") {
			batch = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkNetemForward" {
			fwd = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkNetemMetro" {
			metro = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkNetemMetroObs" {
			metroObs = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkNetemMetroTrace" {
			metroTrace = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkTraceOff" {
			traceOff = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkObsInc" {
			obsInc = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkDPIClassify" {
			dpiClassify = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkDPIFeatureUpdate" {
			dpiUpdate = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkCloakFrame" {
			cloakFrame = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkAuditTrial" {
			auditTrial = &rep.Benchmarks[i]
		}
		if b.Name == "BenchmarkSimnetUDPEcho" {
			simnetEcho = &rep.Benchmarks[i]
		}
		if strings.HasPrefix(b.Name, "BenchmarkDataPathParallel/") {
			if i := strings.Index(b.Name, "workers="); i >= 0 {
				w := strings.SplitN(b.Name[i+len("workers="):], "/", 2)[0]
				rates[w] = b.Kpps
			}
		}
		if strings.HasPrefix(b.Name, "BenchmarkNetemMetroParallel/") && b.EventsPerSec != nil {
			if i := strings.Index(b.Name, "workers="); i >= 0 {
				w := strings.SplitN(b.Name[i+len("workers="):], "/", 2)[0]
				parRates[w] = *b.EventsPerSec
			}
		}
		if b.Name == "BenchmarkBackboneBuild" {
			bbBuild = &rep.Benchmarks[i]
		}
		if strings.HasPrefix(b.Name, "BenchmarkBackboneEvents/") && b.EventsPerSec != nil {
			if i := strings.Index(b.Name, "workers="); i >= 0 {
				w := strings.SplitN(b.Name[i+len("workers="):], "/", 2)[0]
				bbRates[w] = *b.EventsPerSec
			}
		}
	}
	switch {
	case metro == nil:
		rep.Checks["netem_metro_events_per_sec"] = "not run"
	case metro.EventsPerSec == nil || *metro.EventsPerSec <= 0:
		rep.Checks["netem_metro_events_per_sec"] = "FAIL (events/s metric missing)"
	default:
		rep.Checks["netem_metro_events_per_sec"] = fmt.Sprintf(
			"recorded (%.0f events/s, pre-refactor engine ~10k fwd pps on the 10k-host fan-out)",
			*metro.EventsPerSec)
	}
	zeroAllocCheck := func(name string, b *Bench) {
		switch {
		case b == nil:
			rep.Checks[name] = "not run"
		case b.AllocsPerOp == nil:
			rep.Checks[name] = "FAIL (allocs/op missing; run with -benchmem)"
		case *b.AllocsPerOp == 0:
			rep.Checks[name] = "pass (0 allocs/op)"
		default:
			rep.Checks[name] = fmt.Sprintf("FAIL (%v allocs/op)", *b.AllocsPerOp)
		}
	}
	zeroAllocCheck("process_batch_zero_alloc", batch)
	zeroAllocCheck("netem_forward_zero_alloc", fwd)
	zeroAllocCheck("dpi_classify_zero_alloc", dpiClassify)
	zeroAllocCheck("dpi_feature_update_zero_alloc", dpiUpdate)
	zeroAllocCheck("obs_inc_zero_alloc", obsInc)
	zeroAllocCheck("trace_off_zero_alloc", traceOff)
	// The observation-plane overhead bound: the metro run with the epoch
	// recorder and flight recorder live must keep >= 95% of the
	// unobserved run's event rate.
	switch {
	case metroObs == nil:
		rep.Checks["obs_overhead_pct"] = "not run"
	case metro == nil || metro.EventsPerSec == nil || *metro.EventsPerSec <= 0 ||
		metroObs.EventsPerSec == nil || *metroObs.EventsPerSec <= 0:
		rep.Checks["obs_overhead_pct"] = "FAIL (need events/s from both BenchmarkNetemMetro and BenchmarkNetemMetroObs)"
	default:
		pct := (1 - *metroObs.EventsPerSec / *metro.EventsPerSec) * 100
		if pct < 5 {
			rep.Checks["obs_overhead_pct"] = fmt.Sprintf(
				"pass (%.1f%% events/s cost with recorder+flight attached, want < 5%%)", pct)
		} else {
			rep.Checks["obs_overhead_pct"] = fmt.Sprintf(
				"FAIL (%.1f%% events/s cost with recorder+flight attached, want < 5%%)", pct)
		}
	}
	// The causal-tracing overhead bound: the metro run with the
	// deployment tracing posture (1% of flows recorded end to end, the
	// rest head-sampled) must keep >= 95% of the untraced run's event
	// rate.
	switch {
	case metroTrace == nil:
		rep.Checks["trace_overhead_pct"] = "not run"
	case metro == nil || metro.EventsPerSec == nil || *metro.EventsPerSec <= 0 ||
		metroTrace.EventsPerSec == nil || *metroTrace.EventsPerSec <= 0:
		rep.Checks["trace_overhead_pct"] = "FAIL (need events/s from both BenchmarkNetemMetro and BenchmarkNetemMetroTrace)"
	default:
		pct := (1 - *metroTrace.EventsPerSec / *metro.EventsPerSec) * 100
		if pct < 5 {
			rep.Checks["trace_overhead_pct"] = fmt.Sprintf(
				"pass (%.1f%% events/s cost with 1%% of flows traced end to end, want < 5%%)", pct)
		} else {
			rep.Checks["trace_overhead_pct"] = fmt.Sprintf(
				"FAIL (%.1f%% events/s cost with 1%% of flows traced end to end, want < 5%%)", pct)
		}
	}
	switch {
	case dpiClassify == nil:
		rep.Checks["dpi_accuracy_uncloaked"] = "not run"
	case dpiClassify.Accuracy == nil:
		rep.Checks["dpi_accuracy_uncloaked"] = "FAIL (acc metric missing)"
	case *dpiClassify.Accuracy >= 0.90:
		rep.Checks["dpi_accuracy_uncloaked"] = fmt.Sprintf("pass (%.2f on held-out encrypted flows, want >= 0.90)", *dpiClassify.Accuracy)
	default:
		rep.Checks["dpi_accuracy_uncloaked"] = fmt.Sprintf("FAIL (%.2f, want >= 0.90)", *dpiClassify.Accuracy)
	}
	switch {
	case cloakFrame == nil:
		rep.Checks["cloak_goodput_overhead"] = "not run"
	case cloakFrame.Overhead == nil || *cloakFrame.Overhead <= 1:
		rep.Checks["cloak_goodput_overhead"] = "FAIL (xreal metric missing or <= 1)"
	default:
		rep.Checks["cloak_goodput_overhead"] = fmt.Sprintf(
			"recorded (%.2fx wire bytes per real byte under the E7 cloak)", *cloakFrame.Overhead)
	}
	switch {
	case auditTrial == nil:
		rep.Checks["audit_detection_power"] = "not run"
	case auditTrial.Power == nil:
		rep.Checks["audit_detection_power"] = "FAIL (power metric missing)"
	case *auditTrial.Power >= 0.90:
		rep.Checks["audit_detection_power"] = fmt.Sprintf("pass (%.2f vs blatant dpi throttling, want >= 0.90)", *auditTrial.Power)
	default:
		rep.Checks["audit_detection_power"] = fmt.Sprintf("FAIL (%.2f, want >= 0.90)", *auditTrial.Power)
	}
	switch {
	case auditTrial == nil:
		rep.Checks["audit_false_positive_rate"] = "not run"
	case auditTrial.FPR == nil:
		rep.Checks["audit_false_positive_rate"] = "FAIL (fpr metric missing)"
	case *auditTrial.FPR <= 0.05:
		rep.Checks["audit_false_positive_rate"] = fmt.Sprintf("pass (%.3f on the neutral ISP, want <= 0.05)", *auditTrial.FPR)
	default:
		rep.Checks["audit_false_positive_rate"] = fmt.Sprintf("FAIL (%.3f, want <= 0.05)", *auditTrial.FPR)
	}
	switch {
	case simnetEcho == nil:
		rep.Checks["simnet_echo_rtps"] = "not run"
	case simnetEcho.RTPerSec == nil || *simnetEcho.RTPerSec <= 0:
		rep.Checks["simnet_echo_rtps"] = "FAIL (rtps metric missing)"
	default:
		rep.Checks["simnet_echo_rtps"] = fmt.Sprintf(
			"recorded (%.0f blocking UDP echo round trips/s through the simnet bridge)",
			*simnetEcho.RTPerSec)
	}
	// The continental-scale build gate: 1M hosts must build in <= 10s,
	// i.e. <= 1000 ms per 100k hosts, host-independent enough to enforce
	// everywhere. The per-host resident heap cost rides along as a
	// recorded trajectory number.
	switch {
	case bbBuild == nil:
		rep.Checks["backbone_build_ms_per_100k_hosts"] = "not run"
		rep.Checks["backbone_bytes_per_host"] = "not run"
	case bbBuild.MsPer100kHosts == nil || *bbBuild.MsPer100kHosts <= 0:
		rep.Checks["backbone_build_ms_per_100k_hosts"] = "FAIL (ms/100khosts metric missing)"
	default:
		if *bbBuild.MsPer100kHosts <= 1000 {
			rep.Checks["backbone_build_ms_per_100k_hosts"] = fmt.Sprintf(
				"pass (%.1f ms per 100k hosts, want <= 1000 so 1M hosts build in <= 10s)", *bbBuild.MsPer100kHosts)
		} else {
			rep.Checks["backbone_build_ms_per_100k_hosts"] = fmt.Sprintf(
				"FAIL (%.1f ms per 100k hosts, want <= 1000 so 1M hosts build in <= 10s)", *bbBuild.MsPer100kHosts)
		}
		if bbBuild.BytesPerHost != nil && *bbBuild.BytesPerHost > 0 {
			rep.Checks["backbone_bytes_per_host"] = fmt.Sprintf(
				"recorded (%.0f resident heap B per customer host on the compact backbone)", *bbBuild.BytesPerHost)
		} else {
			rep.Checks["backbone_bytes_per_host"] = "FAIL (B/host metric missing)"
		}
	}
	// The continental event-rate target: >= 10M events/s at 8 workers on
	// the E13 workload — only meaningful (and only enforced) on hosts
	// that actually have >= 8 cores; the serial rate is recorded either
	// way so the trajectory stays comparable across hosts.
	bb1, bb8 := bbRates["1"], bbRates["8"]
	switch {
	case bb1 == 0 || bb8 == 0:
		rep.Checks["backbone_events_per_sec"] = "not run"
	case rep.Cores < 8:
		rep.Checks["backbone_events_per_sec"] = fmt.Sprintf(
			"recorded (%.0f events/s serial); 10M events/s 8-worker target skipped: host has %d core(s) < 8",
			bb1, rep.Cores)
	case bb8 >= 10e6:
		rep.Checks["backbone_events_per_sec"] = fmt.Sprintf(
			"pass (%.0f events/s at 8 workers, want >= 10M; %.0f serial)", bb8, bb1)
	default:
		rep.Checks["backbone_events_per_sec"] = fmt.Sprintf(
			"FAIL (%.0f events/s at 8 workers, want >= 10M; %.0f serial)", bb8, bb1)
	}
	r1, r4 := rates["1"], rates["4"]
	switch {
	case r1 == 0 || r4 == 0:
		rep.Checks["parallel_scaling_4w"] = "not run"
	case rep.Cores < 4:
		rep.Checks["parallel_scaling_4w"] = fmt.Sprintf(
			"skipped: host has %d core(s) < 4; measured %.2fx", rep.Cores, r4/r1)
	case r4 >= 2*r1:
		rep.Checks["parallel_scaling_4w"] = fmt.Sprintf("pass (%.2fx of 1 worker)", r4/r1)
	default:
		rep.Checks["parallel_scaling_4w"] = fmt.Sprintf("FAIL (%.2fx of 1 worker, want >= 2x)", r4/r1)
	}
	// The sharded netem engine's scaling contract (PR 5): >= 2x metro
	// events/s at 4 workers vs serial, enforced — like the data-plane
	// check above — only on hosts that actually have >= 4 cores. The
	// per-worker rates are recorded either way so the trajectory stays
	// comparable across hosts.
	p1, p4 := parRates["1"], parRates["4"]
	switch {
	case p1 == 0 || p4 == 0:
		rep.Checks["netem_parallel_events_per_sec"] = "not run"
		rep.Checks["netem_parallel_speedup"] = "not run"
	default:
		rep.Checks["netem_parallel_events_per_sec"] = fmt.Sprintf(
			"recorded (%.0f events/s serial, %.0f at 4 workers on the sharded metro fan-out)", p1, p4)
		switch {
		case rep.Cores < 4:
			rep.Checks["netem_parallel_speedup"] = fmt.Sprintf(
				"skipped: host has %d core(s) < 4; measured %.2fx", rep.Cores, p4/p1)
		case p4 >= 2*p1:
			rep.Checks["netem_parallel_speedup"] = fmt.Sprintf("pass (%.2fx of 1 worker)", p4/p1)
		default:
			rep.Checks["netem_parallel_speedup"] = fmt.Sprintf("FAIL (%.2fx of 1 worker, want >= 2x)", p4/p1)
		}
	}
}
