#!/usr/bin/env bash
# bench.sh — run the data-plane benchmark suite and record a BENCH_*.json
# snapshot so future PRs can track the performance trajectory against
# this baseline.
#
# Usage:
#   scripts/bench.sh                 # full suite, default benchtime
#   BENCHTIME=2000x scripts/bench.sh # quicker pass
#   BENCH='ProcessBatch|Parallel' scripts/bench.sh
#
# The JSON includes host core count; the 4-worker scaling checks (data
# plane and sharded netem engine) are only enforced on hosts with >= 4
# CPUs (see scripts/benchjson). The netem engine benchmarks
# (NetemForward zero-alloc forwarding, NetemMetro 10k-host fan-out,
# NetemMetroObs with the observation plane live, NetemMetroTrace with
# 1% of flows traced end to end, NetemMetroParallel worker sweep) record sim
# events/sec and packets/sec alongside the data-plane numbers; ObsInc
# prices one metric increment and TraceOff prices forwarding with delay
# attribution armed but no recorder — both must stay zero-alloc.
# BackboneBuild prices continental topology construction (normalized
# ms/100khosts plus resident B/host) and BackboneEvents the sharded
# engine on the E13 workload at worker counts 1 and 8.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH="${BENCH:-DataPath|ProcessBatch|KeySetup$|VanillaForward|CryptoOps|NetemForward|NetemMetro$|NetemMetroObs$|NetemMetroTrace$|NetemMetroParallel|ObsInc$|TraceOff$|DPIFeatureUpdate|DPIClassify|CloakFrame|AuditTrial|AuditReportCodec|SimnetUDPEcho|BackboneBuild$|BackboneEvents}"
BENCHTIME="${BENCHTIME:-5000x}"
GIT="$(git rev-parse --short HEAD 2>/dev/null || echo nogit)"
OUT="${OUT:-BENCH_${GIT}.json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

echo "running: go test -run ^\$ -bench '${BENCH}' -benchmem -benchtime ${BENCHTIME} ." >&2
go test -run '^$' -bench "${BENCH}" -benchmem -benchtime "${BENCHTIME}" -count 1 . | tee "$RAW" >&2

BENCH_GIT="$GIT" go run ./scripts/benchjson < "$RAW" > "$OUT"
echo "wrote $OUT" >&2
