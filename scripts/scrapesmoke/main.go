// Command scrapesmoke is the CI smoke test for the observability plane:
// it builds cmd/neutsim, runs the reduced metro scenario with the
// metrics server on an ephemeral port (`-hosts 1000 -metrics
// 127.0.0.1:0`), waits for the run to finish, and then scrapes the
// export surface the way a monitoring stack would:
//
//   - /metrics must be well-formed Prometheus text exposition
//     (HELP/TYPE blocks and `name{labels} value` samples only) and must
//     declare every required family;
//   - /metrics.json must parse as a snapshot whose required families
//     carry the values a completed metro run implies (packets actually
//     delivered, recorder actually ticked, flight recorder actually
//     sampled);
//   - /flight.json must return a non-empty event array;
//   - /trace.json must be valid Chrome trace-event JSON (required keys
//     per event, known phases, monotonic timestamps, balanced B/E
//     pairs) with at least one span slice — the run is started with
//     `-trace all` so every flow is recorded.
//
// Any miss exits non-zero, so the scrape surface cannot silently rot.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"time"

	"netneutral/internal/obs"
)

// requiredFamilies are the base names a metro-run scrape must expose:
// the netem engine counters, the recorder/flight/stream health
// families, and the epoch-latency histogram.
var requiredFamilies = []string{
	"netem_events_total",
	"netem_delivered_packets_total",
	"netem_forwarded_packets_total",
	"netem_dropped_packets_total",
	"netem_link_tx_packets_total",
	"netem_epochs_total",
	"netem_epoch_wall_ns",
	"obs_recorder_ticks_total",
	"obs_flight_seen_total",
	"obs_flight_recorded_total",
	"obs_stream_frames_total",
	"obs_stream_dropped_frames_total",
}

// nonZero are families a completed 1000-host run must have advanced.
var nonZero = []string{
	"netem_events_total",
	"netem_delivered_packets_total",
	"netem_forwarded_packets_total",
	"netem_epochs_total",
	"obs_recorder_ticks_total",
	"obs_flight_seen_total",
	"obs_flight_recorded_total",
}

var (
	listenRe = regexp.MustCompile(`^metrics listening on (http://\S+)/metrics$`)
	holdRe   = regexp.MustCompile(`^metrics holding for `)
	sampleRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? (-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?|NaN|[+-]Inf)$`)
	typeRe   = regexp.MustCompile(`^# TYPE ([a-zA-Z_:][a-zA-Z0-9_:]*) (counter|gauge|histogram|summary|untyped)$`)
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintf(os.Stderr, "scrapesmoke: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("scrapesmoke: ok")
}

func run() error {
	dir, err := os.MkdirTemp("", "scrapesmoke")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "neutsim")
	build := exec.Command("go", "build", "-o", bin, "./cmd/neutsim")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		return fmt.Errorf("building neutsim: %w", err)
	}

	// -metricshold keeps the server up with the final (post-run) state;
	// we kill the process as soon as the scrape is done.
	cmd := exec.Command(bin,
		"-hosts", "1000", "-duration", "500ms", "-seed", "7", "-trace", "all",
		"-metrics", "127.0.0.1:0", "-metricshold", "2m")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return err
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return err
	}
	defer func() {
		_ = cmd.Process.Kill()
		_, _ = cmd.Process.Wait()
	}()

	// Wait for the listen line (printed before the run starts) and then
	// the hold line (printed after the run completes, when the final
	// counters are quiescent).
	base, err := awaitServer(stdout, 2*time.Minute)
	if err != nil {
		return err
	}

	names, err := checkPrometheus(base + "/metrics")
	if err != nil {
		return fmt.Errorf("/metrics: %w", err)
	}
	for _, want := range requiredFamilies {
		if !names[want] {
			return fmt.Errorf("/metrics: required family %s missing", want)
		}
	}
	if err := checkJSON(base + "/metrics.json"); err != nil {
		return fmt.Errorf("/metrics.json: %w", err)
	}
	if err := checkFlight(base + "/flight.json"); err != nil {
		return fmt.Errorf("/flight.json: %w", err)
	}
	if err := checkTrace(base + "/trace.json"); err != nil {
		return fmt.Errorf("/trace.json: %w", err)
	}
	return nil
}

// checkTrace validates the assembled-span export against the Chrome
// trace-event schema and requires at least one non-metadata event.
func checkTrace(url string) error {
	body, err := fetch(url)
	if err != nil {
		return err
	}
	if err := obs.ValidateChromeTrace(body); err != nil {
		return err
	}
	var doc struct {
		TraceEvents []struct {
			Ph string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return err
	}
	slices := 0
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "M" {
			slices++
		}
	}
	if slices == 0 {
		return fmt.Errorf("no span events (only metadata)")
	}
	return nil
}

// awaitServer scans neutsim's stdout until both the listen line and the
// run-complete hold line have appeared, returning the server base URL.
func awaitServer(stdout io.Reader, timeout time.Duration) (string, error) {
	type outcome struct {
		base string
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		var base string
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := sc.Text()
			fmt.Println(line)
			if m := listenRe.FindStringSubmatch(line); m != nil {
				base = m[1]
			}
			if holdRe.MatchString(line) {
				if base == "" {
					ch <- outcome{err: fmt.Errorf("run finished but no listen line seen")}
					return
				}
				ch <- outcome{base: base}
				// Keep draining so neutsim never blocks on a full pipe.
				for sc.Scan() {
				}
				return
			}
		}
		ch <- outcome{err: fmt.Errorf("neutsim exited before the metrics hold (scan err: %v)", sc.Err())}
	}()
	select {
	case o := <-ch:
		return o.base, o.err
	case <-time.After(timeout):
		return "", fmt.Errorf("timed out after %v waiting for neutsim", timeout)
	}
}

func fetch(url string) ([]byte, error) {
	c := &http.Client{Timeout: 30 * time.Second}
	resp, err := c.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %s", resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// checkPrometheus validates the text exposition line by line and
// returns the set of family base names declared by TYPE lines.
func checkPrometheus(url string) (map[string]bool, error) {
	body, err := fetch(url)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	samples := 0
	for i, line := range strings.Split(string(body), "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
		case strings.HasPrefix(line, "# TYPE "):
			m := typeRe.FindStringSubmatch(line)
			if m == nil {
				return nil, fmt.Errorf("line %d: malformed TYPE: %q", i+1, line)
			}
			names[m[1]] = true
		case sampleRe.MatchString(line):
			samples++
		default:
			return nil, fmt.Errorf("line %d: not valid exposition: %q", i+1, line)
		}
	}
	if samples == 0 {
		return nil, fmt.Errorf("no samples")
	}
	return names, nil
}

// checkJSON parses the snapshot and enforces the values a completed
// metro run implies.
func checkJSON(url string) error {
	body, err := fetch(url)
	if err != nil {
		return err
	}
	var snap struct {
		TimeNanos int64 `json:"ts"`
		Metrics   []struct {
			Name  string  `json:"name"`
			Value float64 `json:"value"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		return err
	}
	if len(snap.Metrics) == 0 {
		return fmt.Errorf("empty snapshot")
	}
	byName := map[string]float64{}
	for _, m := range snap.Metrics {
		byName[m.Name] = m.Value
	}
	for _, name := range nonZero {
		v, ok := byName[name]
		if !ok {
			return fmt.Errorf("family %s missing", name)
		}
		if v <= 0 {
			return fmt.Errorf("family %s = %v after a completed run, want > 0", name, v)
		}
	}
	return nil
}

// checkFlight requires at least one sampled trace event.
func checkFlight(url string) error {
	body, err := fetch(url)
	if err != nil {
		return err
	}
	var events []json.RawMessage
	if err := json.Unmarshal(body, &events); err != nil {
		return err
	}
	if len(events) == 0 {
		return fmt.Errorf("no sampled trace events")
	}
	return nil
}
