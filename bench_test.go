// Benchmarks regenerating the paper's evaluation numbers (§4) and the
// ablation measurements, one per experiment ID in the registry printed by
// `neutbench -list` (see README.md). The same measurement logic backs
// cmd/neutbench; these testing.B variants are the canonical way to
// re-measure on new hardware:
//
//	go test -bench=. -benchmem
//
// Paper reference points (AMD Opteron 2.6 GHz, Click/Linux 2.6, 2006):
// key setup 24.4 kpps; data path 422 kpps vs vanilla 600 kpps (0.70x);
// raw crypto 2.35M ops/s. Shape, not absolute values, is the target.
package netneutral_test

import (
	"crypto/rand"
	"fmt"
	"net/netip"
	"runtime"
	"sync"
	"testing"
	"time"

	"netneutral/internal/audit"
	"netneutral/internal/cloak"
	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/dpi"
	"netneutral/internal/eval"
	"netneutral/internal/netem"
	"netneutral/internal/obs"
	"netneutral/internal/onion"
	"netneutral/internal/simnet"
	"netneutral/internal/wire"
)

func mustEnv(b *testing.B, offload, alt bool) *eval.BenchEnv {
	b.Helper()
	env, err := eval.NewBenchEnv(offload, alt)
	if err != nil {
		b.Fatal(err)
	}
	return env
}

// BenchmarkKeySetup is E1: one key-setup response per iteration
// (RSA-512 e=3 encryption at the neutralizer). Paper: 24.4 kpps.
func BenchmarkKeySetup(b *testing.B) {
	env := mustEnv(b, false, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Neut.Process(env.SetupPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPath is E3's neutralized side: per-packet session-key
// recomputation, hidden-address decryption and header rewrite for the
// paper's 64-byte-payload packet. Paper: 422 kpps.
func BenchmarkDataPath(b *testing.B) {
	env := mustEnv(b, false, false)
	b.SetBytes(int64(len(env.DataPkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Neut.Process(env.DataPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReturnPath measures the reverse direction: source-address
// encryption and anycast substitution.
func BenchmarkReturnPath(b *testing.B) {
	env := mustEnv(b, false, false)
	b.SetBytes(int64(len(env.ReturnPkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Neut.Process(env.ReturnPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDataPathScratch is the zero-allocation variant of
// BenchmarkDataPath: same packets, same outputs, but processed through a
// reusable Scratch the way a data-plane worker runs. Must report
// 0 allocs/op.
func BenchmarkDataPathScratch(b *testing.B) {
	env := mustEnv(b, false, false)
	s := core.NewScratch()
	if _, err := env.Neut.ProcessScratch(s, env.DataPkt); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(env.DataPkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Reset()
		if _, err := env.Neut.ProcessScratch(s, env.DataPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// batchPoolEnv builds a pool and a mixed-source batch for the sharded
// data-plane benchmarks.
func batchPoolEnv(b *testing.B, workers, batchSize int) (*core.Pool, [][]byte) {
	b.Helper()
	env := mustEnv(b, false, false)
	pkts, err := env.DataBatch(64, batchSize)
	if err != nil {
		b.Fatal(err)
	}
	pool, err := core.NewPool(core.PoolConfig{Workers: workers, Config: env.NeutralizerConfig()})
	if err != nil {
		b.Fatal(err)
	}
	// Warm the buffer rings and the epoch cipher cache so the timed
	// region measures steady state.
	if _, dropped := pool.ProcessBatch(pkts); dropped != 0 {
		b.Fatalf("%d packets dropped in warmup", dropped)
	}
	return pool, pkts
}

// BenchmarkProcessBatch measures the sharded batch interface end to end.
// One op is one 256-packet batch; steady state must report 0 allocs/op —
// the acceptance bar for the zero-allocation data plane.
func BenchmarkProcessBatch(b *testing.B) {
	const batchSize = 256
	b.Run(fmt.Sprintf("pkts=%d", batchSize), func(b *testing.B) {
		pool, pkts := batchPoolEnv(b, 0, batchSize)
		defer pool.Close()
		b.SetBytes(int64(batchSize * len(pkts[0])))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, dropped := pool.ProcessBatch(pkts); dropped != 0 {
				b.Fatalf("%d packets dropped", dropped)
			}
		}
		b.StopTimer()
		reportKpps(b, batchSize)
	})
}

// BenchmarkDataPathParallel sweeps the worker count of the sharded pool:
// the in-process version of the paper's anycast-replication scaling
// argument. On a multi-core host throughput should grow near-linearly to
// the core count; kpps is reported per sub-benchmark so
// scripts/bench.sh can record the scaling curve (it annotates the
// recorded numbers with the host's core count — on a single-core
// machine the sweep is flat by construction).
func BenchmarkDataPathParallel(b *testing.B) {
	const batchSize = 256
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d/pkts=%d", workers, batchSize), func(b *testing.B) {
			pool, pkts := batchPoolEnv(b, workers, batchSize)
			defer pool.Close()
			b.SetBytes(int64(batchSize * len(pkts[0])))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, dropped := pool.ProcessBatch(pkts); dropped != 0 {
					b.Fatalf("%d packets dropped", dropped)
				}
			}
			b.StopTimer()
			reportKpps(b, batchSize)
		})
	}
}

// reportKpps converts ns/op over a batch into thousands of packets per
// second, the unit the paper reports.
func reportKpps(b *testing.B, pktsPerOp int) {
	if b.Elapsed() <= 0 || b.N == 0 {
		return
	}
	nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
	b.ReportMetric(float64(pktsPerOp)/nsPerOp*float64(time.Second.Nanoseconds())/1e3, "kpps")
}

// BenchmarkVanillaForward is E3's baseline: plain IP forwarding work on a
// packet of the same size. Paper: 600 kpps.
func BenchmarkVanillaForward(b *testing.B) {
	env := mustEnv(b, false, false)
	pkt := env.FreshVanilla()
	b.SetBytes(int64(len(pkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%200 == 199 {
			b.StopTimer()
			pkt = env.FreshVanilla() // TTL refill, outside the timer
			b.StartTimer()
		}
		if err := core.VanillaForward(pkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCryptoOps is E4: the raw symmetric primitive the data path is
// built from. Paper (openssl): 2.35M ops/s.
func BenchmarkCryptoOps(b *testing.B) {
	key := aesutil.Key{1}
	data := make([]byte, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		data[0] = byte(i)
		_ = aesutil.CBCMAC(key, data)
	}
}

// BenchmarkAddrBlockRoundTrip measures the per-packet AES block pair
// (encrypt at source, decrypt at neutralizer).
func BenchmarkAddrBlockRoundTrip(b *testing.B) {
	key := aesutil.Key{1}
	a := netip.MustParseAddr("10.10.0.5")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ct, err := aesutil.EncryptAddr(key, a, [8]byte{byte(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := aesutil.DecryptAddr(key, ct); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeySetupAlternative is A1: the rejected §3.2 design where the
// neutralizer pays an RSA decryption per setup.
func BenchmarkKeySetupAlternative(b *testing.B) {
	env := mustEnv(b, false, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Neut.Process(env.AltPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKeySetupOffload is A2: neutralizer-side cost when the RSA
// encryption is delegated to a customer helper (stamp + forward only).
func BenchmarkKeySetupOffload(b *testing.B) {
	env := mustEnv(b, true, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := env.Neut.Process(env.SetupPkt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOnionCircuitSetup is A3's baseline cost: a 3-hop telescoped
// circuit (3 RSA-1024 decryptions at relays) per flow.
func BenchmarkOnionCircuitSetup(b *testing.B) {
	relays := make([]*onion.Relay, 3)
	for i := range relays {
		r, err := onion.NewRelay(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		relays[i] = r
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, err := onion.BuildCircuit(rand.Reader, relays...)
		if err != nil {
			b.Fatal(err)
		}
		c.Close()
	}
}

// BenchmarkOnionDataCell is A3's per-packet baseline: three onion layers
// versus the neutralizer's single keyed hash + AES block.
func BenchmarkOnionDataCell(b *testing.B) {
	relays := make([]*onion.Relay, 3)
	for i := range relays {
		r, err := onion.NewRelay(rand.Reader)
		if err != nil {
			b.Fatal(err)
		}
		relays[i] = r
	}
	circ, err := onion.BuildCircuit(rand.Reader, relays...)
	if err != nil {
		b.Fatal(err)
	}
	dst := netip.MustParseAddr("10.10.0.5")
	payload := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := circ.Send(dst, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNetemForward measures the emulator's forwarding hot path: one
// packet originated, forwarded across a router, and delivered per op
// (two links, ~6 events). The acceptance bar for the pooled-packet,
// typed-event engine is 0 allocs/op in steady state.
func BenchmarkNetemForward(b *testing.B) {
	simStart := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(simStart, 1)
	a := sim.MustAddNode("a", "", netip.MustParseAddr("10.0.0.1"))
	r := sim.MustAddNode("r", "", netip.MustParseAddr("10.0.0.254"))
	c := sim.MustAddNode("c", "", netip.MustParseAddr("10.0.1.1"))
	sim.Connect(a, r, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(r, c, netem.LinkConfig{Delay: time.Millisecond})
	sim.BuildRoutes()
	delivered := 0
	c.SetHandler(func(time.Time, []byte) { delivered++ })
	env := mustEnv(b, false, false)
	pkt := env.FreshVanilla()
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.1.1")
	if err := wire.RewriteIPv4Addrs(pkt, &src, &dst); err != nil {
		b.Fatal(err)
	}
	// Warm the pool and the event heap so the timed region is steady
	// state.
	_ = a.Send(pkt)
	sim.Run()
	b.SetBytes(int64(len(pkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(pkt); err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
	b.StopTimer()
	if delivered != b.N+1 {
		b.Fatalf("delivered %d/%d", delivered, b.N+1)
	}
	reportKpps(b, 1)
}

// BenchmarkTraceOff measures the forwarding hot path with per-hop delay
// attribution armed but no flight recorder attached: a cause-tagged
// policing hook on the router delays every packet, so the attribution
// accumulators (queue wait, serialization, propagation, policy delay)
// are exercised on every hop. The acceptance bar (trace_off_zero_alloc
// in scripts/benchjson) is still 0 allocs/op — with tracing off, the
// attribution plumbing must cost nothing on the allocator.
func BenchmarkTraceOff(b *testing.B) {
	simStart := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(simStart, 1)
	a := sim.MustAddNode("a", "", netip.MustParseAddr("10.0.0.1"))
	r := sim.MustAddNode("r", "", netip.MustParseAddr("10.0.0.254"))
	c := sim.MustAddNode("c", "", netip.MustParseAddr("10.0.1.1"))
	sim.Connect(a, r, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(r, c, netem.LinkConfig{Delay: time.Millisecond})
	sim.BuildRoutes()
	r.AddTransitHook(func(time.Time, *netem.Node, []byte) netem.Verdict {
		return netem.Verdict{
			Delay: 200 * time.Microsecond,
			Cause: netem.CauseClassDelay,
			Class: 1,
		}
	})
	delivered := 0
	c.SetHandler(func(time.Time, []byte) { delivered++ })
	env := mustEnv(b, false, false)
	pkt := env.FreshVanilla()
	src, dst := netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.1.1")
	if err := wire.RewriteIPv4Addrs(pkt, &src, &dst); err != nil {
		b.Fatal(err)
	}
	// Warm the pool and the event heap so the timed region is steady
	// state.
	_ = a.Send(pkt)
	sim.Run()
	b.SetBytes(int64(len(pkt)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(pkt); err != nil {
			b.Fatal(err)
		}
		sim.Run()
	}
	b.StopTimer()
	if delivered != b.N+1 {
		b.Fatalf("delivered %d/%d", delivered, b.N+1)
	}
	reportKpps(b, 1)
}

// BenchmarkNetemMetro drives the 10k-host fan-out (built once) with
// bursts of neutralized traffic: the engine-scale acceptance benchmark.
// It reports sim events/sec and forwarded packets/sec; scripts/benchjson
// records both in BENCH_*.json. Pre-refactor engine on the same topology:
// ~10k pps (linear route scans, per-hop copies, closure events).
func BenchmarkNetemMetro(b *testing.B) {
	const hosts = 10000
	const burst = 512
	st, err := eval.NewMetroBench(hosts, burst)
	if err != nil {
		b.Fatal(err)
	}
	// One warmup burst outside the timer.
	if err := st.RunBurst(); err != nil {
		b.Fatal(err)
	}
	ev0, fwd0 := st.Counters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RunBurst(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev1, fwd1 := st.Counters()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ev1-ev0)/sec, "events/s")
		b.ReportMetric(float64(fwd1-fwd0)/sec, "pps")
	}
}

// BenchmarkObsInc measures the observability plane's hot-path unit: one
// single-writer counter-stripe increment on a registered family per op.
// The acceptance bar (scripts/benchjson check obs_inc_zero_alloc) is
// 0 allocs/op — instrumentation on the deterministic sim path must
// never touch the allocator, and the plain stripe uses no atomics.
func BenchmarkObsInc(b *testing.B) {
	reg := obs.NewRegistry()
	c := reg.Counter("bench_obs_inc_total", "Benchmark stripe.").Stripe(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
	b.StopTimer()
	if got := c.Value(); got != uint64(b.N) {
		b.Fatalf("counter = %d, want %d", got, b.N)
	}
}

// BenchmarkNetemMetroObs is BenchmarkNetemMetro with the observation
// plane live: the epoch Recorder samples every registered family at
// each barrier and the FlightRecorder head-samples the trace stream.
// scripts/benchjson compares its events/s against the unobserved metro
// run and enforces obs_overhead_pct < 5% — the bound that makes
// always-on recording tenable at metro scale.
func BenchmarkNetemMetroObs(b *testing.B) {
	const hosts = 10000
	const burst = 512
	st, err := eval.NewMetroBenchObserved(hosts, burst)
	if err != nil {
		b.Fatal(err)
	}
	// One warmup burst outside the timer.
	if err := st.RunBurst(); err != nil {
		b.Fatal(err)
	}
	ev0, fwd0 := st.Counters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RunBurst(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev1, fwd1 := st.Counters()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ev1-ev0)/sec, "events/s")
		b.ReportMetric(float64(fwd1-fwd0)/sec, "pps")
	}
}

// BenchmarkNetemMetroTrace is BenchmarkNetemMetro with always-on causal
// tracing live: the deterministic flow sampler records 1% of flows end
// to end (every hop, span-assembly-complete) and the rest head-sample
// at 1-in-64. scripts/benchjson compares its events/s against the
// untraced metro run and enforces trace_overhead_pct < 5% — the bound
// that makes always-on flow tracing tenable at metro scale.
func BenchmarkNetemMetroTrace(b *testing.B) {
	const hosts = 10000
	const burst = 512
	st, err := eval.NewMetroBenchTraced(hosts, burst)
	if err != nil {
		b.Fatal(err)
	}
	// One warmup burst outside the timer.
	if err := st.RunBurst(); err != nil {
		b.Fatal(err)
	}
	ev0, fwd0 := st.Counters()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.RunBurst(); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	ev1, fwd1 := st.Counters()
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(ev1-ev0)/sec, "events/s")
		b.ReportMetric(float64(fwd1-fwd0)/sec, "pps")
	}
}

// BenchmarkNetemMetroParallel measures the sharded conservative engine
// across worker counts on the E9 workload: neutralized downstream load
// plus intra-subtree host chatter on a 2048-host fan-out (10 shards),
// one 100ms simulated chunk per op — long enough that every host's
// chatter interval (~26ms at these rates) fits several emissions, and
// RunChunk's scheduled-count return is checked so the chatter half of
// the workload can never silently truncate to zero. scripts/benchjson
// records each worker count's events/s as netem_parallel_events_per_sec
// and enforces the 4-vs-1 worker speedup (>= 2x) on hosts with >= 4
// cores — the same gate the PR-1 data-plane scaling check uses. With a
// fixed seed the simulation outcome is bit-identical at every worker
// count (E9 enforces that); only the wall clock may differ.
func BenchmarkNetemMetroParallel(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fix, err := eval.NewParMetroBench(2048, workers)
			if err != nil {
				b.Fatal(err)
			}
			const chunk = 100 * time.Millisecond
			if fix.RunChunk(chunk) == 0 { // warm pools, queues, shard plan
				b.Fatal("chunk scheduled no intra-subtree chatter; wrong workload")
			}
			ev0 := fix.Events()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if fix.RunChunk(chunk) == 0 {
					b.Fatal("chunk scheduled no intra-subtree chatter; wrong workload")
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(fix.Events()-ev0)/sec, "events/s")
			}
		})
	}
}

// BenchmarkSimnetUDPEcho measures the simnet bridge's wake/step overhead:
// one blocking UDP echo round trip (client Write -> virtual 1ms link ->
// server ReadFrom/WriteTo -> client Read) per op, driven by the
// quiescence-detecting driver. The dominant cost is the runtime.Stack
// quiescence probe per wake, which is the price of running unmodified
// blocking protocol stacks deterministically; the "rtps" metric (echo
// round trips per wall second) is recorded as simnet_echo_rtps in
// BENCH_*.json so bridge overhead stays visible across PRs.
func BenchmarkSimnetUDPEcho(b *testing.B) {
	simStart := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(simStart, 1)
	srvAddr := netip.MustParseAddr("10.0.0.1")
	s := sim.MustAddNode("srv", "", srvAddr)
	c := sim.MustAddNode("cli", "", netip.MustParseAddr("10.0.0.2"))
	sim.Connect(s, c, netem.LinkConfig{Delay: time.Millisecond})
	sim.BuildRoutes()
	n := simnet.New(sim)
	srv, err := n.ListenUDP(s, 7)
	if err != nil {
		b.Fatal(err)
	}
	cli, err := n.DialUDP(c, netip.AddrPortFrom(srvAddr, 7))
	if err != nil {
		b.Fatal(err)
	}
	n.Go(func() {
		buf := make([]byte, 128)
		for {
			m, from, err := srv.ReadFrom(buf)
			if err != nil {
				return
			}
			if _, err := srv.WriteTo(buf[:m], from); err != nil {
				return
			}
		}
	})
	done := 0
	n.Go(func() {
		defer srv.Close()
		msg := make([]byte, 64)
		buf := make([]byte, 128)
		for i := 0; i < b.N; i++ {
			if _, err := cli.Write(msg); err != nil {
				return
			}
			if m, err := cli.Read(buf); err != nil || m != len(msg) {
				return
			}
			done++
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := n.Run(); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	if done != b.N {
		b.Fatalf("completed %d/%d round trips", done, b.N)
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(float64(done)/sec, "rtps")
	}
}

// dpiBenchState lazily builds the shared DPI fixture (a trained
// classifier, held-out labeled vectors with measured accuracy, and the
// cloak cost) so the dpi/cloak benchmarks pay the simulation setup
// once.
var dpiBenchState struct {
	once sync.Once
	fix  *eval.DPIBench
	err  error
}

func dpiFixture(b *testing.B) *eval.DPIBench {
	b.Helper()
	dpiBenchState.once.Do(func() {
		dpiBenchState.fix, dpiBenchState.err = eval.NewDPIBench()
	})
	if dpiBenchState.err != nil {
		b.Fatal(dpiBenchState.err)
	}
	return dpiBenchState.fix
}

// BenchmarkDPIFeatureUpdate measures the statistical adversary's
// per-packet cost: one flow-table Observe (map lookup + windowed
// feature arithmetic) per op. This path runs inside a transit hook on
// the forwarding hot path, so the acceptance bar is 0 allocs/op
// (scripts/benchjson check dpi_feature_update_zero_alloc).
func BenchmarkDPIFeatureUpdate(b *testing.B) {
	tab := dpi.NewFlowTable(dpi.Config{})
	key, err := netem.FlowKeyFrom(
		netip.MustParseAddr("172.16.1.10"), netip.MustParseAddr("10.200.0.1"), wire.ProtoShim)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC).UnixNano()
	tab.Observe(key, true, 212, now)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now += int64(20 * time.Millisecond)
		tab.Observe(key, true, 212, now)
	}
	b.StopTimer()
	reportKpps(b, 1)
}

// BenchmarkDPIClassify measures one flow classification (feature
// vector against all trained profiles) and reports the classifier's
// held-out accuracy on encrypted-but-uncloaked app traffic as the
// "acc" metric — the dpi_accuracy_uncloaked check (>= 0.90) in
// BENCH_*.json. Must be 0 allocs/op (dpi_classify_zero_alloc).
func BenchmarkDPIClassify(b *testing.B) {
	fix := dpiFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if class, _ := fix.Cls.ClassifyVec(&fix.Samples[i%len(fix.Samples)].Vec); class == dpi.ClassUnknown {
			b.Fatal("classifier returned unknown")
		}
	}
	b.StopTimer()
	b.ReportMetric(fix.Accuracy, "acc")
}

// BenchmarkCloakFrame measures the cloak encode+decode round trip on a
// VoIP-size payload (reused buffer, 0 allocs/op) and reports the
// measured E7 cloak goodput overhead (wire bytes per real byte) as the
// "xreal" metric — recorded as cloak_goodput_overhead in BENCH_*.json.
func BenchmarkCloakFrame(b *testing.B) {
	fix := dpiFixture(b)
	payload := make([]byte, 160)
	buckets := []int{1400}
	buf := make([]byte, 0, 1400)
	b.SetBytes(160)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = cloak.AppendFrame(buf[:0], payload, buckets)
		got, cover, err := cloak.DecodeFrame(buf)
		if err != nil || cover || len(got) != len(payload) {
			b.Fatalf("round trip: %d bytes cover=%v err=%v", len(got), cover, err)
		}
	}
	b.StopTimer()
	b.ReportMetric(fix.CloakOverhead, "xreal")
}

// auditBenchState lazily builds the shared audit fixture (a reduced E8
// run's measured detection power and false-positive rate plus one
// blatant-dpi vantage report) so the audit benchmark pays the
// simulation setup once.
var auditBenchState struct {
	once sync.Once
	fix  *eval.AuditBench
	err  error
}

func auditFixture(b *testing.B) *eval.AuditBench {
	b.Helper()
	auditBenchState.once.Do(func() {
		auditBenchState.fix, auditBenchState.err = eval.NewAuditBench()
	})
	if auditBenchState.err != nil {
		b.Fatal(auditBenchState.err)
	}
	return auditBenchState.fix
}

// BenchmarkAuditTrial measures one full per-vantage audit decision —
// goodput and delay sample extraction, Mann-Whitney, Kolmogorov-
// Smirnov and exceedance tests, effect gates — on a real blatant-dpi
// vantage report, and reports the fixture's measured detection power
// ("power", the audit_detection_power check, >= 0.90) and neutral-ISP
// false-positive rate ("fpr", audit_false_positive_rate, <= 0.05).
func BenchmarkAuditTrial(b *testing.B) {
	fix := auditFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if v := audit.Decide(fix.Report, audit.DecisionConfig{}); !v.Discriminated {
			b.Fatal("blatant-dpi vantage report not ruled discriminated")
		}
	}
	b.StopTimer()
	b.ReportMetric(fix.Power, "power")
	b.ReportMetric(fix.FPR, "fpr")
}

// BenchmarkAuditReportCodec measures the probe-report wire round trip
// (encode + decode) on the fixture's report — the surface
// FuzzAuditReport hardens.
func BenchmarkAuditReportCodec(b *testing.B) {
	fix := auditFixture(b)
	buf := make([]byte, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = audit.AppendReport(buf[:0], fix.Report)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := audit.DecodeReport(buf); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkArmsScenario runs a reduced E7 cell matrix per iteration:
// the end-to-end regression guard on the arms-race path.
func BenchmarkArmsScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunArms(eval.ArmsConfig{
			FlowsPerClass: 8, Seed: 7, Duration: 2 * time.Second,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure1Scenario runs the full F1 emulation (both phases) per
// iteration: an end-to-end regression guard on simulator performance.
func BenchmarkFigure1Scenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunF1(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVoIPScenario runs the A4 emulation per iteration.
func BenchmarkVoIPScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunA4(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPushbackScenario runs the A5 emulation per iteration.
func BenchmarkPushbackScenario(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := eval.RunA5(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBackboneBuild prices continental-scale topology
// construction: one 4-metro x 2500-host backbone (prefix-compressed
// FIBs, slab-allocated compact hosts) per op. scripts/benchjson
// normalizes the op time to backbone_build_ms_per_100k_hosts (the gate
// behind the 1M-hosts-in-seconds target) and records B/host — the
// resident heap cost of one customer, measured once on a retained
// build outside the timer.
func BenchmarkBackboneBuild(b *testing.B) {
	const metros, hostsPer = 4, 2500
	const hostsTotal = metros * hostsPer
	simStart := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	spec := netem.BackboneSpec{Metros: metros, HostsPerMetro: hostsPer}

	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	keep := netem.NewSimulator(simStart, 1)
	if _, err := netem.BuildBackbone(keep, spec); err != nil {
		b.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	bytesPerHost := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / hostsTotal

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := netem.NewSimulator(simStart, 1)
		if _, err := netem.BuildBackbone(s, spec); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	runtime.KeepAlive(keep)
	msPerOp := b.Elapsed().Seconds() * 1e3 / float64(b.N)
	b.ReportMetric(msPerOp*100_000/hostsTotal, "ms/100khosts")
	b.ReportMetric(bytesPerHost, "B/host")
}

// BenchmarkBackboneEvents measures the sharded engine on the E13
// continental workload: 8 metros x 1250 customers (9 shards) carrying
// neutralized cross-backbone flows, plain cross-metro probes, and
// fluid background load; one 25ms simulated chunk per op.
// scripts/benchjson records each worker count's events/s as
// backbone_events_per_sec and enforces the >= 10M events/s target at 8
// workers only on hosts with >= 8 cores (worker counts above the shard
// count are clamped, and a 1-core CI box says nothing about it). The
// seeded outcome is bit-identical at every worker count — E13 enforces
// that; only the wall clock may differ.
func BenchmarkBackboneEvents(b *testing.B) {
	for _, workers := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			fix, err := eval.NewBackboneBench(8, 1250, workers)
			if err != nil {
				b.Fatal(err)
			}
			const chunk = 25 * time.Millisecond
			if n, err := fix.RunChunk(chunk); err != nil || n == 0 { // warm pools, queues, shard plan
				b.Fatalf("warmup chunk: scheduled %d, err %v", n, err)
			}
			ev0 := fix.Events()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				n, err := fix.RunChunk(chunk)
				if err != nil {
					b.Fatal(err)
				}
				if n == 0 {
					b.Fatal("chunk scheduled no traffic; wrong workload")
				}
			}
			b.StopTimer()
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(fix.Events()-ev0)/sec, "events/s")
			}
		})
	}
}
