// Package multihome implements §3.5: a site connected to multiple ISPs
// publishes one neutralizer address per provider in its DNS records, and
// the ISP-level path of its traffic is decided by how *sources* pick
// among those addresses — the same situation as IPv6 multi-address
// selection (RFC 3484), which the paper cites.
//
// A Selector owns the candidate list and a Strategy. Strategies range
// from naive (static, round-robin) to feedback-driven (latency-weighted,
// and the paper's closing suggestion that "two hosts may always use
// trial-and-error to find a path that's working for them").
package multihome

import (
	"errors"
	"math/rand"
	"net/netip"
	"sync"
	"time"
)

// ErrNoCandidates is returned when the selector has nothing to pick from.
var ErrNoCandidates = errors.New("multihome: no candidate neutralizers")

// Strategy picks one of the candidate service addresses and learns from
// feedback.
type Strategy interface {
	// Pick chooses among candidates (never empty).
	Pick(candidates []netip.Addr) netip.Addr
	// Feedback reports the outcome of using addr: success and observed
	// round-trip time (0 if unknown).
	Feedback(addr netip.Addr, ok bool, rtt time.Duration)
	// Name identifies the strategy in experiment output.
	Name() string
}

// Static always picks the first candidate (what a naive resolver does
// with the first record).
type Static struct{}

// Pick implements Strategy.
func (Static) Pick(c []netip.Addr) netip.Addr { return c[0] }

// Feedback implements Strategy.
func (Static) Feedback(netip.Addr, bool, time.Duration) {}

// Name implements Strategy.
func (Static) Name() string { return "static" }

// RoundRobin cycles through candidates, spreading load evenly.
type RoundRobin struct {
	mu sync.Mutex
	i  int
}

// Pick implements Strategy.
func (r *RoundRobin) Pick(c []netip.Addr) netip.Addr {
	r.mu.Lock()
	defer r.mu.Unlock()
	a := c[r.i%len(c)]
	r.i++
	return a
}

// Feedback implements Strategy.
func (*RoundRobin) Feedback(netip.Addr, bool, time.Duration) {}

// Name implements Strategy.
func (*RoundRobin) Name() string { return "round-robin" }

// Weighted picks proportionally to the inverse of each candidate's
// smoothed RTT (latency-probing load balance, the "borrow any technique
// that can balance traffic load in that context" remedy).
type Weighted struct {
	mu  sync.Mutex
	rtt map[netip.Addr]float64 // smoothed, seconds
	rng *rand.Rand
}

// NewWeighted creates a latency-weighted strategy with a seeded RNG.
func NewWeighted(seed int64) *Weighted {
	return &Weighted{rtt: make(map[netip.Addr]float64), rng: rand.New(rand.NewSource(seed))}
}

// Pick implements Strategy.
func (w *Weighted) Pick(c []netip.Addr) netip.Addr {
	w.mu.Lock()
	defer w.mu.Unlock()
	weights := make([]float64, len(c))
	total := 0.0
	for i, a := range c {
		r, ok := w.rtt[a]
		if !ok || r <= 0 {
			r = 0.010 // optimistic prior: 10ms
		}
		weights[i] = 1 / r
		total += weights[i]
	}
	x := w.rng.Float64() * total
	for i, wt := range weights {
		if x < wt {
			return c[i]
		}
		x -= wt
	}
	return c[len(c)-1]
}

// Feedback implements Strategy (EWMA with alpha 1/4; failures count as a
// 1-second RTT so the candidate is deprioritized but not banned).
func (w *Weighted) Feedback(addr netip.Addr, ok bool, rtt time.Duration) {
	sample := rtt.Seconds()
	if !ok {
		sample = 1.0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	old, seen := w.rtt[addr]
	if !seen {
		w.rtt[addr] = sample
		return
	}
	w.rtt[addr] = old + (sample-old)/4
}

// Name implements Strategy.
func (*Weighted) Name() string { return "latency-weighted" }

// TrialAndError sticks with a working candidate and moves to the next on
// failure — the paper's final fallback.
type TrialAndError struct {
	mu      sync.Mutex
	current netip.Addr
	failed  map[netip.Addr]bool
}

// NewTrialAndError creates the strategy.
func NewTrialAndError() *TrialAndError {
	return &TrialAndError{failed: make(map[netip.Addr]bool)}
}

// Pick implements Strategy: the sticky current choice if it has not
// failed, else the first non-failed candidate (wrapping to forgive all
// failures if every candidate failed).
func (t *TrialAndError) Pick(c []netip.Addr) netip.Addr {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.current.IsValid() && !t.failed[t.current] && contains(c, t.current) {
		return t.current
	}
	for _, a := range c {
		if !t.failed[a] {
			t.current = a
			return a
		}
	}
	// Everything failed: forgive and retry from the top.
	t.failed = make(map[netip.Addr]bool)
	t.current = c[0]
	return c[0]
}

// Feedback implements Strategy.
func (t *TrialAndError) Feedback(addr netip.Addr, ok bool, _ time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if ok {
		delete(t.failed, addr)
		t.current = addr
	} else {
		t.failed[addr] = true
	}
}

// Name implements Strategy.
func (*TrialAndError) Name() string { return "trial-and-error" }

func contains(c []netip.Addr, a netip.Addr) bool {
	for _, x := range c {
		if x == a {
			return true
		}
	}
	return false
}

// Selector binds a candidate list (from a site's DNS record) to a
// strategy and tracks per-candidate usage for experiments.
type Selector struct {
	mu         sync.Mutex
	candidates []netip.Addr
	strategy   Strategy
	uses       map[netip.Addr]int
}

// NewSelector creates a selector. It returns ErrNoCandidates for an empty
// candidate list.
func NewSelector(candidates []netip.Addr, s Strategy) (*Selector, error) {
	if len(candidates) == 0 {
		return nil, ErrNoCandidates
	}
	if s == nil {
		s = Static{}
	}
	cp := make([]netip.Addr, len(candidates))
	copy(cp, candidates)
	return &Selector{candidates: cp, strategy: s, uses: make(map[netip.Addr]int)}, nil
}

// Pick chooses the neutralizer for the next connection attempt.
func (s *Selector) Pick() netip.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	a := s.strategy.Pick(s.candidates)
	s.uses[a]++
	return a
}

// Feedback reports the outcome of the last use of addr.
func (s *Selector) Feedback(addr netip.Addr, ok bool, rtt time.Duration) {
	s.strategy.Feedback(addr, ok, rtt)
}

// Uses returns how many times each candidate was picked.
func (s *Selector) Uses() map[netip.Addr]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[netip.Addr]int, len(s.uses))
	for k, v := range s.uses {
		out[k] = v
	}
	return out
}

// Strategy returns the strategy's name.
func (s *Selector) Strategy() string { return s.strategy.Name() }
