package multihome

import (
	"net/netip"
	"testing"
	"time"
)

var (
	n1 = netip.MustParseAddr("10.200.0.1")
	n2 = netip.MustParseAddr("10.201.0.1")
	n3 = netip.MustParseAddr("10.202.0.1")
)

func TestSelectorValidation(t *testing.T) {
	if _, err := NewSelector(nil, Static{}); err != ErrNoCandidates {
		t.Errorf("err = %v", err)
	}
	s, err := NewSelector([]netip.Addr{n1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Strategy() != "static" {
		t.Errorf("default strategy = %q", s.Strategy())
	}
}

func TestStaticAlwaysFirst(t *testing.T) {
	s, err := NewSelector([]netip.Addr{n1, n2}, Static{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := s.Pick(); got != n1 {
			t.Fatalf("static picked %v", got)
		}
	}
	if s.Uses()[n1] != 10 || s.Uses()[n2] != 0 {
		t.Errorf("uses = %v", s.Uses())
	}
}

func TestRoundRobinEvenSpread(t *testing.T) {
	s, err := NewSelector([]netip.Addr{n1, n2, n3}, &RoundRobin{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		s.Pick()
	}
	u := s.Uses()
	if u[n1] != 10 || u[n2] != 10 || u[n3] != 10 {
		t.Errorf("uses = %v, want even 10/10/10", u)
	}
}

func TestWeightedPrefersFasterProvider(t *testing.T) {
	w := NewWeighted(7)
	s, err := NewSelector([]netip.Addr{n1, n2}, w)
	if err != nil {
		t.Fatal(err)
	}
	// Teach it: n1 is 10x faster.
	for i := 0; i < 20; i++ {
		w.Feedback(n1, true, 10*time.Millisecond)
		w.Feedback(n2, true, 100*time.Millisecond)
	}
	for i := 0; i < 1000; i++ {
		s.Pick()
	}
	u := s.Uses()
	// Expected ratio ~10:1.
	if u[n1] < 800 {
		t.Errorf("fast provider picked %d/1000, want >= 800", u[n1])
	}
	if u[n2] == 0 {
		t.Error("slow provider should still get some traffic (probing)")
	}
}

func TestWeightedFailuresDeprioritize(t *testing.T) {
	w := NewWeighted(3)
	s, err := NewSelector([]netip.Addr{n1, n2}, w)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		w.Feedback(n1, false, 0) // provider 1 failing
		w.Feedback(n2, true, 20*time.Millisecond)
	}
	for i := 0; i < 500; i++ {
		s.Pick()
	}
	if u := s.Uses(); u[n2] < 400 {
		t.Errorf("healthy provider picked %d/500", u[n2])
	}
}

func TestTrialAndErrorSticksThenFailsOver(t *testing.T) {
	s, err := NewSelector([]netip.Addr{n1, n2}, NewTrialAndError())
	if err != nil {
		t.Fatal(err)
	}
	// Sticks with the first working provider.
	a := s.Pick()
	if a != n1 {
		t.Fatalf("first pick = %v", a)
	}
	s.Feedback(n1, true, time.Millisecond)
	for i := 0; i < 5; i++ {
		if s.Pick() != n1 {
			t.Fatal("should stick with working provider")
		}
	}
	// Provider 1 fails: next pick moves to provider 2 and sticks.
	s.Feedback(n1, false, 0)
	if got := s.Pick(); got != n2 {
		t.Fatalf("failover pick = %v, want %v", got, n2)
	}
	s.Feedback(n2, true, time.Millisecond)
	if s.Pick() != n2 {
		t.Error("should stick with n2 after failover")
	}
	// Everything fails: forgiveness resets and retries from the top.
	s.Feedback(n2, false, 0)
	if got := s.Pick(); got != n1 {
		t.Errorf("all-failed pick = %v, want forgiveness back to %v", got, n1)
	}
}

func TestStrategyNames(t *testing.T) {
	if (Static{}).Name() == "" || (&RoundRobin{}).Name() == "" ||
		NewWeighted(1).Name() == "" || NewTrialAndError().Name() == "" {
		t.Error("strategies must be nameable for experiment output")
	}
}
