package dpi

import (
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

func key(i int) netem.FlowKey {
	return netem.FlowKey{
		Lo:    [4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)},
		Hi:    [4]byte{172, 16, 0, 1},
		Proto: wire.ProtoUDP,
	}
}

// synthFlow feeds a jittered application-shaped packet sequence into a
// fresh Features value: the in-package stand-in for the trafficgen
// sources E7 drives through the real emulator.
func synthFlow(class Class, rng *rand.Rand, pkts int) *Features {
	f := &Features{}
	now := int64(1e15)
	emit := func(size int, gap time.Duration) {
		f.Update(size, true, now, int64(time.Millisecond), 512)
		now += int64(gap)
	}
	switch class {
	case ClassVoIP:
		for i := 0; i < pkts; i++ {
			emit(212, 20*time.Millisecond+time.Duration(rng.Intn(4)-2)*time.Millisecond)
		}
	case ClassVideo:
		for i := 0; i < pkts; {
			burst := 12 + rng.Intn(16)
			for j := 0; j < burst && i < pkts; j++ {
				emit(1252, 300*time.Microsecond+time.Duration(rng.Intn(200))*time.Microsecond)
				i++
			}
			now += int64(150*time.Millisecond) + rng.Int63n(int64(250*time.Millisecond))
		}
	case ClassBulk:
		for i := 0; i < pkts; i++ {
			emit(1302+rng.Intn(80), 3*time.Millisecond+time.Duration(rng.Intn(600)-300)*time.Microsecond)
		}
	case ClassWeb:
		for i := 0; i < pkts; {
			k := 2 + rng.Intn(8)
			emit(352, 500*time.Microsecond)
			i++
			for j := 0; j < k && i < pkts; j++ {
				emit(352+rng.Intn(1000), 500*time.Microsecond+time.Duration(rng.Intn(500))*time.Microsecond)
				i++
			}
			now += rng.Int63n(int64(800 * time.Millisecond))
		}
	}
	return f
}

func trainSynthetic(t testing.TB, rng *rand.Rand, flowsPerClass int) *Classifier {
	var samples []Sample
	for _, c := range []Class{ClassVoIP, ClassVideo, ClassBulk, ClassWeb} {
		for i := 0; i < flowsPerClass; i++ {
			s := Sample{Class: c}
			synthFlow(c, rng, 64+rng.Intn(128)).Vector(&s.Vec)
			samples = append(samples, s)
		}
	}
	cls, err := Train(samples)
	if err != nil {
		t.Fatal(err)
	}
	return cls
}

func TestClassifierSeparatesAppShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cls := trainSynthetic(t, rng, 12)
	if len(cls.Profiles) != NumClasses {
		t.Fatalf("trained %d profiles, want %d", len(cls.Profiles), NumClasses)
	}
	// Held-out flows from a different RNG stream must classify >= 90%.
	eval := rand.New(rand.NewSource(99))
	total, correct := 0, 0
	for _, c := range []Class{ClassVoIP, ClassVideo, ClassBulk, ClassWeb} {
		for i := 0; i < 25; i++ {
			got, _ := cls.Classify(synthFlow(c, eval, 64+eval.Intn(128)))
			total++
			if got == c {
				correct++
			}
		}
	}
	if acc := float64(correct) / float64(total); acc < 0.9 {
		t.Fatalf("held-out accuracy %.2f (%d/%d), want >= 0.90", acc, correct, total)
	}
}

func TestTrainRejectsBadLabels(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("Train(nil) succeeded")
	}
	if _, err := Train([]Sample{{Class: ClassUnknown}}); err == nil {
		t.Error("Train with unknown label succeeded")
	}
}

func TestFlowTableBoundedEviction(t *testing.T) {
	const maxFlows = 1024
	tab := NewFlowTable(Config{MaxFlows: maxFlows, IdleTimeout: time.Second})
	now := int64(1e15)
	const flows = 10000
	for i := 0; i < flows; i++ {
		// Each flow shows a few packets; later flows arrive later so the
		// clock sweep always finds idle victims.
		for p := 0; p < 3; p++ {
			tab.Observe(key(i), true, 200, now)
			now += int64(10 * time.Millisecond)
		}
	}
	if got := tab.Len(); got != maxFlows {
		t.Errorf("table holds %d flows, want capped at %d", got, maxFlows)
	}
	observed, evictions, _ := tab.Stats()
	if want := uint64(3 * flows); observed != want {
		t.Errorf("observed %d packets, want %d", observed, want)
	}
	if want := uint64(flows - maxFlows); evictions != want {
		t.Errorf("evictions = %d, want %d", evictions, want)
	}
	// The index map must shrink-track the slab: every live key resolves.
	seen := 0
	tab.Each(func(e *FlowEntry) {
		if _, ok := tab.classOfNoLock(e.Key); !ok {
			t.Fatalf("live flow %v missing from index", e.Key)
		}
		seen++
	})
	if seen != maxFlows {
		t.Errorf("Each visited %d flows, want %d", seen, maxFlows)
	}
}

// classOfNoLock is ClassOf without re-locking, callable from inside Each.
func (t *FlowTable) classOfNoLock(k netem.FlowKey) (Class, bool) {
	i, ok := t.idx[k]
	if !ok {
		return ClassUnknown, false
	}
	return t.slab[i].Class, true
}

func TestFlowTableConcurrent(t *testing.T) {
	tab := NewFlowTable(Config{MaxFlows: 512})
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			now := int64(1e15)
			for i := 0; i < 20000; i++ {
				// Overlapping key ranges force shared entries and evictions.
				tab.Observe(key((w*400+i)%1500), i%2 == 0, 100+i%1400, now)
				now += int64(time.Millisecond)
			}
		}(w)
	}
	wg.Wait()
	if got := tab.Len(); got > 512 {
		t.Errorf("table grew to %d flows past MaxFlows", got)
	}
	observed, _, _ := tab.Stats()
	if want := uint64(workers * 20000); observed != want {
		t.Errorf("observed %d, want %d", observed, want)
	}
}

func TestObserveExistingFlowZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is distorted under -race")
	}
	rng := rand.New(rand.NewSource(3))
	tab := NewFlowTable(Config{Classifier: trainSynthetic(t, rng, 8)})
	k := key(1)
	now := int64(1e15)
	tab.Observe(k, true, 212, now)
	allocs := testing.AllocsPerRun(2000, func() {
		now += int64(20 * time.Millisecond)
		tab.Observe(k, true, 212, now)
	})
	if allocs != 0 {
		t.Fatalf("per-packet feature update allocates %.1f/op, want 0", allocs)
	}
}

func TestTokenBucketPolices(t *testing.T) {
	var b tokenBucket
	const rate = 8000.0 // 1000 bytes/sec
	now := int64(1e15)
	// Fresh bucket starts full at burst depth.
	if !b.allow(4000, rate, 4000, now) {
		t.Fatal("full bucket refused a burst-size packet")
	}
	if b.allow(4000, rate, 4000, now) {
		t.Fatal("empty bucket allowed a packet")
	}
	// After half a second, half the burst refilled.
	now += int64(500 * time.Millisecond)
	if !b.allow(3000, rate, 4000, now) {
		t.Fatal("refilled bucket refused")
	}
	if b.allow(3000, rate, 4000, now) {
		t.Fatal("drained bucket allowed")
	}
}

// TestEngineEnforcesClassPolicy runs the engine as a real transit hook:
// a VoIP-shaped stream crosses a router whose policy drops classified
// VoIP, and a parallel bulk-shaped stream must survive untouched.
func TestEngineEnforcesClassPolicy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cls := trainSynthetic(t, rng, 10)

	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(start, 5)
	src := sim.MustAddNode("src", "out", netip.MustParseAddr("172.16.0.2"))
	r := sim.MustAddNode("r", "transit")
	voipDst := sim.MustAddNode("d1", "cust", netip.MustParseAddr("10.9.0.1"))
	bulkDst := sim.MustAddNode("d2", "cust", netip.MustParseAddr("10.9.0.2"))
	sim.Connect(src, r, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(r, voipDst, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(r, bulkDst, netem.LinkConfig{Delay: time.Millisecond})
	sim.BuildRoutes()

	var pol Policy
	pol[ClassVoIP] = ClassPolicy{DropProb: 1}
	eng := NewEngine(EngineConfig{
		Table:  Config{MinPackets: 8, ReclassifyEvery: 8, Classifier: cls},
		Policy: pol,
		Rng:    rand.New(rand.NewSource(6)),
	})
	r.AddTransitHook(eng.Hook())

	var gotVoIP, gotBulk int
	voipDst.SetHandler(func(time.Time, []byte) { gotVoIP++ })
	bulkDst.SetHandler(func(time.Time, []byte) { gotBulk++ })

	mkPkt := func(dst netip.Addr, size int) []byte {
		payload := make([]byte, size)
		buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
		buf.PushPayload(payload)
		if err := wire.SerializeLayers(buf,
			&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src.Addr(), Dst: dst},
			&wire.UDP{SrcPort: 9000, DstPort: 9001},
		); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	const frames = 200
	voipPkt := mkPkt(voipDst.Addr(), 160)
	bulkPkt := mkPkt(bulkDst.Addr(), 1310)
	for i := 0; i < frames; i++ {
		sim.Schedule(time.Duration(i)*20*time.Millisecond, func() { _ = src.Send(voipPkt) })
		sim.Schedule(time.Duration(i)*3*time.Millisecond, func() { _ = src.Send(bulkPkt) })
	}
	sim.Run()

	if gotBulk != frames {
		t.Errorf("bulk stream lost packets: %d/%d (policy must not touch other classes)", gotBulk, frames)
	}
	if gotVoIP > frames/2 {
		t.Errorf("voip stream delivered %d/%d, want classified and dropped", gotVoIP, frames)
	}
	if d := eng.Drops(ClassVoIP); d == 0 {
		t.Error("engine recorded no VoIP drops")
	}
	k, err := netem.FlowKeyFrom(src.Addr(), voipDst.Addr(), wire.ProtoUDP)
	if err != nil {
		t.Fatal(err)
	}
	if c, ok := eng.Table().ClassOf(k); !ok || c != ClassVoIP {
		t.Errorf("voip flow classified as %v (tracked=%v), want voip", c, ok)
	}
}

func TestFeatureDecayBoundsCounters(t *testing.T) {
	f := &Features{}
	now := int64(1e15)
	for i := 0; i < 5000; i++ {
		f.Update(212, true, now, int64(time.Millisecond), 256)
		now += int64(20 * time.Millisecond)
	}
	if f.Pkts >= 512 {
		t.Errorf("windowed Pkts = %d, want decayed below 2*256", f.Pkts)
	}
	var v [FeatureDim]float64
	f.Vector(&v)
	if v[1] < 0.9 { // 212B lands in bucket 1 ([128,256))
		t.Errorf("size histogram fraction = %.2f after decay, want ~1", v[1])
	}
}
