package dpi

import (
	"sync"
	"time"

	"netneutral/internal/netem"
)

// Config parameterizes a FlowTable. The zero value is filled with
// defaults suitable for a transit router.
type Config struct {
	// MaxFlows bounds the table's memory: the slab of flow entries is
	// preallocated at this size and never grows (default 10240).
	MaxFlows int
	// MinPackets is how many packets a flow must show before its first
	// classification (default 16).
	MinPackets int
	// ReclassifyEvery re-runs the classifier every this many packets
	// after the first classification (default 64).
	ReclassifyEvery int
	// WindowPkts is the decayed feature window (default 512; negative
	// disables decay so features accumulate over the flow's whole
	// life).
	WindowPkts int
	// BurstGap is the inter-arrival threshold below which a gap counts
	// as intra-burst (default 1ms).
	BurstGap time.Duration
	// IdleTimeout marks flows eligible for eviction preference once idle
	// this long (default 10s).
	IdleTimeout time.Duration
	// Classifier assigns classes as flows mature; nil tracks features
	// without classifying (the calibration/training mode).
	Classifier *Classifier
}

// defaultWindowPkts is the zero-value decayed feature window.
const defaultWindowPkts = 512

func (c *Config) fill() {
	if c.MaxFlows <= 0 {
		c.MaxFlows = 10240
	}
	if c.MinPackets <= 0 {
		c.MinPackets = 16
	}
	if c.ReclassifyEvery <= 0 {
		c.ReclassifyEvery = 64
	}
	if c.WindowPkts == 0 {
		c.WindowPkts = defaultWindowPkts
	}
	if c.BurstGap <= 0 {
		c.BurstGap = time.Millisecond
	}
	if c.IdleTimeout <= 0 {
		c.IdleTimeout = 10 * time.Second
	}
}

// FlowEntry is one tracked flow.
type FlowEntry struct {
	Key   netem.FlowKey
	Class Class
	// Score is the classifier distance at the last classification.
	Score float64
	Feat  Features
	used  bool
}

// FlowTable tracks per-flow features in a fixed-size slab. Safe for
// concurrent use (one mutex; the per-packet critical section is a map
// lookup plus in-place arithmetic, so contention, not hold time, is the
// scaling limit — shard tables per worker if that ever matters).
type FlowTable struct {
	mu   sync.Mutex
	cfg  Config
	idx  map[netem.FlowKey]int32
	slab []FlowEntry
	hand int

	observed   uint64
	evictions  uint64
	classified uint64
}

// NewFlowTable creates a table; see Config for defaults.
func NewFlowTable(cfg Config) *FlowTable {
	cfg.fill()
	return &FlowTable{
		cfg:  cfg,
		idx:  make(map[netem.FlowKey]int32, cfg.MaxFlows),
		slab: make([]FlowEntry, 0, cfg.MaxFlows),
	}
}

// Observe folds one packet into its flow and returns the flow's current
// class (ClassUnknown until MinPackets have been seen or when no
// classifier is configured). The existing-flow path performs no
// allocation: a map lookup, the feature arithmetic, and (periodically)
// a stack-array classification.
func (t *FlowTable) Observe(key netem.FlowKey, forward bool, size int, nowNanos int64) Class {
	class, _ := t.ObserveN(key, forward, size, nowNanos)
	return class
}

// ObserveN is Observe returning also the flow's current (windowed)
// packet count — what probe-evasion enforcement gates on: a stealthy
// ISP exempts flows younger than a threshold so short measurement
// probes complete clean.
func (t *FlowTable) ObserveN(key netem.FlowKey, forward bool, size int, nowNanos int64) (Class, uint64) {
	t.mu.Lock()
	t.observed++
	i, ok := t.idx[key]
	if !ok {
		i = t.insertLocked(key, nowNanos)
	}
	e := &t.slab[i]
	e.Feat.Update(size, forward, nowNanos, int64(t.cfg.BurstGap), t.cfg.WindowPkts)
	if cls := t.cfg.Classifier; cls != nil && e.Feat.Pkts >= uint64(t.cfg.MinPackets) {
		since := e.Feat.Pkts - uint64(t.cfg.MinPackets)
		if since%uint64(t.cfg.ReclassifyEvery) == 0 {
			was := e.Class
			e.Class, e.Score = cls.Classify(&e.Feat)
			if was == ClassUnknown && e.Class != ClassUnknown {
				t.classified++
			}
		}
	}
	class, pkts := e.Class, e.Feat.Pkts
	t.mu.Unlock()
	return class, pkts
}

// insertLocked finds a slot for a new flow, evicting if the slab is
// full, and registers the key. Returns the slot index.
func (t *FlowTable) insertLocked(key netem.FlowKey, nowNanos int64) int32 {
	var i int32
	if len(t.slab) < cap(t.slab) {
		t.slab = t.slab[:len(t.slab)+1]
		i = int32(len(t.slab) - 1)
	} else {
		i = t.evictLocked(nowNanos)
		delete(t.idx, t.slab[i].Key)
		t.evictions++
	}
	t.slab[i] = FlowEntry{Key: key, used: true}
	t.idx[key] = i
	return i
}

// evictLocked picks a victim slot with a clock sweep: the first flow
// idle past IdleTimeout wins; failing that, the stalest of the first
// few probed. O(probes), not O(flows), per eviction.
func (t *FlowTable) evictLocked(nowNanos int64) int32 {
	const probes = 16
	idleBefore := nowNanos - int64(t.cfg.IdleTimeout)
	oldest := int32(t.hand % len(t.slab))
	oldestSeen := int64(1<<63 - 1)
	for p := 0; p < len(t.slab); p++ {
		i := int32((t.hand + p) % len(t.slab))
		last := t.slab[i].Feat.LastSeenNanos()
		if last <= idleBefore {
			t.hand = int(i) + 1
			return i
		}
		if p < probes && last < oldestSeen {
			oldest, oldestSeen = i, last
		}
		if p >= probes {
			break
		}
	}
	t.hand = int(oldest) + 1
	return oldest
}

// ClassOf reports the current class of a flow, if tracked.
func (t *FlowTable) ClassOf(key netem.FlowKey) (Class, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	i, ok := t.idx[key]
	if !ok {
		return ClassUnknown, false
	}
	return t.slab[i].Class, true
}

// Each visits every tracked flow under the table lock. The *FlowEntry
// view is valid only for the duration of the call — copy what you keep.
func (t *FlowTable) Each(fn func(e *FlowEntry)) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range t.slab {
		if t.slab[i].used {
			fn(&t.slab[i])
		}
	}
}

// Len reports tracked flows.
func (t *FlowTable) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.slab)
}

// Stats reports packets observed, flows evicted, and flows that ever
// reached a classification.
func (t *FlowTable) Stats() (observed, evictions, classified uint64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.observed, t.evictions, t.classified
}
