// Package dpi implements the statistical traffic-analysis adversary:
// the ISP the paper's strawman classifier (ports, payload signatures,
// shim types — package isp) grows into once end-to-end encryption
// strips those fields. It fingerprints *flows*, not packets: a stateful
// tracker keyed on netem.FlowKey extracts windowed features — packet-
// size histogram buckets, inter-arrival mean and variation, burstiness,
// direction ratios — that survive encryption untouched, and a trained
// nearest-centroid classifier maps each flow to an application class
// (VoIP, video, bulk, web). Classified flows feed an enforcement stage
// with per-class token-bucket policing and probabilistic drop, the
// graded degradation real traffic-management boxes apply.
//
// The tracker sits on the forwarding hot path (a netem.TransitHook runs
// on every packet a transit router sees), so the per-packet feature
// update is allocation-free: the flow table is a preallocated slab
// indexed by a map on the comparable FlowKey value, features are fixed-
// size arithmetic state, and classification is a weighted distance over
// stack arrays. BenchmarkDPIFeatureUpdate and BenchmarkDPIClassify
// enforce 0 allocs/op; memory is bounded by MaxFlows with clock-sweep
// eviction of idle flows.
//
// Package cloak is the counter to this adversary; eval's E7 experiment
// runs the arms race between them at metro scale.
package dpi

import "math"

// Class is an application class label assigned to a flow.
type Class uint8

// Flow classes. ClassUnknown marks flows not yet (or never) classified.
const (
	ClassUnknown Class = iota
	ClassVoIP
	ClassVideo
	ClassBulk
	ClassWeb
)

// NumClasses is the number of real (non-Unknown) classes.
const NumClasses = 4

var classNames = [...]string{"unknown", "voip", "video", "bulk", "web"}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return "class?"
}

// NumSizeBuckets is the number of packet-size histogram buckets.
const NumSizeBuckets = 8

// sizeBucketEdges are the exclusive upper bounds of the first seven
// buckets (wire bytes); the last bucket is open-ended. Edges are placed
// so that the same application payload lands in the same bucket whether
// it rides plain UDP (+28 bytes of headers) or the neutralizer shim
// (+52): the classifier must not key on encapsulation overhead.
var sizeBucketEdges = [NumSizeBuckets - 1]int{128, 256, 384, 640, 896, 1152, 1408}

func sizeBucket(size int) int {
	for i, e := range sizeBucketEdges {
		if size < e {
			return i
		}
	}
	return NumSizeBuckets - 1
}

// FeatureDim is the length of a flow's feature vector: size-histogram
// fractions, then mean inter-arrival (log scale), inter-arrival
// coefficient of variation, burst fraction, mean packet size, and
// forward-direction ratio.
const FeatureDim = NumSizeBuckets + 5

// Features is the windowed per-flow statistical state. All updates are
// in-place arithmetic on fixed-size fields — no allocation. Welford's
// algorithm tracks inter-arrival mean/variance; once the packet count
// reaches twice the configured window every counter is halved, which
// turns the totals into an exponentially decayed window so long flows
// track their recent behavior.
type Features struct {
	Pkts  uint64
	Bytes uint64
	Hist  [NumSizeBuckets]uint32
	// FwdPkts counts packets traveling Lo→Hi of the canonical flow key,
	// RevPkts the opposite direction.
	FwdPkts, RevPkts uint64

	lastNanos int64
	iatCount  float64
	iatMean   float64 // nanoseconds
	iatM2     float64
	smallGaps float64 // inter-arrivals below the burst gap
}

// Update folds one packet into the flow state. burstGapNanos is the
// inter-arrival threshold below which a gap counts as intra-burst;
// windowPkts bounds the decayed window (0 disables decay).
func (f *Features) Update(size int, forward bool, nowNanos, burstGapNanos int64, windowPkts int) {
	f.Pkts++
	f.Bytes += uint64(size)
	f.Hist[sizeBucket(size)]++
	if forward {
		f.FwdPkts++
	} else {
		f.RevPkts++
	}
	if f.lastNanos != 0 {
		gap := float64(nowNanos - f.lastNanos)
		if gap < 0 {
			gap = 0
		}
		f.iatCount++
		d := gap - f.iatMean
		f.iatMean += d / f.iatCount
		f.iatM2 += d * (gap - f.iatMean)
		if gap < float64(burstGapNanos) {
			f.smallGaps++
		}
	}
	f.lastNanos = nowNanos
	if windowPkts > 0 && f.Pkts >= uint64(2*windowPkts) {
		f.decay()
	}
}

// decay halves every counter, aging the window exponentially. The
// inter-arrival mean is a ratio and survives unscaled.
func (f *Features) decay() {
	f.Pkts /= 2
	f.Bytes /= 2
	f.FwdPkts /= 2
	f.RevPkts /= 2
	for i := range f.Hist {
		f.Hist[i] /= 2
	}
	f.iatCount /= 2
	f.iatM2 /= 2
	f.smallGaps /= 2
}

// LastSeenNanos reports the arrival time of the flow's latest packet.
func (f *Features) LastSeenNanos() int64 { return f.lastNanos }

// Vector writes the normalized feature vector into out (all components
// in [0,1]); it allocates nothing so classification can run per packet.
func (f *Features) Vector(out *[FeatureDim]float64) {
	*out = [FeatureDim]float64{}
	if f.Pkts == 0 {
		return
	}
	pk := float64(f.Pkts)
	for i, h := range f.Hist {
		out[i] = float64(h) / pk
	}
	i := NumSizeBuckets
	if f.iatCount > 0 && f.iatMean > 0 {
		// Mean inter-arrival on a log scale: 10µs → 0, 10s → 1.
		out[i] = clamp01((math.Log10(f.iatMean) - 4) / 6)
		if f.iatCount > 1 {
			sd := math.Sqrt(f.iatM2 / f.iatCount)
			out[i+1] = clamp01(sd / f.iatMean / 3) // CV clipped at 3
		}
		out[i+2] = f.smallGaps / f.iatCount
	}
	out[i+3] = clamp01(float64(f.Bytes) / pk / 1500)
	out[i+4] = float64(f.FwdPkts) / pk
}

func clamp01(v float64) float64 {
	switch {
	case v < 0:
		return 0
	case v > 1:
		return 1
	default:
		return v
	}
}
