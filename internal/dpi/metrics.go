package dpi

import (
	"fmt"

	"netneutral/internal/obs"
)

// Instrument exports the engine's per-class enforcement counters as
// counter families on reg, one labeled family per (metric, class):
//
//	dpi_seen_packets_total{class=...}     packets observed after classification
//	dpi_dropped_packets_total{class=...}  probabilistic enforcement drops
//	dpi_policed_packets_total{class=...}  token-bucket drops
//	dpi_exempted_packets_total{class=...} packets a stealth gate let pass
//
// The families read through the engine's existing mutex-guarded
// accessors at snapshot time, so the per-packet hot path is untouched.
// Classes cover ClassUnknown plus every real class.
func (e *Engine) Instrument(reg *obs.Registry) {
	for c := Class(0); c <= NumClasses; c++ {
		cls := c
		label := fmt.Sprintf("{class=%q}", cls.String())
		reg.CounterFunc("dpi_seen_packets_total"+label,
			"Packets the enforcement engine observed for the class after classification.",
			func() uint64 { return e.Seen(cls) })
		reg.CounterFunc("dpi_dropped_packets_total"+label,
			"Packets dropped by probabilistic per-class enforcement.",
			func() uint64 { return e.Drops(cls) })
		reg.CounterFunc("dpi_policed_packets_total"+label,
			"Packets dropped by the per-class token-bucket policer.",
			func() uint64 { return e.Policed(cls) })
		reg.CounterFunc("dpi_exempted_packets_total"+label,
			"Packets a stealth gate (flow age, duty phase, targeting) deliberately let pass.",
			func() uint64 { return e.Exempted(cls) })
	}
}
