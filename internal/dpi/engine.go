package dpi

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"netneutral/internal/netem"
)

// ClassPolicy is the enforcement applied to packets of one class —
// graded degradation, not the binary drop of the rule-list ISP. The
// stealth fields make the enforcement hard to *audit*: each one blunts
// a naive differential measurement without changing what a throttled
// user experiences in aggregate (see internal/audit and eval's E8).
type ClassPolicy struct {
	// DropProb drops each packet of the class with this probability.
	DropProb float64
	// RateBps, when positive, polices the class's aggregate rate with a
	// token bucket: packets beyond the rate are dropped.
	RateBps float64
	// BurstBits is the token-bucket depth (default 64 full-size packets).
	BurstBits float64
	// Delay holds each packet of the class before forwarding.
	Delay time.Duration

	// TargetFraction, when in (0,1), applies the policy to only that
	// fraction of the class's flows, selected by a keyed hash of the
	// flow key — partial throttling: a flow's fate is stable for its
	// lifetime, but any single vantage point has only this probability
	// of ever seeing the differential.
	TargetFraction float64
	// DutyPeriod, when positive, duty-cycles enforcement in time: the
	// policy is active only during the first DutyOn of every DutyPeriod
	// (time-varying throttling that a one-shot measurement misses and
	// that spreads a trial series across ON and OFF phases).
	DutyPeriod time.Duration
	// DutyOn is the active window within DutyPeriod (default half).
	DutyOn time.Duration
	// MinFlowPkts, when positive, exempts flows until they have shown
	// this many packets — probe evasion: short measurement flows
	// complete clean while long-lived application flows age into
	// enforcement. The gate reads the tracker's *windowed* packet
	// count, which exponential decay keeps below 2x the table's
	// WindowPkts; NewEngine therefore clamps MinFlowPkts to WindowPkts
	// (the count's stable floor for a long flow), so enforcement always
	// engages eventually no matter how large a threshold is configured.
	MinFlowPkts uint64
}

// active reports whether the policy's stealth gates allow enforcement
// for this packet: flow age, duty phase, and per-flow targeting.
func (p *ClassPolicy) active(stealthSeed uint64, key netem.FlowKey, flowPkts uint64, nowNanos int64) bool {
	if p.MinFlowPkts > 0 && flowPkts <= p.MinFlowPkts {
		return false
	}
	if p.DutyPeriod > 0 {
		on := p.DutyOn
		if on <= 0 {
			on = p.DutyPeriod / 2
		}
		phase := nowNanos % int64(p.DutyPeriod)
		if phase < 0 {
			phase += int64(p.DutyPeriod)
		}
		if phase >= int64(on) {
			return false
		}
	}
	if p.TargetFraction > 0 && p.TargetFraction < 1 {
		if flowFrac(stealthSeed, key) >= p.TargetFraction {
			return false
		}
	}
	return true
}

// flowFrac maps a flow key to a stable uniform value in [0,1) under a
// keyed FNV-1a hash. Allocation-free: it runs per packet on the transit
// hot path.
func flowFrac(seed uint64, key netem.FlowKey) float64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64) ^ seed
	for _, b := range key.Lo {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range key.Hi {
		h = (h ^ uint64(b)) * prime64
	}
	h = (h ^ uint64(key.Proto)) * prime64
	// Final avalanche (splitmix64 tail) so low-entropy keys spread.
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return float64(h>>11) / float64(1<<53)
}

// Policy maps each class (indexed by Class, including ClassUnknown=0)
// to its enforcement.
type Policy [NumClasses + 1]ClassPolicy

// tokenBucket is a policing bucket in bits.
type tokenBucket struct {
	tokens    float64
	lastNanos int64
}

func (b *tokenBucket) allow(bits, rateBps, burstBits float64, nowNanos int64) bool {
	if b.lastNanos != 0 {
		b.tokens += rateBps * float64(nowNanos-b.lastNanos) / 1e9
	} else {
		b.tokens = burstBits
	}
	b.lastNanos = nowNanos
	if b.tokens > burstBits {
		b.tokens = burstBits
	}
	if b.tokens < bits {
		return false
	}
	b.tokens -= bits
	return true
}

// EngineConfig configures a transit enforcement engine.
type EngineConfig struct {
	// Table configures the flow tracker (and carries the classifier).
	Table Config
	// Policy is the per-class enforcement; the zero value observes
	// without interfering (a pure eavesdropper).
	Policy Policy
	// Rng drives probabilistic drops; seed it for deterministic
	// experiments (default: seed 1).
	Rng *rand.Rand
	// StealthSeed keys the per-flow TargetFraction hash (default: a
	// fixed constant, so runs replay bit-identically without consuming
	// from Rng).
	StealthSeed uint64
}

// Engine is the deployable statistical adversary: a flow tracker, a
// classifier, and per-class enforcement compiled into one transit hook.
//
// An engine is shard-pinned: flows are local to the node observing them,
// so the engine's flow table, token buckets, and RNG are owned by the
// shard of the node its hook is attached to. Attaching one engine to
// nodes on different shards would race the tracker and break replay
// determinism; the hook detects that and panics (pinShard).
type Engine struct {
	table       *FlowTable
	pol         Policy
	stealthSeed uint64
	pinShard    atomic.Int32 // 1 + shard id of the observing node; 0 = unset

	mu       sync.Mutex
	rng      *rand.Rand
	buckets  [NumClasses + 1]tokenBucket
	dropped  [NumClasses + 1]uint64
	policed  [NumClasses + 1]uint64
	enforced [NumClasses + 1]uint64 // packets seen per class after classification
	exempted [NumClasses + 1]uint64 // packets a stealth gate let pass unenforced
}

// NewEngine builds an engine; see EngineConfig.
func NewEngine(cfg EngineConfig) *Engine {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	seed := cfg.StealthSeed
	if seed == 0 {
		seed = 0x6e65757472616c // stable default: replays stay bit-identical
	}
	// The flow tracker's windowed packet count decays (it oscillates in
	// [WindowPkts, 2*WindowPkts) for a long flow), so a MinFlowPkts at
	// or above that band would exempt every flow forever. Clamp to the
	// band's floor: the largest threshold every long flow still crosses.
	window := cfg.Table.WindowPkts
	if window == 0 {
		window = defaultWindowPkts
	}
	pol := cfg.Policy
	for i := range pol {
		if pol[i].RateBps > 0 && pol[i].BurstBits <= 0 {
			pol[i].BurstBits = 64 * 1500 * 8
		}
		if window > 0 && pol[i].MinFlowPkts > uint64(window) {
			pol[i].MinFlowPkts = uint64(window)
		}
	}
	return &Engine{table: NewFlowTable(cfg.Table), pol: pol, rng: rng, stealthSeed: seed}
}

// Table exposes the flow tracker for measurement and training.
func (e *Engine) Table() *FlowTable { return e.table }

// Drops reports packets dropped by probabilistic enforcement for the
// class; Policed reports token-bucket drops.
func (e *Engine) Drops(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped[c]
}

// Policed reports token-bucket drops for the class.
func (e *Engine) Policed(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policed[c]
}

// Seen reports packets observed for the class after classification.
func (e *Engine) Seen(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enforced[c]
}

// Exempted reports packets of the class a stealth gate (flow age, duty
// phase, or per-flow targeting) deliberately let pass unenforced.
func (e *Engine) Exempted(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.exempted[c]
}

// Hook compiles the engine into a netem transit hook. The per-packet
// path — flow-key extraction, feature update, classification check,
// policy decision — allocates nothing.
func (e *Engine) Hook() netem.TransitHook {
	return func(now time.Time, node *netem.Node, pkt []byte) netem.Verdict {
		if node != nil { // direct hook invocations in tests pass no node
			if sid := int32(node.ShardID()) + 1; e.pinShard.Load() != sid {
				// Slow path: first packet pins; a different shard panics.
				if !e.pinShard.CompareAndSwap(0, sid) {
					panic("dpi: engine observed packets on two shards; attach one engine per ingress shard")
				}
			}
		}
		key, fwd, ok := netem.FlowKeyOf(pkt)
		if !ok {
			return netem.Deliver
		}
		nanos := now.UnixNano()
		class, flowPkts := e.table.ObserveN(key, fwd, len(pkt), nanos)
		p := &e.pol[class]
		e.mu.Lock()
		e.enforced[class]++
		if !p.active(e.stealthSeed, key, flowPkts, nanos) {
			e.exempted[class]++
			e.mu.Unlock()
			return netem.Deliver
		}
		if p.RateBps > 0 && !e.buckets[class].allow(float64(len(pkt)*8), p.RateBps, p.BurstBits, nanos) {
			e.policed[class]++
			e.mu.Unlock()
			return netem.Verdict{Drop: true, Cause: netem.CauseTokenBucket, Class: uint8(class)}
		}
		if p.DropProb > 0 && e.rng.Float64() < p.DropProb {
			e.dropped[class]++
			e.mu.Unlock()
			return netem.Verdict{Drop: true, Cause: netem.CauseRandomDrop, Class: uint8(class)}
		}
		e.mu.Unlock()
		if p.Delay > 0 {
			return netem.Verdict{Delay: p.Delay, Cause: netem.CauseClassDelay, Class: uint8(class)}
		}
		return netem.Deliver
	}
}
