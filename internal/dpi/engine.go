package dpi

import (
	"math/rand"
	"sync"
	"time"

	"netneutral/internal/netem"
)

// ClassPolicy is the enforcement applied to packets of one class —
// graded degradation, not the binary drop of the rule-list ISP.
type ClassPolicy struct {
	// DropProb drops each packet of the class with this probability.
	DropProb float64
	// RateBps, when positive, polices the class's aggregate rate with a
	// token bucket: packets beyond the rate are dropped.
	RateBps float64
	// BurstBits is the token-bucket depth (default 64 full-size packets).
	BurstBits float64
	// Delay holds each packet of the class before forwarding.
	Delay time.Duration
}

// Policy maps each class (indexed by Class, including ClassUnknown=0)
// to its enforcement.
type Policy [NumClasses + 1]ClassPolicy

// tokenBucket is a policing bucket in bits.
type tokenBucket struct {
	tokens    float64
	lastNanos int64
}

func (b *tokenBucket) allow(bits, rateBps, burstBits float64, nowNanos int64) bool {
	if b.lastNanos != 0 {
		b.tokens += rateBps * float64(nowNanos-b.lastNanos) / 1e9
	} else {
		b.tokens = burstBits
	}
	b.lastNanos = nowNanos
	if b.tokens > burstBits {
		b.tokens = burstBits
	}
	if b.tokens < bits {
		return false
	}
	b.tokens -= bits
	return true
}

// EngineConfig configures a transit enforcement engine.
type EngineConfig struct {
	// Table configures the flow tracker (and carries the classifier).
	Table Config
	// Policy is the per-class enforcement; the zero value observes
	// without interfering (a pure eavesdropper).
	Policy Policy
	// Rng drives probabilistic drops; seed it for deterministic
	// experiments (default: seed 1).
	Rng *rand.Rand
}

// Engine is the deployable statistical adversary: a flow tracker, a
// classifier, and per-class enforcement compiled into one transit hook.
type Engine struct {
	table *FlowTable
	pol   Policy

	mu       sync.Mutex
	rng      *rand.Rand
	buckets  [NumClasses + 1]tokenBucket
	dropped  [NumClasses + 1]uint64
	policed  [NumClasses + 1]uint64
	enforced [NumClasses + 1]uint64 // packets seen per class after classification
}

// NewEngine builds an engine; see EngineConfig.
func NewEngine(cfg EngineConfig) *Engine {
	rng := cfg.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	pol := cfg.Policy
	for i := range pol {
		if pol[i].RateBps > 0 && pol[i].BurstBits <= 0 {
			pol[i].BurstBits = 64 * 1500 * 8
		}
	}
	return &Engine{table: NewFlowTable(cfg.Table), pol: pol, rng: rng}
}

// Table exposes the flow tracker for measurement and training.
func (e *Engine) Table() *FlowTable { return e.table }

// Drops reports packets dropped by probabilistic enforcement for the
// class; Policed reports token-bucket drops.
func (e *Engine) Drops(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.dropped[c]
}

// Policed reports token-bucket drops for the class.
func (e *Engine) Policed(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.policed[c]
}

// Seen reports packets observed for the class after classification.
func (e *Engine) Seen(c Class) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.enforced[c]
}

// Hook compiles the engine into a netem transit hook. The per-packet
// path — flow-key extraction, feature update, classification check,
// policy decision — allocates nothing.
func (e *Engine) Hook() netem.TransitHook {
	return func(now time.Time, node *netem.Node, pkt []byte) netem.Verdict {
		key, fwd, ok := netem.FlowKeyOf(pkt)
		if !ok {
			return netem.Deliver
		}
		nanos := now.UnixNano()
		class := e.table.Observe(key, fwd, len(pkt), nanos)
		p := &e.pol[class]
		e.mu.Lock()
		e.enforced[class]++
		if p.RateBps > 0 && !e.buckets[class].allow(float64(len(pkt)*8), p.RateBps, p.BurstBits, nanos) {
			e.policed[class]++
			e.mu.Unlock()
			return netem.Verdict{Drop: true}
		}
		if p.DropProb > 0 && e.rng.Float64() < p.DropProb {
			e.dropped[class]++
			e.mu.Unlock()
			return netem.Verdict{Drop: true}
		}
		e.mu.Unlock()
		if p.Delay > 0 {
			return netem.Verdict{Delay: p.Delay}
		}
		return netem.Deliver
	}
}
