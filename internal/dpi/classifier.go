package dpi

import (
	"errors"
	"fmt"
	"sort"
)

// ErrNoSamples is returned by Train on an empty training set.
var ErrNoSamples = errors.New("dpi: no training samples")

// Sample is one labeled feature vector for training.
type Sample struct {
	Class Class
	Vec   [FeatureDim]float64
}

// Profile is a trained application fingerprint: the centroid of the
// class's feature vectors.
type Profile struct {
	Class    Class
	Centroid [FeatureDim]float64
}

// Classifier assigns flows to the nearest trained profile under a
// weighted squared distance. Classification reads only stack arrays and
// the profile slice: zero allocations per call.
type Classifier struct {
	Profiles []Profile
	Weights  [FeatureDim]float64
}

// DefaultWeights emphasizes timing features over the size histogram:
// padding countermeasures erase sizes first, and within a size bucket
// the inter-arrival shape is what separates bulk from video.
func DefaultWeights() [FeatureDim]float64 {
	var w [FeatureDim]float64
	for i := 0; i < NumSizeBuckets; i++ {
		w[i] = 1
	}
	w[NumSizeBuckets] = 2.0   // mean inter-arrival (log)
	w[NumSizeBuckets+1] = 2.0 // inter-arrival CV
	w[NumSizeBuckets+2] = 2.0 // burst fraction
	w[NumSizeBuckets+3] = 1.0 // mean size
	w[NumSizeBuckets+4] = 0.5 // direction ratio
	return w
}

// Train builds a nearest-centroid classifier from labeled samples (one
// profile per class present, in class order).
func Train(samples []Sample) (*Classifier, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	var sums [NumClasses + 1][FeatureDim]float64
	var counts [NumClasses + 1]int
	for _, s := range samples {
		if s.Class == ClassUnknown || int(s.Class) > NumClasses {
			return nil, fmt.Errorf("dpi: sample labeled %v", s.Class)
		}
		for i, v := range s.Vec {
			sums[s.Class][i] += v
		}
		counts[s.Class]++
	}
	c := &Classifier{Weights: DefaultWeights()}
	for class, n := range counts {
		if n == 0 {
			continue
		}
		p := Profile{Class: Class(class)}
		for i := range p.Centroid {
			p.Centroid[i] = sums[class][i] / float64(n)
		}
		c.Profiles = append(c.Profiles, p)
	}
	sort.Slice(c.Profiles, func(i, j int) bool { return c.Profiles[i].Class < c.Profiles[j].Class })
	return c, nil
}

// Classify assigns the flow to the nearest profile, returning the class
// and the weighted squared distance to it (lower = more confident).
func (c *Classifier) Classify(f *Features) (Class, float64) {
	var v [FeatureDim]float64
	f.Vector(&v)
	return c.ClassifyVec(&v)
}

// ClassifyVec classifies a prepared feature vector. Zero allocations.
func (c *Classifier) ClassifyVec(v *[FeatureDim]float64) (Class, float64) {
	best, bestDist := ClassUnknown, 0.0
	for pi := range c.Profiles {
		p := &c.Profiles[pi]
		dist := 0.0
		for i, w := range c.Weights {
			d := v[i] - p.Centroid[i]
			dist += w * d * d
		}
		if best == ClassUnknown || dist < bestDist {
			best, bestDist = p.Class, dist
		}
	}
	return best, bestDist
}
