package dpi

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/obs"
)

// TestEngineInstrument pins the registry families against the engine's
// own accessors across every class, after driving drops, exemptions and
// passes through the hook.
func TestEngineInstrument(t *testing.T) {
	var p Policy
	p[ClassUnknown] = ClassPolicy{DropProb: 0.5, MinFlowPkts: 10}
	eng := NewEngine(EngineConfig{Policy: p, Rng: rand.New(rand.NewSource(4))})
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	hook := eng.Hook()
	pkt := stealthPkt(t, netip.MustParseAddr("172.16.0.9"), netip.MustParseAddr("10.9.0.7"), 160)
	base := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 60; i++ {
		hook(base.Add(time.Duration(i)*time.Millisecond), nil, pkt)
	}

	snap := reg.Snapshot()
	for c := Class(0); c <= NumClasses; c++ {
		checks := map[string]uint64{
			"dpi_seen_packets_total{class=\"" + c.String() + "\"}":     eng.Seen(c),
			"dpi_dropped_packets_total{class=\"" + c.String() + "\"}":  eng.Drops(c),
			"dpi_policed_packets_total{class=\"" + c.String() + "\"}":  eng.Policed(c),
			"dpi_exempted_packets_total{class=\"" + c.String() + "\"}": eng.Exempted(c),
		}
		for name, want := range checks {
			m := snap.Get(name)
			if m == nil {
				t.Fatalf("registry missing %s", name)
			}
			if uint64(m.Value) != want {
				t.Errorf("%s = %v, accessor says %d", name, m.Value, want)
			}
		}
	}
	// The workload must actually exercise all three outcomes for Unknown.
	if eng.Seen(ClassUnknown) != 60 || eng.Exempted(ClassUnknown) == 0 || eng.Drops(ClassUnknown) == 0 {
		t.Errorf("degenerate workload: seen=%d exempted=%d drops=%d",
			eng.Seen(ClassUnknown), eng.Exempted(ClassUnknown), eng.Drops(ClassUnknown))
	}
}
