package dpi

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

// stealthPkt builds a plain UDP packet between the given addresses.
func stealthPkt(t *testing.T, src, dst netip.Addr, size int) []byte {
	t.Helper()
	payload := make([]byte, size)
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: 9000, DstPort: 9001},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// stealthEngine builds an engine whose ClassUnknown policy is pol: with
// no classifier configured every flow stays Unknown, so the policy
// applies to every packet and the stealth gates can be probed directly.
func stealthEngine(pol ClassPolicy) *Engine {
	var p Policy
	p[ClassUnknown] = pol
	return NewEngine(EngineConfig{Policy: p, Rng: rand.New(rand.NewSource(9))})
}

func TestStealthDutyCycleGatesInTime(t *testing.T) {
	eng := stealthEngine(ClassPolicy{DropProb: 1, DutyPeriod: 10 * time.Millisecond, DutyOn: 5 * time.Millisecond})
	hook := eng.Hook()
	pkt := stealthPkt(t, netip.MustParseAddr("172.16.0.2"), netip.MustParseAddr("10.9.0.1"), 160)
	base := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	// The 2006 epoch is not duty-phase-aligned; anchor to the period.
	base = base.Add(-time.Duration(base.UnixNano() % int64(10*time.Millisecond)))
	var droppedOn, droppedOff int
	for i := 0; i < 100; i++ {
		now := base.Add(time.Duration(i) * time.Millisecond)
		v := hook(now, nil, pkt)
		inOn := (i % 10) < 5
		if v.Drop && !inOn {
			droppedOff++
		}
		if v.Drop && inOn {
			droppedOn++
		}
	}
	if droppedOff != 0 {
		t.Errorf("%d drops during OFF phase, want 0", droppedOff)
	}
	if droppedOn != 50 {
		t.Errorf("%d drops during ON phase, want all 50", droppedOn)
	}
	if eng.Exempted(ClassUnknown) != 50 {
		t.Errorf("Exempted = %d, want 50 OFF-phase packets", eng.Exempted(ClassUnknown))
	}
}

func TestStealthMinFlowPktsExemptsYoungFlows(t *testing.T) {
	eng := stealthEngine(ClassPolicy{DropProb: 1, MinFlowPkts: 10})
	hook := eng.Hook()
	pkt := stealthPkt(t, netip.MustParseAddr("172.16.0.2"), netip.MustParseAddr("10.9.0.1"), 160)
	now := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	for i := 1; i <= 30; i++ {
		now = now.Add(20 * time.Millisecond)
		v := hook(now, nil, pkt)
		if i <= 10 && v.Drop {
			t.Fatalf("packet %d of a young flow dropped; probe evasion must exempt the first 10", i)
		}
		if i > 10 && !v.Drop {
			t.Fatalf("packet %d not dropped; enforcement must start once the flow ages past 10", i)
		}
	}
}

// TestStealthMinFlowPktsClampedToWindow: a threshold above the decayed
// window's ceiling would otherwise exempt every flow forever — the
// engine must clamp it so long flows always age into enforcement.
func TestStealthMinFlowPktsClampedToWindow(t *testing.T) {
	var p Policy
	p[ClassUnknown] = ClassPolicy{DropProb: 1, MinFlowPkts: 1 << 30}
	eng := NewEngine(EngineConfig{
		Table:  Config{WindowPkts: 64},
		Policy: p,
		Rng:    rand.New(rand.NewSource(9)),
	})
	hook := eng.Hook()
	pkt := stealthPkt(t, netip.MustParseAddr("172.16.0.2"), netip.MustParseAddr("10.9.0.1"), 160)
	now := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	dropped := false
	for i := 0; i < 500 && !dropped; i++ {
		now = now.Add(time.Millisecond)
		dropped = hook(now, nil, pkt).Drop
	}
	if !dropped {
		t.Error("flow of 500 packets never enforced: MinFlowPkts must clamp to the decayed window")
	}
}

func TestStealthTargetFractionIsStableAndProportional(t *testing.T) {
	eng := stealthEngine(ClassPolicy{DropProb: 1, TargetFraction: 0.5})
	hook := eng.Hook()
	now := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	const flows = 400
	targeted := 0
	for f := 0; f < flows; f++ {
		src := netip.AddrFrom4([4]byte{172, 16, byte(f >> 8), byte(f + 2)})
		pkt := stealthPkt(t, src, netip.MustParseAddr("10.9.0.1"), 160)
		var first bool
		for i := 0; i < 5; i++ {
			now = now.Add(time.Millisecond)
			v := hook(now, nil, pkt)
			if i == 0 {
				first = v.Drop
			} else if v.Drop != first {
				t.Fatalf("flow %d changed fate mid-life (pkt %d): targeting must be stable per flow", f, i)
			}
		}
		if first {
			targeted++
		}
	}
	frac := float64(targeted) / flows
	if frac < 0.4 || frac > 0.6 {
		t.Errorf("targeted fraction = %.2f over %d flows, want ~0.5", frac, flows)
	}
	// Different stealth seeds must select different subsets.
	var p Policy
	p[ClassUnknown] = ClassPolicy{DropProb: 1, TargetFraction: 0.5}
	eng2 := NewEngine(EngineConfig{Policy: p, Rng: rand.New(rand.NewSource(9)), StealthSeed: 12345})
	hook2 := eng2.Hook()
	differs := false
	for f := 0; f < 64 && !differs; f++ {
		src := netip.AddrFrom4([4]byte{172, 16, byte(f >> 8), byte(f + 2)})
		pkt := stealthPkt(t, src, netip.MustParseAddr("10.9.0.1"), 160)
		now = now.Add(time.Millisecond)
		v1 := hook(now, nil, pkt)
		v2 := hook2(now, nil, pkt)
		if v1.Drop != v2.Drop {
			differs = true
		}
	}
	if !differs {
		t.Error("seeds 0 (default) and 12345 selected identical flow subsets over 64 flows")
	}
}

// TestStealthObserveNMatchesObserve pins the new two-value observation
// path to the original.
func TestStealthObserveNMatchesObserve(t *testing.T) {
	tab := NewFlowTable(Config{})
	key, err := netem.FlowKeyFrom(netip.MustParseAddr("172.16.0.2"), netip.MustParseAddr("10.9.0.1"), wire.ProtoUDP)
	if err != nil {
		t.Fatal(err)
	}
	now := int64(1e15)
	for i := 1; i <= 20; i++ {
		class, pkts := tab.ObserveN(key, true, 160, now)
		if class != ClassUnknown {
			t.Fatalf("no classifier configured but class = %v", class)
		}
		if pkts != uint64(i) {
			t.Fatalf("ObserveN pkts = %d after %d packets", pkts, i)
		}
		now += int64(20 * time.Millisecond)
	}
	if got := tab.Observe(key, true, 160, now); got != ClassUnknown {
		t.Fatalf("Observe class = %v", got)
	}
}

func TestFlowFracUniform(t *testing.T) {
	const n = 4096
	var buckets [8]int
	for i := 0; i < n; i++ {
		k := netem.FlowKey{Lo: [4]byte{10, 0, byte(i >> 8), byte(i)}, Hi: [4]byte{172, 16, 0, 1}, Proto: 17}
		f := flowFrac(7, k)
		if f < 0 || f >= 1 {
			t.Fatalf("flowFrac out of [0,1): %v", f)
		}
		buckets[int(f*8)]++
	}
	for b, c := range buckets {
		if c < n/8/2 || c > n/8*2 {
			t.Errorf("bucket %d holds %d of %d keys; hash badly skewed", b, c, n)
		}
	}
}
