// Package isp models Internet service providers — in particular the
// paper's discriminatory ISP: one that classifies packets by content
// (DPI), application (ports), or source/destination addresses, and
// degrades what it matches (drop, delay, deprioritize).
//
// A Policy compiles an ordered rule list into a netem.TransitHook
// installed on the ISP's transit routers. An Eavesdropper is the passive
// counterpart: it records what the ISP can observe about each packet
// crossing its domain, which is exactly the information a discriminatory
// ISP could act on. The Figure-1 experiments are phrased as assertions
// over these observations: with the neutralizer in place, no observation
// ever names a protected customer.
//
// The threat model follows §2: the ISP eavesdrops, delays and drops
// within its own network but does not modify payloads or mount MITM.
//
// Hooks run on netem's no-copy packet view: the pkt slice aliases the
// pooled buffer and is valid only for the duration of the call. Matchers
// only read it, and the Eavesdropper extracts value-typed Observations
// rather than retaining bytes, so policies add no per-packet copies to
// the forwarding path even at metro scale.
package isp

import (
	"bytes"
	"math/rand"
	"net/netip"
	"sync"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// Matcher reports whether a serialized IPv4 packet matches a
// classification criterion.
type Matcher func(pkt []byte) bool

// MatchAll matches every packet.
func MatchAll() Matcher { return func([]byte) bool { return true } }

// MatchSrcAddr matches packets from a.
func MatchSrcAddr(a netip.Addr) Matcher {
	return func(pkt []byte) bool {
		src, _, err := wire.IPv4Addrs(pkt)
		return err == nil && src == a
	}
}

// MatchDstAddr matches packets to a — the tool an ISP would use to
// target a specific site (the paper's "slow down queries for
// www.google.com if Google does not pay").
func MatchDstAddr(a netip.Addr) Matcher {
	return func(pkt []byte) bool {
		_, dst, err := wire.IPv4Addrs(pkt)
		return err == nil && dst == a
	}
}

// MatchAddr matches packets to or from a.
func MatchAddr(a netip.Addr) Matcher {
	return func(pkt []byte) bool {
		src, dst, err := wire.IPv4Addrs(pkt)
		return err == nil && (src == a || dst == a)
	}
}

// MatchPrefix matches packets whose source or destination falls in p
// (how an ISP targets a competitor ISP's whole address block).
func MatchPrefix(p netip.Prefix) Matcher {
	return func(pkt []byte) bool {
		src, dst, err := wire.IPv4Addrs(pkt)
		return err == nil && (p.Contains(src) || p.Contains(dst))
	}
}

// MatchProto matches on the IP protocol field; MatchProto(wire.ProtoShim)
// is the "discriminate against encrypted/neutralized traffic" classifier
// of §3.6.
func MatchProto(proto uint8) Matcher {
	return func(pkt []byte) bool {
		p, err := wire.IPv4Proto(pkt)
		return err == nil && p == proto
	}
}

// MatchUDPPort matches packets with the given UDP source or destination
// port — application-type discrimination (e.g. SIP/RTP VoIP ports). It
// looks through a shim header if present, although against encrypted
// payloads it will not fire (which is the point of the design).
func MatchUDPPort(port uint16) Matcher {
	return func(pkt []byte) bool {
		udp := transportOf(pkt)
		return udp != nil && (udp.SrcPort == port || udp.DstPort == port)
	}
}

// MatchPayloadContains performs DPI: matches packets whose bytes above
// the IP header contain sig. Against end-to-end encrypted payloads this
// cannot fire on plaintext content.
func MatchPayloadContains(sig []byte) Matcher {
	return func(pkt []byte) bool {
		if len(pkt) <= wire.IPv4HeaderLen {
			return false
		}
		return bytes.Contains(pkt[wire.IPv4HeaderLen:], sig)
	}
}

// MatchShimType matches neutralized packets of a given shim message type;
// MatchShimType(shim.TypeKeySetupRequest) is §3.6's "discriminate against
// key setup packets".
func MatchShimType(t shim.Type) Matcher {
	return func(pkt []byte) bool {
		proto, err := wire.IPv4Proto(pkt)
		if err != nil || proto != wire.ProtoShim || len(pkt) < wire.IPv4HeaderLen+1 {
			return false
		}
		got, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:])
		return ok && got == t
	}
}

// And combines matchers conjunctively.
func And(ms ...Matcher) Matcher {
	return func(pkt []byte) bool {
		for _, m := range ms {
			if !m(pkt) {
				return false
			}
		}
		return true
	}
}

// Or combines matchers disjunctively.
func Or(ms ...Matcher) Matcher {
	return func(pkt []byte) bool {
		for _, m := range ms {
			if m(pkt) {
				return true
			}
		}
		return false
	}
}

// Not inverts a matcher.
func Not(m Matcher) Matcher { return func(pkt []byte) bool { return !m(pkt) } }

func transportOf(pkt []byte) *wire.UDP {
	proto, err := wire.IPv4Proto(pkt)
	if err != nil {
		return nil
	}
	var payload []byte
	switch proto {
	case wire.ProtoUDP:
		if len(pkt) > wire.IPv4HeaderLen {
			payload = pkt[wire.IPv4HeaderLen:]
		}
	case wire.ProtoShim:
		var sh shim.Header
		if len(pkt) > wire.IPv4HeaderLen && sh.DecodeFromBytes(pkt[wire.IPv4HeaderLen:]) == nil &&
			sh.InnerProto == wire.ProtoUDP {
			payload = sh.Payload()
		}
	}
	if payload == nil {
		return nil
	}
	var udp wire.UDP
	if udp.DecodeFromBytes(payload) != nil {
		return nil
	}
	return &udp
}

// Action is what a matching rule does to a packet.
type Action struct {
	// DropProb drops the packet with this probability (1.0 = always).
	DropProb float64
	// Delay holds the packet before it continues.
	Delay time.Duration
	// RemarkDSCP, when non-nil, rewrites the packet's DSCP (e.g. to a
	// scavenger class).
	RemarkDSCP *uint8
}

// Rule is one classification entry.
type Rule struct {
	Name   string
	Match  Matcher
	Action Action
}

// Policy is an ordered first-match rule list with per-rule hit counters.
type Policy struct {
	mu    sync.Mutex
	rules []Rule
	hits  map[string]uint64
	rng   *rand.Rand
}

// NewPolicy builds a policy; rng drives probabilistic drops (seed it for
// deterministic experiments).
func NewPolicy(rng *rand.Rand, rules ...Rule) *Policy {
	if rng == nil {
		rng = rand.New(rand.NewSource(1))
	}
	return &Policy{rules: rules, hits: make(map[string]uint64), rng: rng}
}

// AddRule appends a rule.
func (p *Policy) AddRule(r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = append(p.rules, r)
}

// Hits returns how many packets matched the named rule.
func (p *Policy) Hits(name string) uint64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits[name]
}

// Hook compiles the policy into a transit hook for netem nodes.
func (p *Policy) Hook() netem.TransitHook {
	return func(now time.Time, node *netem.Node, pkt []byte) netem.Verdict {
		p.mu.Lock()
		defer p.mu.Unlock()
		for i := range p.rules {
			r := &p.rules[i]
			if !r.Match(pkt) {
				continue
			}
			p.hits[r.Name]++
			v := netem.Verdict{Delay: r.Action.Delay, DSCP: r.Action.RemarkDSCP, Cause: netem.CauseRule}
			if r.Action.DropProb > 0 && p.rng.Float64() < r.Action.DropProb {
				v.Drop = true
			}
			return v
		}
		return netem.Deliver
	}
}

// Observation is one packet as seen by an on-path ISP: everything it can
// read without breaking encryption.
type Observation struct {
	Time     time.Time
	Src, Dst netip.Addr
	Proto    uint8
	DSCP     uint8
	Size     int
	// ShimType is the neutralizer message type if the packet is
	// neutralized (visible per §3.6), or shim.TypeInvalid.
	ShimType shim.Type
	// InnerVisible reports whether the ISP could parse an inner transport
	// header (true only for non-encrypted traffic).
	InnerVisible bool
	InnerSrcPort uint16
	InnerDstPort uint16
}

// Eavesdropper passively records Observations at the nodes it is attached
// to. It is the measurement instrument for the Figure-1 experiments.
type Eavesdropper struct {
	mu  sync.Mutex
	obs []Observation
}

// NewEavesdropper creates an empty eavesdropper.
func NewEavesdropper() *Eavesdropper { return &Eavesdropper{} }

// Hook returns a transit hook that records and never interferes.
func (e *Eavesdropper) Hook() netem.TransitHook {
	return func(now time.Time, node *netem.Node, pkt []byte) netem.Verdict {
		e.record(now, pkt)
		return netem.Deliver
	}
}

func (e *Eavesdropper) record(now time.Time, pkt []byte) {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil {
		return
	}
	o := Observation{
		Time: now, Src: ip.Src, Dst: ip.Dst,
		Proto: ip.Protocol, DSCP: ip.DSCP(), Size: len(pkt),
	}
	if ip.Protocol == wire.ProtoShim {
		if t, ok := shim.PeekType(ip.Payload()); ok {
			o.ShimType = t
		}
	}
	if ip.Protocol == wire.ProtoUDP {
		var udp wire.UDP
		if udp.DecodeFromBytes(ip.Payload()) == nil {
			o.InnerVisible = true
			o.InnerSrcPort = udp.SrcPort
			o.InnerDstPort = udp.DstPort
		}
	}
	e.mu.Lock()
	e.obs = append(e.obs, o)
	e.mu.Unlock()
}

// Observations returns a copy of everything recorded.
func (e *Eavesdropper) Observations() []Observation {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]Observation, len(e.obs))
	copy(out, e.obs)
	return out
}

// Count returns the number of recorded packets.
func (e *Eavesdropper) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.obs)
}

// SawAddr reports whether any observation names a as source or
// destination: the targetability test. If the neutralizer works, this is
// false for every protected customer.
func (e *Eavesdropper) SawAddr(a netip.Addr) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, o := range e.obs {
		if o.Src == a || o.Dst == a {
			return true
		}
	}
	return false
}

// DistinctPeers returns the set of distinct (src,dst) address pairs
// observed — the granularity at which the ISP can discriminate.
func (e *Eavesdropper) DistinctPeers() map[[2]netip.Addr]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[[2]netip.Addr]int)
	for _, o := range e.obs {
		out[[2]netip.Addr{o.Src, o.Dst}]++
	}
	return out
}

// PortsSeen returns the set of inner UDP destination ports the ISP could
// read (application visibility).
func (e *Eavesdropper) PortsSeen() map[uint16]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[uint16]int)
	for _, o := range e.obs {
		if o.InnerVisible {
			out[o.InnerDstPort]++
		}
	}
	return out
}

// Reset discards recorded observations.
func (e *Eavesdropper) Reset() {
	e.mu.Lock()
	e.obs = nil
	e.mu.Unlock()
}
