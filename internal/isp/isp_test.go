package isp

import (
	mathrand "math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

var (
	srcA = netip.MustParseAddr("172.16.0.1")
	dstB = netip.MustParseAddr("10.10.0.5")
)

func udpPkt(t testing.TB, src, dst netip.Addr, sport, dport uint16, payload []byte) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(28, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: sport, DstPort: dport},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func shimPkt(t testing.TB, src, dst netip.Addr, typ shim.Type, inner []byte) []byte {
	t.Helper()
	sh := &shim.Header{Type: typ, Nonce: keys.Nonce{1}}
	switch typ {
	case shim.TypeData, shim.TypeReturnDelivered:
		sh.HiddenAddr = aesutil.AddrBlock{1, 2, 3}
		sh.InnerProto = wire.ProtoUDP
	case shim.TypeKeySetupRequest:
		sh.PublicKey = []byte{1, 2, 3, 4}
	case shim.TypeReturn:
		sh.ClearAddr = srcA
	}
	buf := wire.NewSerializeBuffer(64, len(inner))
	buf.PushPayload(inner)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		sh,
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestAddressMatchers(t *testing.T) {
	pkt := udpPkt(t, srcA, dstB, 100, 200, nil)
	if !MatchSrcAddr(srcA)(pkt) || MatchSrcAddr(dstB)(pkt) {
		t.Error("MatchSrcAddr")
	}
	if !MatchDstAddr(dstB)(pkt) || MatchDstAddr(srcA)(pkt) {
		t.Error("MatchDstAddr")
	}
	if !MatchAddr(srcA)(pkt) || !MatchAddr(dstB)(pkt) || MatchAddr(netip.MustParseAddr("9.9.9.9"))(pkt) {
		t.Error("MatchAddr")
	}
	if !MatchPrefix(netip.MustParsePrefix("10.10.0.0/16"))(pkt) {
		t.Error("MatchPrefix should match dst block")
	}
	if MatchPrefix(netip.MustParsePrefix("192.168.0.0/16"))(pkt) {
		t.Error("MatchPrefix false positive")
	}
}

func TestProtoAndPortMatchers(t *testing.T) {
	plain := udpPkt(t, srcA, dstB, 5060, 16384, []byte("rtp"))
	if !MatchProto(wire.ProtoUDP)(plain) || MatchProto(wire.ProtoShim)(plain) {
		t.Error("MatchProto")
	}
	if !MatchUDPPort(5060)(plain) || !MatchUDPPort(16384)(plain) || MatchUDPPort(80)(plain) {
		t.Error("MatchUDPPort on plain UDP")
	}
	// Port visible through an unencrypted shim'd UDP header too.
	neutral := shimPkt(t, srcA, dstB, shim.TypeData, mkUDPSegment(t, 5060, 16384))
	if !MatchUDPPort(5060)(neutral) {
		t.Error("MatchUDPPort should see through shim to inner UDP header")
	}
}

func mkUDPSegment(t testing.TB, sport, dport uint16) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(8, 4)
	buf.PushPayload([]byte("data"))
	if err := (&wire.UDP{SrcPort: sport, DstPort: dport}).SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestDPIMatcher(t *testing.T) {
	pkt := udpPkt(t, srcA, dstB, 1, 2, []byte("GET /index.html"))
	if !MatchPayloadContains([]byte("GET "))(pkt) {
		t.Error("DPI should match plaintext")
	}
	if MatchPayloadContains([]byte("POST"))(pkt) {
		t.Error("DPI false positive")
	}
	if MatchPayloadContains([]byte("x"))([]byte{}) {
		t.Error("DPI on empty packet")
	}
}

func TestShimTypeMatcher(t *testing.T) {
	setup := shimPkt(t, srcA, dstB, shim.TypeKeySetupRequest, nil)
	data := shimPkt(t, srcA, dstB, shim.TypeData, nil)
	m := MatchShimType(shim.TypeKeySetupRequest)
	if !m(setup) {
		t.Error("key-setup detection failed (§3.6 classifier)")
	}
	if m(data) {
		t.Error("matched wrong shim type")
	}
	if m(udpPkt(t, srcA, dstB, 1, 2, nil)) {
		t.Error("matched non-shim packet")
	}
}

func TestCombinators(t *testing.T) {
	pkt := udpPkt(t, srcA, dstB, 1, 2, nil)
	if !And(MatchSrcAddr(srcA), MatchDstAddr(dstB))(pkt) {
		t.Error("And")
	}
	if And(MatchSrcAddr(srcA), MatchDstAddr(srcA))(pkt) {
		t.Error("And short-circuit")
	}
	if !Or(MatchDstAddr(srcA), MatchDstAddr(dstB))(pkt) {
		t.Error("Or")
	}
	if !Not(MatchDstAddr(srcA))(pkt) {
		t.Error("Not")
	}
	if !MatchAll()(pkt) {
		t.Error("MatchAll")
	}
}

func TestPolicyFirstMatchAndHits(t *testing.T) {
	p := NewPolicy(mathrand.New(mathrand.NewSource(1)),
		Rule{Name: "target-google", Match: MatchDstAddr(dstB), Action: Action{Delay: 50 * time.Millisecond}},
		Rule{Name: "catch-all", Match: MatchAll(), Action: Action{}},
	)
	hook := p.Hook()
	v := hook(time.Time{}, nil, udpPkt(t, srcA, dstB, 1, 2, nil))
	if v.Delay != 50*time.Millisecond || v.Drop {
		t.Errorf("verdict = %+v", v)
	}
	if p.Hits("target-google") != 1 || p.Hits("catch-all") != 0 {
		t.Error("first-match semantics violated")
	}
	other := udpPkt(t, srcA, netip.MustParseAddr("10.99.0.1"), 1, 2, nil)
	hook(time.Time{}, nil, other)
	if p.Hits("catch-all") != 1 {
		t.Error("fallthrough rule not hit")
	}
}

func TestPolicyDropProbability(t *testing.T) {
	p := NewPolicy(mathrand.New(mathrand.NewSource(42)),
		Rule{Name: "half", Match: MatchAll(), Action: Action{DropProb: 0.5}},
	)
	hook := p.Hook()
	pkt := udpPkt(t, srcA, dstB, 1, 2, nil)
	drops := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if hook(time.Time{}, nil, pkt).Drop {
			drops++
		}
	}
	if drops < n*4/10 || drops > n*6/10 {
		t.Errorf("drop rate = %d/%d, want ~50%%", drops, n)
	}
}

func TestPolicyInNetem(t *testing.T) {
	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	s := netem.NewSimulator(start, 1)
	a := s.MustAddNode("a", "att", srcA)
	r := s.MustAddNode("r", "att", netip.MustParseAddr("172.16.0.254"))
	b := s.MustAddNode("b", "cogent", dstB)
	s.Connect(a, r, netem.LinkConfig{Delay: time.Millisecond})
	s.Connect(r, b, netem.LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()

	p := NewPolicy(mathrand.New(mathrand.NewSource(1)),
		Rule{Name: "kill-b", Match: MatchDstAddr(dstB), Action: Action{DropProb: 1}},
	)
	r.AddTransitHook(p.Hook())

	delivered := 0
	b.SetHandler(func(time.Time, []byte) { delivered++ })
	for i := 0; i < 5; i++ {
		_ = a.Send(udpPkt(t, srcA, dstB, 1, 2, nil))
	}
	s.Run()
	if delivered != 0 {
		t.Errorf("targeted traffic delivered %d packets despite drop rule", delivered)
	}
	if p.Hits("kill-b") != 5 {
		t.Errorf("hits = %d", p.Hits("kill-b"))
	}
}

func TestEavesdropperVisibility(t *testing.T) {
	e := NewEavesdropper()
	hook := e.Hook()
	now := time.Now()

	// Plain UDP: everything visible.
	hook(now, nil, udpPkt(t, srcA, dstB, 5060, 16384, []byte("hello")))
	// Neutralized data packet: only outer header + shim type visible.
	anycast := netip.MustParseAddr("10.200.0.1")
	hook(now, nil, shimPkt(t, srcA, anycast, shim.TypeData, nil))

	obs := e.Observations()
	if len(obs) != 2 || e.Count() != 2 {
		t.Fatalf("observations = %d", len(obs))
	}
	if !obs[0].InnerVisible || obs[0].InnerDstPort != 16384 {
		t.Error("plain UDP ports should be visible")
	}
	if obs[1].InnerVisible {
		t.Error("neutralized packet's inner headers must not be visible")
	}
	if obs[1].ShimType != shim.TypeData {
		t.Errorf("shim type = %v (visible per §3.6)", obs[1].ShimType)
	}
	if !e.SawAddr(dstB) {
		t.Error("plain traffic exposes dstB")
	}
	if e.SawAddr(netip.MustParseAddr("10.10.0.99")) {
		t.Error("false SawAddr")
	}
	peers := e.DistinctPeers()
	if len(peers) != 2 {
		t.Errorf("distinct peers = %d", len(peers))
	}
	ports := e.PortsSeen()
	if ports[16384] != 1 || len(ports) != 1 {
		t.Errorf("ports = %v", ports)
	}
	e.Reset()
	if e.Count() != 0 {
		t.Error("Reset")
	}
}
