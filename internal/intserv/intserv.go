// Package intserv implements a minimal per-flow guaranteed service
// (RSVP-style reservations) — the IntServ model of the paper's §3.4
// discussion.
//
// Guaranteed service requires the network to keep per-flow state, where a
// flow is a (source, destination) address pair. Anonymized traffic
// defeats this: every neutralized conversation collapses onto the same
// visible pair (outside host ↔ anycast address), so a discriminatory ISP
// cannot tell flows apart. The paper offers two remedies, both
// implemented by core: neutralizer-assigned dynamic addresses (flows
// become distinguishable, customers do not), or opting out of
// anonymization. This package provides the reservation table and the
// guaranteed-service queue used to demonstrate both.
package intserv

import (
	"errors"
	"fmt"
	"net/netip"
	"sync"
	"time"

	"netneutral/internal/diffserv"
	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

// Errors returned by this package.
var (
	ErrDuplicateFlow = errors.New("intserv: flow already reserved")
	ErrNoCapacity    = errors.New("intserv: insufficient capacity for reservation")
)

// FlowID identifies a flow the way an RSVP router does: by the visible
// (src, dst) address pair.
type FlowID struct {
	Src, Dst netip.Addr
}

func (f FlowID) String() string { return fmt.Sprintf("%v->%v", f.Src, f.Dst) }

// FlowOf extracts the FlowID from a serialized IPv4 packet.
func FlowOf(pkt []byte) (FlowID, error) {
	src, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return FlowID{}, err
	}
	return FlowID{Src: src, Dst: dst}, nil
}

// Reservation is a per-flow bandwidth guarantee.
type Reservation struct {
	Flow    FlowID
	RateBps float64
	Burst   int // bytes
}

// Table is an admission-controlled reservation table with a capacity
// budget (the guaranteed-service share of a link).
type Table struct {
	mu       sync.Mutex
	capacity float64 // total reservable bits/sec
	used     float64
	flows    map[FlowID]*Reservation
}

// NewTable creates a table with the given reservable capacity in bps.
func NewTable(capacityBps float64) *Table {
	return &Table{capacity: capacityBps, flows: make(map[FlowID]*Reservation)}
}

// Reserve admits a reservation or rejects it for capacity/duplicates.
func (t *Table) Reserve(r Reservation) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.flows[r.Flow]; dup {
		return ErrDuplicateFlow
	}
	if t.used+r.RateBps > t.capacity {
		return ErrNoCapacity
	}
	cp := r
	t.flows[r.Flow] = &cp
	t.used += r.RateBps
	return nil
}

// Release frees a reservation.
func (t *Table) Release(f FlowID) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.flows[f]; ok {
		t.used -= r.RateBps
		delete(t.flows, f)
	}
}

// Lookup returns the reservation for a flow, if any.
func (t *Table) Lookup(f FlowID) (*Reservation, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	r, ok := t.flows[f]
	return r, ok
}

// Len reports active reservations (the per-flow state the paper says a
// discriminatory ISP "can no longer keep" for anonymized traffic).
func (t *Table) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.flows)
}

// Used reports reserved bandwidth in bps.
func (t *Table) Used() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.used
}

// GuaranteedQueue is a netem.Queue giving reserved flows policed,
// prioritized service and everything else best effort.
//
// Each reserved flow is policed to its rate with a token bucket;
// conforming reserved packets dequeue ahead of best effort.
type GuaranteedQueue struct {
	table    *Table
	now      func() time.Time
	policers map[FlowID]*diffserv.TokenBucket
	reserved []*netem.QueuedPacket
	best     []*netem.QueuedPacket
	capEach  int
	// ReservedServed and BestServed count dequeues per class.
	ReservedServed uint64
	BestServed     uint64
	NonConforming  uint64
}

// NewGuaranteedQueue builds the queue; now supplies (virtual) time for
// the policers.
func NewGuaranteedQueue(table *Table, capEach int, now func() time.Time) *GuaranteedQueue {
	if capEach <= 0 {
		capEach = 64
	}
	return &GuaranteedQueue{
		table:    table,
		now:      now,
		policers: make(map[FlowID]*diffserv.TokenBucket),
		capEach:  capEach,
	}
}

// Enqueue implements netem.Queue.
func (q *GuaranteedQueue) Enqueue(p *netem.QueuedPacket) bool {
	flow, err := FlowOf(p.Pkt)
	if err == nil {
		if r, ok := q.table.Lookup(flow); ok {
			tb := q.policers[flow]
			if tb == nil {
				tb = diffserv.NewTokenBucket(r.RateBps, max(r.Burst, 1500))
				q.policers[flow] = tb
			}
			if tb.Allow(q.now(), p.Size) {
				if len(q.reserved) >= q.capEach {
					return false
				}
				q.reserved = append(q.reserved, p)
				return true
			}
			// Non-conforming excess of a reserved flow degrades to best
			// effort rather than being dropped outright.
			q.NonConforming++
		}
	}
	if len(q.best) >= q.capEach {
		return false
	}
	q.best = append(q.best, p)
	return true
}

// Dequeue implements netem.Queue: reserved first.
func (q *GuaranteedQueue) Dequeue() *netem.QueuedPacket {
	if len(q.reserved) > 0 {
		p := q.reserved[0]
		q.reserved = q.reserved[1:]
		q.ReservedServed++
		return p
	}
	if len(q.best) > 0 {
		p := q.best[0]
		q.best = q.best[1:]
		q.BestServed++
		return p
	}
	return nil
}

// Len implements netem.Queue.
func (q *GuaranteedQueue) Len() int { return len(q.reserved) + len(q.best) }
