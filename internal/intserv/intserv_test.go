package intserv

import (
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

var (
	srcA = netip.MustParseAddr("172.16.0.1")
	srcB = netip.MustParseAddr("172.16.0.2")
	dstX = netip.MustParseAddr("10.10.0.1")
)

func pkt(t testing.TB, src, dst netip.Addr, size int) []byte {
	t.Helper()
	payload := make([]byte, size)
	buf := wire.NewSerializeBuffer(28, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestTableAdmissionControl(t *testing.T) {
	tbl := NewTable(100_000)
	f1 := FlowID{Src: srcA, Dst: dstX}
	if err := tbl.Reserve(Reservation{Flow: f1, RateBps: 64_000}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Reserve(Reservation{Flow: f1, RateBps: 1}); err != ErrDuplicateFlow {
		t.Errorf("duplicate: %v", err)
	}
	f2 := FlowID{Src: srcB, Dst: dstX}
	if err := tbl.Reserve(Reservation{Flow: f2, RateBps: 64_000}); err != ErrNoCapacity {
		t.Errorf("over capacity: %v", err)
	}
	if err := tbl.Reserve(Reservation{Flow: f2, RateBps: 36_000}); err != nil {
		t.Errorf("within capacity: %v", err)
	}
	if tbl.Len() != 2 || tbl.Used() != 100_000 {
		t.Errorf("len=%d used=%v", tbl.Len(), tbl.Used())
	}
	tbl.Release(f1)
	if tbl.Len() != 1 || tbl.Used() != 36_000 {
		t.Errorf("after release: len=%d used=%v", tbl.Len(), tbl.Used())
	}
	if _, ok := tbl.Lookup(f1); ok {
		t.Error("released flow still present")
	}
}

func TestFlowOf(t *testing.T) {
	f, err := FlowOf(pkt(t, srcA, dstX, 10))
	if err != nil || f.Src != srcA || f.Dst != dstX {
		t.Errorf("FlowOf = %v, %v", f, err)
	}
	if _, err := FlowOf([]byte{1}); err == nil {
		t.Error("short packet should fail")
	}
	if f.String() == "" {
		t.Error("String")
	}
}

func TestGuaranteedQueuePriority(t *testing.T) {
	tbl := NewTable(1e9)
	if err := tbl.Reserve(Reservation{Flow: FlowID{Src: srcA, Dst: dstX}, RateBps: 1e6, Burst: 10000}); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	q := NewGuaranteedQueue(tbl, 16, func() time.Time { return now })

	best := pkt(t, srcB, dstX, 100)
	resv := pkt(t, srcA, dstX, 100)
	q.Enqueue(&netem.QueuedPacket{Pkt: best, Size: len(best)})
	q.Enqueue(&netem.QueuedPacket{Pkt: resv, Size: len(resv)})

	first := q.Dequeue()
	src, _, _ := wire.IPv4Addrs(first.Pkt)
	if src != srcA {
		t.Error("reserved flow should dequeue before best effort")
	}
	if q.ReservedServed != 1 {
		t.Error("ReservedServed counter")
	}
	second := q.Dequeue()
	if src2, _, _ := wire.IPv4Addrs(second.Pkt); src2 != srcB {
		t.Error("best effort should follow")
	}
	if q.Dequeue() != nil || q.Len() != 0 {
		t.Error("queue should be empty")
	}
}

func TestGuaranteedQueuePolicing(t *testing.T) {
	tbl := NewTable(1e9)
	// 8 kbps with ~1500B burst: only the burst conforms at t=0.
	if err := tbl.Reserve(Reservation{Flow: FlowID{Src: srcA, Dst: dstX}, RateBps: 8_000, Burst: 1500}); err != nil {
		t.Fatal(err)
	}
	now := time.Unix(0, 0)
	q := NewGuaranteedQueue(tbl, 100, func() time.Time { return now })
	p := pkt(t, srcA, dstX, 700)
	for i := 0; i < 4; i++ {
		q.Enqueue(&netem.QueuedPacket{Pkt: p, Size: len(p)})
	}
	// ~2 packets conform (1500B burst / ~728B each); excess degrades to
	// best effort rather than being dropped.
	if q.NonConforming < 2 {
		t.Errorf("NonConforming = %d, want >= 2", q.NonConforming)
	}
	if q.Len() != 4 {
		t.Errorf("Len = %d: excess should be queued best-effort", q.Len())
	}
}

// TestAnonymizedFlowsCollapse demonstrates the §3.4 problem: behind the
// anycast address, distinct customer flows are indistinguishable to an
// RSVP router, so per-flow guarantees cannot be expressed — while with
// dynamic addresses they can.
func TestAnonymizedFlowsCollapse(t *testing.T) {
	anycast := netip.MustParseAddr("10.200.0.1")
	outside := srcA

	// Two different customers' return traffic, anonymized: identical FlowID.
	f1, _ := FlowOf(pkt(t, anycast, outside, 10))
	f2, _ := FlowOf(pkt(t, anycast, outside, 10))
	if f1 != f2 {
		t.Fatal("sanity: anonymized flows should collapse")
	}
	tbl := NewTable(1e9)
	if err := tbl.Reserve(Reservation{Flow: f1, RateBps: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Reserve(Reservation{Flow: f2, RateBps: 1000}); err != ErrDuplicateFlow {
		t.Errorf("second anonymized flow: err = %v, want ErrDuplicateFlow", err)
	}

	// With per-flow dynamic addresses the flows are distinct.
	dyn1 := netip.MustParseAddr("10.250.0.1")
	dyn2 := netip.MustParseAddr("10.250.0.2")
	g1, _ := FlowOf(pkt(t, dyn1, outside, 10))
	g2, _ := FlowOf(pkt(t, dyn2, outside, 10))
	if g1 == g2 {
		t.Fatal("dynamic addresses must separate flows")
	}
	if err := tbl.Reserve(Reservation{Flow: g1, RateBps: 1000}); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Reserve(Reservation{Flow: g2, RateBps: 1000}); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Errorf("reservations = %d", tbl.Len())
	}
}
