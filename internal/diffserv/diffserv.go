// Package diffserv implements the tiered service the paper explicitly
// permits (§3.4): DSCP codepoints, a strict-priority queue discipline, a
// weighted-round-robin discipline, and a token-bucket policer. A
// discriminatory ISP may sell these to its customers; the neutralizer
// preserves DSCP markings so paid-for differentiation keeps working even
// for anonymized traffic.
package diffserv

import (
	"time"

	"netneutral/internal/netem"
)

// Standard DSCP codepoints.
const (
	DSCPBestEffort  uint8 = 0  // CS0
	DSCPScavenger   uint8 = 8  // CS1 "lower effort"
	DSCPAF11        uint8 = 10 // assured forwarding class 1
	DSCPAF41        uint8 = 34 // assured forwarding class 4
	DSCPExpedited   uint8 = 46 // EF: low-loss low-latency (VoIP)
	DSCPNetworkCtrl uint8 = 48 // CS6
)

// Classifier maps a DSCP to a class index; 0 is the highest priority.
type Classifier func(dscp uint8) int

// DefaultClassifier implements a common 3-class model:
// class 0 = EF and network control, class 1 = assured forwarding,
// class 2 = best effort and scavenger.
func DefaultClassifier(dscp uint8) int {
	switch {
	case dscp >= DSCPExpedited:
		return 0
	case dscp >= DSCPAF11:
		return 1
	default:
		return 2
	}
}

// PriorityQueue is a strict-priority netem.Queue: class 0 always
// dequeues before class 1, and so on. Each class has its own bounded
// FIFO.
type PriorityQueue struct {
	classify Classifier
	classes  [][]*netem.Packet
	capacity int
	dropped  []uint64
}

// NewPriorityQueue builds a strict-priority queue with nClasses classes
// of perClassCap packets each.
func NewPriorityQueue(nClasses, perClassCap int, classify Classifier) *PriorityQueue {
	if classify == nil {
		classify = DefaultClassifier
	}
	if nClasses <= 0 {
		nClasses = 3
	}
	if perClassCap <= 0 {
		perClassCap = 64
	}
	return &PriorityQueue{
		classify: classify,
		classes:  make([][]*netem.Packet, nClasses),
		capacity: perClassCap,
		dropped:  make([]uint64, nClasses),
	}
}

// Enqueue implements netem.Queue.
func (q *PriorityQueue) Enqueue(p *netem.Packet) bool {
	c := q.classify(p.DSCP)
	if c < 0 {
		c = 0
	}
	if c >= len(q.classes) {
		c = len(q.classes) - 1
	}
	if len(q.classes[c]) >= q.capacity {
		q.dropped[c]++
		return false
	}
	q.classes[c] = append(q.classes[c], p)
	return true
}

// Dequeue implements netem.Queue: strict priority.
func (q *PriorityQueue) Dequeue() *netem.Packet {
	for c := range q.classes {
		if len(q.classes[c]) > 0 {
			p := q.classes[c][0]
			q.classes[c] = q.classes[c][1:]
			return p
		}
	}
	return nil
}

// Len implements netem.Queue.
func (q *PriorityQueue) Len() int {
	n := 0
	for _, c := range q.classes {
		n += len(c)
	}
	return n
}

// Dropped reports tail drops per class.
func (q *PriorityQueue) Dropped(class int) uint64 {
	if class < 0 || class >= len(q.dropped) {
		return 0
	}
	return q.dropped[class]
}

// WRRQueue is a weighted-round-robin netem.Queue: class i receives
// service in proportion to Weights[i]. Unlike strict priority it cannot
// starve lower classes.
type WRRQueue struct {
	classify Classifier
	classes  [][]*netem.Packet
	weights  []int
	credit   []int
	capacity int
	cursor   int
}

// NewWRRQueue builds a WRR queue; weights must be positive.
func NewWRRQueue(weights []int, perClassCap int, classify Classifier) *WRRQueue {
	if classify == nil {
		classify = DefaultClassifier
	}
	if perClassCap <= 0 {
		perClassCap = 64
	}
	w := make([]int, len(weights))
	copy(w, weights)
	for i := range w {
		if w[i] <= 0 {
			w[i] = 1
		}
	}
	return &WRRQueue{
		classify: classify,
		classes:  make([][]*netem.Packet, len(w)),
		weights:  w,
		credit:   make([]int, len(w)),
		capacity: perClassCap,
	}
}

// Enqueue implements netem.Queue.
func (q *WRRQueue) Enqueue(p *netem.Packet) bool {
	c := q.classify(p.DSCP)
	if c < 0 {
		c = 0
	}
	if c >= len(q.classes) {
		c = len(q.classes) - 1
	}
	if len(q.classes[c]) >= q.capacity {
		return false
	}
	q.classes[c] = append(q.classes[c], p)
	return true
}

// Dequeue implements netem.Queue with weighted round robin over
// non-empty classes.
func (q *WRRQueue) Dequeue() *netem.Packet {
	if q.Len() == 0 {
		return nil
	}
	for tries := 0; tries < 2*len(q.classes); tries++ {
		c := q.cursor
		if len(q.classes[c]) > 0 {
			if q.credit[c] <= 0 {
				q.credit[c] = q.weights[c]
			}
			p := q.classes[c][0]
			q.classes[c] = q.classes[c][1:]
			q.credit[c]--
			if q.credit[c] <= 0 {
				q.cursor = (q.cursor + 1) % len(q.classes)
			}
			return p
		}
		q.credit[c] = 0
		q.cursor = (q.cursor + 1) % len(q.classes)
	}
	return nil
}

// Len implements netem.Queue.
func (q *WRRQueue) Len() int {
	n := 0
	for _, c := range q.classes {
		n += len(c)
	}
	return n
}

// TokenBucket is a classic policer: traffic conforming to rate/burst is
// admitted; excess is not.
type TokenBucket struct {
	rateBps float64 // bits per second
	burst   float64 // bucket depth in bits
	tokens  float64
	last    time.Time
	started bool
}

// NewTokenBucket creates a policer admitting rateBps with the given burst
// (in bytes).
func NewTokenBucket(rateBps float64, burstBytes int) *TokenBucket {
	b := float64(burstBytes * 8)
	return &TokenBucket{rateBps: rateBps, burst: b, tokens: b}
}

// Allow reports whether a packet of size bytes conforms at time now,
// consuming tokens if it does.
func (t *TokenBucket) Allow(now time.Time, size int) bool {
	if !t.started {
		t.last, t.started = now, true
	}
	elapsed := now.Sub(t.last).Seconds()
	if elapsed > 0 {
		t.tokens += elapsed * t.rateBps
		if t.tokens > t.burst {
			t.tokens = t.burst
		}
		t.last = now
	}
	need := float64(size * 8)
	if t.tokens >= need {
		t.tokens -= need
		return true
	}
	return false
}
