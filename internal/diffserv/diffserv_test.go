package diffserv

import (
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

func qp(dscp uint8, size int) *netem.Packet {
	return &netem.Packet{DSCP: dscp, Size: size, Pkt: make([]byte, size)}
}

func TestDefaultClassifier(t *testing.T) {
	cases := []struct {
		dscp uint8
		want int
	}{
		{DSCPExpedited, 0}, {DSCPNetworkCtrl, 0},
		{DSCPAF11, 1}, {DSCPAF41, 1},
		{DSCPBestEffort, 2}, {DSCPScavenger, 2},
	}
	for _, c := range cases {
		if got := DefaultClassifier(c.dscp); got != c.want {
			t.Errorf("DefaultClassifier(%d) = %d, want %d", c.dscp, got, c.want)
		}
	}
}

func TestPriorityQueueStrictOrdering(t *testing.T) {
	q := NewPriorityQueue(3, 10, nil)
	q.Enqueue(qp(DSCPBestEffort, 100))
	q.Enqueue(qp(DSCPExpedited, 100))
	q.Enqueue(qp(DSCPAF41, 100))
	q.Enqueue(qp(DSCPExpedited, 100))

	order := []uint8{}
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		order = append(order, p.DSCP)
	}
	want := []uint8{DSCPExpedited, DSCPExpedited, DSCPAF41, DSCPBestEffort}
	if len(order) != len(want) {
		t.Fatalf("order = %v", order)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestPriorityQueuePerClassCaps(t *testing.T) {
	q := NewPriorityQueue(3, 2, nil)
	for i := 0; i < 4; i++ {
		q.Enqueue(qp(DSCPBestEffort, 10))
	}
	if q.Len() != 2 {
		t.Errorf("Len = %d, want 2", q.Len())
	}
	if q.Dropped(2) != 2 {
		t.Errorf("Dropped(2) = %d", q.Dropped(2))
	}
	// High-priority class unaffected by best-effort pressure.
	if !q.Enqueue(qp(DSCPExpedited, 10)) {
		t.Error("EF enqueue rejected despite free class queue")
	}
	if q.Dropped(9) != 0 {
		t.Error("out-of-range Dropped should be 0")
	}
}

func TestPriorityQueueEmptyDequeue(t *testing.T) {
	q := NewPriorityQueue(2, 4, nil)
	if q.Dequeue() != nil {
		t.Error("empty dequeue should be nil")
	}
}

func TestWRRQueueProportions(t *testing.T) {
	// Weights 3:1 — with both classes backlogged, class 0 should get ~75%
	// of service.
	q := NewWRRQueue([]int{3, 1}, 1000, func(d uint8) int {
		if d == DSCPExpedited {
			return 0
		}
		return 1
	})
	for i := 0; i < 400; i++ {
		q.Enqueue(qp(DSCPExpedited, 10))
		q.Enqueue(qp(DSCPBestEffort, 10))
	}
	counts := map[int]int{}
	for i := 0; i < 400; i++ {
		p := q.Dequeue()
		if p == nil {
			t.Fatal("unexpected empty queue")
		}
		if p.DSCP == DSCPExpedited {
			counts[0]++
		} else {
			counts[1]++
		}
	}
	if counts[0] < 280 || counts[0] > 320 {
		t.Errorf("class0 served %d of 400, want ~300 (3:1 weights)", counts[0])
	}
	// No starvation: class 1 still served.
	if counts[1] == 0 {
		t.Error("WRR must not starve low class")
	}
}

func TestWRRQueueDrainsOneClass(t *testing.T) {
	q := NewWRRQueue([]int{2, 2}, 10, nil)
	q.Enqueue(qp(DSCPBestEffort, 1))
	q.Enqueue(qp(DSCPBestEffort, 1))
	got := 0
	for p := q.Dequeue(); p != nil; p = q.Dequeue() {
		got++
	}
	if got != 2 {
		t.Errorf("drained %d", got)
	}
	if q.Dequeue() != nil {
		t.Error("empty WRR dequeue")
	}
}

func TestWRRQueueCapacity(t *testing.T) {
	q := NewWRRQueue([]int{1}, 1, func(uint8) int { return 0 })
	if !q.Enqueue(qp(0, 1)) || q.Enqueue(qp(0, 1)) {
		t.Error("capacity not enforced")
	}
}

func TestTokenBucketConformance(t *testing.T) {
	// 8000 bps = 1000 bytes/sec; burst 500 bytes.
	tb := NewTokenBucket(8000, 500)
	now := time.Unix(0, 0)
	// Burst drains the bucket.
	if !tb.Allow(now, 500) {
		t.Fatal("initial burst should conform")
	}
	if tb.Allow(now, 100) {
		t.Error("bucket should be empty")
	}
	// After 100ms, 100 bytes of tokens accumulate.
	now = now.Add(100 * time.Millisecond)
	if !tb.Allow(now, 100) {
		t.Error("refilled tokens should admit 100 bytes")
	}
	if tb.Allow(now, 10) {
		t.Error("bucket drained again")
	}
	// Tokens cap at burst.
	now = now.Add(time.Hour)
	if !tb.Allow(now, 500) {
		t.Error("bucket should cap at burst depth")
	}
	if tb.Allow(now, 200) {
		t.Error("cap exceeded")
	}
}

// TestTieredServiceOnLink is the §3.4 claim end to end: two flows share a
// congested link; the one marked EF by a paid tier keeps low loss while
// best effort suffers — and this works on DSCP alone, with no knowledge
// of who the endpoints are.
func TestTieredServiceOnLink(t *testing.T) {
	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	s := netem.NewSimulator(start, 1)
	a := s.MustAddNode("a", "", mustAddr("10.0.0.1"))
	b := s.MustAddNode("b", "", mustAddr("10.0.0.2"))
	// Slow link with a priority queue at a's egress.
	link := s.Connect(a, b, netem.LinkConfig{Delay: time.Millisecond, RateBps: 80_000, QueueLen: 8})
	if err := link.SetQueue(a, NewPriorityQueue(3, 8, nil)); err != nil {
		t.Fatal(err)
	}
	s.BuildRoutes()

	got := map[uint8]int{}
	b.SetHandler(func(_ time.Time, pkt []byte) { got[pkt[1]>>2]++ })

	mk := func(dscp uint8) []byte {
		payload := make([]byte, 100)
		buf := wire.NewSerializeBuffer(28, len(payload))
		buf.PushPayload(payload)
		ip := &wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP,
			Src: mustAddr("10.0.0.1"), Dst: mustAddr("10.0.0.2")}
		ip.SetDSCP(dscp)
		if err := wire.SerializeLayers(buf, ip, &wire.UDP{SrcPort: 1, DstPort: 2}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	// Offer ~2x the link rate over time: a 128-byte packet serializes in
	// 12.8ms at 80kbps, and we inject one EF + one BE every 12.8ms. The
	// backlog must shed half the load; strict priority sheds best effort.
	interval := 12800 * time.Microsecond
	for i := 0; i < 40; i++ {
		s.Schedule(time.Duration(i)*interval, func() {
			_ = a.Send(mk(DSCPExpedited))
			_ = a.Send(mk(DSCPBestEffort))
		})
	}
	s.Run()
	if got[DSCPExpedited] <= got[DSCPBestEffort] {
		t.Errorf("EF=%d BE=%d: paid tier should win under congestion",
			got[DSCPExpedited], got[DSCPBestEffort])
	}
	if got[DSCPExpedited] < 35 {
		t.Errorf("EF delivered only %d/40", got[DSCPExpedited])
	}
}

func mustAddr(s string) netip.Addr { return netip.MustParseAddr(s) }
