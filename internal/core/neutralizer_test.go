package core

import (
	"bytes"
	"crypto/rand"
	mathrand "math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/crypto/lightrsa"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

var (
	tStart   = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	anycast  = netip.MustParseAddr("10.200.0.1")
	annAddr  = netip.MustParseAddr("172.16.1.10") // outside source ("Ann")
	googAddr = netip.MustParseAddr("10.10.0.5")   // customer ("Google")
	custNet  = netip.MustParsePrefix("10.10.0.0/16")
)

// clientKey is a shared one-time-style RSA key for tests (keygen is slow).
var clientKey = mustKey()

func mustKey() *lightrsa.PrivateKey {
	k, err := lightrsa.GenerateKey(rand.Reader, lightrsa.DefaultBits)
	if err != nil {
		panic(err)
	}
	return k
}

func testSchedule() *keys.Schedule {
	return keys.NewSchedule(aesutil.Key{7}, tStart, time.Hour)
}

func newTestNeutralizer(t *testing.T, mut func(*Config)) *Neutralizer {
	t.Helper()
	cfg := Config{
		Schedule:   testSchedule(),
		Anycast:    anycast,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
		Clock:      func() time.Time { return tStart.Add(10 * time.Minute) },
		Rand:       mathrand.New(mathrand.NewSource(1)),
	}
	if mut != nil {
		mut(&cfg)
	}
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// mkShimPacket builds a client-side shim packet for tests.
func mkShimPacket(t *testing.T, src, dst netip.Addr, tos uint8, sh *shim.Header, payload []byte) []byte {
	t.Helper()
	pkt, err := buildShimPacket(src, dst, tos, sh, payload)
	if err != nil {
		t.Fatal(err)
	}
	return pkt
}

// doKeySetup runs the Figure 2(a) exchange and returns the client's view:
// (nonce, Ks, epoch).
func doKeySetup(t *testing.T, n *Neutralizer) (keys.Nonce, aesutil.Key, keys.Epoch) {
	t.Helper()
	req := &shim.Header{Type: shim.TypeKeySetupRequest, PublicKey: clientKey.PublicKey.Marshal()}
	out, err := n.Process(mkShimPacket(t, annAddr, anycast, 0, req, nil))
	if err != nil {
		t.Fatalf("key setup: %v", err)
	}
	if len(out) != 1 {
		t.Fatalf("key setup produced %d packets", len(out))
	}
	pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
	if pkt.ErrorLayer() != nil {
		t.Fatalf("response parse: %v", pkt.ErrorLayer())
	}
	ipl := pkt.NetworkLayer()
	if ipl.Src != anycast || ipl.Dst != annAddr {
		t.Fatalf("response addressed %v -> %v", ipl.Src, ipl.Dst)
	}
	sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
	if sh.Type != shim.TypeKeySetupResponse {
		t.Fatalf("response type = %v", sh.Type)
	}
	pt, err := clientKey.Decrypt(sh.Ciphertext)
	if err != nil {
		t.Fatalf("client decrypt: %v", err)
	}
	nonce, ks, err := shim.DecodeSetupPlaintext(pt)
	if err != nil {
		t.Fatal(err)
	}
	return nonce, ks, sh.Epoch
}

// mkData builds a forward data packet as the endhost would.
func mkData(t *testing.T, src netip.Addr, n *Neutralizer, nonce keys.Nonce, ks aesutil.Key,
	epoch keys.Epoch, hiddenDst netip.Addr, flags uint8, payload []byte) []byte {
	t.Helper()
	blk, err := aesutil.EncryptAddr(ks, hiddenDst, [8]byte{1, 2, 3, 4, 5, 6, 7, 8})
	if err != nil {
		t.Fatal(err)
	}
	sh := &shim.Header{
		Type: shim.TypeData, Flags: flags, InnerProto: wire.ProtoUDP,
		Epoch: epoch, Nonce: nonce, HiddenAddr: blk,
	}
	return mkShimPacket(t, src, n.Anycast(), 0, sh, payload)
}

func TestNewValidation(t *testing.T) {
	good := Config{
		Schedule:   testSchedule(),
		Anycast:    anycast,
		IsCustomer: func(netip.Addr) bool { return true },
	}
	if _, err := New(good); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	bad := good
	bad.Schedule = nil
	if _, err := New(bad); err == nil {
		t.Error("nil schedule accepted")
	}
	bad = good
	bad.Anycast = netip.Addr{}
	if _, err := New(bad); err == nil {
		t.Error("zero anycast accepted")
	}
	bad = good
	bad.IsCustomer = nil
	if _, err := New(bad); err == nil {
		t.Error("nil IsCustomer accepted")
	}
}

func TestKeySetupRoundTrip(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	// The client-held Ks must equal the stateless derivation.
	want, err := testSchedule().SessionKey(epoch, nonce, annAddr)
	if err != nil {
		t.Fatal(err)
	}
	if ks != want {
		t.Error("client Ks does not match hash(KM, nonce, srcIP)")
	}
	if n.Stats().KeySetups.Load() != 1 {
		t.Errorf("KeySetups = %d", n.Stats().KeySetups.Load())
	}
}

func TestDataForwardPath(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	payload := []byte("e2e-encrypted application bytes")
	out, err := n.Process(mkData(t, annAddr, n, nonce, ks, epoch, googAddr, 0, payload))
	if err != nil {
		t.Fatalf("data: %v", err)
	}
	pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
	ipl := pkt.NetworkLayer()
	if ipl.Src != annAddr || ipl.Dst != googAddr {
		t.Errorf("forwarded %v -> %v, want %v -> %v", ipl.Src, ipl.Dst, annAddr, googAddr)
	}
	sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
	if sh.Type != shim.TypeDelivered {
		t.Errorf("type = %v", sh.Type)
	}
	if sh.ClearAddr != anycast {
		t.Errorf("return address = %v, want anycast", sh.ClearAddr)
	}
	if sh.Nonce != nonce {
		t.Error("nonce not preserved")
	}
	if !bytes.Equal(sh.Payload(), payload) {
		t.Error("payload not preserved")
	}
	if n.Stats().DataForwarded.Load() != 1 {
		t.Error("DataForwarded counter")
	}
}

func TestDataKeyRequestStampsGrant(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	out, err := n.Process(mkData(t, annAddr, n, nonce, ks, epoch, googAddr, shim.FlagKeyRequest, []byte("x")))
	if err != nil {
		t.Fatal(err)
	}
	pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
	sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
	if !sh.HasGrant() {
		t.Fatal("no grant stamped despite FlagKeyRequest")
	}
	if sh.Grant.Nonce == nonce {
		t.Error("grant must carry a fresh nonce")
	}
	// The granted key must verify against the stateless derivation for
	// the same outside source.
	want, err := testSchedule().SessionKey(sh.Epoch, sh.Grant.Nonce, annAddr)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Grant.Key != want {
		t.Error("granted Ks' does not match hash(KM, nonce', srcIP)")
	}
	if n.Stats().GrantsStamped.Load() != 1 {
		t.Error("GrantsStamped counter")
	}
}

func TestDataStaleEpochRejected(t *testing.T) {
	n := newTestNeutralizer(t, func(c *Config) {
		c.Clock = func() time.Time { return tStart.Add(5 * time.Hour) } // epoch 5
	})
	src := annAddr
	sched := testSchedule()
	nonce := keys.Nonce{1}
	// Epoch 3 is two epochs old: reject.
	ks, _ := sched.SessionKey(3, nonce, src)
	_, err := n.Process(mkData(t, src, n, nonce, ks, 3, googAddr, 0, nil))
	if err != ErrStaleEpoch {
		t.Errorf("epoch 3 at epoch 5: err = %v, want ErrStaleEpoch", err)
	}
	// Epoch 4 (previous) is inside the grace window: accept.
	ks4, _ := sched.SessionKey(4, nonce, src)
	if _, err := n.Process(mkData(t, src, n, nonce, ks4, 4, googAddr, 0, nil)); err != nil {
		t.Errorf("grace epoch rejected: %v", err)
	}
	if n.Stats().DropStaleEpoch.Load() != 1 {
		t.Error("DropStaleEpoch counter")
	}
}

func TestDataBadAddrBlock(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, _, epoch := doKeySetup(t, n)
	wrongKs := aesutil.Key{0xFF} // not the derived key
	_, err := n.Process(mkData(t, annAddr, n, nonce, wrongKs, epoch, googAddr, 0, nil))
	if err != ErrBadAddrBlock {
		t.Errorf("err = %v, want ErrBadAddrBlock", err)
	}
	if n.Stats().DropBadAddrBlock.Load() != 1 {
		t.Error("DropBadAddrBlock counter")
	}
}

func TestDataNonCustomerRejected(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	outsider := netip.MustParseAddr("8.8.8.8")
	_, err := n.Process(mkData(t, annAddr, n, nonce, ks, epoch, outsider, 0, nil))
	if err != ErrNotCustomer {
		t.Errorf("err = %v, want ErrNotCustomer (no open relay)", err)
	}
}

func TestReturnPath(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	payload := []byte("reply bytes")
	ret := &shim.Header{
		Type: shim.TypeReturn, InnerProto: wire.ProtoUDP,
		Epoch: epoch, Nonce: nonce, ClearAddr: annAddr,
	}
	out, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, payload))
	if err != nil {
		t.Fatalf("return: %v", err)
	}
	pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
	ipl := pkt.NetworkLayer()
	if ipl.Src != anycast || ipl.Dst != annAddr {
		t.Errorf("return forwarded %v -> %v, want anycast -> %v", ipl.Src, ipl.Dst, annAddr)
	}
	sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
	if sh.Type != shim.TypeReturnDelivered {
		t.Errorf("type = %v", sh.Type)
	}
	// Ann can decrypt the hidden source with her session key.
	got, _, err := aesutil.DecryptAddr(ks, sh.HiddenAddr)
	if err != nil {
		t.Fatalf("initiator cannot decrypt hidden source: %v", err)
	}
	if got != googAddr {
		t.Errorf("hidden source = %v, want %v", got, googAddr)
	}
	if !bytes.Equal(sh.Payload(), payload) {
		t.Error("payload not preserved")
	}
}

func TestReturnFromNonCustomerRejected(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	ret := &shim.Header{Type: shim.TypeReturn, Nonce: keys.Nonce{1}, ClearAddr: annAddr}
	_, err := n.Process(mkShimPacket(t, netip.MustParseAddr("9.9.9.9"), anycast, 0, ret, nil))
	if err != ErrNotFromCustomer {
		t.Errorf("err = %v, want ErrNotFromCustomer", err)
	}
}

func TestReturnNoAnonymizeOptOut(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, _, epoch := doKeySetup(t, n)
	ret := &shim.Header{
		Type: shim.TypeReturn, Flags: shim.FlagNoAnonymize,
		Epoch: epoch, Nonce: nonce, ClearAddr: annAddr,
	}
	out, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, nil))
	if err != nil {
		t.Fatal(err)
	}
	src, _, _ := wire.IPv4Addrs(out[0].Pkt)
	if src != googAddr {
		t.Errorf("opt-out src = %v, want customer's own address", src)
	}
}

func TestReturnDynamicAddr(t *testing.T) {
	var allocs []netip.Addr
	n := newTestNeutralizer(t, func(c *Config) {
		c.DynAddrPool = netip.MustParsePrefix("10.250.0.0/24")
		c.OnDynAlloc = func(a netip.Addr, alloc bool) {
			if alloc {
				allocs = append(allocs, a)
			}
		}
	})
	nonce, _, epoch := doKeySetup(t, n)
	ret := &shim.Header{
		Type: shim.TypeReturn, Flags: shim.FlagDynamicAddr,
		Epoch: epoch, Nonce: nonce, ClearAddr: annAddr,
	}
	out1, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, nil))
	if err != nil {
		t.Fatal(err)
	}
	src1, _, _ := wire.IPv4Addrs(out1[0].Pkt)
	if !netip.MustParsePrefix("10.250.0.0/24").Contains(src1) {
		t.Fatalf("dynamic address %v outside pool", src1)
	}
	if src1 == anycast || src1 == googAddr {
		t.Error("dynamic address must differ from anycast and customer")
	}
	// Stable across packets of the same flow.
	out2, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, nil))
	if err != nil {
		t.Fatal(err)
	}
	src2, _, _ := wire.IPv4Addrs(out2[0].Pkt)
	if src2 != src1 {
		t.Errorf("dynamic address not stable per flow: %v vs %v", src1, src2)
	}
	// Only the neutralizer can map it back.
	cust, peer, ok := n.DynFlowOf(src1)
	if !ok || cust != googAddr || peer != annAddr {
		t.Errorf("DynFlowOf = %v %v %v", cust, peer, ok)
	}
	if n.DynAddrCount() != 1 || len(allocs) != 1 {
		t.Errorf("allocations = %d/%d", n.DynAddrCount(), len(allocs))
	}
	n.ReleaseDynAddr(src1)
	if n.DynAddrCount() != 0 {
		t.Error("release did not clear table")
	}
	if _, _, ok := n.DynFlowOf(src1); ok {
		t.Error("released address still resolvable")
	}
}

func TestDynamicAddrDisabledByDefault(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, _, epoch := doKeySetup(t, n)
	ret := &shim.Header{
		Type: shim.TypeReturn, Flags: shim.FlagDynamicAddr,
		Epoch: epoch, Nonce: nonce, ClearAddr: annAddr,
	}
	if _, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, nil)); err != ErrDynPoolExhausted {
		t.Errorf("err = %v, want ErrDynPoolExhausted", err)
	}
}

func TestKeyFetchReverseDirection(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	req := &shim.Header{Type: shim.TypeKeyFetchRequest, ClearAddr: annAddr}
	out, err := n.Process(mkShimPacket(t, googAddr, anycast, 0, req, nil))
	if err != nil {
		t.Fatal(err)
	}
	pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
	sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
	if sh.Type != shim.TypeKeyFetchResponse {
		t.Fatalf("type = %v", sh.Type)
	}
	// The fetched key is bound to the *peer* (outside) address, so the
	// outside party's data packets derive the same Ks.
	want, err := testSchedule().SessionKey(sh.Epoch, sh.Grant.Nonce, annAddr)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Grant.Key != want {
		t.Error("fetched key not bound to peer address")
	}
	// Non-customers may not fetch keys.
	if _, err := n.Process(mkShimPacket(t, annAddr, anycast, 0, req, nil)); err != ErrNotFromCustomer {
		t.Errorf("outside fetch: err = %v", err)
	}
}

func TestOffloadDelegatesToHelpers(t *testing.T) {
	helper1 := netip.MustParseAddr("10.10.0.7")
	helper2 := netip.MustParseAddr("10.10.0.8")
	n := newTestNeutralizer(t, func(c *Config) {
		c.Offload = &OffloadPolicy{Helpers: []netip.Addr{helper1, helper2}}
	})
	req := &shim.Header{Type: shim.TypeKeySetupRequest, PublicKey: clientKey.PublicKey.Marshal()}
	seen := map[netip.Addr]int{}
	for i := 0; i < 4; i++ {
		out, err := n.Process(mkShimPacket(t, annAddr, anycast, 0, req, nil))
		if err != nil {
			t.Fatal(err)
		}
		pkt := wire.ParsePacket(out[0].Pkt, wire.LayerTypeIPv4)
		ipl := pkt.NetworkLayer()
		seen[ipl.Dst]++
		sh := pkt.Layer(wire.LayerTypeShim).(*shim.Header)
		if sh.Type != shim.TypeKeySetupRequest || sh.Flags&shim.FlagOffloaded == 0 {
			t.Fatalf("offloaded packet type=%v flags=%b", sh.Type, sh.Flags)
		}
		// The stamped grant must verify against the stateless derivation.
		want, err := testSchedule().SessionKey(sh.Epoch, sh.Grant.Nonce, annAddr)
		if err != nil {
			t.Fatal(err)
		}
		if sh.Grant.Key != want {
			t.Error("offload grant key mismatch")
		}
		// The helper has everything needed to produce the response.
		pub, _, err := lightrsa.UnmarshalPublicKey(sh.PublicKey)
		if err != nil {
			t.Fatal(err)
		}
		ct, err := pub.Encrypt(rand.Reader, shim.EncodeSetupPlaintext(sh.Grant.Nonce, sh.Grant.Key))
		if err != nil {
			t.Fatal(err)
		}
		pt, err := clientKey.Decrypt(ct)
		if err != nil {
			t.Fatal(err)
		}
		gotNonce, gotKey, _ := shim.DecodeSetupPlaintext(pt)
		if gotNonce != sh.Grant.Nonce || gotKey != sh.Grant.Key {
			t.Error("helper-encrypted grant does not roundtrip")
		}
	}
	if seen[helper1] != 2 || seen[helper2] != 2 {
		t.Errorf("round robin = %v", seen)
	}
	if n.Stats().KeySetupsOffload.Load() != 4 {
		t.Error("KeySetupsOffload counter")
	}
}

func TestAltDataMode(t *testing.T) {
	altKey := mustKey()
	n := newTestNeutralizer(t, func(c *Config) { c.AltIdentity = altKey })
	// Source encrypts (dst‖salt) under the neutralizer's public key.
	g4 := googAddr.As4()
	pt := append(g4[:], 1, 2, 3, 4, 5, 6, 7, 8)
	ct, err := altKey.PublicKey.Encrypt(rand.Reader, pt)
	if err != nil {
		t.Fatal(err)
	}
	sh := &shim.Header{Type: shim.TypeAltData, InnerProto: wire.ProtoUDP, Ciphertext: ct}
	out, err := n.Process(mkShimPacket(t, annAddr, anycast, 0, sh, []byte("pl")))
	if err != nil {
		t.Fatalf("alt data: %v", err)
	}
	_, dst, _ := wire.IPv4Addrs(out[0].Pkt)
	if dst != googAddr {
		t.Errorf("alt forwarded to %v", dst)
	}
	if n.Stats().AltSetups.Load() != 1 {
		t.Error("AltSetups counter")
	}
}

func TestAltDataUnconfigured(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	sh := &shim.Header{Type: shim.TypeAltData, Ciphertext: []byte{1, 2, 3}}
	if _, err := n.Process(mkShimPacket(t, annAddr, anycast, 0, sh, nil)); err != ErrNoAltIdentity {
		t.Errorf("err = %v, want ErrNoAltIdentity", err)
	}
}

func TestNonShimPacketRejected(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	buf := wire.NewSerializeBuffer(28, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: annAddr, Dst: anycast},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Process(buf.Bytes()); err != ErrNotShim {
		t.Errorf("err = %v, want ErrNotShim", err)
	}
}

func TestDSCPPreservedThroughNeutralizer(t *testing.T) {
	n := newTestNeutralizer(t, nil)
	nonce, ks, epoch := doKeySetup(t, n)
	blk, err := aesutil.EncryptAddr(ks, googAddr, [8]byte{1})
	if err != nil {
		t.Fatal(err)
	}
	sh := &shim.Header{Type: shim.TypeData, Epoch: epoch, Nonce: nonce, HiddenAddr: blk}
	const efTOS = 46 << 2 // EF DSCP
	out, err := n.Process(mkShimPacket(t, annAddr, anycast, efTOS, sh, nil))
	if err != nil {
		t.Fatal(err)
	}
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(out[0].Pkt); err != nil {
		t.Fatal(err)
	}
	if ip.DSCP() != 46 {
		t.Errorf("DSCP = %d, want 46 (§3.4: neutralizer must not modify DSCP)", ip.DSCP())
	}
}

// TestStatelessness is the property at the core of the design: processing
// traffic from many distinct sources leaves no per-source state behind,
// and any replica sharing the schedule can take over mid-conversation.
func TestStatelessness(t *testing.T) {
	n1 := newTestNeutralizer(t, nil)
	n2 := newTestNeutralizer(t, nil) // replica: same schedule, separate instance

	sched := testSchedule()
	epoch := sched.EpochAt(tStart.Add(10 * time.Minute))
	for i := 0; i < 200; i++ {
		src := netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)})
		nonce := keys.Nonce{byte(i), byte(i >> 8)}
		ks, err := sched.SessionKey(epoch, nonce, src)
		if err != nil {
			t.Fatal(err)
		}
		pkt := mkData(t, src, n1, nonce, ks, epoch, googAddr, 0, []byte("d"))
		// Alternate replicas packet by packet: with no shared state except
		// the schedule, both must succeed.
		var target *Neutralizer
		if i%2 == 0 {
			target = n1
		} else {
			target = n2
		}
		if _, err := target.Process(pkt); err != nil {
			t.Fatalf("replica processing failed at %d: %v", i, err)
		}
	}
	if n1.DynAddrCount() != 0 || n2.DynAddrCount() != 0 {
		t.Error("data path must not allocate per-flow state")
	}
	if got := n1.Stats().DataForwarded.Load() + n2.Stats().DataForwarded.Load(); got != 200 {
		t.Errorf("forwarded = %d", got)
	}
}

func TestDynPoolExhaustion(t *testing.T) {
	n := newTestNeutralizer(t, func(c *Config) {
		c.DynAddrPool = netip.MustParsePrefix("10.250.0.0/30") // 3 usable offsets
	})
	nonce, _, epoch := doKeySetup(t, n)
	var lastErr error
	for i := 0; i < 6; i++ {
		peer := netip.AddrFrom4([4]byte{172, 16, 9, byte(i)})
		ret := &shim.Header{
			Type: shim.TypeReturn, Flags: shim.FlagDynamicAddr,
			Epoch: epoch, Nonce: nonce, ClearAddr: peer,
		}
		_, lastErr = n.Process(mkShimPacket(t, googAddr, anycast, 0, ret, nil))
	}
	if lastErr != ErrDynPoolExhausted {
		t.Errorf("err = %v, want ErrDynPoolExhausted", lastErr)
	}
}

func TestVanillaForward(t *testing.T) {
	buf := wire.NewSerializeBuffer(28, 64)
	buf.PushPayload(make([]byte, 64))
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: annAddr, Dst: googAddr},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	pkt := buf.Bytes()
	if err := VanillaForward(pkt); err != nil {
		t.Fatal(err)
	}
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil {
		t.Fatalf("post-forward packet invalid: %v", err)
	}
	if ip.TTL != 63 {
		t.Errorf("TTL = %d", ip.TTL)
	}
	// TTL exhaustion.
	buf2 := wire.NewSerializeBuffer(28, 0)
	if err := wire.SerializeLayers(buf2,
		&wire.IPv4{TTL: 1, Protocol: wire.ProtoUDP, Src: annAddr, Dst: googAddr},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	if err := VanillaForward(buf2.Bytes()); err == nil {
		t.Error("TTL=1 forward should fail")
	}
}

func TestAddAddrOffset(t *testing.T) {
	base := netip.MustParseAddr("10.0.0.0")
	if got := addAddrOffset(base, 1); got != netip.MustParseAddr("10.0.0.1") {
		t.Errorf("offset 1 = %v", got)
	}
	if got := addAddrOffset(base, 256); got != netip.MustParseAddr("10.0.1.0") {
		t.Errorf("offset 256 = %v", got)
	}
}

func TestAltSetupSlowerThanChosenDesign(t *testing.T) {
	// Sanity check of the §3.2 argument (precise numbers in benchmarks):
	// neutralizer-side RSA encrypt (e=3) must be much cheaper than RSA
	// decrypt of equal modulus.
	altKey := mustKey()
	msg := make([]byte, 24)
	ct, err := altKey.PublicKey.Encrypt(rand.Reader, msg)
	if err != nil {
		t.Fatal(err)
	}
	const iters = 50
	startEnc := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := altKey.PublicKey.Encrypt(rand.Reader, msg); err != nil {
			t.Fatal(err)
		}
	}
	encDur := time.Since(startEnc)
	startDec := time.Now()
	for i := 0; i < iters; i++ {
		if _, err := altKey.Decrypt(ct); err != nil {
			t.Fatal(err)
		}
	}
	decDur := time.Since(startDec)
	if decDur < encDur {
		t.Errorf("RSA decrypt (%v) should cost more than e=3 encrypt (%v)", decDur, encDur)
	}
}

// Guard against accidental big.Int aliasing in lightrsa CRT reuse across
// concurrent Process calls: run key setups from multiple goroutines.
func TestConcurrentProcess(t *testing.T) {
	n := newTestNeutralizer(t, func(c *Config) { c.Rand = rand.Reader })
	nonce, ks, epoch := doKeySetup(t, n)
	pkt := mkData(t, annAddr, n, nonce, ks, epoch, googAddr, 0, []byte("x"))
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 50; i++ {
				if _, err := n.Process(bytes.Clone(pkt)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
