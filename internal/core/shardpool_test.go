package core

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"net/netip"
	"sync"
	"testing"
	"time"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// concConfig is the shared-replica configuration for the concurrency
// tests: the default crypto/rand entropy (safe for concurrent use),
// unlike the deterministic source most single-threaded tests install.
func concConfig(sched *keys.Schedule) Config {
	return Config{
		Schedule:   sched,
		Anycast:    anycast,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
		Clock:      func() time.Time { return tStart.Add(10 * time.Minute) },
	}
}

// mkDataBatch builds n forward-path data packets from n distinct outside
// sources, each with a session key derived exactly as the stateless
// neutralizer will re-derive it, plus — when withBad is set — a sprinkle
// of hostile packets (bad address block, stale epoch, truncated header)
// that must be dropped and counted, never panic.
func mkDataBatch(t testing.TB, sched *keys.Schedule, n int, withBad bool) (pkts [][]byte, good, bad int) {
	t.Helper()
	epoch := sched.EpochAt(tStart.Add(10 * time.Minute))
	payload := make([]byte, 64)
	for i := 0; i < n; i++ {
		src := netip.AddrFrom4([4]byte{172, 16, byte(i >> 8), byte(i)})
		var nonce keys.Nonce
		binary.BigEndian.PutUint64(nonce[:], uint64(i)+1)
		ks, err := sched.SessionKey(epoch, nonce, src)
		if err != nil {
			t.Fatal(err)
		}
		blk, err := aesutil.EncryptAddr(ks, googAddr, [8]byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		sh := &shim.Header{
			Type: shim.TypeData, InnerProto: wire.ProtoUDP,
			Epoch: epoch, Nonce: nonce, HiddenAddr: blk,
		}
		pkt, err := buildShimPacket(src, anycast, 0, sh, payload)
		if err != nil {
			t.Fatal(err)
		}
		pkts = append(pkts, pkt)
		good++
		if withBad && i%7 == 3 {
			// A forged address block: decrypts to garbage, fails the
			// check value, and must be counted as DropBadAddrBlock.
			forged := append([]byte(nil), pkt...)
			forged[len(forged)-len(payload)-1] ^= 0xff
			pkts = append(pkts, forged)
			bad++
		}
		if withBad && i%11 == 5 {
			pkts = append(pkts, []byte{0x45, 0x00, 0x00}) // truncated
			bad++
		}
	}
	return pkts, good, bad
}

// outputKey canonicalizes an output packet for multiset comparison.
func outputMultiset(outs []Outgoing) map[string]int {
	m := make(map[string]int, len(outs))
	for _, o := range outs {
		m[string(o.Pkt)] = m[string(o.Pkt)] + 1
	}
	return m
}

func sameMultiset(t *testing.T, label string, want, got map[string]int) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d distinct outputs, want %d", label, len(got), len(want))
	}
	for k, c := range want {
		if got[k] != c {
			t.Fatalf("%s: output count mismatch for one packet: got %d want %d", label, got[k], c)
		}
	}
}

// TestProcessConcurrent hammers a single shared Neutralizer from many
// goroutines (each with its own Scratch) and a sharded Pool, and asserts
// both produce byte-identical outputs to the serial path with consistent
// merged stats. Run under -race this is the statelessness claim made
// mechanically checkable.
func TestProcessConcurrent(t *testing.T) {
	sched := testSchedule()
	pkts, good, bad := mkDataBatch(t, sched, 96, true)

	// Serial reference.
	serial, err := New(concConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	ref := make([]Outgoing, 0, good)
	for _, pkt := range pkts {
		outs, err := serial.Process(pkt)
		if err != nil {
			continue
		}
		ref = append(ref, outs...)
	}
	if len(ref) != good {
		t.Fatalf("serial path forwarded %d packets, want %d", len(ref), good)
	}
	refSet := outputMultiset(ref)
	if got := serial.Stats().Snapshot(); got.DataForwarded != uint64(good) || got.Dropped() != uint64(bad) {
		t.Fatalf("serial stats: forwarded=%d dropped=%d, want %d/%d", got.DataForwarded, got.Dropped(), good, bad)
	}

	// One shared replica, many goroutines, per-goroutine scratches.
	const G = 8
	shared, err := New(concConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch()
			n := 0
			for _, pkt := range pkts {
				// Periodically recycle buffers, as a real worker would.
				if n%32 == 0 {
					s.Reset()
				}
				n++
				outs, err := shared.ProcessScratch(s, pkt)
				if err != nil {
					continue
				}
				for _, o := range outs {
					if refSet[string(o.Pkt)] == 0 {
						errCh <- fmt.Errorf("concurrent output not produced by serial path")
						return
					}
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < G; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if got := shared.Stats().Snapshot(); got.DataForwarded != uint64(G*good) || got.Dropped() != uint64(G*bad) {
		t.Fatalf("shared stats: forwarded=%d dropped=%d, want %d/%d", got.DataForwarded, got.Dropped(), G*good, G*bad)
	}

	// Sharded pool, several rounds; outputs must match the serial
	// multiset exactly and merged stats must add up.
	pool, err := NewPool(PoolConfig{Workers: 4, Config: concConfig(sched)})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	const rounds = 5
	for r := 0; r < rounds; r++ {
		outs, dropped := pool.ProcessBatch(pkts)
		if dropped != bad {
			t.Fatalf("round %d: pool dropped %d, want %d", r, dropped, bad)
		}
		sameMultiset(t, "pool", refSet, outputMultiset(outs))
	}
	agg := pool.Stats()
	if agg.DataForwarded != uint64(rounds*good) || agg.Dropped() != uint64(rounds*bad) {
		t.Fatalf("pool stats: forwarded=%d dropped=%d, want %d/%d", agg.DataForwarded, agg.Dropped(), rounds*good, rounds*bad)
	}
	if pool.Dropped() != uint64(rounds*bad) {
		t.Fatalf("pool.Dropped()=%d, want %d", pool.Dropped(), rounds*bad)
	}
	// Work actually spread across replicas: with 96 sources and 4
	// shards, no replica should have seen zero packets.
	for i := 0; i < pool.Workers(); i++ {
		if pool.Replica(i).Stats().Snapshot().DataForwarded == 0 {
			t.Errorf("replica %d processed nothing; sharding is degenerate", i)
		}
	}
}

// TestPoolShardingIsInterchangeable pins the anycast property: pools of
// different worker counts (different shard placements) produce identical
// output multisets, because every replica derives the same keys from the
// same schedule.
func TestPoolShardingIsInterchangeable(t *testing.T) {
	sched := testSchedule()
	pkts, good, _ := mkDataBatch(t, sched, 64, false)
	var sets []map[string]int
	for _, workers := range []int{1, 3, 4, 7} {
		pool, err := NewPool(PoolConfig{Workers: workers, Config: concConfig(sched)})
		if err != nil {
			t.Fatal(err)
		}
		outs, dropped := pool.ProcessBatch(pkts)
		if dropped != 0 || len(outs) != good {
			t.Fatalf("workers=%d: %d outputs %d dropped, want %d/0", workers, len(outs), dropped, good)
		}
		sets = append(sets, outputMultiset(outs))
		pool.Close()
	}
	for i := 1; i < len(sets); i++ {
		sameMultiset(t, "workers variant", sets[0], sets[i])
	}
}

// TestReturnPathConcurrent drives the randomized return path from many
// goroutines and verifies each output structurally (the hidden source
// decrypts, under the packet's own derivation, back to the customer).
func TestReturnPathConcurrent(t *testing.T) {
	sched := testSchedule()
	cfg := concConfig(sched)
	shared, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epoch := sched.EpochAt(cfg.Clock())
	payload := make([]byte, 32)
	const K = 48
	pkts := make([][]byte, K)
	initiators := make([]netip.Addr, K)
	for i := range pkts {
		initiators[i] = netip.AddrFrom4([4]byte{172, 16, 9, byte(i + 1)})
		var nonce keys.Nonce
		binary.BigEndian.PutUint64(nonce[:], uint64(i)+77)
		sh := &shim.Header{
			Type: shim.TypeReturn, InnerProto: wire.ProtoUDP,
			Epoch: epoch, Nonce: nonce, ClearAddr: initiators[i],
		}
		pkt, err := buildShimPacket(googAddr, anycast, 0, sh, payload)
		if err != nil {
			t.Fatal(err)
		}
		pkts[i] = pkt
	}
	const G = 6
	var wg sync.WaitGroup
	errCh := make(chan error, G)
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			s := NewScratch()
			for i, pkt := range pkts {
				s.Reset()
				outs, err := shared.ProcessScratch(s, pkt)
				if err != nil {
					errCh <- err
					return
				}
				var ip wire.IPv4
				var out shim.Header
				if err := ip.DecodeFromBytes(outs[0].Pkt); err != nil {
					errCh <- err
					return
				}
				if err := out.DecodeFromBytes(ip.Payload()); err != nil {
					errCh <- err
					return
				}
				if ip.Src != anycast || ip.Dst != initiators[i] {
					errCh <- fmt.Errorf("return %d: addresses %v->%v", i, ip.Src, ip.Dst)
					return
				}
				ks, err := sched.SessionKey(out.Epoch, out.Nonce, initiators[i])
				if err != nil {
					errCh <- err
					return
				}
				hidden, _, err := aesutil.DecryptAddr(ks, out.HiddenAddr)
				if err != nil || hidden != googAddr {
					errCh <- fmt.Errorf("return %d: hidden source decodes to %v (%v)", i, hidden, err)
					return
				}
				if !bytes.Equal(out.Payload(), payload) {
					errCh <- fmt.Errorf("return %d: payload mangled", i)
					return
				}
			}
			errCh <- nil
		}()
	}
	wg.Wait()
	for g := 0; g < G; g++ {
		if err := <-errCh; err != nil {
			t.Fatal(err)
		}
	}
	if got := shared.Stats().Snapshot().ReturnForwarded; got != G*K {
		t.Fatalf("ReturnForwarded=%d, want %d", got, G*K)
	}
}

// TestScratchDataPathZeroAlloc guards the tentpole property: the forward
// and return data paths allocate nothing per packet.
func TestScratchDataPathZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation accounting is not meaningful under -race")
	}
	sched := testSchedule()
	n, err := New(concConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	pkts, _, _ := mkDataBatch(t, sched, 8, false)
	s := NewScratch()
	// Warm up: buffer ring growth and epoch-cipher caching happen once.
	s.Reset()
	for _, pkt := range pkts {
		if _, err := n.ProcessScratch(s, pkt); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(100, func() {
		s.Reset()
		for _, pkt := range pkts {
			if _, err := n.ProcessScratch(s, pkt); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("data path allocates %v per batch, want 0", allocs)
	}
}

// TestProcessScratchMatchesProcess locks the compatibility contract: the
// scratch path and the allocating path are the same function.
func TestProcessScratchMatchesProcess(t *testing.T) {
	sched := testSchedule()
	n, err := New(concConfig(sched))
	if err != nil {
		t.Fatal(err)
	}
	pkts, _, _ := mkDataBatch(t, sched, 32, true)
	s := NewScratch()
	for i, pkt := range pkts {
		s.Reset()
		fastOuts, fastErr := n.ProcessScratch(s, pkt)
		slowOuts, slowErr := n.Process(pkt)
		if (fastErr == nil) != (slowErr == nil) {
			t.Fatalf("pkt %d: error divergence: scratch=%v process=%v", i, fastErr, slowErr)
		}
		if len(fastOuts) != len(slowOuts) {
			t.Fatalf("pkt %d: output count divergence", i)
		}
		for j := range fastOuts {
			if !bytes.Equal(fastOuts[j].Pkt, slowOuts[j].Pkt) {
				t.Fatalf("pkt %d output %d: bytes diverge", i, j)
			}
		}
	}
}
