// Sharded, zero-allocation data plane.
//
// The paper's load-bearing property is that the neutralizer is stateless:
// Ks = hash(KM, nonce, srcIP) is recomputed from each packet, so "any
// neutralizer [sharing KM] can decrypt the destination address and
// forward the packet". A Pool is that claim made executable inside one
// process: N independent Neutralizer replicas, constructed from the same
// Config (and thus the same master-key Schedule), each owning a worker
// goroutine and a Scratch. Packets are sharded by source address, but any
// shard assignment whatsoever produces the same outputs — the concurrency
// tests exercise exactly that interchangeability.
//
// Per-replica Stats are kept on independent cache lines (each replica has
// its own atomic counter block) and merged on demand via Snapshot/Merge,
// so counting never serializes the data path.
package core

import (
	"encoding/binary"
	"runtime"
	"sync"
	"sync/atomic"

	"netneutral/internal/wire"
)

// PoolConfig configures a Pool.
type PoolConfig struct {
	// Workers is the number of replicas/shards (default: GOMAXPROCS).
	Workers int
	// Config is the replica configuration. All replicas share the same
	// Schedule, IsCustomer and Rand; Rand must therefore be safe for
	// concurrent use (the default crypto/rand.Reader is).
	Config Config
}

// Pool runs N stateless Neutralizer replicas behind a batch interface.
// ProcessBatch may be called from one goroutine at a time; the batch is
// fanned out to the shard workers and the call returns when every packet
// has been processed.
type Pool struct {
	replicas []*Neutralizer
	scr      []*Scratch
	work     []chan struct{}
	wg       sync.WaitGroup

	pkts    [][]byte
	idx     [][]int32
	active  []int // shards with packets this batch (reused)
	errs    []int
	outs    []Outgoing
	dropped uint64
	closed  bool

	// met is the registry counter block, published atomically so
	// Instrument may race with live workers (nil = uninstrumented).
	met atomic.Pointer[poolMetrics]
}

// NewPool builds the replicas and starts one worker goroutine per shard.
func NewPool(cfg PoolConfig) (*Pool, error) {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		replicas: make([]*Neutralizer, w),
		scr:      make([]*Scratch, w),
		work:     make([]chan struct{}, w),
		idx:      make([][]int32, w),
		errs:     make([]int, w),
	}
	for i := 0; i < w; i++ {
		n, err := New(cfg.Config)
		if err != nil {
			return nil, err
		}
		p.replicas[i] = n
		p.scr[i] = NewScratch()
		p.work[i] = make(chan struct{}, 1)
		go p.worker(i)
	}
	return p, nil
}

// Workers returns the number of shard replicas.
func (p *Pool) Workers() int { return len(p.replicas) }

// Replica exposes shard i's Neutralizer (for tests and stats).
func (p *Pool) Replica(i int) *Neutralizer { return p.replicas[i] }

// worker drains batch signals for shard i. Worker state (scratch, index
// list, error count) is owned exclusively by this goroutine between the
// signal and the matching wg.Done.
func (p *Pool) worker(i int) {
	n := p.replicas[i]
	s := p.scr[i]
	for range p.work[i] {
		s.Reset()
		drops := 0
		for _, j := range p.idx[i] {
			if _, err := n.ProcessScratch(s, p.pkts[j]); err != nil {
				drops++
			}
		}
		p.errs[i] = drops
		if m := p.met.Load(); m != nil {
			m.flushWorkerMetrics(i, uint64(len(p.idx[i])), uint64(drops), s)
		}
		p.wg.Done()
	}
}

// shardOf maps a packet to a shard by FNV-hashing its source address, so
// one source's packets stay cache-warm on one replica. Statelessness
// means this is purely a locality heuristic: ANY placement yields
// identical outputs. Packets too short to carry an address round-robin
// by index.
func shardOf(pkt []byte, i, n int) int {
	if len(pkt) >= wire.IPv4HeaderLen {
		src := binary.BigEndian.Uint32(pkt[12:16])
		h := uint32(2166136261)
		for s := 0; s < 32; s += 8 {
			h = (h ^ (src >> s & 0xff)) * 16777619
		}
		return int(h % uint32(n))
	}
	return i % n
}

// ProcessBatch pushes a batch of serialized IPv4 packets through the
// shard workers and returns every output packet plus the number of inputs
// dropped (malformed, stale, non-customer, non-shim — itemized in
// Stats()). Outputs alias pool-owned buffers and are valid only until the
// next ProcessBatch call; steady-state batches allocate nothing.
//
// Output ordering is deterministic: grouped by shard, input order within
// a shard.
func (p *Pool) ProcessBatch(pkts [][]byte) (outs []Outgoing, dropped int) {
	if p.closed {
		return nil, len(pkts)
	}
	w := len(p.replicas)
	for i := range p.idx {
		p.idx[i] = p.idx[i][:0]
	}
	for j, pkt := range pkts {
		sh := shardOf(pkt, j, w)
		p.idx[sh] = append(p.idx[sh], int32(j))
	}
	p.pkts = pkts
	// Wake only the shards that actually drew packets: small batches on
	// wide pools should not pay worker-count wakeups.
	p.active = p.active[:0]
	for i := range p.idx {
		if len(p.idx[i]) > 0 {
			p.active = append(p.active, i)
		}
	}
	p.wg.Add(len(p.active))
	for _, i := range p.active {
		p.work[i] <- struct{}{}
	}
	p.wg.Wait()
	p.outs = p.outs[:0]
	for _, i := range p.active {
		p.outs = append(p.outs, p.scr[i].outs...)
		dropped += p.errs[i]
	}
	p.dropped += uint64(dropped)
	return p.outs, dropped
}

// Dropped returns the total packets dropped across all batches.
func (p *Pool) Dropped() uint64 { return p.dropped }

// Stats merges the per-replica counter blocks.
func (p *Pool) Stats() StatsSnapshot {
	var agg StatsSnapshot
	for _, n := range p.replicas {
		agg = agg.Merge(n.Stats().Snapshot())
	}
	return agg
}

// Close stops the workers. The pool must not be processing a batch.
func (p *Pool) Close() {
	if p.closed {
		return
	}
	p.closed = true
	for _, c := range p.work {
		close(c)
	}
}
