package core

// Registry bridge for the data plane. The Pool's shard workers run
// concurrently, so their counters follow the atomic-stripe discipline:
// each worker owns one cache-line-padded AtomicCounter per family and
// adds batch-granular deltas (one atomic add per batch, not per packet).
// The Neutralizer's own Stats block is already atomic; it is exported
// through CounterFuncs that snapshot it at read time.

import (
	"fmt"

	"netneutral/internal/obs"
)

// poolMetrics is the per-worker counter block a Pool publishes into a
// registry. It is installed with an atomic pointer so Instrument may be
// called while workers are live.
type poolMetrics struct {
	pkts  []*obs.AtomicCounter
	drops []*obs.AtomicCounter
	hits  []*obs.AtomicCounter
	miss  []*obs.AtomicCounter
	// lastHits/lastMiss remember the cumulative per-scratch epoch-cache
	// counts already published, so each batch adds only its delta. Owned
	// by the worker of the same index.
	lastHits []uint64
	lastMiss []uint64
}

// Instrument registers the pool's per-worker counters and its merged
// Neutralizer stats on reg:
//
//	core_worker_packets_total{worker="i"}      packets processed by shard i
//	core_worker_drops_total{worker="i"}        packets shard i dropped
//	core_crypto_epoch_hits_total{worker="i"}   epoch-cache hits of shard i
//	core_crypto_epoch_misses_total{worker="i"} epoch-cache misses of shard i
//
// plus the RegisterStats families over the merged replica snapshot.
// Safe to call while the pool is processing; counters start from the
// next batch. Call it once per registry.
func (p *Pool) Instrument(reg *obs.Registry) {
	w := len(p.replicas)
	m := &poolMetrics{
		pkts:     make([]*obs.AtomicCounter, w),
		drops:    make([]*obs.AtomicCounter, w),
		hits:     make([]*obs.AtomicCounter, w),
		miss:     make([]*obs.AtomicCounter, w),
		lastHits: make([]uint64, w),
		lastMiss: make([]uint64, w),
	}
	for i := 0; i < w; i++ {
		m.pkts[i] = reg.Counter(fmt.Sprintf("core_worker_packets_total{worker=\"%d\"}", i),
			"Packets processed by this pool shard worker.").AtomicStripe(0)
		m.drops[i] = reg.Counter(fmt.Sprintf("core_worker_drops_total{worker=\"%d\"}", i),
			"Packets this pool shard worker dropped (itemized in core_drops_total).").AtomicStripe(0)
		m.hits[i] = reg.Counter(fmt.Sprintf("core_crypto_epoch_hits_total{worker=\"%d\"}", i),
			"Session-key derivations served from this worker's lock-free epoch cache.").AtomicStripe(0)
		m.miss[i] = reg.Counter(fmt.Sprintf("core_crypto_epoch_misses_total{worker=\"%d\"}", i),
			"Session-key derivations that took the epoch-derivation slow path.").AtomicStripe(0)
	}
	p.met.Store(m)
	RegisterStats(reg, p.Stats)
}

// flushWorkerMetrics publishes shard i's batch counters. Called from the
// worker goroutine at the end of each batch, so the plain lastHits/
// lastMiss slots have a single writer.
func (m *poolMetrics) flushWorkerMetrics(i int, pkts, drops uint64, scr *Scratch) {
	m.pkts[i].Add(pkts)
	m.drops[i].Add(drops)
	h, ms := scr.CryptoEpochStats()
	m.hits[i].Add(h - m.lastHits[i])
	m.miss[i].Add(ms - m.lastMiss[i])
	m.lastHits[i], m.lastMiss[i] = h, ms
}

// RegisterStats exports a StatsSnapshot source (a single Neutralizer's
// Stats().Snapshot, a Pool's merged Stats, or an anycast aggregate) as
// counter families on reg. The source is invoked at snapshot time; it
// must be safe to call concurrently with packet processing (the atomic
// Stats block is).
func RegisterStats(reg *obs.Registry, snap func() StatsSnapshot) {
	type field struct {
		name, help string
		get        func(StatsSnapshot) uint64
	}
	fields := []field{
		{"core_key_setups_total{mode=\"local\"}", "Key-setup responses produced locally.",
			func(s StatsSnapshot) uint64 { return s.KeySetups }},
		{"core_key_setups_total{mode=\"offload\"}", "Key-setups delegated to offload helpers.",
			func(s StatsSnapshot) uint64 { return s.KeySetupsOffload }},
		{"core_key_setups_total{mode=\"alt\"}", "Alternative-mode (RSA) setups.",
			func(s StatsSnapshot) uint64 { return s.AltSetups }},
		{"core_forwarded_packets_total{path=\"data\"}", "Forward-path data packets neutralized and forwarded.",
			func(s StatsSnapshot) uint64 { return s.DataForwarded }},
		{"core_forwarded_packets_total{path=\"return\"}", "Return-path data packets forwarded.",
			func(s StatsSnapshot) uint64 { return s.ReturnForwarded }},
		{"core_grants_stamped_total", "Fresh (nonce', Ks') grants issued on the return path.",
			func(s StatsSnapshot) uint64 { return s.GrantsStamped }},
		{"core_key_fetches_total", "Customer key fetches served (paper section 3.3).",
			func(s StatsSnapshot) uint64 { return s.KeyFetches }},
		{"core_drops_total{reason=\"stale_epoch\"}", "Packets dropped for an unacceptable crypto epoch.",
			func(s StatsSnapshot) uint64 { return s.DropStaleEpoch }},
		{"core_drops_total{reason=\"bad_addr_block\"}", "Packets dropped for an undecryptable address block.",
			func(s StatsSnapshot) uint64 { return s.DropBadAddrBlock }},
		{"core_drops_total{reason=\"not_customer\"}", "Packets dropped for a non-customer destination.",
			func(s StatsSnapshot) uint64 { return s.DropNotCustomer }},
		{"core_drops_total{reason=\"malformed\"}", "Packets dropped as malformed.",
			func(s StatsSnapshot) uint64 { return s.DropMalformed }},
		{"core_dyn_addrs_allocated_total", "Dynamic return addresses allocated.",
			func(s StatsSnapshot) uint64 { return s.DynAddrsAllocated }},
	}
	for _, f := range fields {
		get := f.get
		reg.CounterFunc(f.name, f.help, func() uint64 { return get(snap()) })
	}
}
