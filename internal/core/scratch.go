package core

import (
	"fmt"
	"net/netip"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// shimHeadroom is the default space reserved in front of a serialize
// buffer: the IP header, the shim header, and a typical shim body. emit
// reserves the exact encoded size when a message (e.g. an RSA key-setup
// blob) needs more, so any one buffer grows at most once per high-water
// mark and keeps its capacity across reuse.
const shimHeadroom = wire.IPv4HeaderLen + shim.HeaderLen + 64

// Scratch holds the per-worker reusable state of the zero-allocation
// processing path: decoded-layer structs, the session-key derivation and
// AES working state, and a ring of output packet buffers. A Scratch is
// NOT safe for concurrent use; give each goroutine its own (the
// neutralizer itself is stateless and freely shared — that is the whole
// point of the design).
type Scratch struct {
	kw   keys.Work
	ek   aesutil.ExpandedKey
	salt [8]byte

	ip  wire.IPv4
	sh  shim.Header
	out shim.Header

	bufs []*wire.SerializeBuffer
	nbuf int
	outs []Outgoing
}

// NewScratch returns an empty scratch. Buffers are grown on demand and
// retained, so steady-state processing performs no allocation.
func NewScratch() *Scratch { return &Scratch{} }

// CryptoEpochStats reports the epoch-cache hit/miss counts of session-key
// derivations run through this scratch. Owner-only, like the scratch
// itself: read it from the goroutine that processes with the scratch, or
// at a quiescent point.
func (s *Scratch) CryptoEpochStats() (hits, misses uint64) {
	return s.kw.EpochCacheStats()
}

// Reset recycles every output buffer. Outgoing values returned by
// ProcessScratch calls since the previous Reset become invalid.
func (s *Scratch) Reset() {
	s.nbuf = 0
	s.outs = s.outs[:0]
}

// nextBuf returns a serialize buffer from the ring cleared to the given
// headroom, growing the ring on first use at each depth.
func (s *Scratch) nextBuf(headroom int) *wire.SerializeBuffer {
	if s.nbuf == len(s.bufs) {
		s.bufs = append(s.bufs, wire.NewSerializeBuffer(shimHeadroom, 128))
	}
	b := s.bufs[s.nbuf]
	s.nbuf++
	b.Clear(headroom)
	return b
}

// emit serializes IP(src→dst, ToS preserved) | shim | payload into the
// next ring buffer and appends it to the scratch's outputs. Preserving
// the ToS octet verbatim is the §3.4 DiffServ guarantee.
func (s *Scratch) emit(src, dst netip.Addr, tos uint8, sh *shim.Header, payload []byte) error {
	buf := s.nextBuf(max(shimHeadroom, wire.IPv4HeaderLen+sh.EncodedLen()))
	buf.PushPayload(payload)
	if err := sh.SerializeTo(buf); err != nil {
		s.nbuf-- // buffer unused
		return err
	}
	ip := wire.IPv4{TOS: tos, TTL: wire.MaxTTL, Protocol: wire.ProtoShim, Src: src, Dst: dst}
	if err := ip.SerializeTo(buf); err != nil {
		s.nbuf--
		return err
	}
	s.outs = append(s.outs, Outgoing{Pkt: buf.Bytes()})
	return nil
}

// ProcessScratch is Process with caller-owned working state: the
// data-plane paths (TypeData, TypeReturn) run with zero heap allocations
// per packet. Returned Outgoing values alias scratch-owned buffers and
// remain valid only until the scratch's next Reset; callers that need the
// packets longer must copy them (Process does exactly that).
//
// Outputs accumulate in the scratch between Resets, so a batch loop can
// Reset once, process many packets, and transmit all outputs together.
// The returned slice covers only this call's outputs.
func (n *Neutralizer) ProcessScratch(s *Scratch, pkt []byte) ([]Outgoing, error) {
	start := len(s.outs)
	if err := s.ip.DecodeFromBytes(pkt); err != nil {
		n.stats.DropMalformed.Add(1)
		return nil, fmt.Errorf("core: %w", err)
	}
	if s.ip.Protocol != wire.ProtoShim {
		return nil, ErrNotShim
	}
	if err := s.sh.DecodeFromBytes(s.ip.Payload()); err != nil {
		n.stats.DropMalformed.Add(1)
		return nil, fmt.Errorf("core: %w", err)
	}
	var err error
	switch s.sh.Type {
	case shim.TypeKeySetupRequest:
		err = n.processKeySetup(s, &s.ip, &s.sh)
	case shim.TypeData:
		err = n.processData(s, &s.ip, &s.sh)
	case shim.TypeReturn:
		err = n.processReturn(s, &s.ip, &s.sh)
	case shim.TypeKeyFetchRequest:
		err = n.processKeyFetch(s, &s.ip, &s.sh)
	case shim.TypeAltData:
		err = n.processAltData(s, &s.ip, &s.sh)
	default:
		err = ErrUnhandledType
	}
	if err != nil {
		return nil, err
	}
	return s.outs[start:], nil
}
