// Package core implements the paper's primary contribution: the
// neutralizer, an efficient and stateless service at the border of a
// non-discriminatory ISP that hides the ISP's customers' addresses from
// other ISPs.
//
// Statelessness is the load-bearing property. The neutralizer keeps no
// per-source or per-flow tables: every session key is recomputed from the
// packet itself as Ks = hash(KM, nonce, srcIP), so any replica sharing
// the master-key schedule can process any packet (the anycast property),
// a crashed replica loses nothing, and memory does not grow with load.
// The only optional state is the dynamic-address table of the §3.4 QoS
// remedy, which exists per explicitly-requested QoS flow, and monotonic
// counters.
//
// A Neutralizer is transport-agnostic: Process consumes one serialized
// IPv4 packet and returns the packets to emit. The same core runs inside
// the netem emulator, behind real UDP sockets (cmd/neutralizerd), and in
// the benchmark harness.
package core

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"netneutral/internal/crypto/keys"
	"netneutral/internal/crypto/lightrsa"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// Errors returned by Process.
var (
	ErrNotShim          = errors.New("core: packet is not a shim packet")
	ErrStaleEpoch       = errors.New("core: packet epoch outside acceptance window")
	ErrBadAddrBlock     = errors.New("core: hidden address block failed check")
	ErrNotCustomer      = errors.New("core: decrypted destination is not a customer")
	ErrNotFromCustomer  = errors.New("core: return packet source is not a customer")
	ErrBadSetup         = errors.New("core: malformed key-setup request")
	ErrNoAltIdentity    = errors.New("core: alternative mode not configured")
	ErrUnhandledType    = errors.New("core: shim type not handled by neutralizer")
	ErrDynPoolExhausted = errors.New("core: dynamic address pool exhausted")
)

// Config configures a Neutralizer.
type Config struct {
	// Schedule is the master-key schedule shared by all replicas of the
	// domain. Required.
	Schedule *keys.Schedule
	// Anycast is the neutralizer service address all customers publish.
	// Required.
	Anycast netip.Addr
	// IsCustomer reports whether an address belongs to this ISP's
	// customers (the set the neutralizer protects). Required.
	IsCustomer func(netip.Addr) bool
	// Clock supplies time (virtual in emulation). Defaults to time.Now.
	Clock func() time.Time
	// Rand supplies entropy for nonces and salts. Defaults to
	// crypto/rand.Reader.
	Rand io.Reader
	// Offload, when non-nil, delegates key-setup RSA encryptions to
	// willing customers (§3.2).
	Offload *OffloadPolicy
	// AltIdentity enables the §3.2 alternative design: sources encrypt
	// the destination under this (certified) key and the neutralizer pays
	// an RSA decryption per setup. Used by the A1 ablation.
	AltIdentity *lightrsa.PrivateKey
	// DynAddrPool, when valid, enables the §3.4 dynamic-address QoS
	// remedy; per-flow visible addresses are allocated from this prefix.
	DynAddrPool netip.Prefix
	// OnDynAlloc, if set, is invoked when a dynamic address is allocated
	// or released, so the hosting node can claim it for routing.
	OnDynAlloc func(addr netip.Addr, allocated bool)
}

// OffloadPolicy delegates key-setup encryption to customer helpers in
// round-robin order.
type OffloadPolicy struct {
	// Helpers are customer addresses willing to perform RSA encryptions
	// (the paper notes a destination like Google has the incentive).
	Helpers []netip.Addr
	next    uint64
}

func (o *OffloadPolicy) pick() (netip.Addr, bool) {
	if o == nil || len(o.Helpers) == 0 {
		return netip.Addr{}, false
	}
	i := atomic.AddUint64(&o.next, 1)
	return o.Helpers[int(i)%len(o.Helpers)], true
}

// Stats are monotonic counters, safe to read concurrently.
type Stats struct {
	KeySetups         atomic.Uint64 // key-setup responses produced locally
	KeySetupsOffload  atomic.Uint64 // key-setups delegated to helpers
	AltSetups         atomic.Uint64 // alternative-mode setups (RSA decrypt)
	DataForwarded     atomic.Uint64 // forward-path data packets
	ReturnForwarded   atomic.Uint64 // return-path data packets
	GrantsStamped     atomic.Uint64 // fresh (nonce', Ks') grants issued
	KeyFetches        atomic.Uint64 // §3.3 customer key fetches
	DropStaleEpoch    atomic.Uint64
	DropBadAddrBlock  atomic.Uint64
	DropNotCustomer   atomic.Uint64
	DropMalformed     atomic.Uint64
	DynAddrsAllocated atomic.Uint64
}

// StatsSnapshot is a point-in-time copy of a Stats counter block, in
// plain uint64 form so snapshots from many replicas can be merged.
type StatsSnapshot struct {
	KeySetups         uint64
	KeySetupsOffload  uint64
	AltSetups         uint64
	DataForwarded     uint64
	ReturnForwarded   uint64
	GrantsStamped     uint64
	KeyFetches        uint64
	DropStaleEpoch    uint64
	DropBadAddrBlock  uint64
	DropNotCustomer   uint64
	DropMalformed     uint64
	DynAddrsAllocated uint64
}

// Snapshot atomically loads every counter.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		KeySetups:         s.KeySetups.Load(),
		KeySetupsOffload:  s.KeySetupsOffload.Load(),
		AltSetups:         s.AltSetups.Load(),
		DataForwarded:     s.DataForwarded.Load(),
		ReturnForwarded:   s.ReturnForwarded.Load(),
		GrantsStamped:     s.GrantsStamped.Load(),
		KeyFetches:        s.KeyFetches.Load(),
		DropStaleEpoch:    s.DropStaleEpoch.Load(),
		DropBadAddrBlock:  s.DropBadAddrBlock.Load(),
		DropNotCustomer:   s.DropNotCustomer.Load(),
		DropMalformed:     s.DropMalformed.Load(),
		DynAddrsAllocated: s.DynAddrsAllocated.Load(),
	}
}

// Merge returns the counter-wise sum of two snapshots (for aggregating
// the replicas of a Pool, or of an anycast deployment).
func (s StatsSnapshot) Merge(o StatsSnapshot) StatsSnapshot {
	s.KeySetups += o.KeySetups
	s.KeySetupsOffload += o.KeySetupsOffload
	s.AltSetups += o.AltSetups
	s.DataForwarded += o.DataForwarded
	s.ReturnForwarded += o.ReturnForwarded
	s.GrantsStamped += o.GrantsStamped
	s.KeyFetches += o.KeyFetches
	s.DropStaleEpoch += o.DropStaleEpoch
	s.DropBadAddrBlock += o.DropBadAddrBlock
	s.DropNotCustomer += o.DropNotCustomer
	s.DropMalformed += o.DropMalformed
	s.DynAddrsAllocated += o.DynAddrsAllocated
	return s
}

// Dropped is the total of all drop counters.
func (s StatsSnapshot) Dropped() uint64 {
	return s.DropStaleEpoch + s.DropBadAddrBlock + s.DropNotCustomer + s.DropMalformed
}

// Neutralizer processes shim packets at an ISP border. Safe for
// concurrent use: the hot path reads only immutable configuration; the
// optional dynamic-address table has its own lock. When one Neutralizer
// is shared across goroutines, Config.Rand must also be safe for
// concurrent use (crypto/rand.Reader, the default, is).
type Neutralizer struct {
	cfg     Config
	stats   Stats
	scratch sync.Pool // *Scratch, for the compatibility Process path

	dynMu   sync.Mutex
	dynFwd  map[dynFlowKey]netip.Addr // (customer, peer) -> dynamic addr
	dynRev  map[netip.Addr]dynFlowKey
	dynNext uint64
}

type dynFlowKey struct {
	customer netip.Addr
	peer     netip.Addr
}

// New creates a Neutralizer. It returns an error if required
// configuration is missing.
func New(cfg Config) (*Neutralizer, error) {
	if cfg.Schedule == nil {
		return nil, errors.New("core: Config.Schedule is required")
	}
	if !cfg.Anycast.Is4() {
		return nil, errors.New("core: Config.Anycast must be an IPv4 address")
	}
	if cfg.IsCustomer == nil {
		return nil, errors.New("core: Config.IsCustomer is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	n := &Neutralizer{
		cfg:    cfg,
		dynFwd: make(map[dynFlowKey]netip.Addr),
		dynRev: make(map[netip.Addr]dynFlowKey),
	}
	n.scratch.New = func() any { return NewScratch() }
	return n, nil
}

// Stats returns the counter block.
func (n *Neutralizer) Stats() *Stats { return &n.stats }

// Anycast returns the service address.
func (n *Neutralizer) Anycast() netip.Addr { return n.cfg.Anycast }

// Outgoing is a packet the caller must transmit.
type Outgoing struct {
	Pkt []byte
}

// Process handles one serialized IPv4 shim packet addressed to the
// neutralizer and returns the packets to emit. Non-shim packets yield
// ErrNotShim (the caller forwards them normally — the neutralizer service
// is optional, §3.4).
//
// Returned packets are freshly allocated and caller-owned. High-rate
// callers should use ProcessScratch (one scratch per goroutine) or a
// Pool, which recycle buffers and run the data path without allocating.
func (n *Neutralizer) Process(pkt []byte) ([]Outgoing, error) {
	s := n.scratch.Get().(*Scratch)
	s.Reset()
	outs, err := n.ProcessScratch(s, pkt)
	if err != nil {
		n.scratch.Put(s)
		return nil, err
	}
	res := make([]Outgoing, len(outs))
	for i, o := range outs {
		res[i] = Outgoing{Pkt: append([]byte(nil), o.Pkt...)}
	}
	n.scratch.Put(s)
	return res, nil
}

// processKeySetup implements Figure 2(a): derive (nonce, Ks) for the
// source, RSA-encrypt them under the source's one-time public key, and
// reply — or delegate the encryption to a customer helper.
func (n *Neutralizer) processKeySetup(s *Scratch, ip *wire.IPv4, sh *shim.Header) error {
	pub, _, err := lightrsa.UnmarshalPublicKey(sh.PublicKey)
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return fmt.Errorf("%w: %v", ErrBadSetup, err)
	}
	now := n.cfg.Clock()
	nonce, err := keys.NewNonce(n.cfg.Rand)
	if err != nil {
		return err
	}
	epoch := n.cfg.Schedule.EpochAt(now)
	ks, err := n.cfg.Schedule.SessionKeyInto(&s.kw, epoch, nonce, ip.Src)
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return fmt.Errorf("%w: %v", ErrBadSetup, err)
	}

	if helper, ok := n.cfg.Offload.pick(); ok {
		// §3.2 offload: stamp the plaintext grant into the request and
		// forward it to a willing customer, which performs the RSA
		// encryption and answers the source itself. The stamped grant
		// travels only inside the friendly domain.
		s.out = shim.Header{
			Type:      shim.TypeKeySetupRequest,
			Flags:     sh.Flags | shim.FlagOffloaded,
			Epoch:     epoch,
			PublicKey: sh.PublicKey,
			Grant:     shim.Grant{Nonce: nonce, Key: ks},
		}
		if err := s.emit(ip.Src, helper, ip.TOS, &s.out, nil); err != nil {
			return err
		}
		n.stats.KeySetupsOffload.Add(1)
		return nil
	}

	ct, err := pub.Encrypt(n.cfg.Rand, shim.EncodeSetupPlaintext(nonce, ks))
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return fmt.Errorf("%w: %v", ErrBadSetup, err)
	}
	s.out = shim.Header{Type: shim.TypeKeySetupResponse, Epoch: epoch, Ciphertext: ct}
	if err := s.emit(n.cfg.Anycast, ip.Src, ip.TOS, &s.out, nil); err != nil {
		return err
	}
	n.stats.KeySetups.Add(1)
	return nil
}

// processData implements the forward path (Figure 2(b), packets 3→4):
// recompute Ks from the packet alone, decrypt the hidden destination,
// verify it is a customer, and forward with the shim rewritten — stamping
// a fresh key grant if requested. Zero allocations on the success path
// (absent a grant request): the session key is derived under the cached
// epoch cipher and the address block decrypted with the scratch's
// re-keyable AES schedule.
func (n *Neutralizer) processData(s *Scratch, ip *wire.IPv4, sh *shim.Header) error {
	now := n.cfg.Clock()
	if !n.cfg.Schedule.Acceptable(sh.Epoch, now) {
		n.stats.DropStaleEpoch.Add(1)
		return ErrStaleEpoch
	}
	ks, err := n.cfg.Schedule.SessionKeyInto(&s.kw, sh.Epoch, sh.Nonce, ip.Src)
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return err
	}
	s.ek.Expand(ks)
	dst, _, ok := s.ek.DecryptAddrX(sh.HiddenAddr)
	if !ok {
		n.stats.DropBadAddrBlock.Add(1)
		return ErrBadAddrBlock
	}
	if !n.cfg.IsCustomer(dst) {
		n.stats.DropNotCustomer.Add(1)
		return ErrNotCustomer
	}
	s.out = shim.Header{
		Type:       shim.TypeDelivered,
		InnerProto: sh.InnerProto,
		Epoch:      sh.Epoch,
		Nonce:      sh.Nonce,
		ClearAddr:  n.cfg.Anycast,
	}
	if sh.Flags&shim.FlagKeyRequest != 0 {
		// Stamp a fresh grant bound to the same outside source under the
		// *current* epoch; the destination returns it end-to-end
		// encrypted and the source retires the short-RSA-protected key.
		gNonce, err := keys.NewNonce(n.cfg.Rand)
		if err != nil {
			return err
		}
		gEpoch := n.cfg.Schedule.EpochAt(now)
		gKey, err := n.cfg.Schedule.SessionKeyInto(&s.kw, gEpoch, gNonce, ip.Src)
		if err != nil {
			return err
		}
		s.out.Flags |= shim.FlagGrant
		s.out.Epoch = gEpoch
		s.out.Grant = shim.Grant{Nonce: gNonce, Key: gKey}
		n.stats.GrantsStamped.Add(1)
	}
	if err := s.emit(ip.Src, dst, ip.TOS, &s.out, sh.Payload()); err != nil {
		return err
	}
	n.stats.DataForwarded.Add(1)
	return nil
}

// processReturn implements the return path (Figure 2(b), packets 5→6):
// encrypt the customer's address under Ks (recomputed from the initiator
// address carried in the shim) and substitute the anycast address — or a
// per-flow dynamic address, or nothing, per the QoS flags.
func (n *Neutralizer) processReturn(s *Scratch, ip *wire.IPv4, sh *shim.Header) error {
	if !n.cfg.IsCustomer(ip.Src) {
		n.stats.DropNotCustomer.Add(1)
		return ErrNotFromCustomer
	}
	now := n.cfg.Clock()
	if !n.cfg.Schedule.Acceptable(sh.Epoch, now) {
		n.stats.DropStaleEpoch.Add(1)
		return ErrStaleEpoch
	}
	initiator := sh.ClearAddr
	ks, err := n.cfg.Schedule.SessionKeyInto(&s.kw, sh.Epoch, sh.Nonce, initiator)
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return err
	}
	if _, err := io.ReadFull(n.cfg.Rand, s.salt[:]); err != nil {
		return fmt.Errorf("core: reading salt: %w", err)
	}
	s.ek.Expand(ks)
	hidden, ok := s.ek.EncryptAddrX(ip.Src, s.salt)
	if !ok {
		return fmt.Errorf("aesutil: address %v is not IPv4", ip.Src)
	}
	s.out = shim.Header{
		Type:       shim.TypeReturnDelivered,
		InnerProto: sh.InnerProto,
		Epoch:      sh.Epoch,
		Nonce:      sh.Nonce,
		HiddenAddr: hidden,
	}
	visibleSrc := n.cfg.Anycast
	switch {
	case sh.Flags&shim.FlagNoAnonymize != 0:
		// §3.4: a customer that purchased guaranteed service may opt out
		// of anonymization entirely.
		visibleSrc = ip.Src
	case sh.Flags&shim.FlagDynamicAddr != 0:
		a, err := n.dynAddrFor(ip.Src, initiator)
		if err != nil {
			return err
		}
		visibleSrc = a
	}
	if err := s.emit(visibleSrc, initiator, ip.TOS, &s.out, sh.Payload()); err != nil {
		return err
	}
	n.stats.ReturnForwarded.Add(1)
	return nil
}

// processKeyFetch implements §3.3: a customer initiating a connection to
// an outside destination requests (nonce, Ks) in plaintext — the exchange
// never leaves the friendly domain.
func (n *Neutralizer) processKeyFetch(s *Scratch, ip *wire.IPv4, sh *shim.Header) error {
	if !n.cfg.IsCustomer(ip.Src) {
		n.stats.DropNotCustomer.Add(1)
		return ErrNotFromCustomer
	}
	peer := sh.ClearAddr
	now := n.cfg.Clock()
	nonce, err := keys.NewNonce(n.cfg.Rand)
	if err != nil {
		return err
	}
	epoch := n.cfg.Schedule.EpochAt(now)
	ks, err := n.cfg.Schedule.SessionKeyInto(&s.kw, epoch, nonce, peer)
	if err != nil {
		n.stats.DropMalformed.Add(1)
		return err
	}
	s.out = shim.Header{
		Type:  shim.TypeKeyFetchResponse,
		Epoch: epoch,
		Nonce: nonce,
		Grant: shim.Grant{Nonce: nonce, Key: ks},
	}
	if err := s.emit(n.cfg.Anycast, ip.Src, ip.TOS, &s.out, nil); err != nil {
		return err
	}
	n.stats.KeyFetches.Add(1)
	return nil
}

// processAltData implements the §3.2 alternative the paper rejected: the
// source encrypts the destination under the neutralizer's certified
// public key, saving one RTT but costing the neutralizer a private-key
// decryption per setup that cannot be offloaded. Kept for the A1
// ablation benchmark.
func (n *Neutralizer) processAltData(s *Scratch, ip *wire.IPv4, sh *shim.Header) error {
	if n.cfg.AltIdentity == nil {
		return ErrNoAltIdentity
	}
	pt, err := n.cfg.AltIdentity.Decrypt(sh.Ciphertext)
	if err != nil || len(pt) < 4 {
		n.stats.DropBadAddrBlock.Add(1)
		return ErrBadAddrBlock
	}
	dst := netip.AddrFrom4([4]byte(pt[:4]))
	if !n.cfg.IsCustomer(dst) {
		n.stats.DropNotCustomer.Add(1)
		return ErrNotCustomer
	}
	s.out = shim.Header{
		Type:       shim.TypeDelivered,
		InnerProto: sh.InnerProto,
		Epoch:      sh.Epoch,
		Nonce:      sh.Nonce,
		ClearAddr:  n.cfg.Anycast,
	}
	if err := s.emit(ip.Src, dst, ip.TOS, &s.out, sh.Payload()); err != nil {
		return err
	}
	n.stats.AltSetups.Add(1)
	return nil
}

// dynAddrFor returns the stable dynamic address for a (customer, peer)
// flow, allocating from the pool on first use (§3.4 QoS remedy).
func (n *Neutralizer) dynAddrFor(customer, peer netip.Addr) (netip.Addr, error) {
	if !n.cfg.DynAddrPool.IsValid() {
		return netip.Addr{}, ErrDynPoolExhausted
	}
	key := dynFlowKey{customer: customer, peer: peer}
	n.dynMu.Lock()
	defer n.dynMu.Unlock()
	if a, ok := n.dynFwd[key]; ok {
		return a, nil
	}
	// Sequential allocation inside the pool, skipping the network address.
	base := n.cfg.DynAddrPool.Addr()
	hostBits := 32 - n.cfg.DynAddrPool.Bits()
	max := uint64(1)<<hostBits - 1
	for {
		n.dynNext++
		if n.dynNext >= max {
			return netip.Addr{}, ErrDynPoolExhausted
		}
		a := addAddrOffset(base, n.dynNext)
		if _, used := n.dynRev[a]; used {
			continue
		}
		n.dynFwd[key] = a
		n.dynRev[a] = key
		n.stats.DynAddrsAllocated.Add(1)
		if n.cfg.OnDynAlloc != nil {
			n.cfg.OnDynAlloc(a, true)
		}
		return a, nil
	}
}

// DynFlowOf resolves a dynamic address back to its (customer, peer) flow.
// The discriminatory ISP cannot do this — only the neutralizer can.
func (n *Neutralizer) DynFlowOf(a netip.Addr) (customer, peer netip.Addr, ok bool) {
	n.dynMu.Lock()
	defer n.dynMu.Unlock()
	k, ok := n.dynRev[a]
	return k.customer, k.peer, ok
}

// ReleaseDynAddr releases a dynamic address when a QoS session ends.
func (n *Neutralizer) ReleaseDynAddr(a netip.Addr) {
	n.dynMu.Lock()
	k, ok := n.dynRev[a]
	if ok {
		delete(n.dynRev, a)
		delete(n.dynFwd, k)
	}
	n.dynMu.Unlock()
	if ok && n.cfg.OnDynAlloc != nil {
		n.cfg.OnDynAlloc(a, false)
	}
}

// DynAddrCount reports live dynamic-address allocations (state that
// exists only for explicitly-requested QoS flows).
func (n *Neutralizer) DynAddrCount() int {
	n.dynMu.Lock()
	defer n.dynMu.Unlock()
	return len(n.dynFwd)
}

func addAddrOffset(base netip.Addr, off uint64) netip.Addr {
	b := base.As4()
	v := uint32(b[0])<<24 | uint32(b[1])<<16 | uint32(b[2])<<8 | uint32(b[3])
	v += uint32(off)
	return netip.AddrFrom4([4]byte{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)})
}

// buildShimPacket serializes IP(src→dst, ToS preserved) | shim | payload.
// Preserving the ToS octet verbatim is the §3.4 DiffServ guarantee: "a
// neutralizer will not modify the Differentiated Services Code Point".
func buildShimPacket(src, dst netip.Addr, tos uint8, sh *shim.Header, payload []byte) ([]byte, error) {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+shim.HeaderLen+64, len(payload))
	buf.PushPayload(payload)
	if err := sh.SerializeTo(buf); err != nil {
		return nil, err
	}
	ip := &wire.IPv4{TOS: tos, TTL: wire.MaxTTL, Protocol: wire.ProtoShim, Src: src, Dst: dst}
	if err := ip.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// VanillaForward is the baseline the paper compares against: plain IP
// forwarding work (validate header, decrement TTL, repair checksum) with
// no neutralization. Used by the E3 benchmark.
func VanillaForward(pkt []byte) error {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil {
		return err
	}
	alive, err := wire.DecrementTTL(pkt)
	if err != nil {
		return err
	}
	if !alive {
		return errors.New("core: ttl exhausted")
	}
	return nil
}
