package core

import (
	"fmt"
	"testing"

	"netneutral/internal/obs"
)

// TestPoolInstrument pins the registry bridge: per-worker packet and
// crypto-epoch counters sum to the pool's own accounting, and the
// StatsSnapshot families mirror the merged replica stats.
func TestPoolInstrument(t *testing.T) {
	sched := testSchedule()
	p, err := NewPool(PoolConfig{Workers: 4, Config: concConfig(sched)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	reg := obs.NewRegistry()
	p.Instrument(reg)

	pkts, good, bad := mkDataBatch(t, sched, 64, true)
	total := 0
	for batch := 0; batch < 3; batch++ {
		_, dropped := p.ProcessBatch(pkts)
		if dropped != bad {
			t.Fatalf("batch %d dropped %d, want %d", batch, dropped, bad)
		}
		total += len(pkts)
	}
	_ = good

	snap := reg.Snapshot()
	sum := func(base string) (v uint64) {
		for _, m := range snap.Metrics {
			if m.Base == base {
				v += uint64(m.Value)
			}
		}
		return v
	}
	if got := sum("core_worker_packets_total"); got != uint64(total) {
		t.Errorf("worker packets = %d, want %d", got, total)
	}
	if got := sum("core_worker_drops_total"); got != p.Dropped() {
		t.Errorf("worker drops = %d, want %d", got, p.Dropped())
	}
	hits, misses := sum("core_crypto_epoch_hits_total"), sum("core_crypto_epoch_misses_total")
	if hits == 0 {
		t.Error("no crypto-epoch cache hits recorded")
	}
	if hits+misses < uint64(good) {
		t.Errorf("epoch lookups %d below good packets %d", hits+misses, good)
	}
	// The test itself derived the epoch while building packets, so the
	// workers only ever hit the warm cache.
	if misses != 0 {
		t.Errorf("worker epoch misses = %d, want 0 (cache pre-warmed)", misses)
	}
	if sched.Derivations() == 0 {
		t.Error("schedule recorded no derivations (degenerate check)")
	}

	stats := p.Stats()
	statChecks := map[string]uint64{
		"core_forwarded_packets_total{path=\"data\"}": stats.DataForwarded,
		"core_drops_total{reason=\"bad_addr_block\"}": stats.DropBadAddrBlock,
		"core_drops_total{reason=\"malformed\"}":      stats.DropMalformed,
	}
	for name, want := range statChecks {
		m := snap.Get(name)
		if m == nil {
			t.Errorf("registry missing %s", name)
			continue
		}
		if uint64(m.Value) != want {
			t.Errorf("%s = %v, stats say %d", name, m.Value, want)
		}
		if want == 0 {
			t.Errorf("%s unexpectedly zero (degenerate check)", name)
		}
	}
}

// TestRegisterStatsNames pins that every StatsSnapshot field has a
// registry family (a new Stats field must be added to the bridge).
func TestRegisterStatsNames(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterStats(reg, func() StatsSnapshot { return StatsSnapshot{} })
	names := reg.Names()
	if len(names) != 12 {
		t.Fatalf("RegisterStats exported %d families, want 12 (one per StatsSnapshot field):\n%v",
			len(names), names)
	}
	for _, n := range names {
		if m := reg.Snapshot().Get(n); m == nil || m.Kind != obs.KindCounterFunc {
			t.Errorf("family %s: missing or not a counter func (%+v)", n, m)
		}
	}
}

// TestPoolInstrumentWhileRunning exercises Instrument racing live
// batches: counters must start cleanly mid-stream (run with -race).
func TestPoolInstrumentWhileRunning(t *testing.T) {
	sched := testSchedule()
	p, err := NewPool(PoolConfig{Workers: 2, Config: concConfig(sched)})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	pkts, _, _ := mkDataBatch(t, sched, 16, false)
	reg := obs.NewRegistry()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Instrument(reg)
		for i := 0; i < 5; i++ {
			_ = reg.Snapshot()
		}
	}()
	for i := 0; i < 20; i++ {
		p.ProcessBatch(pkts)
	}
	<-done
	snap := reg.Snapshot()
	var counted uint64
	for w := 0; w < p.Workers(); w++ {
		if m := snap.Get(fmt.Sprintf("core_worker_packets_total{worker=\"%d\"}", w)); m != nil {
			counted += uint64(m.Value)
		}
	}
	if counted == 0 {
		t.Error("no packets counted after mid-stream Instrument")
	}
}
