package shim_test

import (
	"bytes"
	"testing"

	"netneutral/internal/eval"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// shimSeedBodies strips the IP header from real BenchEnv packets so the
// corpus starts from every shim message shape the protocol produces,
// plus neutralizer outputs (Delivered, ReturnDelivered, with and without
// stamped grants).
func shimSeedBodies(f *testing.F) [][]byte {
	f.Helper()
	env, err := eval.NewBenchEnv(false, true)
	if err != nil {
		f.Fatal(err)
	}
	var bodies [][]byte
	add := func(pkt []byte) {
		var ip wire.IPv4
		if err := ip.DecodeFromBytes(pkt); err != nil {
			f.Fatal(err)
		}
		bodies = append(bodies, ip.Payload())
	}
	add(env.SetupPkt)
	add(env.DataPkt)
	add(env.ReturnPkt)
	add(env.AltPkt)
	// Neutralizer outputs exercise the response-side message types.
	for _, in := range [][]byte{env.SetupPkt, env.DataPkt, env.ReturnPkt} {
		outs, err := env.Neut.Process(in)
		if err != nil {
			f.Fatal(err)
		}
		for _, o := range outs {
			add(o.Pkt)
		}
	}
	return bodies
}

// FuzzShimHeaderParse feeds hostile bytes to the shim decoder. Accepted
// inputs must re-serialize and re-decode to the same message (the
// serializer/parser pair is the data plane's wire contract), and the
// cheap classifier peeks must never panic.
func FuzzShimHeaderParse(f *testing.F) {
	for _, body := range shimSeedBodies(f) {
		f.Add(body)
	}
	f.Add([]byte{})
	f.Add([]byte{byte(shim.TypeData)})
	f.Add(bytes.Repeat([]byte{0xff}, shim.HeaderLen))
	f.Add(append([]byte{byte(shim.TypeKeySetupRequest), shim.FlagOffloaded, 17, 0}, bytes.Repeat([]byte{0}, 40)...))

	f.Fuzz(func(t *testing.T, data []byte) {
		shim.PeekType(data)
		shim.PeekNonce(data)
		var h shim.Header
		if err := h.DecodeFromBytes(data); err != nil {
			return
		}
		if len(h.Contents())+len(h.Payload()) != len(data) {
			t.Fatalf("contents+payload != input: %d+%d != %d",
				len(h.Contents()), len(h.Payload()), len(data))
		}
		buf := wire.NewSerializeBuffer(shim.HeaderLen+len(data), len(h.Payload()))
		buf.PushPayload(h.Payload())
		if err := h.SerializeTo(buf); err != nil {
			t.Fatalf("decoded header failed to reserialize: %v", err)
		}
		var h2 shim.Header
		if err := h2.DecodeFromBytes(buf.Bytes()); err != nil {
			t.Fatalf("reserialized header undecodable: %v", err)
		}
		if h2.Type != h.Type || h2.Flags != h.Flags || h2.InnerProto != h.InnerProto ||
			h2.Epoch != h.Epoch || h2.Nonce != h.Nonce ||
			h2.HiddenAddr != h.HiddenAddr || h2.ClearAddr != h.ClearAddr ||
			h2.Grant != h.Grant ||
			!bytes.Equal(h2.PublicKey, h.PublicKey) ||
			!bytes.Equal(h2.Ciphertext, h.Ciphertext) {
			t.Fatal("round-tripped shim fields diverge")
		}
		if !bytes.Equal(h2.Payload(), h.Payload()) {
			t.Fatal("round-tripped shim payload diverges")
		}
		if pt, ok := shim.PeekType(data); !ok || pt != h.Type {
			t.Fatalf("PeekType disagrees with decoder: %v vs %v (ok=%v)", pt, h.Type, ok)
		}
	})
}
