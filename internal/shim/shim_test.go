package shim

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/wire"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func roundTrip(t *testing.T, in *Header, payload []byte) *Header {
	t.Helper()
	buf := wire.NewSerializeBuffer(128, len(payload))
	buf.PushPayload(payload)
	if err := in.SerializeTo(buf); err != nil {
		t.Fatalf("SerializeTo(%v): %v", in.Type, err)
	}
	var out Header
	if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatalf("DecodeFromBytes(%v): %v", in.Type, err)
	}
	if !bytes.Equal(out.Payload(), payload) {
		t.Errorf("%v: payload = %q, want %q", in.Type, out.Payload(), payload)
	}
	return &out
}

func TestKeySetupRequestRoundTrip(t *testing.T) {
	pk := bytes.Repeat([]byte{0xAA}, 66)
	in := &Header{Type: TypeKeySetupRequest, Epoch: 7, PublicKey: pk}
	out := roundTrip(t, in, nil)
	if !bytes.Equal(out.PublicKey, pk) {
		t.Error("public key mismatch")
	}
	if out.Epoch != 7 {
		t.Errorf("epoch = %d", out.Epoch)
	}
}

func TestKeySetupRequestOffloadedCarriesGrant(t *testing.T) {
	pk := bytes.Repeat([]byte{0xBB}, 66)
	g := Grant{Nonce: keys.Nonce{1, 2}, Key: aesutil.Key{3, 4}}
	in := &Header{Type: TypeKeySetupRequest, Flags: FlagOffloaded, PublicKey: pk, Grant: g}
	out := roundTrip(t, in, nil)
	if out.Grant != g {
		t.Errorf("grant = %+v, want %+v", out.Grant, g)
	}
	if !out.HasGrant() {
		t.Error("HasGrant() = false for offloaded setup")
	}
}

func TestKeySetupResponseRoundTrip(t *testing.T) {
	ct := bytes.Repeat([]byte{0xCD}, 64)
	in := &Header{Type: TypeKeySetupResponse, Epoch: 3, Ciphertext: ct}
	out := roundTrip(t, in, nil)
	if !bytes.Equal(out.Ciphertext, ct) {
		t.Error("ciphertext mismatch")
	}
}

func TestDataRoundTrip(t *testing.T) {
	var blk aesutil.AddrBlock
	for i := range blk {
		blk[i] = byte(i)
	}
	in := &Header{
		Type: TypeData, Flags: FlagKeyRequest, InnerProto: wire.ProtoUDP,
		Epoch: 12, Nonce: keys.Nonce{9, 9, 9}, HiddenAddr: blk,
	}
	out := roundTrip(t, in, []byte("inner"))
	if out.HiddenAddr != blk {
		t.Error("hidden address block mismatch")
	}
	if out.Flags&FlagKeyRequest == 0 {
		t.Error("key-request flag lost")
	}
	if out.NextLayerType() != wire.LayerTypeUDP {
		t.Errorf("NextLayerType = %v, want UDP", out.NextLayerType())
	}
}

func TestDeliveredWithAndWithoutGrant(t *testing.T) {
	neut := addr("10.200.0.1")
	plain := &Header{Type: TypeDelivered, ClearAddr: neut}
	out := roundTrip(t, plain, []byte("x"))
	if out.ClearAddr != neut {
		t.Errorf("clear addr = %v", out.ClearAddr)
	}
	if out.HasGrant() {
		t.Error("HasGrant without FlagGrant")
	}

	g := Grant{Nonce: keys.Nonce{5}, Key: aesutil.Key{6}}
	granted := &Header{Type: TypeDelivered, Flags: FlagGrant, ClearAddr: neut, Grant: g}
	out2 := roundTrip(t, granted, []byte("x"))
	if !out2.HasGrant() || out2.Grant != g {
		t.Errorf("grant = %+v", out2.Grant)
	}
}

func TestReturnRoundTrip(t *testing.T) {
	init := addr("198.51.100.7")
	in := &Header{Type: TypeReturn, InnerProto: wire.ProtoUDP, Nonce: keys.Nonce{1}, ClearAddr: init}
	out := roundTrip(t, in, []byte("resp"))
	if out.ClearAddr != init {
		t.Errorf("initiator = %v", out.ClearAddr)
	}
}

func TestReturnDeliveredRoundTrip(t *testing.T) {
	var blk aesutil.AddrBlock
	blk[0] = 0xEE
	in := &Header{Type: TypeReturnDelivered, Nonce: keys.Nonce{2}, HiddenAddr: blk}
	out := roundTrip(t, in, []byte("resp"))
	if out.HiddenAddr != blk {
		t.Error("hidden source block mismatch")
	}
}

func TestKeyFetchRoundTrip(t *testing.T) {
	peer := addr("203.0.113.5")
	req := &Header{Type: TypeKeyFetchRequest, ClearAddr: peer}
	outReq := roundTrip(t, req, nil)
	if outReq.ClearAddr != peer {
		t.Errorf("peer = %v", outReq.ClearAddr)
	}

	g := Grant{Nonce: keys.Nonce{7}, Key: aesutil.Key{8}}
	resp := &Header{Type: TypeKeyFetchResponse, Epoch: 1, Grant: g}
	outResp := roundTrip(t, resp, nil)
	if outResp.Grant != g || !outResp.HasGrant() {
		t.Errorf("grant = %+v", outResp.Grant)
	}
}

func TestAltDataRoundTrip(t *testing.T) {
	ct := bytes.Repeat([]byte{0x11}, 128)
	in := &Header{Type: TypeAltData, InnerProto: wire.ProtoUDP, Ciphertext: ct}
	out := roundTrip(t, in, []byte("pp"))
	if !bytes.Equal(out.Ciphertext, ct) {
		t.Error("alt ciphertext mismatch")
	}
}

func TestDecodeErrors(t *testing.T) {
	var h Header
	if err := h.DecodeFromBytes(make([]byte, 8)); err != ErrTooShort {
		t.Errorf("short header: %v", err)
	}
	bad := make([]byte, HeaderLen)
	bad[0] = 200
	if err := h.DecodeFromBytes(bad); err != ErrBadType {
		t.Errorf("bad type: %v", err)
	}
	// Data type with truncated body.
	data := make([]byte, HeaderLen+4)
	data[0] = byte(TypeData)
	if err := h.DecodeFromBytes(data); err != ErrTooShort {
		t.Errorf("truncated data body: %v", err)
	}
	// KeySetupRequest with lying length prefix.
	ksr := make([]byte, HeaderLen+4)
	ksr[0] = byte(TypeKeySetupRequest)
	ksr[HeaderLen] = 0xFF
	ksr[HeaderLen+1] = 0xFF
	if err := h.DecodeFromBytes(ksr); err != ErrTooShort {
		t.Errorf("lying pubkey length: %v", err)
	}
}

func TestSerializeRejectsNonIPv4ClearAddr(t *testing.T) {
	in := &Header{Type: TypeReturn, ClearAddr: netip.MustParseAddr("2001:db8::1")}
	buf := wire.NewSerializeBuffer(64, 0)
	if err := in.SerializeTo(buf); err != ErrNotIPv4 {
		t.Errorf("err = %v, want ErrNotIPv4", err)
	}
}

func TestSerializeRejectsUnknownType(t *testing.T) {
	in := &Header{Type: Type(99)}
	buf := wire.NewSerializeBuffer(64, 0)
	if err := in.SerializeTo(buf); err != ErrBadType {
		t.Errorf("err = %v, want ErrBadType", err)
	}
}

func TestPeekTypeAndNonce(t *testing.T) {
	in := &Header{Type: TypeData, Nonce: keys.Nonce{0xDE, 0xAD}, HiddenAddr: aesutil.AddrBlock{}}
	buf := wire.NewSerializeBuffer(64, 0)
	if err := in.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	tt, ok := PeekType(buf.Bytes())
	if !ok || tt != TypeData {
		t.Errorf("PeekType = %v, %v", tt, ok)
	}
	n, ok := PeekNonce(buf.Bytes())
	if !ok || n != (keys.Nonce{0xDE, 0xAD}) {
		t.Errorf("PeekNonce = %v, %v", n, ok)
	}
	if _, ok := PeekType(nil); ok {
		t.Error("PeekType(nil) should fail")
	}
	if _, ok := PeekNonce(make([]byte, 4)); ok {
		t.Error("PeekNonce(short) should fail")
	}
}

func TestSetupPlaintextRoundTrip(t *testing.T) {
	n := keys.Nonce{1, 2, 3, 4, 5, 6, 7, 8}
	k := aesutil.Key{9, 10, 11}
	b := EncodeSetupPlaintext(n, k)
	if len(b) != SetupPlaintextLen {
		t.Errorf("len = %d", len(b))
	}
	gn, gk, err := DecodeSetupPlaintext(b)
	if err != nil || gn != n || gk != k {
		t.Errorf("roundtrip = %v %v %v", gn, gk, err)
	}
	if _, _, err := DecodeSetupPlaintext(b[:10]); err == nil {
		t.Error("short plaintext should fail")
	}
}

func TestGrantMarshalProperty(t *testing.T) {
	f := func(n [8]byte, k [16]byte) bool {
		g := Grant{Nonce: keys.Nonce(n), Key: aesutil.Key(k)}
		got, err := UnmarshalGrant(g.Marshal())
		return err == nil && got == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(nonce [8]byte, epoch uint32, blk [16]byte, payload []byte) bool {
		in := &Header{
			Type: TypeData, InnerProto: wire.ProtoUDP,
			Epoch: keys.Epoch(epoch), Nonce: keys.Nonce(nonce),
			HiddenAddr: aesutil.AddrBlock(blk),
		}
		buf := wire.NewSerializeBuffer(DataOverhead, len(payload))
		buf.PushPayload(payload)
		if err := in.SerializeTo(buf); err != nil {
			return false
		}
		var out Header
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.Epoch == in.Epoch && out.Nonce == in.Nonce &&
			out.HiddenAddr == in.HiddenAddr && bytes.Equal(out.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestShimInsideIPv4ParsePacket(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.9.9.9")
	var blk aesutil.AddrBlock
	payload := []byte("app data over udp")
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+DataOverhead+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		&Header{Type: TypeData, InnerProto: wire.ProtoUDP, Nonce: keys.Nonce{4}, HiddenAddr: blk},
		&wire.UDP{SrcPort: 1000, DstPort: 2000},
	)
	if err != nil {
		t.Fatal(err)
	}
	pkt := wire.ParsePacket(buf.Bytes(), wire.LayerTypeIPv4)
	if pkt.ErrorLayer() != nil {
		t.Fatalf("parse: %v", pkt.ErrorLayer())
	}
	sh := pkt.Layer(wire.LayerTypeShim)
	if sh == nil {
		t.Fatal("no shim layer found")
	}
	if sh.(*Header).Type != TypeData {
		t.Errorf("shim type = %v", sh.(*Header).Type)
	}
	if tl := pkt.TransportLayer(); tl == nil || tl.DstPort != 2000 {
		t.Error("inner UDP not decoded")
	}
	if !bytes.Equal(pkt.ApplicationPayload(), payload) {
		t.Errorf("payload = %q", pkt.ApplicationPayload())
	}
}

func TestDataPacketSizeMatchesDocumentedOverhead(t *testing.T) {
	// The benchmark packet: IP + shim(Data) + UDP + 64B payload.
	src, dst := addr("10.0.0.1"), addr("10.9.9.9")
	payload := make([]byte, 64)
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+DataOverhead+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoShim, Src: src, Dst: dst},
		&Header{Type: TypeData, InnerProto: wire.ProtoUDP},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	)
	if err != nil {
		t.Fatal(err)
	}
	want := wire.IPv4HeaderLen + DataOverhead + wire.UDPHeaderLen + 64 // 124
	if got := buf.Len(); got != want {
		t.Errorf("neutralized 64B-payload packet = %d bytes, want %d", got, want)
	}
}
