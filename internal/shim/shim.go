// Package shim implements the neutralizer shim layer: the header the
// paper places "between IP and an upper layer", carried in IP packets
// whose protocol field is the fixed, known value wire.ProtoShim.
//
// The shim realizes the packet diagrams of the paper's Figure 2. Each
// message type corresponds to one arrow:
//
//	KeySetupRequest   (Fig 2a, pkt 1) source → neutralizer: one-time RSA public key S
//	KeySetupResponse  (Fig 2a, pkt 2) neutralizer → source: E_S(nonce, Ks)
//	Data              (Fig 2b, pkt 3) source → neutralizer: nonce clear, dst encrypted under Ks
//	Delivered         (Fig 2b, pkt 4) neutralizer → customer: dst revealed, optional (nonce', Ks') grant stamped
//	Return            (Fig 2b, pkt 5) customer → neutralizer: initiator addr + nonce clear
//	ReturnDelivered   (Fig 2b, pkt 6) neutralizer → initiator: src encrypted under Ks, anycast as src
//	KeyFetchRequest   (§3.3) customer → neutralizer: plaintext key request for a peer
//	KeyFetchResponse  (§3.3) neutralizer → customer: plaintext (nonce, Ks)
//	AltData           (§3.2 alternative) source → neutralizer: dst under the neutralizer's certified public key
//
// Every header carries the master-key epoch so the stateless neutralizer
// knows which KM to derive session keys from, and an InnerProto octet
// describing what the shim payload contains (usually UDP).
package shim

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/wire"
)

// Type enumerates shim message types.
type Type uint8

// Shim message types.
const (
	TypeInvalid Type = iota
	TypeKeySetupRequest
	TypeKeySetupResponse
	TypeData
	TypeDelivered
	TypeReturn
	TypeReturnDelivered
	TypeKeyFetchRequest
	TypeKeyFetchResponse
	TypeAltData
)

var typeNames = [...]string{
	"Invalid", "KeySetupRequest", "KeySetupResponse", "Data", "Delivered",
	"Return", "ReturnDelivered", "KeyFetchRequest", "KeyFetchResponse", "AltData",
}

func (t Type) String() string {
	if int(t) < len(typeNames) {
		return typeNames[t]
	}
	return fmt.Sprintf("Type(%d)", uint8(t))
}

// Header flag bits.
const (
	// FlagKeyRequest on a Data packet asks the neutralizer to stamp a
	// fresh (nonce', Ks') grant into the Delivered packet.
	FlagKeyRequest uint8 = 1 << iota
	// FlagGrant on a Delivered packet indicates a stamped grant is present.
	FlagGrant
	// FlagNoAnonymize on a Return packet asks the neutralizer to forward
	// without source anonymization (§3.4: customers who purchased
	// guaranteed service may opt out).
	FlagNoAnonymize
	// FlagDynamicAddr on a Data/Return packet asks for a per-flow dynamic
	// address instead of full anonymization (§3.4 QoS remedy: the flow is
	// identifiable, the customer is not).
	FlagDynamicAddr
	// FlagOffloaded marks a KeySetupRequest the neutralizer has delegated
	// to a customer helper (§3.2 offload); the stamped plaintext grant
	// rides in the body for the helper to encrypt.
	FlagOffloaded
)

// HeaderLen is the fixed shim header size:
// Type(1) Flags(1) InnerProto(1) Reserved(1) Epoch(4) Nonce(8).
const HeaderLen = 16

// GrantLen is the size of a stamped key grant: nonce(8) + key(16).
const GrantLen = 8 + aesutil.KeySize

// DataOverhead is the total shim bytes added to a forward data packet
// (fixed header + encrypted address block). The paper reports 20 bytes of
// added material (112-byte total for a 64-byte-payload UDP packet); our
// encoding costs 32 — same order; the E3 experiment rows record the
// measured overhead (README.md "Reproducing the paper's numbers").
const DataOverhead = HeaderLen + aesutil.BlockSize

// Errors returned by shim decoding.
var (
	ErrTooShort   = errors.New("shim: data too short")
	ErrBadType    = errors.New("shim: unknown message type")
	ErrBadBody    = errors.New("shim: body inconsistent with type/flags")
	ErrNotIPv4    = errors.New("shim: address is not IPv4")
	ErrNoGrant    = errors.New("shim: header carries no grant")
	ErrBadVersion = errors.New("shim: unsupported version")
)

// Grant is a stamped (nonce, key) pair: the refresh material a
// neutralizer inserts into a key-requesting packet and the destination
// returns under end-to-end encryption.
type Grant struct {
	Nonce keys.Nonce
	Key   aesutil.Key
}

// Marshal encodes the grant.
func (g Grant) Marshal() []byte {
	out := make([]byte, GrantLen)
	g.encodeTo(out)
	return out
}

// encodeTo writes the grant into dst (len >= GrantLen) without
// allocating; the serializer's hot path uses this instead of Marshal.
func (g Grant) encodeTo(dst []byte) {
	copy(dst[:8], g.Nonce[:])
	copy(dst[8:GrantLen], g.Key[:])
}

// UnmarshalGrant decodes a grant.
func UnmarshalGrant(b []byte) (Grant, error) {
	if len(b) < GrantLen {
		return Grant{}, ErrTooShort
	}
	var g Grant
	copy(g.Nonce[:], b[:8])
	copy(g.Key[:], b[8:GrantLen])
	return g, nil
}

// Header is a decoded shim message. It implements wire.Layer,
// wire.DecodingLayer and wire.SerializableLayer.
//
// Only the fields relevant to a given Type are meaningful; see the type
// constants for which.
type Header struct {
	Type       Type
	Flags      uint8
	InnerProto uint8 // IP protocol number of the payload (0 = none/opaque)
	Epoch      keys.Epoch
	Nonce      keys.Nonce

	// PublicKey carries the marshaled one-time RSA key
	// (TypeKeySetupRequest) or is nil.
	PublicKey []byte
	// Ciphertext carries an RSA ciphertext (TypeKeySetupResponse: E_S(nonce‖Ks);
	// TypeAltData: E_neut(dst‖salt)).
	Ciphertext []byte
	// HiddenAddr is the AES-encrypted address block (TypeData: the real
	// destination; TypeReturnDelivered: the real source).
	HiddenAddr aesutil.AddrBlock
	// ClearAddr is an address carried in clear where the protocol allows
	// it (TypeDelivered: the neutralizer's unicast address for returns;
	// TypeReturn: the outside initiator; TypeKeyFetchRequest: the peer).
	ClearAddr netip.Addr
	// Grant is the stamped key material (TypeDelivered with FlagGrant;
	// TypeKeyFetchResponse; TypeKeySetupRequest with FlagOffloaded).
	Grant Grant

	contents []byte
	payload  []byte
}

// LayerType implements wire.Layer.
func (*Header) LayerType() wire.LayerType { return wire.LayerTypeShim }

// Contents implements wire.Layer.
func (h *Header) Contents() []byte { return h.contents }

// Payload implements wire.Layer.
func (h *Header) Payload() []byte { return h.payload }

// NextLayerType implements wire.DecodingLayer.
func (h *Header) NextLayerType() wire.LayerType {
	switch h.InnerProto {
	case wire.ProtoUDP:
		return wire.LayerTypeUDP
	case 0:
		return 0
	default:
		return wire.LayerTypePayload
	}
}

// HasGrant reports whether the header carries grant material.
func (h *Header) HasGrant() bool {
	switch h.Type {
	case TypeDelivered, TypeKeySetupRequest:
		return h.Flags&FlagGrant != 0 || h.Flags&FlagOffloaded != 0
	case TypeKeyFetchResponse:
		return true
	default:
		return false
	}
}

// bodyLen returns the encoded body size for the header's type and flags.
func (h *Header) bodyLen() (int, error) {
	switch h.Type {
	case TypeKeySetupRequest:
		n := 2 + len(h.PublicKey)
		if h.Flags&FlagOffloaded != 0 {
			n += GrantLen
		}
		return n, nil
	case TypeKeySetupResponse, TypeAltData:
		return 2 + len(h.Ciphertext), nil
	case TypeData, TypeReturnDelivered:
		return aesutil.BlockSize, nil
	case TypeDelivered:
		n := 4
		if h.Flags&FlagGrant != 0 {
			n += GrantLen
		}
		return n, nil
	case TypeReturn, TypeKeyFetchRequest:
		return 4, nil
	case TypeKeyFetchResponse:
		return GrantLen, nil
	default:
		return 0, ErrBadType
	}
}

// EncodedLen returns the total serialized size of the header (fixed
// header plus type/flag-dependent body), or 0 for an unknown type. Use
// it to reserve exact buffer headroom before SerializeTo.
func (h *Header) EncodedLen() int {
	bl, err := h.bodyLen()
	if err != nil {
		return 0
	}
	return HeaderLen + bl
}

// SerializeTo implements wire.SerializableLayer. The buffer's current
// contents become the shim payload.
func (h *Header) SerializeTo(b *wire.SerializeBuffer) error {
	bl, err := h.bodyLen()
	if err != nil {
		return err
	}
	buf := b.PrependBytes(HeaderLen + bl)
	buf[0] = byte(h.Type)
	buf[1] = h.Flags
	buf[2] = h.InnerProto
	buf[3] = 0
	binary.BigEndian.PutUint32(buf[4:8], uint32(h.Epoch))
	copy(buf[8:16], h.Nonce[:])
	body := buf[HeaderLen:]
	switch h.Type {
	case TypeKeySetupRequest:
		binary.BigEndian.PutUint16(body[0:2], uint16(len(h.PublicKey)))
		copy(body[2:], h.PublicKey)
		if h.Flags&FlagOffloaded != 0 {
			h.Grant.encodeTo(body[2+len(h.PublicKey):])
		}
	case TypeKeySetupResponse, TypeAltData:
		binary.BigEndian.PutUint16(body[0:2], uint16(len(h.Ciphertext)))
		copy(body[2:], h.Ciphertext)
	case TypeData, TypeReturnDelivered:
		copy(body, h.HiddenAddr[:])
	case TypeDelivered:
		if err := putAddr4(body[0:4], h.ClearAddr); err != nil {
			return err
		}
		if h.Flags&FlagGrant != 0 {
			h.Grant.encodeTo(body[4:])
		}
	case TypeReturn, TypeKeyFetchRequest:
		if err := putAddr4(body[0:4], h.ClearAddr); err != nil {
			return err
		}
	case TypeKeyFetchResponse:
		h.Grant.encodeTo(body)
	}
	return nil
}

// DecodeFromBytes implements wire.DecodingLayer.
func (h *Header) DecodeFromBytes(data []byte) error {
	if len(data) < HeaderLen {
		return ErrTooShort
	}
	h.Type = Type(data[0])
	h.Flags = data[1]
	h.InnerProto = data[2]
	h.Epoch = keys.Epoch(binary.BigEndian.Uint32(data[4:8]))
	copy(h.Nonce[:], data[8:16])
	h.PublicKey = nil
	h.Ciphertext = nil
	h.ClearAddr = netip.Addr{}
	h.Grant = Grant{}

	body := data[HeaderLen:]
	used := 0
	switch h.Type {
	case TypeKeySetupRequest:
		if len(body) < 2 {
			return ErrTooShort
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < 2+n {
			return ErrTooShort
		}
		h.PublicKey = body[2 : 2+n]
		used = 2 + n
		if h.Flags&FlagOffloaded != 0 {
			g, err := UnmarshalGrant(body[used:])
			if err != nil {
				return err
			}
			h.Grant = g
			used += GrantLen
		}
	case TypeKeySetupResponse, TypeAltData:
		if len(body) < 2 {
			return ErrTooShort
		}
		n := int(binary.BigEndian.Uint16(body[0:2]))
		if len(body) < 2+n {
			return ErrTooShort
		}
		h.Ciphertext = body[2 : 2+n]
		used = 2 + n
	case TypeData, TypeReturnDelivered:
		if len(body) < aesutil.BlockSize {
			return ErrTooShort
		}
		copy(h.HiddenAddr[:], body[:aesutil.BlockSize])
		used = aesutil.BlockSize
	case TypeDelivered:
		if len(body) < 4 {
			return ErrTooShort
		}
		h.ClearAddr = netip.AddrFrom4([4]byte(body[0:4]))
		used = 4
		if h.Flags&FlagGrant != 0 {
			g, err := UnmarshalGrant(body[used:])
			if err != nil {
				return err
			}
			h.Grant = g
			used += GrantLen
		}
	case TypeReturn, TypeKeyFetchRequest:
		if len(body) < 4 {
			return ErrTooShort
		}
		h.ClearAddr = netip.AddrFrom4([4]byte(body[0:4]))
		used = 4
	case TypeKeyFetchResponse:
		g, err := UnmarshalGrant(body)
		if err != nil {
			return err
		}
		h.Grant = g
		used = GrantLen
	default:
		return ErrBadType
	}
	h.contents = data[:HeaderLen+used]
	h.payload = body[used:]
	return nil
}

func putAddr4(dst []byte, a netip.Addr) error {
	if !a.Is4() {
		return ErrNotIPv4
	}
	a4 := a.As4()
	copy(dst, a4[:])
	return nil
}

// PeekType returns the shim message type of a serialized shim payload
// without full decoding — the classifier primitive a discriminatory ISP
// would use to detect key-setup packets (§3.6).
func PeekType(shimBytes []byte) (Type, bool) {
	if len(shimBytes) < 1 {
		return TypeInvalid, false
	}
	t := Type(shimBytes[0])
	if t == TypeInvalid || int(t) >= len(typeNames) {
		return TypeInvalid, false
	}
	return t, true
}

// PeekNonce extracts the clear-text nonce from a serialized shim payload.
func PeekNonce(shimBytes []byte) (keys.Nonce, bool) {
	if len(shimBytes) < HeaderLen {
		return keys.Nonce{}, false
	}
	var n keys.Nonce
	copy(n[:], shimBytes[8:16])
	return n, true
}

// SetupPlaintextLen is the length of the plaintext protected by the
// key-setup RSA encryption: nonce(8) ‖ Ks(16).
const SetupPlaintextLen = 8 + aesutil.KeySize

// EncodeSetupPlaintext packs (nonce, Ks) for RSA encryption.
func EncodeSetupPlaintext(nonce keys.Nonce, ks aesutil.Key) []byte {
	out := make([]byte, SetupPlaintextLen)
	copy(out[:8], nonce[:])
	copy(out[8:], ks[:])
	return out
}

// DecodeSetupPlaintext reverses EncodeSetupPlaintext.
func DecodeSetupPlaintext(b []byte) (keys.Nonce, aesutil.Key, error) {
	if len(b) != SetupPlaintextLen {
		return keys.Nonce{}, aesutil.Key{}, ErrBadBody
	}
	var n keys.Nonce
	var k aesutil.Key
	copy(n[:], b[:8])
	copy(k[:], b[8:])
	return n, k, nil
}

func init() {
	wire.RegisterShimDecoder(func() wire.DecodingLayer { return &Header{} })
}
