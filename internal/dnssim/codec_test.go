package dnssim

import (
	"bytes"
	"errors"
	"net/netip"
	"strings"
	"testing"
)

// TestRecordMarshalBounds covers the three encode-bound bugs: an
// oversized name used to truncate its u16 length prefix, more than 255
// neutralizers wrapped the count byte, and a zero or IPv6 address
// panicked in As4. All must now fail loudly at encode time.
func TestRecordMarshalBounds(t *testing.T) {
	v4 := netip.MustParseAddr("10.10.0.5")
	manyNeuts := make([]netip.Addr, 256)
	for i := range manyNeuts {
		manyNeuts[i] = v4
	}
	cases := []struct {
		name string
		rec  Record
	}{
		{"name over 65535 bytes", Record{Name: strings.Repeat("a", 0x10000), Addr: v4}},
		{"256 neutralizers", Record{Name: "x", Addr: v4, Neutralizers: manyNeuts}},
		{"zero address", Record{Name: "x"}},
		{"ipv6 address", Record{Name: "x", Addr: netip.MustParseAddr("2001:db8::1")}},
		{"ipv6 neutralizer", Record{Name: "x", Addr: v4,
			Neutralizers: []netip.Addr{netip.MustParseAddr("2001:db8::2")}}},
		{"zero neutralizer", Record{Name: "x", Addr: v4, Neutralizers: []netip.Addr{{}}}},
	}
	for _, c := range cases {
		if _, err := c.rec.Marshal(); !errors.Is(err, ErrBadRecord) {
			t.Errorf("%s: err = %v, want ErrBadRecord", c.name, err)
		}
	}

	// Boundary values must still encode and round-trip.
	maxName := Record{Name: strings.Repeat("n", 0xFFFF), Addr: v4, Neutralizers: manyNeuts[:255]}
	b, err := maxName.Marshal()
	if err != nil {
		t.Fatalf("boundary record: %v", err)
	}
	got, err := UnmarshalRecord(b)
	if err != nil || got.Name != maxName.Name || len(got.Neutralizers) != 255 {
		t.Fatalf("boundary round-trip: err=%v name=%d neuts=%d", err, len(got.Name), len(got.Neutralizers))
	}
	// A 4-in-6 mapped address has a 4-byte wire form and is accepted.
	if _, err := (Record{Name: "x", Addr: netip.AddrFrom16(v4.As16())}).Marshal(); err != nil {
		t.Errorf("4-in-6 mapped address: %v", err)
	}
}

// TestUnmarshalRecordRejectsTrailingBytes: the codec is strict, like
// audit.DecodeReport — any unconsumed bytes after the public key are a
// malformed message.
func TestUnmarshalRecordRejectsTrailingBytes(t *testing.T) {
	rec := Record{
		Name:         "www.google.com",
		Addr:         netip.MustParseAddr("10.10.0.5"),
		Neutralizers: []netip.Addr{netip.MustParseAddr("10.200.0.1")},
	}
	b, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalRecord(b); err != nil {
		t.Fatalf("sanity: clean encoding must parse: %v", err)
	}
	for _, extra := range [][]byte{{0}, {0xde, 0xad}, bytes.Repeat([]byte{7}, 64)} {
		if _, err := UnmarshalRecord(append(bytes.Clone(b), extra...)); !errors.Is(err, ErrBadMessage) {
			t.Errorf("%d trailing bytes: err = %v, want ErrBadMessage", len(extra), err)
		}
	}
}
