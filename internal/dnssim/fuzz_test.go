package dnssim

import (
	"bytes"
	"net/netip"
	"testing"

	"netneutral/internal/e2e"
)

// FuzzDNSRecord holds the bootstrap-record wire contract under hostile
// input: decoding arbitrary bytes never panics and never over-reads,
// anything the decoder accepts is canonical (re-encodes to the
// identical bytes, so the strict trailing-byte reject and the encode
// bounds agree), and every zone-style record round-trips.
func FuzzDNSRecord(f *testing.F) {
	id, err := e2e.NewIdentity(nil, 0)
	if err != nil {
		f.Fatal(err)
	}
	// Seeds: real zone records as a resolver would publish them.
	zone := []Record{
		{Name: "www.google.com", Addr: netip.MustParseAddr("10.10.0.5"),
			Neutralizers: []netip.Addr{netip.MustParseAddr("10.200.0.1"), netip.MustParseAddr("10.201.0.1")},
			PublicKey:    id.Public()},
		{Name: "paying.example", Addr: netip.MustParseAddr("10.10.0.9")},
		{Name: "", Addr: netip.MustParseAddr("10.64.0.1"),
			Neutralizers: []netip.Addr{netip.MustParseAddr("10.200.0.1")}},
	}
	for _, rec := range zone {
		b, err := rec.Marshal()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
		f.Add(append(b, 0)) // the trailing-garbage shape the decoder must reject
	}
	f.Add([]byte{})
	f.Add([]byte{0, 0})
	f.Add(bytes.Repeat([]byte{0xFF}, 9))

	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := UnmarshalRecord(data)
		if err != nil {
			return
		}
		// Property: accepted encodings are canonical. Anything
		// UnmarshalRecord takes must re-encode — the decoder only emits
		// 4-byte addresses and prefix-bounded fields — and reproduce the
		// input byte for byte (the strict codec leaves no slack).
		again, err := rec.Marshal()
		if err != nil {
			t.Fatalf("decoded record failed to re-encode: %v", err)
		}
		if !bytes.Equal(data, again) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(again))
		}
	})
}
