package dnssim_test

import (
	"errors"
	mathrand "math/rand"
	"net/netip"
	"os"
	"testing"
	"time"

	"netneutral/internal/dnssim"
	"netneutral/internal/e2e"
	"netneutral/internal/netem"
	"netneutral/internal/simnet"
)

// TestConnClientOverSimnet exercises the blocking resolver client end to
// end: an ordinary goroutine issues Lookup/LookupEncrypted over a
// simnet.UDPConn and the unmodified Resolver answers over the emulated
// wire. This is the real-protocol path — same bytes on the wire as the
// callback Client, but driven by blocking reads in virtual time.
func TestConnClientOverSimnet(t *testing.T) {
	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	clientA := netip.MustParseAddr("172.16.1.10")
	resolverA := netip.MustParseAddr("10.50.0.53")
	googleA := netip.MustParseAddr("10.10.0.5")

	sim := netem.NewSimulator(start, 1)
	cl := sim.MustAddNode("client", "att", clientA)
	mid := sim.MustAddNode("mid", "att", netip.MustParseAddr("172.16.0.254"))
	res := sim.MustAddNode("resolver", "cogent", resolverA)
	sim.Connect(cl, mid, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.Connect(mid, res, netem.LinkConfig{Delay: 3 * time.Millisecond})
	sim.BuildRoutes()

	id, err := e2e.NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := dnssim.NewResolver(res, id)
	r.AddRecord(dnssim.Record{
		Name:         "www.google.com",
		Addr:         googleA,
		Neutralizers: []netip.Addr{netip.MustParseAddr("10.200.0.1")},
		PublicKey:    id.Public(),
	})

	n := simnet.New(sim)
	conn, err := n.ListenUDP(cl, 0)
	if err != nil {
		t.Fatal(err)
	}
	cc := dnssim.NewConnClient(conn, netip.AddrPortFrom(resolverA, dnssim.Port),
		mathrand.New(mathrand.NewSource(7)))

	n.Go(func() {
		t0 := n.Now()
		rec, err := cc.Lookup("www.google.com")
		if err != nil {
			t.Errorf("plain lookup: %v", err)
			return
		}
		if rec.Addr != googleA || len(rec.Neutralizers) != 1 {
			t.Errorf("plain record = %+v", rec)
		}
		// One query + one answer over 2ms+3ms links: exactly 10ms.
		if rtt := n.Now().Sub(t0); rtt != 10*time.Millisecond {
			t.Errorf("lookup rtt = %v, want 10ms", rtt)
		}

		if _, err := cc.Lookup("no.such.name"); !errors.Is(err, dnssim.ErrNoSuchName) {
			t.Errorf("nxdomain err = %v", err)
		}

		rec, err = cc.LookupEncrypted(r.Public(), "www.google.com")
		if err != nil {
			t.Errorf("encrypted lookup: %v", err)
			return
		}
		if rec.Addr != googleA {
			t.Errorf("encrypted record = %+v", rec)
		}
		if _, err := cc.LookupEncrypted(r.Public(), "nope"); !errors.Is(err, dnssim.ErrNoSuchName) {
			t.Errorf("encrypted nxdomain err = %v", err)
		}

		// A query to a port nobody serves times out at the (virtual)
		// deadline.
		conn.SetReadDeadline(n.Now().Add(250 * time.Millisecond))
		dead := dnssim.NewConnClient(conn, netip.AddrPortFrom(resolverA, 5999), nil)
		if _, err := dead.Lookup("x"); !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("dead resolver err = %v, want deadline exceeded", err)
		}
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if r.Queries() != 4 || r.EncryptedQueries() != 2 {
		t.Errorf("resolver counters = %d/%d, want 4 total, 2 encrypted", r.Queries(), r.EncryptedQueries())
	}
}
