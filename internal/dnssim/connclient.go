package dnssim

import (
	"crypto/rand"
	"fmt"
	"io"
	"net"
	"net/netip"

	"netneutral/internal/e2e"
)

// ConnClient is a blocking resolver client over any net.PacketConn —
// typically a simnet.UDPConn riding the emulated fabric, but any
// datagram transport whose payloads are this package's wire messages
// works. Unlike Client (callback-based, driven from a netem delivery
// handler), a ConnClient is used from an ordinary goroutine: each
// lookup writes one query datagram and blocks in ReadFrom until the
// matching answer arrives. It speaks exactly the wire protocol
// Resolver serves — the same encode/decode helpers back both clients.
//
// A ConnClient is not safe for concurrent lookups: answers are matched
// to queries by the conn's local port, so interleaved lookups on one
// conn would steal each other's datagrams. Use one ConnClient (and one
// conn) per querying goroutine.
type ConnClient struct {
	conn     net.PacketConn
	resolver netip.AddrPort
	rng      io.Reader
	buf      []byte
}

// NewConnClient wraps conn for blocking lookups against the resolver at
// the given address (usually port 53). rng defaults to crypto/rand;
// simulations pass a seeded reader for reproducible query encryption.
func NewConnClient(conn net.PacketConn, resolver netip.AddrPort, rng io.Reader) *ConnClient {
	if rng == nil {
		rng = rand.Reader
	}
	return &ConnClient{conn: conn, resolver: resolver, rng: rng, buf: make([]byte, 64<<10)}
}

// Lookup issues a plaintext query (the discriminable kind) and blocks
// until the answer arrives. Deadlines set on the underlying conn bound
// the wait.
func (c *ConnClient) Lookup(name string) (Record, error) {
	q, err := encodeQueryPlain(name)
	if err != nil {
		return Record{}, err
	}
	body, err := c.exchange(q)
	if err != nil {
		return Record{}, err
	}
	return decodeAnswerPlain(body)
}

// LookupEncrypted issues an encrypted query to a resolver whose public
// key the caller was configured with and blocks until the sealed answer
// arrives.
func (c *ConnClient) LookupEncrypted(resolverKey e2e.PublicKey, name string) (Record, error) {
	q, sess, err := encodeQueryEncrypted(c.rng, resolverKey, name)
	if err != nil {
		return Record{}, err
	}
	body, err := c.exchange(q)
	if err != nil {
		return Record{}, err
	}
	return decodeAnswerEncrypted(sess, body)
}

// exchange sends one query payload and returns the first datagram that
// comes back from the resolver's address, skipping strays.
func (c *ConnClient) exchange(q []byte) ([]byte, error) {
	dst := net.UDPAddrFromAddrPort(c.resolver)
	if _, err := c.conn.WriteTo(q, dst); err != nil {
		return nil, fmt.Errorf("dnssim: sending query: %w", err)
	}
	for {
		n, from, err := c.conn.ReadFrom(c.buf)
		if err != nil {
			return nil, fmt.Errorf("%w: %w", ErrQueryFailed, err)
		}
		if ua, ok := from.(*net.UDPAddr); ok {
			if ap := ua.AddrPort(); ap.Addr().Unmap() == c.resolver.Addr().Unmap() && ap.Port() == c.resolver.Port() {
				return c.buf[:n], nil
			}
		}
	}
}
