package dnssim

import (
	"bytes"
	mathrand "math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/e2e"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
)

var (
	start        = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	clientAddr   = netip.MustParseAddr("172.16.1.10")
	resolverAddr = netip.MustParseAddr("10.50.0.53")
	googleAddr   = netip.MustParseAddr("10.10.0.5")
	anycastAddr  = netip.MustParseAddr("10.200.0.1")
)

func testIdentity(t *testing.T) *e2e.Identity {
	t.Helper()
	id, err := e2e.NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func googleRecord(t *testing.T) Record {
	t.Helper()
	return Record{
		Name:         "www.google.com",
		Addr:         googleAddr,
		Neutralizers: []netip.Addr{anycastAddr, netip.MustParseAddr("10.201.0.1")},
		PublicKey:    testIdentity(t).Public(),
	}
}

func mustMarshal(t *testing.T, rec Record) []byte {
	t.Helper()
	b, err := rec.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRecordMarshalRoundTrip(t *testing.T) {
	rec := googleRecord(t)
	got, err := UnmarshalRecord(mustMarshal(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != rec.Name || got.Addr != rec.Addr {
		t.Errorf("roundtrip = %+v", got)
	}
	if len(got.Neutralizers) != 2 || got.Neutralizers[0] != anycastAddr {
		t.Errorf("neutralizers = %v", got.Neutralizers)
	}
	if !got.PublicKey.Equal(rec.PublicKey) {
		t.Error("public key mismatch")
	}
	// No public key.
	rec2 := Record{Name: "x", Addr: googleAddr}
	got2, err := UnmarshalRecord(mustMarshal(t, rec2))
	if err != nil || got2.PublicKey.Valid() {
		t.Errorf("keyless record: %+v %v", got2, err)
	}
}

func TestUnmarshalRecordErrors(t *testing.T) {
	cases := [][]byte{nil, {0}, {0, 5, 'a'}, {0, 1, 'a', 1, 2, 3}}
	for i, c := range cases {
		if _, err := UnmarshalRecord(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

// topo builds client — evil transit — resolver.
func topo(t *testing.T) (*netem.Simulator, *netem.Node, *netem.Node, *netem.Node) {
	t.Helper()
	s := netem.NewSimulator(start, 1)
	cl := s.MustAddNode("client", "att", clientAddr)
	evil := s.MustAddNode("evil", "att", netip.MustParseAddr("172.16.0.254"))
	res := s.MustAddNode("resolver", "cogent", resolverAddr)
	s.Connect(cl, evil, netem.LinkConfig{Delay: time.Millisecond})
	s.Connect(evil, res, netem.LinkConfig{Delay: time.Millisecond})
	s.BuildRoutes()
	return s, cl, evil, res
}

func TestPlainLookup(t *testing.T) {
	s, cl, _, res := topo(t)
	r := NewResolver(res, nil)
	r.AddRecord(googleRecord(t))
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))

	var got Record
	var gotErr error
	done := false
	if err := c.LookupPlain(resolverAddr, "www.google.com", func(rec Record, err error) {
		got, gotErr, done = rec, err, true
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !done || gotErr != nil {
		t.Fatalf("lookup: done=%v err=%v", done, gotErr)
	}
	if got.Addr != googleAddr || len(got.Neutralizers) != 2 {
		t.Errorf("record = %+v", got)
	}
	if r.Queries() != 1 || r.EncryptedQueries() != 0 {
		t.Errorf("queries = %d/%d", r.Queries(), r.EncryptedQueries())
	}
}

func TestPlainLookupNXDomain(t *testing.T) {
	s, cl, _, res := topo(t)
	NewResolver(res, nil)
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))
	var gotErr error
	if err := c.LookupPlain(resolverAddr, "nonexistent.example", func(_ Record, err error) {
		gotErr = err
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotErr != ErrNoSuchName {
		t.Errorf("err = %v, want ErrNoSuchName", gotErr)
	}
}

func TestEncryptedLookup(t *testing.T) {
	s, cl, _, res := topo(t)
	id := testIdentity(t)
	r := NewResolver(res, id)
	r.AddRecord(googleRecord(t))
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))

	var got Record
	var gotErr error
	if err := c.LookupEncrypted(resolverAddr, r.Public(), "www.google.com", func(rec Record, err error) {
		got, gotErr = rec, err
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotErr != nil {
		t.Fatal(gotErr)
	}
	if got.Addr != googleAddr {
		t.Errorf("record = %+v", got)
	}
	if r.EncryptedQueries() != 1 {
		t.Error("encrypted query not counted")
	}
}

func TestEncryptedLookupNXDomain(t *testing.T) {
	s, cl, _, res := topo(t)
	r := NewResolver(res, testIdentity(t))
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))
	var gotErr error
	if err := c.LookupEncrypted(resolverAddr, r.Public(), "nope.example", func(_ Record, err error) {
		gotErr = err
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if gotErr != ErrNoSuchName {
		t.Errorf("err = %v, want ErrNoSuchName", gotErr)
	}
}

// TestQueryNameVisibility is the §3.1 attack surface: the queried name is
// readable on the wire for plaintext queries and absent for encrypted
// ones.
func TestQueryNameVisibility(t *testing.T) {
	s, cl, evil, res := topo(t)
	id := testIdentity(t)
	r := NewResolver(res, id)
	r.AddRecord(googleRecord(t))
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))

	var wirePkts [][]byte
	evil.AddTransitHook(func(_ time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
		wirePkts = append(wirePkts, bytes.Clone(pkt))
		return netem.Deliver
	})

	if err := c.LookupPlain(resolverAddr, "www.google.com", func(Record, error) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	leaked := false
	for _, p := range wirePkts {
		if bytes.Contains(p, []byte("www.google.com")) {
			leaked = true
		}
	}
	if !leaked {
		t.Fatal("sanity: plaintext query must expose the name")
	}

	wirePkts = nil
	if err := c.LookupEncrypted(resolverAddr, r.Public(), "www.google.com", func(Record, error) {}); err != nil {
		t.Fatal(err)
	}
	s.Run()
	for i, p := range wirePkts {
		if bytes.Contains(p, []byte("www.google.com")) {
			t.Errorf("encrypted query packet %d leaks the name", i)
		}
	}
	if len(wirePkts) < 2 {
		t.Error("expected query+answer on the wire")
	}
}

// TestTargetedQueryDelay reproduces the motivating attack: the ISP delays
// plaintext queries naming a non-paying site; encrypted queries to an
// outside resolver are immune because the ISP cannot see the name.
func TestTargetedQueryDelay(t *testing.T) {
	s, cl, evil, res := topo(t)
	id := testIdentity(t)
	r := NewResolver(res, id)
	r.AddRecord(googleRecord(t))
	rec2 := Record{Name: "paying.example", Addr: netip.MustParseAddr("10.10.0.9")}
	r.AddRecord(rec2)
	c := NewClient(cl, mathrand.New(mathrand.NewSource(1)))

	// ISP rule: delay packets containing the target name by 500ms.
	policy := isp.NewPolicy(nil, isp.Rule{
		Name:   "delay-google-dns",
		Match:  isp.MatchPayloadContains([]byte("www.google.com")),
		Action: isp.Action{Delay: 500 * time.Millisecond},
	})
	evil.AddTransitHook(policy.Hook())

	var googleDone, payingDone, encDone time.Time
	if err := c.LookupPlain(resolverAddr, "www.google.com", func(Record, error) {
		googleDone = s.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.LookupPlain(resolverAddr, "paying.example", func(Record, error) {
		payingDone = s.Now()
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.LookupEncrypted(resolverAddr, r.Public(), "www.google.com", func(Record, error) {
		encDone = s.Now()
	}); err != nil {
		t.Fatal(err)
	}
	s.Run()

	googleLat := googleDone.Sub(start)
	payingLat := payingDone.Sub(start)
	encLat := encDone.Sub(start)
	if googleLat < 500*time.Millisecond {
		t.Errorf("plaintext google lookup = %v, want >= 500ms (targeted delay)", googleLat)
	}
	if payingLat > 100*time.Millisecond {
		t.Errorf("paying site lookup = %v, should be fast", payingLat)
	}
	if encLat > 100*time.Millisecond {
		t.Errorf("encrypted google lookup = %v, should evade the delay", encLat)
	}
	if policy.Hits("delay-google-dns") == 0 {
		t.Error("sanity: the rule should hit the plaintext query")
	}
}
