// Package dnssim simulates the DNS bootstrap of §3.1: a destination's
// records carry its address, its neutralizers' anycast addresses, and its
// public key; sources fetch them before connecting.
//
// Because a discriminatory ISP can eavesdrop on and selectively delay
// plaintext queries ("AT&T may delay queries for www.google.com"), the
// design requires queries to be encrypted and sent to resolvers outside
// the discriminatory ISP's control. Both modes are implemented so the A7
// experiment can contrast them: plaintext queries expose the queried name
// on the wire; encrypted queries expose only the resolver's address.
//
// The wire protocol is deliberately minimal (this is a bootstrap-
// semantics model, not an RFC 1035 implementation): queries and responses
// ride UDP port 53 over the netem fabric.
package dnssim

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"netneutral/internal/e2e"
	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

// Port is the well-known DNS port.
const Port = 53

// Errors returned by this package.
var (
	ErrNoSuchName  = errors.New("dnssim: no such name")
	ErrBadMessage  = errors.New("dnssim: malformed message")
	ErrNotEnabled  = errors.New("dnssim: resolver does not accept encrypted queries")
	ErrQueryFailed = errors.New("dnssim: query failed")
	ErrBadRecord   = errors.New("dnssim: record not encodable")
)

// Record is the bootstrap information a destination publishes (§3.1):
// its IP address, the anycast addresses of its neutralizer services (one
// per provider for multi-homed sites, §3.5), and its public key.
type Record struct {
	Name         string
	Addr         netip.Addr
	Neutralizers []netip.Addr
	PublicKey    e2e.PublicKey
}

// recordAddr4 validates that a is encodable as the wire's 4-byte
// address field: an IPv4 (or 4-in-6 mapped) address.
func recordAddr4(a netip.Addr) ([4]byte, error) {
	if !a.Is4() && !a.Is4In6() {
		return [4]byte{}, fmt.Errorf("%w: address %v is not IPv4", ErrBadRecord, a)
	}
	return a.As4(), nil
}

// Marshal encodes a record. Every variable-length field is validated
// against its length prefix before encoding: a name longer than 65535
// bytes would silently truncate the u16 prefix, more than 255
// neutralizers would wrap the count byte, and a zero or IPv6 address has
// no 4-byte wire form — each returns an error wrapping ErrBadRecord
// instead of emitting a corrupt record.
func (r Record) Marshal() ([]byte, error) {
	name := []byte(r.Name)
	if len(name) > 0xFFFF {
		return nil, fmt.Errorf("%w: name is %d bytes, wire limit 65535", ErrBadRecord, len(name))
	}
	if len(r.Neutralizers) > 0xFF {
		return nil, fmt.Errorf("%w: %d neutralizers, wire limit 255", ErrBadRecord, len(r.Neutralizers))
	}
	a, err := recordAddr4(r.Addr)
	if err != nil {
		return nil, err
	}
	pk := []byte{}
	if r.PublicKey.Valid() {
		pk = r.PublicKey.Marshal()
	}
	if len(pk) > 0xFFFF {
		return nil, fmt.Errorf("%w: public key is %d bytes, wire limit 65535", ErrBadRecord, len(pk))
	}
	out := make([]byte, 0, 2+len(name)+4+1+4*len(r.Neutralizers)+2+len(pk))
	out = append(out, byte(len(name)>>8), byte(len(name)))
	out = append(out, name...)
	out = append(out, a[:]...)
	out = append(out, byte(len(r.Neutralizers)))
	for _, n := range r.Neutralizers {
		n4, err := recordAddr4(n)
		if err != nil {
			return nil, err
		}
		out = append(out, n4[:]...)
	}
	out = append(out, byte(len(pk)>>8), byte(len(pk)))
	out = append(out, pk...)
	return out, nil
}

// UnmarshalRecord reverses Marshal. Like the audit report codec, it is
// strict: unconsumed bytes after the public key are a malformed message,
// not ignorable padding — round-tripping any accepted encoding must
// reproduce it byte for byte.
func UnmarshalRecord(b []byte) (Record, error) {
	if len(b) < 2 {
		return Record{}, ErrBadMessage
	}
	nl := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < nl+4+1 {
		return Record{}, ErrBadMessage
	}
	var r Record
	r.Name = string(b[:nl])
	b = b[nl:]
	r.Addr = netip.AddrFrom4([4]byte(b[:4]))
	b = b[4:]
	nn := int(b[0])
	b = b[1:]
	if len(b) < 4*nn+2 {
		return Record{}, ErrBadMessage
	}
	for i := 0; i < nn; i++ {
		r.Neutralizers = append(r.Neutralizers, netip.AddrFrom4([4]byte(b[:4])))
		b = b[4:]
	}
	pl := int(b[0])<<8 | int(b[1])
	b = b[2:]
	if len(b) < pl {
		return Record{}, ErrBadMessage
	}
	if pl > 0 {
		pk, err := e2e.UnmarshalPublicKey(b[:pl])
		if err != nil {
			return Record{}, err
		}
		// Only the canonical key form is a valid record field: a
		// non-minimal modulus encoding would re-encode shorter, breaking
		// Marshal/Unmarshal byte symmetry.
		if !bytes.Equal(pk.Marshal(), b[:pl]) {
			return Record{}, fmt.Errorf("%w: non-canonical public key encoding", ErrBadMessage)
		}
		r.PublicKey = pk
	}
	if len(b) != pl {
		return Record{}, fmt.Errorf("%w: %d trailing bytes after public key", ErrBadMessage, len(b)-pl)
	}
	return r, nil
}

// Message kinds on the wire.
const (
	msgQueryPlain  = 1
	msgQueryEnc    = 2
	msgAnswerPlain = 3
	msgAnswerEnc   = 4
	msgNXDomain    = 5
)

// Resolver is a DNS server bound to a netem node. If an Identity is set,
// it accepts encrypted queries: the query name and a response key arrive
// encrypted under the resolver's public key, and the answer comes back
// sealed.
type Resolver struct {
	node       *netem.Node
	zone       map[string]Record
	identity   *e2e.Identity
	queries    uint64
	encQueries uint64
}

// NewResolver installs a resolver on the given node. identity may be nil
// for a plaintext-only resolver.
func NewResolver(node *netem.Node, identity *e2e.Identity) *Resolver {
	r := &Resolver{node: node, zone: make(map[string]Record), identity: identity}
	node.SetHandler(r.handle)
	return r
}

// AddRecord publishes a record.
func (r *Resolver) AddRecord(rec Record) { r.zone[rec.Name] = rec }

// Queries reports total queries served; EncryptedQueries the encrypted
// subset.
func (r *Resolver) Queries() uint64 { return r.queries }

// EncryptedQueries reports encrypted queries served.
func (r *Resolver) EncryptedQueries() uint64 { return r.encQueries }

// Identity returns the resolver's public key (zero PublicKey if
// plaintext-only).
func (r *Resolver) Public() e2e.PublicKey {
	if r.identity == nil {
		return e2e.PublicKey{}
	}
	return r.identity.Public()
}

// Addr returns the resolver's address.
func (r *Resolver) Addr() netip.Addr { return r.node.Addr() }

func (r *Resolver) handle(now time.Time, pkt []byte) {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil || ip.Protocol != wire.ProtoUDP {
		return
	}
	var udp wire.UDP
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil || udp.DstPort != Port {
		return
	}
	q := udp.Payload()
	if len(q) < 2 {
		return
	}
	r.queries++
	switch q[0] {
	case msgQueryPlain:
		nl := int(q[1])
		if len(q) < 2+nl {
			return
		}
		name := string(q[2 : 2+nl])
		rec, ok := r.zone[name]
		if !ok {
			r.reply(ip.Src, udp.SrcPort, []byte{msgNXDomain, 0})
			return
		}
		body, err := rec.Marshal()
		if err != nil {
			// A record the zone accepted but the wire cannot carry:
			// answer NXDomain rather than emit a corrupt encoding.
			r.reply(ip.Src, udp.SrcPort, []byte{msgNXDomain, 0})
			return
		}
		r.reply(ip.Src, udp.SrcPort, append([]byte{msgAnswerPlain, 0}, body...))
	case msgQueryEnc:
		if r.identity == nil {
			return
		}
		n := int(binary.BigEndian.Uint16(q[1:3]))
		if len(q) < 3+n {
			return
		}
		pt, err := r.identity.DecryptSmall(q[3 : 3+n])
		if err != nil || len(pt) < 32 {
			return
		}
		seed, name := pt[:32], string(pt[32:])
		sess, err := e2e.SessionFromSeed(seed, nil)
		if err != nil {
			return
		}
		r.encQueries++
		rec, ok := r.zone[name]
		var body []byte
		if !ok {
			body = []byte{msgNXDomain}
		} else if enc, err := rec.Marshal(); err != nil {
			body = []byte{msgNXDomain}
		} else {
			body = append([]byte{msgAnswerEnc}, enc...)
		}
		sealed, err := sess.Seal(body)
		if err != nil {
			return
		}
		r.reply(ip.Src, udp.SrcPort, append([]byte{msgAnswerEnc, 0}, sealed...))
	}
}

func (r *Resolver) reply(dst netip.Addr, dstPort uint16, payload []byte) {
	pkt, err := buildUDP(r.node.Addr(), dst, Port, dstPort, payload)
	if err != nil {
		return
	}
	_ = r.node.Send(pkt)
}

// Client issues lookups from a netem node. Responses arrive
// asynchronously through the node's handler; the Client multiplexes by
// source port.
type Client struct {
	node     *netem.Node
	rng      io.Reader
	nextPort uint16
	pending  map[uint16]*pendingQuery
}

type pendingQuery struct {
	callback func(Record, error)
	sess     *e2e.Session
	enc      bool
}

// NewClient creates a lookup client on node. The client takes over the
// node's handler; compose with other handlers before calling if needed.
func NewClient(node *netem.Node, rng io.Reader) *Client {
	if rng == nil {
		rng = rand.Reader
	}
	c := &Client{node: node, rng: rng, nextPort: 30000, pending: make(map[uint16]*pendingQuery)}
	node.SetHandler(c.handle)
	return c
}

// LookupPlain issues a plaintext query (the discriminable kind).
func (c *Client) LookupPlain(resolver netip.Addr, name string, cb func(Record, error)) error {
	q, err := encodeQueryPlain(name)
	if err != nil {
		return err
	}
	port := c.allocPort(&pendingQuery{callback: cb})
	pkt, err := buildUDP(c.node.Addr(), resolver, port, Port, q)
	if err != nil {
		return err
	}
	return c.node.Send(pkt)
}

// LookupEncrypted issues an encrypted query to a resolver whose public
// key the client was configured with (§3.1: "clients will be configured
// with the IP addresses, the public keys ... of those DNS resolvers").
func (c *Client) LookupEncrypted(resolver netip.Addr, resolverKey e2e.PublicKey, name string, cb func(Record, error)) error {
	q, sess, err := encodeQueryEncrypted(c.rng, resolverKey, name)
	if err != nil {
		return err
	}
	port := c.allocPort(&pendingQuery{callback: cb, sess: sess, enc: true})
	pkt, err := buildUDP(c.node.Addr(), resolver, port, Port, q)
	if err != nil {
		return err
	}
	return c.node.Send(pkt)
}

// encodeQueryPlain builds the plaintext query payload.
func encodeQueryPlain(name string) ([]byte, error) {
	if len(name) > 0xFF {
		return nil, fmt.Errorf("%w: name is %d bytes, wire limit 255", ErrBadRecord, len(name))
	}
	return append([]byte{msgQueryPlain, byte(len(name))}, name...), nil
}

// encodeQueryEncrypted builds the encrypted query payload and the
// session the answer will come back sealed under.
func encodeQueryEncrypted(rng io.Reader, resolverKey e2e.PublicKey, name string) ([]byte, *e2e.Session, error) {
	seed := make([]byte, 32)
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, nil, err
	}
	sess, err := e2e.SessionFromSeed(seed, rng)
	if err != nil {
		return nil, nil, err
	}
	ct, err := e2e.EncryptSmall(rng, resolverKey, append(seed, []byte(name)...))
	if err != nil {
		return nil, nil, fmt.Errorf("dnssim: encrypting query: %w", err)
	}
	q := make([]byte, 3+len(ct))
	q[0] = msgQueryEnc
	binary.BigEndian.PutUint16(q[1:3], uint16(len(ct)))
	copy(q[3:], ct)
	return q, sess, nil
}

// decodeAnswerPlain parses a plaintext answer payload (kind byte +
// reserved byte + record body).
func decodeAnswerPlain(body []byte) (Record, error) {
	if len(body) < 2 {
		return Record{}, ErrBadMessage
	}
	switch body[0] {
	case msgAnswerPlain:
		return UnmarshalRecord(body[2:])
	case msgNXDomain:
		return Record{}, ErrNoSuchName
	default:
		return Record{}, ErrBadMessage
	}
}

// decodeAnswerEncrypted opens a sealed answer payload with the query's
// session.
func decodeAnswerEncrypted(sess *e2e.Session, body []byte) (Record, error) {
	if len(body) < 2 || body[0] != msgAnswerEnc {
		return Record{}, ErrQueryFailed
	}
	pt, err := sess.Open(body[2:])
	if err != nil || len(pt) < 1 {
		return Record{}, ErrQueryFailed
	}
	if pt[0] == msgNXDomain {
		return Record{}, ErrNoSuchName
	}
	return UnmarshalRecord(pt[1:])
}

func (c *Client) allocPort(p *pendingQuery) uint16 {
	c.nextPort++
	c.pending[c.nextPort] = p
	return c.nextPort
}

func (c *Client) handle(now time.Time, pkt []byte) {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil || ip.Protocol != wire.ProtoUDP {
		return
	}
	var udp wire.UDP
	if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
		return
	}
	p, ok := c.pending[udp.DstPort]
	if !ok {
		return
	}
	delete(c.pending, udp.DstPort)
	body := udp.Payload()
	if p.enc {
		rec, err := decodeAnswerEncrypted(p.sess, body)
		p.callback(rec, err)
		return
	}
	rec, err := decodeAnswerPlain(body)
	p.callback(rec, err)
}

func buildUDP(src, dst netip.Addr, sport, dport uint16, payload []byte) ([]byte, error) {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: sport, DstPort: dport, PseudoSrc: src, PseudoDst: dst},
	)
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
