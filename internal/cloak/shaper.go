package cloak

import (
	"math"
	"time"
)

// Clock is the scheduling surface a Shaper runs on; *netem.Simulator
// satisfies it, as does any event loop with a virtual clock.
type Clock interface {
	Now() time.Time
	Schedule(d time.Duration, fn func())
}

// Config sets the cloaking knobs and, implicitly, the cost each pays.
type Config struct {
	// SizeBuckets are the ascending frame sizes payloads are padded to.
	// One large bucket is the strongest setting (every frame identical)
	// and the most expensive in goodput.
	SizeBuckets []int
	// Tick quantizes frame release times to a fixed grid; zero sends
	// immediately (padding-only cloaking).
	Tick time.Duration
	// PerTick caps frames released per tick (default 1 — constant-rate
	// output; larger values batch queued frames, trading uniformity for
	// latency).
	PerTick int
	// Cover emits a padding-only frame on each idle tick while the
	// shaper runs, making silence indistinguishable from talk.
	Cover bool
	// CoverSize is the cover frame's wire size (default: largest
	// bucket).
	CoverSize int
}

func (c *Config) fill() {
	if c.PerTick <= 0 {
		c.PerTick = 1
	}
	if c.CoverSize <= 0 {
		if n := len(c.SizeBuckets); n > 0 {
			c.CoverSize = c.SizeBuckets[n-1]
		} else {
			c.CoverSize = FrameOverhead
		}
	}
}

// Stats is the measured cost of cloaking: the goodput and latency the
// countermeasure spends to buy indistinguishability.
type Stats struct {
	// RealBytes is application payload accepted; WireBytes is what left
	// the shaper (padding + cover included).
	RealBytes, WireBytes uint64
	// Frames counts payload-carrying frames; CoverFrames padding-only
	// ones.
	Frames, CoverFrames uint64
	// QueueDelaySum accumulates time payloads waited for their tick.
	QueueDelaySum time.Duration
	// MaxQueue is the deepest the pending queue got.
	MaxQueue int
}

// Overhead is wire bytes per real byte (1.0 = free; padding and cover
// push it up). A cover-only run that carried no real bytes is
// infinitely expensive by this measure and reports +Inf.
func (s Stats) Overhead() float64 {
	if s.RealBytes == 0 {
		if s.WireBytes == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(s.WireBytes) / float64(s.RealBytes)
}

// AvgDelay is the mean added latency per payload frame.
func (s Stats) AvgDelay() time.Duration {
	if s.Frames == 0 {
		return 0
	}
	return s.QueueDelaySum / time.Duration(s.Frames)
}

// Shaper applies the configured cloaking to a stream of payloads,
// emitting padded frames on the tick grid. It is single-goroutine like
// the event loops it runs on.
type Shaper struct {
	cfg     Config
	clk     Clock
	emit    func(frame []byte)
	pending []pendingPayload
	free    [][]byte // recycled payload buffers
	buf     []byte   // reused frame encode buffer

	ticking bool
	until   time.Time // cover traffic runs while now < until
	stats   Stats
}

type pendingPayload struct {
	data []byte
	at   time.Time
}

// NewShaper creates a shaper that emits wire frames through emit (the
// frame slice is reused between emissions: consume or copy it within
// the call, the contract packet pools already impose).
func NewShaper(cfg Config, clk Clock, emit func(frame []byte)) *Shaper {
	cfg.fill()
	return &Shaper{cfg: cfg, clk: clk, emit: emit}
}

// Run keeps the tick grid (and cover traffic, if configured) alive for
// d from now, independent of payload arrivals.
func (s *Shaper) Run(d time.Duration) {
	if t := s.clk.Now().Add(d); t.After(s.until) {
		s.until = t
	}
	if s.cfg.Tick > 0 {
		s.armTick()
	}
}

// Send accepts one application payload. With no Tick it is framed and
// emitted immediately; otherwise it queues for the next tick.
func (s *Shaper) Send(payload []byte) {
	s.stats.RealBytes += uint64(len(payload))
	if s.cfg.Tick <= 0 {
		s.emitPayload(payload)
		return
	}
	buf := s.getBuf(len(payload))
	copy(buf, payload)
	s.pending = append(s.pending, pendingPayload{data: buf, at: s.clk.Now()})
	if len(s.pending) > s.stats.MaxQueue {
		s.stats.MaxQueue = len(s.pending)
	}
	s.armTick()
}

// Stats returns the accumulated cost counters.
func (s *Shaper) Stats() Stats { return s.stats }

// QueueLen reports payloads waiting for a tick.
func (s *Shaper) QueueLen() int { return len(s.pending) }

// armTick schedules the next tick if none is pending, aligned to the
// tick grid (absolute-time quantization, not send-relative).
func (s *Shaper) armTick() {
	if s.ticking || s.cfg.Tick <= 0 {
		return
	}
	now := s.clk.Now()
	next := now.Truncate(s.cfg.Tick).Add(s.cfg.Tick)
	s.ticking = true
	s.clk.Schedule(next.Sub(now), s.tick)
}

// tick releases up to PerTick queued frames, or a cover frame on an
// idle tick, then re-arms while there is queued work or cover to keep
// up.
func (s *Shaper) tick() {
	s.ticking = false
	now := s.clk.Now()
	if len(s.pending) == 0 {
		if s.cfg.Cover && now.Before(s.until) {
			s.emitCover()
		}
	} else {
		n := s.cfg.PerTick
		if n > len(s.pending) {
			n = len(s.pending)
		}
		for i := 0; i < n; i++ {
			p := s.pending[i]
			s.stats.QueueDelaySum += now.Sub(p.at)
			s.emitPayload(p.data)
			s.free = append(s.free, p.data[:0])
			s.pending[i] = pendingPayload{}
		}
		s.pending = append(s.pending[:0], s.pending[n:]...)
	}
	if len(s.pending) > 0 || (s.cfg.Cover && now.Before(s.until)) {
		s.armTick()
	}
}

func (s *Shaper) emitPayload(payload []byte) {
	s.buf = AppendFrame(s.buf[:0], payload, s.cfg.SizeBuckets)
	s.stats.WireBytes += uint64(len(s.buf))
	s.stats.Frames++
	s.emit(s.buf)
}

func (s *Shaper) emitCover() {
	s.buf = AppendCover(s.buf[:0], s.cfg.CoverSize)
	s.stats.WireBytes += uint64(len(s.buf))
	s.stats.CoverFrames++
	s.emit(s.buf)
}

// getBuf returns an n-byte buffer, reusing released ones.
func (s *Shaper) getBuf(n int) []byte {
	for i := len(s.free) - 1; i >= 0; i-- {
		b := s.free[i]
		if cap(b) >= n {
			s.free = append(s.free[:i], s.free[i+1:]...)
			return b[:n]
		}
	}
	return make([]byte, n)
}
