// Package cloak implements end-host countermeasures against the
// statistical traffic-analysis adversary of package dpi. The
// neutralizer (and encryption generally) hides *who* is communicating;
// the wire image — packet sizes and timing — still fingerprints *what*
// application is running. Cloaking flattens that image, at a measured
// cost:
//
//   - Padding to size buckets: every application payload is wrapped in
//     a length-prefixed frame padded up to the next configured bucket,
//     collapsing the size histogram. Cost: wasted goodput
//     (Stats.Overhead).
//   - Timing quantization and batching: frames leave only on a fixed
//     tick grid (Shaper), erasing inter-arrival structure. Cost: added
//     latency (Stats.AvgDelay).
//   - Cover traffic: idle ticks emit padding-only frames the receiver
//     discards, so silence is indistinguishable from talk. Cost: wire
//     bytes that carry nothing.
//
// Frames ride wherever the application payload rode — inside shim Data
// packets on the neutralized path, or inside plain UDP — and decode
// back to the exact original payload (FuzzCloakFrame holds the
// round-trip and no-over-read properties). With one bucket, a small
// tick and cover enabled, every flow becomes the same constant-rate,
// constant-size stream: the dpi classifier's accuracy falls to chance,
// which is E7's measured arms-race endpoint.
package cloak

import (
	"encoding/binary"
	"errors"
)

// Frame layout: magic(1) flags(1) origLen(2 BE) payload padding.
const (
	frameMagic = 0xCF

	// FrameOverhead is the fixed header cost of a cloak frame.
	FrameOverhead = 4

	// flagCover marks a padding-only frame carrying no payload.
	flagCover = 1 << 0
)

// Errors returned by frame decoding.
var (
	ErrFrameTooShort = errors.New("cloak: frame too short")
	ErrBadMagic      = errors.New("cloak: not a cloak frame")
	ErrBadLength     = errors.New("cloak: length exceeds frame")
)

// PaddedLen returns the on-wire frame length for an n-byte payload
// under the given ascending bucket list: the smallest bucket that fits,
// or the exact framed size when the payload exceeds every bucket (the
// frame is never truncated).
func PaddedLen(n int, buckets []int) int {
	need := n + FrameOverhead
	for _, b := range buckets {
		if need <= b {
			return b
		}
	}
	return need
}

// AppendFrame appends the padded frame for payload to dst and returns
// the extended slice. With sufficient capacity it does not allocate.
func AppendFrame(dst, payload []byte, buckets []int) []byte {
	return appendFrame(dst, payload, 0, PaddedLen(len(payload), buckets))
}

// AppendCover appends a padding-only cover frame of exactly size wire
// bytes (at least FrameOverhead).
func AppendCover(dst []byte, size int) []byte {
	if size < FrameOverhead {
		size = FrameOverhead
	}
	return appendFrame(dst, nil, flagCover, size)
}

// MaxPayload is the largest payload a frame can carry (16-bit length).
const MaxPayload = 0xffff

func appendFrame(dst, payload []byte, flags uint8, total int) []byte {
	if len(payload) > MaxPayload {
		panic("cloak: payload exceeds MaxPayload")
	}
	start := len(dst)
	if start+total <= cap(dst) {
		dst = dst[:start+total]
	} else {
		grown := make([]byte, start+total)
		copy(grown, dst)
		dst = grown
	}
	f := dst[start : start+total]
	f[0] = frameMagic
	f[1] = flags
	binary.BigEndian.PutUint16(f[2:4], uint16(len(payload)))
	copy(f[FrameOverhead:], payload)
	for i := FrameOverhead + len(payload); i < total; i++ {
		f[i] = 0
	}
	return dst
}

// EncodeFrame is AppendFrame into a fresh buffer.
func EncodeFrame(payload []byte, buckets []int) []byte {
	return AppendFrame(make([]byte, 0, PaddedLen(len(payload), buckets)), payload, buckets)
}

// DecodeFrame parses a cloak frame, returning the original payload (a
// view into frame — copy to retain) and whether the frame is cover
// traffic. The payload is bounded by the declared length: trailing
// padding is ignored, and a declared length past the frame's end is an
// error, never an over-read.
func DecodeFrame(frame []byte) (payload []byte, cover bool, err error) {
	if len(frame) < FrameOverhead {
		return nil, false, ErrFrameTooShort
	}
	if frame[0] != frameMagic {
		return nil, false, ErrBadMagic
	}
	n := int(binary.BigEndian.Uint16(frame[2:4]))
	if FrameOverhead+n > len(frame) {
		return nil, false, ErrBadLength
	}
	return frame[FrameOverhead : FrameOverhead+n], frame[1]&flagCover != 0, nil
}
