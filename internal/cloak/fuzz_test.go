package cloak_test

import (
	"bytes"
	"testing"

	"netneutral/internal/cloak"
	"netneutral/internal/eval"
)

// fuzzSeeds are real packets from the benchmark environment: the exact
// byte strings the cloak layer wraps on the neutralized path (whole
// shim datagrams and their payloads), plus edge shapes.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	env, err := eval.NewBenchEnv(false, false)
	if err != nil {
		f.Fatal(err)
	}
	return [][]byte{
		env.DataPkt,
		env.ReturnPkt,
		env.SetupPkt,
		env.VanillaPkt,
		env.DataPkt[20:], // shim payload view
		{},
		bytes.Repeat([]byte{0xCF}, 64),
	}
}

// FuzzCloakFrame holds the cloak wire contract under hostile input:
// encoding any payload round-trips exactly through DecodeFrame, and
// decoding arbitrary bytes never panics or reads past the frame.
func FuzzCloakFrame(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed, uint16(300))
	}
	f.Add([]byte{0xCF, 0, 0xFF, 0xFF, 1}, uint16(0))
	f.Add([]byte{0xCF, 1, 0, 0}, uint16(4))

	f.Fuzz(func(t *testing.T, data []byte, bucket uint16) {
		if len(data) > cloak.MaxPayload {
			data = data[:cloak.MaxPayload]
		}
		// Property 1: arbitrary bytes through the decoder — no panic,
		// and any accepted payload stays inside the frame.
		if payload, _, err := cloak.DecodeFrame(data); err == nil {
			if len(payload) > len(data)-cloak.FrameOverhead {
				t.Fatalf("decoded payload %dB from %dB frame", len(payload), len(data))
			}
		}

		// Property 2: encode/decode round trip under a fuzzed bucket
		// list (including degenerate buckets smaller than the payload).
		buckets := []int{int(bucket), int(bucket) * 3, 1400}
		frame := cloak.EncodeFrame(data, buckets)
		if len(frame) < cloak.PaddedLen(0, nil) {
			t.Fatalf("frame shorter than empty minimum: %d", len(frame))
		}
		got, cover, err := cloak.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if cover {
			t.Fatal("payload frame decoded as cover")
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("round trip mismatch: %d in, %d out", len(data), len(got))
		}

		// Property 3: cover frames of the padded size decode as cover
		// with no payload.
		coverFrame := cloak.AppendCover(nil, len(frame))
		payload, isCover, err := cloak.DecodeFrame(coverFrame)
		if err != nil || !isCover || len(payload) != 0 {
			t.Fatalf("cover decode: payload=%d cover=%v err=%v", len(payload), isCover, err)
		}
	})
}
