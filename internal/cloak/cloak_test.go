package cloak_test

import (
	"bytes"
	"testing"
	"time"

	"netneutral/internal/cloak"
	"netneutral/internal/netem"
)

var buckets = []int{128, 512, 1400}

func TestFrameRoundTrip(t *testing.T) {
	for _, n := range []int{0, 1, 100, 124, 508, 509, 1396, 1500, 4000} {
		payload := bytes.Repeat([]byte{0xAB}, n)
		frame := cloak.EncodeFrame(payload, buckets)
		if want := cloak.PaddedLen(n, buckets); len(frame) != want {
			t.Errorf("n=%d: frame len %d, want %d", n, len(frame), want)
		}
		got, cover, err := cloak.DecodeFrame(frame)
		if err != nil {
			t.Fatalf("n=%d: decode: %v", n, err)
		}
		if cover {
			t.Errorf("n=%d: payload frame decoded as cover", n)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("n=%d: round trip mismatch", n)
		}
	}
}

func TestFramePaddingCollapsesSizes(t *testing.T) {
	// Every payload that fits one bucket produces the same wire size:
	// the property the dpi size histogram cannot see through.
	seen := map[int]bool{}
	for n := 0; n <= 124; n += 31 {
		seen[len(cloak.EncodeFrame(make([]byte, n), buckets))] = true
	}
	if len(seen) != 1 {
		t.Errorf("payloads under one bucket produced %d distinct wire sizes", len(seen))
	}
}

func TestCoverFrame(t *testing.T) {
	frame := cloak.AppendCover(nil, 512)
	if len(frame) != 512 {
		t.Fatalf("cover frame %dB, want 512", len(frame))
	}
	payload, cover, err := cloak.DecodeFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if !cover || len(payload) != 0 {
		t.Errorf("cover=%v payload=%dB, want cover with empty payload", cover, len(payload))
	}
}

func TestDecodeRejectsHostileFrames(t *testing.T) {
	cases := map[string][]byte{
		"empty":        {},
		"short":        {0xCF, 0},
		"bad magic":    {0x00, 0, 0, 0},
		"length past":  {0xCF, 0, 0xFF, 0xFF, 1, 2, 3},
		"length past2": {0xCF, 0, 0, 10, 1, 2, 3},
	}
	for name, frame := range cases {
		if _, _, err := cloak.DecodeFrame(frame); err == nil {
			t.Errorf("%s: decode succeeded", name)
		}
	}
}

func TestAppendFrameReusesCapacity(t *testing.T) {
	buf := make([]byte, 0, 2048)
	out := cloak.AppendFrame(buf, make([]byte, 100), buckets)
	if &out[0] != &buf[:1][0] {
		t.Error("AppendFrame reallocated despite sufficient capacity")
	}
}

func simClock() *netem.Simulator {
	return netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 1)
}

func TestShaperQuantizesTiming(t *testing.T) {
	sim := simClock()
	var at []time.Time
	sh := cloak.NewShaper(cloak.Config{SizeBuckets: buckets, Tick: 10 * time.Millisecond},
		sim, func([]byte) { at = append(at, sim.Now()) })
	// Payloads arrive at awkward offsets; emissions must land on the
	// 10ms grid, one per tick.
	for _, off := range []time.Duration{time.Millisecond, 3 * time.Millisecond, 17 * time.Millisecond} {
		sim.Schedule(off, func() { sh.Send([]byte("hello")) })
	}
	sim.Run()
	if len(at) != 3 {
		t.Fatalf("emitted %d frames, want 3", len(at))
	}
	start := time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	for i, ts := range at {
		if rem := ts.Sub(start) % (10 * time.Millisecond); rem != 0 {
			t.Errorf("frame %d emitted off-grid at +%v", i, ts.Sub(start))
		}
	}
	// Two payloads shared the first grid slot's queue: with PerTick 1
	// they must occupy consecutive ticks.
	if at[0] == at[1] {
		t.Error("PerTick=1 released two frames on one tick")
	}
	if d := sh.Stats().AvgDelay(); d <= 0 {
		t.Errorf("queue delay not accounted: %v", d)
	}
}

func TestShaperBatchesWithPerTick(t *testing.T) {
	sim := simClock()
	var at []time.Time
	sh := cloak.NewShaper(cloak.Config{SizeBuckets: buckets, Tick: 10 * time.Millisecond, PerTick: 8},
		sim, func([]byte) { at = append(at, sim.Now()) })
	sim.Schedule(time.Millisecond, func() {
		for i := 0; i < 5; i++ {
			sh.Send([]byte("x"))
		}
	})
	sim.Run()
	if len(at) != 5 {
		t.Fatalf("emitted %d, want 5", len(at))
	}
	for i := 1; i < 5; i++ {
		if at[i] != at[0] {
			t.Errorf("batch split across ticks: frame %d at %v vs %v", i, at[i], at[0])
		}
	}
}

func TestShaperCoverFillsIdleTicks(t *testing.T) {
	sim := simClock()
	frames, covers := 0, 0
	sh := cloak.NewShaper(cloak.Config{SizeBuckets: []int{256}, Tick: 10 * time.Millisecond, Cover: true},
		sim, func(frame []byte) {
			if len(frame) != 256 {
				t.Errorf("frame %dB, want uniform 256", len(frame))
			}
			_, cover, err := cloak.DecodeFrame(frame)
			if err != nil {
				t.Fatal(err)
			}
			if cover {
				covers++
			} else {
				frames++
			}
		})
	sh.Run(200 * time.Millisecond)
	sim.Schedule(42*time.Millisecond, func() { sh.Send([]byte("real")) })
	sim.Run()
	if frames != 1 {
		t.Errorf("payload frames = %d, want 1", frames)
	}
	// ~20 ticks in 200ms, one consumed by the real frame.
	if covers < 15 {
		t.Errorf("cover frames = %d, want the idle grid filled (~19)", covers)
	}
	st := sh.Stats()
	if st.Overhead() < 50 {
		t.Errorf("overhead = %.1fx for 4 real bytes under full cover, want large", st.Overhead())
	}
	if st.CoverFrames != uint64(covers) || st.Frames != uint64(frames) {
		t.Errorf("stats frames=%d covers=%d, observed %d/%d", st.Frames, st.CoverFrames, frames, covers)
	}
}

func TestShaperNoTickSendsImmediately(t *testing.T) {
	sim := simClock()
	n := 0
	sh := cloak.NewShaper(cloak.Config{SizeBuckets: buckets}, sim, func(frame []byte) {
		n++
		if len(frame) != 128 {
			t.Errorf("frame %dB, want padded to 128", len(frame))
		}
	})
	sh.Send([]byte("now"))
	if n != 1 {
		t.Fatalf("emitted %d frames synchronously, want 1", n)
	}
	if sim.PendingEvents() != 0 {
		t.Error("tickless shaper scheduled events")
	}
}
