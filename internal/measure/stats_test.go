package measure

import (
	"math"
	"math/rand"
	"testing"
	"time"
)

// bruteU1 counts pairs (x_i, y_j) with x > y plus half-credit for ties:
// the definitional Mann-Whitney U1 the rank computation must reproduce.
func bruteU1(x, y []float64) float64 {
	u := 0.0
	for _, a := range x {
		for _, b := range y {
			switch {
			case a > b:
				u++
			case a == b:
				u += 0.5
			}
		}
	}
	return u
}

func TestMannWhitneyUAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 2+rng.Intn(12), 2+rng.Intn(12)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = float64(rng.Intn(8)) // coarse grid to force ties
		}
		for i := range y {
			y[i] = float64(rng.Intn(8))
		}
		u1 := bruteU1(x, y)
		u2 := float64(n1*n2) - u1
		want := math.Min(u1, u2)
		got := MannWhitney(x, y)
		if math.Abs(got.Stat-want) > 1e-9 {
			t.Fatalf("trial %d: U = %v, brute force %v (x=%v y=%v)", trial, got.Stat, want, x, y)
		}
		wantEff := 2*u1/float64(n1*n2) - 1
		if math.Abs(got.Effect-wantEff) > 1e-9 {
			t.Fatalf("trial %d: effect = %v, want %v", trial, got.Effect, wantEff)
		}
	}
}

// TestMannWhitneyCriticalValues pins the normal approximation against
// the published two-tailed alpha = 0.05 critical values of the exact U
// distribution (e.g. Siegel & Castellan, Table J): at the critical U the
// test must reject (small tolerance for the approximation), and a few
// ranks above it must not.
func TestMannWhitneyCriticalValues(t *testing.T) {
	cases := []struct {
		n1, n2 int
		crit   float64 // largest U with two-tailed p <= 0.05
	}{
		{5, 5, 2},
		{8, 8, 13},
		{10, 10, 23},
		{12, 12, 37},
		{10, 5, 8},
	}
	for _, c := range cases {
		p := mwPForU(t, c.n1, c.n2, c.crit)
		if p > 0.055 {
			t.Errorf("n1=%d n2=%d U=%v: p = %.4f, published critical value demands <= ~0.05", c.n1, c.n2, c.crit, p)
		}
		pAbove := mwPForU(t, c.n1, c.n2, c.crit+3)
		if pAbove <= 0.05 {
			t.Errorf("n1=%d n2=%d U=%v: p = %.4f, want > 0.05 above the critical value", c.n1, c.n2, c.crit+3, pAbove)
		}
		if pAbove <= p {
			t.Errorf("n1=%d n2=%d: p not monotone in U (%.4f at %v, %.4f at %v)", c.n1, c.n2, p, c.crit, pAbove, c.crit+3)
		}
	}
}

// mwPForU builds tie-free samples realizing exactly the target U1 = u
// (u of the x sample's wins) and returns the reported p-value.
func mwPForU(t *testing.T, n1, n2 int, u float64) float64 {
	t.Helper()
	k := int(u)
	if float64(k) != u || k > n1*n2 {
		t.Fatalf("cannot realize U=%v for n1=%d n2=%d", u, n1, n2)
	}
	// Start with all x below all y (U1 = 0), then promote one x past
	// min(k, n2) ys at a time.
	x := make([]float64, n1)
	y := make([]float64, n2)
	for i := range x {
		x[i] = float64(i)
	}
	for j := range y {
		y[j] = float64(n1 + j)
	}
	for i := n1 - 1; i >= 0 && k > 0; i-- {
		wins := k
		if wins > n2 {
			wins = n2
		}
		x[i] = float64(n1+wins) - 0.5 // beats the first `wins` ys
		k -= wins
	}
	res := MannWhitney(x, y)
	if want := math.Min(u, float64(n1*n2)-u); math.Abs(res.Stat-want) > 1e-9 {
		t.Fatalf("constructed U = %v, want %v", res.Stat, want)
	}
	return res.P
}

func bruteKSD(x, y []float64) float64 {
	ecdf := func(s []float64, v float64) float64 {
		n := 0
		for _, a := range s {
			if a <= v {
				n++
			}
		}
		return float64(n) / float64(len(s))
	}
	d := 0.0
	for _, v := range append(append([]float64{}, x...), y...) {
		if diff := math.Abs(ecdf(x, v) - ecdf(y, v)); diff > d {
			d = diff
		}
	}
	return d
}

func TestKolmogorovSmirnovDAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		n1, n2 := 2+rng.Intn(15), 2+rng.Intn(15)
		x := make([]float64, n1)
		y := make([]float64, n2)
		for i := range x {
			x[i] = float64(rng.Intn(6))
		}
		for i := range y {
			y[i] = float64(rng.Intn(6))
		}
		got := KolmogorovSmirnov(x, y)
		if want := bruteKSD(x, y); math.Abs(got.Stat-want) > 1e-9 {
			t.Fatalf("trial %d: D = %v, brute force %v (x=%v y=%v)", trial, got.Stat, want, x, y)
		}
	}
}

// TestKolmogorovSmirnovCriticalValue checks the published large-sample
// critical distance D_crit = 1.36*sqrt((n+m)/(n*m)) at alpha = 0.05:
// the reported p at that D must sit near 0.05.
func TestKolmogorovSmirnovCriticalValue(t *testing.T) {
	const n = 100
	dCrit := 1.36 * math.Sqrt(2.0/n)
	// Realize D ~ dCrit with two shifted staircase samples: x uniform on
	// [0,1), y uniform on [shift, 1+shift) gives D ~ shift.
	x := make([]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = float64(i) / n
		y[i] = float64(i)/n + dCrit
	}
	res := KolmogorovSmirnov(x, y)
	if math.Abs(res.Stat-dCrit) > 0.02 {
		t.Fatalf("constructed D = %.4f, want ~%.4f", res.Stat, dCrit)
	}
	if res.P < 0.02 || res.P > 0.09 {
		t.Errorf("p at the alpha=0.05 critical distance = %.4f, want near 0.05", res.P)
	}
}

// TestStatsFalsePositiveCalibration draws both samples from the same
// distribution many times: the rejection rate at alpha = 0.05 must stay
// near (and for the auditor's safety, below ~2x) the nominal level, and
// p-values must not collapse toward significance.
func TestStatsFalsePositiveCalibration(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const reps = 300
	mwRej, ksRej := 0, 0
	mwPSum := 0.0
	for r := 0; r < reps; r++ {
		x := make([]float64, 20)
		y := make([]float64, 20)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		if mw := MannWhitney(x, y); mw.P < 0.05 {
			mwRej++
		} else if mw.P < 0 || mw.P > 1 {
			t.Fatalf("p out of range: %v", mw.P)
		}
		mwPSum += MannWhitney(x, y).P
		if ks := KolmogorovSmirnov(x, y); ks.P < 0.05 {
			ksRej++
		}
	}
	if frac := float64(mwRej) / reps; frac > 0.10 {
		t.Errorf("Mann-Whitney false-positive rate %.3f at alpha=0.05, want <= 0.10", frac)
	}
	if frac := float64(ksRej) / reps; frac > 0.10 {
		t.Errorf("KS false-positive rate %.3f at alpha=0.05, want <= 0.10", frac)
	}
	if mean := mwPSum / reps; mean < 0.3 {
		t.Errorf("mean Mann-Whitney p under the null = %.3f, want >= 0.3", mean)
	}
}

// TestStatsPower: a blatant 90%-drop throttler separates goodput
// distributions so far that both tests must reject decisively at the
// auditor's sample sizes (12 trials).
func TestStatsPower(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for r := 0; r < 50; r++ {
		s := make([]float64, 12)
		c := make([]float64, 12)
		for i := range s {
			s[i] = 0.1 + 0.02*rng.Float64()
			c[i] = 0.97 + 0.03*rng.Float64()
		}
		if mw := MannWhitney(s, c); mw.P > 0.001 {
			t.Fatalf("rep %d: MW p = %v on fully separated samples", r, mw.P)
		}
		if ks := KolmogorovSmirnov(s, c); ks.P > 0.001 {
			t.Fatalf("rep %d: KS p = %v on fully separated samples", r, ks.P)
		}
	}
}

func TestDegenerateInputs(t *testing.T) {
	if p := MannWhitney(nil, []float64{1, 2}).P; p != 1 {
		t.Errorf("empty x: p = %v, want 1", p)
	}
	if p := KolmogorovSmirnov([]float64{1}, nil).P; p != 1 {
		t.Errorf("empty y: p = %v, want 1", p)
	}
	same := []float64{3, 3, 3, 3}
	if p := MannWhitney(same, same).P; p != 1 {
		t.Errorf("all tied: p = %v, want 1", p)
	}
	if got := Median(nil); got != 0 {
		t.Errorf("median of empty = %v", got)
	}
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("median = %v, want 2", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v, want 2.5", got)
	}
}

// TestHistogramReservoirBound: the metro-scale footgun fix — a
// histogram fed far past its bound must cap retained samples while
// keeping Count/Mean/Max exact and quantiles representative.
func TestHistogramReservoirBound(t *testing.T) {
	var h Histogram
	h.SetMaxSamples(256)
	const n = 100_000
	for i := 1; i <= n; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != n {
		t.Errorf("Count = %d, want %d (total adds, not reservoir size)", h.Count(), n)
	}
	if got := len(h.samples); got != 256 {
		t.Errorf("retained %d samples, want bound 256", got)
	}
	wantMean := time.Duration(n+1) * time.Microsecond / 2
	if got := h.Mean(); got != wantMean {
		t.Errorf("Mean = %v, want exact %v", got, wantMean)
	}
	if got := h.Max(); got != n*time.Microsecond {
		t.Errorf("Max = %v, want exact %v", got, n*time.Microsecond)
	}
	// The reservoir is uniform: the median estimate must land within a
	// generous band around the true median.
	med := h.Quantile(0.5)
	if med < 35*time.Millisecond || med > 65*time.Millisecond {
		t.Errorf("reservoir p50 = %v, want within [35ms, 65ms] of true 50ms", med)
	}
	if q0, q1 := h.Quantile(0), h.Quantile(1); q0 > q1 {
		t.Errorf("quantiles unordered: p0=%v p100=%v", q0, q1)
	}
}

// TestHistogramReservoirDeterministic: two identical add sequences must
// retain identical reservoirs (seeded experiments replay bit-exactly).
func TestHistogramReservoirDeterministic(t *testing.T) {
	run := func() []time.Duration {
		var h Histogram
		h.SetMaxSamples(64)
		for i := 0; i < 10_000; i++ {
			h.Add(time.Duration(i) * time.Microsecond)
		}
		return append([]time.Duration(nil), h.samples...)
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("reservoirs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
