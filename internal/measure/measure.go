// Package measure provides the instrumentation used by experiments:
// latency histograms with quantiles, throughput meters, an RFC 3550
// jitter estimator, and a simplified ITU-T G.107 E-model that converts
// delay and loss into a VoIP MOS score (how the Vonage-degradation story
// of the paper's introduction is quantified).
package measure

import (
	"fmt"
	"math"
	"slices"
	"time"
)

// DefaultMaxSamples is the histogram's default reservoir bound: below
// it every sample is kept and quantiles are exact; above it Add switches
// to uniform reservoir sampling so memory stays capped no matter how
// many samples a metro-scale flow records.
const DefaultMaxSamples = 8192

// Histogram collects duration samples and answers quantile queries.
// The zero value is ready to use. Count, Mean and Max are always exact;
// quantiles are exact up to the sample bound (DefaultMaxSamples, or
// SetMaxSamples) and computed over a uniform reservoir beyond it.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	max     time.Duration
	added   uint64
	bound   int
	rng     uint64
}

// SetMaxSamples caps the retained reservoir at n samples (n <= 0 resets
// to DefaultMaxSamples). Call it before adding samples: shrinking a
// reservoir that already overflowed the new bound would bias it, so the
// new bound only applies to future growth.
func (h *Histogram) SetMaxSamples(n int) {
	if n <= 0 {
		n = DefaultMaxSamples
	}
	h.bound = n
}

// Add records a sample.
func (h *Histogram) Add(d time.Duration) {
	h.added++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	bound := h.bound
	if bound <= 0 {
		bound = DefaultMaxSamples
	}
	if len(h.samples) < bound {
		h.samples = append(h.samples, d)
		h.sorted = false
		return
	}
	// Reservoir sampling (Vitter's algorithm R): keep the new sample
	// with probability bound/added, replacing a uniform victim. The
	// xorshift stream is deterministically seeded, so seeded experiment
	// replays stay bit-identical.
	if j := h.nextRand() % h.added; j < uint64(len(h.samples)) {
		h.samples[j] = d
		h.sorted = false
	}
}

// nextRand advances the histogram's private xorshift64* state.
func (h *Histogram) nextRand() uint64 {
	if h.rng == 0 {
		h.rng = 0x9E3779B97F4A7C15
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	return h.rng * 0x2545F4914F6CDD1D
}

// Count returns the number of samples recorded (not the reservoir size).
func (h *Histogram) Count() int { return int(h.added) }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if h.added == 0 {
		return 0
	}
	return h.sum / time.Duration(h.added)
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		slices.Sort(h.samples)
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Meter counts events and bytes over a time span.
type Meter struct {
	count uint64
	bytes uint64
	first time.Time
	last  time.Time
	seen  bool
}

// Record adds an event of the given size at time t.
func (m *Meter) Record(t time.Time, size int) {
	if !m.seen {
		m.first, m.seen = t, true
	}
	m.last = t
	m.count++
	m.bytes += uint64(size)
}

// Count returns recorded events.
func (m *Meter) Count() uint64 { return m.count }

// Bytes returns recorded bytes.
func (m *Meter) Bytes() uint64 { return m.bytes }

// Span returns the time between first and last event.
func (m *Meter) Span() time.Duration {
	if !m.seen {
		return 0
	}
	return m.last.Sub(m.first)
}

// RatePerSec returns events/second over the span (0 if degenerate).
func (m *Meter) RatePerSec() float64 {
	s := m.Span().Seconds()
	if s <= 0 || m.count < 2 {
		return 0
	}
	return float64(m.count-1) / s
}

// BitsPerSec returns the goodput in bits/second over the span.
func (m *Meter) BitsPerSec() float64 {
	s := m.Span().Seconds()
	if s <= 0 {
		return 0
	}
	return float64(m.bytes*8) / s
}

// Jitter is the RFC 3550 interarrival jitter estimator:
// J += (|D(i-1,i)| - J) / 16.
type Jitter struct {
	lastTransit time.Duration
	j           float64
	seen        bool
}

// Update records a packet with the given one-way transit time.
func (j *Jitter) Update(transit time.Duration) {
	if !j.seen {
		j.lastTransit, j.seen = transit, true
		return
	}
	d := transit - j.lastTransit
	if d < 0 {
		d = -d
	}
	j.lastTransit = transit
	j.j += (float64(d) - j.j) / 16
}

// Value returns the current jitter estimate.
func (j *Jitter) Value() time.Duration { return time.Duration(j.j) }

// MOS computes a simplified E-model (ITU-T G.107) mean opinion score for
// a G.711 call with the given one-way mouth-to-ear delay and packet loss
// ratio (0..1). Returns a value in [1, 4.5]: below ~3.5 users complain;
// the paper's targeted-degradation scenario drives a competitor's VoIP
// below that threshold while the ISP's own service stays high.
func MOS(oneWayDelay time.Duration, loss float64) float64 {
	d := float64(oneWayDelay.Milliseconds())
	// Delay impairment Id.
	id := 0.024*d + 0.11*(d-177.3)*heaviside(d-177.3)
	// Equipment impairment Ie-eff for G.711 with packet-loss concealment:
	// Ie = 0, Bpl = 25.1 (G.113 Appendix I).
	const bpl = 25.1
	ppl := loss * 100
	ieEff := 0 + (95-0)*ppl/(ppl+bpl)
	r := 93.2 - id - ieEff
	return rToMOS(r)
}

func heaviside(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

func rToMOS(r float64) float64 {
	if r < 0 {
		return 1
	}
	if r > 100 {
		r = 100
	}
	mos := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	if mos < 1 {
		return 1
	}
	if mos > 4.5 {
		return 4.5
	}
	return mos
}

// LossCounter tracks delivered vs. expected packets.
type LossCounter struct {
	Sent     uint64
	Received uint64
}

// Loss returns the loss ratio in [0,1].
func (l *LossCounter) Loss() float64 {
	if l.Sent == 0 {
		return 0
	}
	if l.Received >= l.Sent {
		return 0
	}
	return float64(l.Sent-l.Received) / float64(l.Sent)
}
