// Package measure provides the instrumentation used by experiments:
// latency histograms with quantiles, throughput meters, an RFC 3550
// jitter estimator, and a simplified ITU-T G.107 E-model that converts
// delay and loss into a VoIP MOS score (how the Vonage-degradation story
// of the paper's introduction is quantified).
package measure

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Histogram collects duration samples and answers quantile queries.
// It stores raw samples (experiments are small); the zero value is ready
// to use.
type Histogram struct {
	samples []time.Duration
	sorted  bool
	sum     time.Duration
	max     time.Duration
}

// Add records a sample.
func (h *Histogram) Add(d time.Duration) {
	h.samples = append(h.samples, d)
	h.sorted = false
	h.sum += d
	if d > h.max {
		h.max = d
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() int { return len(h.samples) }

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	return h.sum / time.Duration(len(h.samples))
}

// Max returns the largest sample.
func (h *Histogram) Max() time.Duration { return h.max }

// Quantile returns the q-quantile (0 <= q <= 1) by nearest-rank, or 0
// with no samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	if len(h.samples) == 0 {
		return 0
	}
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
	if q <= 0 {
		return h.samples[0]
	}
	if q >= 1 {
		return h.samples[len(h.samples)-1]
	}
	idx := int(math.Ceil(q*float64(len(h.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	return h.samples[idx]
}

// String summarizes the histogram.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		h.Count(), h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
}

// Meter counts events and bytes over a time span.
type Meter struct {
	count uint64
	bytes uint64
	first time.Time
	last  time.Time
	seen  bool
}

// Record adds an event of the given size at time t.
func (m *Meter) Record(t time.Time, size int) {
	if !m.seen {
		m.first, m.seen = t, true
	}
	m.last = t
	m.count++
	m.bytes += uint64(size)
}

// Count returns recorded events.
func (m *Meter) Count() uint64 { return m.count }

// Bytes returns recorded bytes.
func (m *Meter) Bytes() uint64 { return m.bytes }

// Span returns the time between first and last event.
func (m *Meter) Span() time.Duration {
	if !m.seen {
		return 0
	}
	return m.last.Sub(m.first)
}

// RatePerSec returns events/second over the span (0 if degenerate).
func (m *Meter) RatePerSec() float64 {
	s := m.Span().Seconds()
	if s <= 0 || m.count < 2 {
		return 0
	}
	return float64(m.count-1) / s
}

// BitsPerSec returns the goodput in bits/second over the span.
func (m *Meter) BitsPerSec() float64 {
	s := m.Span().Seconds()
	if s <= 0 {
		return 0
	}
	return float64(m.bytes*8) / s
}

// Jitter is the RFC 3550 interarrival jitter estimator:
// J += (|D(i-1,i)| - J) / 16.
type Jitter struct {
	lastTransit time.Duration
	j           float64
	seen        bool
}

// Update records a packet with the given one-way transit time.
func (j *Jitter) Update(transit time.Duration) {
	if !j.seen {
		j.lastTransit, j.seen = transit, true
		return
	}
	d := transit - j.lastTransit
	if d < 0 {
		d = -d
	}
	j.lastTransit = transit
	j.j += (float64(d) - j.j) / 16
}

// Value returns the current jitter estimate.
func (j *Jitter) Value() time.Duration { return time.Duration(j.j) }

// MOS computes a simplified E-model (ITU-T G.107) mean opinion score for
// a G.711 call with the given one-way mouth-to-ear delay and packet loss
// ratio (0..1). Returns a value in [1, 4.5]: below ~3.5 users complain;
// the paper's targeted-degradation scenario drives a competitor's VoIP
// below that threshold while the ISP's own service stays high.
func MOS(oneWayDelay time.Duration, loss float64) float64 {
	d := float64(oneWayDelay.Milliseconds())
	// Delay impairment Id.
	id := 0.024*d + 0.11*(d-177.3)*heaviside(d-177.3)
	// Equipment impairment Ie-eff for G.711 with packet-loss concealment:
	// Ie = 0, Bpl = 25.1 (G.113 Appendix I).
	const bpl = 25.1
	ppl := loss * 100
	ieEff := 0 + (95-0)*ppl/(ppl+bpl)
	r := 93.2 - id - ieEff
	return rToMOS(r)
}

func heaviside(x float64) float64 {
	if x > 0 {
		return 1
	}
	return 0
}

func rToMOS(r float64) float64 {
	if r < 0 {
		return 1
	}
	if r > 100 {
		r = 100
	}
	mos := 1 + 0.035*r + r*(r-60)*(100-r)*7e-6
	if mos < 1 {
		return 1
	}
	if mos > 4.5 {
		return 4.5
	}
	return mos
}

// LossCounter tracks delivered vs. expected packets.
type LossCounter struct {
	Sent     uint64
	Received uint64
}

// Loss returns the loss ratio in [0,1].
func (l *LossCounter) Loss() float64 {
	if l.Sent == 0 {
		return 0
	}
	if l.Received >= l.Sent {
		return 0
	}
	return float64(l.Sent-l.Received) / float64(l.Sent)
}
