package measure

import (
	"testing"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("zero-value histogram should report zeros")
	}
	for i := 1; i <= 100; i++ {
		h.Add(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Errorf("Count = %d", h.Count())
	}
	if got, want := h.Mean(), 50500*time.Microsecond; got != want {
		t.Errorf("Mean = %v, want %v", got, want)
	}
	if got := h.Quantile(0.5); got != 50*time.Millisecond {
		t.Errorf("p50 = %v", got)
	}
	if got := h.Quantile(0.95); got != 95*time.Millisecond {
		t.Errorf("p95 = %v", got)
	}
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("p0 = %v", got)
	}
	if got := h.Quantile(1); got != 100*time.Millisecond {
		t.Errorf("p100 = %v", got)
	}
	if h.Max() != 100*time.Millisecond {
		t.Errorf("Max = %v", h.Max())
	}
	if h.String() == "" {
		t.Error("String empty")
	}
}

func TestHistogramQuantileAfterMoreAdds(t *testing.T) {
	var h Histogram
	h.Add(10 * time.Millisecond)
	_ = h.Quantile(0.5) // sorts
	h.Add(1 * time.Millisecond)
	if got := h.Quantile(0); got != time.Millisecond {
		t.Errorf("histogram must re-sort after Add: p0 = %v", got)
	}
}

func TestMeter(t *testing.T) {
	var m Meter
	t0 := time.Unix(0, 0)
	if m.RatePerSec() != 0 || m.BitsPerSec() != 0 {
		t.Error("empty meter rates should be 0")
	}
	// 11 events over 10 seconds = 1 interarrival/sec.
	for i := 0; i <= 10; i++ {
		m.Record(t0.Add(time.Duration(i)*time.Second), 125)
	}
	if m.Count() != 11 || m.Bytes() != 11*125 {
		t.Errorf("count=%d bytes=%d", m.Count(), m.Bytes())
	}
	if got := m.RatePerSec(); got != 1.0 {
		t.Errorf("RatePerSec = %v", got)
	}
	if got := m.BitsPerSec(); got != float64(11*125*8)/10 {
		t.Errorf("BitsPerSec = %v", got)
	}
	if m.Span() != 10*time.Second {
		t.Errorf("Span = %v", m.Span())
	}
}

func TestJitterConstantTransitIsZero(t *testing.T) {
	var j Jitter
	for i := 0; i < 50; i++ {
		j.Update(20 * time.Millisecond)
	}
	if j.Value() != 0 {
		t.Errorf("constant transit should have zero jitter, got %v", j.Value())
	}
}

func TestJitterGrowsWithVariance(t *testing.T) {
	var j Jitter
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			j.Update(20 * time.Millisecond)
		} else {
			j.Update(30 * time.Millisecond)
		}
	}
	// RFC 3550 converges toward |D| = 10ms.
	if j.Value() < 5*time.Millisecond || j.Value() > 10*time.Millisecond {
		t.Errorf("jitter = %v, want ~[5ms,10ms]", j.Value())
	}
}

func TestMOSCleanCallIsGood(t *testing.T) {
	mos := MOS(20*time.Millisecond, 0)
	if mos < 4.2 {
		t.Errorf("clean call MOS = %v, want >= 4.2", mos)
	}
}

func TestMOSDegradesWithLoss(t *testing.T) {
	clean := MOS(20*time.Millisecond, 0)
	lossy := MOS(20*time.Millisecond, 0.05)
	awful := MOS(20*time.Millisecond, 0.25)
	if !(clean > lossy && lossy > awful) {
		t.Errorf("MOS ordering violated: %v %v %v", clean, lossy, awful)
	}
	if awful > 3.0 {
		t.Errorf("25%% loss should be below 3.0, got %v", awful)
	}
}

func TestMOSDegradesWithDelay(t *testing.T) {
	fast := MOS(20*time.Millisecond, 0)
	slow := MOS(400*time.Millisecond, 0)
	if !(fast > slow) {
		t.Errorf("MOS(20ms)=%v should beat MOS(400ms)=%v", fast, slow)
	}
	if slow > 4.0 {
		t.Errorf("400ms one-way delay should hurt: %v", slow)
	}
}

func TestMOSBounds(t *testing.T) {
	if got := MOS(5*time.Second, 1.0); got != 1 {
		t.Errorf("worst case MOS = %v, want 1", got)
	}
	if got := MOS(0, 0); got > 4.5 {
		t.Errorf("MOS ceiling exceeded: %v", got)
	}
}

func TestLossCounter(t *testing.T) {
	l := LossCounter{Sent: 100, Received: 90}
	if got := l.Loss(); got != 0.1 {
		t.Errorf("Loss = %v", got)
	}
	if (&LossCounter{}).Loss() != 0 {
		t.Error("empty counter loss != 0")
	}
	over := LossCounter{Sent: 10, Received: 12} // duplicates
	if over.Loss() != 0 {
		t.Error("over-receive should clamp to 0")
	}
}
