package measure

import (
	"testing"
	"time"

	"netneutral/internal/obs"
)

// TestHistogramExport pins the registry bridge: exported quantiles match
// the histogram's own within the log-bucket relative error bound.
func TestHistogramExport(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Add(time.Duration(i) * time.Microsecond)
	}
	reg := obs.NewRegistry()
	h.Export(reg, "e2e_delay_ns", "End-to-end delivery delay.")

	m := reg.Snapshot().Get("e2e_delay_ns")
	if m == nil || m.Hist == nil {
		t.Fatalf("registry missing histogram family: %+v", m)
	}
	if m.Hist.Count != uint64(h.Count()) {
		t.Errorf("exported count %d, histogram retained %d", m.Hist.Count, h.Count())
	}
	for _, q := range []struct {
		got  float64
		want time.Duration
	}{
		{m.Hist.P50, h.Quantile(0.50)},
		{m.Hist.P95, h.Quantile(0.95)},
		{m.Hist.P99, h.Quantile(0.99)},
	} {
		lo, hi := float64(q.want)*0.85, float64(q.want)*1.15
		if q.got < lo || q.got > hi {
			t.Errorf("exported quantile %v outside 15%% of exact %v", q.got, q.want)
		}
	}
}
