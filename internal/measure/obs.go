package measure

import "netneutral/internal/obs"

// Export publishes the histogram's retained samples as a fresh stripe of
// the named log-bucketed histogram family on reg, making its p50/p95/p99
// summaries available to every exporter (Prometheus text, JSON snapshots,
// NDJSON streams).
//
// Samples are recorded in nanoseconds through the registry's log-bucket
// transform, so exported quantiles carry its bounded relative error
// (≤12.5%) on top of any reservoir sampling the histogram already did;
// the stripe's count and sum reflect the retained reservoir, not the
// total Add count (Count() has that). Export is a one-shot dump of
// end-of-run state — call it once per histogram, after measurement
// completes; repeated exports of the same histogram into the same family
// double-count.
func (h *Histogram) Export(reg *obs.Registry, name, help string) {
	st := reg.Histogram(name, help).NewStripe()
	for _, d := range h.samples {
		st.Observe(int64(d))
	}
}
