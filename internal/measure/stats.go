// Nonparametric two-sample tests for the neutrality auditor (package
// audit): given per-trial measurements of a suspect flow and a control
// flow, decide whether they were drawn from the same network. Goodput
// and delay distributions under throttling are anything but normal —
// bimodal under duty-cycled throttlers, point masses under loss-free
// paths — so the auditor uses rank and distribution tests, not t-tests.

package measure

import (
	"math"
	"slices"
)

// TestResult is the outcome of a two-sample test.
type TestResult struct {
	// Stat is the test statistic: U (the smaller of U1/U2) for
	// Mann-Whitney, D (the maximum CDF distance) for Kolmogorov-Smirnov.
	Stat float64
	// P is the two-sided p-value under the null hypothesis that both
	// samples come from the same distribution.
	P float64
	// Effect is a scale-free effect size: the rank-biserial correlation
	// for Mann-Whitney (positive when x tends larger than y, in [-1,1]),
	// and D itself for Kolmogorov-Smirnov.
	Effect float64
}

// MannWhitney runs the Mann-Whitney U test (Wilcoxon rank-sum) on two
// independent samples, using the normal approximation with mid-ranks,
// tie correction, and continuity correction. Degenerate inputs (an
// empty sample, or all values tied) return P = 1.
func MannWhitney(x, y []float64) TestResult {
	n1, n2 := float64(len(x)), float64(len(y))
	if n1 == 0 || n2 == 0 {
		return TestResult{P: 1}
	}
	type obs struct {
		v    float64
		inX  bool
		rank float64
	}
	all := make([]obs, 0, len(x)+len(y))
	for _, v := range x {
		all = append(all, obs{v: v, inX: true})
	}
	for _, v := range y {
		all = append(all, obs{v: v})
	}
	slices.SortFunc(all, func(a, b obs) int {
		switch {
		case a.v < b.v:
			return -1
		case a.v > b.v:
			return 1
		default:
			return 0
		}
	})
	// Mid-ranks over tie groups, accumulating the tie correction term
	// sum(t^3 - t) as each group closes.
	n := len(all)
	tieTerm := 0.0
	for i := 0; i < n; {
		j := i
		for j < n && all[j].v == all[i].v {
			j++
		}
		mid := float64(i+j+1) / 2 // average of 1-based ranks i+1..j
		for k := i; k < j; k++ {
			all[k].rank = mid
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		i = j
	}
	r1 := 0.0
	for _, o := range all {
		if o.inX {
			r1 += o.rank
		}
	}
	u1 := r1 - n1*(n1+1)/2
	u2 := n1*n2 - u1
	u := math.Min(u1, u2)
	nn := n1 + n2
	mu := n1 * n2 / 2
	sigma2 := n1 * n2 / 12 * ((nn + 1) - tieTerm/(nn*(nn-1)))
	res := TestResult{Stat: u, Effect: 2*u1/(n1*n2) - 1}
	if sigma2 <= 0 {
		res.P = 1
		return res
	}
	// Continuity correction: shrink |U - mu| by 0.5.
	z := (math.Abs(u-mu) - 0.5) / math.Sqrt(sigma2)
	if z < 0 {
		z = 0
	}
	res.P = math.Erfc(z / math.Sqrt2)
	return res
}

// KolmogorovSmirnov runs the two-sample Kolmogorov-Smirnov test: D is
// the largest distance between the empirical CDFs, and P uses the
// asymptotic Kolmogorov distribution with the Stephens small-sample
// adjustment. Sensitive to any distributional difference — including
// the shape changes (bimodality) a duty-cycled throttler produces
// without moving the mean much.
func KolmogorovSmirnov(x, y []float64) TestResult {
	n1, n2 := float64(len(x)), float64(len(y))
	if n1 == 0 || n2 == 0 {
		return TestResult{P: 1}
	}
	xs := slices.Clone(x)
	ys := slices.Clone(y)
	slices.Sort(xs)
	slices.Sort(ys)
	d, i, j := 0.0, 0, 0
	for i < len(xs) && j < len(ys) {
		v := math.Min(xs[i], ys[j])
		for i < len(xs) && xs[i] <= v {
			i++
		}
		for j < len(ys) && ys[j] <= v {
			j++
		}
		if diff := math.Abs(float64(i)/n1 - float64(j)/n2); diff > d {
			d = diff
		}
	}
	en := math.Sqrt(n1 * n2 / (n1 + n2))
	lambda := (en + 0.12 + 0.11/en) * d
	return TestResult{Stat: d, P: ksProb(lambda), Effect: d}
}

// ksProb is Q_KS(lambda) = 2 * sum_{j>=1} (-1)^{j-1} exp(-2 j^2 lambda^2),
// the asymptotic tail probability of the Kolmogorov distribution.
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	a2 := -2 * lambda * lambda
	sum, sign, prev := 0.0, 1.0, 1.0
	for j := 1; j <= 100; j++ {
		term := sign * math.Exp(a2*float64(j)*float64(j))
		sum += term
		if math.Abs(term) <= 1e-12*math.Abs(sum) && math.Abs(term) <= 0.1*prev {
			break
		}
		prev = math.Abs(term)
		sign = -sign
	}
	p := 2 * sum
	switch {
	case p < 0:
		return 0
	case p > 1:
		return 1
	default:
		return p
	}
}

// Median returns the sample median (mean of the two central order
// statistics for even n), or 0 for an empty sample. The auditor's
// effect thresholds compare medians: robust to the outlier trials a
// probabilistic throttler produces.
func Median(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	s := slices.Clone(x)
	slices.Sort(s)
	m := len(s) / 2
	if len(s)%2 == 1 {
		return s[m]
	}
	return (s[m-1] + s[m]) / 2
}
