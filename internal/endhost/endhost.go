// Package endhost implements the modified host software the paper
// assumes: the client- and server-side shim stack that speaks to
// neutralizers.
//
// A Host plays either (or both) of two roles:
//
//   - An outside host (the paper's Ann, inside a discriminatory ISP)
//     performs Figure 2(a) key setup with a destination's neutralizer,
//     then sends Data packets whose real destination is encrypted under
//     the session key. The first packets carry a key request; once the
//     destination returns the neutralizer-stamped grant under end-to-end
//     encryption, the host retires the short-RSA-protected key (§3.2).
//
//   - A customer host (the paper's Google, inside the friendly ISP)
//     receives Delivered packets, replies via Return packets through the
//     neutralizer, returns stamped key grants to initiators inside the
//     end-to-end envelope, optionally serves as an offload helper for the
//     neutralizer's RSA work, and can itself initiate conversations with
//     outside hosts via the §3.3 plaintext key fetch.
//
// Application payloads ride in frames that are sealed end-to-end as soon
// as a session exists (the first packet of a conversation carries the key
// offer that creates it), so a discriminatory ISP sees neither contents
// nor the returned grants.
//
// A Host is NOT safe for concurrent use: drive it — HandlePacket
// included — from a single goroutine (an event loop or the netem
// simulator), which also keeps in-process packet chains re-entrant.
package endhost

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"time"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/crypto/lightrsa"
	"netneutral/internal/e2e"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// Errors returned by this package.
var (
	ErrNoConduit       = errors.New("endhost: no conduit to that neutralizer (run Setup first)")
	ErrNoConversation  = errors.New("endhost: no conversation with that peer")
	ErrSetupPending    = errors.New("endhost: key setup already in flight")
	ErrNotReady        = errors.New("endhost: conduit not established yet")
	ErrNeedIdentity    = errors.New("endhost: operation requires an e2e identity")
	ErrBadFrame        = errors.New("endhost: malformed application frame")
	ErrUnknownNonce    = errors.New("endhost: packet references unknown nonce")
	ErrInitPending     = errors.New("endhost: reverse initiation already pending")
	ErrNotOurAddress   = errors.New("endhost: packet not addressed to this host")
	ErrPayloadTooLarge = errors.New("endhost: payload too large for a frame")
)

// Transport emits a serialized IPv4 packet into the network.
type Transport func(pkt []byte) error

// Config configures a Host.
type Config struct {
	// Addr is the host's IPv4 address. Required.
	Addr netip.Addr
	// Transport sends packets. Required.
	Transport Transport
	// Identity is the host's long-term e2e key pair; required for
	// receiving forward conversations and for reverse initiation.
	Identity *e2e.Identity
	// Clock supplies time (virtual under netem). Defaults to time.Now.
	Clock func() time.Time
	// Rand supplies entropy. Defaults to crypto/rand.Reader.
	Rand io.Reader
	// RSABits sizes the one-time setup keys (default lightrsa.DefaultBits).
	RSABits int
	// OnData delivers received application data: peer is the real remote
	// address (never the anycast).
	OnData func(peer netip.Addr, data []byte)
	// ServeOffload makes this (customer) host answer offloaded key-setup
	// requests on the neutralizer's behalf (§3.2).
	ServeOffload bool
	// AnycastForOffload is the service address used as the source of
	// offload responses so the source sees them come from the service.
	AnycastForOffload netip.Addr
	// ReturnFlags are shim flags applied to outgoing Return packets
	// (e.g. shim.FlagDynamicAddr or shim.FlagNoAnonymize for §3.4).
	ReturnFlags uint8
}

// Stats counts host-level protocol events.
type Stats struct {
	SetupsStarted   uint64
	SetupsCompleted uint64
	DataSent        uint64
	DataReceived    uint64
	GrantsApplied   uint64
	GrantsReturned  uint64
	OffloadsServed  uint64
	ReverseInits    uint64
	FramesRejected  uint64
}

// conduit is the client's credential with one neutralizer service:
// (nonce, Ks, epoch), plus the previous pair so in-flight replies keyed
// under a just-retired nonce still decrypt.
type conduit struct {
	neut        netip.Addr
	nonce       keys.Nonce
	key         aesutil.Key
	epoch       keys.Epoch
	provisional bool // still protected only by the one-time short RSA key
	prevNonce   keys.Nonce
	prevKey     aesutil.Key
	hasPrev     bool
}

// conv is one conversation with a remote peer.
type conv struct {
	peer    netip.Addr
	neut    netip.Addr // service address to send through
	nonce   keys.Nonce // last nonce seen from/used toward this peer
	epoch   keys.Epoch
	sess    *e2e.Session
	peerPub e2e.PublicKey // set on the initiating side before first send
	// pendingGrant is a grant received in a Delivered packet that must be
	// returned to the initiator in the next reply (customer side).
	pendingGrant      shim.Grant
	pendingGrantEpoch keys.Epoch
	hasPendingGrant   bool
	customerSide      bool
}

// Host is an end host speaking the neutralizer protocol.
type Host struct {
	cfg   Config
	stats Stats

	conduits     map[netip.Addr]*conduit             // by neutralizer service addr
	pendingSetup map[netip.Addr]*lightrsa.PrivateKey // by neutralizer service addr
	convs        map[netip.Addr]*conv                // by peer address
	pendingInit  map[netip.Addr][]byte               // reverse-init queued first payload
	pendingPub   map[netip.Addr]e2e.PublicKey        // reverse-init peer public keys
}

// NewHost creates a Host.
func NewHost(cfg Config) (*Host, error) {
	if !cfg.Addr.Is4() {
		return nil, errors.New("endhost: Config.Addr must be IPv4")
	}
	if cfg.Transport == nil {
		return nil, errors.New("endhost: Config.Transport is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Rand == nil {
		cfg.Rand = rand.Reader
	}
	if cfg.RSABits == 0 {
		cfg.RSABits = lightrsa.DefaultBits
	}
	return &Host{
		cfg:          cfg,
		conduits:     make(map[netip.Addr]*conduit),
		pendingSetup: make(map[netip.Addr]*lightrsa.PrivateKey),
		convs:        make(map[netip.Addr]*conv),
		pendingInit:  make(map[netip.Addr][]byte),
		pendingPub:   make(map[netip.Addr]e2e.PublicKey),
	}, nil
}

// Stats returns a snapshot of the host's counters.
func (h *Host) Stats() Stats { return h.stats }

// Addr returns the host's address.
func (h *Host) Addr() netip.Addr { return h.cfg.Addr }

// Identity returns the host's published public key (the zero PublicKey if
// the host has no identity).
func (h *Host) Identity() e2e.PublicKey {
	if h.cfg.Identity == nil {
		return e2e.PublicKey{}
	}
	return h.cfg.Identity.Public()
}

// SetOnData replaces the application data callback.
func (h *Host) SetOnData(fn func(peer netip.Addr, data []byte)) { h.cfg.OnData = fn }

// --- outside-host (client) API -----------------------------------------

// Setup begins Figure 2(a): generate a one-time short RSA key and send it
// to the neutralizer service at neut.
func (h *Host) Setup(neut netip.Addr) error {
	if _, ok := h.pendingSetup[neut]; ok {
		return ErrSetupPending
	}
	priv, err := lightrsa.GenerateKey(h.cfg.Rand, h.cfg.RSABits)
	if err != nil {
		return fmt.Errorf("endhost: one-time key: %w", err)
	}
	h.pendingSetup[neut] = priv
	h.stats.SetupsStarted++
	sh := &shim.Header{Type: shim.TypeKeySetupRequest, PublicKey: priv.PublicKey.Marshal()}
	return h.sendShim(neut, 0, sh, nil)
}

// HasConduit reports whether key setup with neut has completed.
func (h *Host) HasConduit(neut netip.Addr) bool {
	_, ok := h.conduits[neut]
	return ok
}

// ConduitProvisional reports whether the conduit still relies on the
// short-RSA-protected key (no grant applied yet).
func (h *Host) ConduitProvisional(neut netip.Addr) bool {
	c, ok := h.conduits[neut]
	return ok && c.provisional
}

// Connect registers the intent to talk to peer (a customer of the
// neutralizer at neut) using the peer's published public key, as obtained
// from DNS bootstrap (§3.1).
func (h *Host) Connect(neut, peer netip.Addr, peerPub e2e.PublicKey) error {
	if _, ok := h.conduits[neut]; !ok {
		if _, pending := h.pendingSetup[neut]; !pending {
			return ErrNoConduit
		}
	}
	c := h.convs[peer]
	if c == nil {
		c = &conv{peer: peer, neut: neut}
		h.convs[peer] = c
	}
	c.neut = neut
	c.peerPub = peerPub
	return nil
}

// Send transmits application data to peer through the conversation's
// neutralizer. On the outside host the destination address is encrypted
// under the conduit key; on the customer side the packet takes the
// Return path.
func (h *Host) Send(peer netip.Addr, data []byte) error {
	c, ok := h.convs[peer]
	if !ok {
		return ErrNoConversation
	}
	if len(data) > 0xFFFF-64 {
		return ErrPayloadTooLarge
	}
	if c.customerSide {
		return h.sendReturn(c, data)
	}
	return h.sendForward(c, data)
}

func (h *Host) sendForward(c *conv, data []byte) error {
	cd, ok := h.conduits[c.neut]
	if !ok {
		return ErrNotReady
	}
	var salt [8]byte
	if _, err := io.ReadFull(h.cfg.Rand, salt[:]); err != nil {
		return err
	}
	blk, err := aesutil.EncryptAddr(cd.key, c.peer, salt)
	if err != nil {
		return err
	}
	var fl uint8
	if cd.provisional {
		fl |= shim.FlagKeyRequest
	}
	frame, err := h.buildFrame(c, data)
	if err != nil {
		return err
	}
	sh := &shim.Header{
		Type: shim.TypeData, Flags: fl,
		Epoch: cd.epoch, Nonce: cd.nonce, HiddenAddr: blk,
	}
	if err := h.sendShim(c.neut, 0, sh, frame); err != nil {
		return err
	}
	h.stats.DataSent++
	return nil
}

func (h *Host) sendReturn(c *conv, data []byte) error {
	frame, err := h.buildFrame(c, data)
	if err != nil {
		return err
	}
	sh := &shim.Header{
		Type: shim.TypeReturn, Flags: h.cfg.ReturnFlags,
		Epoch: c.epoch, Nonce: c.nonce, ClearAddr: c.peer,
	}
	if err := h.sendShim(c.neut, 0, sh, frame); err != nil {
		return err
	}
	h.stats.DataSent++
	return nil
}

// --- customer-host API ---------------------------------------------------

// InitiateTo starts a §3.3 reverse-direction conversation from a customer
// host to an outside peer: fetch (nonce, Ks) from the neutralizer in
// plaintext, then send firstData with the key material encrypted under
// the peer's public key.
func (h *Host) InitiateTo(neut, peer netip.Addr, peerPub e2e.PublicKey, firstData []byte) error {
	if _, ok := h.pendingInit[peer]; ok {
		return ErrInitPending
	}
	h.pendingInit[peer] = append([]byte(nil), firstData...)
	h.pendingPub[peer] = peerPub
	c := h.convs[peer]
	if c == nil {
		c = &conv{peer: peer, neut: neut, customerSide: true}
		h.convs[peer] = c
	}
	c.neut = neut
	c.customerSide = true
	sh := &shim.Header{Type: shim.TypeKeyFetchRequest, ClearAddr: peer}
	return h.sendShim(neut, 0, sh, nil)
}

// --- packet input --------------------------------------------------------

// HandlePacket feeds one received serialized IPv4 packet into the host.
// Unknown or undecodable packets are counted and dropped, mirroring how a
// real stack ignores noise.
func (h *Host) HandlePacket(now time.Time, pkt []byte) {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil {
		h.stats.FramesRejected++
		return
	}
	if ip.Protocol != wire.ProtoShim {
		return // not ours
	}
	var sh shim.Header
	if err := sh.DecodeFromBytes(ip.Payload()); err != nil {
		h.stats.FramesRejected++
		return
	}
	switch sh.Type {
	case shim.TypeKeySetupResponse:
		h.onSetupResponse(&ip, &sh)
	case shim.TypeKeySetupRequest:
		if sh.Flags&shim.FlagOffloaded != 0 && h.cfg.ServeOffload {
			h.onOffloadRequest(&ip, &sh)
		}
	case shim.TypeDelivered:
		h.onDelivered(&ip, &sh)
	case shim.TypeReturnDelivered:
		h.onReturnDelivered(&ip, &sh)
	case shim.TypeKeyFetchResponse:
		h.onKeyFetchResponse(&ip, &sh)
	default:
		h.stats.FramesRejected++
	}
}

// onSetupResponse completes Figure 2(a) on the client.
func (h *Host) onSetupResponse(ip *wire.IPv4, sh *shim.Header) {
	neut := ip.Src
	priv, ok := h.pendingSetup[neut]
	if !ok {
		h.stats.FramesRejected++
		return
	}
	pt, err := priv.Decrypt(sh.Ciphertext)
	if err != nil {
		h.stats.FramesRejected++
		return
	}
	nonce, ks, err := shim.DecodeSetupPlaintext(pt)
	if err != nil {
		h.stats.FramesRejected++
		return
	}
	delete(h.pendingSetup, neut)
	h.conduits[neut] = &conduit{
		neut: neut, nonce: nonce, key: ks, epoch: sh.Epoch, provisional: true,
	}
	h.stats.SetupsCompleted++
}

// onOffloadRequest performs the neutralizer's RSA encryption on its
// behalf (§3.2) and answers the source directly, with the service address
// as the visible source.
func (h *Host) onOffloadRequest(ip *wire.IPv4, sh *shim.Header) {
	pub, _, err := lightrsa.UnmarshalPublicKey(sh.PublicKey)
	if err != nil {
		h.stats.FramesRejected++
		return
	}
	ct, err := pub.Encrypt(h.cfg.Rand, shim.EncodeSetupPlaintext(sh.Grant.Nonce, sh.Grant.Key))
	if err != nil {
		h.stats.FramesRejected++
		return
	}
	src := h.cfg.AnycastForOffload
	if !src.IsValid() {
		src = h.cfg.Addr
	}
	resp := &shim.Header{Type: shim.TypeKeySetupResponse, Epoch: sh.Epoch, Ciphertext: ct}
	pkt, err := buildShimPacket(src, ip.Src, 0, resp, nil)
	if err != nil {
		return
	}
	if err := h.cfg.Transport(pkt); err != nil {
		return
	}
	h.stats.OffloadsServed++
}

// onDelivered handles a forward-path packet arriving at a customer.
func (h *Host) onDelivered(ip *wire.IPv4, sh *shim.Header) {
	if ip.Dst != h.cfg.Addr {
		h.stats.FramesRejected++
		return
	}
	peer := ip.Src
	c := h.convs[peer]
	if c == nil {
		c = &conv{peer: peer, customerSide: true}
		h.convs[peer] = c
	}
	c.customerSide = true
	c.neut = sh.ClearAddr // the service address for returns
	c.nonce = sh.Nonce
	c.epoch = sh.Epoch
	if sh.HasGrant() {
		// The grant is the *initiator's* refresh material; return it under
		// e2e cover with the next reply.
		c.pendingGrant = sh.Grant
		c.pendingGrantEpoch = sh.Epoch
		c.hasPendingGrant = true
	}
	data, err := h.openFrame(c, sh.Payload())
	if err != nil {
		h.stats.FramesRejected++
		return
	}
	h.stats.DataReceived++
	if h.cfg.OnData != nil && data != nil {
		h.cfg.OnData(peer, data)
	}
}

// onReturnDelivered handles a return-path packet arriving at an outside
// host: locate Ks by (neutralizer address, nonce), decrypt the hidden
// source, then open the frame. If the nonce is unknown, this may be a
// reverse-direction first packet: try the identity key (§3.3).
func (h *Host) onReturnDelivered(ip *wire.IPv4, sh *shim.Header) {
	if ip.Dst != h.cfg.Addr {
		h.stats.FramesRejected++
		return
	}
	neut := ip.Src // anycast (or dynamic) service address
	if cd, ok := h.conduits[neut]; ok {
		var key aesutil.Key
		matched := false
		switch sh.Nonce {
		case cd.nonce:
			key, matched = cd.key, true
		case cd.prevNonce:
			if cd.hasPrev {
				key, matched = cd.prevKey, true
			}
		}
		if matched {
			peer, _, err := aesutil.DecryptAddr(key, sh.HiddenAddr)
			if err != nil {
				h.stats.FramesRejected++
				return
			}
			c := h.convs[peer]
			if c == nil {
				c = &conv{peer: peer, neut: neut}
				h.convs[peer] = c
			}
			data, err := h.openFrame(c, sh.Payload())
			if err != nil {
				h.stats.FramesRejected++
				return
			}
			h.stats.DataReceived++
			if h.cfg.OnData != nil && data != nil {
				h.cfg.OnData(peer, data)
			}
			return
		}
	}
	// Unknown nonce: §3.3 — attempt identity decryption of a reverse-
	// direction first packet.
	if h.cfg.Identity == nil {
		h.stats.FramesRejected++
		return
	}
	if err := h.acceptReverseInit(neut, sh); err != nil {
		h.stats.FramesRejected++
	}
}

// onKeyFetchResponse completes a reverse initiation on the customer side.
func (h *Host) onKeyFetchResponse(ip *wire.IPv4, sh *shim.Header) {
	// Match the response to a pending initiation (one at a time per peer;
	// the fetch carries no correlation token — acceptable because fetches
	// stay inside the friendly domain).
	for peer, firstData := range h.pendingInit {
		c := h.convs[peer]
		if c == nil || c.neut != ip.Src {
			continue
		}
		delete(h.pendingInit, peer)
		pub := h.pendingPub[peer]
		delete(h.pendingPub, peer)
		c.nonce = sh.Grant.Nonce
		c.epoch = sh.Epoch
		if err := h.sendReverseFirst(c, pub, sh.Grant, sh.Epoch, firstData); err == nil {
			h.stats.ReverseInits++
		}
		return
	}
	h.stats.FramesRejected++
}

func (h *Host) sendShim(dst netip.Addr, tos uint8, sh *shim.Header, payload []byte) error {
	pkt, err := buildShimPacket(h.cfg.Addr, dst, tos, sh, payload)
	if err != nil {
		return err
	}
	return h.cfg.Transport(pkt)
}

func buildShimPacket(src, dst netip.Addr, tos uint8, sh *shim.Header, payload []byte) ([]byte, error) {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+shim.HeaderLen+96, len(payload))
	buf.PushPayload(payload)
	if err := sh.SerializeTo(buf); err != nil {
		return nil, err
	}
	ip := &wire.IPv4{TOS: tos, TTL: wire.MaxTTL, Protocol: wire.ProtoShim, Src: src, Dst: dst}
	if err := ip.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
