package endhost

import (
	"bytes"
	mathrand "math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/e2e"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

var (
	tStart   = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	anycast  = netip.MustParseAddr("10.200.0.1")
	annAddr  = netip.MustParseAddr("172.16.1.10")
	googAddr = netip.MustParseAddr("10.10.0.5")
	custNet  = netip.MustParsePrefix("10.10.0.0/16")
)

// world wires hosts and a neutralizer together with a synchronous
// in-memory network, recording every packet that crosses the "outside"
// segment (between an outside host and the neutralizer) for
// eavesdropping assertions.
type world struct {
	t       *testing.T
	neut    *core.Neutralizer
	hosts   map[netip.Addr]*Host
	outside map[netip.Addr]bool // addresses on the discriminatory side
	tapped  [][]byte            // packets visible to the discriminatory ISP
}

func newWorld(t *testing.T) *world {
	t.Helper()
	w := &world{t: t, hosts: make(map[netip.Addr]*Host), outside: map[netip.Addr]bool{annAddr: true}}
	sched := keys.NewSchedule(aesutil.Key{7}, tStart, time.Hour)
	n, err := core.New(core.Config{
		Schedule:   sched,
		Anycast:    anycast,
		IsCustomer: func(a netip.Addr) bool { return custNet.Contains(a) },
		Clock:      func() time.Time { return tStart.Add(10 * time.Minute) },
		Rand:       mathrand.New(mathrand.NewSource(7)),
	})
	if err != nil {
		t.Fatal(err)
	}
	w.neut = n
	return w
}

// route delivers a packet: neutralizer traffic through Process, the rest
// to the destination host. A packet is tapped when it physically crosses
// the discriminatory segment: from an outside host toward the service, or
// delivered to an outside host. (A Delivered packet src=Ann dst=Google
// travels only inside the friendly ISP and is not visible outside.)
func (w *world) route(pkt []byte) error {
	src, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return err
	}
	if (dst == anycast && w.outside[src]) || w.outside[dst] {
		w.tapped = append(w.tapped, bytes.Clone(pkt))
	}
	if dst == anycast {
		outs, err := w.neut.Process(pkt)
		if err != nil {
			return err
		}
		for _, o := range outs {
			if err := w.route(o.Pkt); err != nil {
				return err
			}
		}
		return nil
	}
	if h, ok := w.hosts[dst]; ok {
		h.HandlePacket(tStart, pkt)
	}
	return nil
}

func (w *world) addHost(t *testing.T, addr netip.Addr, outside bool, mut func(*Config)) (*Host, *[][]byte) {
	t.Helper()
	var received [][]byte
	id, err := e2e.NewIdentity(nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Addr:      addr,
		Transport: w.route,
		Identity:  id,
		Clock:     func() time.Time { return tStart },
		Rand:      mathrand.New(mathrand.NewSource(int64(addr.As4()[3]))),
		OnData: func(peer netip.Addr, data []byte) {
			received = append(received, bytes.Clone(data))
		},
	}
	if mut != nil {
		mut(&cfg)
	}
	h, err := NewHost(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.hosts[addr] = h
	if outside {
		w.outside[addr] = true
	}
	return h, &received
}

func TestForwardConversationEndToEnd(t *testing.T) {
	w := newWorld(t)
	ann, annRecv := w.addHost(t, annAddr, true, nil)
	goog, googRecv := w.addHost(t, googAddr, false, nil)

	// Figure 2(a): key setup.
	if err := ann.Setup(anycast); err != nil {
		t.Fatal(err)
	}
	if !ann.HasConduit(anycast) {
		t.Fatal("conduit not established after synchronous setup")
	}
	if !ann.ConduitProvisional(anycast) {
		t.Fatal("fresh conduit should be provisional (short-RSA protected)")
	}

	// Figure 2(b): data exchange.
	if err := ann.Connect(anycast, googAddr, goog.cfg.Identity.Public()); err != nil {
		t.Fatal(err)
	}
	if err := ann.Send(googAddr, []byte("hello from ann")); err != nil {
		t.Fatal(err)
	}
	if len(*googRecv) != 1 || string((*googRecv)[0]) != "hello from ann" {
		t.Fatalf("google received %q", *googRecv)
	}

	// Reply: grant should ride back and retire the provisional key.
	if err := goog.Send(annAddr, []byte("hello from google")); err != nil {
		t.Fatal(err)
	}
	if len(*annRecv) != 1 || string((*annRecv)[0]) != "hello from google" {
		t.Fatalf("ann received %q", *annRecv)
	}
	if ann.ConduitProvisional(anycast) {
		t.Error("grant not applied: conduit still provisional")
	}
	if got := ann.Stats().GrantsApplied; got != 1 {
		t.Errorf("GrantsApplied = %d", got)
	}
	if got := goog.Stats().GrantsReturned; got != 1 {
		t.Errorf("GrantsReturned = %d", got)
	}

	// Steady state both ways with the refreshed key.
	if err := ann.Send(googAddr, []byte("second")); err != nil {
		t.Fatal(err)
	}
	if err := goog.Send(annAddr, []byte("third")); err != nil {
		t.Fatal(err)
	}
	if len(*googRecv) != 2 || len(*annRecv) != 2 {
		t.Fatalf("message counts: goog=%d ann=%d", len(*googRecv), len(*annRecv))
	}
}

// TestEavesdropperSeesNothing is the Figure 2 security claim: on the
// discriminatory side of the neutralizer, neither the customer's address
// nor the plaintext payload nor the granted key appears in any packet.
func TestEavesdropperSeesNothing(t *testing.T) {
	w := newWorld(t)
	ann, _ := w.addHost(t, annAddr, true, nil)
	goog, googRecv := w.addHost(t, googAddr, false, nil)

	secret := []byte("SECRET-PAYLOAD-DO-NOT-LEAK")
	if err := ann.Setup(anycast); err != nil {
		t.Fatal(err)
	}
	if err := ann.Connect(anycast, googAddr, goog.cfg.Identity.Public()); err != nil {
		t.Fatal(err)
	}
	if err := ann.Send(googAddr, secret); err != nil {
		t.Fatal(err)
	}
	if err := goog.Send(annAddr, []byte("REPLY-ALSO-SECRET")); err != nil {
		t.Fatal(err)
	}
	if len(*googRecv) != 1 {
		t.Fatal("sanity: data did not flow")
	}

	goog4 := googAddr.As4()
	for i, pkt := range w.tapped {
		if bytes.Contains(pkt, secret) {
			t.Errorf("packet %d leaks plaintext payload", i)
		}
		if bytes.Contains(pkt, []byte("REPLY-ALSO-SECRET")) {
			t.Errorf("packet %d leaks reply payload", i)
		}
		if bytes.Contains(pkt, goog4[:]) {
			t.Errorf("packet %d leaks the customer address %v", i, googAddr)
		}
	}
	if len(w.tapped) < 4 {
		t.Errorf("expected at least setup req/resp + data + reply on the wire, got %d", len(w.tapped))
	}
}

func TestReverseInitiation(t *testing.T) {
	w := newWorld(t)
	ann, annRecv := w.addHost(t, annAddr, true, nil)
	goog, googRecv := w.addHost(t, googAddr, false, nil)

	// Google starts the conversation (§3.3): no prior setup by Ann.
	err := goog.InitiateTo(anycast, annAddr, ann.cfg.Identity.Public(), []byte("ping from google"))
	if err != nil {
		t.Fatal(err)
	}
	if len(*annRecv) != 1 || string((*annRecv)[0]) != "ping from google" {
		t.Fatalf("ann received %q", *annRecv)
	}
	if goog.Stats().ReverseInits != 1 {
		t.Error("ReverseInits counter")
	}
	// Ann can reply without ever running Setup: she adopted the conveyed
	// key material as her conduit.
	if !ann.HasConduit(anycast) {
		t.Fatal("ann did not adopt a conduit from the reverse init")
	}
	if err := ann.Send(googAddr, []byte("pong from ann")); err != nil {
		t.Fatal(err)
	}
	if len(*googRecv) != 1 || string((*googRecv)[0]) != "pong from ann" {
		t.Fatalf("google received %q", *googRecv)
	}
	// And the payloads were sealed on the wire.
	for i, pkt := range w.tapped {
		if bytes.Contains(pkt, []byte("ping from google")) || bytes.Contains(pkt, []byte("pong from ann")) {
			t.Errorf("packet %d leaks reverse-init payload", i)
		}
	}
}

func TestAPIErrors(t *testing.T) {
	w := newWorld(t)
	ann, _ := w.addHost(t, annAddr, true, nil)
	goog, _ := w.addHost(t, googAddr, false, nil)

	if err := ann.Send(googAddr, []byte("x")); err != ErrNoConversation {
		t.Errorf("Send without Connect: %v", err)
	}
	if err := ann.Connect(anycast, googAddr, goog.cfg.Identity.Public()); err != ErrNoConduit {
		t.Errorf("Connect without Setup: %v", err)
	}
	if err := ann.Setup(anycast); err != nil {
		t.Fatal(err)
	}
	// Setup completed synchronously, so a second Setup starts fresh...
	if err := ann.Setup(anycast); err != nil {
		t.Errorf("re-setup after completion: %v", err)
	}
	// ...but a third while one is pending fails. Simulate by blocking the
	// response: use a transport that drops everything.
	drop, err := NewHost(Config{Addr: netip.MustParseAddr("172.16.1.99"),
		Transport: func([]byte) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if err := drop.Setup(anycast); err != nil {
		t.Fatal(err)
	}
	if err := drop.Setup(anycast); err != ErrSetupPending {
		t.Errorf("double pending setup: %v", err)
	}
	if err := goog.InitiateTo(anycast, annAddr, ann.cfg.Identity.Public(), nil); err != nil {
		t.Fatal(err)
	}
}

func TestNewHostValidation(t *testing.T) {
	if _, err := NewHost(Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewHost(Config{Addr: netip.MustParseAddr("::1"),
		Transport: func([]byte) error { return nil }}); err == nil {
		t.Error("IPv6 addr accepted")
	}
	if _, err := NewHost(Config{Addr: annAddr}); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestHandlePacketGarbage(t *testing.T) {
	w := newWorld(t)
	ann, _ := w.addHost(t, annAddr, true, nil)
	before := ann.Stats().FramesRejected
	ann.HandlePacket(tStart, []byte{1, 2, 3})
	// Non-shim traffic is ignored silently (not "rejected").
	buf := wire.NewSerializeBuffer(28, 0)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: googAddr, Dst: annAddr},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	ann.HandlePacket(tStart, buf.Bytes())
	if got := ann.Stats().FramesRejected; got != before+1 {
		t.Errorf("FramesRejected = %d, want %d", got, before+1)
	}
}

func TestGrantDeduplication(t *testing.T) {
	h, err := NewHost(Config{Addr: annAddr, Transport: func([]byte) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	h.conduits[anycast] = &conduit{neut: anycast, nonce: keys.Nonce{1}, key: aesutil.Key{1}, provisional: true}
	g := shim.Grant{Nonce: keys.Nonce{2}, Key: aesutil.Key{2}}
	h.applyGrant(anycast, g, 0)
	h.applyGrant(anycast, g, 0) // duplicate
	if h.Stats().GrantsApplied != 1 {
		t.Errorf("GrantsApplied = %d, want 1", h.Stats().GrantsApplied)
	}
	cd := h.conduits[anycast]
	if cd.provisional || cd.nonce != g.Nonce {
		t.Error("grant not applied correctly")
	}
	if !cd.hasPrev || cd.prevNonce != (keys.Nonce{1}) {
		t.Error("previous key not retained")
	}
}

func TestOpenFrameErrors(t *testing.T) {
	h, err := NewHost(Config{Addr: annAddr, Transport: func([]byte) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	c := &conv{peer: googAddr, neut: anycast}
	if _, err := h.openFrame(c, []byte{99, 0}); err != ErrBadFrame {
		t.Errorf("bad version: %v", err)
	}
	if _, err := h.openFrame(c, []byte{frameVersion}); err != ErrBadFrame {
		t.Errorf("truncated: %v", err)
	}
	// Sealed flag without a session.
	if _, err := h.openFrame(c, []byte{frameVersion, fFlagSealed, 0, 0, 0}); err != ErrBadFrame {
		t.Errorf("sealed without session: %v", err)
	}
	// Control-only empty frame.
	if data, err := h.openFrame(c, nil); err != nil || data != nil {
		t.Errorf("empty frame: %v %v", data, err)
	}
}

func TestPayloadTooLarge(t *testing.T) {
	w := newWorld(t)
	ann, _ := w.addHost(t, annAddr, true, nil)
	goog, _ := w.addHost(t, googAddr, false, nil)
	if err := ann.Setup(anycast); err != nil {
		t.Fatal(err)
	}
	if err := ann.Connect(anycast, googAddr, goog.cfg.Identity.Public()); err != nil {
		t.Fatal(err)
	}
	if err := ann.Send(googAddr, make([]byte, 70000)); err != ErrPayloadTooLarge {
		t.Errorf("err = %v, want ErrPayloadTooLarge", err)
	}
}
