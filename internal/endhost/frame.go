package endhost

import (
	"encoding/binary"
	"io"
	"net/netip"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/e2e"
	"netneutral/internal/shim"
)

// Application frames ride inside shim payloads:
//
//	ver(1)=1
//	flags(1): bit0 = carries key offer, bit1 = body is e2e-sealed
//	[offer: kind(1) len(2) bytes — kind 1: forward e2e session offer,
//	                               kind 2: reverse-init key material]
//	body (sealed or plain):
//	    bflags(1): bit0 = carries grant
//	    [grant: epoch(4) nonce(8) key(16)]
//	    dataLen(2) data
//
// The grant — the neutralizer-stamped (nonce', Ks') refresh pair — always
// travels inside the sealed body, which is what the paper requires: the
// destination returns it "using strong end-to-end encryption".
const (
	frameVersion = 1

	fFlagOffer  = 1 << 0
	fFlagSealed = 1 << 1

	offerKindForward = 1
	offerKindReverse = 2

	bFlagGrant = 1 << 0
)

// reverseOfferLen is the plaintext conveyed by a reverse-init offer:
// nonce(8) + key(16) + epoch(4) + session seed(32).
const reverseOfferLen = 8 + aesutil.KeySize + 4 + 32

// buildFrame frames application data for the conversation, establishing
// the e2e session on first use when the peer's public key is known.
func (h *Host) buildFrame(c *conv, data []byte) ([]byte, error) {
	var offer []byte
	offerKind := uint8(0)
	if c.sess == nil && !c.customerSide && c.peerPub.Valid() {
		sess, off, err := e2e.Initiate(h.cfg.Rand, c.peerPub)
		if err != nil {
			return nil, err
		}
		c.sess = sess
		offer = off
		offerKind = offerKindForward
	}
	body := h.marshalBody(c, data)
	return h.assembleFrame(c, offerKind, offer, body)
}

// assembleFrame seals body if a session exists and prepends the header.
func (h *Host) assembleFrame(c *conv, offerKind uint8, offer, body []byte) ([]byte, error) {
	var flags uint8
	if c.sess != nil {
		sealed, err := c.sess.Seal(body)
		if err != nil {
			return nil, err
		}
		body = sealed
		flags |= fFlagSealed
	}
	if offer != nil {
		flags |= fFlagOffer
	}
	out := make([]byte, 0, 2+3+len(offer)+len(body))
	out = append(out, frameVersion, flags)
	if offer != nil {
		out = append(out, offerKind, byte(len(offer)>>8), byte(len(offer)))
		out = append(out, offer...)
	}
	out = append(out, body...)
	return out, nil
}

// marshalBody packs the optional pending grant and the data. Including
// the grant consumes it.
func (h *Host) marshalBody(c *conv, data []byte) []byte {
	var body []byte
	if c.hasPendingGrant {
		body = append(body, bFlagGrant)
		var eb [4]byte
		binary.BigEndian.PutUint32(eb[:], uint32(c.pendingGrantEpoch))
		body = append(body, eb[:]...)
		body = append(body, c.pendingGrant.Nonce[:]...)
		body = append(body, c.pendingGrant.Key[:]...)
		c.hasPendingGrant = false
		h.stats.GrantsReturned++
	} else {
		body = append(body, 0)
	}
	var lb [2]byte
	binary.BigEndian.PutUint16(lb[:], uint16(len(data)))
	body = append(body, lb[:]...)
	body = append(body, data...)
	return body
}

// openFrame parses a received frame, accepting session offers, opening
// sealed bodies, and applying returned grants. It returns the application
// data (nil for control-only frames).
func (h *Host) openFrame(c *conv, frame []byte) ([]byte, error) {
	if len(frame) == 0 {
		return nil, nil
	}
	if len(frame) < 2 || frame[0] != frameVersion {
		return nil, ErrBadFrame
	}
	flags := frame[1]
	rest := frame[2:]
	if flags&fFlagOffer != 0 {
		if len(rest) < 3 {
			return nil, ErrBadFrame
		}
		kind := rest[0]
		n := int(rest[1])<<8 | int(rest[2])
		if len(rest) < 3+n {
			return nil, ErrBadFrame
		}
		offer := rest[:3+n][3:]
		rest = rest[3+n:]
		switch kind {
		case offerKindForward:
			if h.cfg.Identity == nil {
				return nil, ErrNeedIdentity
			}
			sess, err := e2e.Accept(h.cfg.Identity, offer)
			if err != nil {
				return nil, err
			}
			c.sess = sess
		case offerKindReverse:
			// Handled by acceptReverseInit before the conversation exists;
			// seeing it here (replay into an existing conversation) is an
			// error.
			return nil, ErrBadFrame
		default:
			return nil, ErrBadFrame
		}
	}
	body := rest
	if flags&fFlagSealed != 0 {
		if c.sess == nil {
			return nil, ErrBadFrame
		}
		pt, err := c.sess.Open(body)
		if err != nil {
			return nil, err
		}
		body = pt
	}
	return h.parseBody(c, body)
}

func (h *Host) parseBody(c *conv, body []byte) ([]byte, error) {
	if len(body) < 1 {
		return nil, ErrBadFrame
	}
	bflags := body[0]
	rest := body[1:]
	if bflags&bFlagGrant != 0 {
		if len(rest) < 4+shim.GrantLen {
			return nil, ErrBadFrame
		}
		epoch := keys.Epoch(binary.BigEndian.Uint32(rest[:4]))
		var g shim.Grant
		copy(g.Nonce[:], rest[4:12])
		copy(g.Key[:], rest[12:12+aesutil.KeySize])
		rest = rest[4+shim.GrantLen:]
		h.applyGrant(c.neut, g, epoch)
	}
	if len(rest) < 2 {
		return nil, ErrBadFrame
	}
	n := int(binary.BigEndian.Uint16(rest[:2]))
	if len(rest) < 2+n {
		return nil, ErrBadFrame
	}
	if n == 0 {
		return nil, nil
	}
	return rest[2 : 2+n], nil
}

// applyGrant retires the provisional short-RSA-protected key: the paper's
// key-refresh step. The previous pair is kept so in-flight replies still
// decrypt.
func (h *Host) applyGrant(neut netip.Addr, g shim.Grant, epoch keys.Epoch) {
	cd, ok := h.conduits[neut]
	if !ok {
		// A grant for a neutralizer we have no conduit with (e.g. arrived
		// via reverse-init conversation): adopt it outright.
		h.conduits[neut] = &conduit{
			neut: neut, nonce: g.Nonce, key: g.Key, epoch: epoch,
		}
		h.stats.GrantsApplied++
		return
	}
	if cd.nonce == g.Nonce && aesutil.Equal(cd.key, g.Key) {
		return // duplicate grant (retransmitted reply)
	}
	cd.prevNonce, cd.prevKey, cd.hasPrev = cd.nonce, cd.key, true
	cd.nonce, cd.key, cd.epoch = g.Nonce, g.Key, epoch
	cd.provisional = false
	h.stats.GrantsApplied++
}

// sendReverseFirst sends the first packet of a customer-initiated
// conversation: the key material and a session seed encrypted under the
// peer's public key, plus the sealed first payload (§3.3).
func (h *Host) sendReverseFirst(c *conv, peerPub e2e.PublicKey, g shim.Grant, epoch keys.Epoch, data []byte) error {
	if !peerPub.Valid() {
		return ErrNeedIdentity
	}
	plain := make([]byte, 0, reverseOfferLen)
	plain = append(plain, g.Nonce[:]...)
	plain = append(plain, g.Key[:]...)
	var eb [4]byte
	binary.BigEndian.PutUint32(eb[:], uint32(epoch))
	plain = append(plain, eb[:]...)
	seed := make([]byte, 32)
	if _, err := io.ReadFull(h.cfg.Rand, seed); err != nil {
		return err
	}
	plain = append(plain, seed...)
	offer, err := e2e.EncryptSmall(h.cfg.Rand, peerPub, plain)
	if err != nil {
		return err
	}
	sess, err := e2e.SessionFromSeed(seed, h.cfg.Rand)
	if err != nil {
		return err
	}
	c.sess = sess
	body := h.marshalBody(c, data)
	frame, err := h.assembleFrame(c, offerKindReverse, offer, body)
	if err != nil {
		return err
	}
	sh := &shim.Header{
		Type: shim.TypeReturn, Flags: h.cfg.ReturnFlags,
		Epoch: epoch, Nonce: g.Nonce, ClearAddr: c.peer,
	}
	if err := h.sendShim(c.neut, 0, sh, frame); err != nil {
		return err
	}
	h.stats.DataSent++
	return nil
}

// acceptReverseInit handles a ReturnDelivered whose nonce matches no
// conduit: the §3.3 first packet of a customer-initiated conversation.
// The identity key recovers (nonce, Ks, epoch, seed); Ks then reveals the
// hidden source.
func (h *Host) acceptReverseInit(neut netip.Addr, sh *shim.Header) error {
	frame := sh.Payload()
	if len(frame) < 5 || frame[0] != frameVersion || frame[1]&fFlagOffer == 0 {
		return ErrBadFrame
	}
	kind := frame[2]
	n := int(frame[3])<<8 | int(frame[4])
	if kind != offerKindReverse || len(frame) < 5+n {
		return ErrBadFrame
	}
	offer := frame[5 : 5+n]
	rest := frame[5+n:]
	plain, err := h.cfg.Identity.DecryptSmall(offer)
	if err != nil || len(plain) != reverseOfferLen {
		return ErrBadFrame
	}
	var nonce keys.Nonce
	var key aesutil.Key
	copy(nonce[:], plain[:8])
	copy(key[:], plain[8:24])
	epoch := keys.Epoch(binary.BigEndian.Uint32(plain[24:28]))
	seed := plain[28:]
	if nonce != sh.Nonce {
		return ErrBadFrame
	}
	peer, _, err := aesutil.DecryptAddr(key, sh.HiddenAddr)
	if err != nil {
		return err
	}
	sess, err := e2e.SessionFromSeed(seed, h.cfg.Rand)
	if err != nil {
		return err
	}
	// Adopt the key material as a conduit if we have none with this
	// service (it is bound to our address, so it works for any customer
	// in the domain).
	if _, ok := h.conduits[neut]; !ok {
		h.conduits[neut] = &conduit{neut: neut, nonce: nonce, key: key, epoch: epoch}
	}
	c := h.convs[peer]
	if c == nil {
		c = &conv{peer: peer, neut: neut}
		h.convs[peer] = c
	}
	c.neut = neut
	c.sess = sess
	if frame[1]&fFlagSealed == 0 {
		return ErrBadFrame
	}
	body, err := sess.Open(rest)
	if err != nil {
		return err
	}
	data, err := h.parseBody(c, body)
	if err != nil {
		return err
	}
	h.stats.DataReceived++
	if h.cfg.OnData != nil && data != nil {
		h.cfg.OnData(peer, data)
	}
	return nil
}
