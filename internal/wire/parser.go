package wire

import (
	"errors"
	"fmt"
)

// ErrNoDecoder reports that the parser met a layer type it has no decoder
// for; decoding stops there and the already-decoded layers remain valid,
// mirroring gopacket's UnsupportedLayerType behaviour.
type ErrNoDecoder struct {
	LayerType LayerType
}

func (e ErrNoDecoder) Error() string {
	return fmt.Sprintf("wire: no decoder registered for layer %v", e.LayerType)
}

// ErrEmptyPacket reports a zero-length packet.
var ErrEmptyPacket = errors.New("wire: empty packet")

// Parser decodes a known stack of layers into caller-owned DecodingLayer
// values without allocation, following gopacket's DecodingLayerParser
// idiom. It is not safe for concurrent use; create one per goroutine.
type Parser struct {
	first    LayerType
	decoders map[LayerType]DecodingLayer
}

// NewParser builds a Parser that starts decoding at first and dispatches
// to the given layers by their LayerType.
func NewParser(first LayerType, layers ...DecodingLayer) *Parser {
	p := &Parser{first: first, decoders: make(map[LayerType]DecodingLayer, len(layers))}
	for _, l := range layers {
		p.decoders[l.LayerType()] = l
	}
	return p
}

// Add registers an additional decoding layer.
func (p *Parser) Add(l DecodingLayer) { p.decoders[l.LayerType()] = l }

// DecodeLayers decodes data into the registered layers, appending each
// decoded LayerType to *decoded (which is truncated first). If a layer in
// the middle of the stack has no registered decoder, DecodeLayers returns
// ErrNoDecoder but *decoded still lists everything successfully decoded.
func (p *Parser) DecodeLayers(data []byte, decoded *[]LayerType) error {
	*decoded = (*decoded)[:0]
	if len(data) == 0 {
		return ErrEmptyPacket
	}
	typ := p.first
	for typ != 0 {
		dec, ok := p.decoders[typ]
		if !ok {
			return ErrNoDecoder{LayerType: typ}
		}
		if err := dec.DecodeFromBytes(data); err != nil {
			return fmt.Errorf("wire: decoding %v: %w", typ, err)
		}
		*decoded = append(*decoded, typ)
		data = dec.Payload()
		typ = dec.NextLayerType()
		if len(data) == 0 {
			break
		}
	}
	return nil
}

// Packet is a fully decoded packet: an owning container of layers,
// convenient where the allocation-free Parser is unnecessary.
type Packet struct {
	layers []Layer
	data   []byte
	err    error
}

// ParsePacket fully decodes data starting at the given layer type. Like
// gopacket.NewPacket, it never fails outright: layers decoded before an
// error remain accessible and the error is reported by ErrorLayer.
func ParsePacket(data []byte, first LayerType) *Packet {
	pkt := &Packet{data: data}
	typ := first
	rest := data
	for typ != 0 && len(rest) > 0 {
		var dl DecodingLayer
		switch typ {
		case LayerTypeIPv4:
			dl = &IPv4{}
		case LayerTypeUDP:
			dl = &UDP{}
		case LayerTypePayload:
			dl = &Payload{}
		default:
			if newShimLayer != nil && typ == LayerTypeShim {
				dl = newShimLayer()
			} else {
				pkt.err = ErrNoDecoder{LayerType: typ}
				return pkt
			}
		}
		if err := dl.DecodeFromBytes(rest); err != nil {
			pkt.err = err
			return pkt
		}
		pkt.layers = append(pkt.layers, dl)
		rest = dl.Payload()
		typ = dl.NextLayerType()
	}
	return pkt
}

// newShimLayer is installed by the shim package so ParsePacket can decode
// neutralized packets without an import cycle.
var newShimLayer func() DecodingLayer

// RegisterShimDecoder installs the constructor ParsePacket uses for
// LayerTypeShim. Intended for the shim package's init function.
func RegisterShimDecoder(fn func() DecodingLayer) { newShimLayer = fn }

// Layers returns all decoded layers.
func (p *Packet) Layers() []Layer { return p.layers }

// Layer returns the first layer of the given type, or nil.
func (p *Packet) Layer(t LayerType) Layer {
	for _, l := range p.layers {
		if l.LayerType() == t {
			return l
		}
	}
	return nil
}

// ErrorLayer returns the decoding error, if any layer failed to decode.
func (p *Packet) ErrorLayer() error { return p.err }

// Data returns the raw bytes the packet was parsed from.
func (p *Packet) Data() []byte { return p.data }

// NetworkLayer returns the IPv4 layer, or nil.
func (p *Packet) NetworkLayer() *IPv4 {
	if l := p.Layer(LayerTypeIPv4); l != nil {
		return l.(*IPv4)
	}
	return nil
}

// TransportLayer returns the UDP layer, or nil.
func (p *Packet) TransportLayer() *UDP {
	if l := p.Layer(LayerTypeUDP); l != nil {
		return l.(*UDP)
	}
	return nil
}

// ApplicationPayload returns the innermost payload bytes, or nil.
func (p *Packet) ApplicationPayload() []byte {
	if len(p.layers) == 0 {
		return nil
	}
	last := p.layers[len(p.layers)-1]
	if pl, ok := last.(*Payload); ok {
		return []byte(*pl)
	}
	return last.Payload()
}
