package wire

import (
	"bytes"
	"encoding/binary"
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
)

func addr(s string) netip.Addr { return netip.MustParseAddr(s) }

func buildIPv4(t *testing.T, ip *IPv4, payload []byte) []byte {
	t.Helper()
	buf := NewSerializeBuffer(IPv4HeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := ip.SerializeTo(buf); err != nil {
		t.Fatalf("SerializeTo: %v", err)
	}
	return buf.Bytes()
}

func TestIPv4RoundTrip(t *testing.T) {
	in := &IPv4{
		TOS:      0xb8, // EF DSCP
		ID:       0x1234,
		Flags:    IPv4DontFragment,
		FragOff:  0,
		TTL:      64,
		Protocol: ProtoUDP,
		Src:      addr("10.0.0.1"),
		Dst:      addr("192.168.1.2"),
	}
	payload := []byte("hello, neutral world")
	pkt := buildIPv4(t, in, payload)

	if got, want := len(pkt), IPv4HeaderLen+len(payload); got != want {
		t.Fatalf("packet length = %d, want %d", got, want)
	}
	var out IPv4
	if err := out.DecodeFromBytes(pkt); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if out.TOS != in.TOS || out.ID != in.ID || out.Flags != in.Flags ||
		out.FragOff != in.FragOff || out.TTL != in.TTL || out.Protocol != in.Protocol {
		t.Errorf("header fields mismatch: got %+v want %+v", out, in)
	}
	if out.Src != in.Src || out.Dst != in.Dst {
		t.Errorf("addresses: got %v->%v want %v->%v", out.Src, out.Dst, in.Src, in.Dst)
	}
	if !bytes.Equal(out.Payload(), payload) {
		t.Errorf("payload mismatch: got %q", out.Payload())
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(tos uint8, id uint16, ttl uint8, proto uint8, srcRaw, dstRaw [4]byte, payload []byte) bool {
		if ttl == 0 {
			ttl = 1
		}
		in := &IPv4{
			TOS: tos, ID: id, TTL: ttl, Protocol: proto,
			Src: netip.AddrFrom4(srcRaw), Dst: netip.AddrFrom4(dstRaw),
		}
		buf := NewSerializeBuffer(IPv4HeaderLen, len(payload))
		buf.PushPayload(payload)
		if err := in.SerializeTo(buf); err != nil {
			return false
		}
		var out IPv4
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.TOS == in.TOS && out.ID == in.ID && out.TTL == in.TTL &&
			out.Protocol == in.Protocol && out.Src == in.Src && out.Dst == in.Dst &&
			bytes.Equal(out.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestIPv4ChecksumKnownVector(t *testing.T) {
	// Classic example header from RFC 1071 discussions.
	hdr := []byte{
		0x45, 0x00, 0x00, 0x73, 0x00, 0x00, 0x40, 0x00,
		0x40, 0x11, 0x00, 0x00, 0xc0, 0xa8, 0x00, 0x01,
		0xc0, 0xa8, 0x00, 0xc7,
	}
	ck := Checksum(hdr)
	if ck != 0xb861 {
		t.Errorf("checksum = %#04x, want 0xb861", ck)
	}
	binary.BigEndian.PutUint16(hdr[10:12], ck)
	if Checksum(hdr) != 0 {
		t.Error("header with embedded checksum does not verify to zero")
	}
}

func TestIPv4DecodeErrors(t *testing.T) {
	valid := buildIPv4(t, &IPv4{TTL: 64, Protocol: ProtoUDP, Src: addr("1.2.3.4"), Dst: addr("5.6.7.8")}, []byte("x"))

	tests := []struct {
		name    string
		mutate  func([]byte) []byte
		wantErr error
	}{
		{"short", func(p []byte) []byte { return p[:10] }, ErrIPv4TooShort},
		{"version", func(p []byte) []byte { p[0] = 0x65; return p }, ErrIPv4BadVersion},
		{"ihl", func(p []byte) []byte { p[0] = 0x44; return p }, ErrIPv4BadIHL},
		{"checksum", func(p []byte) []byte { p[8] ^= 0xff; return p }, ErrIPv4BadChecksum},
		{"length", func(p []byte) []byte {
			binary.BigEndian.PutUint16(p[2:4], uint16(len(p)+10))
			// repair checksum so only the length check fires
			p[10], p[11] = 0, 0
			binary.BigEndian.PutUint16(p[10:12], Checksum(p[:IPv4HeaderLen]))
			return p
		}, ErrIPv4BadLength},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			pkt := tc.mutate(bytes.Clone(valid))
			var out IPv4
			if err := out.DecodeFromBytes(pkt); err != tc.wantErr {
				t.Errorf("err = %v, want %v", err, tc.wantErr)
			}
		})
	}
}

func TestRewriteIPv4Addrs(t *testing.T) {
	pkt := buildIPv4(t, &IPv4{TTL: 64, Protocol: ProtoShim, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}, []byte("payload"))
	newSrc, newDst := addr("172.16.0.9"), addr("8.8.8.8")
	if err := RewriteIPv4Addrs(pkt, &newSrc, &newDst); err != nil {
		t.Fatalf("RewriteIPv4Addrs: %v", err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(pkt); err != nil {
		t.Fatalf("decode after rewrite: %v (checksum must be repaired)", err)
	}
	if out.Src != newSrc || out.Dst != newDst {
		t.Errorf("addresses after rewrite: %v->%v", out.Src, out.Dst)
	}

	// Partial rewrite: only dst.
	other := addr("9.9.9.9")
	if err := RewriteIPv4Addrs(pkt, nil, &other); err != nil {
		t.Fatal(err)
	}
	var out2 IPv4
	if err := out2.DecodeFromBytes(pkt); err != nil {
		t.Fatal(err)
	}
	if out2.Src != newSrc || out2.Dst != other {
		t.Errorf("after partial rewrite: %v->%v", out2.Src, out2.Dst)
	}
}

func TestRewritePreservesDSCP(t *testing.T) {
	ip := &IPv4{TTL: 64, Protocol: ProtoShim, Src: addr("10.0.0.1"), Dst: addr("10.0.0.2")}
	ip.SetDSCP(46) // EF
	pkt := buildIPv4(t, ip, nil)
	s := addr("1.1.1.1")
	if err := RewriteIPv4Addrs(pkt, &s, nil); err != nil {
		t.Fatal(err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(pkt); err != nil {
		t.Fatal(err)
	}
	if out.DSCP() != 46 {
		t.Errorf("DSCP after rewrite = %d, want 46", out.DSCP())
	}
}

func TestDecrementTTL(t *testing.T) {
	pkt := buildIPv4(t, &IPv4{TTL: 2, Protocol: ProtoUDP, Src: addr("1.1.1.1"), Dst: addr("2.2.2.2")}, nil)
	alive, err := DecrementTTL(pkt)
	if err != nil || !alive {
		t.Fatalf("first decrement: alive=%v err=%v", alive, err)
	}
	var out IPv4
	if err := out.DecodeFromBytes(pkt); err != nil {
		t.Fatalf("decode after TTL decrement: %v", err)
	}
	if out.TTL != 1 {
		t.Errorf("TTL = %d, want 1", out.TTL)
	}
	alive, err = DecrementTTL(pkt)
	if err != nil || alive {
		t.Errorf("TTL-exhausted packet reported alive=%v err=%v", alive, err)
	}
}

func TestDSCPAccessors(t *testing.T) {
	var ip IPv4
	ip.TOS = 0b000000_11 // ECN bits set
	ip.SetDSCP(46)
	if ip.DSCP() != 46 {
		t.Errorf("DSCP = %d, want 46", ip.DSCP())
	}
	if ip.TOS&0b11 != 0b11 {
		t.Error("SetDSCP clobbered ECN bits")
	}
}

func TestIPv4AddrsAndProto(t *testing.T) {
	pkt := buildIPv4(t, &IPv4{TTL: 9, Protocol: ProtoShim, Src: addr("10.1.2.3"), Dst: addr("10.4.5.6")}, nil)
	src, dst, err := IPv4Addrs(pkt)
	if err != nil {
		t.Fatal(err)
	}
	if src != addr("10.1.2.3") || dst != addr("10.4.5.6") {
		t.Errorf("IPv4Addrs = %v, %v", src, dst)
	}
	proto, err := IPv4Proto(pkt)
	if err != nil || proto != ProtoShim {
		t.Errorf("IPv4Proto = %d, %v", proto, err)
	}
	if _, _, err := IPv4Addrs(pkt[:8]); err == nil {
		t.Error("IPv4Addrs on short packet: want error")
	}
	if _, err := IPv4Proto(pkt[:8]); err == nil {
		t.Error("IPv4Proto on short packet: want error")
	}
}

func TestChecksumIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		n := 1 + rng.Intn(64)
		data := make([]byte, n)
		rng.Read(data)
		cut := rng.Intn(n)
		full := Checksum(data)
		split := checksumFold(checksumAdd(checksumAdd(0, data[:cut]), data[cut:]))
		// Splitting is only equivalent on even boundaries, which is how the
		// UDP pseudo-header (12 bytes) uses it.
		if cut%2 == 0 && full != split {
			t.Fatalf("split checksum mismatch at n=%d cut=%d: %#x vs %#x", n, cut, full, split)
		}
	}
}
