package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// IP protocol numbers used by this system.
const (
	ProtoICMP uint8 = 1
	ProtoTCP  uint8 = 6
	ProtoUDP  uint8 = 17
	// ProtoShim is the IP protocol number carried by neutralized packets.
	// The paper fixes "a known value" for the shim; we use 253, reserved
	// for experimentation and testing by RFC 3692.
	ProtoShim uint8 = 253
)

// IPv4HeaderLen is the length of an IPv4 header without options.
const IPv4HeaderLen = 20

// MaxTTL is the initial time-to-live for generated packets.
const MaxTTL uint8 = 64

// Errors returned by IPv4 decoding.
var (
	ErrIPv4TooShort    = errors.New("wire: data too short for IPv4 header")
	ErrIPv4BadVersion  = errors.New("wire: IP version is not 4")
	ErrIPv4BadIHL      = errors.New("wire: IPv4 IHL below minimum")
	ErrIPv4BadChecksum = errors.New("wire: IPv4 header checksum mismatch")
	ErrIPv4BadLength   = errors.New("wire: IPv4 total length inconsistent with data")
)

// IPv4 is a decoded IPv4 header. It implements Layer, DecodingLayer and
// SerializableLayer.
type IPv4 struct {
	// TOS is the full type-of-service octet: DSCP in the upper six bits,
	// ECN in the lower two. Neutralizers preserve it verbatim (§3.4).
	TOS      uint8
	ID       uint16
	Flags    uint8 // 3 bits: reserved, DF, MF
	FragOff  uint16
	TTL      uint8
	Protocol uint8
	Src, Dst netip.Addr

	contents []byte
	payload  []byte
}

// IPv4Flags bit values.
const (
	IPv4DontFragment  = 0b010
	IPv4MoreFragments = 0b001
)

// DSCP returns the DiffServ codepoint (upper six TOS bits).
func (ip *IPv4) DSCP() uint8 { return ip.TOS >> 2 }

// SetDSCP sets the DiffServ codepoint, preserving ECN bits.
func (ip *IPv4) SetDSCP(dscp uint8) { ip.TOS = dscp<<2 | ip.TOS&0b11 }

// LayerType implements Layer.
func (*IPv4) LayerType() LayerType { return LayerTypeIPv4 }

// Contents implements Layer.
func (ip *IPv4) Contents() []byte { return ip.contents }

// Payload implements Layer.
func (ip *IPv4) Payload() []byte { return ip.payload }

// NextLayerType implements DecodingLayer.
func (ip *IPv4) NextLayerType() LayerType {
	switch ip.Protocol {
	case ProtoUDP:
		return LayerTypeUDP
	case ProtoShim:
		return LayerTypeShim
	default:
		return LayerTypePayload
	}
}

// NetworkFlow returns the (src, dst) IPv4 flow.
func (ip *IPv4) NetworkFlow() Flow {
	return NewFlow(IPv4Endpoint(ip.Src), IPv4Endpoint(ip.Dst))
}

// DecodeFromBytes implements DecodingLayer. It verifies version, IHL,
// total length and header checksum.
func (ip *IPv4) DecodeFromBytes(data []byte) error {
	if len(data) < IPv4HeaderLen {
		return ErrIPv4TooShort
	}
	if data[0]>>4 != 4 {
		return ErrIPv4BadVersion
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < IPv4HeaderLen {
		return ErrIPv4BadIHL
	}
	if len(data) < ihl {
		return ErrIPv4TooShort
	}
	totalLen := int(binary.BigEndian.Uint16(data[2:4]))
	if totalLen < ihl || totalLen > len(data) {
		return ErrIPv4BadLength
	}
	if Checksum(data[:ihl]) != 0 {
		return ErrIPv4BadChecksum
	}
	ip.TOS = data[1]
	ip.ID = binary.BigEndian.Uint16(data[4:6])
	ff := binary.BigEndian.Uint16(data[6:8])
	ip.Flags = uint8(ff >> 13)
	ip.FragOff = ff & 0x1fff
	ip.TTL = data[8]
	ip.Protocol = data[9]
	ip.Src = netip.AddrFrom4([4]byte(data[12:16]))
	ip.Dst = netip.AddrFrom4([4]byte(data[16:20]))
	ip.contents = data[:ihl]
	ip.payload = data[ihl:totalLen]
	return nil
}

// SerializeTo implements SerializableLayer. The buffer's current contents
// become the IP payload; total length and checksum are computed here.
func (ip *IPv4) SerializeTo(b *SerializeBuffer) error {
	if !ip.Src.Is4() || !ip.Dst.Is4() {
		return fmt.Errorf("wire: IPv4 requires 4-byte addresses (src=%v dst=%v)", ip.Src, ip.Dst)
	}
	payloadLen := b.Len()
	hdr := b.PrependBytes(IPv4HeaderLen)
	hdr[0] = 4<<4 | IPv4HeaderLen/4
	hdr[1] = ip.TOS
	binary.BigEndian.PutUint16(hdr[2:4], uint16(IPv4HeaderLen+payloadLen))
	binary.BigEndian.PutUint16(hdr[4:6], ip.ID)
	binary.BigEndian.PutUint16(hdr[6:8], uint16(ip.Flags)<<13|ip.FragOff&0x1fff)
	hdr[8] = ip.TTL
	hdr[9] = ip.Protocol
	hdr[10], hdr[11] = 0, 0
	src, dst := ip.Src.As4(), ip.Dst.As4()
	copy(hdr[12:16], src[:])
	copy(hdr[16:20], dst[:])
	binary.BigEndian.PutUint16(hdr[10:12], Checksum(hdr))
	return nil
}

// Checksum computes the Internet checksum (RFC 1071) over data. A header
// with a correct embedded checksum sums to zero.
func Checksum(data []byte) uint16 {
	var sum uint32
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// checksumAdd accumulates data into a running non-folded checksum sum.
func checksumAdd(sum uint32, data []byte) uint32 {
	for len(data) >= 2 {
		sum += uint32(data[0])<<8 | uint32(data[1])
		data = data[2:]
	}
	if len(data) == 1 {
		sum += uint32(data[0]) << 8
	}
	return sum
}

func checksumFold(sum uint32) uint16 {
	for sum > 0xffff {
		sum = sum>>16 + sum&0xffff
	}
	return ^uint16(sum)
}

// RewriteIPv4Addrs rewrites the src and/or dst address of a serialized
// IPv4 packet in place and incrementally repairs the header checksum.
// Nil addresses leave the corresponding field untouched. This is the
// neutralizer's fast-path primitive: address substitution without
// re-serializing the packet.
func RewriteIPv4Addrs(pkt []byte, src, dst *netip.Addr) error {
	if len(pkt) < IPv4HeaderLen || pkt[0]>>4 != 4 {
		return ErrIPv4TooShort
	}
	ihl := int(pkt[0]&0x0f) * 4
	if len(pkt) < ihl {
		return ErrIPv4TooShort
	}
	if src != nil {
		a := src.As4()
		copy(pkt[12:16], a[:])
	}
	if dst != nil {
		a := dst.As4()
		copy(pkt[16:20], a[:])
	}
	pkt[10], pkt[11] = 0, 0
	binary.BigEndian.PutUint16(pkt[10:12], Checksum(pkt[:ihl]))
	return nil
}

// IPv4Addrs extracts the source and destination addresses from a
// serialized IPv4 packet without full decoding.
func IPv4Addrs(pkt []byte) (src, dst netip.Addr, err error) {
	if len(pkt) < IPv4HeaderLen {
		return netip.Addr{}, netip.Addr{}, ErrIPv4TooShort
	}
	return netip.AddrFrom4([4]byte(pkt[12:16])), netip.AddrFrom4([4]byte(pkt[16:20])), nil
}

// IPv4Proto extracts the protocol field from a serialized IPv4 packet.
func IPv4Proto(pkt []byte) (uint8, error) {
	if len(pkt) < IPv4HeaderLen {
		return 0, ErrIPv4TooShort
	}
	return pkt[9], nil
}

// DecrementTTL decrements the TTL of a serialized IPv4 packet in place,
// repairing the checksum. It reports false when the TTL is exhausted (the
// packet must then be dropped).
func DecrementTTL(pkt []byte) (alive bool, err error) {
	if len(pkt) < IPv4HeaderLen {
		return false, ErrIPv4TooShort
	}
	if pkt[8] <= 1 {
		return false, nil
	}
	pkt[8]--
	ihl := int(pkt[0]&0x0f) * 4
	if len(pkt) < ihl {
		return false, ErrIPv4TooShort
	}
	pkt[10], pkt[11] = 0, 0
	binary.BigEndian.PutUint16(pkt[10:12], Checksum(pkt[:ihl]))
	return true, nil
}
