package wire

import (
	"encoding/binary"
	"errors"
	"net/netip"
)

// UDPHeaderLen is the length of a UDP header.
const UDPHeaderLen = 8

// Errors returned by UDP decoding.
var (
	ErrUDPTooShort    = errors.New("wire: data too short for UDP header")
	ErrUDPBadLength   = errors.New("wire: UDP length field inconsistent with data")
	ErrUDPBadChecksum = errors.New("wire: UDP checksum mismatch")
)

// UDP is a decoded UDP header. It implements Layer, DecodingLayer and
// SerializableLayer.
//
// Checksums are computed over the IPv4 pseudo-header; callers must set
// PseudoSrc and PseudoDst before SerializeTo, and may set them before
// DecodeFromBytes to enable verification (left unset, the checksum is not
// verified, matching common NIC-offload behaviour).
type UDP struct {
	SrcPort, DstPort uint16

	// PseudoSrc and PseudoDst feed the pseudo-header for checksumming.
	PseudoSrc, PseudoDst netip.Addr

	contents []byte
	payload  []byte
}

// LayerType implements Layer.
func (*UDP) LayerType() LayerType { return LayerTypeUDP }

// Contents implements Layer.
func (u *UDP) Contents() []byte { return u.contents }

// Payload implements Layer.
func (u *UDP) Payload() []byte { return u.payload }

// NextLayerType implements DecodingLayer.
func (*UDP) NextLayerType() LayerType { return LayerTypePayload }

// TransportFlow returns the (src port, dst port) flow.
func (u *UDP) TransportFlow() Flow {
	return NewFlow(UDPPortEndpoint(u.SrcPort), UDPPortEndpoint(u.DstPort))
}

// DecodeFromBytes implements DecodingLayer.
func (u *UDP) DecodeFromBytes(data []byte) error {
	if len(data) < UDPHeaderLen {
		return ErrUDPTooShort
	}
	length := int(binary.BigEndian.Uint16(data[4:6]))
	if length < UDPHeaderLen || length > len(data) {
		return ErrUDPBadLength
	}
	if u.PseudoSrc.IsValid() && u.PseudoDst.IsValid() {
		if ck := binary.BigEndian.Uint16(data[6:8]); ck != 0 {
			if udpChecksum(u.PseudoSrc, u.PseudoDst, data[:length]) != 0 {
				return ErrUDPBadChecksum
			}
		}
	}
	u.SrcPort = binary.BigEndian.Uint16(data[0:2])
	u.DstPort = binary.BigEndian.Uint16(data[2:4])
	u.contents = data[:UDPHeaderLen]
	u.payload = data[UDPHeaderLen:length]
	return nil
}

// SerializeTo implements SerializableLayer. The buffer's current contents
// become the UDP payload.
func (u *UDP) SerializeTo(b *SerializeBuffer) error {
	payloadLen := b.Len()
	hdr := b.PrependBytes(UDPHeaderLen)
	binary.BigEndian.PutUint16(hdr[0:2], u.SrcPort)
	binary.BigEndian.PutUint16(hdr[2:4], u.DstPort)
	binary.BigEndian.PutUint16(hdr[4:6], uint16(UDPHeaderLen+payloadLen))
	hdr[6], hdr[7] = 0, 0
	if u.PseudoSrc.IsValid() && u.PseudoDst.IsValid() {
		ck := udpChecksum(u.PseudoSrc, u.PseudoDst, b.Bytes()[:UDPHeaderLen+payloadLen])
		if ck == 0 {
			ck = 0xffff // RFC 768: transmitted zero means "no checksum"
		}
		binary.BigEndian.PutUint16(hdr[6:8], ck)
	}
	return nil
}

// udpChecksum computes the UDP checksum including the IPv4 pseudo-header.
// A datagram with a correct embedded checksum sums to zero.
func udpChecksum(src, dst netip.Addr, segment []byte) uint16 {
	var pseudo [12]byte
	s, d := src.As4(), dst.As4()
	copy(pseudo[0:4], s[:])
	copy(pseudo[4:8], d[:])
	pseudo[9] = ProtoUDP
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(len(segment)))
	sum := checksumAdd(0, pseudo[:])
	sum = checksumAdd(sum, segment)
	return checksumFold(sum)
}
