package wire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestUDPRoundTrip(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	in := &UDP{SrcPort: 5060, DstPort: 16384, PseudoSrc: src, PseudoDst: dst}
	payload := []byte("voip frame")

	buf := NewSerializeBuffer(UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := in.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	out := &UDP{PseudoSrc: src, PseudoDst: dst}
	if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
		t.Fatalf("DecodeFromBytes: %v", err)
	}
	if out.SrcPort != 5060 || out.DstPort != 16384 {
		t.Errorf("ports = %d->%d", out.SrcPort, out.DstPort)
	}
	if !bytes.Equal(out.Payload(), payload) {
		t.Errorf("payload = %q", out.Payload())
	}
}

func TestUDPChecksumDetectsCorruption(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	in := &UDP{SrcPort: 1000, DstPort: 2000, PseudoSrc: src, PseudoDst: dst}
	buf := NewSerializeBuffer(UDPHeaderLen, 4)
	buf.PushPayload([]byte("data"))
	if err := in.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	pkt := buf.Bytes()
	pkt[len(pkt)-1] ^= 0x01
	out := &UDP{PseudoSrc: src, PseudoDst: dst}
	if err := out.DecodeFromBytes(pkt); err != ErrUDPBadChecksum {
		t.Errorf("err = %v, want ErrUDPBadChecksum", err)
	}
}

func TestUDPChecksumSkippedWithoutPseudo(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	in := &UDP{SrcPort: 1, DstPort: 2, PseudoSrc: src, PseudoDst: dst}
	buf := NewSerializeBuffer(UDPHeaderLen, 4)
	buf.PushPayload([]byte("data"))
	if err := in.SerializeTo(buf); err != nil {
		t.Fatal(err)
	}
	pkt := buf.Bytes()
	pkt[len(pkt)-1] ^= 0x01 // corrupt
	var out UDP             // no pseudo addresses -> verification skipped
	if err := out.DecodeFromBytes(pkt); err != nil {
		t.Errorf("decode without pseudo-header should skip checksum, got %v", err)
	}
}

func TestUDPDecodeErrors(t *testing.T) {
	var u UDP
	if err := u.DecodeFromBytes(make([]byte, 4)); err != ErrUDPTooShort {
		t.Errorf("short: %v", err)
	}
	bad := make([]byte, 8)
	bad[5] = 4 // length 4 < header length
	if err := u.DecodeFromBytes(bad); err != ErrUDPBadLength {
		t.Errorf("bad length: %v", err)
	}
}

func TestUDPRoundTripProperty(t *testing.T) {
	f := func(sp, dp uint16, payload []byte, srcRaw, dstRaw [4]byte) bool {
		src, dst := netip.AddrFrom4(srcRaw), netip.AddrFrom4(dstRaw)
		in := &UDP{SrcPort: sp, DstPort: dp, PseudoSrc: src, PseudoDst: dst}
		buf := NewSerializeBuffer(UDPHeaderLen, len(payload))
		buf.PushPayload(payload)
		if err := in.SerializeTo(buf); err != nil {
			return false
		}
		out := &UDP{PseudoSrc: src, PseudoDst: dst}
		if err := out.DecodeFromBytes(buf.Bytes()); err != nil {
			return false
		}
		return out.SrcPort == sp && out.DstPort == dp && bytes.Equal(out.Payload(), payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUDPOverIPv4EndToEnd(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.9.9.9")
	payload := []byte("application data")
	buf := NewSerializeBuffer(IPv4HeaderLen+UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := SerializeLayers(buf,
		&IPv4{TTL: 64, Protocol: ProtoUDP, Src: src, Dst: dst},
		&UDP{SrcPort: 40000, DstPort: 53, PseudoSrc: src, PseudoDst: dst},
	)
	if err != nil {
		t.Fatal(err)
	}
	pkt := ParsePacket(buf.Bytes(), LayerTypeIPv4)
	if pkt.ErrorLayer() != nil {
		t.Fatalf("parse error: %v", pkt.ErrorLayer())
	}
	nl := pkt.NetworkLayer()
	if nl == nil || nl.Src != src || nl.Dst != dst {
		t.Fatalf("network layer = %+v", nl)
	}
	tl := pkt.TransportLayer()
	if tl == nil || tl.SrcPort != 40000 || tl.DstPort != 53 {
		t.Fatalf("transport layer = %+v", tl)
	}
	if !bytes.Equal(pkt.ApplicationPayload(), payload) {
		t.Errorf("application payload = %q", pkt.ApplicationPayload())
	}
}
