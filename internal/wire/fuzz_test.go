package wire_test

import (
	"bytes"
	"testing"

	"netneutral/internal/eval"
	"netneutral/internal/wire"
)

// fuzzSeedPackets builds the seed corpus from real packets produced by
// the benchmark environment: a key-setup request, forward data, return
// and vanilla UDP packets, exactly as they appear on the emulated wire.
func fuzzSeedPackets(f *testing.F) [][]byte {
	f.Helper()
	env, err := eval.NewBenchEnv(false, true)
	if err != nil {
		f.Fatal(err)
	}
	pkts := [][]byte{env.SetupPkt, env.DataPkt, env.ReturnPkt, env.AltPkt, env.VanillaPkt}
	batch, err := env.DataBatch(4, 4)
	if err != nil {
		f.Fatal(err)
	}
	return append(pkts, batch...)
}

// FuzzIPv4Parse throws hostile bytes at the IPv4 decoder and the in-place
// header primitives the data plane depends on (address rewrite, TTL
// decrement, cheap field peeks). The data plane must never panic on a
// packet, and every in-place mutation must leave a packet the decoder
// still accepts.
func FuzzIPv4Parse(f *testing.F) {
	for _, pkt := range fuzzSeedPackets(f) {
		f.Add(pkt)
	}
	// Corner seeds: truncated header, bad version, IHL games, length lies.
	f.Add([]byte{})
	f.Add([]byte{0x45})
	f.Add([]byte{0x60, 0, 0, 20, 0, 0, 0, 0, 64, 17, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0x4f, 0, 0, 60, 0, 0, 0, 0, 64, 17, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0x45, 0, 0xff, 0xff, 0, 0, 0, 0, 64, 17, 0, 0, 1, 2, 3, 4, 5, 6, 7, 8})

	f.Fuzz(func(t *testing.T, data []byte) {
		var ip wire.IPv4
		if err := ip.DecodeFromBytes(data); err != nil {
			// Rejected input: the cheap peeks must also never panic.
			wire.IPv4Addrs(data)
			wire.IPv4Proto(data)
			return
		}
		if !ip.Src.Is4() || !ip.Dst.Is4() {
			t.Fatalf("decoded non-IPv4 addresses %v -> %v", ip.Src, ip.Dst)
		}
		if len(ip.Contents())+len(ip.Payload()) > len(data) {
			t.Fatalf("contents+payload exceed input: %d+%d > %d",
				len(ip.Contents()), len(ip.Payload()), len(data))
		}
		src, dst, err := wire.IPv4Addrs(data)
		if err != nil || src != ip.Src || dst != ip.Dst {
			t.Fatalf("IPv4Addrs disagrees with decoder: %v/%v vs %v/%v (%v)", src, dst, ip.Src, ip.Dst, err)
		}
		if proto, err := wire.IPv4Proto(data); err != nil || proto != ip.Protocol {
			t.Fatalf("IPv4Proto disagrees with decoder: %d vs %d (%v)", proto, ip.Protocol, err)
		}

		// In-place primitives must preserve decodability (checksum repair).
		cp := append([]byte(nil), data...)
		if err := wire.RewriteIPv4Addrs(cp, &dst, &src); err != nil {
			t.Fatalf("RewriteIPv4Addrs rejected a decodable packet: %v", err)
		}
		var ip2 wire.IPv4
		if err := ip2.DecodeFromBytes(cp); err != nil {
			t.Fatalf("packet undecodable after address rewrite: %v", err)
		}
		if ip2.Src != dst || ip2.Dst != src {
			t.Fatal("address rewrite did not take")
		}
		alive, err := wire.DecrementTTL(cp)
		if err != nil {
			t.Fatalf("DecrementTTL rejected a decodable packet: %v", err)
		}
		if alive {
			if err := ip2.DecodeFromBytes(cp); err != nil {
				t.Fatalf("packet undecodable after TTL decrement: %v", err)
			}
			if ip2.TTL != ip.TTL-1 {
				t.Fatalf("TTL %d after decrement of %d", ip2.TTL, ip.TTL)
			}
		}

		// Round trip: reserializing the decoded fields must produce a
		// packet that decodes to the same header (options are not
		// preserved — the serializer emits the canonical 20-byte header).
		buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen, len(ip.Payload()))
		buf.PushPayload(ip.Payload())
		if err := ip.SerializeTo(buf); err != nil {
			t.Fatalf("reserialize failed: %v", err)
		}
		var ip3 wire.IPv4
		if err := ip3.DecodeFromBytes(buf.Bytes()); err != nil {
			t.Fatalf("reserialized packet undecodable: %v", err)
		}
		if ip3.Src != ip.Src || ip3.Dst != ip.Dst || ip3.Protocol != ip.Protocol ||
			ip3.TOS != ip.TOS || ip3.TTL != ip.TTL || ip3.ID != ip.ID ||
			ip3.Flags != ip.Flags || ip3.FragOff != ip.FragOff {
			t.Fatal("round-tripped header fields diverge")
		}
		if !bytes.Equal(ip3.Payload(), ip.Payload()) {
			t.Fatal("round-tripped payload diverges")
		}
	})
}
