// Package wire implements the packet model used throughout netneutral.
//
// The design follows the layer-oriented decoding idiom popularized by
// gopacket, restricted to the protocols this system needs and implemented
// with the standard library only: a registry of LayerTypes, a Layer
// interface exposing header contents and payload, hashable Endpoint and
// Flow values for protocol-independent "from A to B" bookkeeping, a
// prepend-oriented SerializeBuffer, and an allocation-free Parser that
// decodes a known layer stack into caller-owned structs.
//
// Packets on the emulated network and on the real UDP transport are plain
// []byte IPv4 datagrams; everything above them (UDP, the neutralizer shim,
// application payloads) is produced and consumed through this package.
package wire

import (
	"fmt"
	"net/netip"
)

// LayerType identifies a protocol layer. Values are registered at init
// time; the zero value is invalid.
type LayerType int

// Known layer types. External packages may register more via
// RegisterLayerType.
var (
	LayerTypeIPv4    = RegisterLayerType("IPv4")
	LayerTypeUDP     = RegisterLayerType("UDP")
	LayerTypeShim    = RegisterLayerType("Shim")
	LayerTypePayload = RegisterLayerType("Payload")
)

var layerTypeNames = []string{"Unknown"}

// RegisterLayerType allocates a new LayerType with the given display name.
// It is intended to be called from package init functions and is not safe
// for concurrent use with itself.
func RegisterLayerType(name string) LayerType {
	layerTypeNames = append(layerTypeNames, name)
	return LayerType(len(layerTypeNames) - 1)
}

func (t LayerType) String() string {
	if t <= 0 || int(t) >= len(layerTypeNames) {
		return fmt.Sprintf("LayerType(%d)", int(t))
	}
	return layerTypeNames[t]
}

// Layer is a decoded protocol layer.
type Layer interface {
	// LayerType reports which protocol this layer is.
	LayerType() LayerType
	// Contents returns the bytes that make up this layer's header.
	Contents() []byte
	// Payload returns the bytes this layer carries for upper layers.
	Payload() []byte
}

// DecodingLayer is a Layer that can decode itself from bytes without
// allocation, mirroring gopacket's fast-path interface. DecodeFromBytes
// must leave the receiver describing data; NextLayerType reports what the
// payload contains.
type DecodingLayer interface {
	Layer
	DecodeFromBytes(data []byte) error
	NextLayerType() LayerType
}

// EndpointType distinguishes kinds of Endpoint.
type EndpointType uint8

// Endpoint kinds.
const (
	EndpointInvalid EndpointType = iota
	EndpointIPv4
	EndpointUDPPort
)

func (t EndpointType) String() string {
	switch t {
	case EndpointIPv4:
		return "IPv4"
	case EndpointUDPPort:
		return "UDPPort"
	default:
		return "Invalid"
	}
}

// Endpoint is a hashable representation of one side of a Flow: an IPv4
// address or a UDP port. Endpoints are comparable and usable as map keys.
type Endpoint struct {
	typ EndpointType
	raw uint64
}

// IPv4Endpoint returns the Endpoint for an IPv4 address.
func IPv4Endpoint(a netip.Addr) Endpoint {
	b := a.As4()
	return Endpoint{
		typ: EndpointIPv4,
		raw: uint64(b[0])<<24 | uint64(b[1])<<16 | uint64(b[2])<<8 | uint64(b[3]),
	}
}

// UDPPortEndpoint returns the Endpoint for a UDP port.
func UDPPortEndpoint(port uint16) Endpoint {
	return Endpoint{typ: EndpointUDPPort, raw: uint64(port)}
}

// Type reports the endpoint's kind.
func (e Endpoint) Type() EndpointType { return e.typ }

// Addr returns the IPv4 address of an EndpointIPv4; it returns the zero
// Addr for other kinds.
func (e Endpoint) Addr() netip.Addr {
	if e.typ != EndpointIPv4 {
		return netip.Addr{}
	}
	return netip.AddrFrom4([4]byte{byte(e.raw >> 24), byte(e.raw >> 16), byte(e.raw >> 8), byte(e.raw)})
}

// Port returns the port of an EndpointUDPPort, or 0 for other kinds.
func (e Endpoint) Port() uint16 {
	if e.typ != EndpointUDPPort {
		return 0
	}
	return uint16(e.raw)
}

func (e Endpoint) String() string {
	switch e.typ {
	case EndpointIPv4:
		return e.Addr().String()
	case EndpointUDPPort:
		return fmt.Sprintf(":%d", e.Port())
	default:
		return "invalid"
	}
}

// FastHash returns a non-cryptographic hash of the endpoint, suitable for
// load balancing.
func (e Endpoint) FastHash() uint64 {
	return fnv64(uint64(e.typ), e.raw)
}

// Flow is an ordered (src, dst) pair of Endpoints. Flows are comparable
// and usable as map keys.
type Flow struct {
	src, dst Endpoint
}

// NewFlow builds a Flow from two endpoints of the same type.
func NewFlow(src, dst Endpoint) Flow { return Flow{src: src, dst: dst} }

// Endpoints returns the flow's source and destination.
func (f Flow) Endpoints() (src, dst Endpoint) { return f.src, f.dst }

// Src returns the source endpoint.
func (f Flow) Src() Endpoint { return f.src }

// Dst returns the destination endpoint.
func (f Flow) Dst() Endpoint { return f.dst }

// Reverse returns the flow with source and destination swapped.
func (f Flow) Reverse() Flow { return Flow{src: f.dst, dst: f.src} }

// FastHash returns a symmetric non-cryptographic hash: A->B and B->A hash
// identically, so bidirectional traffic lands in the same bucket.
func (f Flow) FastHash() uint64 {
	a, b := f.src.FastHash(), f.dst.FastHash()
	if a > b {
		a, b = b, a
	}
	return fnv64(a, b)
}

func (f Flow) String() string { return f.src.String() + "->" + f.dst.String() }

// fnv64 mixes two words with an FNV-1a-style sequence.
func fnv64(a, b uint64) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < 8; i++ {
		h ^= (a >> (8 * i)) & 0xff
		h *= prime
	}
	for i := 0; i < 8; i++ {
		h ^= (b >> (8 * i)) & 0xff
		h *= prime
	}
	return h
}

// SerializeBuffer accumulates packet bytes for writing. Layers are
// serialized outermost-last: each layer prepends its header to the bytes
// already present (which it treats as its payload), mirroring gopacket's
// SerializeBuffer contract. The zero value is ready to use.
type SerializeBuffer struct {
	buf   []byte // data lives at buf[start:]
	start int
}

// NewSerializeBuffer returns a buffer with space reserved for expected
// headroom (bytes of headers to be prepended) and an initial payload size.
func NewSerializeBuffer(headroom, payload int) *SerializeBuffer {
	b := make([]byte, headroom, headroom+payload)
	return &SerializeBuffer{buf: b, start: headroom}
}

// Bytes returns the serialized packet so far.
func (s *SerializeBuffer) Bytes() []byte { return s.buf[s.start:] }

// Len returns the current packet length.
func (s *SerializeBuffer) Len() int { return len(s.buf) - s.start }

// PrependBytes returns a slice of n fresh bytes at the front of the
// packet for a layer header to fill in.
func (s *SerializeBuffer) PrependBytes(n int) []byte {
	if s.start >= n {
		s.start -= n
		return s.buf[s.start : s.start+n]
	}
	// Grow at the front.
	grow := n - s.start
	nb := make([]byte, len(s.buf)+grow)
	copy(nb[n:], s.buf[s.start:])
	s.buf = nb
	s.start = 0
	return s.buf[:n]
}

// AppendBytes returns a slice of n fresh bytes at the back of the packet.
func (s *SerializeBuffer) AppendBytes(n int) []byte {
	old := len(s.buf)
	s.buf = append(s.buf, make([]byte, n)...)
	return s.buf[old:]
}

// PushPayload appends p to the back of the packet.
func (s *SerializeBuffer) PushPayload(p []byte) {
	s.buf = append(s.buf, p...)
}

// Clear resets the buffer, preserving capacity, with the given headroom.
func (s *SerializeBuffer) Clear(headroom int) {
	if cap(s.buf) < headroom {
		s.buf = make([]byte, headroom)
	}
	s.buf = s.buf[:headroom]
	s.start = headroom
}

// SerializableLayer is a layer that can write itself in front of an
// existing payload held in a SerializeBuffer.
type SerializableLayer interface {
	SerializeTo(b *SerializeBuffer) error
	LayerType() LayerType
}

// SerializeLayers clears buf and serializes the given layers front to
// back; layers[0] becomes the outermost header. Any trailing raw payload
// should be pushed by the caller before invoking SerializeLayers, or
// included via the Payload type.
func SerializeLayers(buf *SerializeBuffer, layers ...SerializableLayer) error {
	for i := len(layers) - 1; i >= 0; i-- {
		if err := layers[i].SerializeTo(buf); err != nil {
			return fmt.Errorf("wire: serializing %v: %w", layers[i].LayerType(), err)
		}
	}
	return nil
}

// Payload is a raw application payload layer.
type Payload []byte

// LayerType implements Layer.
func (Payload) LayerType() LayerType { return LayerTypePayload }

// Contents implements Layer.
func (p Payload) Contents() []byte { return p }

// Payload implements Layer; a raw payload carries nothing further.
func (Payload) Payload() []byte { return nil }

// SerializeTo implements SerializableLayer.
func (p Payload) SerializeTo(b *SerializeBuffer) error {
	copy(b.PrependBytes(len(p)), p)
	return nil
}

// DecodeFromBytes implements DecodingLayer.
func (p *Payload) DecodeFromBytes(data []byte) error {
	*p = data
	return nil
}

// NextLayerType implements DecodingLayer.
func (Payload) NextLayerType() LayerType { return 0 }
