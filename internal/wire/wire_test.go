package wire

import (
	"bytes"
	"net/netip"
	"testing"
	"testing/quick"
)

func TestEndpointIPv4(t *testing.T) {
	a := addr("192.0.2.33")
	e := IPv4Endpoint(a)
	if e.Type() != EndpointIPv4 {
		t.Errorf("type = %v", e.Type())
	}
	if e.Addr() != a {
		t.Errorf("Addr() = %v, want %v", e.Addr(), a)
	}
	if e.Port() != 0 {
		t.Errorf("Port() on IPv4 endpoint = %d, want 0", e.Port())
	}
	if e.String() != "192.0.2.33" {
		t.Errorf("String() = %q", e.String())
	}
}

func TestEndpointUDPPort(t *testing.T) {
	e := UDPPortEndpoint(5060)
	if e.Type() != EndpointUDPPort || e.Port() != 5060 {
		t.Errorf("endpoint = %v", e)
	}
	if e.Addr().IsValid() {
		t.Error("Addr() on port endpoint should be zero")
	}
}

func TestEndpointComparable(t *testing.T) {
	m := map[Endpoint]int{}
	m[IPv4Endpoint(addr("1.2.3.4"))] = 1
	m[IPv4Endpoint(addr("1.2.3.4"))] = 2
	m[UDPPortEndpoint(80)] = 3
	if len(m) != 2 {
		t.Errorf("map size = %d, want 2 (equal endpoints must collide)", len(m))
	}
	if m[IPv4Endpoint(addr("1.2.3.4"))] != 2 {
		t.Error("lookup by equal endpoint failed")
	}
}

func TestFlowSymmetricHash(t *testing.T) {
	f := func(a, b [4]byte) bool {
		srcE := IPv4Endpoint(addrFrom4(a))
		dstE := IPv4Endpoint(addrFrom4(b))
		fwd := NewFlow(srcE, dstE)
		rev := fwd.Reverse()
		return fwd.FastHash() == rev.FastHash()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestFlowEndpointsAccessors(t *testing.T) {
	s, d := IPv4Endpoint(addr("10.0.0.1")), IPv4Endpoint(addr("10.0.0.2"))
	fl := NewFlow(s, d)
	gs, gd := fl.Endpoints()
	if gs != s || gd != d || fl.Src() != s || fl.Dst() != d {
		t.Error("flow accessors mismatch")
	}
	if fl.Reverse().Src() != d {
		t.Error("Reverse src mismatch")
	}
	if fl.String() != "10.0.0.1->10.0.0.2" {
		t.Errorf("String() = %q", fl.String())
	}
}

func TestFlowHashDistinguishesFlows(t *testing.T) {
	f1 := NewFlow(IPv4Endpoint(addr("10.0.0.1")), IPv4Endpoint(addr("10.0.0.2")))
	f2 := NewFlow(IPv4Endpoint(addr("10.0.0.1")), IPv4Endpoint(addr("10.0.0.3")))
	if f1.FastHash() == f2.FastHash() {
		t.Error("distinct flows should (overwhelmingly) hash differently")
	}
}

func TestSerializeBufferPrepend(t *testing.T) {
	b := NewSerializeBuffer(8, 0)
	b.PushPayload([]byte("xyz"))
	copy(b.PrependBytes(2), "ab")
	if got := string(b.Bytes()); got != "abxyz" {
		t.Errorf("Bytes() = %q, want %q", got, "abxyz")
	}
	// Prepend beyond reserved headroom forces a front-grow.
	copy(b.PrependBytes(10), "0123456789")
	if got := string(b.Bytes()); got != "0123456789abxyz" {
		t.Errorf("after grow: %q", got)
	}
}

func TestSerializeBufferAppendAndClear(t *testing.T) {
	b := NewSerializeBuffer(4, 4)
	copy(b.AppendBytes(3), "end")
	if got := string(b.Bytes()); got != "end" {
		t.Errorf("Bytes() = %q", got)
	}
	b.Clear(4)
	if b.Len() != 0 {
		t.Errorf("Len after Clear = %d", b.Len())
	}
	b.PushPayload([]byte("pp"))
	if got := string(b.Bytes()); got != "pp" {
		t.Errorf("after Clear+Push: %q", got)
	}
}

func TestSerializeBufferZeroValue(t *testing.T) {
	var b SerializeBuffer
	copy(b.PrependBytes(3), "abc")
	if string(b.Bytes()) != "abc" {
		t.Errorf("zero-value buffer: %q", b.Bytes())
	}
}

func TestLayerTypeString(t *testing.T) {
	if LayerTypeIPv4.String() != "IPv4" {
		t.Errorf("IPv4 name = %q", LayerTypeIPv4)
	}
	if LayerType(0).String() == "IPv4" {
		t.Error("zero layer type must not alias IPv4")
	}
	if LayerType(9999).String() != "LayerType(9999)" {
		t.Errorf("out of range = %q", LayerType(9999))
	}
}

func TestParserDecodeLayers(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	payload := []byte("data!")
	buf := NewSerializeBuffer(28, len(payload))
	buf.PushPayload(payload)
	if err := SerializeLayers(buf,
		&IPv4{TTL: 3, Protocol: ProtoUDP, Src: src, Dst: dst},
		&UDP{SrcPort: 7, DstPort: 9, PseudoSrc: src, PseudoDst: dst},
	); err != nil {
		t.Fatal(err)
	}
	var (
		ip  IPv4
		udp UDP
		pl  Payload
	)
	p := NewParser(LayerTypeIPv4, &ip, &udp, &pl)
	var decoded []LayerType
	if err := p.DecodeLayers(buf.Bytes(), &decoded); err != nil {
		t.Fatalf("DecodeLayers: %v", err)
	}
	want := []LayerType{LayerTypeIPv4, LayerTypeUDP, LayerTypePayload}
	if len(decoded) != len(want) {
		t.Fatalf("decoded = %v, want %v", decoded, want)
	}
	for i := range want {
		if decoded[i] != want[i] {
			t.Fatalf("decoded[%d] = %v, want %v", i, decoded[i], want[i])
		}
	}
	if ip.Src != src || udp.SrcPort != 7 || !bytes.Equal(pl, payload) {
		t.Error("parsed layer contents mismatch")
	}
}

func TestParserNoDecoder(t *testing.T) {
	src, dst := addr("10.0.0.1"), addr("10.0.0.2")
	buf := NewSerializeBuffer(28, 2)
	buf.PushPayload([]byte("zz"))
	if err := SerializeLayers(buf,
		&IPv4{TTL: 3, Protocol: ProtoUDP, Src: src, Dst: dst},
		&UDP{SrcPort: 7, DstPort: 9},
	); err != nil {
		t.Fatal(err)
	}
	var ip IPv4
	p := NewParser(LayerTypeIPv4, &ip)
	var decoded []LayerType
	err := p.DecodeLayers(buf.Bytes(), &decoded)
	var nd ErrNoDecoder
	if !asErrNoDecoder(err, &nd) || nd.LayerType != LayerTypeUDP {
		t.Fatalf("err = %v, want ErrNoDecoder{UDP}", err)
	}
	if len(decoded) != 1 || decoded[0] != LayerTypeIPv4 {
		t.Errorf("decoded = %v, want [IPv4] despite error", decoded)
	}
}

func asErrNoDecoder(err error, target *ErrNoDecoder) bool {
	nd, ok := err.(ErrNoDecoder)
	if ok {
		*target = nd
	}
	return ok
}

func TestParserEmptyPacket(t *testing.T) {
	p := NewParser(LayerTypeIPv4, &IPv4{})
	var decoded []LayerType
	if err := p.DecodeLayers(nil, &decoded); err != ErrEmptyPacket {
		t.Errorf("err = %v, want ErrEmptyPacket", err)
	}
}

func TestParsePacketErrorLayer(t *testing.T) {
	junk := []byte{0x45, 0x00} // truncated IPv4
	pkt := ParsePacket(junk, LayerTypeIPv4)
	if pkt.ErrorLayer() == nil {
		t.Error("want decode error for truncated packet")
	}
	if pkt.NetworkLayer() != nil {
		t.Error("no network layer should be present")
	}
	if !bytes.Equal(pkt.Data(), junk) {
		t.Error("Data() must return original bytes")
	}
}

func TestFastHashDeterminism(t *testing.T) {
	e := IPv4Endpoint(addr("203.0.113.7"))
	if e.FastHash() != e.FastHash() {
		t.Error("FastHash must be deterministic")
	}
}

func addrFrom4(b [4]byte) netip.Addr { return netip.AddrFrom4(b) }
