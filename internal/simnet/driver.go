// Package simnet bridges ordinary blocking Go code onto the netem
// discrete-event simulator: goroutines block in net.Conn / net.PacketConn
// calls while a driver advances virtual time, so unmodified protocol
// stacks (net/http, the dnssim resolver protocol, the endhost shim) run
// over the emulated metro without knowing it is not a real network.
//
// # Execution model
//
// A Net wraps a serial-engine *netem.Simulator. Application goroutines are
// registered with Go and synchronize on conns created by ListenUDP /
// DialUDP / ListenStream / DialStream. Run drives the whole system: it
// repeatedly (1) hands the CPU to exactly one runnable blocked goroutine
// at a time and waits for the process to go quiescent again, then (2)
// advances the simulator by one event (or to the next virtual-time
// deadline) when nothing is runnable. Virtual time is therefore frozen
// whenever application code runs, and every packet injection happens at a
// deterministic virtual instant in a deterministic order.
//
// # Determinism contract
//
// Runs are bit-identical for a fixed seed provided the workload keeps the
// driver's serialization meaningful: all cross-goroutine ordering must
// flow through sim-backed conns, virtual-time Sleep/deadlines, or plain
// (unbuffered or ordered) channel handoffs that resolve within one wake.
// Goroutines woken by the driver run to quiescence one at a time, so two
// goroutines never race to inject packets unless application code itself
// wakes a second injector mid-cascade and keeps both running — avoid
// that shape (standard request/response protocols, including net/http's
// background read/write loops, are fine).
//
// The driver detects quiescence by parsing runtime.Stack: a goroutine
// blocked in channel receive, select, or mutex wait is idle; anything
// running, runnable, or in a syscall is still working. This is the only
// portable signal that covers foreign goroutines (net/http internals)
// that the package never sees directly.
package simnet

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/obs"
)

// Net couples a serial netem.Simulator to blocking endpoints. Create one
// with New, add conns, register workload goroutines with Go, then call
// Run from the owning goroutine. All methods are safe for concurrent use
// by workload goroutines.
type Net struct {
	sim *netem.Simulator

	// mu serializes every conn operation and the driver itself.
	// entering counts goroutines that have committed to acquiring mu but
	// may not yet be visible as runnable in a stack dump; the driver
	// treats entering != 0 as "not quiescent".
	mu       sync.Mutex
	entering atomic.Int64

	readyQ []*waiter // woken waiters awaiting their serialized dispatch
	timers timerHeap // virtual-time wakeups (deadlines, Sleep)
	conds  []condWaiter

	gos      int  // registered workload goroutines still live
	running  bool // a Run call is in progress
	timerSeq uint64

	binds    map[*netem.Node]*nodeBind
	stackBuf []byte // reused runtime.Stack scratch

	// stats: atomics, not mu-guarded, so registry CounterFuncs can read
	// them from a barrier callback that fires while the driver holds mu.
	wakes  atomic.Uint64
	steps  atomic.Uint64
	spinNs atomic.Int64
}

// waiter is one parked goroutine. All fields are guarded by Net.mu; the
// channel (buffered, capacity 1) carries the wake handoff.
type waiter struct {
	ch     chan struct{}
	parked bool   // currently blocked (or committed to blocking)
	queued bool   // present in readyQ
	gen    uint64 // invalidates stale timer entries across re-parks
}

type condWaiter struct {
	w    *waiter
	pred func() bool // evaluated with mu held
}

type timerEntry struct {
	at  time.Time
	seq uint64 // FIFO among equal deadlines
	w   *waiter
	gen uint64
}

// New wraps sim, which must be using the serial engine (the default;
// SetWorkers(1)). The sharded engine cannot host external waiters — its
// shards run ahead of each other speculatively — and the first conn
// operation will panic via netem's guard if sim is sharded.
func New(sim *netem.Simulator) *Net {
	return &Net{sim: sim, binds: make(map[*netem.Node]*nodeBind)}
}

// Sim returns the underlying simulator.
func (n *Net) Sim() *netem.Simulator { return n.sim }

// lock acquires mu from a workload goroutine, flagging the acquisition
// so the driver's quiescence check cannot miss a goroutine that is
// between "decided to act" and "visible in the stack dump".
func (n *Net) lock() {
	n.entering.Add(1)
	n.mu.Lock()
	n.entering.Add(-1)
}

func newWaiter() *waiter { return &waiter{ch: make(chan struct{}, 1)} }

// wake marks w runnable. With the driver live it enqueues for serialized
// dispatch; otherwise (setup/teardown outside Run) it signals directly.
// Callers hold mu.
func (n *Net) wake(w *waiter) {
	if !w.parked {
		return
	}
	w.parked = false
	if !n.running {
		select {
		case w.ch <- struct{}{}:
		default:
		}
		return
	}
	if !w.queued {
		w.queued = true
		n.readyQ = append(n.readyQ, w)
	}
}

// await blocks the calling goroutine until the driver (or a direct wake)
// signals w. Called with mu held and w.parked already true; returns with
// mu re-held.
func (n *Net) await(w *waiter) {
	n.mu.Unlock()
	<-w.ch
	n.entering.Add(1)
	n.mu.Lock()
	n.entering.Add(-1)
}

// parkTimer registers a virtual-time wakeup for w at the given instant.
// Callers hold mu and have set w.parked.
func (n *Net) parkTimer(w *waiter, at time.Time) {
	n.timerSeq++
	n.timers.push(timerEntry{at: at, seq: n.timerSeq, w: w, gen: w.gen})
}

// Go registers fn as a workload goroutine. The goroutine starts parked;
// Run releases registered goroutines one at a time in registration
// order, which pins the initial packet-injection order regardless of OS
// scheduling. Run returns once every registered goroutine has finished.
func (n *Net) Go(fn func()) {
	n.lock()
	n.gos++
	w := newWaiter()
	w.parked = true
	w.queued = true
	n.readyQ = append(n.readyQ, w)
	n.mu.Unlock()
	go func() {
		defer func() {
			n.lock()
			n.gos--
			n.mu.Unlock()
		}()
		<-w.ch
		fn()
	}()
}

// Sleep blocks the calling goroutine for d of virtual time. Must be
// called from a goroutine the driver manages (registered via Go, or
// transitively woken by one) while Run is active.
func (n *Net) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	n.lock()
	w := newWaiter()
	w.parked = true
	w.gen++
	n.parkTimer(w, n.sim.Now().Add(d))
	n.await(w)
	n.mu.Unlock()
}

// Now returns the current virtual time. Safe from any goroutine; while a
// workload goroutine runs, virtual time is frozen, so the value is exact.
func (n *Net) Now() time.Time {
	n.lock()
	defer n.mu.Unlock()
	return n.sim.Now()
}

// Locked runs fn under the driver's lock. Workload goroutines use it to
// touch sim-attached state that is not itself a simnet conn — an
// endhost.Host, a netem node, experiment counters mutated by delivery
// handlers — without racing the driver. fn must not block on a simnet
// conn (that would self-deadlock); inject packets, read state, return.
func (n *Net) Locked(fn func()) {
	n.lock()
	defer n.mu.Unlock()
	fn()
}

// Wait blocks until pred() reports true. pred is evaluated with the
// driver's lock held, after every simulator step — use it to wait for
// state changed by delivery handlers or other goroutines.
func (n *Net) Wait(pred func() bool) {
	n.lock()
	defer n.mu.Unlock()
	for !pred() {
		w := newWaiter()
		w.parked = true
		w.gen++
		n.conds = append(n.conds, condWaiter{w: w, pred: pred})
		n.await(w)
	}
}

// Run drives the simulator until every goroutine registered with Go has
// returned. It returns a non-nil error on deadlock: goroutines still
// live, nothing runnable, and no simulator event or timer left to wake
// anyone. Foreign daemon goroutines (an http.Server accept loop, say)
// may still be parked on conns when Run returns; closing their conns
// and listeners afterwards unblocks them.
func (n *Net) Run() error {
	n.lock()
	defer n.mu.Unlock()
	if n.running {
		panic("simnet: Net.Run reentered")
	}
	n.running = true
	defer func() { n.running = false }()
	for {
		n.settle()
		n.checkConds()
		if len(n.readyQ) > 0 {
			continue
		}
		if n.gos == 0 {
			return nil
		}
		if !n.advance() {
			return n.deadlockError()
		}
	}
}

// settle dispatches woken waiters one at a time, waiting for full
// process quiescence between dispatches, and returns only when nothing
// is runnable anywhere. Called with mu held; releases and reacquires it
// while polling.
func (n *Net) settle() {
	spins := 0
	for {
		if n.entering.Load() != 0 {
			n.relax(&spins)
			continue
		}
		if len(n.readyQ) > 0 {
			w := n.readyQ[0]
			copy(n.readyQ, n.readyQ[1:])
			n.readyQ = n.readyQ[:len(n.readyQ)-1]
			w.queued = false
			n.wakes.Add(1)
			w.ch <- struct{}{}
			n.relax(&spins)
			continue
		}
		if !n.othersIdle() {
			n.relax(&spins)
			continue
		}
		// Idle per the stack dump — but a goroutine may have slipped into
		// the entering window or the readyQ between the dump and now.
		if n.entering.Load() != 0 || len(n.readyQ) > 0 {
			continue
		}
		return
	}
}

// relax yields the lock so woken or entering goroutines can run, with an
// occasional real sleep to avoid burning a core against the scheduler.
func (n *Net) relax(spins *int) {
	*spins++
	n.mu.Unlock()
	if *spins%512 == 0 {
		t0 := time.Now()
		time.Sleep(20 * time.Microsecond)
		n.spinNs.Add(int64(time.Since(t0)))
	} else {
		runtime.Gosched()
	}
	n.mu.Lock()
}

// advance moves the simulation forward — one event step or one batch of
// due timers per iteration — until some waiter becomes runnable. It
// reports false when there is nothing left to advance.
func (n *Net) advance() bool {
	progress := false
	for len(n.readyQ) == 0 {
		tEv, okEv := n.sim.NextEventAt()
		tTm, okTm := n.timers.peekLive()
		switch {
		case okEv && (!okTm || !tEv.After(tTm)):
			n.sim.Step()
			n.steps.Add(1)
			progress = true
		case okTm:
			if tTm.After(n.sim.Now()) {
				n.sim.RunUntil(tTm)
			}
			n.fireTimers(tTm)
			progress = true
		default:
			return progress
		}
		n.checkConds()
	}
	return true
}

// fireTimers wakes every live timer due at or before t.
func (n *Net) fireTimers(t time.Time) {
	for len(n.timers) > 0 && !n.timers[0].at.After(t) {
		e := n.timers.pop()
		if e.w.parked && e.w.gen == e.gen {
			n.wake(e.w)
		}
	}
}

// checkConds wakes Wait-ers whose predicates now hold.
func (n *Net) checkConds() {
	kept := n.conds[:0]
	for _, cw := range n.conds {
		if cw.w.parked && cw.pred() {
			n.wake(cw.w)
			continue
		}
		if cw.w.parked {
			kept = append(kept, cw)
		}
	}
	n.conds = kept
}

func (n *Net) deadlockError() error {
	parkedReaders := 0
	for _, b := range n.binds {
		parkedReaders += b.parkedWaiters()
	}
	return fmt.Errorf("simnet: deadlock: %d goroutines live, %d conn waiters parked, %d cond waiters, no events or timers pending (sim now %s)",
		n.gos, parkedReaders, len(n.conds), n.sim.Now().Format(time.RFC3339Nano))
}

// othersIdle reports whether every goroutine in the process except the
// caller is blocked (chan receive, select, IO wait, ...). Called with mu
// held. The first record in a runtime.Stack dump is always the calling
// goroutine, so exactly one "running" record is expected.
func (n *Net) othersIdle() bool {
	var dump []byte
	for sz := 256 << 10; ; sz *= 2 {
		if cap(n.stackBuf) < sz {
			n.stackBuf = make([]byte, sz)
		}
		buf := n.stackBuf[:sz]
		m := runtime.Stack(buf, true)
		if m < len(buf) {
			dump = buf[:m]
			break
		}
	}
	return countBusy(dump) <= 1
}

var goroutineHdr = []byte("goroutine ")

// countBusy counts goroutine records in a runtime.Stack dump whose state
// is running, runnable, or syscall. States like "chan receive", "select",
// "sync.Mutex.Lock", "IO wait", and "sleep" are all blocked: the runtime
// names every non-blocked state with one of the three busy words.
func countBusy(dump []byte) int {
	busy := 0
	for len(dump) > 0 {
		// Records are separated by blank lines; headers look like
		// "goroutine 12 [chan receive, 3 minutes]:".
		nl := bytes.IndexByte(dump, '\n')
		var line []byte
		if nl < 0 {
			line, dump = dump, nil
		} else {
			line, dump = dump[:nl], dump[nl+1:]
		}
		if bytes.HasPrefix(line, goroutineHdr) {
			if lb := bytes.IndexByte(line, '['); lb >= 0 {
				state := line[lb+1:]
				if end := bytes.IndexAny(state, ",]"); end >= 0 {
					state = state[:end]
				}
				switch string(state) {
				case "running", "runnable", "syscall":
					busy++
				}
			}
		}
	}
	return busy
}

// Stats reports driver counters: serialized wakeups delivered, simulator
// steps taken, and cumulative real time spent sleeping in the settle
// loop. Safe from any goroutine, including registry snapshots taken
// while the driver runs.
func (n *Net) Stats() (wakes, steps uint64, spin time.Duration) {
	return n.wakes.Load(), n.steps.Load(), time.Duration(n.spinNs.Load())
}

// Instrument registers the driver's counters on reg:
//
//	simnet_wakes_total        serialized goroutine wakeups delivered
//	simnet_steps_total        simulator events single-stepped
//	simnet_spin_seconds_total real time slept in the quiescence loop
//
// Wakes and steps are deterministic for a seeded workload; the spin time
// is wall-clock and registered Volatile so it never enters deterministic
// recorder rings. The families read atomics — no driver lock — so they
// are safe to sample from barrier callbacks and live HTTP scrapes alike.
func (n *Net) Instrument(reg *obs.Registry) {
	reg.CounterFunc("simnet_wakes_total",
		"Serialized wakeups the simnet driver delivered to workload goroutines.",
		func() uint64 { return n.wakes.Load() })
	reg.CounterFunc("simnet_steps_total",
		"Simulator events the simnet driver single-stepped.",
		func() uint64 { return n.steps.Load() })
	reg.GaugeFunc("simnet_spin_seconds_total",
		"Real time the driver slept waiting for process quiescence.",
		func() float64 { return time.Duration(n.spinNs.Load()).Seconds() },
		obs.Volatile())
}

// timerHeap is a min-heap on (at, seq).
type timerHeap []timerEntry

func (h timerHeap) less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}

func (h *timerHeap) push(e timerEntry) {
	*h = append(*h, e)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *timerHeap) pop() timerEntry {
	old := *h
	e := old[0]
	last := len(old) - 1
	old[0] = old[last]
	*h = old[:last]
	h.down(0)
	return e
}

func (h timerHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < len(h) && h.less(l, small) {
			small = l
		}
		if r < len(h) && h.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// peekLive returns the earliest deadline among timers whose waiter is
// still parked in the same park generation, discarding stale entries.
func (h *timerHeap) peekLive() (time.Time, bool) {
	for len(*h) > 0 {
		e := (*h)[0]
		if e.w.parked && e.w.gen == e.gen {
			return e.at, true
		}
		h.pop()
	}
	return time.Time{}, false
}
