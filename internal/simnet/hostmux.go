package simnet

import (
	"fmt"
	"net/netip"
	"time"

	"netneutral/internal/endhost"
	"netneutral/internal/netem"
)

// HostMux carries simnet streams over an endhost.Host's encrypted
// neutralizer conduits (§3.2 of the paper): frames travel as shim
// payloads through the neutralizer instead of raw UDP datagrams, so a
// real protocol stack (net/http, say) runs end to end over the
// indirection path an ISP cannot selectively throttle.
//
// Streams are keyed by peer address — one stream per remote host at a
// time, matching the endhost package's one-conversation-per-peer model.
type HostMux struct {
	n      *Net
	host   *endhost.Host
	conns  map[netip.Addr]*StreamConn
	ln     *StreamListener // nil until Listen
	prev   func(peer netip.Addr, data []byte)
	closed bool
}

// AttachHost binds host's packet handler to node (shim packets route to
// endhost.Host.HandlePacket; UDP keeps flowing to simnet conns) and
// intercepts the host's data callback to feed stream frames into the
// mux. The host's previous OnData callback still receives any data that
// is not stream-framed, so non-stream uses coexist.
func (n *Net) AttachHost(node *netem.Node, host *endhost.Host, prev func(peer netip.Addr, data []byte)) *HostMux {
	n.lock()
	defer n.mu.Unlock()
	b := n.bind(node)
	b.shim = host.HandlePacket
	m := &HostMux{n: n, host: host, conns: make(map[netip.Addr]*StreamConn), prev: prev}
	host.SetOnData(m.onData)
	return m
}

// Host returns the wrapped endhost.
func (m *HostMux) Host() *endhost.Host { return m.host }

// onData is the endhost data callback: driver context, mu held (the
// endhost only processes packets from the node handler, which the
// simulator invokes under the driver).
func (m *HostMux) onData(peer netip.Addr, data []byte) {
	if c, ok := m.conns[peer]; ok {
		c.handleFrame(data)
		return
	}
	if m.ln != nil {
		m.ln.deliver(netip.AddrPortFrom(peer, 0), data)
		return
	}
	if m.prev != nil {
		m.prev(peer, data)
	}
}

// Listen accepts inbound streams from any peer that has a conversation
// with this host. At most one listener per mux.
func (m *HostMux) Listen() (*StreamListener, error) {
	m.n.lock()
	defer m.n.mu.Unlock()
	if m.ln != nil {
		return nil, fmt.Errorf("simnet: HostMux already listening")
	}
	addr := streamAddr(netip.AddrPortFrom(m.host.Addr(), 0))
	m.ln = newStreamListener(m.n, addr, func(remote netip.AddrPort, frame []byte) error {
		return m.host.Send(remote.Addr(), frame)
	})
	m.ln.dereg = func() { m.ln = nil }
	return m.ln, nil
}

// Dial opens a stream to peer over the host's established conversation
// (the caller must have completed Setup/Connect first; endhost returns
// ErrNoConversation otherwise).
func (m *HostMux) Dial(peer netip.Addr) (*StreamConn, error) {
	m.n.lock()
	defer m.n.mu.Unlock()
	if _, ok := m.conns[peer]; ok {
		return nil, fmt.Errorf("simnet: stream to %s already open", peer)
	}
	c := newStreamConn(m.n, streamAddr(netip.AddrPortFrom(m.host.Addr(), 0)),
		streamAddr(netip.AddrPortFrom(peer, 0)),
		func(frame []byte) error { return m.host.Send(peer, frame) })
	c.nextSeq = 1
	c.onClose = func() { delete(m.conns, peer) }
	m.conns[peer] = c
	if err := c.send(putFrame(frameSYN, 0, nil)); err != nil {
		delete(m.conns, peer)
		return nil, err
	}
	return c, nil
}

// WaitConduit blocks until the host holds a conduit to neut (possibly
// still provisional — the grant rides the first data exchange), or the
// deadline passes (virtual time).
func (m *HostMux) WaitConduit(neut netip.Addr, deadline time.Time) error {
	ok := false
	m.n.Wait(func() bool {
		if m.host.HasConduit(neut) {
			ok = true
			return true
		}
		return !m.n.sim.Now().Before(deadline)
	})
	if !ok {
		return fmt.Errorf("simnet: conduit to %s not established by %s", neut, deadline.Format(time.RFC3339))
	}
	return nil
}
