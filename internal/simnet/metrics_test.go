package simnet

import (
	"testing"
	"time"

	"netneutral/internal/obs"
)

// TestNetInstrument pins the driver's registry families against Stats()
// after a run, including snapshotting concurrently-safe reads and the
// volatile tagging of the wall-clock spin family.
func TestNetInstrument(t *testing.T) {
	n, _, _ := pair(t)
	reg := obs.NewRegistry()
	n.Instrument(reg)

	n.Go(func() {
		n.Sleep(10 * time.Millisecond)
		n.Sleep(5 * time.Millisecond)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}

	wakes, steps, _ := n.Stats()
	if wakes == 0 {
		t.Fatal("no wakes recorded (degenerate run)")
	}
	snap := reg.Snapshot()
	if m := snap.Get("simnet_wakes_total"); m == nil || uint64(m.Value) != wakes {
		t.Errorf("simnet_wakes_total = %+v, Stats says %d", m, wakes)
	}
	if m := snap.Get("simnet_steps_total"); m == nil || uint64(m.Value) != steps {
		t.Errorf("simnet_steps_total = %+v, Stats says %d", m, steps)
	}
	spin := snap.Get("simnet_spin_seconds_total")
	if spin == nil || !spin.Volatile {
		t.Errorf("simnet_spin_seconds_total missing or not volatile: %+v", spin)
	}
}
