package simnet

import (
	"fmt"
	"net"
	"net/netip"
	"os"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

// ephemeralBase is where per-node automatic port allocation starts.
const ephemeralBase = 40000

// defaultQueueCap bounds a conn's inbound datagram queue; arrivals
// beyond it are counted and dropped, like a full socket buffer.
const defaultQueueCap = 1024

// portSink receives demultiplexed datagrams for one local UDP port.
// deliver runs in driver context with Net.mu held.
type portSink interface {
	deliverDgram(src netip.AddrPort, payload []byte)
	parked() int
}

// nodeBind owns a netem.Node's delivery handler and demultiplexes
// arriving packets: UDP datagrams go to the portSink bound to their
// destination port, shim packets to the attached endhost, and anything
// else to the fallback handler the node had before binding.
type nodeBind struct {
	n        *Net
	node     *netem.Node
	ports    map[uint16]portSink
	shim     netem.Handler // ProtoShim packets (endhost.HandlePacket)
	fallback netem.Handler // whatever handler the node had before
	nextPort uint16
}

// bind attaches (once) to node's delivery handler.
func (n *Net) bind(node *netem.Node) *nodeBind {
	if b, ok := n.binds[node]; ok {
		return b
	}
	b := &nodeBind{n: n, node: node, ports: make(map[uint16]portSink), nextPort: ephemeralBase}
	n.binds[node] = b
	node.SetHandler(b.handle)
	return b
}

// handle is the node's netem delivery handler: driver context, mu held
// (the simulator only advances inside Net.Run, which holds mu).
func (b *nodeBind) handle(now time.Time, pkt []byte) {
	var ip wire.IPv4
	if err := ip.DecodeFromBytes(pkt); err != nil {
		return
	}
	switch ip.Protocol {
	case wire.ProtoUDP:
		var udp wire.UDP
		if err := udp.DecodeFromBytes(ip.Payload()); err != nil {
			return
		}
		if sink, ok := b.ports[udp.DstPort]; ok {
			sink.deliverDgram(netip.AddrPortFrom(ip.Src, udp.SrcPort), udp.Payload())
			return
		}
	case wire.ProtoShim:
		if b.shim != nil {
			b.shim(now, pkt)
			return
		}
	}
	if b.fallback != nil {
		b.fallback(now, pkt)
	}
}

// allocPort claims a specific port, or the next free ephemeral port if
// port is zero.
func (b *nodeBind) allocPort(port uint16, sink portSink) (uint16, error) {
	if port != 0 {
		if _, taken := b.ports[port]; taken {
			return 0, fmt.Errorf("simnet: port %d already bound on %s", port, b.node.Addr())
		}
		b.ports[port] = sink
		return port, nil
	}
	for i := 0; i < 1<<16; i++ {
		p := b.nextPort
		b.nextPort++
		if b.nextPort == 0 {
			b.nextPort = ephemeralBase
		}
		if _, taken := b.ports[p]; !taken && p != 0 {
			b.ports[p] = sink
			return p, nil
		}
	}
	return 0, fmt.Errorf("simnet: no free ports on %s", b.node.Addr())
}

func (b *nodeBind) parkedWaiters() int {
	total := 0
	for _, s := range b.ports {
		total += s.parked()
	}
	return total
}

// sendUDP serializes and injects one datagram from this node. Driver or
// workload context, mu held.
func (b *nodeBind) sendUDP(sport uint16, dst netip.AddrPort, payload []byte) error {
	src := b.node.Addr()
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst.Addr()},
		&wire.UDP{SrcPort: sport, DstPort: dst.Port(), PseudoSrc: src, PseudoDst: dst.Addr()},
	)
	if err != nil {
		return err
	}
	return b.node.Send(buf.Bytes())
}

// dgram is one queued inbound datagram.
type dgram struct {
	src  netip.AddrPort
	data []byte
}

// UDPConn is a datagram endpoint on a simulated node. It implements
// net.PacketConn always, and net.Conn once connected (created by DialUDP
// or given a remote). Reads block the calling goroutine until a datagram
// arrives in virtual time, the deadline (also virtual time) expires, or
// the conn is closed. Writes never block: the datagram is injected into
// the simulator at the current virtual instant.
type UDPConn struct {
	n       *Net
	b       *nodeBind
	port    uint16
	remote  netip.AddrPort // zero unless connected
	queue   []dgram
	readers []*waiter
	rdDl    time.Time
	closed  bool
	drops   uint64
	qcap    int
}

// ListenUDP binds a datagram conn to port on node (0 picks an ephemeral
// port). The conn receives every UDP datagram addressed to any of the
// node's addresses at that port.
func (n *Net) ListenUDP(node *netem.Node, port uint16) (*UDPConn, error) {
	n.lock()
	defer n.mu.Unlock()
	b := n.bind(node)
	c := &UDPConn{n: n, b: b, qcap: defaultQueueCap}
	p, err := b.allocPort(port, c)
	if err != nil {
		return nil, err
	}
	c.port = p
	return c, nil
}

// DialUDP binds an ephemeral port on node connected to remote: Read and
// Write use remote, and datagrams from other sources are discarded.
func (n *Net) DialUDP(node *netem.Node, remote netip.AddrPort) (*UDPConn, error) {
	c, err := n.ListenUDP(node, 0)
	if err != nil {
		return nil, err
	}
	c.remote = remote
	return c, nil
}

// deliverDgram implements portSink. Driver context, mu held.
func (c *UDPConn) deliverDgram(src netip.AddrPort, payload []byte) {
	if c.closed {
		return
	}
	if c.remote.IsValid() && src != c.remote {
		return
	}
	if len(c.queue) >= c.qcap {
		c.drops++
		return
	}
	c.queue = append(c.queue, dgram{src: src, data: append([]byte(nil), payload...)})
	if len(c.readers) > 0 {
		w := c.readers[0]
		c.readers = c.readers[1:]
		c.n.wake(w)
	}
}

func (c *UDPConn) parked() int { return len(c.readers) }

// dlExpired reports whether the read deadline has passed in virtual time.
func (c *UDPConn) dlExpired() bool {
	return !c.rdDl.IsZero() && !c.n.sim.Now().Before(c.rdDl)
}

// ReadFrom implements net.PacketConn. It blocks in virtual time.
func (c *UDPConn) ReadFrom(p []byte) (int, net.Addr, error) {
	c.n.lock()
	defer c.n.mu.Unlock()
	w := newWaiter()
	for {
		if len(c.queue) > 0 {
			d := c.queue[0]
			c.queue = c.queue[1:]
			m := copy(p, d.data)
			return m, net.UDPAddrFromAddrPort(d.src), nil
		}
		if c.closed {
			return 0, nil, net.ErrClosed
		}
		if c.dlExpired() {
			return 0, nil, os.ErrDeadlineExceeded
		}
		w.parked = true
		w.gen++
		if !c.rdDl.IsZero() {
			c.n.parkTimer(w, c.rdDl)
		}
		c.readers = append(c.readers, w)
		c.n.await(w)
		c.unregisterReader(w)
	}
}

// unregisterReader drops w from the parked-reader list after a wake that
// may not have come through deliverDgram (deadline, close, spurious).
func (c *UDPConn) unregisterReader(w *waiter) {
	for i, r := range c.readers {
		if r == w {
			c.readers = append(c.readers[:i], c.readers[i+1:]...)
			return
		}
	}
}

// Read implements net.Conn; the conn must be connected (DialUDP).
func (c *UDPConn) Read(p []byte) (int, error) {
	if !c.remote.IsValid() {
		return 0, fmt.Errorf("simnet: Read on unconnected UDPConn")
	}
	m, _, err := c.ReadFrom(p)
	return m, err
}

// WriteTo implements net.PacketConn. addr must be a *net.UDPAddr (or
// net.Addr whose String parses as one).
func (c *UDPConn) WriteTo(p []byte, addr net.Addr) (int, error) {
	dst, err := toAddrPort(addr)
	if err != nil {
		return 0, err
	}
	c.n.lock()
	defer c.n.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	if err := c.b.sendUDP(c.port, dst, p); err != nil {
		return 0, err
	}
	return len(p), nil
}

// Write implements net.Conn; the conn must be connected.
func (c *UDPConn) Write(p []byte) (int, error) {
	if !c.remote.IsValid() {
		return 0, fmt.Errorf("simnet: Write on unconnected UDPConn")
	}
	return c.WriteTo(p, net.UDPAddrFromAddrPort(c.remote))
}

// Close releases the port and wakes all blocked readers with
// net.ErrClosed. Closing twice is a no-op.
func (c *UDPConn) Close() error {
	c.n.lock()
	defer c.n.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	delete(c.b.ports, c.port)
	for _, w := range c.readers {
		c.n.wake(w)
	}
	c.readers = nil
	return nil
}

// LocalAddr implements net.PacketConn and net.Conn.
func (c *UDPConn) LocalAddr() net.Addr {
	return net.UDPAddrFromAddrPort(netip.AddrPortFrom(c.b.node.Addr(), c.port))
}

// LocalPort returns the bound UDP port.
func (c *UDPConn) LocalPort() uint16 { return c.port }

// RemoteAddr implements net.Conn; nil when unconnected.
func (c *UDPConn) RemoteAddr() net.Addr {
	if !c.remote.IsValid() {
		return nil
	}
	return net.UDPAddrFromAddrPort(c.remote)
}

// SetDeadline implements net.Conn. Deadlines are in virtual time.
func (c *UDPConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn in virtual time: a deadline in the
// virtual past (including net/http's "aLongTimeAgo") immediately unblocks
// pending reads with os.ErrDeadlineExceeded.
func (c *UDPConn) SetReadDeadline(t time.Time) error {
	c.n.lock()
	defer c.n.mu.Unlock()
	c.rdDl = t
	// Wake every parked reader so it re-evaluates against the new
	// deadline (re-parking with a fresh timer if still unexpired).
	for _, w := range c.readers {
		c.n.wake(w)
	}
	return nil
}

// SetWriteDeadline implements net.Conn; writes never block, so it is a
// no-op.
func (c *UDPConn) SetWriteDeadline(time.Time) error { return nil }

// Drops reports inbound datagrams discarded due to a full queue.
func (c *UDPConn) Drops() uint64 {
	c.n.lock()
	defer c.n.mu.Unlock()
	return c.drops
}

// toAddrPort converts a net.Addr to netip.AddrPort.
func toAddrPort(a net.Addr) (netip.AddrPort, error) {
	switch v := a.(type) {
	case *net.UDPAddr:
		ap := v.AddrPort()
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
	case *net.TCPAddr:
		ap := v.AddrPort()
		return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
	}
	ap, err := netip.ParseAddrPort(a.String())
	if err != nil {
		return netip.AddrPort{}, fmt.Errorf("simnet: unusable address %v: %w", a, err)
	}
	return netip.AddrPortFrom(ap.Addr().Unmap(), ap.Port()), nil
}
