package simnet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"os"
	"time"

	"netneutral/internal/netem"
)

// Stream framing. The emulated fabric is lossless and order-preserving
// for a fixed path (FIFO links, generous queues), so the stream layer is
// a thin shim: framed datagrams with sequence numbers for loss
// *detection*, not recovery. A gap means the path dropped a frame (queue
// overflow or a throttling middlebox) and the conn breaks — which is the
// honest behaviour for experiments measuring discrimination.
const (
	frameSYN  = 1 // opens a stream; consumes seq 0
	frameDATA = 2
	frameFIN  = 3 // clean end of the peer's write side
	frameRST  = 4 // abort

	frameHdrLen = 5 // kind u8 | seq u32 BE
	// StreamMSS is the maximum payload per DATA frame.
	StreamMSS = 1024
)

// ErrStreamBroken reports a sequence gap: the underlying path dropped a
// frame, which the no-retransmit stream layer cannot repair.
var ErrStreamBroken = errors.New("simnet: stream broken (frame lost on path)")

func putFrame(kind byte, seq uint32, payload []byte) []byte {
	f := make([]byte, frameHdrLen+len(payload))
	f[0] = kind
	f[1], f[2], f[3], f[4] = byte(seq>>24), byte(seq>>16), byte(seq>>8), byte(seq)
	copy(f[frameHdrLen:], payload)
	return f
}

// StreamConn is an ordered byte stream over the simulated fabric,
// implementing net.Conn. It is transport-agnostic: the send hook injects
// one frame toward the peer (UDP datagram or endhost conduit payload).
type StreamConn struct {
	n      *Net
	send   func(frame []byte) error // mu held
	local  net.Addr
	remote net.Addr

	rbuf    []byte
	rpos    int
	nextSeq uint32 // next expected inbound seq
	sendSeq uint32 // last sent seq
	eof     bool   // FIN consumed in order
	rerr    error  // terminal receive error (gap, RST)
	closed  bool
	readers []*waiter
	rdDl    time.Time
	onClose func() // deregisters from the demux; mu held
}

func newStreamConn(n *Net, local, remote net.Addr, send func([]byte) error) *StreamConn {
	return &StreamConn{n: n, local: local, remote: remote, send: send}
}

// handleFrame consumes one inbound frame. Driver context, mu held.
func (c *StreamConn) handleFrame(payload []byte) {
	if c.closed || c.rerr != nil || len(payload) < frameHdrLen {
		return
	}
	kind := payload[0]
	seq := uint32(payload[1])<<24 | uint32(payload[2])<<16 | uint32(payload[3])<<8 | uint32(payload[4])
	body := payload[frameHdrLen:]
	switch kind {
	case frameSYN:
		// Duplicate SYN on an open conn: ignore.
	case frameDATA:
		if seq != c.nextSeq {
			c.fail(ErrStreamBroken)
			return
		}
		c.nextSeq++
		c.rbuf = append(c.rbuf, body...)
		c.wakeOneReader()
	case frameFIN:
		if seq != c.nextSeq {
			c.fail(ErrStreamBroken)
			return
		}
		c.nextSeq++
		c.eof = true
		c.wakeAllReaders()
	case frameRST:
		c.fail(fmt.Errorf("simnet: stream reset by peer"))
	}
}

func (c *StreamConn) fail(err error) {
	c.rerr = err
	c.wakeAllReaders()
}

func (c *StreamConn) wakeOneReader() {
	if len(c.readers) > 0 {
		w := c.readers[0]
		c.readers = c.readers[1:]
		c.n.wake(w)
	}
}

func (c *StreamConn) wakeAllReaders() {
	for _, w := range c.readers {
		c.n.wake(w)
	}
	c.readers = nil
}

func (c *StreamConn) parked() int { return len(c.readers) }

func (c *StreamConn) dlExpired() bool {
	return !c.rdDl.IsZero() && !c.n.sim.Now().Before(c.rdDl)
}

// Read implements net.Conn, blocking in virtual time. Buffered bytes are
// returned ahead of EOF or a terminal error.
func (c *StreamConn) Read(p []byte) (int, error) {
	c.n.lock()
	defer c.n.mu.Unlock()
	w := newWaiter()
	for {
		if c.rpos < len(c.rbuf) {
			m := copy(p, c.rbuf[c.rpos:])
			c.rpos += m
			if c.rpos == len(c.rbuf) {
				c.rbuf = c.rbuf[:0]
				c.rpos = 0
			}
			return m, nil
		}
		if c.rerr != nil {
			return 0, c.rerr
		}
		if c.eof {
			return 0, io.EOF
		}
		if c.closed {
			return 0, net.ErrClosed
		}
		if c.dlExpired() {
			return 0, os.ErrDeadlineExceeded
		}
		w.parked = true
		w.gen++
		if !c.rdDl.IsZero() {
			c.n.parkTimer(w, c.rdDl)
		}
		c.readers = append(c.readers, w)
		c.n.await(w)
		c.unregisterReader(w)
	}
}

func (c *StreamConn) unregisterReader(w *waiter) {
	for i, r := range c.readers {
		if r == w {
			c.readers = append(c.readers[:i], c.readers[i+1:]...)
			return
		}
	}
}

// Write implements net.Conn. Writes never block: frames are injected at
// the current virtual instant (the fabric's queues model backpressure).
func (c *StreamConn) Write(p []byte) (int, error) {
	c.n.lock()
	defer c.n.mu.Unlock()
	if c.closed {
		return 0, net.ErrClosed
	}
	written := 0
	for written < len(p) {
		chunk := p[written:min(written+StreamMSS, len(p))]
		c.sendSeq++
		if err := c.send(putFrame(frameDATA, c.sendSeq, chunk)); err != nil {
			return written, err
		}
		written += len(chunk)
	}
	return written, nil
}

// Close implements net.Conn: a FIN is sent (peer reads EOF after
// consuming buffered data), local blocked readers wake with
// net.ErrClosed, and the conn deregisters from its demux.
func (c *StreamConn) Close() error {
	c.n.lock()
	defer c.n.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	if c.rerr == nil {
		c.sendSeq++
		// Best-effort: the conn is closing regardless of send failure.
		_ = c.send(putFrame(frameFIN, c.sendSeq, nil))
	}
	c.wakeAllReaders()
	if c.onClose != nil {
		c.onClose()
	}
	return nil
}

// LocalAddr implements net.Conn.
func (c *StreamConn) LocalAddr() net.Addr { return c.local }

// RemoteAddr implements net.Conn.
func (c *StreamConn) RemoteAddr() net.Addr { return c.remote }

// SetDeadline implements net.Conn (virtual time; write side never blocks).
func (c *StreamConn) SetDeadline(t time.Time) error { return c.SetReadDeadline(t) }

// SetReadDeadline implements net.Conn in virtual time; see
// UDPConn.SetReadDeadline for the wake contract.
func (c *StreamConn) SetReadDeadline(t time.Time) error {
	c.n.lock()
	defer c.n.mu.Unlock()
	c.rdDl = t
	for _, w := range c.readers {
		c.n.wake(w)
	}
	c.readers = nil
	return nil
}

// SetWriteDeadline implements net.Conn; writes never block.
func (c *StreamConn) SetWriteDeadline(time.Time) error { return nil }

// StreamListener accepts inbound streams, implementing net.Listener. One
// listener serves one local endpoint; a SYN from an unknown remote
// creates a conn and queues it for Accept.
type StreamListener struct {
	n       *Net
	addr    net.Addr
	sendTo  func(remote netip.AddrPort, frame []byte) error // mu held
	conns   map[netip.AddrPort]*StreamConn
	backlog []*StreamConn
	accs    []*waiter
	closed  bool
	dereg   func() // mu held
}

const listenBacklog = 64

func newStreamListener(n *Net, addr net.Addr, sendTo func(netip.AddrPort, []byte) error) *StreamListener {
	return &StreamListener{n: n, addr: addr, sendTo: sendTo, conns: make(map[netip.AddrPort]*StreamConn)}
}

// deliver demultiplexes one inbound frame-carrying datagram. Driver
// context, mu held.
func (l *StreamListener) deliver(src netip.AddrPort, payload []byte) {
	if c, ok := l.conns[src]; ok {
		c.handleFrame(payload)
		return
	}
	if l.closed || len(payload) < frameHdrLen || payload[0] != frameSYN {
		return
	}
	if len(l.backlog) >= listenBacklog {
		return // drop the connection attempt
	}
	c := newStreamConn(l.n, l.addr, streamAddr(src), func(frame []byte) error {
		return l.sendTo(src, frame)
	})
	c.nextSeq = 1 // SYN consumed seq 0
	c.onClose = func() { delete(l.conns, src) }
	l.conns[src] = c
	l.backlog = append(l.backlog, c)
	if len(l.accs) > 0 {
		w := l.accs[0]
		l.accs = l.accs[1:]
		l.n.wake(w)
	}
}

func (l *StreamListener) parked() int { return len(l.accs) }

// deliverDgram implements portSink for UDP-backed listeners.
func (l *StreamListener) deliverDgram(src netip.AddrPort, payload []byte) {
	l.deliver(src, payload)
}

// Accept implements net.Listener, blocking in virtual time.
func (l *StreamListener) Accept() (net.Conn, error) {
	l.n.lock()
	defer l.n.mu.Unlock()
	w := newWaiter()
	for {
		if len(l.backlog) > 0 {
			c := l.backlog[0]
			l.backlog = l.backlog[1:]
			return c, nil
		}
		if l.closed {
			return nil, net.ErrClosed
		}
		w.parked = true
		w.gen++
		l.accs = append(l.accs, w)
		l.n.await(w)
		l.unregisterAcceptor(w)
	}
}

func (l *StreamListener) unregisterAcceptor(w *waiter) {
	for i, a := range l.accs {
		if a == w {
			l.accs = append(l.accs[:i], l.accs[i+1:]...)
			return
		}
	}
}

// Close implements net.Listener: pending Accepts return net.ErrClosed.
// Established conns are unaffected; close them separately.
func (l *StreamListener) Close() error {
	l.n.lock()
	defer l.n.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	for _, w := range l.accs {
		l.n.wake(w)
	}
	l.accs = nil
	if l.dereg != nil {
		l.dereg()
	}
	return nil
}

// Addr implements net.Listener.
func (l *StreamListener) Addr() net.Addr { return l.addr }

// ListenStream binds a stream listener to a UDP port on node (0 picks an
// ephemeral port). The returned listener is a net.Listener whose conns
// carry the stream framing inside UDP datagrams across the fabric.
func (n *Net) ListenStream(node *netem.Node, port uint16) (*StreamListener, error) {
	n.lock()
	defer n.mu.Unlock()
	b := n.bind(node)
	var l *StreamListener
	l = newStreamListener(n, nil, func(remote netip.AddrPort, frame []byte) error {
		return b.sendUDP(l.lport(), remote, frame)
	})
	p, err := b.allocPort(port, l)
	if err != nil {
		return nil, err
	}
	l.addr = streamAddr(netip.AddrPortFrom(node.Addr(), p))
	l.dereg = func() { delete(b.ports, p) }
	return l, nil
}

func (l *StreamListener) lport() uint16 {
	ap, _ := toAddrPort(l.addr)
	return ap.Port()
}

// dialSink filters a dialed stream's inbound datagrams to its peer.
type dialSink struct {
	c      *StreamConn
	remote netip.AddrPort
}

func (d *dialSink) deliverDgram(src netip.AddrPort, payload []byte) {
	if src == d.remote {
		d.c.handleFrame(payload)
	}
}

func (d *dialSink) parked() int { return d.c.parked() }

// DialStream opens a stream from node to a StreamListener at remote. The
// SYN is injected immediately; there is no handshake round-trip (the
// fabric is lossless), so the conn is usable at once.
func (n *Net) DialStream(node *netem.Node, remote netip.AddrPort) (*StreamConn, error) {
	n.lock()
	defer n.mu.Unlock()
	b := n.bind(node)
	var c *StreamConn
	var lport uint16
	c = newStreamConn(n, nil, streamAddr(remote), func(frame []byte) error {
		return b.sendUDP(lport, remote, frame)
	})
	p, err := b.allocPort(0, &dialSink{c: c, remote: remote})
	if err != nil {
		return nil, err
	}
	lport = p
	c.local = streamAddr(netip.AddrPortFrom(node.Addr(), p))
	c.onClose = func() { delete(b.ports, p) }
	c.nextSeq = 1 // peer's SYN-less replies start at 1
	if err := c.send(putFrame(frameSYN, 0, nil)); err != nil {
		delete(b.ports, p)
		return nil, err
	}
	return c, nil
}

// streamAddr renders an endpoint as a net.TCPAddr so net/http treats the
// conns as ordinary stream sockets.
func streamAddr(ap netip.AddrPort) net.Addr {
	return net.TCPAddrFromAddrPort(ap)
}

