package simnet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/netip"
	"os"
	"strings"
	"testing"
	"time"

	"netneutral/internal/netem"
)

var simStart = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)

var (
	clAddr = netip.MustParseAddr("10.0.0.1")
	svAddr = netip.MustParseAddr("10.0.0.2")
)

// pair builds client --5ms-- server and wraps it in a Net.
func pair(t testing.TB) (*Net, *netem.Node, *netem.Node) {
	t.Helper()
	sim := netem.NewSimulator(simStart, 1)
	cl := sim.MustAddNode("cl", "d", clAddr)
	sv := sim.MustAddNode("sv", "d", svAddr)
	sim.Connect(cl, sv, netem.LinkConfig{Delay: 5 * time.Millisecond, QueueLen: 4096})
	sim.BuildRoutes()
	return New(sim), cl, sv
}

func TestUDPEchoVirtualLatency(t *testing.T) {
	n, cl, sv := pair(t)
	srv, err := n.ListenUDP(sv, 7)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		buf := make([]byte, 2048)
		for i := 0; i < 3; i++ {
			m, from, err := srv.ReadFrom(buf)
			if err != nil {
				t.Errorf("server read: %v", err)
				return
			}
			if _, err := srv.WriteTo(buf[:m], from); err != nil {
				t.Errorf("server write: %v", err)
				return
			}
		}
	})
	n.Go(func() {
		c, err := n.DialUDP(cl, netip.AddrPortFrom(svAddr, 7))
		if err != nil {
			t.Error(err)
			return
		}
		defer c.Close()
		buf := make([]byte, 2048)
		for i := 0; i < 3; i++ {
			t0 := n.Now()
			if _, err := c.Write([]byte("ping")); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			m, err := c.Read(buf)
			if err != nil || string(buf[:m]) != "ping" {
				t.Errorf("read: %q %v", buf[:m], err)
				return
			}
			// 5ms out + 5ms back, with virtual time frozen while the
			// echo server runs: the RTT is exact.
			if rtt := n.Now().Sub(t0); rtt != 10*time.Millisecond {
				t.Errorf("rtt = %v, want exactly 10ms", rtt)
			}
		}
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestReadDeadline(t *testing.T) {
	n, cl, _ := pair(t)
	c, err := n.ListenUDP(cl, 9000)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		dl := n.Now().Add(50 * time.Millisecond)
		c.SetReadDeadline(dl)
		_, _, err := c.ReadFrom(make([]byte, 16))
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("err = %v, want os.ErrDeadlineExceeded", err)
		}
		var ne net.Error
		if !errors.As(err, &ne) || !ne.Timeout() {
			t.Errorf("deadline error must be a net.Error timeout, got %v", err)
		}
		if now := n.Now(); !now.Equal(dl) {
			t.Errorf("woke at %v, want exactly %v", now, dl)
		}
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestDeadlineAbortsParkedRead is the net/http abortPendingRead shape: a
// reader is parked with no deadline, then another goroutine slams the
// deadline into the past and the reader must wake immediately.
func TestDeadlineAbortsParkedRead(t *testing.T) {
	n, cl, _ := pair(t)
	c, err := n.ListenUDP(cl, 9000)
	if err != nil {
		t.Fatal(err)
	}
	aLongTimeAgo := time.Unix(1, 0)
	n.Go(func() {
		_, _, err := c.ReadFrom(make([]byte, 16))
		if !errors.Is(err, os.ErrDeadlineExceeded) {
			t.Errorf("aborted read: err = %v, want os.ErrDeadlineExceeded", err)
		}
		if got := n.Now().Sub(simStart); got != 10*time.Millisecond {
			t.Errorf("aborted at +%v, want +10ms", got)
		}
	})
	n.Go(func() {
		n.Sleep(10 * time.Millisecond)
		c.SetReadDeadline(aLongTimeAgo)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSleepAndWait(t *testing.T) {
	n, _, _ := pair(t)
	var tick time.Time
	flag := false
	n.Go(func() {
		n.Sleep(123 * time.Millisecond)
		tick = n.Now()
		flag = true
	})
	n.Go(func() {
		n.Wait(func() bool { return flag })
		if d := n.Now().Sub(simStart); d != 123*time.Millisecond {
			t.Errorf("Wait released at +%v, want +123ms", d)
		}
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	if d := tick.Sub(simStart); d != 123*time.Millisecond {
		t.Errorf("Sleep woke at +%v, want +123ms", d)
	}
}

func TestDeadlockDetected(t *testing.T) {
	n, cl, _ := pair(t)
	c, err := n.ListenUDP(cl, 9000)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		// Nothing will ever arrive and no deadline is set.
		_, _, err := c.ReadFrom(make([]byte, 16))
		if !errors.Is(err, net.ErrClosed) {
			t.Errorf("post-deadlock read err = %v", err)
		}
	})
	err = n.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("Run err = %v, want deadlock report", err)
	}
	c.Close() // unblock the goroutine so the test binary can exit cleanly
}

func TestStreamTransfer(t *testing.T) {
	n, cl, sv := pair(t)
	ln, err := n.ListenStream(sv, 80)
	if err != nil {
		t.Fatal(err)
	}
	const reqSize = 10_000
	n.Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		req := make([]byte, reqSize)
		if _, err := io.ReadFull(conn, req); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		for i, b := range req {
			if b != byte(i) {
				t.Errorf("corrupt byte %d: %d", i, b)
				return
			}
		}
		if _, err := conn.Write([]byte("ok")); err != nil {
			t.Errorf("server write: %v", err)
		}
	})
	n.Go(func() {
		conn, err := n.DialStream(cl, netip.AddrPortFrom(svAddr, 80))
		if err != nil {
			t.Error(err)
			return
		}
		defer conn.Close()
		req := make([]byte, reqSize)
		for i := range req {
			req[i] = byte(i)
		}
		if _, err := conn.Write(req); err != nil {
			t.Errorf("client write: %v", err)
			return
		}
		resp := make([]byte, 2)
		if _, err := io.ReadFull(conn, resp); err != nil || string(resp) != "ok" {
			t.Errorf("client read: %q %v", resp, err)
		}
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestStreamEOFAfterClose(t *testing.T) {
	n, cl, sv := pair(t)
	ln, err := n.ListenStream(sv, 80)
	if err != nil {
		t.Fatal(err)
	}
	n.Go(func() {
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		got, err := io.ReadAll(conn) // reads until the client's FIN
		if err != nil || string(got) != "all of it" {
			t.Errorf("ReadAll = %q, %v", got, err)
		}
		conn.Close()
	})
	n.Go(func() {
		conn, err := n.DialStream(cl, netip.AddrPortFrom(svAddr, 80))
		if err != nil {
			t.Error(err)
			return
		}
		conn.Write([]byte("all of it"))
		conn.Close()
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
}

// httpOverSim runs one GET through an unmodified net/http client and
// server across the simulated link and returns (status, body, virtual
// duration of the request).
func httpOverSim(t *testing.T) (int, string, time.Duration) {
	t.Helper()
	n, cl, sv := pair(t)
	ln, err := n.ListenStream(sv, 80)
	if err != nil {
		t.Fatal(err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/hello", func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, "hello %s from the sim\n", r.URL.Query().Get("name"))
	})
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	defer srv.Close()

	var status int
	var body string
	var took time.Duration
	n.Go(func() {
		tr := &http.Transport{
			DialContext: func(_ context.Context, network, addr string) (net.Conn, error) {
				return n.DialStream(cl, netip.AddrPortFrom(svAddr, 80))
			},
			DisableKeepAlives: true,
		}
		client := &http.Client{Transport: tr}
		t0 := n.Now()
		resp, err := client.Get("http://10.0.0.2/hello?name=simnet")
		if err != nil {
			t.Errorf("GET: %v", err)
			return
		}
		b, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Errorf("body: %v", err)
			return
		}
		status, body, took = resp.StatusCode, string(b), n.Now().Sub(t0)
	})
	if err := n.Run(); err != nil {
		t.Fatal(err)
	}
	return status, body, took
}

func TestHTTPOverSim(t *testing.T) {
	status, body, took := httpOverSim(t)
	if status != 200 || body != "hello simnet from the sim\n" {
		t.Fatalf("GET = %d %q", status, body)
	}
	// Request and response each cross the 5ms link at least once.
	if took < 10*time.Millisecond || took > time.Second {
		t.Errorf("virtual request latency = %v, want ~10ms", took)
	}
	if took%(5*time.Millisecond) != 0 {
		t.Errorf("latency %v is not a multiple of the link delay; real time leaked in", took)
	}
}

// TestHTTPDeterministic runs the same HTTP workload twice on fresh
// simulators and requires identical virtual timing — the bit-identical
// replay contract that makes experiments over simnet reproducible.
func TestHTTPDeterministic(t *testing.T) {
	s1, b1, d1 := httpOverSim(t)
	s2, b2, d2 := httpOverSim(t)
	if s1 != s2 || b1 != b2 || d1 != d2 {
		t.Fatalf("two runs differ: (%d,%q,%v) vs (%d,%q,%v)", s1, b1, d1, s2, b2, d2)
	}
}

// TestManyClientsDeterministic drives several concurrent UDP clients
// against one echo server twice and requires the exact same per-client
// completion times both runs: the driver's serialized wake handoff must
// fully hide OS scheduling.
func TestManyClientsDeterministic(t *testing.T) {
	run := func() string {
		n, cl, sv := pair(t)
		srv, err := n.ListenUDP(sv, 7)
		if err != nil {
			t.Fatal(err)
		}
		n.Go(func() {
			buf := make([]byte, 2048)
			for i := 0; i < 5*4; i++ {
				m, from, err := srv.ReadFrom(buf)
				if err != nil {
					t.Errorf("server: %v", err)
					return
				}
				srv.WriteTo(buf[:m], from)
			}
		})
		lines := make([]string, 5)
		for i := 0; i < 5; i++ {
			i := i
			n.Go(func() {
				c, err := n.DialUDP(cl, netip.AddrPortFrom(svAddr, 7))
				if err != nil {
					t.Error(err)
					return
				}
				defer c.Close()
				n.Sleep(time.Duration(i) * time.Millisecond)
				buf := make([]byte, 64)
				for j := 0; j < 4; j++ {
					c.Write([]byte{byte(i), byte(j)})
					if _, err := c.Read(buf); err != nil {
						t.Errorf("client %d: %v", i, err)
						return
					}
				}
				lines[i] = fmt.Sprintf("client %d done at +%v", i, n.Now().Sub(simStart))
			})
		}
		if err := n.Run(); err != nil {
			t.Fatal(err)
		}
		wakes, steps, _ := n.Stats()
		return strings.Join(lines, "\n") + fmt.Sprintf("\nwakes=%d steps=%d", wakes, steps)
	}
	r1, r2 := run(), run()
	if r1 != r2 {
		t.Fatalf("runs differ:\n--- run 1:\n%s\n--- run 2:\n%s", r1, r2)
	}
}
