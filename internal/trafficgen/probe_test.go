package trafficgen

import (
	"math"
	"math/rand"
	"testing"
	"time"

	"netneutral/internal/netem"
)

func TestControlSourceShape(t *testing.T) {
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 3)
	var sizes []int
	var gaps []time.Duration
	last := time.Time{}
	ControlSource{Rng: rand.New(rand.NewSource(4))}.Run(sim, 10*time.Second, func(seq uint64, size int) {
		sizes = append(sizes, size)
		if !last.IsZero() {
			gaps = append(gaps, sim.Now().Sub(last))
		}
		last = sim.Now()
	})
	sim.Run()
	if len(sizes) < 200 {
		t.Fatalf("only %d emissions in 10s at a 25ms mean gap", len(sizes))
	}
	var sizeSum int
	for _, s := range sizes {
		if s < 300 || s >= 1300 {
			t.Fatalf("size %d outside [300, 1300)", s)
		}
		sizeSum += s
	}
	if mean := sizeSum / len(sizes); mean < 700 || mean > 900 {
		t.Errorf("mean size %d, want ~800 (uniform over [300,1300))", mean)
	}
	var gapSum time.Duration
	for _, g := range gaps {
		gapSum += g
	}
	if mean := gapSum / time.Duration(len(gaps)); mean < 18*time.Millisecond || mean > 33*time.Millisecond {
		t.Errorf("mean gap %v, want ~25ms", mean)
	}
}

func TestRunNExactCounts(t *testing.T) {
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 3)
	var app, ctrl int
	AppSource{App: AppVoIP, Rng: rand.New(rand.NewSource(5))}.RunN(sim, 64, func(uint64, int) { app++ })
	ControlSource{Rng: rand.New(rand.NewSource(6))}.RunN(sim, 48, func(uint64, int) { ctrl++ })
	sim.Run()
	if app != 64 {
		t.Errorf("AppSource.RunN emitted %d, want exactly 64", app)
	}
	if ctrl != 48 {
		t.Errorf("ControlSource.RunN emitted %d, want exactly 48", ctrl)
	}
}

// TestControlSourceNotClassifiedAsTarget: a classifier trained on the
// four app shapes must not map the control flow to VoIP — otherwise a
// throttler that targets VoIP would also hit the control and erase the
// differential the audit depends on.
func TestControlSourceNotClassifiedAsTarget(t *testing.T) {
	// Build control-flow features through the same windowed feature
	// pipeline dpi uses, via a synthetic emission trace.
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 3)
	type ev struct {
		at   time.Time
		size int
	}
	var trace []ev
	ControlSource{Rng: rand.New(rand.NewSource(8))}.Run(sim, 5*time.Second, func(_ uint64, size int) {
		trace = append(trace, ev{sim.Now(), size})
	})
	sim.Run()
	if len(trace) < 100 {
		t.Fatalf("thin trace: %d", len(trace))
	}
	// VoIP cadence check by contradiction: the control's gap CV must be
	// far from VoIP's near-zero CV.
	var gapsSum, gaps2 float64
	n := 0
	for i := 1; i < len(trace); i++ {
		g := trace[i].at.Sub(trace[i-1].at).Seconds()
		gapsSum += g
		gaps2 += g * g
		n++
	}
	mean := gapsSum / float64(n)
	cv := 0.0
	if mean > 0 {
		if variance := gaps2/float64(n) - mean*mean; variance > 0 {
			cv = math.Sqrt(variance) / mean
		}
	}
	if cv < 0.5 {
		t.Errorf("control gap CV = %.2f, want memoryless (~1), not app cadence", cv)
	}
}
