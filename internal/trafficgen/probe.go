package trafficgen

import (
	"math/rand"
	"time"

	"netneutral/internal/netem"
)

// ControlSource emits the auditor's control flow: same path, protocol
// and encapsulation as a suspect application flow, but a shape no
// trained DPI profile targets — uniformly mixed packet sizes released
// at memoryless (exponential) gaps, so there is no constant-rate
// cadence, no burst structure, and no dominant size bucket for a
// nearest-centroid classifier to latch onto. A differential between
// this flow and an app-shaped suspect flow over the same path is
// evidence the network treats the *shape* differently (see
// internal/audit).
type ControlSource struct {
	// Rng supplies per-flow jitter (required for distinct flows; nil
	// falls back to the simulator's PRNG).
	Rng *rand.Rand
	// MeanGap is the average inter-emission gap (default 25ms).
	MeanGap time.Duration
	// MinSize/MaxSize bound the uniform payload-size draw (defaults
	// 300/1300 bytes).
	MinSize, MaxSize int
}

func (s *ControlSource) fill(on netem.Context) *rand.Rand {
	if s.MeanGap <= 0 {
		s.MeanGap = 25 * time.Millisecond
	}
	if s.MinSize <= 0 {
		s.MinSize = 300
	}
	if s.MaxSize <= s.MinSize {
		s.MaxSize = s.MinSize + 1000
	}
	if s.Rng != nil {
		return s.Rng
	}
	return on.Rand()
}

// Run schedules control emissions for duration d; emit receives the
// per-flow sequence number and the payload size in bytes.
func (s ControlSource) Run(on netem.Context, d time.Duration, emit func(seq uint64, size int)) {
	rng := s.fill(on)
	end := on.Now().Add(d)
	var seq uint64
	var step func()
	step = func() {
		if on.Now().After(end) {
			return
		}
		emit(seq, s.MinSize+rng.Intn(s.MaxSize-s.MinSize))
		seq++
		on.Schedule(s.gap(rng), step)
	}
	on.Schedule(s.gap(rng), step)
}

// RunN schedules a finite burst of exactly n control emissions — the
// naive audit strategy's short-lived probe flows.
func (s ControlSource) RunN(on netem.Context, n int, emit func(seq uint64, size int)) {
	rng := s.fill(on)
	var seq uint64
	var step func()
	step = func() {
		if seq >= uint64(n) {
			return
		}
		emit(seq, s.MinSize+rng.Intn(s.MaxSize-s.MinSize))
		seq++
		on.Schedule(s.gap(rng), step)
	}
	on.Schedule(s.gap(rng), step)
}

// gap draws an exponential inter-emission gap with mean MeanGap.
func (s *ControlSource) gap(rng *rand.Rand) time.Duration {
	return time.Duration(expRand(rng, 1/s.MeanGap.Seconds()) * float64(time.Second))
}

// RunN schedules a finite burst of exactly n app-shaped emissions (the
// same size/gap process as Run, bounded by count instead of time): the
// short app-imitating probe flows of the naive audit strategy.
func (s AppSource) RunN(on netem.Context, n int, emit func(seq uint64, size int)) {
	rng := s.Rng
	if rng == nil {
		rng = on.Rand()
	}
	st := &appState{app: s.App, rng: rng}
	var seq uint64
	var step func()
	step = func() {
		if seq >= uint64(n) {
			return
		}
		emit(seq, st.size())
		seq++
		on.Schedule(st.gap(), step)
	}
	on.Schedule(time.Duration(rng.Int63n(int64(20*time.Millisecond))), step)
}
