// Package trafficgen generates the workloads the experiments run: CBR
// streams, G.711-like VoIP calls, Poisson web-style request/response
// mixes, open-loop target-rate sources over pooled packet buffers (the
// metro-scale load model), and app-shaped sources (AppSource: VoIP,
// video, bulk, web) whose size/timing structure gives the statistical
// dpi adversary something real to fingerprint — all scheduled
// deterministically on a netem simulator.
package trafficgen

import (
	"math"
	"math/rand"
	"time"

	"netneutral/internal/netem"
)

// SendFunc emits one application payload; generators call it on schedule.
// Implementations wrap an endhost.Host, a raw netem node, or anything
// else that turns payloads into packets.
type SendFunc func(seq uint64, payload []byte)

// CBR is a constant-bit-rate stream: Size-byte payloads every Interval.
type CBR struct {
	Interval time.Duration
	Size     int
	// Count limits the number of packets (0 = until Stop duration).
	Count int
}

// Run schedules the stream on the scheduling context (a simulator, or a
// node for shard-pinned sources on parallel runs) starting immediately
// and running for at most d (ignored when Count > 0). Returns the number
// of packets that will be sent. The stream self-reschedules one event at
// a time, so a long stream costs one pending event, not n.
func (c CBR) Run(on netem.Context, d time.Duration, send SendFunc) int {
	n := c.Count
	if n == 0 {
		if c.Interval <= 0 {
			return 0
		}
		n = int(d / c.Interval)
	}
	return selfReschedule(on, c.Interval, n, func(seq uint64) {
		send(seq, mkPayload(c.Size, seq))
	})
}

// selfReschedule fires n emissions interval apart, rescheduling one
// event at a time so a long stream costs one pending event, not n.
func selfReschedule(on netem.Context, interval time.Duration, n int, fire func(seq uint64)) int {
	if n <= 0 {
		return 0
	}
	i := 0
	var step func()
	step = func() {
		fire(uint64(i))
		i++
		if i < n {
			on.Schedule(interval, step)
		}
	}
	on.Schedule(0, step)
	return n
}

// OpenLoop emits events at a constant target rate regardless of network
// feedback — the load model for the metro-scale experiments, where tens
// of thousands of packets per simulated second are pushed through one
// neutralizer domain. Like CBR it self-reschedules, keeping the pending
// event count at one however long the run is.
type OpenLoop struct {
	// RatePps is the target emission rate in packets per second of
	// virtual time.
	RatePps float64
	// Count optionally caps total emissions (0 = run for the duration).
	Count int
}

// Run schedules the open-loop source on the scheduling context for
// duration d; emit receives the sequence number. Returns the number of
// emissions that will occur. Anchor the context to the sending node on
// sharded simulations so emissions run on the node's shard.
func (o OpenLoop) Run(on netem.Context, d time.Duration, emit func(seq uint64)) int {
	if o.RatePps <= 0 {
		return 0
	}
	interval := time.Duration(float64(time.Second) / o.RatePps)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	n := o.Count
	if n == 0 {
		n = int(d / interval)
	}
	return selfReschedule(on, interval, n, emit)
}

// CyclingSender returns an OpenLoop emit function that sends the template
// packets round-robin from node. Each emission checks a buffer out of the
// simulator's packet pool and copies the template into it — the one copy
// of the packet's journey — so steady-state generation does not allocate.
func CyclingSender(node *netem.Node, templates [][]byte) func(seq uint64) {
	if len(templates) == 0 {
		panic("trafficgen: CyclingSender needs at least one template packet")
	}
	return func(seq uint64) {
		_ = node.SendPacket(node.NewPacket(templates[int(seq%uint64(len(templates)))]))
	}
}

// VoIPCall models a one-direction G.711 stream: 160-byte frames every
// 20ms (64 kbps), the paper's motivating Vonage workload.
func VoIPCall(duration time.Duration) CBR {
	return CBR{Interval: 20 * time.Millisecond, Size: 160,
		Count: int(duration / (20 * time.Millisecond))}
}

// Poisson schedules events with exponentially distributed gaps at the
// given mean rate (events/sec) for duration d, drawing gaps from the
// scheduling context's seeded PRNG (the node's shard stream when
// anchored to a node) for reproducibility. Returns the number scheduled.
func Poisson(on netem.Context, rate float64, d time.Duration, fn func(seq uint64)) int {
	if rate <= 0 {
		return 0
	}
	rng := on.Rand()
	t := time.Duration(0)
	n := 0
	for {
		gap := time.Duration(expRand(rng, rate) * float64(time.Second))
		t += gap
		if t > d {
			return n
		}
		seq := uint64(n)
		on.Schedule(t, func() { fn(seq) })
		n++
	}
}

// WebMix issues request/response exchanges: Poisson arrivals of requests
// whose response sizes are Pareto-distributed (heavy-tailed, like web
// objects).
type WebMix struct {
	// RatePerSec is the request arrival rate.
	RatePerSec float64
	// MinResponse and Alpha parameterize the Pareto response size.
	MinResponse int
	Alpha       float64
}

// Run schedules the mix for duration d; reqFn receives the request
// sequence number and the size the responder should send back.
func (w WebMix) Run(on netem.Context, d time.Duration, reqFn func(seq uint64, respSize int)) int {
	minResp := w.MinResponse
	if minResp <= 0 {
		minResp = 1000
	}
	alpha := w.Alpha
	if alpha <= 0 {
		alpha = 1.2
	}
	rng := on.Rand()
	return Poisson(on, w.RatePerSec, d, func(seq uint64) {
		u := rng.Float64()
		if u < 1e-9 {
			u = 1e-9
		}
		size := int(float64(minResp) / math.Pow(u, 1/alpha))
		if size > 1<<20 {
			size = 1 << 20 // cap the tail at 1 MiB
		}
		reqFn(seq, size)
	})
}

func expRand(rng *rand.Rand, rate float64) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u) / rate
}

func mkPayload(size int, seq uint64) []byte {
	if size < 8 {
		size = 8
	}
	p := make([]byte, size)
	for i := 0; i < 8; i++ {
		p[i] = byte(seq >> (8 * (7 - i)))
	}
	return p
}

// SeqOf recovers the sequence number stamped into a generated payload.
func SeqOf(payload []byte) uint64 {
	if len(payload) < 8 {
		return 0
	}
	var s uint64
	for i := 0; i < 8; i++ {
		s = s<<8 | uint64(payload[i])
	}
	return s
}
