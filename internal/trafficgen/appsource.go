package trafficgen

import (
	"math"
	"math/rand"
	"time"

	"netneutral/internal/netem"
)

// App enumerates the application shapes the statistical adversary
// (package dpi) fingerprints. Each shape is defined by its packet-size
// and inter-arrival structure, not its port or payload — the properties
// that survive encryption.
type App uint8

// Application shapes.
const (
	// AppVoIP is a G.711-like call: 160-byte frames every 20ms with
	// small jitter — constant rate, constant size.
	AppVoIP App = iota
	// AppVideo is streaming video: on/off bursts of large frames (a
	// buffer fill every few hundred ms), highly bursty.
	AppVideo
	// AppBulk is a bulk transfer: near-MTU packets at a steady high
	// rate.
	AppBulk
	// AppWeb is web browsing: Poisson-arriving heavy-tailed object
	// fetches, mixed sizes.
	AppWeb
)

// NumApps is the number of application shapes.
const NumApps = 4

var appNames = [...]string{"voip", "video", "bulk", "web"}

func (a App) String() string {
	if int(a) < len(appNames) {
		return appNames[a]
	}
	return "app?"
}

// Port returns the canonical plaintext UDP destination port for the
// app — what a port-rule ISP matches on before encryption hides it.
func (a App) Port() uint16 {
	switch a {
	case AppVoIP:
		return 7078
	case AppVideo:
		return 8554
	case AppBulk:
		return 6881
	default:
		return 80
	}
}

// AppSource schedules one flow of app-shaped emissions on a simulator.
// Rng supplies the per-flow jitter that keeps flows of one class
// statistically similar but not identical; every source self-
// reschedules, so a flow costs one pending event regardless of length.
type AppSource struct {
	App App
	Rng *rand.Rand
}

// Run schedules emissions on the scheduling context (a simulator, or a
// node for shard-pinned flows) for duration d starting after a small
// random phase offset; emit receives the per-flow sequence number and
// the application payload size in bytes.
func (s AppSource) Run(on netem.Context, d time.Duration, emit func(seq uint64, size int)) {
	rng := s.Rng
	if rng == nil {
		rng = on.Rand()
	}
	st := &appState{app: s.App, rng: rng, end: on.Now().Add(d)}
	var seq uint64
	var step func()
	step = func() {
		if on.Now().After(st.end) {
			return
		}
		emit(seq, st.size())
		seq++
		on.Schedule(st.gap(), step)
	}
	on.Schedule(time.Duration(rng.Int63n(int64(20*time.Millisecond))), step)
}

// appState produces the (size, gap) sequence for one flow.
type appState struct {
	app App
	rng *rand.Rand
	end time.Time

	burstLeft int // video/web: packets remaining in the current burst
}

func (st *appState) size() int {
	r := st.rng
	switch st.app {
	case AppVoIP:
		return 160
	case AppVideo:
		return 1200
	case AppBulk:
		return 1250 + r.Intn(80)
	default: // AppWeb: heavy-tailed object pieces
		if st.burstLeft == 0 {
			return 300 // request-sized
		}
		return 300 + r.Intn(1000)
	}
}

// gap returns the wait before the next emission, advancing burst state.
func (st *appState) gap() time.Duration {
	r := st.rng
	switch st.app {
	case AppVoIP:
		return 18*time.Millisecond + time.Duration(r.Int63n(int64(4*time.Millisecond)))
	case AppVideo:
		if st.burstLeft == 0 {
			st.burstLeft = 12 + r.Intn(16)
		}
		st.burstLeft--
		if st.burstLeft == 0 {
			// Buffer refilled: go quiet until the next burst.
			return 150*time.Millisecond + time.Duration(r.Int63n(int64(250*time.Millisecond)))
		}
		return 300*time.Microsecond + time.Duration(r.Int63n(int64(200*time.Microsecond)))
	case AppBulk:
		return 2700*time.Microsecond + time.Duration(r.Int63n(int64(600*time.Microsecond)))
	default: // AppWeb
		if st.burstLeft == 0 {
			st.burstLeft = 2 + int(paretoInt(r, 1.3, 28))
		}
		st.burstLeft--
		if st.burstLeft == 0 {
			// Think time before the next object.
			return time.Duration(expRand(r, 2.5) * float64(time.Second))
		}
		return 500*time.Microsecond + time.Duration(r.Int63n(int64(500*time.Microsecond)))
	}
}

// paretoInt draws a Pareto-distributed integer in [0, capN]: the
// heavy-tailed burst lengths of web objects.
func paretoInt(rng *rand.Rand, alpha float64, capN int) int {
	u := rng.Float64()
	if u < 1e-9 {
		u = 1e-9
	}
	n := int(math.Pow(u, -1/alpha)) - 1
	if n > capN {
		n = capN
	}
	if n < 0 {
		n = 0
	}
	return n
}
