package trafficgen

import (
	"testing"

	"netneutral/internal/obs"
)

// TestAppMetricsCounting pins the emit/deliver wrappers: per-app
// families sum across shard stripes and apps stay separate.
func TestAppMetricsCounting(t *testing.T) {
	reg := obs.NewRegistry()
	m := NewAppMetrics(reg)

	sent := 0
	emit := m.CountEmit(AppVoIP, 0, func(seq uint64, size int) { sent += size })
	for i := 0; i < 10; i++ {
		emit(uint64(i), 160)
	}
	// A second VoIP flow on another shard lands in the same family.
	emit2 := m.CountEmit(AppVoIP, 3, func(seq uint64, size int) {})
	emit2(0, 160)
	del := m.CountDeliver(AppVoIP, 2)
	for i := 0; i < 4; i++ {
		del(160)
	}
	m.Delivered(AppBulk, 0, 1400)

	snap := reg.Snapshot()
	checks := map[string]uint64{
		`trafficgen_sent_packets_total{app="voip"}`:      11,
		`trafficgen_sent_bytes_total{app="voip"}`:        11 * 160,
		`trafficgen_delivered_packets_total{app="voip"}`: 4,
		`trafficgen_delivered_bytes_total{app="voip"}`:   4 * 160,
		`trafficgen_delivered_packets_total{app="bulk"}`: 1,
		`trafficgen_delivered_bytes_total{app="bulk"}`:   1400,
		`trafficgen_sent_packets_total{app="web"}`:       0,
	}
	for name, want := range checks {
		mt := snap.Get(name)
		if mt == nil {
			t.Fatalf("registry missing %s", name)
		}
		if uint64(mt.Value) != want {
			t.Errorf("%s = %v, want %d", name, mt.Value, want)
		}
	}
	if sent != 10*160 {
		t.Errorf("wrapped emit saw %d bytes, want %d", sent, 10*160)
	}
}
