package trafficgen

import (
	"testing"
	"time"

	"netneutral/internal/netem"
)

var start = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)

func TestCBRSchedule(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	var times []time.Duration
	var sizes []int
	n := CBR{Interval: 20 * time.Millisecond, Size: 160}.Run(sim, 100*time.Millisecond,
		func(seq uint64, payload []byte) {
			times = append(times, sim.Now().Sub(start))
			sizes = append(sizes, len(payload))
		})
	sim.Run()
	if n != 5 || len(times) != 5 {
		t.Fatalf("scheduled %d, fired %d", n, len(times))
	}
	for i, at := range times {
		if want := time.Duration(i) * 20 * time.Millisecond; at != want {
			t.Errorf("packet %d at %v, want %v", i, at, want)
		}
		if sizes[i] != 160 {
			t.Errorf("packet %d size = %d", i, sizes[i])
		}
	}
}

func TestCBRCountOverridesDuration(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	fired := 0
	n := CBR{Interval: time.Millisecond, Size: 64, Count: 3}.Run(sim, time.Hour,
		func(uint64, []byte) { fired++ })
	sim.Run()
	if n != 3 || fired != 3 {
		t.Errorf("n=%d fired=%d", n, fired)
	}
}

func TestVoIPCallShape(t *testing.T) {
	c := VoIPCall(time.Second)
	if c.Interval != 20*time.Millisecond || c.Size != 160 || c.Count != 50 {
		t.Errorf("G.711 shape = %+v", c)
	}
	// 160 B / 20 ms = 64 kbps payload rate.
	bps := float64(c.Size*8) / c.Interval.Seconds()
	if bps != 64000 {
		t.Errorf("payload rate = %v bps", bps)
	}
}

func TestSeqStamping(t *testing.T) {
	p := mkPayload(64, 0xDEADBEEF)
	if SeqOf(p) != 0xDEADBEEF {
		t.Errorf("SeqOf = %x", SeqOf(p))
	}
	if SeqOf([]byte{1}) != 0 {
		t.Error("short payload should yield 0")
	}
	if len(mkPayload(2, 1)) != 8 {
		t.Error("payload must fit the sequence stamp")
	}
}

func TestPoissonRate(t *testing.T) {
	sim := netem.NewSimulator(start, 42)
	fired := 0
	n := Poisson(sim, 100, 10*time.Second, func(uint64) { fired++ })
	sim.Run()
	if n != fired {
		t.Fatalf("scheduled %d fired %d", n, fired)
	}
	// ~1000 expected; 4-sigma bounds.
	if n < 850 || n > 1150 {
		t.Errorf("poisson events = %d, want ~1000", n)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	if n := Poisson(sim, 0, time.Second, func(uint64) {}); n != 0 {
		t.Errorf("n = %d", n)
	}
}

func TestPoissonDeterministicWithSeed(t *testing.T) {
	run := func() int {
		sim := netem.NewSimulator(start, 9)
		return Poisson(sim, 50, time.Second, func(uint64) {})
	}
	if run() != run() {
		t.Error("same seed must schedule identically")
	}
}

func TestWebMixSizes(t *testing.T) {
	sim := netem.NewSimulator(start, 7)
	var sizes []int
	n := WebMix{RatePerSec: 200, MinResponse: 1000, Alpha: 1.2}.Run(sim, 5*time.Second,
		func(_ uint64, respSize int) { sizes = append(sizes, respSize) })
	sim.Run()
	if n < 500 {
		t.Fatalf("too few requests: %d", n)
	}
	minSeen, maxSeen := 1<<30, 0
	for _, s := range sizes {
		if s < minSeen {
			minSeen = s
		}
		if s > maxSeen {
			maxSeen = s
		}
	}
	if minSeen < 1000 {
		t.Errorf("response below minimum: %d", minSeen)
	}
	if maxSeen <= 2000 {
		t.Errorf("heavy tail missing: max = %d", maxSeen)
	}
	if maxSeen > 1<<20 {
		t.Errorf("tail cap violated: %d", maxSeen)
	}
}

func TestWebMixDefaults(t *testing.T) {
	sim := netem.NewSimulator(start, 7)
	n := WebMix{RatePerSec: 10}.Run(sim, time.Second, func(uint64, int) {})
	if n == 0 {
		t.Error("defaults should produce traffic")
	}
}
