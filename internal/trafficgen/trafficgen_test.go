package trafficgen

import (
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/wire"
)

var start = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)

func TestCBRSchedule(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	var times []time.Duration
	var sizes []int
	n := CBR{Interval: 20 * time.Millisecond, Size: 160}.Run(sim, 100*time.Millisecond,
		func(seq uint64, payload []byte) {
			times = append(times, sim.Now().Sub(start))
			sizes = append(sizes, len(payload))
		})
	sim.Run()
	if n != 5 || len(times) != 5 {
		t.Fatalf("scheduled %d, fired %d", n, len(times))
	}
	for i, at := range times {
		if want := time.Duration(i) * 20 * time.Millisecond; at != want {
			t.Errorf("packet %d at %v, want %v", i, at, want)
		}
		if sizes[i] != 160 {
			t.Errorf("packet %d size = %d", i, sizes[i])
		}
	}
}

func TestCBRCountOverridesDuration(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	fired := 0
	n := CBR{Interval: time.Millisecond, Size: 64, Count: 3}.Run(sim, time.Hour,
		func(uint64, []byte) { fired++ })
	sim.Run()
	if n != 3 || fired != 3 {
		t.Errorf("n=%d fired=%d", n, fired)
	}
}

func TestVoIPCallShape(t *testing.T) {
	c := VoIPCall(time.Second)
	if c.Interval != 20*time.Millisecond || c.Size != 160 || c.Count != 50 {
		t.Errorf("G.711 shape = %+v", c)
	}
	// 160 B / 20 ms = 64 kbps payload rate.
	bps := float64(c.Size*8) / c.Interval.Seconds()
	if bps != 64000 {
		t.Errorf("payload rate = %v bps", bps)
	}
}

func TestSeqStamping(t *testing.T) {
	p := mkPayload(64, 0xDEADBEEF)
	if SeqOf(p) != 0xDEADBEEF {
		t.Errorf("SeqOf = %x", SeqOf(p))
	}
	if SeqOf([]byte{1}) != 0 {
		t.Error("short payload should yield 0")
	}
	if len(mkPayload(2, 1)) != 8 {
		t.Error("payload must fit the sequence stamp")
	}
}

func TestPoissonRate(t *testing.T) {
	sim := netem.NewSimulator(start, 42)
	fired := 0
	n := Poisson(sim, 100, 10*time.Second, func(uint64) { fired++ })
	sim.Run()
	if n != fired {
		t.Fatalf("scheduled %d fired %d", n, fired)
	}
	// ~1000 expected; 4-sigma bounds.
	if n < 850 || n > 1150 {
		t.Errorf("poisson events = %d, want ~1000", n)
	}
}

func TestPoissonZeroRate(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	if n := Poisson(sim, 0, time.Second, func(uint64) {}); n != 0 {
		t.Errorf("n = %d", n)
	}
}

func TestPoissonDeterministicWithSeed(t *testing.T) {
	run := func() int {
		sim := netem.NewSimulator(start, 9)
		return Poisson(sim, 50, time.Second, func(uint64) {})
	}
	if run() != run() {
		t.Error("same seed must schedule identically")
	}
}

func TestWebMixSizes(t *testing.T) {
	sim := netem.NewSimulator(start, 7)
	var sizes []int
	n := WebMix{RatePerSec: 200, MinResponse: 1000, Alpha: 1.2}.Run(sim, 5*time.Second,
		func(_ uint64, respSize int) { sizes = append(sizes, respSize) })
	sim.Run()
	if n < 500 {
		t.Fatalf("too few requests: %d", n)
	}
	minSeen, maxSeen := 1<<30, 0
	for _, s := range sizes {
		if s < minSeen {
			minSeen = s
		}
		if s > maxSeen {
			maxSeen = s
		}
	}
	if minSeen < 1000 {
		t.Errorf("response below minimum: %d", minSeen)
	}
	if maxSeen <= 2000 {
		t.Errorf("heavy tail missing: max = %d", maxSeen)
	}
	if maxSeen > 1<<20 {
		t.Errorf("tail cap violated: %d", maxSeen)
	}
}

func TestWebMixDefaults(t *testing.T) {
	sim := netem.NewSimulator(start, 7)
	n := WebMix{RatePerSec: 10}.Run(sim, time.Second, func(uint64, int) {})
	if n == 0 {
		t.Error("defaults should produce traffic")
	}
}

func TestOpenLoopRate(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	var times []time.Duration
	n := OpenLoop{RatePps: 1000}.Run(sim, 10*time.Millisecond, func(seq uint64) {
		times = append(times, sim.Now().Sub(start))
	})
	sim.Run()
	if n != 10 || len(times) != 10 {
		t.Fatalf("scheduled %d, fired %d", n, len(times))
	}
	for i, at := range times {
		if want := time.Duration(i) * time.Millisecond; at != want {
			t.Errorf("emission %d at %v, want %v", i, at, want)
		}
	}
	// Self-rescheduling: never more than one generator event pending.
	if sim.PendingEvents() != 0 {
		t.Errorf("pending events = %d", sim.PendingEvents())
	}
}

func TestOpenLoopCountCap(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	fired := 0
	if n := (OpenLoop{RatePps: 1e6, Count: 7}).Run(sim, time.Hour, func(uint64) { fired++ }); n != 7 {
		t.Fatalf("n = %d", n)
	}
	sim.Run()
	if fired != 7 {
		t.Errorf("fired = %d", fired)
	}
	if n := (OpenLoop{}).Run(sim, time.Second, func(uint64) {}); n != 0 {
		t.Errorf("zero rate scheduled %d", n)
	}
}

func TestCyclingSenderPooledDelivery(t *testing.T) {
	sim := netem.NewSimulator(start, 1)
	f, err := netem.BuildFanout(sim, netem.FanoutSpec{Hosts: 8})
	if err != nil {
		t.Fatal(err)
	}
	delivered := f.CountDeliveries()
	templates := make([][]byte, 8)
	for i := range templates {
		templates[i] = mkTestUDP(t, f.OutsideAddr(0), f.HostAddr(i))
	}
	send := CyclingSender(f.Outside[0], templates)
	const total = 64
	OpenLoop{RatePps: 1000, Count: total}.Run(sim, 0, send)
	sim.Run()
	if delivered.Total() != total {
		t.Fatalf("delivered %d/%d", delivered.Total(), total)
	}
	// Pooled buffers: 64 sends must reuse a handful of buffers, not
	// allocate one each.
	if allocated, gets := sim.PoolStats(); gets < total || allocated > 16 {
		t.Errorf("pool stats: allocated=%d gets=%d", allocated, gets)
	}
}

func mkTestUDP(t *testing.T, src, dst netip.Addr) []byte {
	t.Helper()
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, 64)
	buf.PushPayload(make([]byte, 64))
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: 1, DstPort: 2},
	); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
