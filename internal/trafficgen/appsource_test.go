package trafficgen

import (
	"math/rand"
	"testing"
	"time"

	"netneutral/internal/netem"
)

func newTestSim(seed int64) *netem.Simulator { return netem.NewSimulator(start, seed) }

// runApp collects one flow's emission schedule.
func runApp(app App, seed int64, d time.Duration) (times []time.Duration, sizes []int) {
	sim := newTestSim(seed)
	AppSource{App: app, Rng: rand.New(rand.NewSource(seed))}.Run(sim, d,
		func(seq uint64, size int) {
			times = append(times, sim.Now().Sub(start))
			sizes = append(sizes, size)
		})
	sim.Run()
	return times, sizes
}

func TestAppVoIPShape(t *testing.T) {
	times, sizes := runApp(AppVoIP, 3, 2*time.Second)
	// ~50 pps for 2s, minus the phase offset.
	if len(times) < 90 || len(times) > 105 {
		t.Fatalf("voip emitted %d frames in 2s, want ~100", len(times))
	}
	for i, s := range sizes {
		if s != 160 {
			t.Fatalf("frame %d size %d, want constant 160", i, s)
		}
	}
	for i := 1; i < len(times); i++ {
		gap := times[i] - times[i-1]
		if gap < 18*time.Millisecond || gap > 22*time.Millisecond {
			t.Fatalf("voip gap %v outside the jittered 20ms cadence", gap)
		}
	}
}

func TestAppVideoIsBursty(t *testing.T) {
	times, sizes := runApp(AppVideo, 5, 3*time.Second)
	if len(times) < 50 {
		t.Fatalf("video emitted %d frames, want bursts' worth", len(times))
	}
	small, large := 0, 0
	for i := 1; i < len(times); i++ {
		if gap := times[i] - times[i-1]; gap < time.Millisecond {
			small++
		} else if gap > 100*time.Millisecond {
			large++
		}
	}
	if small == 0 || large == 0 {
		t.Errorf("video gaps: %d intra-burst, %d inter-burst — want both (on/off)", small, large)
	}
	for _, s := range sizes {
		if s != 1200 {
			t.Fatalf("video frame size %d, want 1200", s)
		}
	}
}

func TestAppBulkSteadyLarge(t *testing.T) {
	times, sizes := runApp(AppBulk, 7, time.Second)
	if len(times) < 300 {
		t.Fatalf("bulk emitted %d, want ~330", len(times))
	}
	for _, s := range sizes {
		if s < 1250 || s >= 1330 {
			t.Fatalf("bulk size %d outside [1250,1330)", s)
		}
	}
}

func TestAppWebHeavyTail(t *testing.T) {
	times, sizes := runApp(AppWeb, 11, 20*time.Second)
	if len(times) < 30 {
		t.Fatalf("web emitted %d pieces in 20s, want fetch activity", len(times))
	}
	minS, maxS := 1<<30, 0
	for _, s := range sizes {
		if s < minS {
			minS = s
		}
		if s > maxS {
			maxS = s
		}
	}
	if minS == maxS {
		t.Error("web sizes constant, want mixed")
	}
}

func TestAppSourceDeterministicPerSeed(t *testing.T) {
	t1, _ := runApp(AppVideo, 9, time.Second)
	t2, _ := runApp(AppVideo, 9, time.Second)
	if len(t1) != len(t2) {
		t.Fatalf("same seed emitted %d vs %d", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("emission %d at %v vs %v", i, t1[i], t2[i])
		}
	}
}

func TestAppPortsDistinct(t *testing.T) {
	seen := map[uint16]App{}
	for _, a := range []App{AppVoIP, AppVideo, AppBulk, AppWeb} {
		p := a.Port()
		if prev, dup := seen[p]; dup {
			t.Errorf("%v and %v share port %d", prev, a, p)
		}
		seen[p] = a
		if a.String() == "app?" {
			t.Errorf("app %d unnamed", a)
		}
	}
}
