package trafficgen

import (
	"fmt"

	"netneutral/internal/obs"
)

// AppMetrics is per-application-class goodput accounting on a registry:
//
//	trafficgen_sent_packets_total{app=...}
//	trafficgen_sent_bytes_total{app=...}
//	trafficgen_delivered_packets_total{app=...}
//	trafficgen_delivered_bytes_total{app=...}
//
// Counters are plain registry stripes allocated per (app, shard):
// emission runs on the flow's source shard and delivery on the
// receiver's shard, so every stripe has a single writer and the hot
// path is one unsynchronized increment.
type AppMetrics struct {
	sentPkts, sentBytes           [NumApps]*obs.CounterVec
	deliveredPkts, deliveredBytes [NumApps]*obs.CounterVec
}

// NewAppMetrics registers the per-app goodput families on reg.
func NewAppMetrics(reg *obs.Registry) *AppMetrics {
	m := &AppMetrics{}
	for a := App(0); a < NumApps; a++ {
		label := fmt.Sprintf("{app=%q}", a.String())
		m.sentPkts[a] = reg.Counter("trafficgen_sent_packets_total"+label,
			"Application payloads emitted by app-shaped sources.")
		m.sentBytes[a] = reg.Counter("trafficgen_sent_bytes_total"+label,
			"Application payload bytes emitted by app-shaped sources.")
		m.deliveredPkts[a] = reg.Counter("trafficgen_delivered_packets_total"+label,
			"Application payloads delivered to their receivers.")
		m.deliveredBytes[a] = reg.Counter("trafficgen_delivered_bytes_total"+label,
			"Application payload bytes delivered to their receivers.")
	}
	return m
}

// CountEmit wraps an AppSource emit callback so every emission is
// counted on the given shard's stripes. One wrapper per flow; flows on
// the same shard may share stripes, flows on different shards never do.
func (m *AppMetrics) CountEmit(app App, shard int, emit func(seq uint64, size int)) func(seq uint64, size int) {
	pkts := m.sentPkts[app].Stripe(shard)
	bytes := m.sentBytes[app].Stripe(shard)
	return func(seq uint64, size int) {
		pkts.Inc()
		bytes.Add(uint64(size))
		emit(seq, size)
	}
}

// Delivered counts one delivered payload of the app on the receiver
// shard's stripes. Use CountDeliver to pre-resolve the stripes when the
// delivery path is hot.
func (m *AppMetrics) Delivered(app App, shard int, size int) {
	m.deliveredPkts[app].Stripe(shard).Inc()
	m.deliveredBytes[app].Stripe(shard).Add(uint64(size))
}

// CountDeliver returns a delivery hook for one (app, shard) with the
// stripes resolved once — suitable for per-packet receive handlers.
func (m *AppMetrics) CountDeliver(app App, shard int) func(size int) {
	pkts := m.deliveredPkts[app].Stripe(shard)
	bytes := m.deliveredBytes[app].Stripe(shard)
	return func(size int) {
		pkts.Inc()
		bytes.Add(uint64(size))
	}
}
