package audit

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Role labels the two flows of a paired probe.
type Role uint8

// Probe roles.
const (
	// RoleSuspect is the app-shaped flow the audited ISP might target.
	RoleSuspect Role = iota
	// RoleControl is the shape-neutral flow on the same path.
	RoleControl
	// NumRoles sizes per-role arrays.
	NumRoles
)

func (r Role) String() string {
	switch r {
	case RoleSuspect:
		return "suspect"
	case RoleControl:
		return "control"
	default:
		return "role?"
	}
}

// Strategy selects how trials are laid out in time.
type Strategy uint8

// Probe strategies.
const (
	// StrategyNaive runs each trial as a fresh pair of short-lived
	// flows, suspect burst then control burst back-to-back — the
	// Glasnost-style test an ISP can defeat by whitelisting young flows.
	StrategyNaive Strategy = iota
	// StrategyInterleaved keeps one long-lived suspect flow and one
	// long-lived control flow running across all trials, measured in
	// alternating parallel and back-to-back windows: the flows age into
	// any probe-evasion threshold and sample every duty phase.
	StrategyInterleaved
)

func (s Strategy) String() string {
	switch s {
	case StrategyNaive:
		return "naive"
	case StrategyInterleaved:
		return "interleaved"
	default:
		return "strategy?"
	}
}

// NoTrial marks an emission outside any measured trial window (flow
// warm-up, inter-trial gaps, the unmeasured half of a back-to-back
// window). Deliveries tagged with it are not counted.
const NoTrial = 0xFFFF

// Trial is one paired measurement window's accounting, per role.
type Trial struct {
	// Sent and Delivered count application payload bytes.
	Sent, Delivered [NumRoles]uint64
	// DelaySum accumulates one-way delivery delay in nanoseconds over
	// DelayPkts delivered probe packets.
	DelaySum  [NumRoles]int64
	DelayPkts [NumRoles]uint64
}

// Report is one vantage point's complete audit measurement — what a
// vantage ships (wire-encoded, see AppendReport) to the cross-vantage
// aggregator.
type Report struct {
	// Vantage identifies the measuring vantage point.
	Vantage uint16
	// Inside marks vantages whose probe path stays inside the
	// supportive ISP (never crossing the transit network) — the
	// aggregator's lever for localizing a differential.
	Inside   bool
	Strategy Strategy
	Trials   []Trial
}

// GoodputSamples returns the per-trial goodput ratio (delivered/sent
// payload bytes) for the role, skipping trials where nothing was sent.
func (r *Report) GoodputSamples(role Role) []float64 {
	out := make([]float64, 0, len(r.Trials))
	for i := range r.Trials {
		if s := r.Trials[i].Sent[role]; s > 0 {
			out = append(out, float64(r.Trials[i].Delivered[role])/float64(s))
		}
	}
	return out
}

// DelaySamples returns the per-trial mean one-way delay in seconds for
// the role, skipping trials with no delivered packets.
func (r *Report) DelaySamples(role Role) []float64 {
	out := make([]float64, 0, len(r.Trials))
	for i := range r.Trials {
		if n := r.Trials[i].DelayPkts[role]; n > 0 {
			out = append(out, float64(r.Trials[i].DelaySum[role])/float64(n)/1e9)
		}
	}
	return out
}

// ---- wire encoding ------------------------------------------------------

// Report wire format (little-endian):
//
//	magic 0xAD | version 1 | vantage u16 | flags u8 | trials u16 | per-trial 64B
//
// flags bit0 = inside, bits 1-2 = strategy. Each trial serializes its
// eight u64 fields in struct order. The format is strict: DecodeReport
// rejects short bodies, trailing bytes, unknown versions and flag bits,
// and trial counts beyond MaxReportTrials.
const (
	reportMagic   = 0xAD
	reportVersion = 1
	reportHdrLen  = 7
	trialWireLen  = 8 * 8
	// MaxReportTrials bounds a decoded report's trial count: a corrupt
	// or hostile length field must not drive a large allocation.
	MaxReportTrials = 4096
)

// ErrBadReport is wrapped by every DecodeReport failure.
var ErrBadReport = errors.New("audit: malformed report")

// AppendReport appends the report's wire encoding to dst.
func AppendReport(dst []byte, r *Report) ([]byte, error) {
	if len(r.Trials) > MaxReportTrials {
		return dst, fmt.Errorf("%w: %d trials exceed %d", ErrBadReport, len(r.Trials), MaxReportTrials)
	}
	if r.Strategy > StrategyInterleaved {
		return dst, fmt.Errorf("%w: unknown strategy %d", ErrBadReport, r.Strategy)
	}
	flags := byte(r.Strategy) << 1
	if r.Inside {
		flags |= 1
	}
	dst = append(dst, reportMagic, reportVersion)
	dst = binary.LittleEndian.AppendUint16(dst, r.Vantage)
	dst = append(dst, flags)
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(r.Trials)))
	for i := range r.Trials {
		t := &r.Trials[i]
		for role := Role(0); role < NumRoles; role++ {
			dst = binary.LittleEndian.AppendUint64(dst, t.Sent[role])
		}
		for role := Role(0); role < NumRoles; role++ {
			dst = binary.LittleEndian.AppendUint64(dst, t.Delivered[role])
		}
		for role := Role(0); role < NumRoles; role++ {
			dst = binary.LittleEndian.AppendUint64(dst, uint64(t.DelaySum[role]))
		}
		for role := Role(0); role < NumRoles; role++ {
			dst = binary.LittleEndian.AppendUint64(dst, t.DelayPkts[role])
		}
	}
	return dst, nil
}

// DecodeReport parses a wire-encoded report. It never reads past b and
// rejects any structural inconsistency.
func DecodeReport(b []byte) (*Report, error) {
	if len(b) < reportHdrLen {
		return nil, fmt.Errorf("%w: %d bytes, need header of %d", ErrBadReport, len(b), reportHdrLen)
	}
	if b[0] != reportMagic {
		return nil, fmt.Errorf("%w: magic 0x%02X", ErrBadReport, b[0])
	}
	if b[1] != reportVersion {
		return nil, fmt.Errorf("%w: version %d", ErrBadReport, b[1])
	}
	flags := b[4]
	if flags>>3 != 0 {
		return nil, fmt.Errorf("%w: reserved flag bits 0x%02X", ErrBadReport, flags)
	}
	strategy := Strategy(flags >> 1)
	if strategy > StrategyInterleaved {
		return nil, fmt.Errorf("%w: strategy %d", ErrBadReport, strategy)
	}
	n := int(binary.LittleEndian.Uint16(b[5:7]))
	if n > MaxReportTrials {
		return nil, fmt.Errorf("%w: %d trials exceed %d", ErrBadReport, n, MaxReportTrials)
	}
	if want := reportHdrLen + n*trialWireLen; len(b) != want {
		return nil, fmt.Errorf("%w: %d bytes for %d trials, want %d", ErrBadReport, len(b), n, want)
	}
	r := &Report{
		Vantage:  binary.LittleEndian.Uint16(b[2:4]),
		Inside:   flags&1 != 0,
		Strategy: strategy,
		Trials:   make([]Trial, n),
	}
	off := reportHdrLen
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v
	}
	for i := range r.Trials {
		t := &r.Trials[i]
		for role := Role(0); role < NumRoles; role++ {
			t.Sent[role] = u64()
		}
		for role := Role(0); role < NumRoles; role++ {
			t.Delivered[role] = u64()
		}
		for role := Role(0); role < NumRoles; role++ {
			t.DelaySum[role] = int64(u64())
		}
		for role := Role(0); role < NumRoles; role++ {
			t.DelayPkts[role] = u64()
		}
	}
	return r, nil
}

// ---- probe payload ------------------------------------------------------

// ProbeHeaderLen is the in-payload probe header: role u8, trial u16,
// send-time i64 nanoseconds (little-endian). Every probe payload the
// auditor emits starts with it; the receiving vantage agent parses it
// to attribute the delivery to (role, trial) and measure one-way delay.
const ProbeHeaderLen = 11

// PutProbePayload writes the probe header into b (len(b) must be at
// least ProbeHeaderLen; probe payloads are always larger).
func PutProbePayload(b []byte, role Role, trial int, sentNanos int64) {
	b[0] = byte(role)
	binary.LittleEndian.PutUint16(b[1:3], uint16(trial))
	binary.LittleEndian.PutUint64(b[3:11], uint64(sentNanos))
}

// ParseProbePayload reads a probe header; ok is false for payloads too
// short or with an unknown role.
func ParseProbePayload(b []byte) (role Role, trial int, sentNanos int64, ok bool) {
	if len(b) < ProbeHeaderLen || Role(b[0]) >= NumRoles {
		return 0, 0, 0, false
	}
	role = Role(b[0])
	trial = int(binary.LittleEndian.Uint16(b[1:3]))
	sentNanos = int64(binary.LittleEndian.Uint64(b[3:11]))
	return role, trial, sentNanos, true
}
