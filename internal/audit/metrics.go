package audit

import (
	"fmt"

	"netneutral/internal/obs"
)

// proberMetrics is one vantage's registry wiring. Emission counters are
// written on the vantage's scheduling context and delivery counters on
// the probe target's shard — the same disjoint-writer split as the Trial
// ledger — so each stripe has a single writer and no locking.
type proberMetrics struct {
	sent      [NumRoles]*obs.Counter // payload bytes emitted (measured trials only)
	delivered [NumRoles]*obs.Counter // payload bytes delivered
	pkts      [NumRoles]*obs.Counter // probe packets delivered
}

// Instrument exports the prober's accounting as counter families on reg,
// labeled by vantage and probe role:
//
//	audit_probe_sent_bytes_total{vantage=...,role=...}
//	audit_probe_delivered_bytes_total{vantage=...,role=...}
//	audit_probe_delivered_packets_total{vantage=...,role=...}
//	audit_probe_trials_total{vantage=...}
//
// The trials family is a function of the virtual clock (completed
// measurement windows), so recorder samples taken at simulation barriers
// are deterministic. Call before Run.
func (p *Prober) Instrument(reg *obs.Registry, vantage int) {
	m := &proberMetrics{}
	for r := Role(0); r < NumRoles; r++ {
		label := fmt.Sprintf("{vantage=\"%d\",role=%q}", vantage, r.String())
		m.sent[r] = reg.Counter("audit_probe_sent_bytes_total"+label,
			"Probe payload bytes emitted inside measured trial windows.").NewStripe()
		m.delivered[r] = reg.Counter("audit_probe_delivered_bytes_total"+label,
			"Probe payload bytes delivered and attributed to a trial.").NewStripe()
		m.pkts[r] = reg.Counter("audit_probe_delivered_packets_total"+label,
			"Probe packets delivered and attributed to a trial.").NewStripe()
	}
	p.met = m
	reg.CounterFunc(fmt.Sprintf("audit_probe_trials_total{vantage=\"%d\"}", vantage),
		"Measurement trials whose window has completed.",
		p.CompletedTrials)
}

// CompletedTrials reports how many of the prober's trial windows have
// fully elapsed at the current virtual time (0 before Run).
func (p *Prober) CompletedTrials() uint64 {
	if p.start.IsZero() {
		return 0
	}
	period := p.cfg.Window + p.cfg.Gap
	if p.cfg.Strategy == StrategyNaive {
		period = p.cfg.NaivePeriod
	}
	elapsed := p.cfg.On.Now().Sub(p.start)
	if elapsed < 0 {
		return 0
	}
	n := uint64(elapsed / period)
	if n > uint64(p.cfg.Trials) {
		n = uint64(p.cfg.Trials)
	}
	return n
}

// VerdictMetrics tallies per-vantage audit decisions on a registry:
// audit_verdicts_total{verdict="discriminated"|"clean"}. Aggregators
// (eval's E8) call Count once per vantage verdict.
type VerdictMetrics struct {
	discriminated *obs.Counter
	clean         *obs.Counter
}

// NewVerdictMetrics registers the verdict families on reg.
func NewVerdictMetrics(reg *obs.Registry) *VerdictMetrics {
	return &VerdictMetrics{
		discriminated: reg.Counter(`audit_verdicts_total{verdict="discriminated"}`,
			"Vantage verdicts that found discrimination.").NewStripe(),
		clean: reg.Counter(`audit_verdicts_total{verdict="clean"}`,
			"Vantage verdicts that found no discrimination.").NewStripe(),
	}
}

// Count tallies one vantage's verdict.
func (m *VerdictMetrics) Count(v Verdict) {
	if v.Discriminated {
		m.discriminated.Inc()
		return
	}
	m.clean.Inc()
}
