// Package audit implements the active neutrality auditor: the end-host
// side of a *technical* (rather than regulatory) approach to net
// neutrality. The neutralizer (internal/core) prevents an ISP from
// discriminating by address, and the cloak (internal/cloak) by traffic
// shape — but neither tells a user whether discrimination is happening
// in the first place. This package makes discrimination *measurable*,
// in the tradition of Glasnost-style differential probing: run a
// suspect app-shaped flow and a shape-neutral control flow over the
// same path, compare their per-trial goodput and delay distributions
// with nonparametric statistics (internal/measure's Mann-Whitney U and
// Kolmogorov-Smirnov tests), and aggregate verdicts across many vantage
// points to both harden the decision against stealthy throttlers
// (partial, duty-cycled, probe-evading — internal/dpi's stealth modes)
// and localize which path segment the differential appears on.
//
// The pieces:
//
//   - Prober schedules one vantage's paired probe flows on a netem
//     simulator — long-lived interleaved flows measured in alternating
//     parallel and back-to-back windows, or naive per-trial bursts —
//     and accounts deliveries into per-trial Trial records.
//   - Report is the vantage's measurement, with a strict wire encoding
//     (AppendReport/DecodeReport, fuzzed by FuzzAuditReport) so
//     vantages can ship results to an untrusting aggregator.
//   - Decide turns one report into a Verdict: discriminated or not,
//     with p-values, effect sizes and the measured goodput/delay gaps.
//   - Summarize aggregates verdicts across vantages into detection
//     power, an ISP-level ruling, and a path-segment localization.
//
// eval's E8 experiment (RunAudit) drives the full matrix of ISP
// behaviors against this auditor and enforces its headline numbers.
package audit

import (
	"math"

	"netneutral/internal/measure"
)

// DecisionConfig parameterizes the per-vantage decision rule; the zero
// value gets defaults chosen to keep the false-positive rate on a
// neutral network far below the 0.05 budget.
type DecisionConfig struct {
	// Alpha is the per-test significance level (default 0.01).
	Alpha float64
	// MinGap is the minimum relative goodput gap (control vs suspect
	// medians) to call discrimination (default 0.08): statistical
	// significance without practical effect is noise at audit scale.
	MinGap float64
	// MinDelayGap is the minimum relative delay inflation of the
	// suspect flow (default 0.25).
	MinDelayGap float64
	// MinTrials is the minimum per-role sample count (default 6);
	// thinner reports are never called discriminatory.
	MinTrials int
}

func (c *DecisionConfig) fill() {
	if c.Alpha <= 0 {
		c.Alpha = 0.01
	}
	if c.MinGap <= 0 {
		c.MinGap = 0.08
	}
	if c.MinDelayGap <= 0 {
		c.MinDelayGap = 0.25
	}
	if c.MinTrials <= 0 {
		c.MinTrials = 6
	}
}

// Verdict is one vantage's decision with its full statistical support.
type Verdict struct {
	// Discriminated is true when either the goodput or the delay branch
	// of the decision rule fires.
	Discriminated bool
	// GoodputHit/DelayHit attribute the decision.
	GoodputHit, DelayHit bool

	// GoodputMW and GoodputKS test suspect vs control per-trial goodput.
	GoodputMW, GoodputKS measure.TestResult
	// TailTrials counts suspect trials that fell below every control
	// trial by the practical margin, and TailP is the exact binomial
	// probability of that many exceedances under exchangeability — the
	// branch that catches duty-cycled throttling, whose bimodal damage
	// moves rank sums too little at audit sample sizes.
	TailTrials int
	TailP      float64
	// DelayMW tests suspect vs control per-trial mean delay.
	DelayMW measure.TestResult

	// SuspectGoodput/ControlGoodput are the median per-trial goodput
	// ratios; Gap is their relative difference (positive = suspect
	// worse).
	SuspectGoodput, ControlGoodput float64
	Gap                            float64
	// SuspectDelay/ControlDelay are median per-trial mean delays in
	// seconds; DelayGap is the suspect's relative inflation.
	SuspectDelay, ControlDelay float64
	DelayGap                   float64
	// Trials is the usable per-role sample count (minimum of the two).
	Trials int
}

// Decide applies the differential decision rule to one vantage report.
// Discrimination requires BOTH statistical significance (Mann-Whitney
// or Kolmogorov-Smirnov below Alpha) AND a practical effect (relative
// gap beyond the configured minimum, in the harmful direction) — the
// compound rule is what keeps false positives near zero on a neutral
// path while a 90%-drop throttler is detected with near certainty.
func Decide(r *Report, cfg DecisionConfig) Verdict {
	cfg.fill()
	var v Verdict

	sg := r.GoodputSamples(RoleSuspect)
	cg := r.GoodputSamples(RoleControl)
	v.Trials = min(len(sg), len(cg))
	if v.Trials < cfg.MinTrials {
		return v
	}
	v.SuspectGoodput = measure.Median(sg)
	v.ControlGoodput = measure.Median(cg)
	if v.ControlGoodput > 0 {
		v.Gap = (v.ControlGoodput - v.SuspectGoodput) / v.ControlGoodput
	}
	v.GoodputMW = measure.MannWhitney(sg, cg)
	v.GoodputKS = measure.KolmogorovSmirnov(sg, cg)
	medianHit := v.SuspectGoodput < v.ControlGoodput &&
		v.Gap >= cfg.MinGap &&
		(v.GoodputMW.P < cfg.Alpha || v.GoodputKS.P < cfg.Alpha)
	v.TailTrials, v.TailP = exceedance(sg, cg, v.ControlGoodput, cfg.MinGap)
	tailHit := v.TailTrials >= 2 && v.TailP < cfg.Alpha
	v.GoodputHit = medianHit || tailHit

	sd := r.DelaySamples(RoleSuspect)
	cd := r.DelaySamples(RoleControl)
	if min(len(sd), len(cd)) >= cfg.MinTrials {
		v.SuspectDelay = measure.Median(sd)
		v.ControlDelay = measure.Median(cd)
		if v.ControlDelay > 0 {
			v.DelayGap = (v.SuspectDelay - v.ControlDelay) / v.ControlDelay
		}
		v.DelayMW = measure.MannWhitney(sd, cd)
		v.DelayHit = v.SuspectDelay > v.ControlDelay &&
			v.DelayGap >= cfg.MinDelayGap &&
			v.DelayMW.P < cfg.Alpha
	}

	v.Discriminated = v.GoodputHit || v.DelayHit
	return v
}

// exceedance counts suspect trials that fell strictly below every
// control trial AND below the control median (precomputed by the
// caller) by the practical margin, and returns a binomial tail
// probability for that many exceedances: under exchangeability a
// single suspect trial undercuts all n2 control trials with marginal
// probability 1/(n2+1), and the tail treats trials as independent at
// that fixed rate. That is an approximation, not an exact conditional
// test — correlated trials (a congestion epoch spanning several
// windows) can make it anticonservative — which is why the threshold
// also demands the practical margin below the control median: shared
// noise moves both flows, and only a genuine differential drops a
// cluster of suspect trials 8% under a control that stayed high. A
// duty-cycled throttler produces exactly that cluster even when
// medians barely move.
func exceedance(suspect, control []float64, controlMedian, minGap float64) (m int, p float64) {
	if len(suspect) == 0 || len(control) == 0 {
		return 0, 1
	}
	cmin := control[0]
	for _, v := range control {
		if v < cmin {
			cmin = v
		}
	}
	thresh := math.Min(cmin, controlMedian*(1-minGap))
	for _, v := range suspect {
		if v < thresh {
			m++
		}
	}
	return m, binomTail(len(suspect), m, 1/float64(len(control)+1))
}

// binomTail is P(X >= m) for X ~ Binomial(n, p), computed directly (n
// is a trial count, never large).
func binomTail(n, m int, p float64) float64 {
	if m <= 0 {
		return 1
	}
	sum := 0.0
	for k := m; k <= n; k++ {
		sum += math.Exp(lnChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
	}
	if sum > 1 {
		return 1
	}
	return sum
}

func lnChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n + 1))
	b, _ := math.Lgamma(float64(k + 1))
	c, _ := math.Lgamma(float64(n - k + 1))
	return a - b - c
}

// Segment localizes where on the path a detected differential appears.
type Segment uint8

// Localization outcomes.
const (
	// SegmentNone: no discrimination detected anywhere.
	SegmentNone Segment = iota
	// SegmentBeyondBorder: only vantages whose paths cross the transit
	// network see the differential — the discriminator sits beyond the
	// supportive ISP's border.
	SegmentBeyondBorder
	// SegmentInside: inside-only paths see it too, so the differential
	// arises within the supportive ISP itself.
	SegmentInside
)

func (s Segment) String() string {
	switch s {
	case SegmentBeyondBorder:
		return "beyond-border"
	case SegmentInside:
		return "inside"
	default:
		return "none"
	}
}

// Summary is the cross-vantage aggregation of one audit.
type Summary struct {
	// Outside/Inside count vantages by path class; the Detected fields
	// count those whose verdict was discrimination.
	Outside, OutsideDetected int
	Inside, InsideDetected   int
	// Power is the outside-vantage detection fraction — the per-audit
	// detection power of the probe design against this ISP.
	Power float64
	// InsidePower is the inside-vantage detection fraction.
	InsidePower float64
	// Discriminating is the ISP-level ruling: outside detection power
	// beyond the aggregation threshold. A partial (TargetFraction)
	// throttler dilutes per-vantage power, but as long as the detected
	// fraction clears a threshold no neutral network approaches, the
	// aggregate still convicts.
	Discriminating bool
	// Localized names the path segment the differential appears on.
	Localized Segment
	// Verdicts holds each vantage's full decision, parallel to the
	// reports passed to Summarize.
	Verdicts []Verdict
	// Evidence, when tracing was attached, is the causal backing for
	// the ruling: the traced policing sites (node, cause, class) whose
	// attributed drops and delay explain the measured differential.
	Evidence EvidenceTrail
}

// DefaultAggregationThreshold is the outside detection fraction beyond
// which the aggregate rules the ISP discriminating. Neutral networks
// measure ~0 with the compound decision rule; even a 30%-targeting
// partial throttler clears it.
const DefaultAggregationThreshold = 0.25

// Summarize decides each report and aggregates across vantages.
// minFraction <= 0 selects DefaultAggregationThreshold. An optional
// evidence trail (built by BuildEvidence from traced hop events) is
// attached to the summary so a conviction carries its causal backing.
func Summarize(reports []*Report, dcfg DecisionConfig, minFraction float64, evidence ...EvidenceTrail) Summary {
	if minFraction <= 0 {
		minFraction = DefaultAggregationThreshold
	}
	var s Summary
	for _, t := range evidence {
		s.Evidence = append(s.Evidence, t...)
	}
	s.Verdicts = make([]Verdict, len(reports))
	for i, r := range reports {
		v := Decide(r, dcfg)
		s.Verdicts[i] = v
		if r.Inside {
			s.Inside++
			if v.Discriminated {
				s.InsideDetected++
			}
		} else {
			s.Outside++
			if v.Discriminated {
				s.OutsideDetected++
			}
		}
	}
	if s.Outside > 0 {
		s.Power = float64(s.OutsideDetected) / float64(s.Outside)
	}
	if s.Inside > 0 {
		s.InsidePower = float64(s.InsideDetected) / float64(s.Inside)
	}
	s.Discriminating = s.Power >= minFraction
	switch {
	case !s.Discriminating && s.InsidePower < minFraction:
		s.Localized = SegmentNone
	case s.InsidePower >= minFraction:
		s.Localized = SegmentInside
	default:
		s.Localized = SegmentBeyondBorder
	}
	return s
}
