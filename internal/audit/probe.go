package audit

import (
	"fmt"
	"math/rand"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/trafficgen"
)

// ProberConfig configures one vantage's paired probe run; zero values
// get the defaults noted per field.
type ProberConfig struct {
	// On is the scheduling context the probe flows run on (required):
	// the simulator for single-threaded runs, or the vantage's source
	// node on sharded simulations, so every emission executes on (and
	// draws its timing from) the shard that owns the vantage.
	On netem.Context
	// Rng drives flow jitter; seed it so an audit replays bit-
	// identically (required).
	Rng *rand.Rand
	// Strategy selects naive bursts or interleaved long-lived flows.
	Strategy Strategy
	// Trials is the number of paired measurement windows (default 12).
	Trials int
	// Window is the measured span of one interleaved trial (default 1s).
	Window time.Duration
	// Gap is the unmeasured settle span between interleaved trials
	// (default 200ms).
	Gap time.Duration
	// Suspect is the app shape the suspect flow imitates (default VoIP,
	// the canonical throttling target).
	Suspect trafficgen.App
	// NaivePackets is the per-burst packet count of the naive strategy
	// (default 64 — deliberately below a probe-evading ISP's flow-age
	// threshold, which is the point E8 makes).
	NaivePackets int
	// NaivePeriod is the naive strategy's per-trial period: suspect
	// burst at the start, control burst at the half (default 4s).
	NaivePeriod time.Duration
	// Emit transmits one probe packet of the given payload size. The
	// trial index is NoTrial for unmeasured emissions; the naive
	// strategy's emissions always carry their trial so the caller can
	// key each burst to a fresh flow identity.
	Emit func(role Role, trial int, size int)
}

func (c *ProberConfig) fill() error {
	if c.On == nil || c.Rng == nil || c.Emit == nil {
		return fmt.Errorf("audit: ProberConfig needs On, Rng and Emit")
	}
	if c.Trials <= 0 {
		c.Trials = 12
	}
	if c.Trials > MaxReportTrials {
		return fmt.Errorf("audit: %d trials exceed %d", c.Trials, MaxReportTrials)
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.Gap <= 0 {
		c.Gap = 200 * time.Millisecond
	}
	if c.NaivePackets <= 0 {
		c.NaivePackets = 64
	}
	if c.NaivePeriod <= 0 {
		c.NaivePeriod = 4 * time.Second
	}
	return nil
}

// Prober runs one vantage's paired differential probe and accounts the
// results into per-trial records. Emission accounting runs on the
// vantage's scheduling context; delivery accounting (Deliver /
// HandleProbe) runs on the probe target's shard. The two sides write
// disjoint Trial fields (Sent vs Delivered/DelaySum/DelayPkts), so a
// sharded run needs no locking and stays deterministic.
type Prober struct {
	cfg    ProberConfig
	start  time.Time
	trials []Trial
	met    *proberMetrics // nil until Instrument
}

// NewProber validates the config and prepares the trial ledger.
func NewProber(cfg ProberConfig) (*Prober, error) {
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	return &Prober{cfg: cfg, trials: make([]Trial, cfg.Trials)}, nil
}

// Duration reports how long the probe runs from Run.
func (p *Prober) Duration() time.Duration {
	if p.cfg.Strategy == StrategyNaive {
		return time.Duration(p.cfg.Trials) * p.cfg.NaivePeriod
	}
	return time.Duration(p.cfg.Trials) * (p.cfg.Window + p.cfg.Gap)
}

// Run schedules the whole probe on the simulator, starting now.
func (p *Prober) Run() {
	p.start = p.cfg.On.Now()
	if p.cfg.Strategy == StrategyNaive {
		p.runNaive()
		return
	}
	p.runInterleaved()
}

// runInterleaved launches the two long-lived flows; the emit wrappers
// attribute each emission to the trial window (if any) that is
// measuring its role at send time.
func (p *Prober) runInterleaved() {
	total := p.Duration()
	suspectRng := rand.New(rand.NewSource(p.cfg.Rng.Int63()))
	controlRng := rand.New(rand.NewSource(p.cfg.Rng.Int63()))
	trafficgen.AppSource{App: p.cfg.Suspect, Rng: suspectRng}.Run(p.cfg.On, total, p.emitFn(RoleSuspect))
	trafficgen.ControlSource{Rng: controlRng}.Run(p.cfg.On, total, p.emitFn(RoleControl))
}

// runNaive schedules per-trial fresh bursts: suspect at each trial
// start, control at the half period — back-to-back by construction.
func (p *Prober) runNaive() {
	on := p.cfg.On
	for t := 0; t < p.cfg.Trials; t++ {
		trial := t
		suspectRng := rand.New(rand.NewSource(p.cfg.Rng.Int63()))
		controlRng := rand.New(rand.NewSource(p.cfg.Rng.Int63()))
		at := time.Duration(t) * p.cfg.NaivePeriod
		on.Schedule(at, func() {
			trafficgen.AppSource{App: p.cfg.Suspect, Rng: suspectRng}.
				RunN(on, p.cfg.NaivePackets, p.burstEmit(RoleSuspect, trial))
		})
		on.Schedule(at+p.cfg.NaivePeriod/2, func() {
			trafficgen.ControlSource{Rng: controlRng}.
				RunN(on, p.cfg.NaivePackets, p.burstEmit(RoleControl, trial))
		})
	}
}

// emitFn wraps Emit for a continuous flow: account the emission to the
// measuring window, then transmit.
func (p *Prober) emitFn(role Role) func(seq uint64, size int) {
	return func(_ uint64, size int) {
		trial := p.measuredTrial(role, p.cfg.On.Now())
		if trial != NoTrial {
			p.trials[trial].Sent[role] += uint64(size)
			if p.met != nil {
				p.met.sent[role].Add(uint64(size))
			}
		}
		p.cfg.Emit(role, trial, size)
	}
}

// burstEmit wraps Emit for a naive burst: the whole burst belongs to
// its trial.
func (p *Prober) burstEmit(role Role, trial int) func(seq uint64, size int) {
	return func(_ uint64, size int) {
		p.trials[trial].Sent[role] += uint64(size)
		if p.met != nil {
			p.met.sent[role].Add(uint64(size))
		}
		p.cfg.Emit(role, trial, size)
	}
}

// measuredTrial maps an emission time to the trial currently measuring
// the role, or NoTrial. Even-numbered trials measure both flows in
// parallel over the full window; odd-numbered trials split the window
// back-to-back into two half-windows, alternating which role is
// measured first — so every pairing discipline contributes samples and
// mutual interference between the two probe flows is controlled for.
func (p *Prober) measuredTrial(role Role, now time.Time) int {
	elapsed := now.Sub(p.start)
	if elapsed < 0 {
		return NoTrial
	}
	period := p.cfg.Window + p.cfg.Gap
	t := int(elapsed / period)
	if t >= p.cfg.Trials {
		return NoTrial
	}
	off := elapsed - time.Duration(t)*period
	if off >= p.cfg.Window {
		return NoTrial // settle gap
	}
	if t%2 == 0 {
		return t // parallel window: both roles measured
	}
	first := RoleSuspect
	if t%4 == 3 {
		first = RoleControl
	}
	measured := first
	if off >= p.cfg.Window/2 {
		measured = 1 - first
	}
	if role != measured {
		return NoTrial
	}
	return t
}

// Deliver accounts one delivered probe packet. Out-of-range indices
// (NoTrial, corrupt payloads) are ignored.
func (p *Prober) Deliver(role Role, trial int, size int, delay time.Duration) {
	if role >= NumRoles || trial < 0 || trial >= len(p.trials) {
		return
	}
	t := &p.trials[trial]
	t.Delivered[role] += uint64(size)
	t.DelaySum[role] += int64(delay)
	t.DelayPkts[role]++
	if p.met != nil {
		p.met.delivered[role].Add(uint64(size))
		p.met.pkts[role].Inc()
	}
}

// HandleProbe parses a delivered probe payload and accounts it: the
// vantage agent's receive hook.
func (p *Prober) HandleProbe(now time.Time, payload []byte) {
	role, trial, sentNanos, ok := ParseProbePayload(payload)
	if !ok || trial == NoTrial {
		return
	}
	p.Deliver(role, trial, len(payload), time.Duration(now.UnixNano()-sentNanos))
}

// Report snapshots the vantage's measurement for aggregation.
func (p *Prober) Report(vantage int, inside bool) *Report {
	r := &Report{
		Vantage:  uint16(vantage),
		Inside:   inside,
		Strategy: p.cfg.Strategy,
		Trials:   make([]Trial, len(p.trials)),
	}
	copy(r.Trials, p.trials)
	return r
}
