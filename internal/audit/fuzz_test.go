package audit_test

import (
	"bytes"
	"testing"

	"netneutral/internal/audit"
	"netneutral/internal/eval"
)

// fuzzSeeds are real packets from the benchmark environment — the byte
// strings that actually cross the wire next to probe reports — plus
// edge shapes.
func fuzzSeeds(f *testing.F) [][]byte {
	f.Helper()
	env, err := eval.NewBenchEnv(false, false)
	if err != nil {
		f.Fatal(err)
	}
	return [][]byte{
		env.DataPkt,
		env.ReturnPkt,
		env.SetupPkt,
		env.VanillaPkt,
		env.DataPkt[20:],
		{},
		bytes.Repeat([]byte{0xAD}, 7),
	}
}

// FuzzAuditReport holds the probe-report wire contract under hostile
// input: decoding arbitrary bytes never panics, never over-reads, and
// anything the decoder accepts re-encodes to the identical bytes
// (canonical form); a structurally valid synthetic report always
// round-trips.
func FuzzAuditReport(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed, uint16(3), uint8(2))
	}
	// A syntactically valid empty report and a 1-trial report.
	if b, err := audit.AppendReport(nil, &audit.Report{}); err == nil {
		f.Add(b, uint16(0), uint8(0))
	}
	if b, err := audit.AppendReport(nil, &audit.Report{
		Strategy: audit.StrategyInterleaved,
		Trials:   make([]audit.Trial, 1),
	}); err == nil {
		f.Add(b, uint16(1), uint8(1))
	}

	f.Fuzz(func(t *testing.T, data []byte, vantage uint16, nTrials uint8) {
		// Property 1: arbitrary bytes through the decoder — no panic;
		// accepted reports are canonical (re-encode byte-identical).
		if r, err := audit.DecodeReport(data); err == nil {
			again, err := audit.AppendReport(nil, r)
			if err != nil {
				t.Fatalf("decoded report failed to re-encode: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("decode/encode not canonical: %d in, %d out", len(data), len(again))
			}
		}

		// Property 2: a synthetic report built from the fuzzed operands
		// round-trips exactly. Trial fields are filled from data bytes.
		r := &audit.Report{
			Vantage:  vantage,
			Inside:   vantage%2 == 1,
			Strategy: audit.Strategy(nTrials % 2),
			Trials:   make([]audit.Trial, int(nTrials)%64),
		}
		at := 0
		next := func() uint64 {
			if len(data) == 0 {
				return 0
			}
			v := uint64(0)
			for i := 0; i < 8; i++ {
				v = v<<8 | uint64(data[at%len(data)])
				at++
			}
			return v
		}
		for i := range r.Trials {
			for role := audit.Role(0); role < audit.NumRoles; role++ {
				r.Trials[i].Sent[role] = next()
				r.Trials[i].Delivered[role] = next()
				r.Trials[i].DelaySum[role] = int64(next())
				r.Trials[i].DelayPkts[role] = next()
			}
		}
		wire, err := audit.AppendReport(nil, r)
		if err != nil {
			t.Fatalf("synthetic report rejected by encoder: %v", err)
		}
		got, err := audit.DecodeReport(wire)
		if err != nil {
			t.Fatalf("round trip decode failed: %v", err)
		}
		if got.Vantage != r.Vantage || got.Inside != r.Inside ||
			got.Strategy != r.Strategy || len(got.Trials) != len(r.Trials) {
			t.Fatal("round trip header mismatch")
		}
		for i := range got.Trials {
			if got.Trials[i] != r.Trials[i] {
				t.Fatalf("round trip trial %d mismatch", i)
			}
		}

		// Property 3: the probe payload header round-trips and rejects
		// short buffers without panicking.
		if len(data) >= audit.ProbeHeaderLen {
			buf := append([]byte(nil), data...)
			audit.PutProbePayload(buf, audit.RoleSuspect, int(vantage), int64(nTrials))
			role, trial, nanos, ok := audit.ParseProbePayload(buf)
			if !ok || role != audit.RoleSuspect || trial != int(vantage) || nanos != int64(nTrials) {
				t.Fatalf("probe payload round trip: %v %v %v %v", role, trial, nanos, ok)
			}
		} else {
			if _, _, _, ok := audit.ParseProbePayload(data); ok {
				t.Fatal("short probe payload accepted")
			}
		}
	})
}
