package audit

import (
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/obs"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// TestProberInstrument pins the prober's registry families against its
// own Report on a lossless path: trials complete, emissions inside
// measured windows are counted, and every delivered probe packet lands
// in the per-role delivery counters.
func TestProberInstrument(t *testing.T) {
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 9)
	src := sim.MustAddNode("src", "out", netip.MustParseAddr("172.16.0.2"))
	r := sim.MustAddNode("r", "transit")
	dst := sim.MustAddNode("dst", "cust", netip.MustParseAddr("10.9.0.1"))
	sim.Connect(src, r, netem.LinkConfig{Delay: time.Millisecond, QueueLen: 1024})
	sim.Connect(r, dst, netem.LinkConfig{Delay: time.Millisecond, QueueLen: 1024})
	sim.BuildRoutes()

	var p *Prober
	emit := func(role Role, trial int, size int) {
		payload := make([]byte, size)
		PutProbePayload(payload, role, trial, sim.NowNanos())
		buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
		buf.PushPayload(payload)
		if err := wire.SerializeLayers(buf,
			&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src.Addr(), Dst: dst.Addr()},
			&wire.UDP{SrcPort: 9000, DstPort: 9001},
		); err != nil {
			t.Fatal(err)
		}
		_ = src.Send(buf.Bytes())
	}
	var err error
	p, err = NewProber(ProberConfig{
		On:       sim,
		Rng:      rand.New(rand.NewSource(10)),
		Strategy: StrategyInterleaved,
		Trials:   12,
		Suspect:  trafficgen.AppVoIP,
		Emit:     emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.SetHandler(func(now time.Time, pkt []byte) {
		var ip wire.IPv4
		if ip.DecodeFromBytes(pkt) != nil {
			return
		}
		if len(ip.Payload()) <= wire.UDPHeaderLen {
			return
		}
		p.HandleProbe(now, ip.Payload()[wire.UDPHeaderLen:])
	})

	reg := obs.NewRegistry()
	p.Instrument(reg, 3)
	if got := p.CompletedTrials(); got != 0 {
		t.Fatalf("CompletedTrials before Run = %d, want 0", got)
	}
	p.Run()
	sim.Run()

	rep := p.Report(3, false)
	snap := reg.Snapshot()
	get := func(name string) uint64 {
		m := snap.Get(name)
		if m == nil {
			t.Fatalf("registry missing %s", name)
		}
		return uint64(m.Value)
	}
	if got := get(`audit_probe_trials_total{vantage="3"}`); got != 12 {
		t.Errorf("trials family = %d, want 12", got)
	}
	for role := Role(0); role < NumRoles; role++ {
		var sent, delivered uint64
		for _, tr := range rep.Trials {
			sent += tr.Sent[role]
			delivered += tr.Delivered[role]
		}
		label := `{vantage="3",role="` + role.String() + `"}`
		if got := get("audit_probe_sent_bytes_total" + label); got != sent {
			t.Errorf("%v sent bytes family = %d, report says %d", role, got, sent)
		}
		if got := get("audit_probe_delivered_bytes_total" + label); got != delivered {
			t.Errorf("%v delivered bytes family = %d, report says %d", role, got, delivered)
		}
		if got := get("audit_probe_delivered_packets_total" + label); got == 0 {
			t.Errorf("%v delivered packets family = 0", role)
		}
		if sent == 0 || delivered == 0 {
			t.Errorf("%v degenerate ledger: sent=%d delivered=%d", role, sent, delivered)
		}
	}
}

// TestVerdictMetrics pins the aggregate verdict tallies.
func TestVerdictMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	vm := NewVerdictMetrics(reg)
	vm.Count(Verdict{Discriminated: true})
	vm.Count(Verdict{})
	vm.Count(Verdict{})
	snap := reg.Snapshot()
	if m := snap.Get(`audit_verdicts_total{verdict="discriminated"}`); m == nil || m.Value != 1 {
		t.Errorf("discriminated tally = %+v, want 1", m)
	}
	if m := snap.Get(`audit_verdicts_total{verdict="clean"}`); m == nil || m.Value != 2 {
		t.Errorf("clean tally = %+v, want 2", m)
	}
}
