package audit

import (
	"bytes"
	"math/rand"
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// synthReport builds a report whose suspect goodput is drawn around
// sMean and control around cMean.
func synthReport(trials int, sMean, cMean float64, rng *rand.Rand) *Report {
	r := &Report{Strategy: StrategyInterleaved, Trials: make([]Trial, trials)}
	means := [NumRoles]float64{RoleSuspect: sMean, RoleControl: cMean}
	for i := range r.Trials {
		t := &r.Trials[i]
		for role := Role(0); role < NumRoles; role++ {
			mean := means[role]
			sent := uint64(40_000 + rng.Intn(5_000))
			g := mean + 0.02*(rng.Float64()-0.5)
			if g < 0 {
				g = 0
			}
			if g > 1 {
				g = 1
			}
			t.Sent[role] = sent
			t.Delivered[role] = uint64(g * float64(sent))
			t.DelayPkts[role] = 50
			t.DelaySum[role] = int64(50 * 4 * time.Millisecond)
		}
	}
	return r
}

func TestDecideBlatantThrottle(t *testing.T) {
	r := synthReport(12, 0.1, 0.99, rand.New(rand.NewSource(2)))
	v := Decide(r, DecisionConfig{})
	if !v.Discriminated || !v.GoodputHit {
		t.Fatalf("90%%-drop differential not detected: %+v", v)
	}
	if v.GoodputMW.P > 0.001 {
		t.Errorf("MW p = %v, want decisive", v.GoodputMW.P)
	}
	if v.Gap < 0.8 {
		t.Errorf("gap = %.2f, want ~0.9", v.Gap)
	}
}

func TestDecideNeutralPath(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		r := synthReport(12, 0.99, 0.99, rand.New(rand.NewSource(seed)))
		if v := Decide(r, DecisionConfig{}); v.Discriminated {
			t.Fatalf("seed %d: false positive on identical distributions: %+v", seed, v)
		}
	}
}

func TestDecideDutyCycledThrottle(t *testing.T) {
	// Half the trials degraded, half clean: bimodal suspect vs steady
	// control — the shape KS exists for.
	rng := rand.New(rand.NewSource(3))
	r := synthReport(12, 0.99, 0.99, rng)
	for i := 0; i < len(r.Trials); i += 2 {
		r.Trials[i].Delivered[RoleSuspect] = uint64(0.1 * float64(r.Trials[i].Sent[RoleSuspect]))
	}
	v := Decide(r, DecisionConfig{})
	if !v.Discriminated {
		t.Fatalf("duty-cycled differential not detected: MW p=%v KS p=%v gap=%.2f",
			v.GoodputMW.P, v.GoodputKS.P, v.Gap)
	}
}

func TestDecideDelayOnlyThrottle(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	r := synthReport(12, 0.99, 0.99, rng)
	for i := range r.Trials {
		r.Trials[i].DelaySum[RoleSuspect] = int64(50 * 40 * time.Millisecond) // 10x control
	}
	v := Decide(r, DecisionConfig{})
	if !v.Discriminated || !v.DelayHit || v.GoodputHit {
		t.Fatalf("delay-only differential: %+v", v)
	}
}

func TestDecideThinReportNeverConvicts(t *testing.T) {
	r := synthReport(3, 0.0, 1.0, rand.New(rand.NewSource(5)))
	if v := Decide(r, DecisionConfig{}); v.Discriminated {
		t.Fatal("3-trial report convicted; MinTrials must gate")
	}
}

func TestSummarizeLocalization(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mk := func(inside, throttled bool) *Report {
		s := 0.99
		if throttled {
			s = 0.1
		}
		r := synthReport(12, s, 0.99, rng)
		r.Inside = inside
		return r
	}
	// Transit-side throttler: all outside vantages see it, inside none.
	var reports []*Report
	for i := 0; i < 8; i++ {
		reports = append(reports, mk(false, true))
	}
	for i := 0; i < 4; i++ {
		reports = append(reports, mk(true, false))
	}
	s := Summarize(reports, DecisionConfig{}, 0)
	if !s.Discriminating || s.Power < 0.99 || s.Localized != SegmentBeyondBorder {
		t.Fatalf("transit throttler: %+v", s)
	}
	// Inside throttler: both classes see it.
	reports = reports[:0]
	for i := 0; i < 8; i++ {
		reports = append(reports, mk(false, true))
	}
	for i := 0; i < 4; i++ {
		reports = append(reports, mk(true, true))
	}
	if s := Summarize(reports, DecisionConfig{}, 0); s.Localized != SegmentInside {
		t.Fatalf("inside throttler localized %v", s.Localized)
	}
	// Neutral.
	reports = reports[:0]
	for i := 0; i < 8; i++ {
		reports = append(reports, mk(false, false))
	}
	s = Summarize(reports, DecisionConfig{}, 0)
	if s.Discriminating || s.Localized != SegmentNone || s.Power != 0 {
		t.Fatalf("neutral: %+v", s)
	}
	// Partial throttler: 3 of 8 outside vantages targeted — diluted
	// power must still convict through aggregation.
	reports = reports[:0]
	for i := 0; i < 8; i++ {
		reports = append(reports, mk(false, i < 3))
	}
	s = Summarize(reports, DecisionConfig{}, 0)
	if !s.Discriminating {
		t.Fatalf("partial throttler (power %.2f) not convicted by aggregate", s.Power)
	}
}

func TestReportWireRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, trials := range []int{0, 1, 12, 64} {
		r := synthReport(trials, 0.5, 0.9, rng)
		r.Vantage = uint16(trials * 7)
		r.Inside = trials%2 == 0
		r.Strategy = StrategyNaive
		wireB, err := AppendReport(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeReport(wireB)
		if err != nil {
			t.Fatalf("trials=%d: %v", trials, err)
		}
		if got.Vantage != r.Vantage || got.Inside != r.Inside || got.Strategy != r.Strategy || len(got.Trials) != trials {
			t.Fatalf("header mismatch: %+v vs %+v", got, r)
		}
		for i := range got.Trials {
			if got.Trials[i] != r.Trials[i] {
				t.Fatalf("trial %d mismatch", i)
			}
		}
		// Canonical: re-encode must be byte-identical.
		again, err := AppendReport(nil, got)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(wireB, again) {
			t.Fatal("re-encode not canonical")
		}
	}
}

func TestDecodeReportRejects(t *testing.T) {
	good, err := AppendReport(nil, synthReport(2, 0.5, 0.9, rand.New(rand.NewSource(8))))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":          {},
		"short header":   good[:5],
		"bad magic":      append([]byte{0x00}, good[1:]...),
		"bad version":    append([]byte{reportMagic, 99}, good[2:]...),
		"reserved flags": {reportMagic, reportVersion, 0, 0, 0xF0, 0, 0},
		"truncated body": good[:len(good)-1],
		"trailing junk":  append(append([]byte{}, good...), 0xEE),
		"huge count":     {reportMagic, reportVersion, 0, 0, 0, 0xFF, 0xFF},
	}
	for name, b := range cases {
		if _, err := DecodeReport(b); err == nil {
			t.Errorf("%s: decode accepted", name)
		}
	}
}

func TestProbePayloadRoundTrip(t *testing.T) {
	b := make([]byte, 160)
	PutProbePayload(b, RoleControl, 37, 123456789)
	role, trial, nanos, ok := ParseProbePayload(b)
	if !ok || role != RoleControl || trial != 37 || nanos != 123456789 {
		t.Fatalf("round trip: %v %v %v %v", role, trial, nanos, ok)
	}
	if _, _, _, ok := ParseProbePayload(b[:ProbeHeaderLen-1]); ok {
		t.Error("short payload accepted")
	}
	b[0] = 99
	if _, _, _, ok := ParseProbePayload(b); ok {
		t.Error("unknown role accepted")
	}
}

// proberWorld runs one prober over a 3-node line with a transit hook,
// plain UDP, and returns the report.
func proberWorld(t *testing.T, strategy Strategy, hook netem.TransitHook) *Report {
	t.Helper()
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 9)
	src := sim.MustAddNode("src", "out", netip.MustParseAddr("172.16.0.2"))
	r := sim.MustAddNode("r", "transit")
	dst := sim.MustAddNode("dst", "cust", netip.MustParseAddr("10.9.0.1"))
	sim.Connect(src, r, netem.LinkConfig{Delay: time.Millisecond, QueueLen: 1024})
	sim.Connect(r, dst, netem.LinkConfig{Delay: time.Millisecond, QueueLen: 1024})
	sim.BuildRoutes()
	if hook != nil {
		r.AddTransitHook(hook)
	}

	var p *Prober
	emit := func(role Role, trial int, size int) {
		payload := make([]byte, size)
		PutProbePayload(payload, role, trial, sim.NowNanos())
		buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
		buf.PushPayload(payload)
		if err := wire.SerializeLayers(buf,
			&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src.Addr(), Dst: dst.Addr()},
			&wire.UDP{SrcPort: 9000, DstPort: 9001},
		); err != nil {
			t.Fatal(err)
		}
		_ = src.Send(buf.Bytes())
	}
	var err error
	p, err = NewProber(ProberConfig{
		On:       sim,
		Rng:      rand.New(rand.NewSource(10)),
		Strategy: strategy,
		Trials:   12,
		Suspect:  trafficgen.AppVoIP,
		Emit:     emit,
	})
	if err != nil {
		t.Fatal(err)
	}
	dst.SetHandler(func(now time.Time, pkt []byte) {
		var ip wire.IPv4
		if ip.DecodeFromBytes(pkt) != nil {
			return
		}
		if len(ip.Payload()) <= wire.UDPHeaderLen {
			return
		}
		p.HandleProbe(now, ip.Payload()[wire.UDPHeaderLen:])
	})
	p.Run()
	sim.Run()
	return p.Report(0, false)
}

func TestProberNeutralPathMeasuresClean(t *testing.T) {
	for _, strat := range []Strategy{StrategyInterleaved, StrategyNaive} {
		r := proberWorld(t, strat, nil)
		sg := r.GoodputSamples(RoleSuspect)
		cg := r.GoodputSamples(RoleControl)
		if len(sg) != 12 || len(cg) != 12 {
			t.Fatalf("%v: %d/%d goodput samples, want 12 each", strat, len(sg), len(cg))
		}
		for i := range sg {
			if sg[i] < 0.99 || cg[i] < 0.99 {
				t.Fatalf("%v trial %d: lossless path measured %.2f/%.2f", strat, i, sg[i], cg[i])
			}
		}
		if v := Decide(r, DecisionConfig{}); v.Discriminated {
			t.Fatalf("%v: false positive on a neutral line: %+v", strat, v)
		}
		ds := r.DelaySamples(RoleSuspect)
		if len(ds) != 12 {
			t.Fatalf("%v: %d delay samples", strat, len(ds))
		}
		for _, d := range ds {
			if d < 0.0019 || d > 0.0021 {
				t.Fatalf("%v: one-way delay %.4fs, want ~2ms", strat, d)
			}
		}
	}
}

func TestProberDetectsSuspectDropper(t *testing.T) {
	drop := rand.New(rand.NewSource(11))
	hook := func(now time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
		const payloadOff = wire.IPv4HeaderLen + wire.UDPHeaderLen
		if len(pkt) > payloadOff && Role(pkt[payloadOff]) == RoleSuspect && drop.Float64() < 0.9 {
			return netem.Verdict{Drop: true}
		}
		return netem.Deliver
	}
	for _, strat := range []Strategy{StrategyInterleaved, StrategyNaive} {
		r := proberWorld(t, strat, hook)
		v := Decide(r, DecisionConfig{})
		if !v.Discriminated || !v.GoodputHit {
			t.Fatalf("%v: 90%% suspect drop not detected: gap=%.2f MW p=%v", strat, v.Gap, v.GoodputMW.P)
		}
	}
}

func TestProberNaiveFreshFlowsPerTrial(t *testing.T) {
	sim := netem.NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 9)
	type fk struct {
		role  Role
		trial int
	}
	counts := map[fk]int{}
	p, err := NewProber(ProberConfig{
		On:       sim,
		Rng:      rand.New(rand.NewSource(12)),
		Strategy: StrategyNaive,
		Trials:   5,
		Emit:     func(role Role, trial int, size int) { counts[fk{role, trial}]++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Run()
	sim.Run()
	for trial := 0; trial < 5; trial++ {
		for role := Role(0); role < NumRoles; role++ {
			if got := counts[fk{role, trial}]; got != 64 {
				t.Errorf("trial %d role %v: %d emissions, want 64", trial, role, got)
			}
		}
	}
}
