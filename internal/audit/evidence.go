package audit

import (
	"sort"
	"time"

	"netneutral/internal/obs"
)

// Evidence: the causal backing for an audit conviction. The statistical
// verdict says *that* suspect traffic fared worse; the evidence trail
// says *why* — which traced hops dropped or delayed it, under which
// policy cause, and how much attributed policing delay they injected.
// Built from the flight recorder's merged trace events, the trail is as
// deterministic as the events beneath it: bit-identical at any worker
// count.

// HopEvidence aggregates one (node, cause, class) policing site's
// contribution to the measured differential.
type HopEvidence struct {
	// Node is the netem node id where the policing was observed.
	Node int32 `json:"node"`
	// Cause is the policy cause (netem.PolicyCause numbering; render
	// with obs.CauseName).
	Cause uint8 `json:"cause"`
	// Class is the adversary's traffic class, when the cause carries one.
	Class uint8 `json:"class,omitempty"`
	// Drops counts traced policy drops at this site.
	Drops uint64 `json:"drops,omitempty"`
	// Delayed counts traced events carrying policy-attributed delay.
	Delayed uint64 `json:"delayed,omitempty"`
	// PolicyDelay sums the attributed policy delay across those events.
	PolicyDelay time.Duration `json:"policy_delay_ns,omitempty"`
}

// MeanDelay is the mean attributed policy delay per delayed packet.
func (h *HopEvidence) MeanDelay() time.Duration {
	if h.Delayed == 0 {
		return 0
	}
	return h.PolicyDelay / time.Duration(h.Delayed)
}

// EvidenceTrail is the deterministic set of policing sites, ordered by
// (node, cause, class).
type EvidenceTrail []HopEvidence

// TotalDrops sums traced policy drops across the trail.
func (t EvidenceTrail) TotalDrops() uint64 {
	var n uint64
	for i := range t {
		n += t[i].Drops
	}
	return n
}

// MaxMeanDelay is the largest per-site mean policy delay — the single
// policing site that best explains a measured delay gap.
func (t EvidenceTrail) MaxMeanDelay() time.Duration {
	var max time.Duration
	for i := range t {
		if d := t[i].MeanDelay(); d > max {
			max = d
		}
	}
	return max
}

// BuildEvidence folds merged trace events into an evidence trail. Only
// events with a policy fingerprint contribute: policy drops (by kind)
// and events carrying attributed policy delay. keep, when non-nil,
// restricts the trail to flows it accepts (e.g. the audit's probe
// flows), so background traffic policed by the same adversary does not
// pollute the conviction's backing.
func BuildEvidence(events []obs.TraceRec, keep func(flow uint64) bool) EvidenceTrail {
	type site struct {
		node  int32
		cause uint8
		class uint8
	}
	agg := make(map[site]*HopEvidence)
	for i := range events {
		e := &events[i]
		drop := e.Kind == obs.KindDropPolicy
		if !drop && e.PolicyNanos == 0 {
			continue
		}
		if keep != nil && !keep(e.Flow) {
			continue
		}
		k := site{node: e.Node, cause: e.Cause, class: e.Class}
		h := agg[k]
		if h == nil {
			h = &HopEvidence{Node: e.Node, Cause: e.Cause, Class: e.Class}
			agg[k] = h
		}
		if drop {
			h.Drops++
		}
		if e.PolicyNanos > 0 {
			h.Delayed++
			h.PolicyDelay += time.Duration(e.PolicyNanos)
		}
	}
	trail := make(EvidenceTrail, 0, len(agg))
	for _, h := range agg {
		trail = append(trail, *h)
	}
	sort.Slice(trail, func(i, j int) bool {
		if trail[i].Node != trail[j].Node {
			return trail[i].Node < trail[j].Node
		}
		if trail[i].Cause != trail[j].Cause {
			return trail[i].Cause < trail[j].Cause
		}
		return trail[i].Class < trail[j].Class
	})
	return trail
}
