// Package e2e is the end-to-end encryption black box of the design.
//
// The paper uses end-to-end encryption (e.g. IPsec) to hide packet
// contents and application types, and to return key grants from a
// destination to a source under strong protection ("e.g. 1024-bit RSA
// encryption"). This package provides a functional stand-in: RSA-1024
// (crypto/rsa) session establishment and AES-CTR + CBC-MAC sealed
// payloads. The neutralizer never sees inside these boxes; neither does a
// discriminatory ISP.
package e2e

import (
	"crypto/rand"
	"crypto/rsa"
	"crypto/subtle"
	"errors"
	"fmt"
	"io"
	"math/big"

	"netneutral/internal/crypto/aesutil"
)

// DefaultBits matches the paper's "strong" key size.
const DefaultBits = 1024

// seedLen is the session seed length carried in an offer.
const seedLen = 32

// boxOverhead is the framing added by Seal: nonce(8) + MAC(16).
const boxOverhead = 8 + aesutil.KeySize

// Errors returned by this package.
var (
	ErrBadOffer  = errors.New("e2e: malformed or undecryptable session offer")
	ErrBadBox    = errors.New("e2e: sealed box failed authentication")
	ErrShortBox  = errors.New("e2e: sealed box too short")
	ErrBadPubKey = errors.New("e2e: malformed public key encoding")
)

// Identity is a long-term end-host identity (the public key published in
// DNS per §3.1).
type Identity struct {
	key *rsa.PrivateKey
}

// NewIdentity generates an identity with the given modulus size
// (DefaultBits if <= 0).
func NewIdentity(rng io.Reader, bits int) (*Identity, error) {
	if bits <= 0 {
		bits = DefaultBits
	}
	if rng == nil {
		rng = rand.Reader
	}
	key, err := rsa.GenerateKey(rng, bits)
	if err != nil {
		return nil, fmt.Errorf("e2e: generating identity: %w", err)
	}
	return &Identity{key: key}, nil
}

// Public returns the identity's public half.
func (id *Identity) Public() PublicKey { return PublicKey{key: &id.key.PublicKey} }

// PublicKey is a peer's published key.
type PublicKey struct {
	key *rsa.PublicKey
}

// Equal reports whether two public keys are the same key.
func (p PublicKey) Equal(o PublicKey) bool {
	if p.key == nil || o.key == nil {
		return p.key == o.key
	}
	return p.key.N.Cmp(o.key.N) == 0 && p.key.E == o.key.E
}

// Valid reports whether the key is usable.
func (p PublicKey) Valid() bool { return p.key != nil }

// Marshal encodes the public key: 2-byte modulus length, modulus bytes,
// 4-byte exponent.
func (p PublicKey) Marshal() []byte {
	nb := p.key.N.Bytes()
	out := make([]byte, 2+len(nb)+4)
	out[0], out[1] = byte(len(nb)>>8), byte(len(nb))
	copy(out[2:], nb)
	e := p.key.E
	out[2+len(nb)] = byte(e >> 24)
	out[3+len(nb)] = byte(e >> 16)
	out[4+len(nb)] = byte(e >> 8)
	out[5+len(nb)] = byte(e)
	return out
}

// UnmarshalPublicKey reverses Marshal.
func UnmarshalPublicKey(data []byte) (PublicKey, error) {
	if len(data) < 2 {
		return PublicKey{}, ErrBadPubKey
	}
	n := int(data[0])<<8 | int(data[1])
	if n == 0 || len(data) < 2+n+4 {
		return PublicKey{}, ErrBadPubKey
	}
	N := new(big.Int).SetBytes(data[2 : 2+n])
	e := int(data[2+n])<<24 | int(data[3+n])<<16 | int(data[4+n])<<8 | int(data[5+n])
	if e < 3 {
		return PublicKey{}, ErrBadPubKey
	}
	return PublicKey{key: &rsa.PublicKey{N: N, E: e}}, nil
}

// Session is an established bidirectional encrypted channel. Sessions are
// symmetric: either side may Seal or Open.
type Session struct {
	enc aesutil.Key
	mac aesutil.Key
	rng io.Reader
}

// Initiate creates a session keyed by a fresh seed and the offer bytes
// that convey the seed to the responder under its public key.
func Initiate(rng io.Reader, peer PublicKey) (*Session, []byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	seed := make([]byte, seedLen)
	if _, err := io.ReadFull(rng, seed); err != nil {
		return nil, nil, fmt.Errorf("e2e: reading seed: %w", err)
	}
	offer, err := rsa.EncryptPKCS1v15(rng, peer.key, seed)
	if err != nil {
		return nil, nil, fmt.Errorf("e2e: encrypting offer: %w", err)
	}
	return sessionFromSeed(seed, rng), offer, nil
}

// Accept recovers the session from an offer addressed to id.
func Accept(id *Identity, offer []byte) (*Session, error) {
	seed, err := rsa.DecryptPKCS1v15(nil, id.key, offer)
	if err != nil || len(seed) != seedLen {
		return nil, ErrBadOffer
	}
	return sessionFromSeed(seed, rand.Reader), nil
}

// SessionFromSeed derives a session deterministically from a shared seed
// (at least 16 bytes). Both ends of the §3.3 reverse-direction bootstrap
// call this with the seed conveyed inside the key offer.
func SessionFromSeed(seed []byte, rng io.Reader) (*Session, error) {
	if len(seed) < aesutil.KeySize {
		return nil, ErrBadOffer
	}
	if rng == nil {
		rng = rand.Reader
	}
	return sessionFromSeed(seed, rng), nil
}

// EncryptSmall encrypts a short message directly under a peer's public
// key (PKCS#1 v1.5). Used for the reverse-direction first packet, where
// the customer conveys (nonce, Ks, epoch, session seed) to a destination
// that has no session yet.
func EncryptSmall(rng io.Reader, peer PublicKey, msg []byte) ([]byte, error) {
	if rng == nil {
		rng = rand.Reader
	}
	ct, err := rsa.EncryptPKCS1v15(rng, peer.key, msg)
	if err != nil {
		return nil, fmt.Errorf("e2e: %w", err)
	}
	return ct, nil
}

// DecryptSmall reverses EncryptSmall with the local identity.
func (id *Identity) DecryptSmall(ct []byte) ([]byte, error) {
	pt, err := rsa.DecryptPKCS1v15(nil, id.key, ct)
	if err != nil {
		return nil, ErrBadOffer
	}
	return pt, nil
}

func sessionFromSeed(seed []byte, rng io.Reader) *Session {
	var root aesutil.Key
	copy(root[:], seed[:aesutil.KeySize])
	return &Session{
		enc: aesutil.DeriveKey(root, []byte("e2e-enc"), seed),
		mac: aesutil.DeriveKey(root, []byte("e2e-mac"), seed),
		rng: rng,
	}
}

// SessionFromKeys builds a session directly from key material (tests and
// deterministic replay).
func SessionFromKeys(enc, mac aesutil.Key, rng io.Reader) *Session {
	if rng == nil {
		rng = rand.Reader
	}
	return &Session{enc: enc, mac: mac, rng: rng}
}

// Overhead is the number of bytes Seal adds to a plaintext.
const Overhead = boxOverhead

// Seal encrypts and authenticates plaintext:
//
//	box = nonce(8) ‖ AES-CTR(enc, nonce, plaintext) ‖ CBC-MAC(mac, nonce‖ct)
func (s *Session) Seal(plaintext []byte) ([]byte, error) {
	box := make([]byte, 8+len(plaintext)+aesutil.KeySize)
	if _, err := io.ReadFull(s.rng, box[:8]); err != nil {
		return nil, fmt.Errorf("e2e: reading nonce: %w", err)
	}
	ct := box[8 : 8+len(plaintext)]
	copy(ct, plaintext)
	var nonce [8]byte
	copy(nonce[:], box[:8])
	aesutil.CTRCrypt(s.enc, nonce, ct)
	tag := aesutil.CBCMAC(s.mac, box[:8+len(plaintext)])
	copy(box[8+len(plaintext):], tag[:])
	return box, nil
}

// Open verifies and decrypts a sealed box.
func (s *Session) Open(box []byte) ([]byte, error) {
	if len(box) < boxOverhead {
		return nil, ErrShortBox
	}
	body := box[:len(box)-aesutil.KeySize]
	tag := box[len(box)-aesutil.KeySize:]
	want := aesutil.CBCMAC(s.mac, body)
	if subtle.ConstantTimeCompare(tag, want[:]) != 1 {
		return nil, ErrBadBox
	}
	var nonce [8]byte
	copy(nonce[:], body[:8])
	pt := make([]byte, len(body)-8)
	copy(pt, body[8:])
	aesutil.CTRCrypt(s.enc, nonce, pt)
	return pt, nil
}
