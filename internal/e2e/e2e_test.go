package e2e

import (
	"bytes"
	"crypto/rand"
	"testing"
	"testing/quick"

	"netneutral/internal/crypto/aesutil"
)

var testID = mustIdentity()

func mustIdentity() *Identity {
	id, err := NewIdentity(rand.Reader, DefaultBits)
	if err != nil {
		panic(err)
	}
	return id
}

func TestInitiateAcceptRoundTrip(t *testing.T) {
	initiator, offer, err := Initiate(rand.Reader, testID.Public())
	if err != nil {
		t.Fatal(err)
	}
	responder, err := Accept(testID, offer)
	if err != nil {
		t.Fatal(err)
	}
	msg := []byte("grant: nonce' + Ks' + payload")
	box, err := initiator.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := responder.Open(box)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("roundtrip = %q", got)
	}
	// Symmetric: responder seals, initiator opens.
	box2, err := responder.Seal([]byte("reply"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := initiator.Open(box2); err != nil || string(pt) != "reply" {
		t.Errorf("reverse direction: %q %v", pt, err)
	}
}

func TestAcceptWrongIdentity(t *testing.T) {
	other := mustIdentity()
	_, offer, err := Initiate(rand.Reader, testID.Public())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Accept(other, offer); err != ErrBadOffer {
		t.Errorf("err = %v, want ErrBadOffer", err)
	}
}

func TestOpenTamperDetected(t *testing.T) {
	s, offer, err := Initiate(rand.Reader, testID.Public())
	if err != nil {
		t.Fatal(err)
	}
	r, err := Accept(testID, offer)
	if err != nil {
		t.Fatal(err)
	}
	box, err := s.Seal([]byte("important"))
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range []int{0, 9, len(box) - 1} {
		mut := bytes.Clone(box)
		mut[idx] ^= 0x40
		if _, err := r.Open(mut); err != ErrBadBox {
			t.Errorf("tamper at %d: err = %v, want ErrBadBox", idx, err)
		}
	}
	if _, err := r.Open(box[:10]); err != ErrShortBox {
		t.Errorf("short box: err = %v", err)
	}
}

func TestSealRandomizesNonce(t *testing.T) {
	s := SessionFromKeys(aesutil.Key{1}, aesutil.Key{2}, rand.Reader)
	b1, err := s.Seal([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := s.Seal([]byte("m"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(b1, b2) {
		t.Error("two seals of the same message must differ")
	}
}

func TestSealOverhead(t *testing.T) {
	s := SessionFromKeys(aesutil.Key{1}, aesutil.Key{2}, rand.Reader)
	msg := make([]byte, 100)
	box, err := s.Seal(msg)
	if err != nil {
		t.Fatal(err)
	}
	if len(box) != len(msg)+Overhead {
		t.Errorf("overhead = %d, want %d", len(box)-len(msg), Overhead)
	}
}

func TestSessionFromKeysSymmetry(t *testing.T) {
	a := SessionFromKeys(aesutil.Key{9}, aesutil.Key{8}, rand.Reader)
	b := SessionFromKeys(aesutil.Key{9}, aesutil.Key{8}, rand.Reader)
	box, err := a.Seal([]byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if pt, err := b.Open(box); err != nil || string(pt) != "x" {
		t.Errorf("shared-key sessions disagree: %q %v", pt, err)
	}
}

func TestPublicKeyMarshalRoundTrip(t *testing.T) {
	enc := testID.Public().Marshal()
	pk, err := UnmarshalPublicKey(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !pk.Equal(testID.Public()) {
		t.Error("public key mismatch after roundtrip")
	}
	if !pk.Valid() {
		t.Error("unmarshaled key reports invalid")
	}
}

func TestUnmarshalPublicKeyErrors(t *testing.T) {
	cases := [][]byte{nil, {1}, {0, 0}, {0, 4, 1, 2, 3, 4}, {0, 1, 5, 0, 0, 0, 1}}
	for i, c := range cases {
		if _, err := UnmarshalPublicKey(c); err == nil {
			t.Errorf("case %d: want error", i)
		}
	}
}

func TestSealOpenProperty(t *testing.T) {
	s := SessionFromKeys(aesutil.Key{3}, aesutil.Key{4}, rand.Reader)
	f := func(msg []byte) bool {
		box, err := s.Seal(msg)
		if err != nil {
			return false
		}
		pt, err := s.Open(box)
		return err == nil && bytes.Equal(pt, msg)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestOpenEmptyPlaintext(t *testing.T) {
	s := SessionFromKeys(aesutil.Key{5}, aesutil.Key{6}, rand.Reader)
	box, err := s.Seal(nil)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := s.Open(box)
	if err != nil || len(pt) != 0 {
		t.Errorf("empty plaintext roundtrip: %v %v", pt, err)
	}
}

func BenchmarkSeal1K(b *testing.B) {
	s := SessionFromKeys(aesutil.Key{1}, aesutil.Key{2}, rand.Reader)
	msg := make([]byte, 1024)
	b.SetBytes(1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := s.Seal(msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAccept(b *testing.B) {
	_, offer, err := Initiate(rand.Reader, testID.Public())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Accept(testID, offer); err != nil {
			b.Fatal(err)
		}
	}
}
