// Package onion is the comparison baseline of the paper's §5: classic
// anonymous routing in the style of Tor, with telescoped circuit setup,
// layered encryption, and — the properties the neutralizer is designed to
// avoid — per-flow state at every relay and public-key operations
// proportional to the number of flows.
//
// The implementation is deliberately compact (three fixed hops, direct
// method calls instead of a network) because the A3 experiment measures
// resource consumption — relay state size and public-key operation counts
// — not network behaviour.
package onion

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"sync"

	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/e2e"
)

// DefaultHops is the circuit length (entry, middle, exit).
const DefaultHops = 3

// Errors returned by this package.
var (
	ErrNoSuchCircuit = errors.New("onion: unknown circuit id")
	ErrBadCell       = errors.New("onion: malformed cell")
	ErrTooFewRelays  = errors.New("onion: need at least one relay")
)

// Relay is an onion router. Every live circuit through it occupies an
// entry in its table — the per-flow state the neutralizer does not have.
type Relay struct {
	id  *e2e.Identity
	rng io.Reader

	mu       sync.Mutex
	circuits map[uint32]*circuitState
	nextID   uint32

	// PKOps counts private-key operations (circuit creations), the
	// expensive work §5 contrasts with the neutralizer's cheap e=3
	// encryptions.
	PKOps uint64
	// Cells counts relayed data cells.
	Cells uint64
}

type circuitState struct {
	key aesutil.Key
	// next is the downstream relay (nil at the exit).
	next       *Relay
	nextCircID uint32
}

// NewRelay creates a relay with a fresh identity key.
func NewRelay(rng io.Reader) (*Relay, error) {
	if rng == nil {
		rng = rand.Reader
	}
	id, err := e2e.NewIdentity(rng, 0)
	if err != nil {
		return nil, err
	}
	return &Relay{id: id, rng: rng, circuits: make(map[uint32]*circuitState)}, nil
}

// Public returns the relay's public key (what a directory would list).
func (r *Relay) Public() e2e.PublicKey { return r.id.Public() }

// StateSize reports live circuit-table entries.
func (r *Relay) StateSize() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.circuits)
}

// create installs a new circuit hop keyed by the symmetric key inside
// ct (encrypted under the relay's public key). One private-key op.
func (r *Relay) create(ct []byte) (uint32, error) {
	pt, err := r.id.DecryptSmall(ct)
	if err != nil || len(pt) != aesutil.KeySize {
		return 0, ErrBadCell
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.PKOps++
	r.nextID++
	id := r.nextID
	var k aesutil.Key
	copy(k[:], pt)
	r.circuits[id] = &circuitState{key: k}
	return id, nil
}

// extend links an existing circuit to the next relay, performing the
// create at that relay on the client's behalf (telescoping). It returns
// the downstream circuit id so the builder can extend further.
func (r *Relay) extend(circID uint32, next *Relay, ct []byte) (uint32, error) {
	r.mu.Lock()
	st, ok := r.circuits[circID]
	r.mu.Unlock()
	if !ok {
		return 0, ErrNoSuchCircuit
	}
	nextID, err := next.create(ct)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	st.next = next
	st.nextCircID = nextID
	r.mu.Unlock()
	return nextID, nil
}

// relayCell strips one onion layer and forwards; at the exit it returns
// the fully peeled payload and destination.
func (r *Relay) relayCell(circID uint32, cell []byte) (dst netip.Addr, payload []byte, err error) {
	r.mu.Lock()
	st, ok := r.circuits[circID]
	r.mu.Unlock()
	if !ok {
		return netip.Addr{}, nil, ErrNoSuchCircuit
	}
	r.mu.Lock()
	r.Cells++
	r.mu.Unlock()
	// Strip this hop's layer: AES-CTR keyed by the hop key, nonce from
	// the cell head.
	if len(cell) < 8 {
		return netip.Addr{}, nil, ErrBadCell
	}
	var nonce [8]byte
	copy(nonce[:], cell[:8])
	inner := make([]byte, len(cell)-8)
	copy(inner, cell[8:])
	aesutil.CTRCrypt(st.key, nonce, inner)
	if st.next != nil {
		return st.next.relayCell(st.nextCircID, inner)
	}
	// Exit: inner = dst(4) ‖ payload.
	if len(inner) < 4 {
		return netip.Addr{}, nil, ErrBadCell
	}
	return netip.AddrFrom4([4]byte(inner[:4])), inner[4:], nil
}

// teardown removes the circuit state along the path.
func (r *Relay) teardown(circID uint32) {
	r.mu.Lock()
	st, ok := r.circuits[circID]
	delete(r.circuits, circID)
	r.mu.Unlock()
	if ok && st.next != nil {
		st.next.teardown(st.nextCircID)
	}
}

// Circuit is a client's handle on an established path.
type Circuit struct {
	entry   *Relay
	entryID uint32
	keys    []aesutil.Key // hop keys, entry first
	rng     io.Reader
	closed  bool
}

// BuildCircuit telescopes a circuit through the given relays. Each hop
// costs the client one public-key encryption and the relay one
// private-key decryption — per circuit, i.e. per flow.
func BuildCircuit(rng io.Reader, relays ...*Relay) (*Circuit, error) {
	if len(relays) == 0 {
		return nil, ErrTooFewRelays
	}
	if rng == nil {
		rng = rand.Reader
	}
	keys := make([]aesutil.Key, len(relays))
	for i := range keys {
		if _, err := io.ReadFull(rng, keys[i][:]); err != nil {
			return nil, err
		}
	}
	ct0, err := e2e.EncryptSmall(rng, relays[0].Public(), keys[0][:])
	if err != nil {
		return nil, err
	}
	entryID, err := relays[0].create(ct0)
	if err != nil {
		return nil, err
	}
	c := &Circuit{entry: relays[0], entryID: entryID, keys: keys, rng: rng}
	end, endID := relays[0], entryID
	for i := 1; i < len(relays); i++ {
		ct, err := e2e.EncryptSmall(rng, relays[i].Public(), keys[i][:])
		if err != nil {
			return nil, err
		}
		nextID, err := end.extend(endID, relays[i], ct)
		if err != nil {
			return nil, err
		}
		end, endID = relays[i], nextID
	}
	return c, nil
}

// Send onion-encrypts payload for dst and pushes it through the circuit,
// returning what the exit relay would emit. Layers are applied innermost
// (exit) first so each relay strips exactly one.
func (c *Circuit) Send(dst netip.Addr, payload []byte) (netip.Addr, []byte, error) {
	if c.closed {
		return netip.Addr{}, nil, ErrNoSuchCircuit
	}
	if !dst.Is4() {
		return netip.Addr{}, nil, fmt.Errorf("onion: destination %v is not IPv4", dst)
	}
	d4 := dst.As4()
	cell := make([]byte, 0, 4+len(payload))
	cell = append(cell, d4[:]...)
	cell = append(cell, payload...)
	// Wrap layers from the exit inward; each layer gets its own nonce.
	for i := len(c.keys) - 1; i >= 0; i-- {
		var nonce [8]byte
		if _, err := io.ReadFull(c.rng, nonce[:]); err != nil {
			return netip.Addr{}, nil, err
		}
		// Encrypt current cell under hop i.
		body := make([]byte, len(cell))
		copy(body, cell)
		aesutil.CTRCrypt(c.keys[i], nonce, body)
		wrapped := make([]byte, 0, 8+len(body))
		wrapped = append(wrapped, nonce[:]...)
		wrapped = append(wrapped, body...)
		cell = wrapped
	}
	// The entry strips the first layer.
	return c.entry.relayCell(c.entryID, cell)
}

// Close tears down the circuit state at every relay.
func (c *Circuit) Close() {
	if !c.closed {
		c.entry.teardown(c.entryID)
		c.closed = true
	}
}

// Hops returns the circuit length.
func (c *Circuit) Hops() int { return len(c.keys) }
