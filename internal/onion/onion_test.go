package onion

import (
	"bytes"
	"crypto/rand"
	"net/netip"
	"testing"

	"netneutral/internal/crypto/aesutil"
)

func ctrCryptForTest(k aesutil.Key, nonce [8]byte, data []byte) {
	aesutil.CTRCrypt(k, nonce, data)
}

var dst = netip.MustParseAddr("10.10.0.5")

func mustRelays(t testing.TB, n int) []*Relay {
	t.Helper()
	out := make([]*Relay, n)
	for i := range out {
		r, err := NewRelay(rand.Reader)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = r
	}
	return out
}

func TestCircuitEndToEnd(t *testing.T) {
	relays := mustRelays(t, DefaultHops)
	circ, err := BuildCircuit(rand.Reader, relays...)
	if err != nil {
		t.Fatal(err)
	}
	if circ.Hops() != 3 {
		t.Errorf("hops = %d", circ.Hops())
	}
	payload := []byte("onion payload")
	gotDst, gotPayload, err := circ.Send(dst, payload)
	if err != nil {
		t.Fatal(err)
	}
	if gotDst != dst {
		t.Errorf("exit dst = %v", gotDst)
	}
	if !bytes.Equal(gotPayload, payload) {
		t.Errorf("exit payload = %q", gotPayload)
	}
}

func TestPerCircuitStateAndPKOps(t *testing.T) {
	relays := mustRelays(t, 3)
	const flows = 10
	circs := make([]*Circuit, flows)
	for i := range circs {
		c, err := BuildCircuit(rand.Reader, relays...)
		if err != nil {
			t.Fatal(err)
		}
		circs[i] = c
	}
	// THE §5 contrast: every relay holds one state entry per flow and has
	// paid one private-key op per flow.
	for i, r := range relays {
		if got := r.StateSize(); got != flows {
			t.Errorf("relay %d state = %d, want %d (per-flow state)", i, got, flows)
		}
		if got := r.PKOps; got != flows {
			t.Errorf("relay %d PK ops = %d, want %d", i, got, flows)
		}
	}
	// Teardown releases state everywhere.
	for _, c := range circs {
		c.Close()
	}
	for i, r := range relays {
		if r.StateSize() != 0 {
			t.Errorf("relay %d state after teardown = %d", i, r.StateSize())
		}
	}
}

func TestLayeredEncryptionHidesPayloadFromEntry(t *testing.T) {
	relays := mustRelays(t, 3)
	circ, err := BuildCircuit(rand.Reader, relays...)
	if err != nil {
		t.Fatal(err)
	}
	// Capture what the middle relay sees by intercepting its input: the
	// cell after the entry strips one layer must not contain the
	// plaintext (two layers remain).
	payload := []byte("THE-PLAINTEXT-SECRET")
	d4 := dst.As4()

	// Verify the outermost cell (what the wire to the entry carries)
	// hides both payload and destination.
	outer := buildOuterCell(t, circ, dst, payload)
	if bytes.Contains(outer, payload) {
		t.Error("outermost cell leaks payload")
	}
	if bytes.Contains(outer, d4[:]) {
		t.Error("outermost cell leaks destination")
	}
	// Sanity: the circuit still delivers.
	gd, gp, err := circ.Send(dst, payload)
	if err != nil || gd != dst || !bytes.Equal(gp, payload) {
		t.Errorf("delivery failed: %v %q %v", gd, gp, err)
	}
}

// buildOuterCell replicates Send's wrapping to expose the on-wire bytes.
func buildOuterCell(t *testing.T, c *Circuit, dst netip.Addr, payload []byte) []byte {
	t.Helper()
	d4 := dst.As4()
	cell := append(append([]byte{}, d4[:]...), payload...)
	for i := len(c.keys) - 1; i >= 0; i-- {
		var nonce [8]byte
		nonce[0] = byte(i + 1)
		body := make([]byte, len(cell))
		copy(body, cell)
		// use the same primitive Send uses
		ctrCryptForTest(c.keys[i], nonce, body)
		cell = append(append([]byte{}, nonce[:]...), body...)
	}
	return cell
}

func TestSendErrors(t *testing.T) {
	relays := mustRelays(t, 2)
	circ, err := BuildCircuit(rand.Reader, relays...)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := circ.Send(netip.MustParseAddr("::1"), nil); err == nil {
		t.Error("IPv6 destination accepted")
	}
	circ.Close()
	if _, _, err := circ.Send(dst, []byte("x")); err != ErrNoSuchCircuit {
		t.Errorf("closed circuit: %v", err)
	}
	circ.Close() // double close is a no-op
}

func TestBuildCircuitErrors(t *testing.T) {
	if _, err := BuildCircuit(rand.Reader); err != ErrTooFewRelays {
		t.Errorf("err = %v", err)
	}
}

func TestRelayCellErrors(t *testing.T) {
	r := mustRelays(t, 1)[0]
	if _, _, err := r.relayCell(999, make([]byte, 20)); err != ErrNoSuchCircuit {
		t.Errorf("unknown circuit: %v", err)
	}
	if _, err := r.create([]byte("garbage")); err != ErrBadCell {
		t.Errorf("garbage create: %v", err)
	}
}

func TestCellsCounter(t *testing.T) {
	relays := mustRelays(t, 3)
	circ, err := BuildCircuit(rand.Reader, relays...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := circ.Send(dst, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	for i, r := range relays {
		if r.Cells != 5 {
			t.Errorf("relay %d cells = %d", i, r.Cells)
		}
	}
}
