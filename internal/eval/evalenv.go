// Shared fan-out experiment environment. E6 (metro), E7 (arms race),
// E8 (audit) and E9 (parallel scaling) all run on the same substrate —
// a seeded simulator, a BuildFanout topology, the master-key schedule,
// and per-flow shim credentials the stateless border re-derives — and
// each used to stamp that boilerplate out by hand. fanoutEnv derives it
// once, identically, so the seeded identity plan cannot drift between
// experiments.
package eval

import (
	"net/netip"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
)

// fanoutEnv is the shared substrate of the fan-out experiments.
type fanoutEnv struct {
	Sim   *netem.Simulator
	Fan   *netem.Fanout
	Sched *keys.Schedule
	Epoch keys.Epoch
}

// newFanoutEnv builds a seeded simulator with the given fan-out and the
// experiments' canonical master-key schedule (key {7}, hourly epochs,
// anchored at the benchmark start time).
func newFanoutEnv(seed int64, spec netem.FanoutSpec) (*fanoutEnv, error) {
	sim := netem.NewSimulator(benchStart, seed)
	f, err := netem.BuildFanout(sim, spec)
	if err != nil {
		return nil, err
	}
	sched := keys.NewSchedule(aesutil.Key{7}, benchStart, time.Hour)
	return &fanoutEnv{Sim: sim, Fan: f, Sched: sched, Epoch: sched.EpochAt(sim.Now())}, nil
}

// attachNeutralizer wires the stateless core at the border on the
// zero-alloc scratch path, clocked by the border's shard so sharded
// runs read exact event time.
func (e *fanoutEnv) attachNeutralizer() error {
	neut, err := core.New(core.Config{
		Schedule:   e.Sched,
		Anycast:    e.Fan.Spec.Anycast,
		IsCustomer: e.Fan.CustomerNet.Contains,
		Clock:      e.Fan.Border.Now,
	})
	if err != nil {
		return err
	}
	AttachNeutralizerScratch(e.Fan.Border, neut)
	return nil
}

// shimCred derives one flow's shim data header: the session key comes
// from (epoch, nonce, src) — exactly what the stateless border will
// re-derive — and dst is sealed into the hidden address block.
func (e *fanoutEnv) shimCred(src, dst netip.Addr, nonce keys.Nonce, tweak [8]byte, innerProto uint8) (shim.Header, error) {
	ks, err := e.Sched.SessionKey(e.Epoch, nonce, src)
	if err != nil {
		return shim.Header{}, err
	}
	blk, err := aesutil.EncryptAddr(ks, dst, tweak)
	if err != nil {
		return shim.Header{}, err
	}
	return shim.Header{
		Type: shim.TypeData, InnerProto: innerProto,
		Epoch: e.Epoch, Nonce: nonce, HiddenAddr: blk,
	}, nil
}
