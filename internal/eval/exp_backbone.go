// E13: the continental-scale backbone experiment. E6 proved the paper's
// Figure-1 shape at metro scale; E13 stitches many such metros — each
// with its own address blocks, its own anycast neutralizer at its own
// border — through a transit core with wide-area delays
// (netem.BuildBackbone), and runs three traffic planes at once:
//
//   - neutralized shim flows that cross the backbone: metro m's outside
//     user sends to metro (m+1)'s anycast address, so the core and every
//     transit router on the path see only (outside source, anycast
//     destination) — the paper's indistinguishability claim at
//     continental scale;
//   - plain cross-metro probe flows between customer hosts, keeping
//     packet fidelity on the measured paths;
//   - fluid background aggregates on every border↔edge link, consuming
//     link capacity without per-packet events (the hybrid abstraction
//     that makes million-host scenarios affordable).
//
// A classifier at the core targets a customer address that only
// neutralized traffic reaches; it must never fire. And the engine's
// central contract is enforced across dozens of shards: every
// deterministic outcome — including the fluid layer's byte accounting
// and the full observation digest — is bit-identical at every worker
// count.
//
// (E11 and E12 are reserved on the ROADMAP for the adaptive arms race
// and the economic layer; this experiment registers as E13.)
package eval

import (
	"fmt"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// BackboneConfig parameterizes the continental run; the zero value gets
// the registered E13 defaults.
type BackboneConfig struct {
	// Metros is the metro count (default 6).
	Metros int
	// HostsPerMetro is the customer-host count per metro (default 1000).
	HostsPerMetro int
	// Seed drives every RNG.
	Seed int64
	// Duration is the simulated traffic time (default 400ms).
	Duration time.Duration
	// RatePps is each metro's neutralized cross-backbone load (default
	// 2000 packets per simulated second, per metro).
	RatePps float64
	// CrossFlows is the number of plain cross-metro host pairs per metro
	// (default 32; must stay below HostsPerMetro-1 so the classifier
	// target stays neutralized-only).
	CrossFlows int
	// CrossPps is each metro's aggregate plain cross-metro load
	// (default 1000).
	CrossPps float64
	// FluidBpsPerEdge is the background aggregate per border↔edge link
	// direction (default 20 Mbps on 100 Mbps edge links).
	FluidBpsPerEdge float64
	// Workers executes the sharded engine (default 1).
	Workers int
	// Observe attaches the observability plane and fills Stats.Obs.
	Observe bool
}

func (c *BackboneConfig) fill() {
	if c.Metros <= 0 {
		c.Metros = 6
	}
	if c.HostsPerMetro <= 0 {
		c.HostsPerMetro = 1000
	}
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.RatePps <= 0 {
		c.RatePps = 2000
	}
	if c.CrossFlows <= 0 {
		c.CrossFlows = 32
	}
	if c.CrossPps <= 0 {
		c.CrossPps = 1000
	}
	if c.FluidBpsPerEdge == 0 {
		c.FluidBpsPerEdge = 20e6
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// BackboneStats is the outcome of one continental run.
type BackboneStats struct {
	Metros  int
	Hosts   int // total customer hosts
	Shards  int
	Workers int

	NeutSent       int // neutralized cross-backbone packets
	CrossSent      int // plain cross-metro probe packets
	Delivered      uint64
	Forwarded      uint64
	Dropped        uint64
	ClassifierHits uint64
	SimEvents      uint64
	FluidBytes     uint64
	FluidTicks     uint64
	PoolGets       uint64

	BuildTime    time.Duration
	RunTime      time.Duration
	EventsPerSec float64
	Obs          *ObsDigest
}

// backboneIdentityKey is the deterministic outcome a backbone run must
// reproduce exactly at every worker count — the E9 contract extended
// with the fluid layer's accounting and the observation digest.
func backboneIdentityKey(st *BackboneStats) [14]uint64 {
	k := [14]uint64{
		uint64(st.NeutSent), uint64(st.CrossSent), st.Delivered, st.Forwarded,
		st.Dropped, st.ClassifierHits, st.SimEvents, st.FluidBytes,
		st.FluidTicks, st.PoolGets,
	}
	ok := st.Obs.key()
	copy(k[10:], ok[:])
	return k
}

// backboneWorld is the built substrate shared by RunBackbone and the
// BenchmarkBackboneEvents fixture.
type backboneWorld struct {
	sim *netem.Simulator
	bb  *netem.Backbone
	// neutSends[m] cycles metro m's outside user through its templates
	// (neutralized, addressed to metro (m+1)'s anycast).
	neutSends []func(seq uint64)
	// crossNodes/crossSends are the plain cross-metro probe senders,
	// anchored at their source hosts.
	crossNodes []*netem.Node
	crossSends []func(seq uint64)
}

// backboneLinks is the link plan of the experiment: 100 Mbps edge links
// (so fluid load is a meaningful fraction of capacity) and queue room
// for open-loop bursts; everything keeps a positive delay, which the
// sharded engine requires on shard-crossing links.
func backboneLinks(spec *netem.BackboneSpec) {
	spec.HostLink = netem.LinkConfig{Delay: time.Millisecond}
	spec.EdgeLink = netem.LinkConfig{Delay: time.Millisecond, RateBps: 100e6, QueueLen: 512}
	spec.TransitLink = netem.LinkConfig{Delay: time.Millisecond, QueueLen: 512}
	spec.OutsideLink = netem.LinkConfig{Delay: time.Millisecond}
}

func buildBackboneWorld(cfg BackboneConfig) (*backboneWorld, error) {
	if cfg.CrossFlows >= cfg.HostsPerMetro-1 {
		return nil, fmt.Errorf("eval: %d cross flows need at least %d hosts per metro",
			cfg.CrossFlows, cfg.CrossFlows+2)
	}
	sim := netem.NewSimulator(benchStart, cfg.Seed)
	spec := netem.BackboneSpec{
		Metros:          cfg.Metros,
		HostsPerMetro:   cfg.HostsPerMetro,
		FluidBpsPerEdge: cfg.FluidBpsPerEdge,
		FluidInterval:   20 * time.Millisecond,
	}
	backboneLinks(&spec)
	bb, err := netem.BuildBackbone(sim, spec)
	if err != nil {
		return nil, err
	}
	sim.SetWorkers(cfg.Workers)

	// One master-key schedule serves every metro's neutralizer — the
	// paper's single supportive operator running a continental anycast
	// service.
	sched := keys.NewSchedule(aesutil.Key{7}, benchStart, time.Hour)
	epoch := sched.EpochAt(sim.Now())
	for _, f := range bb.Metros {
		neut, err := core.New(core.Config{
			Schedule:   sched,
			Anycast:    f.Spec.Anycast,
			IsCustomer: f.CustomerNet.Contains,
			Clock:      f.Border.Now,
		})
		if err != nil {
			return nil, err
		}
		AttachNeutralizerScratch(f.Border, neut)
	}

	w := &backboneWorld{sim: sim, bb: bb}
	payload := make([]byte, 64)
	nTemplates := min(cfg.HostsPerMetro, 64)
	stride := cfg.HostsPerMetro/nTemplates | 1
	for m, f := range bb.Metros {
		// Metro m's outside user sends neutralized flows across the
		// backbone to metro (m+1)'s anycast; the hidden destinations
		// stride across that metro's edges.
		dstMetro := bb.Metros[(m+1)%cfg.Metros]
		src := f.OutsideAddr(0)
		nonce := keys.Nonce{0xE1, 3, byte(m)}
		templates := make([][]byte, nTemplates)
		for k := range templates {
			dst := dstMetro.HostAddr(k * stride % cfg.HostsPerMetro)
			ks, err := sched.SessionKey(epoch, nonce, src)
			if err != nil {
				return nil, err
			}
			blk, err := aesutil.EncryptAddr(ks, dst, [8]byte{byte(m), byte(k), byte(k >> 8)})
			if err != nil {
				return nil, err
			}
			sh := shim.Header{
				Type: shim.TypeData, InnerProto: wire.ProtoUDP,
				Epoch: epoch, Nonce: nonce, HiddenAddr: blk,
			}
			templates[k], err = buildShim(src, dstMetro.Spec.Anycast, &sh, payload)
			if err != nil {
				return nil, err
			}
		}
		w.neutSends = append(w.neutSends, trafficgen.CyclingSender(f.Outside[0], templates))

		// Plain cross-metro probes: host i of metro m talks to host i of
		// metro (m+1) — real packets on the paths an auditor would measure.
		for i := 0; i < cfg.CrossFlows; i++ {
			host := f.Hosts[i]
			tmpl := buildProbeUDP(f.HostAddr(i), dstMetro.HostAddr(i), 9000, nil)
			w.crossNodes = append(w.crossNodes, host)
			w.crossSends = append(w.crossSends, trafficgen.CyclingSender(host, [][]byte{tmpl}))
		}
	}
	return w, nil
}

// RunBackbone builds the continental world and drives all three traffic
// planes for cfg.Duration of virtual time.
func RunBackbone(cfg BackboneConfig) (*BackboneStats, error) {
	cfg.fill()
	buildStart := time.Now()
	w, err := buildBackboneWorld(cfg)
	if err != nil {
		return nil, err
	}
	sim, bb := w.sim, w.bb
	var o *observation
	if cfg.Observe {
		o = attachObservation(sim)
	}

	// The core tries to target a customer by address. Only neutralized
	// traffic reaches the classifier's target (the cross-metro probes use
	// the low host indexes), so it must never fire.
	policy := isp.NewPolicy(sim.Rand(), isp.Rule{
		Name:   "target-customer",
		Match:  isp.MatchDstAddr(bb.HostAddr(1, cfg.HostsPerMetro-1)),
		Action: isp.Action{DropProb: 1},
	})
	bb.Core.AddTransitHook(policy.Hook())

	st := &BackboneStats{
		Metros: cfg.Metros, Hosts: cfg.Metros * cfg.HostsPerMetro,
		Shards: sim.ShardCount(), Workers: cfg.Workers,
		BuildTime: time.Since(buildStart),
	}
	var tallies []*netem.DeliveryCount
	for _, f := range bb.Metros {
		tallies = append(tallies, f.CountDeliveries())
	}
	if err := bb.StartFluid(cfg.Duration); err != nil {
		return nil, err
	}
	for m, f := range bb.Metros {
		st.NeutSent += trafficgen.OpenLoop{RatePps: cfg.RatePps}.Run(
			f.Outside[0], cfg.Duration, w.neutSends[m])
	}
	perFlow := cfg.CrossPps / float64(cfg.CrossFlows)
	for i, host := range w.crossNodes {
		st.CrossSent += trafficgen.OpenLoop{RatePps: perFlow}.Run(host, cfg.Duration, w.crossSends[i])
	}

	runStart := time.Now()
	sim.Run()
	st.RunTime = time.Since(runStart)

	for _, d := range tallies {
		st.Delivered += d.Total()
	}
	st.Forwarded = sim.Forwarded()
	st.Dropped = sim.Dropped()
	st.ClassifierHits = policy.Hits("target-customer")
	st.SimEvents = sim.EventsProcessed()
	st.FluidBytes, st.FluidTicks = sim.FluidTotals()
	_, st.PoolGets = sim.PoolStats()
	if o != nil {
		d := o.digest()
		st.Obs = &d
	}
	if sec := st.RunTime.Seconds(); sec > 0 {
		st.EventsPerSec = float64(st.SimEvents) / sec
	}
	want := uint64(st.NeutSent + st.CrossSent)
	if st.Delivered != want {
		return st, fmt.Errorf("eval: backbone delivered %d of %d packets (dropped %d)",
			st.Delivered, want, st.Dropped)
	}
	if st.ClassifierHits != 0 {
		return st, fmt.Errorf("eval: core classifier fired %d times on neutralized traffic",
			st.ClassifierHits)
	}
	if cfg.FluidBpsPerEdge > 0 && st.FluidBytes == 0 {
		return st, fmt.Errorf("eval: fluid layer accounted zero bytes")
	}
	return st, nil
}

// RunBackboneIdentity sweeps worker counts over the identical seeded
// backbone scenario and enforces bit-identical outcomes (the E6/E8/E9
// ObsDigest identity contract, extended to dozens of shards and the
// fluid layer).
func RunBackboneIdentity(cfg BackboneConfig, workers []int) ([]*BackboneStats, error) {
	var out []*BackboneStats
	var base *BackboneStats
	for _, wk := range workers {
		cfg.Workers = wk
		st, err := RunBackbone(cfg)
		if err != nil {
			return nil, fmt.Errorf("eval: backbone workers=%d: %w", wk, err)
		}
		if base == nil {
			base = st
		} else if backboneIdentityKey(st) != backboneIdentityKey(base) {
			return nil, fmt.Errorf(
				"eval: backbone determinism violated: workers=%d outcome %v != workers=%d outcome %v",
				wk, backboneIdentityKey(st), base.Workers, backboneIdentityKey(base))
		}
		out = append(out, st)
	}
	return out, nil
}

// RunE13 is the registered continental-scale experiment.
func RunE13() (*Result, error) {
	runs, err := RunBackboneIdentity(BackboneConfig{Seed: 13, Observe: true}, []int{1, 2, 4})
	if err != nil {
		return nil, err
	}
	st := runs[0]
	res := &Result{ID: "E13", Title: backboneTitle}
	res.Rows = append(res.Rows,
		Row{Metric: "topology", Paper: "-",
			Measured: fmt.Sprintf("%d metros, %d hosts, %d shards", st.Metros, st.Hosts, st.Shards),
			Note:     fmt.Sprintf("prefix-compressed FIBs, built in %v", st.BuildTime.Round(time.Millisecond))},
		Row{Metric: "cross-backbone packets delivered", Paper: "all",
			Measured: fmt.Sprintf("%d/%d", st.Delivered, st.NeutSent+st.CrossSent),
			Note:     fmt.Sprintf("%d neutralized + %d plain cross-metro", st.NeutSent, st.CrossSent)},
		Row{Metric: "classifier hits at the core", Paper: "0",
			Measured: fmt.Sprintf("%d", st.ClassifierHits),
			Note:     "address-targeting rule sees only (outside, anycast) pairs"},
		Row{Metric: "fluid background bytes", Paper: "-",
			Measured: fmt.Sprintf("%d", st.FluidBytes),
			Note: fmt.Sprintf("%d rate-update ticks instead of ~%dM packet events",
				st.FluidTicks, st.FluidBytes/1500/1_000_000)},
	)
	for _, r := range runs {
		res.Rows = append(res.Rows, Row{
			Metric:   fmt.Sprintf("events/sec at %d worker(s)", r.Workers),
			Paper:    "-",
			Measured: fmt.Sprintf("%.0f", r.EventsPerSec),
			Note:     fmt.Sprintf("%d events in %v wall", r.SimEvents, r.RunTime.Round(time.Millisecond)),
		})
	}
	res.Rows = append(res.Rows, Row{
		Metric: "determinism (observed)", Paper: "bit-identical",
		Measured: "verified",
		Note: fmt.Sprintf(
			"outcome + fluid accounting + recorder rings (%d ticks) + flight samples (%d) equal at workers 1/2/4",
			st.Obs.RecorderTicks, st.Obs.FlightSampled),
	})
	return res, nil
}

const backboneTitle = "Continental backbone: multi-metro anycast with fluid background load"

// BackboneBench is the fixture behind BenchmarkBackboneEvents: the
// continental world built once per worker count; each op schedules one
// chunk of all three traffic planes and advances the engine through it.
type BackboneBench struct {
	w   *backboneWorld
	cfg BackboneConfig
}

// NewBackboneBench builds the fixture.
func NewBackboneBench(metros, hostsPerMetro, workers int) (*BackboneBench, error) {
	cfg := BackboneConfig{Metros: metros, HostsPerMetro: hostsPerMetro, Seed: 1, Workers: workers}
	cfg.fill()
	w, err := buildBackboneWorld(cfg)
	if err != nil {
		return nil, err
	}
	return &BackboneBench{w: w, cfg: cfg}, nil
}

// RunChunk schedules one chunk of neutralized, cross-metro, and fluid
// load, advances the simulation through it, and returns the number of
// packets scheduled.
func (b *BackboneBench) RunChunk(d time.Duration) (int, error) {
	if err := b.w.bb.StartFluid(d); err != nil {
		return 0, err
	}
	sent := 0
	for m, f := range b.w.bb.Metros {
		sent += trafficgen.OpenLoop{RatePps: b.cfg.RatePps}.Run(f.Outside[0], d, b.w.neutSends[m])
	}
	perFlow := b.cfg.CrossPps / float64(b.cfg.CrossFlows)
	for i, host := range b.w.crossNodes {
		sent += trafficgen.OpenLoop{RatePps: perFlow}.Run(host, d, b.w.crossSends[i])
	}
	b.w.sim.RunFor(d)
	return sent, nil
}

// Events reports the engine's cumulative event count.
func (b *BackboneBench) Events() uint64 { return b.w.sim.EventsProcessed() }
