// E10: real protocol stacks over the simulator. Earlier experiments
// drive shaped lookalike traffic through the neutralizer; this one runs
// the genuine articles — the dnssim wire protocol spoken by a blocking
// resolver client, and unmodified net/http servers and clients — over
// simnet's virtual-time sockets, then points the E7-trained DPI
// classifier and an E8-style audit vantage at that authentic traffic.
// The point is closure: the paper's claims survive contact with real
// protocol state machines, not just traffic generators.
package eval

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	mathrand "math/rand"
	"net/http"
	"net/netip"
	"os"
	"strconv"
	"strings"
	"time"

	"netneutral/internal/audit"
	"netneutral/internal/dnssim"
	"netneutral/internal/dpi"
	"netneutral/internal/e2e"
	"netneutral/internal/endhost"
	"netneutral/internal/netem"
	"netneutral/internal/obs"
	"netneutral/internal/simnet"
	"netneutral/internal/wire"
)

// RealProtoConfig parameterizes E10; the zero value gets the registered
// experiment's defaults.
type RealProtoConfig struct {
	// Seed drives every RNG in the experiment.
	Seed int64
	// Clients is the number of outside HTTP clients (each paired with
	// one customer server) in the neutralized-HTTP phase (default 4).
	Clients int
	// Requests is the number of keep-alive HTTP requests per client
	// (default 3).
	Requests int
	// Trials is the number of audit measurement windows per role in the
	// audit phase (default 8).
	Trials int
}

func (c *RealProtoConfig) fill() {
	if c.Clients <= 0 {
		c.Clients = 4
	}
	if c.Requests <= 0 {
		c.Requests = 3
	}
	if c.Trials <= 0 {
		c.Trials = 8
	}
}

// realDNSResult is the DNS phase's measurement: a blocking ConnClient
// resolving over simnet UDP against the unmodified resolver.
type realDNSResult struct {
	PlainRTT, EncRTT time.Duration
	NXDomainOK       bool // plain lookup of a missing name fails correctly
	TimeoutOK        bool // read deadline fires on a dead port, in virtual time
	// Queries/Encrypted are resolver-side totals, proving the real
	// codec ran.
	Queries, Encrypted uint64
}

// realHTTPResult is the neutralized-HTTP phase's measurement.
type realHTTPResult struct {
	OK, Want int // completed requests
	MeanRTT  time.Duration
	Flows    int // per-client shim flows the transit DPI tap observed
	// Hist counts transit-classified flows per dpi class (index 0 is
	// ClassUnknown: observed but never classified).
	Hist [dpi.NumClasses + 1]int
}

// RealProtoStats is the full E10 outcome.
type RealProtoStats struct {
	Cfg  RealProtoConfig
	DNS  realDNSResult
	HTTP realHTTPResult
	// Neutral and Throttled are the audit vantage's verdicts over real
	// HTTP request latencies, without and with a transit throttler
	// targeting the suspect client.
	Neutral, Throttled audit.Verdict
	// NeutralTrace and ThrottledTrace summarize each audit cell's
	// span-level verification: every packet journey is traced end to
	// end (SampleEvery 1, no eviction), the attribution invariant is
	// enforced exactly, and rule-attributed policy delay is tallied.
	NeutralTrace, ThrottledTrace RealTraceCheck
}

// RealTraceCheck is the outcome of tracing one E10 audit cell wholesale.
type RealTraceCheck struct {
	// Journeys counts complete packet journeys that passed the
	// attribution-sum invariant (components == end-to-end, exactly).
	Journeys int
	// Throttled counts journeys carrying rule-attributed policy delay;
	// ThrottleDelay is that delay summed.
	Throttled     int
	ThrottleDelay time.Duration
}

// quietHTTPLog silences net/http's error logger: server-side noise would
// otherwise interleave nondeterministically with experiment output.
var quietHTTPLog = log.New(io.Discard, "", 0)

// runRealDNS resolves over the fan-out: the client on one outside node,
// the resolver on another, two 1ms hops apart through transit. Plain and
// encrypted lookups must complete with exact virtual RTTs; a lookup of a
// missing name must surface ErrNoSuchName; a query to a dead port must
// end in a virtual-time read deadline.
func runRealDNS(seed int64) (*realDNSResult, error) {
	env, err := newFanoutEnv(seed, netem.FanoutSpec{Hosts: 1, Outside: 2})
	if err != nil {
		return nil, err
	}
	f := env.Fan
	id, err := e2e.NewIdentity(detRand(seed+1), 0)
	if err != nil {
		return nil, err
	}
	resNode := f.Outside[1]
	r := dnssim.NewResolver(resNode, id)
	r.AddRecord(dnssim.Record{
		Name:         "www.example.com",
		Addr:         f.HostAddr(0),
		Neutralizers: []netip.Addr{f.Spec.Anycast},
		PublicKey:    id.Public(),
	})

	n := simnet.New(env.Sim)
	conn, err := n.ListenUDP(f.Outside[0], 0)
	if err != nil {
		return nil, err
	}
	cc := dnssim.NewConnClient(conn, netip.AddrPortFrom(resNode.Addr(), dnssim.Port),
		mathrand.New(mathrand.NewSource(seed+2)))

	res := &realDNSResult{}
	var goErr error
	n.Go(func() {
		goErr = func() error {
			t0 := n.Now()
			rec, err := cc.Lookup("www.example.com")
			if err != nil {
				return fmt.Errorf("plain lookup: %w", err)
			}
			if rec.Addr != f.HostAddr(0) || len(rec.Neutralizers) != 1 {
				return fmt.Errorf("plain lookup returned %+v", rec)
			}
			res.PlainRTT = n.Now().Sub(t0)

			if _, err := cc.Lookup("no.such.name"); errors.Is(err, dnssim.ErrNoSuchName) {
				res.NXDomainOK = true
			}

			t0 = n.Now()
			rec, err = cc.LookupEncrypted(r.Public(), "www.example.com")
			if err != nil {
				return fmt.Errorf("encrypted lookup: %w", err)
			}
			if rec.Addr != f.HostAddr(0) {
				return fmt.Errorf("encrypted lookup returned %+v", rec)
			}
			res.EncRTT = n.Now().Sub(t0)

			// A query to a port nobody serves: the resolver ignores it and
			// the virtual read deadline must end the wait.
			conn.SetReadDeadline(n.Now().Add(250 * time.Millisecond))
			dead := dnssim.NewConnClient(conn, netip.AddrPortFrom(resNode.Addr(), 5999), nil)
			if _, err := dead.Lookup("x"); errors.Is(err, os.ErrDeadlineExceeded) {
				res.TimeoutOK = true
			}
			return nil
		}()
	})
	if err := n.Run(); err != nil {
		return nil, fmt.Errorf("dns phase: %w", err)
	}
	if goErr != nil {
		return nil, fmt.Errorf("dns phase: %w", goErr)
	}
	res.Queries = r.Queries()
	res.Encrypted = r.EncryptedQueries()
	return res, nil
}

// runRealHTTP drives unmodified net/http across the metro through the
// neutralizer: each customer host runs an http.Server on a HostMux
// listener; each outside client bootstraps via an encrypted DNS lookup,
// performs the §3.2 key setup, and issues keep-alive GET requests over a
// stream carried in shim conduits. A passive DPI tap at transit — the
// same classifier E7 trains — observes every packet and classifies the
// per-client flows.
func runRealHTTP(cfg RealProtoConfig) (*realHTTPResult, error) {
	// Train the statistical adversary exactly as E7/E8 do.
	acfg := ArmsConfig{FlowsPerClass: 8, Seed: cfg.Seed + 42, Duration: 2 * time.Second}
	acfg.fill()
	samples, _, err := armsSamples(acfg, ModeEncrypted, 1)
	if err != nil {
		return nil, err
	}
	cls, err := dpi.Train(samples)
	if err != nil {
		return nil, err
	}

	link := netem.LinkConfig{Delay: time.Millisecond, QueueLen: 4096}
	env, err := newFanoutEnv(cfg.Seed+1, netem.FanoutSpec{
		Hosts: cfg.Clients, Outside: cfg.Clients + 1,
		HostLink: link, EdgeLink: link, TransitLink: link, OutsideLink: link,
	})
	if err != nil {
		return nil, err
	}
	if err := env.attachNeutralizer(); err != nil {
		return nil, err
	}
	f := env.Fan

	tab := dpi.NewFlowTable(dpi.Config{Classifier: cls, MinPackets: 8, ReclassifyEvery: 8})
	f.Transit.AddTransitHook(func(now time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
		if key, fwd, ok := netem.FlowKeyOf(pkt); ok {
			tab.Observe(key, fwd, len(pkt), now.UnixNano())
		}
		return netem.Deliver
	})

	n := simnet.New(env.Sim)

	// The resolver lives on the last outside node.
	rid, err := e2e.NewIdentity(detRand(cfg.Seed+2), 0)
	if err != nil {
		return nil, err
	}
	resNode := f.Outside[cfg.Clients]
	resolver := dnssim.NewResolver(resNode, rid)

	// Customer-side: an endhost per customer, an http.Server accepting
	// streams that arrive as conduit payloads.
	servers := make([]*http.Server, 0, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		id, err := e2e.NewIdentity(detRand(cfg.Seed+500+int64(i)), 0)
		if err != nil {
			return nil, err
		}
		host, err := endhost.NewHost(endhost.Config{
			Addr: f.HostAddr(i), Transport: HostTransport(f.Hosts[i]), Identity: id,
			Clock: env.Sim.Now, Rand: detRand(cfg.Seed + 600 + int64(i)),
		})
		if err != nil {
			return nil, err
		}
		mux := n.AttachHost(f.Hosts[i], host, nil)
		ln, err := mux.Listen()
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("customer-%d.example", i)
		resolver.AddRecord(dnssim.Record{
			Name: name, Addr: f.HostAddr(i),
			Neutralizers: []netip.Addr{f.Spec.Anycast},
			PublicKey:    host.Identity(),
		})
		page := strings.Repeat(fmt.Sprintf("%s content block. ", name), 120)
		srv := &http.Server{ErrorLog: quietHTTPLog, Handler: http.HandlerFunc(
			func(w http.ResponseWriter, r *http.Request) {
				fmt.Fprintf(w, "%s served %s\n%s", name, r.URL.Path, page)
			})}
		servers = append(servers, srv)
		go srv.Serve(ln)
	}

	// Outside-side: per-client endhost + blocking DNS client, then the
	// full bootstrap and keep-alive request loop in a sim goroutine.
	errs := make([]error, cfg.Clients)
	rtts := make([]time.Duration, cfg.Clients)
	oks := make([]int, cfg.Clients)
	for i := 0; i < cfg.Clients; i++ {
		i := i
		cid, err := e2e.NewIdentity(detRand(cfg.Seed+700+int64(i)), 0)
		if err != nil {
			return nil, err
		}
		chost, err := endhost.NewHost(endhost.Config{
			Addr: f.OutsideAddr(i), Transport: HostTransport(f.Outside[i]), Identity: cid,
			Clock: env.Sim.Now, Rand: detRand(cfg.Seed + 800 + int64(i)),
		})
		if err != nil {
			return nil, err
		}
		cmux := n.AttachHost(f.Outside[i], chost, nil)
		dnsConn, err := n.ListenUDP(f.Outside[i], 0)
		if err != nil {
			return nil, err
		}
		cc := dnssim.NewConnClient(dnsConn, netip.AddrPortFrom(resNode.Addr(), dnssim.Port),
			mathrand.New(mathrand.NewSource(cfg.Seed+900+int64(i))))
		n.Go(func() {
			errs[i] = func() error {
				// Stagger starts so bootstraps do not collide at one instant.
				n.Sleep(time.Duration(i) * 50 * time.Millisecond)
				rec, err := cc.LookupEncrypted(resolver.Public(), fmt.Sprintf("customer-%d.example", i))
				if err != nil {
					return fmt.Errorf("dns bootstrap: %w", err)
				}
				neut := rec.Neutralizers[0]
				var herr error
				n.Locked(func() { herr = chost.Setup(neut) })
				if herr != nil {
					return fmt.Errorf("setup: %w", herr)
				}
				if err := cmux.WaitConduit(neut, n.Now().Add(5*time.Second)); err != nil {
					return err
				}
				n.Locked(func() { herr = chost.Connect(neut, rec.Addr, rec.PublicKey) })
				if herr != nil {
					return fmt.Errorf("connect: %w", herr)
				}
				conn, err := cmux.Dial(rec.Addr)
				if err != nil {
					return err
				}
				defer conn.Close()
				br := bufio.NewReader(conn)
				for r := 0; r < cfg.Requests; r++ {
					req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/doc/%d", rec.Addr, r), nil)
					if err != nil {
						return err
					}
					t0 := n.Now()
					if err := req.Write(conn); err != nil {
						return fmt.Errorf("request %d: %w", r, err)
					}
					resp, err := http.ReadResponse(br, req)
					if err != nil {
						return fmt.Errorf("response %d: %w", r, err)
					}
					body, err := io.ReadAll(resp.Body)
					resp.Body.Close()
					if err != nil {
						return fmt.Errorf("body %d: %w", r, err)
					}
					want := []byte(fmt.Sprintf("served /doc/%d", r))
					if resp.StatusCode != http.StatusOK || !bytes.Contains(body, want) {
						return fmt.Errorf("request %d: status %d, body %q...", r, resp.StatusCode, body[:min(len(body), 40)])
					}
					rtts[i] += n.Now().Sub(t0)
					oks[i]++
				}
				return nil
			}()
		})
	}
	if err := n.Run(); err != nil {
		return nil, fmt.Errorf("http phase: %w", err)
	}
	for _, srv := range servers {
		srv.Close()
	}
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("http phase: client %d: %w", i, err)
		}
	}

	res := &realHTTPResult{Want: cfg.Clients * cfg.Requests}
	var total time.Duration
	for i := 0; i < cfg.Clients; i++ {
		res.OK += oks[i]
		total += rtts[i]
	}
	if res.OK > 0 {
		res.MeanRTT = total / time.Duration(res.OK)
	}
	// Harvest the transit tap: a neutralized client's flow is the
	// (outside addr, anycast) shim pair in both directions.
	for i := 0; i < cfg.Clients; i++ {
		key, err := netem.FlowKeyFrom(f.OutsideAddr(i), f.Spec.Anycast, wire.ProtoShim)
		if err != nil {
			return nil, err
		}
		if class, ok := tab.ClassOf(key); ok {
			res.Flows++
			res.Hist[class]++
		}
	}
	return res, nil
}

// runRealAuditCell measures one audit cell over genuine HTTP traffic: a
// plain (non-neutralized) stream path from two outside roles — suspect
// and control — to a customer http.Server, with per-trial request
// latencies standing in for probe delay samples. When
// throttle is set, transit adds a constant 20ms to every packet from or
// to the suspect client (constant, so FIFO ordering is preserved).
func runRealAuditCell(seed int64, trials int, throttle bool) (audit.Verdict, RealTraceCheck, error) {
	var tc RealTraceCheck
	// Rate-limited links make serialization delay depend on body size,
	// which varies per trial — the within-role variance the
	// Mann-Whitney test needs.
	link := netem.LinkConfig{Delay: time.Millisecond, RateBps: 50_000_000, QueueLen: 4096}
	env, err := newFanoutEnv(seed, netem.FanoutSpec{
		Hosts: 1, Outside: 2,
		HostLink: link, EdgeLink: link, TransitLink: link, OutsideLink: link,
	})
	if err != nil {
		return audit.Verdict{}, tc, err
	}
	f := env.Fan
	// Trace the cell wholesale: every emitted event recorded, ring big
	// enough that nothing is evicted, so every journey is complete and
	// the attribution invariant can be enforced with no tolerance.
	fr := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 1, RingSize: 1 << 16})
	env.Sim.AttachFlightRecorder(fr)
	suspect := f.OutsideAddr(int(audit.RoleSuspect))
	if throttle {
		f.Transit.AddTransitHook(func(_ time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
			src, dst, err := wire.IPv4Addrs(pkt)
			if err == nil && (src == suspect || dst == suspect) {
				return netem.Verdict{Delay: 20 * time.Millisecond, Cause: netem.CauseRule}
			}
			return netem.Deliver
		})
	}

	n := simnet.New(env.Sim)
	ln, err := n.ListenStream(f.Hosts[0], 80)
	if err != nil {
		return audit.Verdict{}, tc, err
	}
	srv := &http.Server{ErrorLog: quietHTTPLog, Handler: http.HandlerFunc(
		func(w http.ResponseWriter, r *http.Request) {
			sz, _ := strconv.Atoi(r.URL.Query().Get("n"))
			if sz <= 0 {
				sz = 1
			}
			w.Write(bytes.Repeat([]byte("x"), sz))
		})}
	go srv.Serve(ln)
	defer srv.Close()

	rep := audit.Report{Strategy: audit.StrategyInterleaved, Trials: make([]audit.Trial, trials)}
	target := netip.AddrPortFrom(f.HostAddr(0), 80)
	var roleErr [audit.NumRoles]error
	for role := 0; role < int(audit.NumRoles); role++ {
		role := role
		node := f.Outside[role]
		n.Go(func() {
			roleErr[role] = func() error {
				for t := 0; t < trials; t++ {
					// Interleave roles within each window; windows are far
					// enough apart that trials never overlap.
					at := benchStart.Add(time.Duration(t)*250*time.Millisecond +
						time.Duration(role)*125*time.Millisecond)
					if d := at.Sub(n.Now()); d > 0 {
						n.Sleep(d)
					}
					size := 2000 + 137*t
					conn, err := n.DialStream(node, target)
					if err != nil {
						return err
					}
					req, err := http.NewRequest("GET", fmt.Sprintf("http://%s/?n=%d", f.HostAddr(0), size), nil)
					if err != nil {
						conn.Close()
						return err
					}
					req.Close = true
					t0 := n.Now()
					got := 0
					if err := req.Write(conn); err == nil {
						if resp, err := http.ReadResponse(bufio.NewReader(conn), req); err == nil {
							if body, err := io.ReadAll(resp.Body); err == nil {
								got = len(body)
							}
							resp.Body.Close()
						}
					}
					lat := n.Now().Sub(t0)
					conn.Close()
					tr := &rep.Trials[t]
					tr.Sent[role] += uint64(size)
					tr.Delivered[role] += uint64(got)
					tr.DelaySum[role] += lat.Nanoseconds()
					tr.DelayPkts[role]++
				}
				return nil
			}()
		})
	}
	if err := n.Run(); err != nil {
		return audit.Verdict{}, tc, fmt.Errorf("audit cell: %w", err)
	}
	srv.Close()
	for role, err := range roleErr {
		if err != nil {
			return audit.Verdict{}, tc, fmt.Errorf("audit cell: role %d: %w", role, err)
		}
	}
	tc, err = verifyRealTrace(fr)
	if err != nil {
		return audit.Verdict{}, tc, fmt.Errorf("audit cell: %w", err)
	}
	return audit.Decide(&rep, audit.DecisionConfig{}), tc, nil
}

// verifyRealTrace enforces the span contract over a fully-traced cell:
// no ring eviction, attribution components summing exactly to
// end-to-end virtual delay on every complete journey, and every
// throttled complete journey's rule-attributed policy delay equal to
// the 20ms the hook injected (one transit crossing per journey).
// Journeys still in flight when the protocol goroutines finished (the
// sim stops with them, not when the event heap drains) are legitimately
// incomplete and skipped.
func verifyRealTrace(fr *obs.FlightRecorder) (RealTraceCheck, error) {
	var tc RealTraceCheck
	if ev := fr.Evicted(); ev != 0 {
		return tc, fmt.Errorf("flight ring evicted %d events; tracing was not lossless", ev)
	}
	for _, sp := range obs.AssembleSpans(fr.Events()) {
		for i := range sp.Journeys {
			j := &sp.Journeys[i]
			if !j.Complete() {
				continue
			}
			if sum, e2e := j.AttrSumNanos(), j.EndToEndNanos(); sum != e2e {
				return tc, fmt.Errorf("attribution invariant: flow %016x journey %d: components sum to %dns, end-to-end delay %dns",
					sp.Flow, j.ID, sum, e2e)
			}
			tc.Journeys++
			var pol int64
			for h := range j.Hops {
				if j.Hops[h].Cause == uint8(netem.CauseRule) && j.Hops[h].PolicyNanos > 0 {
					pol += j.Hops[h].PolicyNanos
				}
			}
			if pol > 0 {
				if pol != int64(20*time.Millisecond) {
					return tc, fmt.Errorf("throttled journey %d of flow %016x attributed %dns of policy delay, want exactly 20ms",
						j.ID, sp.Flow, pol)
				}
				tc.Throttled++
				tc.ThrottleDelay += time.Duration(pol)
			}
		}
	}
	if tc.Journeys == 0 {
		return tc, fmt.Errorf("no journeys traced")
	}
	return tc, nil
}

// RunRealProto runs all three E10 phases.
func RunRealProto(cfg RealProtoConfig) (*RealProtoStats, error) {
	cfg.fill()
	st := &RealProtoStats{Cfg: cfg}

	dns, err := runRealDNS(cfg.Seed)
	if err != nil {
		return nil, err
	}
	st.DNS = *dns

	httpRes, err := runRealHTTP(cfg)
	if err != nil {
		return nil, err
	}
	st.HTTP = *httpRes

	if st.Neutral, st.NeutralTrace, err = runRealAuditCell(cfg.Seed+3, cfg.Trials, false); err != nil {
		return nil, err
	}
	if st.Throttled, st.ThrottledTrace, err = runRealAuditCell(cfg.Seed+4, cfg.Trials, true); err != nil {
		return nil, err
	}
	return st, nil
}

// Enforce is E10's self-check: the run fails loudly when real
// protocols did not actually cross the sim the way the claims require.
func (st *RealProtoStats) Enforce() error {
	type check struct {
		ok  bool
		msg string
	}
	// DNS path: two 1ms hops each way, one datagram per direction.
	const dnsRTT = 4 * time.Millisecond
	checks := []check{
		{st.DNS.PlainRTT == dnsRTT,
			fmt.Sprintf("plain dns rtt = %v, want exactly %v (virtual time)", st.DNS.PlainRTT, dnsRTT)},
		{st.DNS.EncRTT == dnsRTT,
			fmt.Sprintf("encrypted dns rtt = %v, want exactly %v", st.DNS.EncRTT, dnsRTT)},
		{st.DNS.NXDomainOK, "nxdomain did not surface ErrNoSuchName over the conn client"},
		{st.DNS.TimeoutOK, "virtual read deadline did not fire on a dead resolver port"},
		{st.DNS.Queries == 3 && st.DNS.Encrypted == 1,
			fmt.Sprintf("resolver counters = %d/%d, want 3 queries, 1 encrypted", st.DNS.Queries, st.DNS.Encrypted)},
		{st.HTTP.OK == st.HTTP.Want,
			fmt.Sprintf("http requests completed = %d/%d", st.HTTP.OK, st.HTTP.Want)},
		{st.HTTP.Flows == st.Cfg.Clients,
			fmt.Sprintf("transit dpi tap observed %d/%d client flows", st.HTTP.Flows, st.Cfg.Clients)},
		{st.HTTP.Hist[dpi.ClassUnknown] == 0,
			fmt.Sprintf("%d flows never classified (too few packets reached transit?)", st.HTTP.Hist[dpi.ClassUnknown])},
		{!st.Neutral.Discriminated,
			fmt.Sprintf("neutral path ruled discriminatory (gap %.2f, delay gap %.2f)", st.Neutral.Gap, st.Neutral.DelayGap)},
		{st.Throttled.Discriminated && st.Throttled.DelayHit,
			fmt.Sprintf("20ms targeted throttle not detected (delay MW p=%.4f, delay gap %.2f)",
				st.Throttled.DelayMW.P, st.Throttled.DelayGap)},
		{st.NeutralTrace.Journeys > 0 && st.NeutralTrace.Throttled == 0,
			fmt.Sprintf("neutral cell trace: %d journeys, %d carrying policy delay (want >0, 0)",
				st.NeutralTrace.Journeys, st.NeutralTrace.Throttled)},
		{st.ThrottledTrace.Throttled > 0,
			fmt.Sprintf("throttled cell trace: no journey carries rule-attributed policy delay (%d journeys)",
				st.ThrottledTrace.Journeys)},
		{st.ThrottledTrace.ThrottleDelay == time.Duration(st.ThrottledTrace.Throttled)*20*time.Millisecond,
			fmt.Sprintf("throttled cell trace: attributed %v over %d throttled journeys, want exactly 20ms each",
				st.ThrottledTrace.ThrottleDelay, st.ThrottledTrace.Throttled)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("eval: realproto: %s", c.msg)
		}
	}
	return nil
}

// ClassHist renders the transit tap's class histogram deterministically.
func (r *realHTTPResult) ClassHist() string { return classHistString(&r.Hist) }

// classHistString renders the DPI class histogram deterministically.
func classHistString(hist *[dpi.NumClasses + 1]int) string {
	var b strings.Builder
	for c := 0; c < len(hist); c++ {
		if hist[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s:%d", dpi.Class(c), hist[c])
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}

var realProtoTitle = "Real protocol stacks over the sim (net/http + DNS vs DPI and audit)"

// RunE10 is the registered real-protocol experiment.
func RunE10() (*Result, error) {
	st, err := RunRealProto(RealProtoConfig{Seed: 10})
	if err != nil {
		return nil, err
	}
	if err := st.Enforce(); err != nil {
		return nil, err
	}
	return &Result{ID: "E10", Title: realProtoTitle, Rows: []Row{
		{Metric: "dns lookup rtt over simnet (plain / encrypted)", Paper: "-",
			Measured: fmt.Sprintf("%v / %v", st.DNS.PlainRTT, st.DNS.EncRTT),
			Note:     "blocking ConnClient, exact virtual latency"},
		{Metric: "dns nxdomain + virtual read deadline", Paper: "-",
			Measured: fmt.Sprintf("%v / %v", st.DNS.NXDomainOK, st.DNS.TimeoutOK),
			Note:     "error paths of the real codec"},
		{Metric: "net/http requests through the neutralizer", Paper: "apps work unchanged (§3)",
			Measured: fmt.Sprintf("%d/%d ok", st.HTTP.OK, st.HTTP.Want),
			Note:     fmt.Sprintf("mean rtt %v; keep-alive over shim conduits", st.HTTP.MeanRTT.Round(time.Microsecond))},
		{Metric: "E7-trained dpi on real neutralized http", Paper: "sees only anycast flows",
			Measured: classHistString(&st.HTTP.Hist),
			Note:     fmt.Sprintf("%d flows at the transit tap", st.HTTP.Flows)},
		{Metric: "audit verdict: clean path", Paper: "no false positive",
			Measured: fmt.Sprintf("discriminated=%v", st.Neutral.Discriminated),
			Note:     fmt.Sprintf("%d trials of real http latency", st.Neutral.Trials)},
		{Metric: "audit verdict: 20ms targeted throttle", Paper: "detected",
			Measured: fmt.Sprintf("discriminated=%v (delay gap %.1fx)", st.Throttled.Discriminated, st.Throttled.DelayGap),
			Note:     fmt.Sprintf("delay MW p=%.2g", st.Throttled.DelayMW.P)},
		{Metric: "trace attribution invariant", Paper: "-",
			Measured: fmt.Sprintf("%d journeys exact", st.NeutralTrace.Journeys+st.ThrottledTrace.Journeys),
			Note: fmt.Sprintf("%d throttled journeys each attributed exactly 20ms of rule-caused delay",
				st.ThrottledTrace.Throttled)},
	}}, nil
}
