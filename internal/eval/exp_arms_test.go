package eval

import (
	"testing"
	"time"

	"netneutral/internal/trafficgen"
)

// TestE7ArmsReduced runs the arms race at reduced scale so the default
// test run (and -race) stays fast; every rung of the ladder must hold
// at this scale too, since CI's smoke step runs it this size.
func TestE7ArmsReduced(t *testing.T) {
	st, err := RunArms(ArmsConfig{FlowsPerClass: 8, Seed: 7, Duration: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	voip := int(trafficgen.AppVoIP)

	pe := st.Cell(ModeEncrypted, AdvPortRule)
	if pe.PortHits != 0 {
		t.Errorf("port rule fired %d times on encrypted traffic", pe.PortHits)
	}
	de := st.Cell(ModeEncrypted, AdvDPI)
	if de.Accuracy < 0.9 {
		t.Errorf("dpi accuracy on encrypted = %.2f, want >= 0.90", de.Accuracy)
	}
	if de.Goodput[voip] >= 0.4 {
		t.Errorf("dpi left encrypted voip goodput at %.2f, want degraded", de.Goodput[voip])
	}
	dc := st.Cell(ModeCloaked, AdvDPI)
	if dc.Accuracy > 0.4 {
		t.Errorf("dpi accuracy under cloak = %.2f, want <= 0.40", dc.Accuracy)
	}
	if dc.Goodput[voip] <= 0.7 {
		t.Errorf("cloaked voip goodput = %.2f, want restored", dc.Goodput[voip])
	}
	if dc.CloakOverhead <= 1 || dc.CloakDelay <= 0 {
		t.Errorf("cloak cost not measured: overhead=%.2fx delay=%v", dc.CloakOverhead, dc.CloakDelay)
	}
}

// TestE7FullScale runs the registered experiment (which self-verifies
// every ladder rung via verifyArms).
func TestE7FullScale(t *testing.T) {
	if raceEnabled {
		t.Skip("full arms matrix is slow under race instrumentation")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runExp(t, "E7")
	if got := row(t, res, "dpi accuracy vs cloak").Measured; got != "25%" {
		t.Errorf("cloaked accuracy = %s, want 25%% (chance)", got)
	}
}

func TestDPIBenchFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	b, err := NewDPIBench()
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Samples) == 0 {
		t.Fatal("no held-out samples")
	}
	if b.Accuracy < 0.9 {
		t.Errorf("held-out accuracy = %.2f, want >= 0.90", b.Accuracy)
	}
	if b.CloakOverhead <= 1 {
		t.Errorf("cloak overhead = %.2f, want > 1", b.CloakOverhead)
	}
}
