// Package eval implements the reproduction harness: one registered
// experiment per table, figure, or headline number in the paper, each
// producing printable rows of paper-vs-measured values. The harness is
// shared by cmd/neutbench (which prints the rows) and the top-level
// benchmark suite (which re-measures the micro numbers under testing.B).
//
// See README.md ("Reproducing the paper's numbers") for the experiment
// index; BENCH_*.json snapshots record measured results per PR.
package eval

import (
	"crypto/rand"
	"fmt"
	"io"
	mathrand "math/rand"
	"net/netip"
	"strings"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/crypto/lightrsa"
	"netneutral/internal/endhost"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// Row is one reported metric.
type Row struct {
	Metric   string
	Paper    string // what the paper reports ("-" when the paper gives no number)
	Measured string
	Note     string
}

// Result is the outcome of one experiment.
type Result struct {
	ID    string
	Title string
	Rows  []Row
}

// String renders the result as an aligned table.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	w1, w2, w3 := len("metric"), len("paper"), len("measured")
	for _, row := range r.Rows {
		w1, w2, w3 = max(w1, len(row.Metric)), max(w2, len(row.Paper)), max(w3, len(row.Measured))
	}
	fmt.Fprintf(&b, "  %-*s  %-*s  %-*s  %s\n", w1, "metric", w2, "paper", w3, "measured", "note")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "  %-*s  %-*s  %-*s  %s\n", w1, row.Metric, w2, row.Paper, w3, row.Measured, row.Note)
	}
	return b.String()
}

// Experiment is a registered reproduction unit.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{"E1", "Key-setup throughput (§4: 24.4 kpps)", RunE1},
		{"E2", "Sources served per master-key epoch (§4: 88M/hour)", RunE2},
		{"E3", "Data path vs vanilla forwarding (§4: 422 vs 600 kpps)", RunE3},
		{"E4", "Raw crypto operation rate (§4: 2.35M ops/s)", RunE4},
		{"E5", "Sharded stateless data plane (anycast scaling in-process)", RunE5},
		{"E6", "Metro-scale emulation (10k customers, one neutralizer domain)", RunE6},
		{"E7", armsTitle, RunE7},
		{"E8", auditTitle, RunE8},
		{"E9", parScaleTitle, RunE9},
		{"E10", realProtoTitle, RunE10},
		{"E13", backboneTitle, RunE13},
		{"F1", "Figure 1: customer indistinguishability inside a discriminatory ISP", RunF1},
		{"F2", "Figure 2: protocol walk with eavesdropper assertions", RunF2},
		{"A1", "§3.2 ablation: chosen key setup vs certified-pubkey alternative", RunA1},
		{"A2", "§3.2 ablation: offloading RSA work to customers", RunA2},
		{"A3", "§5: neutralizer vs onion-routing baseline", RunA3},
		{"A4", "§1 motivation: targeted VoIP degradation and the neutralizer cure", RunA4},
		{"A5", "§3.6: key-setup flood and pushback", RunA5},
		{"A6", "§3.5: multi-homed neutralizer selection strategies", RunA6},
		{"A7", "§3.1: DNS bootstrap under query discrimination", RunA7},
		{"A8", "§3.4: tiered service and guaranteed service coexistence", RunA8},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if strings.EqualFold(e.ID, id) {
			return e, true
		}
	}
	return Experiment{}, false
}

// ---- shared benchmark environment --------------------------------------

// Paper constants for the fixed benchmark scenario.
var (
	benchStart   = time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC)
	benchAnycast = netip.MustParseAddr("10.200.0.1")
	benchSrc     = netip.MustParseAddr("172.16.1.10")
	benchDst     = netip.MustParseAddr("10.10.0.5")
	benchCustNet = netip.MustParsePrefix("10.10.0.0/16")
)

// BenchEnv packages a neutralizer and pre-built packets for the
// micro-experiments and the testing.B suite.
type BenchEnv struct {
	Neut      *core.Neutralizer
	Sched     *keys.Schedule
	ClientKey *lightrsa.PrivateKey
	AltKey    *lightrsa.PrivateKey
	cfg       core.Config

	// SetupPkt is a Figure 2(a) key-setup request.
	SetupPkt []byte
	// DataPkt is a 64-byte-payload forward data packet with a valid
	// session key (the paper's 112-byte experiment; 124 bytes in our
	// encoding).
	DataPkt []byte
	// ReturnPkt is a customer return packet.
	ReturnPkt []byte
	// AltPkt is an alternative-mode (§3.2) first packet.
	AltPkt []byte
	// VanillaPkt is a plain IPv4/UDP packet of the same payload size for
	// the forwarding baseline.
	VanillaPkt []byte

	Nonce keys.Nonce
	Ks    aesutil.Key
	Epoch keys.Epoch
}

// NewBenchEnv builds the environment. offload configures helper
// delegation; altMode installs the alternative-design identity.
func NewBenchEnv(offload bool, altMode bool) (*BenchEnv, error) {
	sched := keys.NewSchedule(aesutil.Key{7}, benchStart, time.Hour)
	cfg := core.Config{
		Schedule:   sched,
		Anycast:    benchAnycast,
		IsCustomer: func(a netip.Addr) bool { return benchCustNet.Contains(a) },
		Clock:      func() time.Time { return benchStart.Add(10 * time.Minute) },
	}
	env := &BenchEnv{Sched: sched}
	var err error
	env.ClientKey, err = lightrsa.GenerateKey(rand.Reader, lightrsa.DefaultBits)
	if err != nil {
		return nil, err
	}
	if offload {
		cfg.Offload = &core.OffloadPolicy{Helpers: []netip.Addr{benchDst}}
	}
	if altMode {
		env.AltKey, err = lightrsa.GenerateKey(rand.Reader, lightrsa.DefaultBits)
		if err != nil {
			return nil, err
		}
		cfg.AltIdentity = env.AltKey
	}
	env.Neut, err = core.New(cfg)
	if err != nil {
		return nil, err
	}
	env.cfg = cfg

	// Credentials as the stateless derivation would produce them.
	env.Epoch = sched.EpochAt(cfg.Clock())
	env.Nonce = keys.Nonce{1, 2, 3, 4, 5, 6, 7, 8}
	env.Ks, err = sched.SessionKey(env.Epoch, env.Nonce, benchSrc)
	if err != nil {
		return nil, err
	}

	env.SetupPkt, err = buildShim(benchSrc, benchAnycast, &shim.Header{
		Type: shim.TypeKeySetupRequest, PublicKey: env.ClientKey.PublicKey.Marshal(),
	}, nil)
	if err != nil {
		return nil, err
	}
	blk, err := aesutil.EncryptAddr(env.Ks, benchDst, [8]byte{9})
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 64)
	env.DataPkt, err = buildShim(benchSrc, benchAnycast, &shim.Header{
		Type: shim.TypeData, InnerProto: wire.ProtoUDP,
		Epoch: env.Epoch, Nonce: env.Nonce, HiddenAddr: blk,
	}, payload)
	if err != nil {
		return nil, err
	}
	env.ReturnPkt, err = buildShim(benchDst, benchAnycast, &shim.Header{
		Type: shim.TypeReturn, InnerProto: wire.ProtoUDP,
		Epoch: env.Epoch, Nonce: env.Nonce, ClearAddr: benchSrc,
	}, payload)
	if err != nil {
		return nil, err
	}
	if altMode {
		d4 := benchDst.As4()
		ct, err := env.AltKey.PublicKey.Encrypt(rand.Reader, append(d4[:], 1, 2, 3, 4, 5, 6, 7, 8))
		if err != nil {
			return nil, err
		}
		env.AltPkt, err = buildShim(benchSrc, benchAnycast, &shim.Header{
			Type: shim.TypeAltData, InnerProto: wire.ProtoUDP, Ciphertext: ct,
		}, payload)
		if err != nil {
			return nil, err
		}
	}
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: 255, Protocol: wire.ProtoUDP, Src: benchSrc, Dst: benchDst},
		&wire.UDP{SrcPort: 4000, DstPort: 5000},
	); err != nil {
		return nil, err
	}
	env.VanillaPkt = buf.Bytes()
	return env, nil
}

// NeutralizerConfig returns the configuration the bench neutralizer was
// built with, so callers can construct pools of interchangeable replicas
// against the same schedule.
func (e *BenchEnv) NeutralizerConfig() core.Config { return e.cfg }

// DataBatch builds n forward-path data packets drawn from nSources
// distinct outside sources (cycling), each carrying a hidden customer
// destination encrypted under the session key the stateless neutralizer
// will re-derive from the packet alone. It feeds the sharded-data-plane
// experiment (E5), BenchmarkProcessBatch, and the fuzz seed corpora.
func (e *BenchEnv) DataBatch(nSources, n int) ([][]byte, error) {
	if nSources <= 0 || nSources > 0xffff {
		return nil, fmt.Errorf("eval: bad source count %d", nSources)
	}
	payload := make([]byte, 64)
	pkts := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		s := i % nSources
		src := netip.AddrFrom4([4]byte{172, 16, byte(s >> 8), byte(s)})
		var nonce keys.Nonce
		nonce[0] = byte(s >> 8)
		nonce[1] = byte(s)
		nonce[7] = 1
		ks, err := e.Sched.SessionKey(e.Epoch, nonce, src)
		if err != nil {
			return nil, err
		}
		blk, err := aesutil.EncryptAddr(ks, benchDst, [8]byte{byte(i), byte(i >> 8)})
		if err != nil {
			return nil, err
		}
		pkt, err := buildShim(src, benchAnycast, &shim.Header{
			Type: shim.TypeData, InnerProto: wire.ProtoUDP,
			Epoch: e.Epoch, Nonce: nonce, HiddenAddr: blk,
		}, payload)
		if err != nil {
			return nil, err
		}
		pkts = append(pkts, pkt)
	}
	return pkts, nil
}

// FreshVanilla returns a copy of the vanilla packet (VanillaForward
// mutates TTL in place).
func (e *BenchEnv) FreshVanilla() []byte {
	out := make([]byte, len(e.VanillaPkt))
	copy(out, e.VanillaPkt)
	return out
}

func buildShim(src, dst netip.Addr, sh *shim.Header, payload []byte) ([]byte, error) {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+shim.HeaderLen+96, len(payload))
	buf.PushPayload(payload)
	if err := sh.SerializeTo(buf); err != nil {
		return nil, err
	}
	ip := &wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoShim, Src: src, Dst: dst}
	if err := ip.SerializeTo(buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// measureRate runs fn n times and returns operations/second.
func measureRate(n int, fn func(i int)) float64 {
	start := time.Now()
	for i := 0; i < n; i++ {
		fn(i)
	}
	el := time.Since(start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(n) / el
}

func kpps(rate float64) string { return fmt.Sprintf("%.1f kpps", rate/1e3) }

// ---- netem glue ---------------------------------------------------------

// AttachNeutralizer wires a core.Neutralizer into a netem node: shim
// packets delivered to the node are processed and the outputs sent back
// into the fabric.
func AttachNeutralizer(node *netem.Node, n *core.Neutralizer) {
	node.SetHandler(func(now time.Time, pkt []byte) {
		outs, err := n.Process(pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			_ = node.Send(o.Pkt)
		}
	})
}

// AttachHost wires an endhost.Host into a netem node.
func AttachHost(node *netem.Node, h *endhost.Host) {
	node.SetHandler(h.HandlePacket)
}

// HostTransport returns an endhost Transport that originates packets at
// the given node.
func HostTransport(node *netem.Node) endhost.Transport {
	return func(pkt []byte) error { return node.Send(pkt) }
}

// detRand returns a deterministic entropy source for reproducible
// simulation experiments.
func detRand(seed int64) io.Reader { return mathrand.New(mathrand.NewSource(seed)) }
