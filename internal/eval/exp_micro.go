package eval

import (
	"crypto/rand"
	"fmt"
	"net"
	"net/netip"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/onion"
)

// RunE1 measures key-setup response throughput: one RSA-512 (e=3)
// encryption plus nonce derivation per packet, exactly the per-packet
// work of the paper's 24.4 kpps experiment.
func RunE1() (*Result, error) {
	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	const n = 3000
	rate := measureRate(n, func(int) {
		if _, err := env.Neut.Process(env.SetupPkt); err != nil {
			panic(err)
		}
	})
	return &Result{ID: "E1", Title: "Key-setup throughput", Rows: []Row{
		{Metric: "key-setup responses", Paper: "24.4 kpps", Measured: kpps(rate),
			Note: "RSA-512 e=3 encrypt per packet; absolute value is hardware-dependent"},
	}}, nil
}

// RunE2 derives the paper's "88 million sources" figure: with an hourly
// master key, each outside source needs one key setup per hour, so
// capacity = setup rate × 3600.
func RunE2() (*Result, error) {
	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	const n = 2000
	rate := measureRate(n, func(int) {
		if _, err := env.Neut.Process(env.SetupPkt); err != nil {
			panic(err)
		}
	})
	perHour := rate * 3600
	return &Result{ID: "E2", Title: "Sources served per master-key epoch", Rows: []Row{
		{Metric: "epoch length", Paper: "1 hour", Measured: env.Sched.EpochLength().String(), Note: ""},
		{Metric: "sources per epoch", Paper: "88 M", Measured: fmt.Sprintf("%.1f M", perHour/1e6),
			Note: "setup rate × 3600 (paper's own derivation)"},
	}}, nil
}

// RunE3 measures the data path against vanilla forwarding, two ways:
// pure CPU cost (isolating the crypto overhead) and a loopback-UDP path
// where, as in the paper's testbed, per-packet I/O dominates and the
// ratio approaches the paper's 0.70.
func RunE3() (*Result, error) {
	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	// CPU-only rates.
	const nData = 30000
	dataRate := measureRate(nData, func(int) {
		if _, err := env.Neut.Process(env.DataPkt); err != nil {
			panic(err)
		}
	})
	vp := env.FreshVanilla()
	const nVan = 200000
	i := 0
	vanRate := measureRate(nVan, func(int) {
		if i++; i%200 == 0 {
			vp = env.FreshVanilla()
		}
		if err := core.VanillaForward(vp); err != nil {
			panic(err)
		}
	})
	rows := []Row{
		{Metric: "neutralized data path (CPU)", Paper: "422 kpps", Measured: kpps(dataRate),
			Note: "hash + AES-block decrypt + rewrite per packet"},
		{Metric: "vanilla forwarding (CPU)", Paper: "600 kpps", Measured: kpps(vanRate),
			Note: "header validate + TTL + checksum"},
		{Metric: "ratio (CPU)", Paper: "0.70", Measured: fmt.Sprintf("%.2f", dataRate/vanRate),
			Note: "pure CPU exaggerates crypto share; paper path was I/O-bound"},
	}
	// I/O path over loopback UDP, mirroring the testbed's bottleneck.
	ioData, err1 := measureUDPPath(func(pkt []byte) ([]byte, bool) {
		outs, err := env.Neut.Process(pkt)
		if err != nil || len(outs) == 0 {
			return nil, false
		}
		return outs[0].Pkt, true
	}, env.DataPkt, 8000)
	ioVan, err2 := measureUDPPath(func(pkt []byte) ([]byte, bool) {
		cp := make([]byte, len(pkt))
		copy(cp, pkt)
		if err := core.VanillaForward(cp); err != nil {
			return nil, false
		}
		return cp, true
	}, env.FreshVanilla(), 8000)
	if err1 == nil && err2 == nil && ioVan > 0 {
		rows = append(rows,
			Row{Metric: "neutralized data path (UDP loopback)", Paper: "422 kpps", Measured: kpps(ioData),
				Note: "socket I/O per packet, like the testbed's forwarding bottleneck"},
			Row{Metric: "vanilla forwarding (UDP loopback)", Paper: "600 kpps", Measured: kpps(ioVan),
				Note: ""},
			Row{Metric: "ratio (UDP loopback)", Paper: "0.70", Measured: fmt.Sprintf("%.2f", ioData/ioVan),
				Note: "shape target: neutralization costs a modest constant factor"},
		)
	}
	return &Result{ID: "E3", Title: "Data path vs vanilla forwarding", Rows: rows}, nil
}

// measureUDPPath runs a forwarder process on a loopback UDP socket:
// client → forwarder(process) → sink, and returns delivered packets/sec.
func measureUDPPath(process func([]byte) ([]byte, bool), pkt []byte, n int) (float64, error) {
	fwd, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer fwd.Close()
	sink, err := net.ListenUDP("udp4", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		return 0, err
	}
	defer sink.Close()
	_ = fwd.SetReadBuffer(4 << 20)
	_ = sink.SetReadBuffer(4 << 20)
	sinkAddr := sink.LocalAddr().(*net.UDPAddr)

	// Forwarder loop.
	go func() {
		buf := make([]byte, 2048)
		for {
			m, _, err := fwd.ReadFromUDP(buf)
			if err != nil {
				return
			}
			if out, ok := process(buf[:m]); ok {
				_, _ = fwd.WriteToUDP(out, sinkAddr)
			}
		}
	}()

	// Sink counts.
	done := make(chan int, 1)
	go func() {
		buf := make([]byte, 2048)
		count := 0
		for count < n {
			_ = sink.SetReadDeadline(time.Now().Add(300 * time.Millisecond))
			_, _, err := sink.ReadFromUDP(buf)
			if err != nil {
				break
			}
			count++
		}
		done <- count
	}()

	client, err := net.DialUDP("udp4", nil, fwd.LocalAddr().(*net.UDPAddr))
	if err != nil {
		return 0, err
	}
	defer client.Close()
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := client.Write(pkt); err != nil {
			return 0, err
		}
		if i%64 == 63 {
			// Brief yield so loopback buffers drain; keeps drop rates low
			// without materially distorting the measured rate.
			time.Sleep(50 * time.Microsecond)
		}
	}
	received := <-done
	el := time.Since(start).Seconds()
	if received == 0 || el <= 0 {
		return 0, fmt.Errorf("eval: UDP path delivered nothing")
	}
	return float64(received) / el, nil
}

// RunE4 measures the raw symmetric-crypto rate: the paper's openssl
// number (2.35M ops/s) showing the CPU's crypto capacity far exceeds the
// achieved packet rate — forwarding, not crypto, is the bottleneck.
func RunE4() (*Result, error) {
	key := aesutil.Key{1}
	data := make([]byte, 16)
	const n = 2_000_000
	rate := measureRate(n, func(i int) {
		data[0] = byte(i)
		_ = aesutil.CBCMAC(key, data)
	})
	a := netip.MustParseAddr("10.0.0.1")
	const n2 = 1_000_000
	rate2 := measureRate(n2, func(i int) {
		if _, err := aesutil.EncryptAddr(key, a, [8]byte{byte(i)}); err != nil {
			panic(err)
		}
	})
	return &Result{ID: "E4", Title: "Raw crypto operation rate", Rows: []Row{
		{Metric: "keyed hash (AES CBC-MAC)", Paper: "2.35 M ops/s", Measured: fmt.Sprintf("%.2f M ops/s", rate/1e6),
			Note: "crypto capacity ≫ packet rate, matching the paper's bottleneck analysis"},
		{Metric: "address-block encrypt", Paper: "2.35 M ops/s", Measured: fmt.Sprintf("%.2f M ops/s", rate2/1e6),
			Note: "one AES block per packet"},
	}}, nil
}

// RunA1 contrasts the chosen key-setup design (neutralizer encrypts,
// e=3) with the §3.2 alternative (neutralizer decrypts under its own
// certified key).
func RunA1() (*Result, error) {
	env, err := NewBenchEnv(false, true)
	if err != nil {
		return nil, err
	}
	const n = 1500
	chosen := measureRate(n, func(int) {
		if _, err := env.Neut.Process(env.SetupPkt); err != nil {
			panic(err)
		}
	})
	alt := measureRate(n, func(int) {
		if _, err := env.Neut.Process(env.AltPkt); err != nil {
			panic(err)
		}
	})
	return &Result{ID: "A1", Title: "Chosen key setup vs certified-pubkey alternative", Rows: []Row{
		{Metric: "chosen design (RSA encrypt, e=3)", Paper: "-", Measured: kpps(chosen),
			Note: "extra RTT amortized over an epoch of packets"},
		{Metric: "alternative (RSA decrypt)", Paper: "-", Measured: kpps(alt),
			Note: "saves one RTT but cannot be offloaded"},
		{Metric: "chosen / alternative", Paper: "faster", Measured: fmt.Sprintf("%.1fx", chosen/alt),
			Note: "the §3.2 argument: decryption would make DoS easier"},
	}}, nil
}

// RunA2 measures the neutralizer-side cost of a key setup when the RSA
// work is offloaded to a willing customer (§3.2): stamping and forwarding
// only.
func RunA2() (*Result, error) {
	local, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	off, err := NewBenchEnv(true, false)
	if err != nil {
		return nil, err
	}
	const n = 3000
	localRate := measureRate(n, func(int) {
		if _, err := local.Neut.Process(local.SetupPkt); err != nil {
			panic(err)
		}
	})
	offRate := measureRate(n, func(int) {
		if _, err := off.Neut.Process(off.SetupPkt); err != nil {
			panic(err)
		}
	})
	return &Result{ID: "A2", Title: "Offloading key-setup RSA work", Rows: []Row{
		{Metric: "local RSA encryption", Paper: "-", Measured: kpps(localRate), Note: ""},
		{Metric: "offloaded (stamp + forward)", Paper: "-", Measured: kpps(offRate),
			Note: "customer (e.g. the destination) performs the encryption"},
		{Metric: "speedup at neutralizer", Paper: ">1", Measured: fmt.Sprintf("%.1fx", offRate/localRate),
			Note: "line-speed remedy the paper proposes"},
	}}, nil
}

// RunA3 stages the §5 comparison with anonymous routing: per-flow state
// and public-key operations at relays vs the neutralizer's statelessness.
func RunA3() (*Result, error) {
	relays := make([]*onion.Relay, 3)
	for i := range relays {
		r, err := onion.NewRelay(rand.Reader)
		if err != nil {
			return nil, err
		}
		relays[i] = r
	}
	const flows = 200
	start := time.Now()
	circs := make([]*onion.Circuit, flows)
	for i := range circs {
		c, err := onion.BuildCircuit(rand.Reader, relays...)
		if err != nil {
			return nil, err
		}
		circs[i] = c
	}
	setupDur := time.Since(start)
	var pkOps, state uint64
	for _, r := range relays {
		pkOps += r.PKOps
		state += uint64(r.StateSize())
	}

	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	// The neutralizer's equivalent of "200 flows": 200 data packets from
	// distinct conversations — no setup beyond each source's single
	// per-epoch key setup, and no state.
	for i := 0; i < flows; i++ {
		if _, err := env.Neut.Process(env.DataPkt); err != nil {
			return nil, err
		}
	}
	neutSetups := env.Neut.Stats().KeySetups.Load()

	res := &Result{ID: "A3", Title: "Neutralizer vs onion routing (3 hops)", Rows: []Row{
		{Metric: "relay PK ops for 200 flows", Paper: "-", Measured: fmt.Sprintf("%d", pkOps),
			Note: "one RSA decrypt per hop per circuit"},
		{Metric: "relay state entries", Paper: "-", Measured: fmt.Sprintf("%d", state),
			Note: "per-flow circuit tables at every relay"},
		{Metric: "circuit setup time (200 flows)", Paper: "-", Measured: setupDur.Round(time.Millisecond).String(), Note: ""},
		{Metric: "neutralizer PK ops for same flows", Paper: "much fewer", Measured: fmt.Sprintf("%d", neutSetups),
			Note: "per source per epoch, not per flow; zero here (keys pre-derived)"},
		{Metric: "neutralizer per-flow state", Paper: "none", Measured: fmt.Sprintf("%d", env.Neut.DynAddrCount()),
			Note: "stateless data path"},
	}}
	for _, c := range circs {
		c.Close()
	}
	return res, nil
}
