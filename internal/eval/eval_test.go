package eval

import (
	"strconv"
	"strings"
	"testing"
	"time"
)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.ID != id || len(res.Rows) == 0 {
		t.Fatalf("%s: malformed result %+v", id, res)
	}
	if res.String() == "" {
		t.Errorf("%s: empty rendering", id)
	}
	return res
}

func row(t *testing.T, res *Result, metric string) Row {
	t.Helper()
	for _, r := range res.Rows {
		if r.Metric == metric {
			return r
		}
	}
	t.Fatalf("%s: no row %q (have %v)", res.ID, metric, res.Rows)
	return Row{}
}

func parseKpps(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(s, " kpps")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parse %q: %v", s, err)
	}
	return v
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E13", "F1", "F2", "A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, id := range want {
		if all[i].ID != id {
			t.Errorf("experiment %d = %s, want %s", i, all[i].ID, id)
		}
		if _, ok := ByID(strings.ToLower(id)); !ok {
			t.Errorf("ByID(%q) case-insensitive lookup failed", id)
		}
	}
	if _, ok := ByID("Z9"); ok {
		t.Error("unknown id found")
	}
}

func TestE1KeySetupRate(t *testing.T) {
	res := runExp(t, "E1")
	rate := parseKpps(t, row(t, res, "key-setup responses").Measured)
	// Loose bound: this test may share the machine with the benchmark
	// suite, so it asserts plausibility, not performance (benchmarks
	// measure that).
	if rate <= 0.05 {
		t.Errorf("key setup rate = %v kpps, implausibly low", rate)
	}
}

func TestE2Derivation(t *testing.T) {
	res := runExp(t, "E2")
	r := row(t, res, "sources per epoch")
	v, err := strconv.ParseFloat(strings.TrimSuffix(r.Measured, " M"), 64)
	if err != nil || v <= 1 {
		t.Errorf("sources per epoch = %q (err %v)", r.Measured, err)
	}
}

func TestE3Shape(t *testing.T) {
	res := runExp(t, "E3")
	data := parseKpps(t, row(t, res, "neutralized data path (CPU)").Measured)
	van := parseKpps(t, row(t, res, "vanilla forwarding (CPU)").Measured)
	if data <= 0 || van <= 0 {
		t.Fatal("zero rates")
	}
	if van <= data {
		t.Errorf("vanilla (%v) should outrun neutralized (%v) on CPU", van, data)
	}
	// The headline shape: key setup (E1) is 1-2 orders below the data
	// path — checked in TestShapeE1BelowE3.
}

func TestShapeE1BelowE3(t *testing.T) {
	if raceEnabled {
		t.Skip("relative rates are distorted by race instrumentation")
	}
	e1 := runExp(t, "E1")
	e3 := runExp(t, "E3")
	setup := parseKpps(t, row(t, e1, "key-setup responses").Measured)
	data := parseKpps(t, row(t, e3, "neutralized data path (CPU)").Measured)
	// Ratio is robust to machine load (both sides slow down together),
	// but keep headroom for scheduling noise.
	if data < 2*setup {
		t.Errorf("data path (%v kpps) should be well above key setup (%v kpps)", data, setup)
	}
}

func TestE4CryptoCapacity(t *testing.T) {
	res := runExp(t, "E4")
	r := row(t, res, "keyed hash (AES CBC-MAC)")
	v, err := strconv.ParseFloat(strings.TrimSuffix(r.Measured, " M ops/s"), 64)
	if err != nil || v < 0.05 {
		t.Errorf("crypto rate = %q (err %v), want >= 0.05M", r.Measured, err)
	}
}

func TestF1Targetability(t *testing.T) {
	res := runExp(t, "F1")
	if got := row(t, res, "plain: delivered to targeted customer").Measured; got != "0/20" {
		t.Errorf("plain delivery = %s, want 0/20", got)
	}
	if got := row(t, res, "neutralized: delivered to targeted customer").Measured; got != "20/20" {
		t.Errorf("neutralized delivery = %s, want 20/20", got)
	}
	if got := row(t, res, "neutralized: classifier hits").Measured; got != "0" {
		t.Errorf("classifier hits = %s, want 0", got)
	}
	if got := row(t, res, "neutralized: ISP saw customer address").Measured; got != "false" {
		t.Errorf("address visibility = %s, want false", got)
	}
}

func TestF2ProtocolWalk(t *testing.T) {
	res := runExp(t, "F2")
	for _, r := range res.Rows {
		if r.Measured != "pass" {
			t.Errorf("F2 step %q = %s", r.Metric, r.Measured)
		}
	}
}

func TestA1AlternativeSlower(t *testing.T) {
	res := runExp(t, "A1")
	chosen := parseKpps(t, row(t, res, "chosen design (RSA encrypt, e=3)").Measured)
	alt := parseKpps(t, row(t, res, "alternative (RSA decrypt)").Measured)
	if chosen <= alt {
		t.Errorf("chosen (%v) must beat alternative (%v): the §3.2 argument", chosen, alt)
	}
}

func TestA2OffloadFaster(t *testing.T) {
	res := runExp(t, "A2")
	local := parseKpps(t, row(t, res, "local RSA encryption").Measured)
	off := parseKpps(t, row(t, res, "offloaded (stamp + forward)").Measured)
	if off <= local {
		t.Errorf("offloaded (%v) must beat local (%v)", off, local)
	}
}

func TestA3OnionContrast(t *testing.T) {
	res := runExp(t, "A3")
	if got := row(t, res, "relay PK ops for 200 flows").Measured; got != "600" {
		t.Errorf("onion PK ops = %s, want 600 (3 per circuit)", got)
	}
	if got := row(t, res, "relay state entries").Measured; got != "600" {
		t.Errorf("onion state = %s, want 600", got)
	}
	if got := row(t, res, "neutralizer per-flow state").Measured; got != "0" {
		t.Errorf("neutralizer state = %s, want 0", got)
	}
}

func TestA4VoIPMOS(t *testing.T) {
	res := runExp(t, "A4")
	parse := func(m string) float64 {
		v, err := strconv.ParseFloat(m, 64)
		if err != nil {
			t.Fatalf("MOS %q: %v", m, err)
		}
		return v
	}
	own := parse(row(t, res, "ISP's own VoIP MOS").Measured)
	degraded := parse(row(t, res, "competitor VoIP MOS, no neutralizer").Measured)
	cured := parse(row(t, res, "competitor VoIP MOS, neutralized").Measured)
	if own < 4.0 {
		t.Errorf("own MOS = %v, want >= 4.0", own)
	}
	if degraded > 3.5 {
		t.Errorf("degraded MOS = %v, should be user-visible damage (< 3.5)", degraded)
	}
	if cured < own-0.5 {
		t.Errorf("neutralized MOS = %v, should be close to own (%v)", cured, own)
	}
	if cured-degraded < 0.5 {
		t.Errorf("neutralizer should visibly improve MOS: %v -> %v", degraded, cured)
	}
}

func TestA5Pushback(t *testing.T) {
	res := runExp(t, "A5")
	if got := row(t, res, "pushback deployed (aggregate identified)").Measured; got != "true" {
		t.Fatalf("pushback deployed = %s", got)
	}
	parse := func(s string) int {
		v, err := strconv.Atoi(strings.Split(s, "/")[0])
		if err != nil {
			t.Fatalf("parse %q: %v", s, err)
		}
		return v
	}
	before := parse(row(t, res, "legit goodput during flood").Measured)
	after := parse(row(t, res, "legit goodput after pushback").Measured)
	if after <= before {
		t.Errorf("goodput %d -> %d: pushback must help", before, after)
	}
	if after < 45 {
		t.Errorf("goodput after pushback = %d/50, want near-complete", after)
	}
}

func TestA6Multihoming(t *testing.T) {
	res := runExp(t, "A6")
	// Static should put everything on the fast provider (it is first).
	if got := row(t, res, "static: fast/slow split").Measured; got != "60/0" {
		t.Errorf("static split = %s", got)
	}
	if got := row(t, res, "round-robin: fast/slow split").Measured; got != "30/30" {
		t.Errorf("round-robin split = %s", got)
	}
	// Weighted should prefer fast heavily.
	parts := strings.Split(row(t, res, "latency-weighted: fast/slow split").Measured, "/")
	fast, _ := strconv.Atoi(parts[0])
	if fast < 35 {
		t.Errorf("weighted fast share = %d/60, want majority", fast)
	}
	// Trial-and-error survives provider failure.
	tae := row(t, res, "trial-and-error: probes answered despite provider failure").Measured
	ok, _ := strconv.Atoi(strings.Split(tae, "/")[0])
	if ok < 55 {
		t.Errorf("trial-and-error answered %d/60", ok)
	}
}

func TestA7DNS(t *testing.T) {
	res := runExp(t, "A7")
	parseDur := func(s string) float64 {
		r := row(t, res, s)
		d, err := parseDuration(r.Measured)
		if err != nil {
			t.Fatalf("%q: %v", r.Measured, err)
		}
		return d
	}
	target := parseDur("plaintext lookup of targeted name")
	other := parseDur("plaintext lookup of paying site")
	enc := parseDur("encrypted lookup of targeted name")
	if target < 0.5 {
		t.Errorf("targeted plaintext lookup = %vs, want >= 0.5s", target)
	}
	if other > 0.1 || enc > 0.1 {
		t.Errorf("untargeted/encrypted lookups should be fast: %vs %vs", other, enc)
	}
}

func parseDuration(s string) (float64, error) {
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, err
	}
	return d.Seconds(), nil
}

func TestA8QoS(t *testing.T) {
	res := runExp(t, "A8")
	for _, m := range []string{
		"neutralizer preserves DSCP",
		"per-flow reservation on anycast traffic",
		"per-flow reservation with dynamic addresses",
	} {
		if got := row(t, res, m).Measured; got != "pass" {
			t.Errorf("%s = %s", m, got)
		}
	}
	ef := row(t, res, "EF vs BE delivery under 2x congestion").Measured
	parts := strings.Split(ef, " vs ")
	efN, _ := strconv.Atoi(parts[0])
	beN, _ := strconv.Atoi(parts[1])
	if efN <= beN {
		t.Errorf("EF=%d BE=%d", efN, beN)
	}
}

func TestBenchEnvPacketsValid(t *testing.T) {
	env, err := NewBenchEnv(false, true)
	if err != nil {
		t.Fatal(err)
	}
	for name, pkt := range map[string][]byte{
		"setup": env.SetupPkt, "data": env.DataPkt, "return": env.ReturnPkt, "alt": env.AltPkt,
	} {
		if _, err := env.Neut.Process(pkt); err != nil {
			t.Errorf("%s packet rejected: %v", name, err)
		}
	}
	v := env.FreshVanilla()
	if &v[0] == &env.VanillaPkt[0] {
		t.Error("FreshVanilla must copy")
	}
}

// TestE6MetroSmall exercises the metro path at reduced scale so the
// default test run (and -race) stays fast; TestE6FullScale runs the
// registered 10k-host experiment.
func TestE6MetroSmall(t *testing.T) {
	st, err := RunMetro(MetroConfig{Hosts: 1200, Seed: 3, Duration: 200 * time.Millisecond, RatePps: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if st.Sent == 0 || st.Delivered != uint64(st.Sent) {
		t.Fatalf("delivered %d of %d", st.Delivered, st.Sent)
	}
	if st.ClassifierHits != 0 {
		t.Errorf("classifier hits = %d, want 0 (neutralized traffic untargetable)", st.ClassifierHits)
	}
	if st.SimEvents == 0 || st.EventsPerSec <= 0 {
		t.Errorf("engine counters missing: events=%d rate=%v", st.SimEvents, st.EventsPerSec)
	}
	// The pool must recycle: far fewer buffer allocations than checkouts.
	if st.PoolAllocated*10 > st.PoolGets {
		t.Errorf("pool allocated %d for %d gets: recycling broken", st.PoolAllocated, st.PoolGets)
	}
}

func TestE6FullScale(t *testing.T) {
	if raceEnabled {
		t.Skip("10k-host run is slow under race instrumentation")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runExp(t, "E6")
	if got := row(t, res, "classifier hits at transit").Measured; got != "0" {
		t.Errorf("classifier hits = %s", got)
	}
	del := row(t, res, "neutralized packets delivered").Measured
	parts := strings.Split(del, "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("delivery = %s, want all", del)
	}
}
