//go:build race

package eval

// raceEnabled reports whether the race detector is active. Performance
// *shape* assertions are skipped under -race: instrumentation slows the
// table-driven software AES of the data path far more than the
// big-integer RSA of key setup, so relative rates are not meaningful.
const raceEnabled = true
