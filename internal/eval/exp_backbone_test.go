package eval

import (
	"strings"
	"testing"
	"time"
)

// reducedBackbone keeps E13's contract testable at CI speed: four small
// metros instead of six larger ones, with observation on so the identity
// sweep covers the recorder rings and flight samples.
func reducedBackbone(seed int64) BackboneConfig {
	return BackboneConfig{
		Metros: 4, HostsPerMetro: 200, Seed: seed,
		Duration: 150 * time.Millisecond, RatePps: 4000, CrossPps: 2000,
		Observe: true,
	}
}

// TestE13BackboneReduced runs the continental worker sweep at reduced
// scale; RunBackboneIdentity itself enforces bit-identical outcomes
// (including fluid accounting and the observation digest) across
// worker counts.
func TestE13BackboneReduced(t *testing.T) {
	runs, err := RunBackboneIdentity(reducedBackbone(31), []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(runs))
	}
	st := runs[0]
	if st.NeutSent == 0 || st.CrossSent == 0 {
		t.Fatalf("degenerate workload: neut=%d cross=%d", st.NeutSent, st.CrossSent)
	}
	if st.FluidBytes == 0 || st.FluidTicks == 0 {
		t.Fatalf("fluid layer idle: bytes=%d ticks=%d", st.FluidBytes, st.FluidTicks)
	}
	if st.Shards != 1+st.Metros {
		t.Fatalf("shards = %d, want core + one per metro = %d", st.Shards, 1+st.Metros)
	}
	if st.Obs == nil || st.Obs.RecorderTicks == 0 || st.Obs.FlightSampled == 0 {
		t.Fatalf("degenerate observation digest: %+v", st.Obs)
	}
}

func TestE13FullScale(t *testing.T) {
	if raceEnabled {
		t.Skip("6x1000-host sweep is slow under race instrumentation")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runExp(t, "E13")
	if got := row(t, res, "classifier hits at the core").Measured; got != "0" {
		t.Errorf("classifier hits = %s", got)
	}
	del := row(t, res, "cross-backbone packets delivered").Measured
	parts := strings.Split(del, "/")
	if len(parts) != 2 || parts[0] != parts[1] {
		t.Errorf("delivery = %s, want all", del)
	}
	if row(t, res, "determinism (observed)").Measured != "verified" {
		t.Error("determinism row missing")
	}
}
