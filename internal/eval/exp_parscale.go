// E9: the parallel engine experiment. PR 2 made the netem substrate
// fast on one core; this experiment measures what the sharded
// conservative engine does with several. It runs the same metro
// workload — neutralized downstream load through the border plus
// intra-subtree host chatter (the component that lives entirely inside
// the customer shards) — at a sweep of worker counts, and enforces the
// engine's central contract: every deterministic outcome (packets sent,
// delivered, forwarded, dropped, classifier hits, sim events, pool
// checkouts) is bit-identical at every worker count. Speedup is
// recorded alongside host core counts; like E5, the scaling number is
// only meaningful on hosts with enough cores, so it is enforced by
// scripts/benchjson (gated on NumCPU >= 4), not here.
package eval

import (
	"fmt"
	"runtime"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/trafficgen"
)

// ParScaleConfig parameterizes E9; the zero value gets the registered
// experiment's defaults.
type ParScaleConfig struct {
	// Hosts is the customer host count (default 10000).
	Hosts int
	// Seed drives every RNG.
	Seed int64
	// Duration is simulated traffic time per run (default 1s).
	Duration time.Duration
	// RatePps is the neutralized downstream load (default 50000).
	RatePps float64
	// LocalPps is the intra-subtree chatter load (default 100000).
	LocalPps float64
	// Workers is the sweep (default 1, 2, 4, 8).
	Workers []int
	// Observe runs every sweep point with the observability plane
	// attached (MetroConfig.Observe) and folds the observation digest
	// into the identity check: not only the run outcome but the recorded
	// rings and sampled packet events must replay bit-identically.
	Observe bool
}

func (c *ParScaleConfig) fill() {
	if c.Hosts <= 0 {
		c.Hosts = 10000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.RatePps <= 0 {
		c.RatePps = 50000
	}
	if c.LocalPps <= 0 {
		c.LocalPps = 100000
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
}

// ParScaleRun is one worker count's outcome.
type ParScaleRun struct {
	Workers int
	Stats   *MetroStats
	// Speedup is EventsPerSec relative to the 1-worker run.
	Speedup float64
}

// ParScaleStats is the full E9 outcome.
type ParScaleStats struct {
	Cfg  ParScaleConfig
	Runs []ParScaleRun
}

// identityKey is the deterministic outcome a run must reproduce exactly
// at every worker count. The last four words are the observation digest
// (zero when the run was unobserved): recorder ticks, ring fingerprint,
// flight-event fingerprint, final-registry fingerprint.
func identityKey(st *MetroStats) [12]uint64 {
	k := [12]uint64{
		uint64(st.Sent), uint64(st.LocalSent), st.Delivered, st.Forwarded,
		st.Dropped, st.ClassifierHits, st.SimEvents, st.PoolGets,
	}
	ok := st.Obs.key()
	copy(k[8:], ok[:])
	return k
}

// RunParScale sweeps the metro workload across worker counts and
// enforces bit-identical outcomes; wall-clock scaling is recorded.
func RunParScale(cfg ParScaleConfig) (*ParScaleStats, error) {
	cfg.fill()
	out := &ParScaleStats{Cfg: cfg}
	var base *MetroStats
	for _, w := range cfg.Workers {
		st, err := RunMetro(MetroConfig{
			Hosts: cfg.Hosts, Seed: cfg.Seed, Duration: cfg.Duration,
			RatePps: cfg.RatePps, LocalPps: cfg.LocalPps, Workers: w,
			Observe: cfg.Observe,
		})
		if err != nil {
			return nil, fmt.Errorf("eval: parscale workers=%d: %w", w, err)
		}
		run := ParScaleRun{Workers: w, Stats: st}
		if base == nil {
			base = st
		} else if identityKey(st) != identityKey(base) {
			return nil, fmt.Errorf(
				"eval: parscale determinism violated: workers=%d outcome %v != workers=%d outcome %v",
				w, identityKey(st), base.Workers, identityKey(base))
		}
		if base.EventsPerSec > 0 {
			run.Speedup = st.EventsPerSec / base.EventsPerSec
		}
		out.Runs = append(out.Runs, run)
	}
	return out, nil
}

// RunE9 is the registered parallel-scaling experiment.
func RunE9() (*Result, error) {
	st, err := RunParScale(ParScaleConfig{Seed: 9, Observe: true})
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "E9", Title: parScaleTitle}
	first := st.Runs[0].Stats
	res.Rows = append(res.Rows, Row{
		Metric: "workload", Paper: "-",
		Measured: fmt.Sprintf("%d hosts, %d shards", first.Hosts, first.Shards),
		Note: fmt.Sprintf("%d neutralized + %d intra-subtree packets over %v simulated",
			first.Sent, first.LocalSent, st.Cfg.Duration),
	})
	for _, r := range st.Runs {
		res.Rows = append(res.Rows, Row{
			Metric:   fmt.Sprintf("events/sec at %d worker(s)", r.Workers),
			Paper:    "-",
			Measured: fmt.Sprintf("%.0f", r.Stats.EventsPerSec),
			Note: fmt.Sprintf("%.2fx of 1 worker, GOMAXPROCS=%d (scaling enforced by benchjson on >= 4 cores)",
				r.Speedup, runtime.GOMAXPROCS(0)),
		})
	}
	res.Rows = append(res.Rows, Row{
		Metric: "determinism (observed)", Paper: "bit-identical",
		Measured: "verified",
		Note: fmt.Sprintf(
			"outcome + recorder rings (%d ticks) + flight samples (%d events) equal at every worker count",
			first.Obs.RecorderTicks, first.Obs.FlightSampled),
	})
	return res, nil
}

const parScaleTitle = "Parallel sharded engine: worker scaling with bit-identical replay"

// ParMetroBench is the fixture behind BenchmarkNetemMetroParallel: the
// sharded metro world built once per worker count, with the downstream
// sender and every per-host chatter sender prebuilt, so one benchmark
// op pays only the traffic it schedules and runs. The workload matches
// E9: neutralized downstream load through the border plus
// intra-subtree host chatter. Size chunks so the per-host chatter
// interval fits inside them — RunChunk reports how many packets it
// scheduled precisely so a mis-sized chunk cannot silently degrade the
// workload to downstream-only.
type ParMetroBench struct {
	w        *metroWorld
	rate     float64
	perHost  float64
	outSend  func(seq uint64)
	hosts    []*netem.Node
	hostSend []func(seq uint64)
}

// NewParMetroBench builds the fixture at the given host count and
// worker count.
func NewParMetroBench(hosts, workers int) (*ParMetroBench, error) {
	w, err := buildMetroWorld(1, hosts, workers,
		netem.LinkConfig{Delay: time.Millisecond, QueueLen: 512})
	if err != nil {
		return nil, err
	}
	f := w.fan
	p := &ParMetroBench{
		w: w, rate: 40000, perHost: 80000 / float64(hosts),
		outSend: trafficgen.CyclingSender(f.Outside[0], w.templates),
	}
	p.hosts, p.hostSend = chatterSenders(f)
	return p, nil
}

// RunChunk schedules one chunk of downstream and intra-subtree load,
// advances the simulation through it, and returns the number of packets
// scheduled (callers should reject a chunk that scheduled no chatter).
func (p *ParMetroBench) RunChunk(d time.Duration) int {
	sent := trafficgen.OpenLoop{RatePps: p.rate}.Run(p.w.fan.Outside[0], d, p.outSend)
	local := 0
	for i, host := range p.hosts {
		local += trafficgen.OpenLoop{RatePps: p.perHost}.Run(host, d, p.hostSend[i])
	}
	p.w.sim.RunFor(d)
	if local == 0 {
		return 0 // chunk shorter than the per-host interval: wrong workload
	}
	return sent + local
}

// Events reports the engine's cumulative event count.
func (p *ParMetroBench) Events() uint64 { return p.w.sim.EventsProcessed() }
