package eval

import (
	"bytes"
	"testing"
	"time"

	"netneutral/internal/audit"
)

// reducedParScale keeps E9's contract testable at CI speed.
func reducedParScale(workers []int) ParScaleConfig {
	return ParScaleConfig{
		Hosts: 1200, Seed: 9, Duration: 300 * time.Millisecond,
		RatePps: 20000, LocalPps: 40000, Workers: workers,
	}
}

// TestE9ParScaleReduced runs the worker sweep at reduced scale;
// RunParScale itself enforces outcome identity across worker counts.
func TestE9ParScaleReduced(t *testing.T) {
	st, err := RunParScale(reducedParScale([]int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(st.Runs))
	}
	first := st.Runs[0].Stats
	if first.LocalSent == 0 || first.Sent == 0 {
		t.Fatalf("degenerate workload: sent=%d local=%d", first.Sent, first.LocalSent)
	}
	if first.Shards < 4 {
		t.Fatalf("shards = %d, want the sharded fan-out plan", first.Shards)
	}
}

// TestE6WorkerIdentity pins the acceptance bar directly: the E6 metro
// run's deterministic outputs are byte-identical at -simworkers 1 vs 4.
func TestE6WorkerIdentity(t *testing.T) {
	cfg := MetroConfig{Hosts: 1500, Seed: 66, Duration: 250 * time.Millisecond, RatePps: 20000}
	cfg1, cfg4 := cfg, cfg
	cfg1.Workers, cfg4.Workers = 1, 4
	a, err := RunMetro(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMetro(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if identityKey(a) != identityKey(b) {
		t.Fatalf("E6 outcome differs across workers: %v vs %v", identityKey(a), identityKey(b))
	}
}

// TestE8WorkerIdentity extends the seed-replay discipline across worker
// counts: every cell's wire-encoded vantage reports — the audit's full
// measured outcome — must be byte-identical at -simworkers 1 vs 4.
func TestE8WorkerIdentity(t *testing.T) {
	cfg := AuditConfig{Seed: 11, Vantages: 4, InsideVantages: 2, Trials: 8}
	cfg1, cfg4 := cfg, cfg
	cfg1.Workers, cfg4.Workers = 1, 4
	a, err := RunAudit(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAudit(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for c := range a.Cells {
		ca, cb := &a.Cells[c], &b.Cells[c]
		if len(ca.ReportWire) != len(cb.ReportWire) {
			t.Fatalf("cell %v/%v/%v: report counts differ", ca.ISP, ca.Mode, ca.Strategy)
		}
		for v := range ca.ReportWire {
			if !bytes.Equal(ca.ReportWire[v], cb.ReportWire[v]) {
				t.Fatalf("cell %v/%v/%v vantage %d: outcome differs across workers (%d vs %d bytes)",
					ca.ISP, ca.Mode, ca.Strategy, v, len(ca.ReportWire[v]), len(cb.ReportWire[v]))
			}
		}
	}
	// The comparison must not be vacuous.
	if cell := a.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved); cell.Summary.Power == 0 {
		t.Fatal("blatant-dpi cell detected nothing; identity check would be meaningless")
	}
}
