package eval

import (
	"bytes"
	"testing"
	"time"

	"netneutral/internal/audit"
)

// reducedParScale keeps E9's contract testable at CI speed. Observe is
// on, as in the registered experiment: the sweep's identity check then
// covers the recorder rings and flight samples too.
func reducedParScale(workers []int) ParScaleConfig {
	return ParScaleConfig{
		Hosts: 1200, Seed: 9, Duration: 300 * time.Millisecond,
		RatePps: 20000, LocalPps: 40000, Workers: workers, Observe: true,
	}
}

// TestE9ParScaleReduced runs the worker sweep at reduced scale;
// RunParScale itself enforces outcome identity across worker counts.
func TestE9ParScaleReduced(t *testing.T) {
	st, err := RunParScale(reducedParScale([]int{1, 2, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Runs) != 3 {
		t.Fatalf("runs = %d, want 3", len(st.Runs))
	}
	first := st.Runs[0].Stats
	if first.LocalSent == 0 || first.Sent == 0 {
		t.Fatalf("degenerate workload: sent=%d local=%d", first.Sent, first.LocalSent)
	}
	if first.Shards < 4 {
		t.Fatalf("shards = %d, want the sharded fan-out plan", first.Shards)
	}
	// The identity check must have compared real observation, not an
	// absent or empty one.
	if first.Obs == nil || first.Obs.RecorderTicks == 0 || first.Obs.SeriesPoints == 0 || first.Obs.FlightSampled == 0 {
		t.Fatalf("degenerate observation digest: %+v", first.Obs)
	}
}

// TestE6WorkerIdentity pins the acceptance bar directly: the E6 metro
// run's deterministic outputs — including what the attached Recorder
// and FlightRecorder observed — are byte-identical at -simworkers
// 1 vs 4.
func TestE6WorkerIdentity(t *testing.T) {
	cfg := MetroConfig{Hosts: 1500, Seed: 66, Duration: 250 * time.Millisecond, RatePps: 20000, Observe: true}
	cfg1, cfg4 := cfg, cfg
	cfg1.Workers, cfg4.Workers = 1, 4
	a, err := RunMetro(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMetro(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if identityKey(a) != identityKey(b) {
		t.Fatalf("E6 outcome differs across workers: %v vs %v", identityKey(a), identityKey(b))
	}
	if a.Obs == nil || b.Obs == nil || *a.Obs != *b.Obs {
		t.Fatalf("observation digest differs across workers:\n workers=1: %+v\n workers=4: %+v", a.Obs, b.Obs)
	}
	if a.Obs.RecorderTicks == 0 || a.Obs.SeriesPoints == 0 || a.Obs.FlightSampled == 0 {
		t.Fatalf("degenerate observation: %+v", a.Obs)
	}
}

// TestE8WorkerIdentity extends the seed-replay discipline across worker
// counts: every cell's wire-encoded vantage reports — the audit's full
// measured outcome — must be byte-identical at -simworkers 1 vs 4, and
// with Observe on, so must each cell's observation digest (prober
// counters, verdict tallies, recorder rings, flight samples).
func TestE8WorkerIdentity(t *testing.T) {
	cfg := AuditConfig{Seed: 11, Vantages: 4, InsideVantages: 2, Trials: 8, Observe: true}
	cfg1, cfg4 := cfg, cfg
	cfg1.Workers, cfg4.Workers = 1, 4
	a, err := RunAudit(cfg1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAudit(cfg4)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for c := range a.Cells {
		ca, cb := &a.Cells[c], &b.Cells[c]
		if len(ca.ReportWire) != len(cb.ReportWire) {
			t.Fatalf("cell %v/%v/%v: report counts differ", ca.ISP, ca.Mode, ca.Strategy)
		}
		for v := range ca.ReportWire {
			if !bytes.Equal(ca.ReportWire[v], cb.ReportWire[v]) {
				t.Fatalf("cell %v/%v/%v vantage %d: outcome differs across workers (%d vs %d bytes)",
					ca.ISP, ca.Mode, ca.Strategy, v, len(ca.ReportWire[v]), len(cb.ReportWire[v]))
			}
		}
		if ca.Obs == nil || cb.Obs == nil || *ca.Obs != *cb.Obs {
			t.Fatalf("cell %v/%v/%v: observation digest differs across workers:\n workers=1: %+v\n workers=4: %+v",
				ca.ISP, ca.Mode, ca.Strategy, ca.Obs, cb.Obs)
		}
		if ca.Obs.RecorderTicks == 0 || ca.Obs.FinalHash == 0 {
			t.Fatalf("cell %v/%v/%v: degenerate observation: %+v", ca.ISP, ca.Mode, ca.Strategy, ca.Obs)
		}
	}
	// The comparison must not be vacuous.
	if cell := a.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved); cell.Summary.Power == 0 {
		t.Fatal("blatant-dpi cell detected nothing; identity check would be meaningless")
	}
}
