// E7: the arms race. The paper's claim is that encryption strips a
// discriminatory ISP of what it needs to classify traffic; E7 stress-
// tests that claim against the adversary the claim does not cover. At
// fan-out scale it runs every combination of traffic mode {plaintext,
// encrypted, encrypted+cloak} and adversary {port-rule ISP, statistical
// dpi ISP}, with app-shaped flows (VoIP / video / bulk / web) as the
// workload, and measures classifier accuracy and per-class goodput:
//
//   - The port-rule ISP catches plaintext VoIP and is blinded by
//     encryption — the paper's result, reproduced.
//   - The dpi ISP classifies *encrypted* flows from sizes and timing
//     alone at >= 90% accuracy and degrades what it classifies:
//     encryption alone does not defeat statistical traffic analysis.
//   - Cloaking (padding + tick quantization + cover traffic) drives
//     dpi accuracy to chance and restores the targeted class's
//     goodput — at a measured overhead in wire bytes and latency,
//     which is the price of the last rung of the ladder.
package eval

import (
	"fmt"
	mathrand "math/rand"
	"net/netip"
	"time"

	"netneutral/internal/cloak"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/dpi"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// ArmsMode is how the flows travel.
type ArmsMode uint8

// Traffic modes.
const (
	// ModePlaintext sends raw UDP with real ports: the pre-neutralizer
	// world.
	ModePlaintext ArmsMode = iota
	// ModeEncrypted sends neutralized shim traffic (hidden destination,
	// opaque payload) with the application's natural sizes and timing.
	ModeEncrypted
	// ModeCloaked is ModeEncrypted through the cloak shaper: padded to
	// one bucket, released on a tick grid, idle ticks filled with cover.
	ModeCloaked
)

func (m ArmsMode) String() string {
	switch m {
	case ModePlaintext:
		return "plaintext"
	case ModeEncrypted:
		return "encrypted"
	default:
		return "encrypted+cloak"
	}
}

// ArmsAdversary is who sits at the transit router.
type ArmsAdversary uint8

// Adversaries.
const (
	// AdvNone observes features without classifying or interfering (the
	// calibration/training tap).
	AdvNone ArmsAdversary = iota
	// AdvPortRule is the strawman: drop 90% of packets matching the
	// VoIP UDP port.
	AdvPortRule
	// AdvDPI is the statistical adversary: classify flows by size and
	// timing features, drop 90% of classified VoIP, token-bucket
	// throttle classified video.
	AdvDPI
)

func (a ArmsAdversary) String() string {
	switch a {
	case AdvPortRule:
		return "port-rule"
	case AdvDPI:
		return "dpi"
	default:
		return "none"
	}
}

// ArmsConfig parameterizes E7; the zero value gets the registered
// experiment's defaults.
type ArmsConfig struct {
	// FlowsPerClass is the number of flows per application class
	// (default 25; total flows = 4x this).
	FlowsPerClass int
	// Seed drives every RNG in the experiment.
	Seed int64
	// Duration is simulated traffic time per cell (default 5s).
	Duration time.Duration
}

func (c *ArmsConfig) fill() {
	if c.FlowsPerClass <= 0 {
		c.FlowsPerClass = 25
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
}

// armsCloakConfig is the E7 cloak setting: maximal cloaking — one size
// bucket, a 2.5ms tick (above every app's peak rate), cover traffic on.
var armsCloakConfig = cloak.Config{
	SizeBuckets: []int{1400},
	Tick:        2500 * time.Microsecond,
	PerTick:     1,
	Cover:       true,
}

// ArmsCell is the measured outcome of one (mode, adversary) run.
type ArmsCell struct {
	Mode      ArmsMode
	Adversary ArmsAdversary

	Flows int
	// Accuracy is the dpi classifier's flow accuracy (-1 when the
	// adversary has no classifier).
	Accuracy float64
	// PortHits counts port-rule matches.
	PortHits uint64
	// Goodput is delivered/sent application bytes per class.
	Goodput [trafficgen.NumApps]float64
	// SentReal/DeliveredReal total application payload bytes.
	SentReal, DeliveredReal uint64
	// CloakOverhead is cloak wire bytes per real byte (1 uncloaked);
	// CloakDelay is the mean added latency per payload frame.
	CloakOverhead float64
	CloakDelay    time.Duration
	// DPIDrops / DPIPoliced count enforcement actions by the dpi engine.
	DPIDrops, DPIPoliced uint64
}

// ArmsStats is the full E7 outcome.
type ArmsStats struct {
	Cfg   ArmsConfig
	Cells []ArmsCell
	// TrainedFlows is the calibration population behind the classifier.
	TrainedFlows int
}

// Cell returns the run for a (mode, adversary) pair, or nil.
func (s *ArmsStats) Cell(m ArmsMode, a ArmsAdversary) *ArmsCell {
	for i := range s.Cells {
		if s.Cells[i].Mode == m && s.Cells[i].Adversary == a {
			return &s.Cells[i]
		}
	}
	return nil
}

func dpiClassOf(app trafficgen.App) dpi.Class {
	switch app {
	case trafficgen.AppVoIP:
		return dpi.ClassVoIP
	case trafficgen.AppVideo:
		return dpi.ClassVideo
	case trafficgen.AppBulk:
		return dpi.ClassBulk
	default:
		return dpi.ClassWeb
	}
}

// armsRun is one cell's live state while the simulator runs.
type armsRun struct {
	cell    ArmsCell
	table   *dpi.FlowTable // populated feature tap (AdvNone) or engine table
	keyOf   []netem.FlowKey
	classOf []dpi.Class
}

// runArmsCell builds the fan-out world for one cell and drives it.
// seedSalt decorrelates cells (training and evaluation must not share
// jitter streams).
func runArmsCell(cfg ArmsConfig, mode ArmsMode, adv ArmsAdversary, cls *dpi.Classifier, seedSalt int64) (*armsRun, error) {
	nFlows := trafficgen.NumApps * cfg.FlowsPerClass
	qlen := 8 * nFlows
	if qlen < 512 {
		qlen = 512
	}
	link := netem.LinkConfig{Delay: time.Millisecond, QueueLen: qlen}
	// E7 runs unsharded: its flows all originate outside and the cloak
	// shapers schedule on the simulator, which is exactly the
	// single-shard contract.
	env, err := newFanoutEnv(cfg.Seed+seedSalt, netem.FanoutSpec{
		Hosts: nFlows, Outside: nFlows,
		HostLink: link, EdgeLink: link, TransitLink: link, OutsideLink: link,
	})
	if err != nil {
		return nil, err
	}
	sim, f := env.Sim, env.Fan
	if mode != ModePlaintext {
		if err := env.attachNeutralizer(); err != nil {
			return nil, err
		}
	}

	run := &armsRun{
		cell:    ArmsCell{Mode: mode, Adversary: adv, Flows: nFlows, Accuracy: -1, CloakOverhead: 1},
		keyOf:   make([]netem.FlowKey, nFlows),
		classOf: make([]dpi.Class, nFlows),
	}

	// The adversary (or calibration tap) at the transit router.
	var engine *dpi.Engine
	var portPolicy *isp.Policy
	switch adv {
	case AdvPortRule:
		portPolicy = isp.NewPolicy(mathrand.New(mathrand.NewSource(cfg.Seed+seedSalt+101)), isp.Rule{
			Name:   "target-voip-port",
			Match:  isp.MatchUDPPort(trafficgen.AppVoIP.Port()),
			Action: isp.Action{DropProb: 0.9},
		})
		f.Transit.AddTransitHook(portPolicy.Hook())
	case AdvDPI:
		var pol dpi.Policy
		pol[dpi.ClassVoIP] = dpi.ClassPolicy{DropProb: 0.9}
		pol[dpi.ClassVideo] = dpi.ClassPolicy{RateBps: 8e6}
		// Classify early and reclassify often: sparse flows (web
		// fetches during think time) must still be judged, and on their
		// mature features, not their first burst.
		engine = dpi.NewEngine(dpi.EngineConfig{
			Table:  dpi.Config{Classifier: cls, MinPackets: 8, ReclassifyEvery: 8},
			Policy: pol,
			Rng:    mathrand.New(mathrand.NewSource(cfg.Seed + seedSalt + 77)),
		})
		run.table = engine.Table()
		f.Transit.AddTransitHook(engine.Hook())
	default:
		run.table = dpi.NewFlowTable(dpi.Config{})
		tab := run.table
		f.Transit.AddTransitHook(func(now time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
			if key, fwd, ok := netem.FlowKeyOf(pkt); ok {
				tab.Observe(key, fwd, len(pkt), now.UnixNano())
			}
			return netem.Deliver
		})
	}

	// Per-class byte accounting, filled by senders and host handlers.
	var sentReal, deliveredReal [trafficgen.NumApps]uint64
	shapers := make([]*cloak.Shaper, 0, nFlows)

	for i := 0; i < nFlows; i++ {
		app := trafficgen.App(i % trafficgen.NumApps)
		run.classOf[i] = dpiClassOf(app)
		src := f.Outside[i]
		dst := f.HostAddr(i)
		// The salt stride keeps per-flow jitter streams disjoint across
		// cells at any realistic flow count: training and evaluation
		// must not share randomness.
		flowRng := mathrand.New(mathrand.NewSource(cfg.Seed*1_000_003 + seedSalt<<32 + int64(i)))

		var emit func(seq uint64, size int)
		if mode == ModePlaintext {
			run.keyOf[i], err = netem.FlowKeyFrom(src.Addr(), dst, wire.ProtoUDP)
			if err != nil {
				return nil, err
			}
			port := app.Port()
			emit = func(_ uint64, size int) {
				sentReal[app] += uint64(size)
				_ = src.Send(buildArmsUDP(src.Addr(), dst, port, size))
			}
		} else {
			run.keyOf[i], err = netem.FlowKeyFrom(src.Addr(), f.Spec.Anycast, wire.ProtoShim)
			if err != nil {
				return nil, err
			}
			// Per-flow neutralizer credentials: the session key is
			// derivable by the stateless core from (epoch, nonce, src).
			var nonce keys.Nonce
			nonce[0], nonce[1], nonce[7] = byte(i>>8), byte(i), 0xE7
			hdr, err := env.shimCred(src.Addr(), dst, nonce, [8]byte{byte(i), byte(i >> 8), 0xA7}, 0)
			if err != nil {
				return nil, err
			}
			sh := &hdr
			srcAddr := src.Addr()
			sendShim := func(payload []byte) {
				pkt, err := buildShim(srcAddr, f.Spec.Anycast, sh, payload)
				if err != nil {
					return
				}
				_ = src.Send(pkt)
			}
			if mode == ModeEncrypted {
				scratch := make([]byte, 2048)
				emit = func(_ uint64, size int) {
					sentReal[app] += uint64(size)
					sendShim(scratch[:size])
				}
			} else {
				shaper := cloak.NewShaper(armsCloakConfig, sim, func(frame []byte) { sendShim(frame) })
				shaper.Run(cfg.Duration)
				shapers = append(shapers, shaper)
				scratch := make([]byte, 2048)
				emit = func(_ uint64, size int) {
					sentReal[app] += uint64(size)
					shaper.Send(scratch[:size])
				}
			}
		}

		hostApp := app
		cloaked := mode == ModeCloaked
		f.Hosts[i].SetHandler(func(_ time.Time, pkt []byte) {
			deliveredReal[hostApp] += uint64(armsRealPayloadLen(pkt, cloaked))
		})

		trafficgen.AppSource{App: app, Rng: flowRng}.Run(sim, cfg.Duration, emit)
	}

	sim.Run()

	// Harvest the verdict metrics.
	c := &run.cell
	for app := 0; app < trafficgen.NumApps; app++ {
		c.SentReal += sentReal[app]
		c.DeliveredReal += deliveredReal[app]
		if sentReal[app] > 0 {
			c.Goodput[app] = float64(deliveredReal[app]) / float64(sentReal[app])
		}
	}
	if portPolicy != nil {
		c.PortHits = portPolicy.Hits("target-voip-port")
	}
	if engine != nil {
		c.DPIDrops = engine.Drops(dpi.ClassVoIP)
		c.DPIPoliced = engine.Policed(dpi.ClassVideo)
	}
	if run.table != nil && cls != nil {
		correct := 0
		for i, key := range run.keyOf {
			if got, ok := run.table.ClassOf(key); ok && got == run.classOf[i] {
				correct++
			}
		}
		c.Accuracy = float64(correct) / float64(nFlows)
	}
	if len(shapers) > 0 {
		var wire, real uint64
		var delaySum time.Duration
		var frames uint64
		for _, sh := range shapers {
			st := sh.Stats()
			wire += st.WireBytes
			real += st.RealBytes
			delaySum += st.QueueDelaySum
			frames += st.Frames
		}
		if real > 0 {
			c.CloakOverhead = float64(wire) / float64(real)
		}
		if frames > 0 {
			c.CloakDelay = delaySum / time.Duration(frames)
		}
	}
	return run, nil
}

// buildArmsUDP serializes a plaintext app packet of the given payload
// length (the probe builder with a zeroed payload).
func buildArmsUDP(src, dst netip.Addr, dport uint16, payloadLen int) []byte {
	return buildProbeUDP(src, dst, dport, make([]byte, payloadLen))
}

// armsRealPayloadLen extracts the delivered application byte count from
// a packet that arrived at a customer host: UDP payload for plaintext,
// shim payload for neutralized traffic, and the decoded (non-cover)
// cloak frame payload when cloaking is on.
func armsRealPayloadLen(pkt []byte, cloaked bool) int {
	var ip wire.IPv4
	if ip.DecodeFromBytes(pkt) != nil {
		return 0
	}
	var payload []byte
	switch ip.Protocol {
	case wire.ProtoUDP:
		if len(ip.Payload()) > wire.UDPHeaderLen {
			payload = ip.Payload()[wire.UDPHeaderLen:]
		}
	case wire.ProtoShim:
		var sh shim.Header
		if sh.DecodeFromBytes(ip.Payload()) != nil {
			return 0
		}
		payload = sh.Payload()
	default:
		return 0
	}
	if !cloaked {
		return len(payload)
	}
	inner, cover, err := cloak.DecodeFrame(payload)
	if err != nil || cover {
		return 0
	}
	return len(inner)
}

// armsSamples runs one passive (AdvNone) cell and returns its flows as
// labeled feature vectors — the training and held-out evaluation sets.
func armsSamples(cfg ArmsConfig, mode ArmsMode, salt int64) ([]dpi.Sample, *armsRun, error) {
	run, err := runArmsCell(cfg, mode, AdvNone, nil, salt)
	if err != nil {
		return nil, nil, err
	}
	labelOf := make(map[netem.FlowKey]dpi.Class, len(run.keyOf))
	for i, k := range run.keyOf {
		labelOf[k] = run.classOf[i]
	}
	var samples []dpi.Sample
	run.table.Each(func(e *dpi.FlowEntry) {
		if class, ok := labelOf[e.Key]; ok {
			s := dpi.Sample{Class: class}
			e.Feat.Vector(&s.Vec)
			samples = append(samples, s)
		}
	})
	return samples, run, nil
}

// RunArms trains the dpi classifier on a labeled calibration run, then
// measures every (mode, adversary) cell with held-out seeds.
func RunArms(cfg ArmsConfig) (*ArmsStats, error) {
	cfg.fill()
	st := &ArmsStats{Cfg: cfg}

	// Calibration: encrypted traffic, passive tap, training labels from
	// the known flow->class assignment.
	samples, _, err := armsSamples(cfg, ModeEncrypted, 1)
	if err != nil {
		return nil, err
	}
	st.TrainedFlows = len(samples)
	cls, err := dpi.Train(samples)
	if err != nil {
		return nil, fmt.Errorf("eval: arms calibration: %w", err)
	}

	salt := int64(2)
	for _, adv := range []ArmsAdversary{AdvPortRule, AdvDPI} {
		for _, mode := range []ArmsMode{ModePlaintext, ModeEncrypted, ModeCloaked} {
			run, err := runArmsCell(cfg, mode, adv, cls, salt)
			if err != nil {
				return nil, fmt.Errorf("eval: arms cell %v/%v: %w", mode, adv, err)
			}
			st.Cells = append(st.Cells, run.cell)
			salt++
		}
	}
	return st, verifyArms(st)
}

// verifyArms asserts the arms-race ladder quantitatively; a violated
// rung is an experiment failure, the same contract E6 uses.
func verifyArms(st *ArmsStats) error {
	voip := int(trafficgen.AppVoIP)
	type check struct {
		ok  bool
		msg string
	}
	pp := st.Cell(ModePlaintext, AdvPortRule)
	pe := st.Cell(ModeEncrypted, AdvPortRule)
	dp := st.Cell(ModePlaintext, AdvDPI)
	de := st.Cell(ModeEncrypted, AdvDPI)
	dc := st.Cell(ModeCloaked, AdvDPI)
	pc := st.Cell(ModeCloaked, AdvPortRule)
	checks := []check{
		{pp.PortHits > 0 && pp.Goodput[voip] < 0.5,
			fmt.Sprintf("port rule vs plaintext: hits=%d voip goodput=%.2f, want degraded", pp.PortHits, pp.Goodput[voip])},
		{pe.PortHits == 0 && pe.Goodput[voip] > 0.9,
			fmt.Sprintf("port rule vs encrypted: hits=%d voip goodput=%.2f, want blinded (paper's claim)", pe.PortHits, pe.Goodput[voip])},
		{pc.PortHits == 0 && pc.Goodput[voip] > 0.9,
			fmt.Sprintf("port rule vs cloaked: hits=%d voip goodput=%.2f, want cloak to add no port visibility", pc.PortHits, pc.Goodput[voip])},
		{dp.Accuracy >= 0.9,
			fmt.Sprintf("dpi vs plaintext: accuracy=%.2f, want >= 0.90", dp.Accuracy)},
		{de.Accuracy >= 0.9,
			fmt.Sprintf("dpi vs encrypted: accuracy=%.2f, want >= 0.90 (encryption alone does not defeat dpi)", de.Accuracy)},
		{de.Goodput[voip] < 0.4,
			fmt.Sprintf("dpi vs encrypted: voip goodput=%.2f, want < 0.40 (classified and dropped)", de.Goodput[voip])},
		{dc.Accuracy <= 0.4,
			fmt.Sprintf("dpi vs cloaked: accuracy=%.2f, want <= 0.40 (near chance for 4 classes)", dc.Accuracy)},
		{dc.Goodput[voip] > 0.7,
			fmt.Sprintf("dpi vs cloaked: voip goodput=%.2f, want restored > 0.70", dc.Goodput[voip])},
		{dc.CloakOverhead > 1,
			fmt.Sprintf("cloak overhead=%.2fx, want measured cost > 1x", dc.CloakOverhead)},
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("eval: arms race: %s", c.msg)
		}
	}
	return nil
}

// RunE7 is the registered arms-race experiment.
func RunE7() (*Result, error) {
	st, err := RunArms(ArmsConfig{Seed: 7})
	if err != nil {
		return nil, err
	}
	voip, video := int(trafficgen.AppVoIP), int(trafficgen.AppVideo)
	pp := st.Cell(ModePlaintext, AdvPortRule)
	pe := st.Cell(ModeEncrypted, AdvPortRule)
	dp := st.Cell(ModePlaintext, AdvDPI)
	de := st.Cell(ModeEncrypted, AdvDPI)
	dc := st.Cell(ModeCloaked, AdvDPI)
	rows := []Row{
		{Metric: "flows (4 app classes)", Paper: "-", Measured: fmt.Sprintf("%d", de.Flows),
			Note: fmt.Sprintf("classifier trained on %d held-out calibration flows", st.TrainedFlows)},
		{Metric: "port rule vs plaintext: voip goodput", Paper: "degraded",
			Measured: fmt.Sprintf("%.0f%%", 100*pp.Goodput[voip]),
			Note:     fmt.Sprintf("%d port matches: the strawman works on plaintext", pp.PortHits)},
		{Metric: "port rule vs encrypted: voip goodput", Paper: "restored",
			Measured: fmt.Sprintf("%.0f%%", 100*pe.Goodput[voip]),
			Note:     fmt.Sprintf("%d port matches: the paper's claim holds vs port rules", pe.PortHits)},
		{Metric: "dpi accuracy vs plaintext", Paper: "-",
			Measured: fmt.Sprintf("%.0f%%", 100*dp.Accuracy), Note: "statistical fingerprint, no ports needed"},
		{Metric: "dpi accuracy vs encrypted", Paper: ">= 90%",
			Measured: fmt.Sprintf("%.0f%%", 100*de.Accuracy),
			Note:     "sizes and timing survive encryption: the claim's limit"},
		{Metric: "dpi vs encrypted: voip goodput", Paper: "degraded",
			Measured: fmt.Sprintf("%.0f%%", 100*de.Goodput[voip]),
			Note:     fmt.Sprintf("%d classified-voip drops", de.DPIDrops)},
		{Metric: "dpi vs encrypted: video goodput", Paper: "throttled",
			Measured: fmt.Sprintf("%.0f%%", 100*de.Goodput[video]),
			Note:     fmt.Sprintf("%d token-bucket drops at 8 Mbps class rate", de.DPIPoliced)},
		{Metric: "dpi accuracy vs cloak", Paper: "<= 40% (chance=25%)",
			Measured: fmt.Sprintf("%.0f%%", 100*dc.Accuracy),
			Note:     "padding + tick grid + cover erase the fingerprint"},
		{Metric: "dpi vs cloak: voip goodput", Paper: "restored",
			Measured: fmt.Sprintf("%.0f%%", 100*dc.Goodput[voip]), Note: "classifier cannot find the target class"},
		{Metric: "cloak cost: wire bytes / real byte", Paper: "-",
			Measured: fmt.Sprintf("%.1fx", dc.CloakOverhead),
			Note:     fmt.Sprintf("+%v mean latency per frame", dc.CloakDelay.Round(time.Millisecond))},
	}
	return &Result{ID: "E7", Title: armsTitle, Rows: rows}, nil
}

const armsTitle = "Arms race: statistical DPI vs cloaking at fan-out scale"

// DPIBench is the fixture behind BenchmarkDPIClassify and
// BenchmarkCloakFrame: a classifier trained on one reduced arms run,
// held-out labeled vectors with the accuracy measured on them, and the
// cloak overhead measured on a cloaked run — the numbers
// scripts/benchjson records as dpi_accuracy_uncloaked and
// cloak_goodput_overhead.
type DPIBench struct {
	Cls *dpi.Classifier
	// Samples are held-out labeled vectors (encrypted, uncloaked).
	Samples []dpi.Sample
	// Accuracy is the classifier's score on Samples.
	Accuracy float64
	// CloakOverhead is wire bytes per real byte under the E7 cloak.
	CloakOverhead float64
}

// NewDPIBench builds the fixture from three reduced passive runs:
// train, held-out evaluation, and cloaked cost measurement.
func NewDPIBench() (*DPIBench, error) {
	cfg := ArmsConfig{FlowsPerClass: 8, Seed: 42, Duration: 2 * time.Second}
	cfg.fill()
	train, _, err := armsSamples(cfg, ModeEncrypted, 1)
	if err != nil {
		return nil, err
	}
	cls, err := dpi.Train(train)
	if err != nil {
		return nil, err
	}
	heldOut, _, err := armsSamples(cfg, ModeEncrypted, 9)
	if err != nil {
		return nil, err
	}
	correct := 0
	for i := range heldOut {
		if got, _ := cls.ClassifyVec(&heldOut[i].Vec); got == heldOut[i].Class {
			correct++
		}
	}
	_, cloaked, err := armsSamples(cfg, ModeCloaked, 10)
	if err != nil {
		return nil, err
	}
	return &DPIBench{
		Cls:           cls,
		Samples:       heldOut,
		Accuracy:      float64(correct) / float64(len(heldOut)),
		CloakOverhead: cloaked.cell.CloakOverhead,
	}, nil
}
