package eval

import (
	"reflect"
	"testing"
)

// TestE10RealProto runs the registered experiment end to end: real DNS,
// real net/http through the neutralizer under the E7-trained DPI tap,
// and the audit cells — all self-enforced by realProtoEnforce.
func TestE10RealProto(t *testing.T) {
	res, err := RunE10()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	t.Logf("\n%s", res)
}

// TestE10Deterministic is the seed-discipline check for the simnet
// bridge: the same config twice must produce identical stats — every
// latency, every classification, every audit verdict — even though real
// net/http goroutines ran on the OS scheduler in between.
func TestE10Deterministic(t *testing.T) {
	cfg := RealProtoConfig{Seed: 77, Clients: 2, Requests: 2, Trials: 6}
	a, err := RunRealProto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRealProto(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("two seeded runs diverged:\nrun1: %+v\nrun2: %+v", a, b)
	}
}
