package eval

// Observation wiring shared by the experiments. E6/E9 (metro) and E8
// (audit) can run with the full observability plane attached — an
// obs.Recorder ticking at every epoch barrier and an obs.FlightRecorder
// head-sampling packet events — and fold what was observed into the
// run's deterministic identity. ObsDigest condenses the recorded state
// (time-series rings, sampled-event set, final registry snapshot) into
// a few comparable words, so the worker-identity checks can assert
// "observation itself replays bit-identically" without hauling the
// rings around.

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"

	"netneutral/internal/netem"
	"netneutral/internal/obs"
)

// observation is one run's attached observability plane: the
// epoch-barrier recorder and the packet flight recorder, both living on
// the simulator's own registry.
type observation struct {
	rec *obs.Recorder
	fr  *obs.FlightRecorder
}

// attachObservation puts the full observability plane on sim before a
// run. The recorder samples every non-volatile family at epoch barriers
// (interval-gated on virtual time); the flight recorder samples 1-in-64
// packet events per shard stripe. Both are pure observers: attaching
// them must not change any run outcome, and what they record is itself
// bit-identical at every worker count.
func attachObservation(sim *netem.Simulator) *observation {
	rec := obs.NewRecorder(sim.Metrics(), obs.RecorderConfig{
		RingSize: 512, Interval: time.Millisecond,
	})
	rec.Register()
	sim.OnBarrier(func(now time.Time) { rec.Tick(now.UnixNano()) })
	fr := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 64, RingSize: 4096})
	fr.Register(sim.Metrics())
	sim.AttachFlightRecorder(fr)
	return &observation{rec: rec, fr: fr}
}

// attachTracing puts a deployment-shaped tracing recorder on sim: the
// deterministic flow sampler records every event of 1% of flows (the
// end-to-end journeys the span assembler consumes), and the remaining
// flows fall back to 1-in-64 head sampling. This is the always-on
// tracing posture the trace_overhead_pct benchmark check prices against
// the untraced metro run.
func attachTracing(sim *netem.Simulator) *obs.FlightRecorder {
	fr := obs.NewFlightRecorder(obs.FlightConfig{
		SampleEvery: 64, RingSize: 4096, SampleFlows: 0.01,
	})
	fr.Register(sim.Metrics())
	sim.AttachFlightRecorder(fr)
	return fr
}

// ObsDigest condenses what a run's observers recorded. Two observed
// runs of the same seed must produce equal digests at any worker count;
// E9 folds the digest into its identity key and the worker-identity
// tests compare digests directly.
type ObsDigest struct {
	// RecorderTicks counts barrier samples taken.
	RecorderTicks uint64
	// SeriesPoints totals retained ring points across all series.
	SeriesPoints uint64
	// RingsHash fingerprints every series name and (time, value) point.
	RingsHash uint64
	// FlightSeen and FlightSampled count packet events offered to and
	// retained by the flight recorder.
	FlightSeen, FlightSampled uint64
	// FlightHash fingerprints the merged sampled-event set in the
	// engine's canonical (time, shard, seq) order.
	FlightHash uint64
	// FinalHash fingerprints the final non-volatile registry snapshot:
	// every family name and merged value the run ended with.
	FinalHash uint64
}

// digest reduces the observation to its digest. Call at quiescence
// (after the run; for E8, after verdicts are counted, so the verdict
// families are covered by FinalHash).
func (o *observation) digest() ObsDigest {
	d := ObsDigest{
		RecorderTicks: o.rec.Ticks(),
		FlightSeen:    o.fr.Seen(),
	}

	h := newFNV()
	for _, s := range o.rec.Series() {
		h.str(s.Name)
		times, vals := s.Points()
		d.SeriesPoints += uint64(len(times))
		for i := range times {
			h.u64(uint64(times[i]))
			h.u64(math.Float64bits(vals[i]))
		}
	}
	d.RingsHash = h.sum()

	h = newFNV()
	evs := o.fr.Events()
	d.FlightSampled = uint64(len(evs))
	for _, e := range evs {
		h.u64(uint64(e.TimeNanos))
		h.u64(e.Flow)
		h.u64(e.Journey)
		h.u64(e.Seq)
		h.u64(uint64(uint32(e.Node))<<32 | uint64(uint32(e.Shard)))
		h.u64(uint64(uint32(e.Size))<<8 | uint64(e.Kind))
		// Span coverage: the per-hop attribution components and their
		// cause must replay bit-identically too.
		h.u64(uint64(e.QueueNanos))
		h.u64(uint64(e.SerializeNanos))
		h.u64(uint64(e.PropagateNanos))
		h.u64(uint64(e.PolicyNanos))
		h.u64(uint64(e.ProcNanos))
		h.u64(uint64(e.Cause)<<8 | uint64(e.Class))
	}
	d.FlightHash = h.sum()

	h = newFNV()
	for _, m := range o.rec.Registry().Snapshot().Metrics {
		if m.Volatile {
			continue // wall-clock families legitimately differ per run
		}
		h.str(m.Name)
		if m.Hist != nil {
			h.u64(m.Hist.Count)
			h.u64(m.Hist.Sum)
			continue
		}
		h.u64(math.Float64bits(m.Value))
	}
	d.FinalHash = h.sum()
	return d
}

// checkAttribution enforces the span attribution invariant on the
// flight recorder's merged events: every tagged-flow journey that was
// recorded end to end and lies wholly past the ring-eviction horizon
// must have its attributed components (queue, serialize, propagate,
// policy, proc) sum *exactly* — not approximately — to its end-to-end
// virtual delay. tagged == nil checks every flow. At least one journey
// must actually be checked, so the invariant cannot pass vacuously.
func checkAttribution(evs []obs.TraceRec, tagged map[uint64]bool, evicted uint64) error {
	// Eviction discards each stripe's oldest events, which can silently
	// clip a journey's middle hops while leaving its endpoints intact.
	// Only journeys starting at or after the horizon — the latest
	// per-stripe earliest retained timestamp — are provably unclipped.
	var horizon int64
	if evicted > 0 {
		earliest := make(map[int32]int64)
		for i := range evs {
			e := &evs[i]
			if t, ok := earliest[e.Shard]; !ok || e.TimeNanos < t {
				earliest[e.Shard] = e.TimeNanos
			}
		}
		for _, t := range earliest {
			if t > horizon {
				horizon = t
			}
		}
	}
	checked := 0
	for _, sp := range obs.AssembleSpans(evs) {
		if tagged != nil && !tagged[sp.Flow] {
			continue
		}
		for i := range sp.Journeys {
			j := &sp.Journeys[i]
			if !j.Complete() || j.Hops[0].TimeNanos < horizon {
				continue
			}
			if sum, e2e := j.AttrSumNanos(), j.EndToEndNanos(); sum != e2e {
				return fmt.Errorf("attribution invariant: flow %016x journey %d: components sum to %dns, end-to-end delay %dns",
					sp.Flow, j.ID, sum, e2e)
			}
			checked++
		}
	}
	if checked == 0 {
		return fmt.Errorf("attribution invariant: no complete tagged journey survived to check (evicted=%d)", evicted)
	}
	return nil
}

// key flattens the digest for identity-key comparison.
func (d *ObsDigest) key() [4]uint64 {
	if d == nil {
		return [4]uint64{}
	}
	return [4]uint64{d.RecorderTicks, d.RingsHash, d.FlightHash, d.FinalHash}
}

// fnv64 is a tiny FNV-1a accumulator behind the digest fingerprints.
type fnv64 uint64

func newFNV() *fnv64 { h := fnv64(14695981039346656037); return &h }

func (h *fnv64) bytes(b []byte) {
	const prime = 1099511628211
	v := uint64(*h)
	for _, c := range b {
		v = (v ^ uint64(c)) * prime
	}
	*h = fnv64(v)
}

// str hashes s with a terminator so adjacent fields cannot alias.
func (h *fnv64) str(s string) {
	h.bytes([]byte(s))
	h.bytes([]byte{0})
}

func (h *fnv64) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	h.bytes(b[:])
}

func (h *fnv64) sum() uint64 { return uint64(*h) }
