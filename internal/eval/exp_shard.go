// E5: the sharded data plane. The paper argues the neutralizer scales by
// anycast replication because it is stateless; this experiment runs the
// claim in-process, measuring forward-path throughput through a
// core.Pool at increasing worker counts, plus the zero-allocation
// scratch path against the allocating compatibility path. On a
// single-core host the worker sweep degenerates (time-slicing cannot
// beat one worker); the row notes record GOMAXPROCS so results stay
// interpretable.
package eval

import (
	"fmt"
	"runtime"
	"time"

	"netneutral/internal/core"
)

// shardBatchSources is the number of distinct outside sources in the E5
// batch: enough that FNV sharding spreads load across every worker.
const shardBatchSources = 64

// RunE5 measures ProcessBatch throughput as the worker count grows.
func RunE5() (*Result, error) {
	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	pkts, err := env.DataBatch(shardBatchSources, 256)
	if err != nil {
		return nil, err
	}
	res := &Result{ID: "E5", Title: "Sharded stateless data plane (anycast scaling in-process)"}

	// Serial baselines: the allocating Process path and the zero-alloc
	// scratch path, packet at a time.
	const serialPasses = 40
	rate := measureRate(serialPasses*len(pkts), func(i int) {
		env.Neut.Process(pkts[i%len(pkts)])
	})
	res.Rows = append(res.Rows, Row{
		Metric: "serial Process", Paper: "-", Measured: kpps(rate),
		Note: "allocating compatibility path",
	})
	scratch := core.NewScratch()
	rate = measureRate(serialPasses*len(pkts), func(i int) {
		if i%len(pkts) == 0 {
			scratch.Reset()
		}
		env.Neut.ProcessScratch(scratch, pkts[i%len(pkts)])
	})
	res.Rows = append(res.Rows, Row{
		Metric: "serial ProcessScratch", Paper: "-", Measured: kpps(rate),
		Note: "zero-alloc path, one worker",
	})

	// Worker sweep through the pool.
	var oneWorker float64
	for _, workers := range []int{1, 2, 4} {
		pool, err := core.NewPool(core.PoolConfig{Workers: workers, Config: env.NeutralizerConfig()})
		if err != nil {
			return nil, err
		}
		// Warm the buffer rings before timing.
		pool.ProcessBatch(pkts)
		const batches = 60
		start := time.Now()
		var dropped int
		for b := 0; b < batches; b++ {
			_, d := pool.ProcessBatch(pkts)
			dropped += d
		}
		el := time.Since(start).Seconds()
		pool.Close()
		if dropped != 0 {
			return nil, fmt.Errorf("eval: E5 dropped %d packets", dropped)
		}
		r := float64(batches*len(pkts)) / el
		if workers == 1 {
			oneWorker = r
		}
		note := fmt.Sprintf("batch=%d, GOMAXPROCS=%d", len(pkts), runtime.GOMAXPROCS(0))
		if workers > 1 && oneWorker > 0 {
			note = fmt.Sprintf("%.2fx of 1 worker, %s", r/oneWorker, note)
		}
		res.Rows = append(res.Rows, Row{
			Metric:   fmt.Sprintf("ProcessBatch %d worker(s)", workers),
			Paper:    "-",
			Measured: kpps(r),
			Note:     note,
		})
	}
	res.Rows = append(res.Rows, Row{
		Metric: "statelessness", Paper: "any replica serves any packet",
		Measured: "verified",
		Note:     "shard placement is a locality heuristic only (see core tests)",
	})
	return res, nil
}
