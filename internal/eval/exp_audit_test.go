package eval

import (
	"bytes"
	"testing"

	"netneutral/internal/audit"
)

// reducedAuditConfig is the CI-smoke-sized E8: every verdict must hold
// here too, since the smoke step and the bench fixture run this size.
func reducedAuditConfig(seed int64) AuditConfig {
	return AuditConfig{Seed: seed, Vantages: 8, InsideVantages: 2, Trials: 10}
}

// TestE8AuditReduced runs the audit matrix at reduced scale; RunAudit
// self-verifies every verdict, and the headline cells are re-asserted
// explicitly so a failure names the broken rung.
func TestE8AuditReduced(t *testing.T) {
	st, err := RunAudit(reducedAuditConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	if fpr := st.FalsePositiveRate(); fpr > 0.05 {
		t.Errorf("neutral false-positive rate = %.3f, want <= 0.05", fpr)
	}
	blatant := st.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved)
	if blatant.Summary.Power < 0.9 {
		t.Errorf("blatant dpi power = %.2f, want >= 0.90", blatant.Summary.Power)
	}
	if blatant.Summary.Localized != audit.SegmentBeyondBorder {
		t.Errorf("blatant dpi localized %v, want beyond-border", blatant.Summary.Localized)
	}
	if naive := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyNaive); naive.Summary.Power > 0.1 {
		t.Errorf("probe evasion vs naive bursts: power = %.2f, want defeated (~0)", naive.Summary.Power)
	}
	if inter := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyInterleaved); inter.Summary.Power < 0.9 {
		t.Errorf("probe evasion vs interleaved: power = %.2f, want >= 0.90", inter.Summary.Power)
	}
	if pe := st.Cell(ISPPortRule, ModeEncrypted, audit.StrategyInterleaved); pe.Summary.Discriminating {
		t.Error("port rule vs encrypted probes ruled discriminating; encryption should have restored neutrality")
	}
	if stealth := st.Cell(ISPDPIStealth, ModeEncrypted, audit.StrategyInterleaved); !stealth.Summary.Discriminating {
		t.Errorf("stealth dpi not convicted by aggregate (power %.2f)", stealth.Summary.Power)
	}
}

// TestE8SeedReplayBitIdentical is the -seed discipline check: two runs
// with the same config must produce byte-identical wire reports in
// every cell — the same bar PR 3 set for -arms.
func TestE8SeedReplayBitIdentical(t *testing.T) {
	cfg := AuditConfig{Seed: 11, Vantages: 4, InsideVantages: 2, Trials: 8}
	a, err := RunAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunAudit(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for c := range a.Cells {
		ca, cb := &a.Cells[c], &b.Cells[c]
		if len(ca.ReportWire) != len(cb.ReportWire) {
			t.Fatalf("cell %v/%v/%v: report counts differ", ca.ISP, ca.Mode, ca.Strategy)
		}
		for v := range ca.ReportWire {
			if !bytes.Equal(ca.ReportWire[v], cb.ReportWire[v]) {
				t.Fatalf("cell %v/%v/%v vantage %d: replay diverged (%d vs %d bytes)",
					ca.ISP, ca.Mode, ca.Strategy, v, len(ca.ReportWire[v]), len(cb.ReportWire[v]))
			}
		}
	}
}

// Hmm-proofing: the replay test above would pass trivially if Vantages
// 4 produced empty reports; pin that the wires carry real trials.
func TestE8ReportsCarryTrials(t *testing.T) {
	st, err := RunAudit(AuditConfig{Seed: 11, Vantages: 4, InsideVantages: 2, Trials: 8})
	if err != nil {
		t.Fatal(err)
	}
	cell := st.Cell(ISPNeutral, ModeEncrypted, audit.StrategyInterleaved)
	for v, w := range cell.ReportWire {
		r, err := audit.DecodeReport(w)
		if err != nil {
			t.Fatalf("vantage %d: %v", v, err)
		}
		if len(r.Trials) != 8 {
			t.Fatalf("vantage %d: %d trials on the wire, want 8", v, len(r.Trials))
		}
		if got := len(r.GoodputSamples(audit.RoleSuspect)); got != 8 {
			t.Fatalf("vantage %d: %d usable suspect samples, want 8", v, got)
		}
	}
}

// TestE8FullScale runs the registered experiment (which self-verifies
// every rung via verifyAudit).
func TestE8FullScale(t *testing.T) {
	if raceEnabled {
		t.Skip("full audit matrix is slow under race instrumentation")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runExp(t, "E8")
	if got := row(t, res, "probe-evading dpi vs naive bursts: power").Measured; got[0] != '0' {
		t.Errorf("naive power vs probe evasion = %s, want 0%%", got)
	}
	if got := row(t, res, "blatant dpi: localization").Measured; got != "beyond-border" {
		t.Errorf("localization = %s", got)
	}
}

func TestAuditBenchFixture(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	fix, err := NewAuditBench()
	if err != nil {
		t.Fatal(err)
	}
	if fix.Power < 0.9 {
		t.Errorf("fixture detection power = %.2f, want >= 0.90", fix.Power)
	}
	if fix.FPR > 0.05 {
		t.Errorf("fixture false-positive rate = %.3f, want <= 0.05", fix.FPR)
	}
	if len(fix.Report.Trials) == 0 {
		t.Fatal("fixture report empty")
	}
	if v := audit.Decide(fix.Report, audit.DecisionConfig{}); !v.Discriminated {
		t.Error("fixture report (blatant dpi vantage) not ruled discriminated")
	}
}
