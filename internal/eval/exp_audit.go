// E8: detecting discrimination. E7 closed the enforcement arms race
// (dpi vs cloak); E8 opens the *detection* one. The paper's design
// prevents discrimination, but a technical approach to net neutrality
// also needs end hosts to prove discrimination is happening — the
// Glasnost/"verifiable neutrality" line of work. E8 runs the active
// auditor (internal/audit) against a ladder of ISP behaviors, from
// honest through blatant throttling to stealthy throttlers built to
// defeat measurement (internal/dpi's partial, duty-cycled and
// probe-evading modes), and enforces:
//
//   - detection power >= 0.9 against blatant dpi throttling, with the
//     differential correctly localized beyond the supportive ISP's
//     border (outside vantages see it, inside vantages do not);
//   - false-positive rate <= 0.05 across every audit of the neutral
//     ISP;
//   - a port-rule ISP is detected on plaintext probes and measures
//     *neutral* on encrypted ones — the paper's claim, as seen from
//     the auditor's side;
//   - probe evasion (whitelisting young flows) defeats naive
//     Glasnost-style burst probing but not long-lived interleaved
//     app-shaped probing, the experiment's headline result;
//   - partial + duty-cycled stealth dilutes per-vantage power but the
//     cross-vantage aggregate still convicts.
package eval

import (
	"fmt"
	"math"
	mathrand "math/rand"
	"net/netip"
	"time"

	"netneutral/internal/audit"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/dpi"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// AuditISP enumerates the audited ISP behaviors.
type AuditISP uint8

// ISP behaviors, in ascending stealth.
const (
	// ISPNeutral forwards everything: the false-positive control.
	ISPNeutral AuditISP = iota
	// ISPPortRule drops 90% of packets to the suspect app's UDP port.
	ISPPortRule
	// ISPDPI classifies flows statistically and drops 90% of the
	// suspect class — blatant throttling.
	ISPDPI
	// ISPDPIStealth adds partial targeting (60% of flows) and a 50%
	// duty cycle to the dpi throttler.
	ISPDPIStealth
	// ISPDPIEvasion adds probe evasion: flows younger than twice the
	// naive probe burst are exempt from enforcement.
	ISPDPIEvasion
	// NumAuditISPs counts the behaviors.
	NumAuditISPs
)

func (i AuditISP) String() string {
	switch i {
	case ISPNeutral:
		return "neutral"
	case ISPPortRule:
		return "port-rule"
	case ISPDPI:
		return "dpi"
	case ISPDPIStealth:
		return "dpi+stealth"
	case ISPDPIEvasion:
		return "dpi+probe-evasion"
	default:
		return "isp?"
	}
}

// AuditConfig parameterizes E8; the zero value gets the registered
// experiment's defaults.
type AuditConfig struct {
	// Vantages is the number of outside vantage points (default 12).
	Vantages int
	// InsideVantages is the number of vantage pairs probing entirely
	// inside the supportive ISP (default 4) — the localization lever.
	InsideVantages int
	// Trials is the number of paired measurement windows per vantage
	// (default 12).
	Trials int
	// Window is the interleaved strategy's measured span per trial
	// (default 1s).
	Window time.Duration
	// NaivePackets is the naive strategy's per-burst packet count
	// (default 64).
	NaivePackets int
	// Seed drives every RNG in the experiment.
	Seed int64
	// Workers is how many threads execute each cell's sharded engine
	// (default 1; the audit outcome — report wire bytes included — is
	// bit-identical at every value).
	Workers int
	// Observe attaches the observability plane to every cell: the
	// engine's Recorder + FlightRecorder, each prober's counter families
	// (audit_probe_*_total) and the aggregate verdict tallies
	// (audit_verdicts_total), with the observation digest recorded in
	// AuditCell.Obs. Passive: report wire bytes stay bit-identical.
	Observe bool
}

func (c *AuditConfig) fill() {
	if c.Vantages <= 0 {
		c.Vantages = 12
	}
	if c.InsideVantages <= 0 {
		c.InsideVantages = 4
	}
	if c.Trials <= 0 {
		c.Trials = 12
	}
	if c.Window <= 0 {
		c.Window = time.Second
	}
	if c.NaivePackets <= 0 {
		c.NaivePackets = 64
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// suspectPort/controlPort are the plaintext probe ports: the suspect
// imitates the targeted app down to its canonical port; the control
// rides a port no rule list flags.
var suspectPort = trafficgen.AppVoIP.Port()

const controlPort = 443

// AuditCell is one (ISP, mode, strategy) audit outcome.
type AuditCell struct {
	ISP      AuditISP
	Mode     ArmsMode
	Strategy audit.Strategy

	// Summary is the cross-vantage aggregation (power, ruling,
	// localization, per-vantage verdicts).
	Summary audit.Summary
	// ReportWire holds each vantage's wire-encoded report, outside
	// vantages first — the bytes the aggregator decoded. A replay with
	// the same seed must reproduce them bit-identically.
	ReportWire [][]byte
	// SuspectGoodput/ControlGoodput are the outside vantages' median
	// per-trial goodput ratios, averaged across vantages (display).
	SuspectGoodput, ControlGoodput float64
	// Obs is the cell's observation digest (nil unless
	// AuditConfig.Observe).
	Obs *ObsDigest
}

// AuditStats is the full E8 outcome.
type AuditStats struct {
	Cfg   AuditConfig
	Cells []AuditCell
	// TrainedFlows is the calibration population behind the dpi
	// adversaries' classifier.
	TrainedFlows int
}

// Cell returns the run for an (ISP, mode, strategy) triple, or nil.
func (s *AuditStats) Cell(i AuditISP, m ArmsMode, st audit.Strategy) *AuditCell {
	for c := range s.Cells {
		if s.Cells[c].ISP == i && s.Cells[c].Mode == m && s.Cells[c].Strategy == st {
			return &s.Cells[c]
		}
	}
	return nil
}

// auditDPIDelay is the per-packet hold the dpi throttlers add on top of
// dropping: the policing delay the evidence trail must attribute, hop
// for hop, to the transit engine (verifyAudit matches it against the
// measured suspect-vs-control delay gap).
const auditDPIDelay = 5 * time.Millisecond

// auditPolicy builds the dpi enforcement for the given ISP behavior.
func auditPolicy(kind AuditISP, naivePkts int) dpi.Policy {
	var pol dpi.Policy
	p := dpi.ClassPolicy{DropProb: 0.9, Delay: auditDPIDelay}
	switch kind {
	case ISPDPIStealth:
		p.TargetFraction = 0.6
		p.DutyPeriod = 3 * time.Second
		p.DutyOn = 1500 * time.Millisecond
	case ISPDPIEvasion:
		p.MinFlowPkts = uint64(2 * naivePkts)
	}
	pol[dpi.ClassVoIP] = p
	return pol
}

// runAuditCell builds one fan-out world, runs every vantage's paired
// probe, and aggregates the wire-encoded reports.
func runAuditCell(cfg AuditConfig, kind AuditISP, mode ArmsMode, strat audit.Strategy, cls *dpi.Classifier, salt int64) (*AuditCell, error) {
	V, I, T := cfg.Vantages, cfg.InsideVantages, cfg.Trials

	// Node plan. Outside sources: one per (vantage, role) for the
	// interleaved strategy; one per (vantage, role, trial) for naive,
	// so every burst is a fresh flow even under the shim's 3-tuple flow
	// key. Hosts: probe targets for outside and inside vantages, then
	// inside probe sources on the same plan.
	outPerPair := 1
	if strat == audit.StrategyNaive {
		outPerPair = T
	}
	nOut := V * 2 * outPerPair
	outIdx := func(v, trial, role int) int {
		if strat == audit.StrategyNaive {
			return (v*T+trial)*2 + role
		}
		return v*2 + role
	}
	targetIdx := func(v, role int) int { return v*2 + role }         // outside targets
	inTargetIdx := func(i, role int) int { return V*2 + i*2 + role } // inside targets
	inSrcBase := V*2 + I*2                                           // inside sources
	inSrcIdx := func(i, trial, role int) int {
		if strat == audit.StrategyNaive {
			return inSrcBase + (i*T+trial)*2 + role
		}
		return inSrcBase + i*2 + role
	}
	nHosts := inSrcBase + I*2*outPerPair

	flows := (V + I) * 2
	qlen := 16 * flows
	if qlen < 512 {
		qlen = 512
	}
	link := netem.LinkConfig{Delay: time.Millisecond, QueueLen: qlen}
	// The fan-out is sharded — outside+transit / border / customer
	// subtree — with one edge covering every probe host, so each
	// vantage's two accounting sides (emission on the source shard,
	// delivery on the host shard) land on exactly one shard each.
	env, err := newFanoutEnv(cfg.Seed+salt, netem.FanoutSpec{
		Hosts: nHosts, Outside: nOut, HostsPerEdge: nHosts,
		HostLink: link, EdgeLink: link, TransitLink: link, OutsideLink: link,
		ShardSubtrees: true,
	})
	if err != nil {
		return nil, err
	}
	sim, f := env.Sim, env.Fan
	sim.SetWorkers(cfg.Workers)
	var o *observation
	if cfg.Observe {
		o = attachObservation(sim)
	}
	if mode != ModePlaintext {
		if err := env.attachNeutralizer(); err != nil {
			return nil, err
		}
	}

	// The audited ISP at the transit router.
	switch kind {
	case ISPPortRule:
		f.Transit.AddTransitHook(isp.NewPolicy(
			mathrand.New(mathrand.NewSource(cfg.Seed+salt+101)), isp.Rule{
				Name:   "target-suspect-port",
				Match:  isp.MatchUDPPort(suspectPort),
				Action: isp.Action{DropProb: 0.9},
			}).Hook())
	case ISPDPI, ISPDPIStealth, ISPDPIEvasion:
		engine := dpi.NewEngine(dpi.EngineConfig{
			Table:       dpi.Config{Classifier: cls, MinPackets: 8, ReclassifyEvery: 8},
			Policy:      auditPolicy(kind, cfg.NaivePackets),
			Rng:         mathrand.New(mathrand.NewSource(cfg.Seed + salt + 77)),
			StealthSeed: uint64(cfg.Seed + 13),
		})
		f.Transit.AddTransitHook(engine.Hook())
	}

	// Per-source shim credentials for encrypted probes (outside
	// sources only; inside probes stay plain — their path never leaves
	// the supportive ISP).
	type cred struct {
		sh  shim.Header
		dst netip.Addr
	}
	var creds []cred
	if mode != ModePlaintext {
		creds = make([]cred, nOut)
		for idx := 0; idx < nOut; idx++ {
			var v, role int
			if strat == audit.StrategyNaive {
				v, role = idx/2/T, idx%2
			} else {
				v, role = idx/2, idx%2
			}
			src := f.Outside[idx]
			dst := f.HostAddr(targetIdx(v, role))
			var nonce keys.Nonce
			nonce[0], nonce[1], nonce[7] = byte(idx>>8), byte(idx), 0xE8
			sh, err := env.shimCred(src.Addr(), dst, nonce, [8]byte{byte(idx), byte(idx >> 8), 0xA8}, 0)
			if err != nil {
				return nil, err
			}
			creds[idx] = cred{sh: sh, dst: dst}
		}
	}

	// With observation attached, vantage 0's probe flows are tagged so
	// the flight recorder keeps their journeys end to end: post-run, the
	// attribution invariant (hop components sum exactly to end-to-end
	// virtual delay) is enforced on those recorded spans, and the
	// policing evidence trail is folded into the summary.
	var taggedFlows map[uint64]bool
	if o != nil {
		taggedFlows = make(map[uint64]bool)
		for role := 0; role < 2; role++ {
			for t := 0; t < outPerPair; t++ {
				src := f.Outside[outIdx(0, t, role)].Addr()
				dst, proto := f.HostAddr(targetIdx(0, role)), uint8(wire.ProtoUDP)
				if mode != ModePlaintext {
					dst, proto = f.Spec.Anycast, wire.ProtoShim
				}
				k, err := netem.FlowKeyFrom(src, dst, proto)
				if err != nil {
					return nil, err
				}
				flow := netem.FlowKeyHash(k)
				o.fr.Tag(flow)
				taggedFlows[flow] = true
			}
		}
	}

	probers := make([]*audit.Prober, 0, V+I)
	probePort := func(role audit.Role) uint16 {
		if role == audit.RoleSuspect {
			return suspectPort
		}
		return controlPort
	}

	// Outside vantages. Every outside source lives on shard 0, so one
	// outside node anchors the whole vantage; each vantage gets its own
	// scratch buffer (vantages on different shards emit concurrently).
	for v := 0; v < V; v++ {
		vantage := v
		anchor := f.Outside[outIdx(v, 0, 0)]
		scratch := make([]byte, 2048)
		var p *audit.Prober
		emit := func(role audit.Role, trial int, size int) {
			if strat == audit.StrategyNaive && (trial < 0 || trial >= T) {
				return // naive bursts always carry their trial
			}
			// Unmeasured interleaved emissions (trial == NoTrial) are
			// still sent — the flow must stay alive — with NoTrial in
			// the payload so the receiver discards them; outIdx ignores
			// the trial for the interleaved strategy's fixed sources.
			payload := scratch[:size]
			audit.PutProbePayload(payload, role, trial, anchor.NowNanos())
			idx := outIdx(vantage, trial, int(role))
			src := f.Outside[idx]
			if mode == ModePlaintext {
				_ = src.Send(buildProbeUDP(src.Addr(), f.HostAddr(targetIdx(vantage, int(role))), probePort(role), payload))
				return
			}
			c := &creds[idx]
			pkt, err := buildShim(src.Addr(), f.Spec.Anycast, &c.sh, payload)
			if err != nil {
				return
			}
			_ = src.Send(pkt)
		}
		p, err = audit.NewProber(audit.ProberConfig{
			On:           anchor,
			Rng:          mathrand.New(mathrand.NewSource(cfg.Seed*1_000_003 + salt<<32 + int64(v))),
			Strategy:     strat,
			Trials:       T,
			Window:       cfg.Window,
			NaivePackets: cfg.NaivePackets,
			Suspect:      trafficgen.AppVoIP,
			Emit:         emit,
		})
		if err != nil {
			return nil, err
		}
		if o != nil {
			p.Instrument(sim.Metrics(), v)
		}
		probers = append(probers, p)
		for role := 0; role < 2; role++ {
			prober := p
			f.Hosts[targetIdx(v, role)].SetHandler(func(now time.Time, pkt []byte) {
				if payload := auditProbePayload(pkt); payload != nil {
					prober.HandleProbe(now, payload)
				}
			})
		}
	}

	// Inside vantages: host-to-host probes that never cross transit.
	// Anchored to the source host — every probe host shares the single
	// customer-subtree shard.
	for i := 0; i < I; i++ {
		vantage := i
		anchor := f.Hosts[inSrcIdx(i, 0, 0)]
		scratch := make([]byte, 2048)
		var p *audit.Prober
		emit := func(role audit.Role, trial int, size int) {
			if strat == audit.StrategyNaive && (trial < 0 || trial >= T) {
				return
			}
			payload := scratch[:size]
			audit.PutProbePayload(payload, role, trial, anchor.NowNanos())
			src := f.Hosts[inSrcIdx(vantage, trial, int(role))]
			dst := f.HostAddr(inTargetIdx(vantage, int(role)))
			_ = src.Send(buildProbeUDP(src.Addr(), dst, probePort(role), payload))
		}
		p, err = audit.NewProber(audit.ProberConfig{
			On:           anchor,
			Rng:          mathrand.New(mathrand.NewSource(cfg.Seed*1_000_003 + salt<<32 + int64(V+i))),
			Strategy:     strat,
			Trials:       T,
			Window:       cfg.Window,
			NaivePackets: cfg.NaivePackets,
			Suspect:      trafficgen.AppVoIP,
			Emit:         emit,
		})
		if err != nil {
			return nil, err
		}
		if o != nil {
			p.Instrument(sim.Metrics(), V+i)
		}
		probers = append(probers, p)
		for role := 0; role < 2; role++ {
			prober := p
			f.Hosts[inTargetIdx(i, role)].SetHandler(func(now time.Time, pkt []byte) {
				if payload := auditProbePayload(pkt); payload != nil {
					prober.HandleProbe(now, payload)
				}
			})
		}
	}

	for _, p := range probers {
		p.Run()
	}
	sim.Run()

	// Each vantage ships its report over the wire; the aggregator
	// decodes and rules. The encode/decode pair is load-bearing: it is
	// the surface FuzzAuditReport hardens.
	cell := &AuditCell{ISP: kind, Mode: mode, Strategy: strat}
	reports := make([]*audit.Report, 0, V+I)
	for vi, p := range probers {
		wireB, err := audit.AppendReport(nil, p.Report(vi, vi >= V))
		if err != nil {
			return nil, fmt.Errorf("eval: audit report encode: %w", err)
		}
		cell.ReportWire = append(cell.ReportWire, wireB)
		r, err := audit.DecodeReport(wireB)
		if err != nil {
			return nil, fmt.Errorf("eval: audit report decode: %w", err)
		}
		reports = append(reports, r)
	}
	var evidence []audit.EvidenceTrail
	if o != nil {
		evs := o.fr.Events()
		if err := checkAttribution(evs, taggedFlows, o.fr.Evicted()); err != nil {
			return nil, fmt.Errorf("eval: audit %v/%v/%v: %w", kind, mode, strat, err)
		}
		// keep == nil: every flow in the cell is probe traffic, so the
		// whole recorded event set backs the conviction.
		evidence = append(evidence, audit.BuildEvidence(evs, nil))
	}
	cell.Summary = audit.Summarize(reports, audit.DecisionConfig{}, 0, evidence...)
	for vi := 0; vi < V; vi++ {
		cell.SuspectGoodput += cell.Summary.Verdicts[vi].SuspectGoodput / float64(V)
		cell.ControlGoodput += cell.Summary.Verdicts[vi].ControlGoodput / float64(V)
	}
	if o != nil {
		// Tally the aggregator's rulings before digesting so FinalHash
		// covers the audit_verdicts_total families too.
		vm := audit.NewVerdictMetrics(sim.Metrics())
		for _, v := range cell.Summary.Verdicts {
			vm.Count(v)
		}
		d := o.digest()
		cell.Obs = &d
	}
	return cell, nil
}

// buildProbeUDP serializes a plaintext probe packet carrying payload.
func buildProbeUDP(src, dst netip.Addr, dport uint16, payload []byte) []byte {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: 40000, DstPort: dport},
	); err != nil {
		return nil
	}
	return buf.Bytes()
}

// auditProbePayload extracts the probe payload from a delivered packet:
// the UDP payload for plaintext probes, the shim payload for
// neutralized ones.
func auditProbePayload(pkt []byte) []byte {
	var ip wire.IPv4
	if ip.DecodeFromBytes(pkt) != nil {
		return nil
	}
	switch ip.Protocol {
	case wire.ProtoUDP:
		if len(ip.Payload()) > wire.UDPHeaderLen {
			return ip.Payload()[wire.UDPHeaderLen:]
		}
	case wire.ProtoShim:
		var sh shim.Header
		if sh.DecodeFromBytes(ip.Payload()) == nil {
			return sh.Payload()
		}
	}
	return nil
}

// RunAudit trains the dpi adversaries' classifier, sweeps the full
// (ISP x mode x strategy) matrix, and enforces the E8 verdicts.
func RunAudit(cfg AuditConfig) (*AuditStats, error) {
	cfg.fill()
	st := &AuditStats{Cfg: cfg}

	// The dpi adversaries share one classifier, trained the same way
	// E7's is: a passive labeled calibration run of encrypted
	// app-shaped flows.
	samples, _, err := armsSamples(ArmsConfig{FlowsPerClass: 8, Seed: cfg.Seed + 500, Duration: 2 * time.Second}, ModeEncrypted, 1)
	if err != nil {
		return nil, err
	}
	st.TrainedFlows = len(samples)
	cls, err := dpi.Train(samples)
	if err != nil {
		return nil, fmt.Errorf("eval: audit calibration: %w", err)
	}

	salt := int64(3)
	for kind := ISPNeutral; kind < NumAuditISPs; kind++ {
		for _, mode := range []ArmsMode{ModePlaintext, ModeEncrypted} {
			for _, strat := range []audit.Strategy{audit.StrategyNaive, audit.StrategyInterleaved} {
				cell, err := runAuditCell(cfg, kind, mode, strat, cls, salt)
				if err != nil {
					return nil, fmt.Errorf("eval: audit cell %v/%v/%v: %w", kind, mode, strat, err)
				}
				st.Cells = append(st.Cells, *cell)
				salt++
			}
		}
	}
	return st, verifyAudit(st)
}

// FalsePositiveRate is the fraction of individual vantage audits on the
// neutral ISP (every mode, strategy and vantage class) that wrongly
// ruled discrimination.
func (s *AuditStats) FalsePositiveRate() float64 {
	audits, positives := 0, 0
	for c := range s.Cells {
		cell := &s.Cells[c]
		if cell.ISP != ISPNeutral {
			continue
		}
		audits += cell.Summary.Outside + cell.Summary.Inside
		positives += cell.Summary.OutsideDetected + cell.Summary.InsideDetected
	}
	if audits == 0 {
		return 0
	}
	return float64(positives) / float64(audits)
}

// verifyAudit asserts the E8 contract; a violated verdict is an
// experiment failure, the same discipline E6/E7 use.
func verifyAudit(st *AuditStats) error {
	type check struct {
		ok  bool
		msg string
	}
	fpr := st.FalsePositiveRate()
	dpiEncInt := st.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved)
	dpiPlainInt := st.Cell(ISPDPI, ModePlaintext, audit.StrategyInterleaved)
	portPlainInt := st.Cell(ISPPortRule, ModePlaintext, audit.StrategyInterleaved)
	portEncInt := st.Cell(ISPPortRule, ModeEncrypted, audit.StrategyInterleaved)
	portEncNaive := st.Cell(ISPPortRule, ModeEncrypted, audit.StrategyNaive)
	stealthEncInt := st.Cell(ISPDPIStealth, ModeEncrypted, audit.StrategyInterleaved)
	evEncNaive := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyNaive)
	evEncInt := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyInterleaved)
	checks := []check{
		{fpr <= 0.05,
			fmt.Sprintf("neutral ISP false-positive rate %.3f, want <= 0.05", fpr)},
		{dpiEncInt.Summary.Power >= 0.9,
			fmt.Sprintf("blatant dpi vs encrypted interleaved probes: power %.2f, want >= 0.90", dpiEncInt.Summary.Power)},
		{dpiPlainInt.Summary.Power >= 0.9,
			fmt.Sprintf("blatant dpi vs plaintext interleaved probes: power %.2f, want >= 0.90", dpiPlainInt.Summary.Power)},
		{dpiEncInt.Summary.Localized == audit.SegmentBeyondBorder && dpiEncInt.Summary.InsideDetected == 0,
			fmt.Sprintf("blatant dpi localization: %v (inside detected %d), want beyond-border with clean inside paths",
				dpiEncInt.Summary.Localized, dpiEncInt.Summary.InsideDetected)},
		{portPlainInt.Summary.Power >= 0.9,
			fmt.Sprintf("port rule vs plaintext probes: power %.2f, want >= 0.90", portPlainInt.Summary.Power)},
		{portEncInt.Summary.Power <= 0.05 && portEncNaive.Summary.Power <= 0.05,
			fmt.Sprintf("port rule vs encrypted probes: power %.2f/%.2f, want ~0 (encryption restored neutrality — the paper's claim, audited)",
				portEncInt.Summary.Power, portEncNaive.Summary.Power)},
		{stealthEncInt.Summary.Discriminating,
			fmt.Sprintf("stealth dpi (60%% of flows, 50%% duty): aggregate did not convict (power %.2f)", stealthEncInt.Summary.Power)},
		{stealthEncInt.Summary.Power >= 0.3,
			fmt.Sprintf("stealth dpi: power %.2f, want >= 0.30 despite dilution", stealthEncInt.Summary.Power)},
		{evEncNaive.Summary.Power <= 0.1,
			fmt.Sprintf("probe-evading dpi vs naive bursts: power %.2f, want <= 0.10 (evasion defeats naive probing)", evEncNaive.Summary.Power)},
		{evEncInt.Summary.Power >= 0.9,
			fmt.Sprintf("probe-evading dpi vs interleaved probes: power %.2f, want >= 0.90 (long-lived app-shaped flows age past the whitelist)", evEncInt.Summary.Power)},
	}
	// With tracing attached, a conviction must carry its causal backing:
	// a non-empty evidence trail whose attributed policing delay matches
	// the delay gap the probes measured, while the neutral ISP's trail
	// stays empty.
	if dpiEncInt.Obs != nil {
		ev := dpiEncInt.Summary.Evidence
		var policed *audit.HopEvidence
		for i := range ev {
			if ev[i].Delayed > 0 && (policed == nil || ev[i].PolicyDelay > policed.PolicyDelay) {
				policed = &ev[i]
			}
		}
		checks = append(checks,
			check{len(ev) > 0 && ev.TotalDrops() > 0,
				fmt.Sprintf("blatant dpi conviction carries no drop evidence (%d sites, %d drops)", len(ev), ev.TotalDrops())},
			check{policed != nil,
				"blatant dpi conviction carries no policing-delay evidence"})
		var gap float64
		var n int
		for vi := 0; vi < dpiEncInt.Summary.Outside; vi++ {
			if v := &dpiEncInt.Summary.Verdicts[vi]; v.Discriminated {
				gap += v.SuspectDelay - v.ControlDelay
				n++
			}
		}
		if policed != nil && n > 0 {
			gap /= float64(n)
			attr := policed.MeanDelay().Seconds()
			checks = append(checks, check{gap > 0 && math.Abs(gap-attr) <= 0.5*attr,
				fmt.Sprintf("attributed policing delay %.1fms does not explain measured delay gap %.1fms",
					1e3*attr, 1e3*gap)})
		}
		if neutral := st.Cell(ISPNeutral, ModeEncrypted, audit.StrategyInterleaved); neutral != nil {
			checks = append(checks, check{len(neutral.Summary.Evidence) == 0,
				fmt.Sprintf("neutral ISP produced policing evidence (%d sites)", len(neutral.Summary.Evidence))})
		}
	}
	for _, c := range checks {
		if !c.ok {
			return fmt.Errorf("eval: audit: %s", c.msg)
		}
	}
	return nil
}

// RunE8 is the registered neutrality-audit experiment.
func RunE8() (*Result, error) {
	st, err := RunAudit(AuditConfig{Seed: 8})
	if err != nil {
		return nil, err
	}
	dpiEncInt := st.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved)
	dpiEncNaive := st.Cell(ISPDPI, ModeEncrypted, audit.StrategyNaive)
	portPlainInt := st.Cell(ISPPortRule, ModePlaintext, audit.StrategyInterleaved)
	portEncInt := st.Cell(ISPPortRule, ModeEncrypted, audit.StrategyInterleaved)
	stealthEncInt := st.Cell(ISPDPIStealth, ModeEncrypted, audit.StrategyInterleaved)
	evEncNaive := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyNaive)
	evEncInt := st.Cell(ISPDPIEvasion, ModeEncrypted, audit.StrategyInterleaved)
	pow := func(c *AuditCell) string {
		return fmt.Sprintf("%.0f%% (%d/%d vantages)", 100*c.Summary.Power, c.Summary.OutsideDetected, c.Summary.Outside)
	}
	rows := []Row{
		{Metric: "vantages (outside + inside)", Paper: "-",
			Measured: fmt.Sprintf("%d + %d", st.Cfg.Vantages, st.Cfg.InsideVantages),
			Note:     fmt.Sprintf("%d paired trials each; dpi classifier trained on %d calibration flows", st.Cfg.Trials, st.TrainedFlows)},
		{Metric: "neutral ISP: false-positive rate", Paper: "<= 5%",
			Measured: fmt.Sprintf("%.1f%%", 100*st.FalsePositiveRate()),
			Note:     "every mode, strategy and vantage class"},
		{Metric: "port rule vs plaintext probes: power", Paper: "-",
			Measured: pow(portPlainInt), Note: "suspect rides the app's real port; rule fires; audit convicts"},
		{Metric: "port rule vs encrypted probes: power", Paper: "0 (restored)",
			Measured: pow(portEncInt), Note: "encryption removed the discrimination: the auditor confirms the paper's claim"},
		{Metric: "blatant dpi throttle: power", Paper: ">= 90%",
			Measured: pow(dpiEncInt),
			Note: fmt.Sprintf("suspect goodput %.0f%% vs control %.0f%%",
				100*dpiEncInt.SuspectGoodput, 100*dpiEncInt.ControlGoodput)},
		{Metric: "blatant dpi: localization", Paper: "beyond border",
			Measured: dpiEncInt.Summary.Localized.String(),
			Note: fmt.Sprintf("inside vantages detected %d/%d: differential only crosses transit",
				dpiEncInt.Summary.InsideDetected, dpiEncInt.Summary.Inside)},
		{Metric: "blatant dpi vs naive bursts: power", Paper: "-",
			Measured: pow(dpiEncNaive), Note: "burst probing suffices against an unsophisticated throttler"},
		{Metric: "stealth dpi (60% flows, 50% duty): power", Paper: "diluted",
			Measured: pow(stealthEncInt),
			Note:     fmt.Sprintf("aggregate convicts: %v (threshold %.0f%%)", stealthEncInt.Summary.Discriminating, 100*audit.DefaultAggregationThreshold)},
		{Metric: "probe-evading dpi vs naive bursts: power", Paper: "~0 (defeated)",
			Measured: pow(evEncNaive), Note: "young-flow whitelist lets short Glasnost-style bursts through clean"},
		{Metric: "probe-evading dpi vs interleaved probes: power", Paper: ">= 90%",
			Measured: pow(evEncInt), Note: "long-lived app-shaped flows age past the whitelist: the headline result"},
	}
	return &Result{ID: "E8", Title: auditTitle, Rows: rows}, nil
}

const auditTitle = "Neutrality audit: differential probing vs stealthy throttling"

// AuditBench is the fixture behind BenchmarkAuditTrial: one reduced E8
// run's measured detection power (blatant dpi, encrypted interleaved
// probes) and neutral-ISP false-positive rate — the numbers
// scripts/benchjson records as audit_detection_power and
// audit_false_positive_rate — plus one blatant-dpi vantage report for
// the per-decision benchmark op.
type AuditBench struct {
	// Power is detection power against blatant dpi throttling.
	Power float64
	// FPR is the neutral-ISP false-positive rate.
	FPR float64
	// Report is one outside vantage's decoded report from the blatant
	// dpi cell.
	Report *audit.Report
}

// NewAuditBench runs the reduced audit matrix once and extracts the
// fixture.
func NewAuditBench() (*AuditBench, error) {
	st, err := RunAudit(AuditConfig{Seed: 7, Vantages: 8, InsideVantages: 2, Trials: 10})
	if err != nil {
		return nil, err
	}
	cell := st.Cell(ISPDPI, ModeEncrypted, audit.StrategyInterleaved)
	// Pick a vantage that was actually ruled discriminated: the E8
	// contract guarantees power >= 0.9, not that vantage 0 detected.
	idx := 0
	for v := range cell.Summary.Verdicts {
		if cell.Summary.Verdicts[v].Discriminated {
			idx = v
			break
		}
	}
	r, err := audit.DecodeReport(cell.ReportWire[idx])
	if err != nil {
		return nil, err
	}
	return &AuditBench{Power: cell.Summary.Power, FPR: st.FalsePositiveRate(), Report: r}, nil
}
