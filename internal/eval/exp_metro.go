// E6: the metro-scale engine experiment. Every paper scenario runs on
// the netem substrate, so the substrate's own throughput bounds the
// scenario sizes we can explore. E6 stamps out the paper's Figure-1
// shape at metro scale with netem.BuildFanout — one discriminatory
// transit network in front of one supportive ISP with 10,000 customer
// hosts — attaches the real stateless neutralizer at the border, pushes
// open-loop shim traffic through it, and reports the engine's
// sim-events/sec and forwarded packets/sec alongside the scenario-level
// verdicts (deliveries, classifier hits).
package eval

import (
	"fmt"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/shim"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// MetroConfig parameterizes the metro-scale run; the zero value is
// filled with the E6 defaults.
type MetroConfig struct {
	// Hosts is the customer host count (default 10000).
	Hosts int
	// Seed drives the simulator PRNG.
	Seed int64
	// Duration is the simulated time to run traffic for (default 2s).
	Duration time.Duration
	// RatePps is the open-loop offered load in packets per simulated
	// second (default 50000).
	RatePps float64
}

func (c *MetroConfig) fill() {
	if c.Hosts <= 0 {
		c.Hosts = 10000
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.RatePps <= 0 {
		c.RatePps = 50000
	}
}

// MetroStats is the outcome of a metro-scale run.
type MetroStats struct {
	Hosts          int
	Sent           int
	Delivered      uint64
	Forwarded      uint64
	Dropped        uint64
	ClassifierHits uint64
	SimEvents      uint64
	BuildTime      time.Duration
	RunTime        time.Duration // wall clock of the event loop
	EventsPerSec   float64       // SimEvents / RunTime
	ForwardPps     float64       // Forwarded / RunTime
	DeliveredPps   float64       // Delivered / RunTime
	PoolAllocated  uint64
	PoolGets       uint64
}

// metroWorld is the shared substrate of RunMetro and MetroBench: the
// fan-out topology with the real stateless neutralizer attached at the
// border on the zero-alloc scratch path, plus one pre-built shim data
// packet per customer host (the neutralizer re-derives the session key
// from (epoch, nonce, src) and decrypts the hidden per-host
// destination).
type metroWorld struct {
	sim       *netem.Simulator
	fan       *netem.Fanout
	templates [][]byte
}

func buildMetroWorld(seed int64, hosts int, link netem.LinkConfig) (*metroWorld, error) {
	sim := netem.NewSimulator(benchStart, seed)
	f, err := netem.BuildFanout(sim, netem.FanoutSpec{
		Hosts: hosts, OutsideLink: link, TransitLink: link, EdgeLink: link,
	})
	if err != nil {
		return nil, err
	}
	sched := keys.NewSchedule(aesutil.Key{7}, benchStart, time.Hour)
	neut, err := core.New(core.Config{
		Schedule:   sched,
		Anycast:    f.Spec.Anycast,
		IsCustomer: f.CustomerNet.Contains,
		Clock:      sim.Now,
	})
	if err != nil {
		return nil, err
	}
	AttachNeutralizerScratch(f.Border, neut)

	src := f.OutsideAddr(0)
	epoch := sched.EpochAt(sim.Now())
	nonce := keys.Nonce{0xE6, 1}
	ks, err := sched.SessionKey(epoch, nonce, src)
	if err != nil {
		return nil, err
	}
	payload := make([]byte, 64)
	templates := make([][]byte, hosts)
	for i := range templates {
		blk, err := aesutil.EncryptAddr(ks, f.HostAddr(i), [8]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if err != nil {
			return nil, err
		}
		templates[i], err = buildShim(src, f.Spec.Anycast, &shim.Header{
			Type: shim.TypeData, InnerProto: wire.ProtoUDP,
			Epoch: epoch, Nonce: nonce, HiddenAddr: blk,
		}, payload)
		if err != nil {
			return nil, err
		}
	}
	return &metroWorld{sim: sim, fan: f, templates: templates}, nil
}

// RunMetro builds the fan-out world, attaches a neutralizer at the
// border and a (futile) targeted classifier at the transit router, and
// drives cfg.RatePps of neutralized traffic from one outside source
// toward all cfg.Hosts customers for cfg.Duration of virtual time.
func RunMetro(cfg MetroConfig) (*MetroStats, error) {
	cfg.fill()
	buildStart := time.Now()
	w, err := buildMetroWorld(cfg.Seed, cfg.Hosts, netem.LinkConfig{})
	if err != nil {
		return nil, err
	}
	sim, f := w.sim, w.fan

	// The discriminatory transit tries to target one customer by
	// address; neutralized traffic never names it.
	policy := isp.NewPolicy(sim.Rand(), isp.Rule{
		Name:   "target-customer",
		Match:  isp.MatchDstAddr(f.HostAddr(0)),
		Action: isp.Action{DropProb: 1},
	})
	f.Transit.AddTransitHook(policy.Hook())

	delivered := f.CountDeliveries()
	st := &MetroStats{Hosts: cfg.Hosts, BuildTime: time.Since(buildStart)}

	st.Sent = trafficgen.OpenLoop{RatePps: cfg.RatePps}.Run(
		sim, cfg.Duration, trafficgen.CyclingSender(f.Outside[0], w.templates))

	runStart := time.Now()
	sim.Run()
	st.RunTime = time.Since(runStart)

	st.Delivered = *delivered
	st.Forwarded = sim.Forwarded()
	st.Dropped = sim.Dropped()
	st.ClassifierHits = policy.Hits("target-customer")
	st.SimEvents = sim.EventsProcessed()
	st.PoolAllocated, st.PoolGets = sim.PoolStats()
	if sec := st.RunTime.Seconds(); sec > 0 {
		st.EventsPerSec = float64(st.SimEvents) / sec
		st.ForwardPps = float64(st.Forwarded) / sec
		st.DeliveredPps = float64(st.Delivered) / sec
	}
	if st.Delivered != uint64(st.Sent) {
		return st, fmt.Errorf("eval: metro delivered %d of %d packets (dropped %d)",
			st.Delivered, st.Sent, st.Dropped)
	}
	// A firing classifier means neutralized packets named a customer —
	// the exact regression the CI smoke step exists to catch.
	if st.ClassifierHits != 0 {
		return st, fmt.Errorf("eval: transit classifier fired %d times on neutralized traffic",
			st.ClassifierHits)
	}
	return st, nil
}

// RunE6 is the registered 10k-host experiment.
func RunE6() (*Result, error) {
	st, err := RunMetro(MetroConfig{Seed: 66})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E6", Title: "Metro-scale emulation (10k customers, one neutralizer domain)", Rows: []Row{
		{Metric: "customer hosts", Paper: "-", Measured: fmt.Sprintf("%d", st.Hosts),
			Note: fmt.Sprintf("%d-node fan-out built in %v", st.Hosts, st.BuildTime.Round(time.Millisecond))},
		{Metric: "neutralized packets delivered", Paper: "all",
			Measured: fmt.Sprintf("%d/%d", st.Delivered, st.Sent), Note: "open-loop load, every customer reached"},
		{Metric: "classifier hits at transit", Paper: "0",
			Measured: fmt.Sprintf("%d", st.ClassifierHits), Note: "address-targeting rule cannot fire"},
		{Metric: "sim events/sec", Paper: "-",
			Measured: fmt.Sprintf("%.0f", st.EventsPerSec),
			Note:     fmt.Sprintf("%d events in %v wall", st.SimEvents, st.RunTime.Round(time.Millisecond))},
		{Metric: "packets forwarded/sec", Paper: "-",
			Measured: fmt.Sprintf("%.0f", st.ForwardPps),
			Note:     fmt.Sprintf("%d forwarding hops", st.Forwarded)},
		{Metric: "pooled buffers allocated", Paper: "-",
			Measured: fmt.Sprintf("%d", st.PoolAllocated),
			Note:     fmt.Sprintf("for %d checkouts (recycled, not copied per hop)", st.PoolGets)},
	}}, nil
}

// MetroBench is the reusable fixture behind BenchmarkNetemMetro: the
// 10k-host world is built once, then bursts of neutralized traffic are
// pushed through it per benchmark op.
type MetroBench struct {
	sim       *netem.Simulator
	fan       *netem.Fanout
	templates [][]byte
	burst     int
	next      int
	delivered *uint64
	expected  uint64
}

// NewMetroBench builds a fan-out of the given size whose link queues
// absorb same-instant bursts of burst packets.
func NewMetroBench(hosts, burst int) (*MetroBench, error) {
	w, err := buildMetroWorld(1, hosts,
		netem.LinkConfig{Delay: time.Millisecond, QueueLen: 2 * burst})
	if err != nil {
		return nil, err
	}
	return &MetroBench{
		sim: w.sim, fan: w.fan, templates: w.templates, burst: burst,
		delivered: w.fan.CountDeliveries(),
	}, nil
}

// RunBurst injects one burst and drains the event loop, verifying every
// packet reached its customer.
func (m *MetroBench) RunBurst() error {
	for i := 0; i < m.burst; i++ {
		p := m.sim.NewPacket(m.templates[m.next])
		m.next = (m.next + 1) % len(m.templates)
		if err := m.fan.Outside[0].SendPacket(p); err != nil {
			return err
		}
	}
	m.sim.Run()
	m.expected += uint64(m.burst)
	if *m.delivered != m.expected {
		return fmt.Errorf("eval: metro burst delivered %d, want %d", *m.delivered, m.expected)
	}
	return nil
}

// Counters exposes the engine counters the benchmark reports.
func (m *MetroBench) Counters() (events, forwarded uint64) {
	return m.sim.EventsProcessed(), m.sim.Forwarded()
}

// AttachNeutralizerScratch wires a core.Neutralizer into a netem node on
// the zero-allocation scratch path: shim packets delivered to the node
// are processed and the outputs sent back into the fabric (which copies
// them into pooled buffers before the next Reset).
func AttachNeutralizerScratch(node *netem.Node, n *core.Neutralizer) {
	s := core.NewScratch()
	node.SetHandler(func(now time.Time, pkt []byte) {
		s.Reset()
		outs, err := n.ProcessScratch(s, pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			_ = node.Send(o.Pkt)
		}
	})
}
