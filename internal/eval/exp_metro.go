// E6: the metro-scale engine experiment. Every paper scenario runs on
// the netem substrate, so the substrate's own throughput bounds the
// scenario sizes we can explore. E6 stamps out the paper's Figure-1
// shape at metro scale with netem.BuildFanout — one discriminatory
// transit network in front of one supportive ISP with 10,000 customer
// hosts — attaches the real stateless neutralizer at the border, pushes
// open-loop shim traffic through it, and reports the engine's
// sim-events/sec and forwarded packets/sec alongside the scenario-level
// verdicts (deliveries, classifier hits).
//
// The fan-out is built sharded (netem.FanoutSpec.ShardSubtrees): the
// outside world and transit in shard 0, the neutralizer border in shard
// 1, one shard per customer subtree. MetroConfig.Workers chooses how
// many threads execute the shards; with a fixed seed the outcome is
// bit-identical at every worker count (E9 sweeps this).
package eval

import (
	"fmt"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/isp"
	"netneutral/internal/netem"
	"netneutral/internal/trafficgen"
	"netneutral/internal/wire"
)

// MetroConfig parameterizes the metro-scale run; the zero value is
// filled with the E6 defaults.
type MetroConfig struct {
	// Hosts is the customer host count (default 10000).
	Hosts int
	// Seed drives the simulator PRNG.
	Seed int64
	// Duration is the simulated time to run traffic for (default 2s).
	Duration time.Duration
	// RatePps is the open-loop offered load in packets per simulated
	// second (default 50000) from the outside source through the
	// neutralizer.
	RatePps float64
	// LocalPps, when positive, adds intra-subtree chatter: hosts talk
	// to a neighbor under the same edge at this aggregate rate. This is
	// the load component that lives entirely inside the customer
	// shards — the parallel-scaling experiments (E9, the parallel
	// benchmark) use it to model a metro whose hosts are not idle.
	LocalPps float64
	// Workers is how many threads execute the sharded engine
	// (default 1; results are identical at any value).
	Workers int
	// Observe attaches the full observability plane — an epoch-barrier
	// Recorder and a packet FlightRecorder on the sim's registry — and
	// fills MetroStats.Obs with the observation digest. Observation is
	// passive: every deterministic outcome, including the digest itself,
	// stays bit-identical at any worker count.
	Observe bool
	// Attach, if set, runs against the built simulator before any
	// traffic is scheduled. neutsim's -metrics flag uses it to mount a
	// publishing Recorder, FlightRecorder and HTTP exporters on the
	// run's own registry. Attached observers must follow the OnBarrier
	// contract (never mutate sim state).
	Attach func(*netem.Simulator)
}

func (c *MetroConfig) fill() {
	if c.Hosts <= 0 {
		c.Hosts = 10000
	}
	if c.Duration <= 0 {
		c.Duration = 2 * time.Second
	}
	if c.RatePps <= 0 {
		c.RatePps = 50000
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
}

// MetroStats is the outcome of a metro-scale run.
type MetroStats struct {
	Hosts   int
	Shards  int
	Workers int
	// Sent counts neutralized packets from the outside source;
	// LocalSent counts intra-subtree host chatter.
	Sent           int
	LocalSent      int
	Delivered      uint64
	Forwarded      uint64
	Dropped        uint64
	ClassifierHits uint64
	SimEvents      uint64
	BuildTime      time.Duration
	RunTime        time.Duration // wall clock of the event loop
	EventsPerSec   float64       // SimEvents / RunTime
	ForwardPps     float64       // Forwarded / RunTime
	DeliveredPps   float64       // Delivered / RunTime
	PoolAllocated  uint64
	PoolGets       uint64
	// Obs is the observation digest (nil unless MetroConfig.Observe).
	Obs *ObsDigest
}

// metroWorld is the shared substrate of RunMetro and MetroBench: the
// sharded fan-out with the real stateless neutralizer attached at the
// border on the zero-alloc scratch path, plus one pre-built shim data
// packet per customer host (the neutralizer re-derives the session key
// from (epoch, nonce, src) and decrypts the hidden per-host
// destination).
type metroWorld struct {
	env       *fanoutEnv
	sim       *netem.Simulator
	fan       *netem.Fanout
	templates [][]byte
}

func buildMetroWorld(seed int64, hosts, workers int, link netem.LinkConfig) (*metroWorld, error) {
	env, err := newFanoutEnv(seed, netem.FanoutSpec{
		Hosts: hosts, OutsideLink: link, TransitLink: link, EdgeLink: link,
		ShardSubtrees: true,
	})
	if err != nil {
		return nil, err
	}
	env.Sim.SetWorkers(workers)
	if err := env.attachNeutralizer(); err != nil {
		return nil, err
	}

	src := env.Fan.OutsideAddr(0)
	nonce := keys.Nonce{0xE6, 1}
	payload := make([]byte, 64)
	templates := make([][]byte, hosts)
	for i := range templates {
		sh, err := env.shimCred(src, env.Fan.HostAddr(i), nonce,
			[8]byte{byte(i), byte(i >> 8), byte(i >> 16)}, wire.ProtoUDP)
		if err != nil {
			return nil, err
		}
		templates[i], err = buildShim(src, env.Fan.Spec.Anycast, &sh, payload)
		if err != nil {
			return nil, err
		}
	}
	return &metroWorld{env: env, sim: env.Sim, fan: env.Fan, templates: templates}, nil
}

// hostNeighbor returns the same-edge neighbor of host i (the peer of
// its intra-subtree chatter), or -1 for a single-host edge.
func hostNeighbor(i, hosts, hostsPerEdge int) int {
	if j := i + 1; j < hosts && i/hostsPerEdge == j/hostsPerEdge {
		return j
	}
	if j := i - 1; j >= 0 && i/hostsPerEdge == j/hostsPerEdge {
		return j
	}
	return -1
}

// chatterSenders prebuilds the intra-subtree chatter wiring: for each
// host with a same-edge neighbor, a pooled template packet to that
// neighbor and a sender anchored to the host's node (so emissions run
// on the host's shard). One definition serves both the E9 experiment
// (localChatter) and the parallel benchmark fixture, so the benchmark
// workload cannot drift from the experiment it measures.
func chatterSenders(f *netem.Fanout) (nodes []*netem.Node, sends []func(seq uint64)) {
	payload := make([]byte, 40)
	for i, host := range f.Hosts {
		j := hostNeighbor(i, len(f.Hosts), f.Spec.HostsPerEdge)
		if j < 0 {
			continue // single-host edge: nobody to talk to
		}
		tmpl := buildProbeUDP(f.HostAddr(i), f.HostAddr(j), 9000, payload)
		nodes = append(nodes, host)
		sends = append(sends, trafficgen.CyclingSender(host, [][]byte{tmpl}))
	}
	return nodes, sends
}

// localChatter schedules the intra-subtree host-to-host load for
// duration d at the given aggregate rate. Returns the number of packets
// that will be sent.
func localChatter(f *netem.Fanout, pps float64, d time.Duration) int {
	if pps <= 0 {
		return 0
	}
	perHost := pps / float64(len(f.Hosts))
	nodes, sends := chatterSenders(f)
	sent := 0
	for i, node := range nodes {
		sent += trafficgen.OpenLoop{RatePps: perHost}.Run(node, d, sends[i])
	}
	return sent
}

// RunMetro builds the fan-out world, attaches a neutralizer at the
// border and a (futile) targeted classifier at the transit router, and
// drives cfg.RatePps of neutralized traffic from one outside source
// toward all cfg.Hosts customers for cfg.Duration of virtual time,
// plus cfg.LocalPps of intra-subtree chatter.
func RunMetro(cfg MetroConfig) (*MetroStats, error) {
	cfg.fill()
	buildStart := time.Now()
	w, err := buildMetroWorld(cfg.Seed, cfg.Hosts, cfg.Workers, netem.LinkConfig{})
	if err != nil {
		return nil, err
	}
	sim, f := w.sim, w.fan
	var o *observation
	if cfg.Observe {
		o = attachObservation(sim)
	}
	if cfg.Attach != nil {
		cfg.Attach(sim)
	}

	// The discriminatory transit tries to target one customer by
	// address; neutralized traffic never names it. The policy runs at
	// the transit router — shard 0 — so it draws from shard 0's RNG.
	policy := isp.NewPolicy(sim.Rand(), isp.Rule{
		Name:   "target-customer",
		Match:  isp.MatchDstAddr(f.HostAddr(0)),
		Action: isp.Action{DropProb: 1},
	})
	f.Transit.AddTransitHook(policy.Hook())

	delivered := f.CountDeliveries()
	st := &MetroStats{
		Hosts: cfg.Hosts, Shards: sim.ShardCount(), Workers: cfg.Workers,
		BuildTime: time.Since(buildStart),
	}

	st.Sent = trafficgen.OpenLoop{RatePps: cfg.RatePps}.Run(
		f.Outside[0], cfg.Duration, trafficgen.CyclingSender(f.Outside[0], w.templates))
	st.LocalSent = localChatter(f, cfg.LocalPps, cfg.Duration)

	runStart := time.Now()
	sim.Run()
	st.RunTime = time.Since(runStart)

	st.Delivered = delivered.Total()
	st.Forwarded = sim.Forwarded()
	st.Dropped = sim.Dropped()
	st.ClassifierHits = policy.Hits("target-customer")
	st.SimEvents = sim.EventsProcessed()
	st.PoolAllocated, st.PoolGets = sim.PoolStats()
	if o != nil {
		d := o.digest()
		st.Obs = &d
	}
	if sec := st.RunTime.Seconds(); sec > 0 {
		st.EventsPerSec = float64(st.SimEvents) / sec
		st.ForwardPps = float64(st.Forwarded) / sec
		st.DeliveredPps = float64(st.Delivered) / sec
	}
	want := uint64(st.Sent + st.LocalSent)
	if st.Delivered != want {
		return st, fmt.Errorf("eval: metro delivered %d of %d packets (dropped %d)",
			st.Delivered, want, st.Dropped)
	}
	// A firing classifier means neutralized packets named a customer —
	// the exact regression the CI smoke step exists to catch.
	if st.ClassifierHits != 0 {
		return st, fmt.Errorf("eval: transit classifier fired %d times on neutralized traffic",
			st.ClassifierHits)
	}
	return st, nil
}

// RunE6 is the registered 10k-host experiment.
func RunE6() (*Result, error) {
	st, err := RunMetro(MetroConfig{Seed: 66})
	if err != nil {
		return nil, err
	}
	return &Result{ID: "E6", Title: "Metro-scale emulation (10k customers, one neutralizer domain)", Rows: []Row{
		{Metric: "customer hosts", Paper: "-", Measured: fmt.Sprintf("%d", st.Hosts),
			Note: fmt.Sprintf("%d-node fan-out (%d shards) built in %v", st.Hosts, st.Shards, st.BuildTime.Round(time.Millisecond))},
		{Metric: "neutralized packets delivered", Paper: "all",
			Measured: fmt.Sprintf("%d/%d", st.Delivered, st.Sent), Note: "open-loop load, every customer reached"},
		{Metric: "classifier hits at transit", Paper: "0",
			Measured: fmt.Sprintf("%d", st.ClassifierHits), Note: "address-targeting rule cannot fire"},
		{Metric: "sim events/sec", Paper: "-",
			Measured: fmt.Sprintf("%.0f", st.EventsPerSec),
			Note:     fmt.Sprintf("%d events in %v wall", st.SimEvents, st.RunTime.Round(time.Millisecond))},
		{Metric: "packets forwarded/sec", Paper: "-",
			Measured: fmt.Sprintf("%.0f", st.ForwardPps),
			Note:     fmt.Sprintf("%d forwarding hops", st.Forwarded)},
		{Metric: "pooled buffers allocated", Paper: "-",
			Measured: fmt.Sprintf("%d", st.PoolAllocated),
			Note:     fmt.Sprintf("for %d checkouts (recycled, not copied per hop)", st.PoolGets)},
	}}, nil
}

// MetroBench is the reusable fixture behind BenchmarkNetemMetro: the
// 10k-host world is built once, then bursts of neutralized traffic are
// pushed through it per benchmark op.
type MetroBench struct {
	sim       *netem.Simulator
	fan       *netem.Fanout
	templates [][]byte
	burst     int
	next      int
	delivered *netem.DeliveryCount
	expected  uint64
}

// NewMetroBench builds a fan-out of the given size whose link queues
// absorb same-instant bursts of burst packets.
func NewMetroBench(hosts, burst int) (*MetroBench, error) {
	w, err := buildMetroWorld(1, hosts, 1,
		netem.LinkConfig{Delay: time.Millisecond, QueueLen: 2 * burst})
	if err != nil {
		return nil, err
	}
	return &MetroBench{
		sim: w.sim, fan: w.fan, templates: w.templates, burst: burst,
		delivered: w.fan.CountDeliveries(),
	}, nil
}

// RunBurst injects one burst and drains the event loop, verifying every
// packet reached its customer.
func (m *MetroBench) RunBurst() error {
	for i := 0; i < m.burst; i++ {
		p := m.sim.NewPacket(m.templates[m.next])
		m.next = (m.next + 1) % len(m.templates)
		if err := m.fan.Outside[0].SendPacket(p); err != nil {
			return err
		}
	}
	m.sim.Run()
	m.expected += uint64(m.burst)
	if got := m.delivered.Total(); got != m.expected {
		return fmt.Errorf("eval: metro burst delivered %d, want %d", got, m.expected)
	}
	return nil
}

// Counters exposes the engine counters the benchmark reports.
func (m *MetroBench) Counters() (events, forwarded uint64) {
	return m.sim.EventsProcessed(), m.sim.Forwarded()
}

// NewMetroBenchObserved is NewMetroBench with the full observation plane
// attached — the epoch Recorder sampling every family at each barrier
// plus the sampling FlightRecorder on the trace path — so
// BenchmarkNetemMetroObs prices recording against the unobserved
// BenchmarkNetemMetro run on the identical workload (the
// obs_overhead_pct check in scripts/benchjson).
func NewMetroBenchObserved(hosts, burst int) (*MetroBench, error) {
	m, err := NewMetroBench(hosts, burst)
	if err != nil {
		return nil, err
	}
	attachObservation(m.sim)
	return m, nil
}

// NewMetroBenchTraced is NewMetroBench with always-on causal tracing
// attached: the flight recorder's deterministic flow sampler records 1%
// of flows end to end (every hop of every journey, what the span
// assembler needs) while the rest head-sample at 1-in-64.
// BenchmarkNetemMetroTrace prices this against the untraced metro run
// on the identical workload (the trace_overhead_pct check in
// scripts/benchjson).
func NewMetroBenchTraced(hosts, burst int) (*MetroBench, error) {
	m, err := NewMetroBench(hosts, burst)
	if err != nil {
		return nil, err
	}
	attachTracing(m.sim)
	return m, nil
}

// AttachNeutralizerScratch wires a core.Neutralizer into a netem node on
// the zero-allocation scratch path: shim packets delivered to the node
// are processed and the outputs sent back into the fabric (which copies
// them into pooled buffers before the next Reset). Processing is
// instantaneous in virtual time; use AttachNeutralizerScratchProc to
// model a per-packet processing cost.
func AttachNeutralizerScratch(node *netem.Node, n *core.Neutralizer) {
	AttachNeutralizerScratchProc(node, n, 0)
}

// AttachNeutralizerScratchProc is AttachNeutralizerScratch with a
// per-packet virtual processing cost: each output packet enters the
// fabric proc after its trigger arrived, and the time is attributed to
// the journey's Proc trace component — the neutralizer's processing
// share of end-to-end latency, visible to the span assembler.
func AttachNeutralizerScratchProc(node *netem.Node, n *core.Neutralizer, proc time.Duration) {
	s := core.NewScratch()
	node.SetHandler(func(now time.Time, pkt []byte) {
		s.Reset()
		outs, err := n.ProcessScratch(s, pkt)
		if err != nil {
			return
		}
		for _, o := range outs {
			if len(o.Pkt) < wire.IPv4HeaderLen {
				continue
			}
			_ = node.SendPacketProc(node.NewPacket(o.Pkt), proc)
		}
	})
}
