package eval

import (
	"bytes"
	"fmt"
	"net/netip"
	"time"

	"netneutral/internal/core"
	"netneutral/internal/crypto/aesutil"
	"netneutral/internal/crypto/keys"
	"netneutral/internal/diffserv"
	"netneutral/internal/dnssim"
	"netneutral/internal/e2e"
	"netneutral/internal/endhost"
	"netneutral/internal/intserv"
	"netneutral/internal/isp"
	"netneutral/internal/measure"
	"netneutral/internal/multihome"
	"netneutral/internal/netem"
	"netneutral/internal/pushback"
	"netneutral/internal/shim"
	"netneutral/internal/wire"
)

// figure1World is the topology of the paper's Figure 1: an outside user
// (Ann, in AT&T), a discriminatory transit router, and a supportive ISP
// (Cogent) hosting a neutralizer and several customers.
type figure1World struct {
	sim     *netem.Simulator
	ann     *netem.Node
	att     *netem.Node // discriminatory router
	border  *netem.Node // Cogent border; hosts the neutralizer
	google  *netem.Node
	youtube *netem.Node
	vonage  *netem.Node
	neut    *core.Neutralizer
	sched   *keys.Schedule
}

var (
	f1Ann     = netip.MustParseAddr("172.16.1.10")
	f1Att     = netip.MustParseAddr("172.16.0.1")
	f1Anycast = netip.MustParseAddr("10.200.0.1")
	f1Google  = netip.MustParseAddr("10.10.0.5")
	f1YouTube = netip.MustParseAddr("10.10.0.6")
	f1Vonage  = netip.MustParseAddr("10.10.0.7")
	f1CustNet = netip.MustParsePrefix("10.10.0.0/16")
)

func newFigure1World(seed int64) (*figure1World, error) {
	w := &figure1World{}
	w.sim = netem.NewSimulator(benchStart, seed)
	w.ann = w.sim.MustAddNode("ann", "att", f1Ann)
	w.att = w.sim.MustAddNode("att-core", "att", f1Att)
	w.border = w.sim.MustAddNode("cogent-border", "cogent")
	w.google = w.sim.MustAddNode("google", "cogent", f1Google)
	w.youtube = w.sim.MustAddNode("youtube", "cogent", f1YouTube)
	w.vonage = w.sim.MustAddNode("vonage", "cogent", f1Vonage)
	w.sim.Connect(w.ann, w.att, netem.LinkConfig{Delay: 2 * time.Millisecond})
	w.sim.Connect(w.att, w.border, netem.LinkConfig{Delay: 8 * time.Millisecond})
	w.sim.Connect(w.border, w.google, netem.LinkConfig{Delay: 2 * time.Millisecond})
	w.sim.Connect(w.border, w.youtube, netem.LinkConfig{Delay: 2 * time.Millisecond})
	w.sim.Connect(w.border, w.vonage, netem.LinkConfig{Delay: 2 * time.Millisecond})
	w.sim.AddAnycast(f1Anycast, w.border)
	w.sim.BuildRoutes()

	w.sched = keys.NewSchedule(aesutil.Key{7}, benchStart, time.Hour)
	var err error
	w.neut, err = core.New(core.Config{
		Schedule:   w.sched,
		Anycast:    f1Anycast,
		IsCustomer: func(a netip.Addr) bool { return f1CustNet.Contains(a) },
		Clock:      w.sim.Now,
		Rand:       detRand(seed + 1),
	})
	if err != nil {
		return nil, err
	}
	AttachNeutralizer(w.border, w.neut)
	return w, nil
}

// newHost builds an endhost on a node.
func (w *figure1World) newHost(node *netem.Node, seed int64, onData func(netip.Addr, []byte)) (*endhost.Host, error) {
	id, err := e2e.NewIdentity(detRand(seed), 0)
	if err != nil {
		return nil, err
	}
	h, err := endhost.NewHost(endhost.Config{
		Addr:      node.Addr(),
		Transport: HostTransport(node),
		Identity:  id,
		Clock:     w.sim.Now,
		Rand:      detRand(seed + 100),
		OnData:    onData,
	})
	if err != nil {
		return nil, err
	}
	AttachHost(node, h)
	return h, nil
}

func plainUDP(src, dst netip.Addr, sport, dport uint16, payload []byte) []byte {
	buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen+wire.UDPHeaderLen, len(payload))
	buf.PushPayload(payload)
	if err := wire.SerializeLayers(buf,
		&wire.IPv4{TTL: wire.MaxTTL, Protocol: wire.ProtoUDP, Src: src, Dst: dst},
		&wire.UDP{SrcPort: sport, DstPort: dport},
	); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

// RunF1 reproduces Figure 1's claim: with plain addressing a
// discriminatory ISP deterministically kills traffic to a specific
// customer; with the neutralizer the same classifier never fires and the
// customer's address never appears inside the discriminatory domain.
func RunF1() (*Result, error) {
	// ---- Phase 1: no neutralizer ----
	w, err := newFigure1World(11)
	if err != nil {
		return nil, err
	}
	policy := isp.NewPolicy(nil,
		isp.Rule{Name: "target-google", Match: isp.MatchDstAddr(f1Google), Action: isp.Action{DropProb: 1}},
	)
	eav := isp.NewEavesdropper()
	w.att.AddTransitHook(eav.Hook())
	w.att.AddTransitHook(policy.Hook())
	deliveredPlain := 0
	w.google.SetHandler(func(time.Time, []byte) { deliveredPlain++ })
	const attempts = 20
	for i := 0; i < attempts; i++ {
		w.sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			_ = w.ann.Send(plainUDP(f1Ann, f1Google, 4000, 80, []byte("GET /")))
		})
	}
	w.sim.Run()
	plainHits := policy.Hits("target-google")
	plainSaw := eav.SawAddr(f1Google)

	// ---- Phase 2: neutralized ----
	w2, err := newFigure1World(12)
	if err != nil {
		return nil, err
	}
	policy2 := isp.NewPolicy(nil,
		isp.Rule{Name: "target-google", Match: isp.MatchDstAddr(f1Google), Action: isp.Action{DropProb: 1}},
	)
	eav2 := isp.NewEavesdropper()
	w2.att.AddTransitHook(eav2.Hook())
	w2.att.AddTransitHook(policy2.Hook())

	received := 0
	googleHost, err := w2.newHost(w2.google, 31, nil)
	if err != nil {
		return nil, err
	}
	annHost, err := w2.newHost(w2.ann, 32, nil)
	if err != nil {
		return nil, err
	}
	if err := annHost.Setup(f1Anycast); err != nil {
		return nil, err
	}
	w2.sim.RunFor(time.Second)
	if !annHost.HasConduit(f1Anycast) {
		return nil, fmt.Errorf("F1: key setup did not complete")
	}
	if err := annHost.Connect(f1Anycast, f1Google, googlePub(googleHost)); err != nil {
		return nil, err
	}
	setHostOnData(googleHost, func(peer netip.Addr, data []byte) { received++ })
	for i := 0; i < attempts; i++ {
		w2.sim.Schedule(time.Duration(i)*10*time.Millisecond, func() {
			_ = annHost.Send(f1Google, []byte("GET /"))
		})
	}
	w2.sim.RunFor(2 * time.Second)

	return &Result{ID: "F1", Title: "Customer indistinguishability (Figure 1)", Rows: []Row{
		{Metric: "plain: delivered to targeted customer", Paper: "0 (deterministic harm)",
			Measured: fmt.Sprintf("%d/%d", deliveredPlain, attempts), Note: ""},
		{Metric: "plain: classifier hits", Paper: "all packets",
			Measured: fmt.Sprintf("%d", plainHits), Note: ""},
		{Metric: "plain: ISP saw customer address", Paper: "yes",
			Measured: fmt.Sprintf("%v", plainSaw), Note: ""},
		{Metric: "neutralized: delivered to targeted customer", Paper: "all (cannot target)",
			Measured: fmt.Sprintf("%d/%d", received, attempts), Note: ""},
		{Metric: "neutralized: classifier hits", Paper: "0",
			Measured: fmt.Sprintf("%d", policy2.Hits("target-google")), Note: ""},
		{Metric: "neutralized: ISP saw customer address", Paper: "no",
			Measured: fmt.Sprintf("%v", eav2.SawAddr(f1Google)), Note: "only the anycast address is visible"},
	}}, nil
}

// The endhost API takes (neut, peer, pub); tiny adapters keep RunF1
// readable while the host wiring stays explicit.
func googlePub(h *endhost.Host) e2e.PublicKey { return h.Identity() }

func setHostOnData(h *endhost.Host, fn func(netip.Addr, []byte)) { h.SetOnData(fn) }

// RunF2 walks the full Figure 2 protocol on the emulated topology and
// asserts, packet by packet, what the discriminatory ISP could see.
func RunF2() (*Result, error) {
	w, err := newFigure1World(21)
	if err != nil {
		return nil, err
	}
	var tapped [][]byte
	w.att.AddTransitHook(func(_ time.Time, _ *netem.Node, pkt []byte) netem.Verdict {
		tapped = append(tapped, bytes.Clone(pkt))
		return netem.Deliver
	})

	var googleGot, annGot []byte
	googleHost, err := w.newHost(w.google, 41, nil)
	if err != nil {
		return nil, err
	}
	setHostOnData(googleHost, func(peer netip.Addr, data []byte) {
		googleGot = bytes.Clone(data)
		_ = googleHost.Send(peer, []byte("REPLY-SECRET"))
	})
	annHost, err := w.newHost(w.ann, 42, nil)
	if err != nil {
		return nil, err
	}
	setHostOnData(annHost, func(_ netip.Addr, data []byte) { annGot = bytes.Clone(data) })

	if err := annHost.Setup(f1Anycast); err != nil {
		return nil, err
	}
	w.sim.RunFor(time.Second)
	setupOK := annHost.HasConduit(f1Anycast) && annHost.ConduitProvisional(f1Anycast)

	if err := annHost.Connect(f1Anycast, f1Google, googlePub(googleHost)); err != nil {
		return nil, err
	}
	if err := annHost.Send(f1Google, []byte("FORWARD-SECRET")); err != nil {
		return nil, err
	}
	w.sim.RunFor(2 * time.Second)

	leakPayload, leakAddr := false, false
	g4 := f1Google.As4()
	for _, p := range tapped {
		if bytes.Contains(p, []byte("FORWARD-SECRET")) || bytes.Contains(p, []byte("REPLY-SECRET")) {
			leakPayload = true
		}
		if bytes.Contains(p, g4[:]) {
			leakAddr = true
		}
	}
	refresh := !annHost.ConduitProvisional(f1Anycast)

	pass := func(b bool) string {
		if b {
			return "pass"
		}
		return "FAIL"
	}
	return &Result{ID: "F2", Title: "Protocol walk (Figure 2)", Rows: []Row{
		{Metric: "2a: setup yields provisional (nonce, Ks)", Paper: "steps 1-2",
			Measured: pass(setupOK), Note: "RSA-512 one-time key, stateless derivation"},
		{Metric: "2b: data delivered to hidden destination", Paper: "steps 3-4",
			Measured: pass(string(googleGot) == "FORWARD-SECRET"), Note: ""},
		{Metric: "2b: reply delivered via anycast source", Paper: "steps 5-6",
			Measured: pass(string(annGot) == "REPLY-SECRET"), Note: ""},
		{Metric: "grant returned e2e; short-RSA key retired", Paper: "§3.2 refresh",
			Measured: pass(refresh), Note: ""},
		{Metric: "no payload visible in AT&T", Paper: "encrypted",
			Measured: pass(!leakPayload), Note: fmt.Sprintf("%d packets inspected", len(tapped))},
		{Metric: "no customer address visible in AT&T", Paper: "blurred",
			Measured: pass(!leakAddr), Note: ""},
	}}, nil
}

// RunA4 quantifies the introduction's Vonage story with MOS scores.
func RunA4() (*Result, error) {
	run := func(neutralized bool, seed int64) (float64, error) {
		w, err := newFigure1World(seed)
		if err != nil {
			return 0, err
		}
		// The ISP degrades traffic addressed to the competitor's VoIP
		// server: 12% loss plus 150ms delay.
		policy := isp.NewPolicy(w.sim.Rand(),
			isp.Rule{Name: "degrade-vonage", Match: isp.MatchDstAddr(f1Vonage),
				Action: isp.Action{DropProb: 0.12, Delay: 150 * time.Millisecond}},
		)
		w.att.AddTransitHook(policy.Hook())

		const frames = 150
		var lost measure.LossCounter
		var delays measure.Histogram
		frameAt := func(seq uint64) time.Time {
			return benchStart.Add(2*time.Second + time.Duration(seq)*20*time.Millisecond)
		}

		if !neutralized {
			w.vonage.SetHandler(func(now time.Time, pkt []byte) {
				p := wire.ParsePacket(pkt, wire.LayerTypeIPv4)
				if p.ErrorLayer() != nil {
					return
				}
				payload := p.ApplicationPayload()
				if len(payload) >= 8 {
					lost.Received++
					delays.Add(now.Sub(frameAt(seqOf(payload))))
				}
			})
			for i := 0; i < frames; i++ {
				seq := uint64(i)
				w.sim.ScheduleAt(frameAt(seq), func() {
					lost.Sent++
					payload := make([]byte, 160)
					putSeq(payload, seq)
					_ = w.ann.Send(plainUDP(f1Ann, f1Vonage, 7078, 7078, payload))
				})
			}
			w.sim.Run()
		} else {
			vonageHost, err := w.newHost(w.vonage, seed+50, nil)
			if err != nil {
				return 0, err
			}
			setHostOnData(vonageHost, func(_ netip.Addr, data []byte) {
				if len(data) >= 8 {
					lost.Received++
					delays.Add(w.sim.Now().Sub(frameAt(seqOf(data))))
				}
			})
			annHost, err := w.newHost(w.ann, seed+60, nil)
			if err != nil {
				return 0, err
			}
			if err := annHost.Setup(f1Anycast); err != nil {
				return 0, err
			}
			w.sim.RunFor(time.Second)
			if err := annHost.Connect(f1Anycast, f1Vonage, googlePub(vonageHost)); err != nil {
				return 0, err
			}
			for i := 0; i < frames; i++ {
				seq := uint64(i)
				w.sim.ScheduleAt(frameAt(seq), func() {
					lost.Sent++
					payload := make([]byte, 160)
					putSeq(payload, seq)
					_ = annHost.Send(f1Vonage, payload)
				})
			}
			w.sim.Run()
		}
		return measure.MOS(delays.Mean(), lost.Loss()), nil
	}

	degraded, err := run(false, 61)
	if err != nil {
		return nil, err
	}
	cured, err := run(true, 62)
	if err != nil {
		return nil, err
	}
	// The ISP's own VoIP service: same topology, no rule applies (its
	// server is local; approximate with the clean path to Vonage without
	// the rule).
	wOwn, err := newFigure1World(63)
	if err != nil {
		return nil, err
	}
	var lostOwn measure.LossCounter
	var delaysOwn measure.Histogram
	frameAt := func(seq uint64) time.Time {
		return benchStart.Add(time.Duration(seq) * 20 * time.Millisecond)
	}
	wOwn.vonage.SetHandler(func(now time.Time, pkt []byte) {
		p := wire.ParsePacket(pkt, wire.LayerTypeIPv4)
		if p.ErrorLayer() == nil && len(p.ApplicationPayload()) >= 8 {
			lostOwn.Received++
			delaysOwn.Add(now.Sub(frameAt(seqOf(p.ApplicationPayload()))))
		}
	})
	for i := 0; i < 150; i++ {
		seq := uint64(i)
		wOwn.sim.ScheduleAt(frameAt(seq), func() {
			lostOwn.Sent++
			payload := make([]byte, 160)
			putSeq(payload, seq)
			_ = wOwn.ann.Send(plainUDP(f1Ann, f1Vonage, 7078, 7078, payload))
		})
	}
	wOwn.sim.Run()
	ownMOS := measure.MOS(delaysOwn.Mean(), lostOwn.Loss())

	return &Result{ID: "A4", Title: "Targeted VoIP degradation (Vonage story)", Rows: []Row{
		{Metric: "ISP's own VoIP MOS", Paper: "high", Measured: fmt.Sprintf("%.2f", ownMOS), Note: "undisturbed path"},
		{Metric: "competitor VoIP MOS, no neutralizer", Paper: "driven low",
			Measured: fmt.Sprintf("%.2f", degraded), Note: "12% loss + 150ms targeted delay"},
		{Metric: "competitor VoIP MOS, neutralized", Paper: "restored",
			Measured: fmt.Sprintf("%.2f", cured), Note: "classifier cannot find the flow"},
	}}, nil
}

func putSeq(p []byte, seq uint64) {
	for i := 0; i < 8; i++ {
		p[i] = byte(seq >> (8 * (7 - i)))
	}
}

func seqOf(p []byte) uint64 {
	var s uint64
	for i := 0; i < 8; i++ {
		s = s<<8 | uint64(p[i])
	}
	return s
}

// RunA5 reproduces the §3.6 DoS story: a key-setup flood starves
// legitimate traffic at the neutralizer's ingress; pushback restores it.
func RunA5() (*Result, error) {
	sim := netem.NewSimulator(benchStart, 51)
	atk := sim.MustAddNode("attacker", "att", netip.MustParseAddr("192.0.2.1"))
	good := sim.MustAddNode("good", "att", f1Ann)
	up := sim.MustAddNode("upstream", "att", f1Att)
	vic := sim.MustAddNode("victim", "cogent", f1Anycast)
	sim.Connect(atk, up, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(good, up, netem.LinkConfig{Delay: time.Millisecond})
	sim.Connect(up, vic, netem.LinkConfig{Delay: time.Millisecond, RateBps: 800_000, QueueLen: 16})
	sim.BuildRoutes()

	det := pushback.NewDetector(8192)
	received := map[shim.Type]int{}
	vic.SetHandler(func(_ time.Time, pkt []byte) {
		if t, ok := shim.PeekType(pkt[wire.IPv4HeaderLen:]); ok {
			received[t]++
		}
	})
	sim.Trace(func(ev netem.TraceEvent) {
		if ev.Kind == netem.TraceDropQueue {
			det.Observe(ev.Pkt)
		}
	})

	flood, err := buildShim(netip.MustParseAddr("192.0.2.1"), f1Anycast, &shim.Header{
		Type: shim.TypeKeySetupRequest, PublicKey: make([]byte, 66)}, nil)
	if err != nil {
		return nil, err
	}
	goodPkt, err := buildShim(f1Ann, f1Anycast, &shim.Header{
		Type: shim.TypeData, Nonce: keys.Nonce{1}}, nil)
	if err != nil {
		return nil, err
	}
	inject := func(goodCount int) {
		for i := 0; i < 500; i++ {
			sim.Schedule(time.Duration(i)*time.Millisecond, func() {
				for j := 0; j < 10; j++ {
					_ = atk.Send(flood)
				}
			})
		}
		for i := 0; i < goodCount; i++ {
			sim.Schedule(time.Duration(i*10)*time.Millisecond, func() { _ = good.Send(goodPkt) })
		}
	}

	inject(50)
	sim.RunFor(500 * time.Millisecond)
	before := received[shim.TypeData]

	ctrl := &pushback.Controller{Detector: det, Upstream: []*netem.Node{up},
		LimitBps: 10_000, Lifetime: time.Hour}
	deployed := ctrl.MaybePush(sim.Now(), 0.5)
	received[shim.TypeData] = 0
	inject(50)
	sim.RunFor(500 * time.Millisecond)
	after := received[shim.TypeData]

	var limiterDrops uint64
	for _, l := range ctrl.Limiters() {
		limiterDrops += l.Dropped
	}
	return &Result{ID: "A5", Title: "Key-setup flood and pushback", Rows: []Row{
		{Metric: "flood rate vs bottleneck", Paper: "-", Measured: "~10x", Note: "10 setups/ms into 800 kbps"},
		{Metric: "legit goodput during flood", Paper: "collapses", Measured: fmt.Sprintf("%d/50", before), Note: ""},
		{Metric: "pushback deployed (aggregate identified)", Paper: "yes", Measured: fmt.Sprintf("%v", deployed),
			Note: "signature: key-setup packets to the service address"},
		{Metric: "legit goodput after pushback", Paper: "restored", Measured: fmt.Sprintf("%d/50", after), Note: ""},
		{Metric: "flood dropped upstream", Paper: "-", Measured: fmt.Sprintf("%d pkts", limiterDrops), Note: ""},
	}}, nil
}

// RunA6 compares §3.5 selection strategies for a dual-homed site whose
// providers have asymmetric latency, then fails the fast provider and
// checks trial-and-error recovery.
func RunA6() (*Result, error) {
	type probeResult struct {
		uses map[netip.Addr]int
		mean time.Duration
		ok   int
	}
	fast := netip.MustParseAddr("10.200.0.1")
	slow := netip.MustParseAddr("10.201.0.1")

	runStrategy := func(strat multihome.Strategy, failFastAfter int) (probeResult, error) {
		sim := netem.NewSimulator(benchStart, 66)
		src := sim.MustAddNode("src", "att", f1Ann)
		p1 := sim.MustAddNode("provider-fast", "p1", fast)
		p2 := sim.MustAddNode("provider-slow", "p2", slow)
		sim.Connect(src, p1, netem.LinkConfig{Delay: 5 * time.Millisecond})
		sim.Connect(src, p2, netem.LinkConfig{Delay: 40 * time.Millisecond})
		sim.BuildRoutes()
		for _, n := range []*netem.Node{p1, p2} {
			node := n
			n.SetHandler(func(_ time.Time, pkt []byte) {
				srcA, dstA, err := wire.IPv4Addrs(pkt)
				if err != nil {
					return
				}
				_ = node.Send(plainUDP(dstA, srcA, 7, 7, []byte("echo")))
			})
		}
		sel, err := multihome.NewSelector([]netip.Addr{fast, slow}, strat)
		if err != nil {
			return probeResult{}, err
		}
		res := probeResult{uses: map[netip.Addr]int{}}
		var sumRTT time.Duration
		const probes = 60
		fastDown := false
		p1.AddTransitHook(func(time.Time, *netem.Node, []byte) netem.Verdict {
			if fastDown {
				return netem.Verdict{Drop: true}
			}
			return netem.Deliver
		})

		var doProbe func(i int)
		doProbe = func(i int) {
			if i >= probes {
				return
			}
			if failFastAfter > 0 && i == failFastAfter {
				fastDown = true
			}
			target := sel.Pick()
			res.uses[target]++
			sent := sim.Now()
			answered := false
			src.SetHandler(func(now time.Time, pkt []byte) {
				if answered {
					return
				}
				answered = true
				rtt := now.Sub(sent)
				sel.Feedback(target, true, rtt)
				res.ok++
				sumRTT += rtt
				sim.Schedule(time.Millisecond, func() { doProbe(i + 1) })
			})
			_ = src.Send(plainUDP(f1Ann, target, 7, 7, []byte("ping")))
			// Timeout: 200ms without an answer is a failure.
			sim.Schedule(200*time.Millisecond, func() {
				if !answered {
					answered = true
					sel.Feedback(target, false, 0)
					sim.Schedule(time.Millisecond, func() { doProbe(i + 1) })
				}
			})
		}
		doProbe(0)
		sim.Run()
		if res.ok > 0 {
			res.mean = sumRTT / time.Duration(res.ok)
		}
		return res, nil
	}

	rows := []Row{}
	for _, tc := range []struct {
		name  string
		strat multihome.Strategy
	}{
		{"static", multihome.Static{}},
		{"round-robin", &multihome.RoundRobin{}},
		{"latency-weighted", multihome.NewWeighted(5)},
	} {
		r, err := runStrategy(tc.strat, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Row{
			Metric: fmt.Sprintf("%s: fast/slow split", tc.name), Paper: "-",
			Measured: fmt.Sprintf("%d/%d", r.uses[fast], r.uses[slow]),
			Note:     fmt.Sprintf("mean RTT %v", r.mean.Round(time.Millisecond)),
		})
	}
	// Trial-and-error under failure of the fast provider.
	r, err := runStrategy(multihome.NewTrialAndError(), 20)
	if err != nil {
		return nil, err
	}
	rows = append(rows, Row{
		Metric: "trial-and-error: probes answered despite provider failure", Paper: "path found",
		Measured: fmt.Sprintf("%d/60", r.ok),
		Note:     fmt.Sprintf("fast provider killed after probe 20; split %d/%d", r.uses[fast], r.uses[slow]),
	})
	return &Result{ID: "A6", Title: "Multi-homed neutralizer selection", Rows: rows}, nil
}

// RunA7 reproduces the §3.1 DNS story: targeted delay of plaintext
// queries, defeated by encrypted queries to an outside resolver.
func RunA7() (*Result, error) {
	sim := netem.NewSimulator(benchStart, 71)
	cl := sim.MustAddNode("client", "att", f1Ann)
	evil := sim.MustAddNode("att-core", "att", f1Att)
	res := sim.MustAddNode("resolver", "cogent", netip.MustParseAddr("10.50.0.53"))
	sim.Connect(cl, evil, netem.LinkConfig{Delay: 2 * time.Millisecond})
	sim.Connect(evil, res, netem.LinkConfig{Delay: 8 * time.Millisecond})
	sim.BuildRoutes()

	id, err := e2e.NewIdentity(detRand(72), 0)
	if err != nil {
		return nil, err
	}
	r := dnssim.NewResolver(res, id)
	r.AddRecord(dnssim.Record{Name: "www.google.com", Addr: f1Google, Neutralizers: []netip.Addr{f1Anycast}})
	r.AddRecord(dnssim.Record{Name: "paying.example", Addr: netip.MustParseAddr("10.10.0.9")})
	policy := isp.NewPolicy(nil, isp.Rule{
		Name:   "delay-google-dns",
		Match:  isp.MatchPayloadContains([]byte("www.google.com")),
		Action: isp.Action{Delay: 500 * time.Millisecond},
	})
	evil.AddTransitHook(policy.Hook())
	c := dnssim.NewClient(cl, detRand(73))

	var tPlainTarget, tPlainOther, tEnc time.Duration
	if err := c.LookupPlain(res.Addr(), "www.google.com", func(dnssim.Record, error) {
		tPlainTarget = sim.Now().Sub(benchStart)
	}); err != nil {
		return nil, err
	}
	sim.Run()
	base := sim.Now()
	if err := c.LookupPlain(res.Addr(), "paying.example", func(dnssim.Record, error) {
		tPlainOther = sim.Now().Sub(base)
	}); err != nil {
		return nil, err
	}
	sim.Run()
	base = sim.Now()
	if err := c.LookupEncrypted(res.Addr(), r.Public(), "www.google.com", func(dnssim.Record, error) {
		tEnc = sim.Now().Sub(base)
	}); err != nil {
		return nil, err
	}
	sim.Run()

	return &Result{ID: "A7", Title: "DNS bootstrap under query discrimination", Rows: []Row{
		{Metric: "plaintext lookup of targeted name", Paper: "delayed", Measured: tPlainTarget.String(),
			Note: "ISP rule adds 500ms"},
		{Metric: "plaintext lookup of paying site", Paper: "fast", Measured: tPlainOther.String(), Note: ""},
		{Metric: "encrypted lookup of targeted name", Paper: "fast", Measured: tEnc.String(),
			Note: "name invisible to the ISP"},
	}}, nil
}

// RunA8 demonstrates §3.4 end to end: DSCP-tiered service works through
// the neutralizer, and guaranteed service is recovered via dynamic
// addresses.
func RunA8() (*Result, error) {
	// (1) DSCP preservation.
	env, err := NewBenchEnv(false, false)
	if err != nil {
		return nil, err
	}
	marked := make([]byte, len(env.DataPkt))
	copy(marked, env.DataPkt)
	marked[1] = diffserv.DSCPExpedited << 2
	marked[10], marked[11] = 0, 0
	ck := wire.Checksum(marked[:wire.IPv4HeaderLen])
	marked[10], marked[11] = byte(ck>>8), byte(ck)
	outs, err := env.Neut.Process(marked)
	if err != nil {
		return nil, err
	}
	var outIP wire.IPv4
	if err := outIP.DecodeFromBytes(outs[0].Pkt); err != nil {
		return nil, err
	}
	dscpPreserved := outIP.DSCP() == diffserv.DSCPExpedited

	// (2) EF beats BE through a congested priority queue.
	sim := netem.NewSimulator(benchStart, 81)
	a := sim.MustAddNode("a", "", netip.MustParseAddr("10.0.0.1"))
	b := sim.MustAddNode("b", "", netip.MustParseAddr("10.0.0.2"))
	link := sim.Connect(a, b, netem.LinkConfig{Delay: time.Millisecond, RateBps: 80_000, QueueLen: 8})
	if err := link.SetQueue(a, diffserv.NewPriorityQueue(3, 8, nil)); err != nil {
		return nil, err
	}
	sim.BuildRoutes()
	got := map[uint8]int{}
	b.SetHandler(func(_ time.Time, pkt []byte) { got[pkt[1]>>2]++ })
	mk := func(dscp uint8) []byte {
		p := plainUDP(netip.MustParseAddr("10.0.0.1"), netip.MustParseAddr("10.0.0.2"), 1, 2, make([]byte, 100))
		p[1] = dscp << 2
		p[10], p[11] = 0, 0
		c := wire.Checksum(p[:wire.IPv4HeaderLen])
		p[10], p[11] = byte(c>>8), byte(c)
		return p
	}
	for i := 0; i < 40; i++ {
		sim.Schedule(time.Duration(i)*12800*time.Microsecond, func() {
			_ = a.Send(mk(diffserv.DSCPExpedited))
			_ = a.Send(mk(diffserv.DSCPBestEffort))
		})
	}
	sim.Run()

	// (3) Guaranteed service: anonymized flows collapse; dynamic
	// addresses separate them.
	tbl := intserv.NewTable(1e9)
	outside := f1Ann
	_ = tbl.Reserve(intserv.Reservation{Flow: intserv.FlowID{Src: f1Anycast, Dst: outside}, RateBps: 64_000})
	collapseErr := tbl.Reserve(intserv.Reservation{Flow: intserv.FlowID{Src: f1Anycast, Dst: outside}, RateBps: 64_000})
	dynA := netip.MustParseAddr("10.250.0.1")
	dynB := netip.MustParseAddr("10.250.0.2")
	errA := tbl.Reserve(intserv.Reservation{Flow: intserv.FlowID{Src: dynA, Dst: outside}, RateBps: 64_000})
	errB := tbl.Reserve(intserv.Reservation{Flow: intserv.FlowID{Src: dynB, Dst: outside}, RateBps: 64_000})

	pass := func(b bool) string {
		if b {
			return "pass"
		}
		return "FAIL"
	}
	return &Result{ID: "A8", Title: "Tiered + guaranteed service (§3.4)", Rows: []Row{
		{Metric: "neutralizer preserves DSCP", Paper: "yes", Measured: pass(dscpPreserved), Note: ""},
		{Metric: "EF vs BE delivery under 2x congestion", Paper: "EF wins",
			Measured: fmt.Sprintf("%d vs %d", got[diffserv.DSCPExpedited], got[diffserv.DSCPBestEffort]), Note: ""},
		{Metric: "per-flow reservation on anycast traffic", Paper: "impossible",
			Measured: pass(collapseErr != nil), Note: "all customers collapse to one visible flow"},
		{Metric: "per-flow reservation with dynamic addresses", Paper: "works",
			Measured: pass(errA == nil && errB == nil), Note: "the §3.4 remedy"},
	}}, nil
}
