// Package netem is a deterministic discrete-event network emulator: the
// substrate standing in for the paper's testbed and for the Internet
// topology of its Figure 1, scaled so that metro-sized scenarios (tens of
// thousands of customer hosts behind one neutralizer domain) run in
// seconds.
//
// A Simulator owns a virtual clock and a slice-backed heap of typed
// events; the hot-path events (link departure/arrival, policy delay)
// carry their operands inline, so forwarding a packet allocates nothing
// in steady state. Packets are pooled, refcounted buffers (Packet) that
// cross the whole path — links, transit hooks, handlers — without per-hop
// copies. Nodes (hosts and routers) are connected by Links with
// propagation delay, transmission rate and bounded egress queues. Each
// node's route list is compiled into an indexed FIB (exact-match map for
// host routes plus a longest-prefix table) the first time it is used
// after a topology change. Routing tables are computed with Dijkstra over
// link costs (BuildRoutes) or stamped out hierarchically by the Topology
// builder (BuildFanout); anycast groups resolve to the nearest member,
// which is how the neutralizer's anycast address is modelled. Transit
// hooks let middle networks (the discriminatory ISPs of package isp)
// observe, delay, or drop packets in flight, and trace hooks feed the
// measurement package.
//
// The engine is sharded: a Simulator is a facade over one or more
// shards, each owning its own event queue, packet freelist, and
// splitmix-seeded PRNG. An unsharded simulator (the default) has one
// shard and runs the classic single-threaded loop — handlers may freely
// call back into the simulator, and with a fixed seed runs are fully
// reproducible. Topology builders may partition nodes across shards
// (Node.SetShard, FanoutSpec.ShardSubtrees) and run them on several
// workers (Simulator.SetWorkers): execution then proceeds in
// conservative epochs bounded by the minimum cross-shard link delay,
// with cross-shard packets merged deterministically at each epoch
// barrier, so a seeded run is bit-identical at every worker count. See
// shard.go and parallel.go.
package netem

import (
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"netneutral/internal/obs"
	"netneutral/internal/wire"
)

// Errors returned by the simulator.
var (
	ErrNoRoute       = errors.New("netem: no route to destination")
	ErrUnknownNode   = errors.New("netem: unknown node")
	ErrAddrInUse     = errors.New("netem: address already assigned")
	ErrNotConnected  = errors.New("netem: nodes are not connected")
	ErrTTLExhausted  = errors.New("netem: TTL exhausted")
	ErrMalformedIPv4 = errors.New("netem: malformed IPv4 packet")
)

// PolicyCause labels the mechanism behind a policy verdict or drop, so
// trace events are attributable without correlating against policy
// counters by hand.
type PolicyCause uint8

// Policy causes carried on verdicts and trace events.
const (
	CauseNone        PolicyCause = iota
	CauseRule                    // rule-list match (package isp)
	CauseTokenBucket             // per-class rate policing (package dpi)
	CauseRandomDrop              // probabilistic per-class drop (package dpi)
	CauseClassDelay              // per-class added delay (package dpi)
	CauseQueueFull               // link egress queue overflow
)

func (c PolicyCause) String() string {
	switch c {
	case CauseNone:
		return "none"
	case CauseRule:
		return "rule"
	case CauseTokenBucket:
		return "token-bucket"
	case CauseRandomDrop:
		return "random-drop"
	case CauseClassDelay:
		return "class-delay"
	case CauseQueueFull:
		return "queue-full"
	default:
		return fmt.Sprintf("cause(%d)", uint8(c))
	}
}

// Verdict is a transit hook's decision about a packet.
type Verdict struct {
	// Drop discards the packet.
	Drop bool
	// Delay holds the packet for the given duration before it continues.
	Delay time.Duration
	// DSCP, when non-nil, remarks the packet's DSCP (a discriminatory ISP
	// deprioritizing traffic it cannot read).
	DSCP *uint8
	// Cause and Class attribute the verdict for tracing: which policing
	// mechanism produced it and which traffic class it targeted (dpi
	// class numbering; 0 when classless). Both ride onto the packet's
	// next trace event.
	Cause PolicyCause
	Class uint8
}

// Deliver is the zero Verdict: pass the packet unchanged.
var Deliver = Verdict{}

// TransitHook inspects a packet crossing a node. Hooks run on every
// packet a node receives, before local delivery or forwarding. pkt is a
// no-copy view of the pooled buffer: the hook may read (and remark) it
// but must not retain it past the call — the buffer is recycled as soon
// as the packet's journey ends.
type TransitHook func(now time.Time, node *Node, pkt []byte) Verdict

// Handler consumes packets locally delivered to a node. pkt is a no-copy
// view of the pooled buffer, valid only for the duration of the call;
// copy it (bytes.Clone) to keep it.
type Handler func(now time.Time, pkt []byte)

// TraceKind labels trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceSend TraceKind = iota + 1
	TraceForward
	TraceDeliver
	TraceDropQueue
	TraceDropPolicy
	TraceDropNoRoute
	TraceDropTTL
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceForward:
		return "forward"
	case TraceDeliver:
		return "deliver"
	case TraceDropQueue:
		return "drop-queue"
	case TraceDropPolicy:
		return "drop-policy"
	case TraceDropNoRoute:
		return "drop-noroute"
	case TraceDropTTL:
		return "drop-ttl"
	default:
		return fmt.Sprintf("trace(%d)", uint8(k))
	}
}

// HopAttr decomposes the virtual time between consecutive trace events
// of one packet journey into its physical and policy components. Every
// event carries exactly the components that elapsed since the journey's
// previous event, so summing them across a complete journey reproduces
// the end-to-end delivery delay exactly (the attribution invariant).
type HopAttr struct {
	// Queue is time spent waiting in link egress queues.
	Queue time.Duration
	// Serialize is link transmission (size/rate) time.
	Serialize time.Duration
	// Propagate is link propagation delay.
	Propagate time.Duration
	// Policy is delay imposed by transit-hook verdicts.
	Policy time.Duration
	// Proc is endpoint processing time (Node.SendPacketProc).
	Proc time.Duration
	// Cause and Class attribute the Policy component (or the drop, on
	// drop events) to the responsible mechanism and traffic class.
	Cause PolicyCause
	Class uint8
}

// Total sums the attributed components.
func (a HopAttr) Total() time.Duration {
	return a.Queue + a.Serialize + a.Propagate + a.Policy + a.Proc
}

// TraceEvent describes one packet event for observers.
type TraceEvent struct {
	Kind TraceKind
	Time time.Time
	Node *Node
	Pkt  []byte
	// Flow is the packet's keyed flow hash (FlowHash); Journey identifies
	// the pooled packet's journey, stamped at origination — worker-count
	// independent, so span assembly is replay-stable.
	Flow    uint64
	Journey uint64
	// Attr is the delay attribution accumulated since the journey's
	// previous trace event.
	Attr HopAttr
}

// TraceHook observes packet events. Pkt is a no-copy view; it must not be
// retained past the call.
type TraceHook func(ev TraceEvent)

// Simulator is the discrete-event engine facade. Create with
// NewSimulator. State that events touch — queue, clock, packet pool,
// PRNG — lives in shards (one by default); the facade holds the shared
// read-only topology and delegates to shard 0 where an API predates
// sharding.
type Simulator struct {
	start       time.Time
	committed   time.Time // multi-shard: time every shard has reached
	seed        int64
	shards      []*shard
	workers     int
	lookahead   time.Duration
	multi       bool // any node assigned beyond shard 0
	planDirty   bool
	running     bool // inside a multi-shard epoch run
	parallelRun bool // running with > 1 worker: shard-0 APIs are off-limits
	poolDebug   bool

	nodes    map[string]*Node
	nodeList []*Node
	byAddr   map[netip.Addr]*Node
	// addrBlocks indexes the contiguous leaf-host address blocks
	// registered by AddHostBlock: one entry per block instead of one
	// byAddr map entry per host (the million-host memory plan).
	addrBlocks []addrBlock
	anycast    map[netip.Addr][]*Node
	traces     []TraceHook

	met       *simMetrics
	flight    *obs.FlightRecorder
	onBarrier []func(now time.Time)

	dijkstra dijkstraScratch
}

// NewSimulator creates a simulator whose clock starts at start and whose
// randomness derives from seed.
func NewSimulator(start time.Time, seed int64) *Simulator {
	s := &Simulator{
		start:     start,
		committed: start,
		seed:      seed,
		workers:   1,
		nodes:     make(map[string]*Node),
		byAddr:    make(map[netip.Addr]*Node),
		anycast:   make(map[netip.Addr][]*Node),
		met:       newSimMetrics(),
	}
	s.shards = []*shard{newShard(s, 0, start)}
	return s
}

// Now returns the current virtual time: exact while execution is
// single-threaded (one shard, or shards declared but every node still
// on shard 0); for genuinely sharded simulators, the time every shard
// is known to have reached (callbacks wanting their exact event time
// use the now they receive, or Node.Now).
func (s *Simulator) Now() time.Time {
	if len(s.shards) == 1 || !s.multi {
		return s.shards[0].now
	}
	return s.committed
}

// Rand returns shard 0's seeded PRNG — the simulator-wide stream of
// unsharded runs. Sources on sharded topologies use Node.Rand.
func (s *Simulator) Rand() *rand.Rand { return s.shards[0].rng }

// Trace registers a global trace hook. On sharded runs, hooks fire at
// each epoch barrier in globally merged (time, shard, seq) order — the
// same total order at every worker count — and observe copied packet
// bytes; on single-shard runs they fire live, as always.
//
// Determinism contract: hooks are observers. They must not mutate sim
// state — no scheduling, no sends, no touching node or shard fields —
// and must not retain Pkt past the call. A hook that feeds state back
// into the simulation breaks the bit-identical replay guarantee in ways
// no test will catch locally. Note also that every registered hook
// forces sharded runs to buffer (and copy the bytes of) every packet
// event between barriers; for bounded, sampled observation that stays
// cheap at metro scale, attach an obs.FlightRecorder
// (AttachFlightRecorder) instead.
func (s *Simulator) Trace(h TraceHook) { s.traces = append(s.traces, h) }

// Delivered reports packets locally delivered anywhere in the network
// (a thin read over the netem_delivered_packets_total family).
func (s *Simulator) Delivered() uint64 { return s.met.delivered.Value() }

// Forwarded reports router forwarding decisions (one per transit hop).
func (s *Simulator) Forwarded() uint64 { return s.met.forwarded.Value() }

// Dropped reports the number of packets dropped anywhere in the network.
func (s *Simulator) Dropped() uint64 { return s.met.dropped.Value() }

// EventsProcessed reports how many events the loop has run; with wall
// time it yields the sim-events/sec figure the scale experiments report.
func (s *Simulator) EventsProcessed() uint64 { return s.met.events.Value() }

// Schedule runs fn after d of virtual time on shard 0 (the whole
// simulator when unsharded). Sources on sharded topologies schedule via
// their node (Node.Schedule) so callbacks run on the owning shard;
// calling Schedule from inside a multi-worker run therefore panics —
// it would race shard 0's queue and silently break replay determinism.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.guardShard0()
	sh := s.shards[0]
	sh.schedule(sh.now.Add(d), event{kind: evFunc, fn: fn})
}

// ScheduleAt runs fn at absolute virtual time t (clamped to now) on
// shard 0. The multi-worker restriction of Schedule applies.
func (s *Simulator) ScheduleAt(t time.Time, fn func()) {
	s.guardShard0()
	s.shards[0].schedule(t, event{kind: evFunc, fn: fn})
}

// guardShard0 turns a mid-parallel-run call to a shard-0 API (Schedule,
// ScheduleAt, NewPacket) into an immediate diagnostic instead of a
// silent data race: during a multi-worker run, callbacks must go
// through their node's anchored equivalents.
func (s *Simulator) guardShard0() {
	if s.parallelRun {
		panic("netem: Simulator-level Schedule/NewPacket called during a multi-worker run; anchor to a node (Node.Schedule, Node.NewPacket, Node.Send)")
	}
}

// Run processes events until every queue is empty.
func (s *Simulator) Run() { s.runLimit(time.Time{}, false) }

// RunUntil processes events with timestamps <= t, then advances the
// clock to t.
func (s *Simulator) RunUntil(t time.Time) { s.runLimit(t, true) }

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.Now().Add(d)) }

// PendingEvents reports events waiting across all queues.
func (s *Simulator) PendingEvents() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.events.len()
	}
	return n
}

// Node is a host or router in the emulated network.
type Node struct {
	Name string
	// Domain tags the administrative domain (ISP) the node belongs to;
	// package isp uses it to scope eavesdropping and policy.
	Domain string

	sim     *Simulator
	sh      *shard
	id      int
	addrs   []netip.Addr
	links   []*Link
	routes  []route
	blocks  []blockRoute
	fib     fib
	handler Handler
	hooks   []TransitHook
}

// AddNode creates a node with the given unique name and addresses.
func (s *Simulator) AddNode(name, domain string, addrs ...netip.Addr) (*Node, error) {
	if _, dup := s.nodes[name]; dup {
		return nil, fmt.Errorf("netem: duplicate node name %q", name)
	}
	n := &Node{Name: name, Domain: domain, sim: s, sh: s.shards[0], id: len(s.nodeList)}
	s.planDirty = true
	for _, a := range addrs {
		if _, dup := s.byAddr[a]; dup {
			return nil, fmt.Errorf("%w: %v", ErrAddrInUse, a)
		}
	}
	for _, a := range addrs {
		s.byAddr[a] = n
		n.addrs = append(n.addrs, a)
	}
	s.nodes[name] = n
	s.nodeList = append(s.nodeList, n)
	return n, nil
}

// MustAddNode is AddNode that panics on error; for topology builders.
func (s *Simulator) MustAddNode(name, domain string, addrs ...netip.Addr) *Node {
	n, err := s.AddNode(name, domain, addrs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a node by name, or nil.
func (s *Simulator) Node(name string) *Node { return s.nodes[name] }

// NodeByAddr returns the node owning addr, or nil. Named nodes resolve
// through the address map; anonymous leaf hosts resolve through their
// block's offset index (a short linear walk over blocks — one per metro,
// not per host).
func (s *Simulator) NodeByAddr(a netip.Addr) *Node {
	if n, ok := s.byAddr[a]; ok {
		return n
	}
	if !a.Is4() {
		return nil
	}
	v := ipv4ToUint(a)
	for i := range s.addrBlocks {
		if b := &s.addrBlocks[i]; v-b.first < uint32(len(b.nodes)) {
			return b.nodes[v-b.first]
		}
	}
	return nil
}

// addrBlock is one AddHostBlock registration: nodes[i] owns address
// first+i.
type addrBlock struct {
	first uint32
	nodes []*Node
}

// addrInBlocks reports whether a falls inside a registered host block.
func (s *Simulator) addrInBlocks(a netip.Addr) bool {
	if !a.Is4() {
		return false
	}
	v := ipv4ToUint(a)
	for i := range s.addrBlocks {
		if b := &s.addrBlocks[i]; v-b.first < uint32(len(b.nodes)) {
			return true
		}
	}
	return false
}

// AddHostBlock creates n leaf hosts owning the consecutive IPv4
// addresses [first, first+n), slab-allocated: one Node array, one
// address array, shared capacity for each host's single link and route,
// and a single block entry in the address index instead of n map
// entries. That drops the per-host build cost to a few hundred bytes —
// the plan that fits a million hosts in memory. The hosts are anonymous
// (Name "", not resolvable via Simulator.Node); hold the returned slice.
// They start on shard 0; assign shards with Node.SetShard as usual.
//
// The block must not overlap any registered address: other blocks are
// checked block-to-block, and every individually registered address is
// checked against the range (the named-node population is small —
// routers, not hosts — so the scan is cheap at build time).
func (s *Simulator) AddHostBlock(domain string, first netip.Addr, n int) ([]*Node, error) {
	if !first.Is4() {
		return nil, fmt.Errorf("netem: host block base %v is not IPv4", first)
	}
	v := ipv4ToUint(first)
	if n <= 0 || uint64(v)+uint64(n) > 1<<32 {
		return nil, fmt.Errorf("netem: host block [%v +%d) is empty or wraps the address space", first, n)
	}
	for i := range s.addrBlocks {
		b := &s.addrBlocks[i]
		if v < b.first+uint32(len(b.nodes)) && b.first < v+uint32(n) {
			return nil, fmt.Errorf("%w: block [%v +%d) overlaps an existing host block", ErrAddrInUse, first, n)
		}
	}
	for a := range s.byAddr {
		if a.Is4() {
			if w := ipv4ToUint(a); w-v < uint32(n) {
				return nil, fmt.Errorf("%w: %v already registered inside block [%v +%d)", ErrAddrInUse, a, first, n)
			}
		}
	}
	slab := make([]Node, n)
	addrSlab := make([]netip.Addr, n)
	linkSlab := make([]*Link, n)
	routeSlab := make([]route, n)
	nodes := make([]*Node, n)
	id := len(s.nodeList)
	s.nodeList = append(s.nodeList, nodes...) // reserve; filled below
	for i := range slab {
		nd := &slab[i]
		addrSlab[i] = uintToIPv4(v + uint32(i))
		*nd = Node{
			Domain: domain,
			sim:    s,
			sh:     s.shards[0],
			id:     id + i,
			addrs:  addrSlab[i : i+1 : i+1],
			// Full-slice caps: the host's one link and one default route
			// append into the shared slabs instead of allocating.
			links:  linkSlab[i : i : i+1],
			routes: routeSlab[i : i : i+1],
		}
		nodes[i] = nd
		s.nodeList[id+i] = nd
	}
	s.addrBlocks = append(s.addrBlocks, addrBlock{first: v, nodes: nodes})
	s.planDirty = true
	return nodes, nil
}

// NodeCount reports how many nodes the simulator holds.
func (s *Simulator) NodeCount() int { return len(s.nodeList) }

// AddAnycast registers addr as an anycast address served by the given
// nodes. Routing resolves it to the nearest member.
func (s *Simulator) AddAnycast(addr netip.Addr, members ...*Node) {
	s.anycast[addr] = append(s.anycast[addr], members...)
}

// AnycastMembers returns the members of an anycast group (nil if none).
func (s *Simulator) AnycastMembers(addr netip.Addr) []*Node { return s.anycast[addr] }

// Sim returns the simulator the node belongs to.
func (n *Node) Sim() *Simulator { return n.sim }

// Addrs returns the node's addresses.
func (n *Node) Addrs() []netip.Addr { return n.addrs }

// Addr returns the node's first address (its canonical identity), or the
// zero Addr for address-less transit routers.
func (n *Node) Addr() netip.Addr {
	if len(n.addrs) == 0 {
		return netip.Addr{}
	}
	return n.addrs[0]
}

// AddAddr assigns an extra address to the node at runtime (used by the
// neutralizer's dynamic-address QoS remedy). Routes must be reinstalled
// by the caller (Simulator.BuildRoutes) for remote reachability, or the
// address can be covered by an existing prefix route.
func (n *Node) AddAddr(a netip.Addr) error {
	if _, dup := n.sim.byAddr[a]; dup {
		return fmt.Errorf("%w: %v", ErrAddrInUse, a)
	}
	n.sim.byAddr[a] = n
	n.addrs = append(n.addrs, a)
	return nil
}

// RemoveAddr releases an address previously added with AddAddr.
func (n *Node) RemoveAddr(a netip.Addr) {
	if n.sim.byAddr[a] == n {
		delete(n.sim.byAddr, a)
	}
	for i, x := range n.addrs {
		if x == a {
			n.addrs = append(n.addrs[:i], n.addrs[i+1:]...)
			break
		}
	}
}

// HasAddr reports whether a is one of the node's addresses.
func (n *Node) HasAddr(a netip.Addr) bool {
	for _, x := range n.addrs {
		if x == a {
			return true
		}
	}
	return false
}

// SetHandler installs the local-delivery handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// AddTransitHook installs a hook run on every packet the node receives.
func (n *Node) AddTransitHook(h TransitHook) { n.hooks = append(n.hooks, h) }

// Send originates a packet from node n. The packet must be a serialized
// IPv4 datagram; it is copied into a pooled buffer (the one copy of its
// journey). Returns ErrNoRoute if the destination is unreachable.
func (n *Node) Send(pkt []byte) error {
	if len(pkt) < wire.IPv4HeaderLen {
		return ErrMalformedIPv4
	}
	return n.SendPacket(n.NewPacket(pkt))
}

// SendPacket originates a pooled packet from node n, taking ownership of
// one reference (the packet is released on error, drop, or delivery).
// Callers with a template packet avoid Send's intermediate []byte:
//
//	_ = node.SendPacket(sim.NewPacket(template))
func (n *Node) SendPacket(p *Packet) error {
	if len(p.Pkt) < wire.IPv4HeaderLen {
		p.Release()
		return ErrMalformedIPv4
	}
	n.sh.stampJourney(p)
	n.sh.emit(TraceSend, n, p)
	return n.dispatch(p, true)
}

// SendPacketProc originates a pooled packet after proc of virtual
// processing time, attributing that time to the journey's Proc
// component — how the neutralizer's scratch path accounts for per-packet
// processing cost. The journey's send event fires now; the packet enters
// the network proc later. proc <= 0 degenerates to SendPacket.
func (n *Node) SendPacketProc(p *Packet, proc time.Duration) error {
	if proc <= 0 {
		return n.SendPacket(p)
	}
	if len(p.Pkt) < wire.IPv4HeaderLen {
		p.Release()
		return ErrMalformedIPv4
	}
	n.sh.stampJourney(p)
	n.sh.emit(TraceSend, n, p)
	p.attrProc += int64(proc)
	n.sh.schedule(n.sh.now.Add(proc), event{kind: evProc, node: n, pkt: p})
	return nil
}

// dispatch delivers locally or forwards toward the destination. origin
// marks packets sent by this node itself (no transit hooks, no TTL work).
// dispatch owns p: every exit path releases it or hands it on.
func (n *Node) dispatch(p *Packet, origin bool) error {
	if _, _, err := wire.IPv4Addrs(p.Pkt); err != nil {
		p.Release()
		return ErrMalformedIPv4
	}
	if !origin {
		// Transit/ingress policy.
		var delay time.Duration
		var cause PolicyCause
		var class uint8
		for _, h := range n.hooks {
			v := h(n.sh.now, n, p.Pkt)
			if v.Drop {
				p.cause, p.class = v.Cause, v.Class
				n.sh.emit(TraceDropPolicy, n, p)
				p.Release()
				return nil
			}
			if v.Delay > delay {
				delay, cause, class = v.Delay, v.Cause, v.Class
			}
			if v.DSCP != nil {
				remarkDSCP(p.Pkt, *v.DSCP)
			}
		}
		if delay > 0 {
			p.attrPolicy += int64(delay)
			p.cause, p.class = cause, class
			n.sh.schedule(n.sh.now.Add(delay), event{kind: evDelayed, node: n, pkt: p})
			return nil
		}
	}
	return n.dispatchAfterPolicy(p, origin)
}

// dispatchAfterPolicy completes local delivery or forwarding once policy
// hooks have run. origin marks packets originated by this node, which are
// not TTL-decremented and do not count as forwarding.
func (n *Node) dispatchAfterPolicy(p *Packet, origin bool) error {
	_, dst, err := wire.IPv4Addrs(p.Pkt)
	if err != nil {
		p.Release()
		return ErrMalformedIPv4
	}
	// Local unicast delivery?
	if n.HasAddr(dst) {
		n.deliver(p)
		return nil
	}
	// Local anycast delivery?
	if members := n.sim.anycast[dst]; len(members) > 0 {
		for _, m := range members {
			if m == n {
				n.deliver(p)
				return nil
			}
		}
	}
	// Forward.
	link := n.lookupRoute(dst)
	if link == nil {
		n.sh.emit(TraceDropNoRoute, n, p)
		p.Release()
		return ErrNoRoute
	}
	if !origin {
		alive, err := wire.DecrementTTL(p.Pkt)
		if err != nil {
			p.Release()
			return ErrMalformedIPv4
		}
		if !alive {
			n.sh.emit(TraceDropTTL, n, p)
			p.Release()
			return ErrTTLExhausted
		}
		n.sh.emit(TraceForward, n, p)
	}
	link.transmit(n, p)
	return nil
}

// deliver hands the packet to the local handler, then releases the
// buffer: handler views are only valid during the call.
func (n *Node) deliver(p *Packet) {
	n.sh.emit(TraceDeliver, n, p)
	if n.handler != nil {
		n.handler(n.sh.now, p.Pkt)
	}
	p.Release()
}

func remarkDSCP(pkt []byte, dscp uint8) {
	if len(pkt) < wire.IPv4HeaderLen {
		return
	}
	pkt[1] = dscp<<2 | pkt[1]&0b11
	// Repair header checksum.
	ihl := int(pkt[0]&0x0f) * 4
	if len(pkt) < ihl {
		return
	}
	pkt[10], pkt[11] = 0, 0
	ck := wire.Checksum(pkt[:ihl])
	pkt[10], pkt[11] = byte(ck>>8), byte(ck)
}
