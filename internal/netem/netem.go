// Package netem is a deterministic discrete-event network emulator: the
// substrate standing in for the paper's testbed and for the Internet
// topology of its Figure 1.
//
// A Simulator owns a virtual clock and an event heap. Nodes (hosts and
// routers) are connected by Links with propagation delay, transmission
// rate and bounded egress queues. Routing tables are computed with
// Dijkstra over link costs; anycast groups resolve to the nearest member,
// which is how the neutralizer's anycast address is modelled. Transit
// hooks let middle networks (the discriminatory ISPs of package isp)
// observe, delay, or drop packets in flight, and trace hooks feed the
// measurement package.
//
// Everything runs single-threaded inside the event loop, so handlers may
// freely call back into the simulator; with a fixed seed, runs are fully
// reproducible.
package netem

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"
	"net/netip"
	"time"

	"netneutral/internal/wire"
)

// Errors returned by the simulator.
var (
	ErrNoRoute       = errors.New("netem: no route to destination")
	ErrUnknownNode   = errors.New("netem: unknown node")
	ErrAddrInUse     = errors.New("netem: address already assigned")
	ErrNotConnected  = errors.New("netem: nodes are not connected")
	ErrTTLExhausted  = errors.New("netem: TTL exhausted")
	ErrMalformedIPv4 = errors.New("netem: malformed IPv4 packet")
)

// Verdict is a transit hook's decision about a packet.
type Verdict struct {
	// Drop discards the packet.
	Drop bool
	// Delay holds the packet for the given duration before it continues.
	Delay time.Duration
	// DSCP, when non-nil, remarks the packet's DSCP (a discriminatory ISP
	// deprioritizing traffic it cannot read).
	DSCP *uint8
}

// Deliver is the zero Verdict: pass the packet unchanged.
var Deliver = Verdict{}

// TransitHook inspects a packet crossing a node. Hooks run on every
// packet a node receives, before local delivery or forwarding. The hook
// may read pkt but must not retain it past the call.
type TransitHook func(now time.Time, node *Node, pkt []byte) Verdict

// Handler consumes packets locally delivered to a node.
type Handler func(now time.Time, pkt []byte)

// TraceKind labels trace events.
type TraceKind uint8

// Trace event kinds.
const (
	TraceSend TraceKind = iota + 1
	TraceForward
	TraceDeliver
	TraceDropQueue
	TraceDropPolicy
	TraceDropNoRoute
	TraceDropTTL
)

func (k TraceKind) String() string {
	switch k {
	case TraceSend:
		return "send"
	case TraceForward:
		return "forward"
	case TraceDeliver:
		return "deliver"
	case TraceDropQueue:
		return "drop-queue"
	case TraceDropPolicy:
		return "drop-policy"
	case TraceDropNoRoute:
		return "drop-noroute"
	case TraceDropTTL:
		return "drop-ttl"
	default:
		return fmt.Sprintf("trace(%d)", uint8(k))
	}
}

// TraceEvent describes one packet event for observers.
type TraceEvent struct {
	Kind TraceKind
	Time time.Time
	Node *Node
	Pkt  []byte
}

// TraceHook observes packet events. It must not retain Pkt.
type TraceHook func(ev TraceEvent)

// Simulator is the discrete-event engine. Create with NewSimulator.
type Simulator struct {
	now    time.Time
	seq    uint64
	events eventHeap
	rng    *rand.Rand

	nodes   map[string]*Node
	byAddr  map[netip.Addr]*Node
	anycast map[netip.Addr][]*Node
	traces  []TraceHook

	packetsDelivered uint64
	packetsDropped   uint64
}

// NewSimulator creates a simulator whose clock starts at start and whose
// randomness derives from seed.
func NewSimulator(start time.Time, seed int64) *Simulator {
	return &Simulator{
		now:     start,
		rng:     rand.New(rand.NewSource(seed)),
		nodes:   make(map[string]*Node),
		byAddr:  make(map[netip.Addr]*Node),
		anycast: make(map[netip.Addr][]*Node),
	}
}

// Now returns the current virtual time.
func (s *Simulator) Now() time.Time { return s.now }

// Rand returns the simulator's seeded PRNG (deterministic runs).
func (s *Simulator) Rand() *rand.Rand { return s.rng }

// Trace registers a global trace hook.
func (s *Simulator) Trace(h TraceHook) { s.traces = append(s.traces, h) }

func (s *Simulator) emit(kind TraceKind, node *Node, pkt []byte) {
	if kind == TraceDeliver {
		s.packetsDelivered++
	}
	if kind >= TraceDropQueue {
		s.packetsDropped++
	}
	for _, h := range s.traces {
		h(TraceEvent{Kind: kind, Time: s.now, Node: node, Pkt: pkt})
	}
}

// Delivered and Dropped report global packet counters.
func (s *Simulator) Delivered() uint64 { return s.packetsDelivered }

// Dropped reports the number of packets dropped anywhere in the network.
func (s *Simulator) Dropped() uint64 { return s.packetsDropped }

// Schedule runs fn after d of virtual time.
func (s *Simulator) Schedule(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.seq++
	heap.Push(&s.events, &event{at: s.now.Add(d), seq: s.seq, fn: fn})
}

// ScheduleAt runs fn at absolute virtual time t (clamped to now).
func (s *Simulator) ScheduleAt(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.seq++
	heap.Push(&s.events, &event{at: t, seq: s.seq, fn: fn})
}

// Run processes events until the queue is empty.
func (s *Simulator) Run() {
	for len(s.events) > 0 {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		ev.fn()
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock
// to t.
func (s *Simulator) RunUntil(t time.Time) {
	for len(s.events) > 0 && !s.events[0].at.After(t) {
		ev := heap.Pop(&s.events).(*event)
		s.now = ev.at
		ev.fn()
	}
	if s.now.Before(t) {
		s.now = t
	}
}

// RunFor advances the simulation by d.
func (s *Simulator) RunFor(d time.Duration) { s.RunUntil(s.now.Add(d)) }

type event struct {
	at  time.Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)         { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() any           { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) Peek() *event        { return h[0] }
func (s *Simulator) PendingEvents() int { return len(s.events) }

// Node is a host or router in the emulated network.
type Node struct {
	Name string
	// Domain tags the administrative domain (ISP) the node belongs to;
	// package isp uses it to scope eavesdropping and policy.
	Domain string

	sim     *Simulator
	addrs   []netip.Addr
	links   []*Link
	routes  []route
	handler Handler
	hooks   []TransitHook
}

type route struct {
	prefix netip.Prefix
	link   *Link
}

// AddNode creates a node with the given unique name and addresses.
func (s *Simulator) AddNode(name, domain string, addrs ...netip.Addr) (*Node, error) {
	if _, dup := s.nodes[name]; dup {
		return nil, fmt.Errorf("netem: duplicate node name %q", name)
	}
	n := &Node{Name: name, Domain: domain, sim: s}
	for _, a := range addrs {
		if _, dup := s.byAddr[a]; dup {
			return nil, fmt.Errorf("%w: %v", ErrAddrInUse, a)
		}
	}
	for _, a := range addrs {
		s.byAddr[a] = n
		n.addrs = append(n.addrs, a)
	}
	s.nodes[name] = n
	return n, nil
}

// MustAddNode is AddNode that panics on error; for topology builders.
func (s *Simulator) MustAddNode(name, domain string, addrs ...netip.Addr) *Node {
	n, err := s.AddNode(name, domain, addrs...)
	if err != nil {
		panic(err)
	}
	return n
}

// Node returns a node by name, or nil.
func (s *Simulator) Node(name string) *Node { return s.nodes[name] }

// NodeByAddr returns the node owning addr, or nil.
func (s *Simulator) NodeByAddr(a netip.Addr) *Node { return s.byAddr[a] }

// AddAnycast registers addr as an anycast address served by the given
// nodes. Routing resolves it to the nearest member.
func (s *Simulator) AddAnycast(addr netip.Addr, members ...*Node) {
	s.anycast[addr] = append(s.anycast[addr], members...)
}

// AnycastMembers returns the members of an anycast group (nil if none).
func (s *Simulator) AnycastMembers(addr netip.Addr) []*Node { return s.anycast[addr] }

// Sim returns the simulator the node belongs to.
func (n *Node) Sim() *Simulator { return n.sim }

// Addrs returns the node's addresses.
func (n *Node) Addrs() []netip.Addr { return n.addrs }

// Addr returns the node's first address (its canonical identity), or the
// zero Addr for address-less transit routers.
func (n *Node) Addr() netip.Addr {
	if len(n.addrs) == 0 {
		return netip.Addr{}
	}
	return n.addrs[0]
}

// AddAddr assigns an extra address to the node at runtime (used by the
// neutralizer's dynamic-address QoS remedy). Routes must be reinstalled
// by the caller (Simulator.BuildRoutes) for remote reachability, or the
// address can be covered by an existing prefix route.
func (n *Node) AddAddr(a netip.Addr) error {
	if _, dup := n.sim.byAddr[a]; dup {
		return fmt.Errorf("%w: %v", ErrAddrInUse, a)
	}
	n.sim.byAddr[a] = n
	n.addrs = append(n.addrs, a)
	return nil
}

// RemoveAddr releases an address previously added with AddAddr.
func (n *Node) RemoveAddr(a netip.Addr) {
	if n.sim.byAddr[a] == n {
		delete(n.sim.byAddr, a)
	}
	for i, x := range n.addrs {
		if x == a {
			n.addrs = append(n.addrs[:i], n.addrs[i+1:]...)
			break
		}
	}
}

// HasAddr reports whether a is one of the node's addresses.
func (n *Node) HasAddr(a netip.Addr) bool {
	for _, x := range n.addrs {
		if x == a {
			return true
		}
	}
	return false
}

// SetHandler installs the local-delivery handler.
func (n *Node) SetHandler(h Handler) { n.handler = h }

// AddTransitHook installs a hook run on every packet the node receives.
func (n *Node) AddTransitHook(h TransitHook) { n.hooks = append(n.hooks, h) }

// AddRoute installs a static prefix route through the given link.
func (n *Node) AddRoute(prefix netip.Prefix, l *Link) {
	n.routes = append(n.routes, route{prefix: prefix, link: l})
}

// lookupRoute returns the best (longest-prefix) route for dst, or nil.
func (n *Node) lookupRoute(dst netip.Addr) *Link {
	best := -1
	var via *Link
	for i := range n.routes {
		r := &n.routes[i]
		if r.prefix.Contains(dst) && r.prefix.Bits() > best {
			best = r.prefix.Bits()
			via = r.link
		}
	}
	return via
}

// Send originates a packet from node n. The packet must be a serialized
// IPv4 datagram. Returns ErrNoRoute if the destination is unreachable.
func (n *Node) Send(pkt []byte) error {
	if len(pkt) < wire.IPv4HeaderLen {
		return ErrMalformedIPv4
	}
	n.sim.emit(TraceSend, n, pkt)
	return n.dispatch(pkt, true)
}

// dispatch delivers locally or forwards toward the destination. origin
// marks packets sent by this node itself (no transit hooks, no TTL work).
func (n *Node) dispatch(pkt []byte, origin bool) error {
	if _, _, err := wire.IPv4Addrs(pkt); err != nil {
		return ErrMalformedIPv4
	}
	if !origin {
		// Transit/ingress policy.
		var delay time.Duration
		for _, h := range n.hooks {
			v := h(n.sim.now, n, pkt)
			if v.Drop {
				n.sim.emit(TraceDropPolicy, n, pkt)
				return nil
			}
			if v.Delay > delay {
				delay = v.Delay
			}
			if v.DSCP != nil {
				remarkDSCP(pkt, *v.DSCP)
			}
		}
		if delay > 0 {
			cp := clone(pkt)
			n.sim.Schedule(delay, func() { _ = n.dispatchAfterPolicy(cp, false) })
			return nil
		}
	}
	return n.dispatchAfterPolicy(pkt, origin)
}

// dispatchAfterPolicy completes local delivery or forwarding once policy
// hooks have run. origin marks packets originated by this node, which are
// not TTL-decremented and do not count as forwarding.
func (n *Node) dispatchAfterPolicy(pkt []byte, origin bool) error {
	_, dst, err := wire.IPv4Addrs(pkt)
	if err != nil {
		return ErrMalformedIPv4
	}
	// Local unicast delivery?
	if n.HasAddr(dst) {
		n.deliver(pkt)
		return nil
	}
	// Local anycast delivery?
	if members := n.sim.anycast[dst]; len(members) > 0 {
		for _, m := range members {
			if m == n {
				n.deliver(pkt)
				return nil
			}
		}
	}
	// Forward.
	link := n.lookupRoute(dst)
	if link == nil {
		n.sim.emit(TraceDropNoRoute, n, pkt)
		return ErrNoRoute
	}
	if !origin {
		alive, err := wire.DecrementTTL(pkt)
		if err != nil {
			return ErrMalformedIPv4
		}
		if !alive {
			n.sim.emit(TraceDropTTL, n, pkt)
			return ErrTTLExhausted
		}
		n.sim.emit(TraceForward, n, pkt)
	}
	link.transmit(n, pkt)
	return nil
}

func (n *Node) deliver(pkt []byte) {
	n.sim.emit(TraceDeliver, n, pkt)
	if n.handler != nil {
		n.handler(n.sim.now, pkt)
	}
}

func remarkDSCP(pkt []byte, dscp uint8) {
	if len(pkt) < wire.IPv4HeaderLen {
		return
	}
	pkt[1] = dscp<<2 | pkt[1]&0b11
	// Repair header checksum.
	ihl := int(pkt[0]&0x0f) * 4
	if len(pkt) < ihl {
		return
	}
	pkt[10], pkt[11] = 0, 0
	ck := wire.Checksum(pkt[:ihl])
	pkt[10], pkt[11] = byte(ck>>8), byte(ck)
}

func clone(b []byte) []byte {
	c := make([]byte, len(b))
	copy(c, b)
	return c
}
