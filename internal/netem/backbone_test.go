package netem

import (
	"testing"
	"time"
)

func buildTestBackbone(t *testing.T, spec BackboneSpec) (*Simulator, *Backbone) {
	t.Helper()
	s := NewSimulator(simStart, 1)
	bb, err := BuildBackbone(s, spec)
	if err != nil {
		t.Fatal(err)
	}
	return s, bb
}

func TestBuildBackboneRouting(t *testing.T) {
	s, bb := buildTestBackbone(t, BackboneSpec{Metros: 4, HostsPerMetro: 300, HostsPerEdge: 128})

	// Host in metro 0 reaches a host in metro 3 across the core.
	src, dst := bb.Metros[0].Hosts[5], bb.Metros[3].Hosts[299]
	gotCross := false
	dst.SetHandler(func(time.Time, []byte) { gotCross = true })
	if err := src.Send(mkUDP(t, bb.HostAddr(0, 5), bb.HostAddr(3, 299), nil)); err != nil {
		t.Fatal(err)
	}
	// Outside user of metro 2 reaches its metro's anycast neutralizer.
	atBorder := false
	bb.Metros[2].Border.SetHandler(func(time.Time, []byte) { atBorder = true })
	m2 := bb.Metros[2]
	if err := m2.Outside[0].Send(mkUDP(t, m2.OutsideAddr(0), m2.Spec.Anycast, nil)); err != nil {
		t.Fatal(err)
	}
	// Outside user of metro 1 reaches a customer host of metro 0.
	delivered := bb.Metros[0].CountDeliveries()
	m1 := bb.Metros[1]
	if err := m1.Outside[0].Send(mkUDP(t, m1.OutsideAddr(0), bb.HostAddr(0, 0), nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !gotCross || !atBorder || delivered.Total() != 1 {
		t.Fatalf("cross-metro=%v anycast=%v outside->host=%d", gotCross, atBorder, delivered.Total())
	}

	// Core routing state is O(metros): 3 routes per metro, none per host.
	if n := bb.Core.RouteCount(); n != 3*len(bb.Metros) {
		t.Errorf("core has %d routes, want %d", n, 3*len(bb.Metros))
	}
	// Address blocks are disjoint and metro-local addressing stayed intact.
	for m := range bb.Metros {
		for m2 := range bb.Metros {
			if m != m2 && bb.Metros[m].CustomerNet.Overlaps(bb.Metros[m2].CustomerNet) {
				t.Fatalf("metros %d and %d overlap: %v vs %v", m, m2,
					bb.Metros[m].CustomerNet, bb.Metros[m2].CustomerNet)
			}
		}
	}
}

func TestBuildBackboneRejectsBadSpecs(t *testing.T) {
	for name, spec := range map[string]BackboneSpec{
		"zero metros":     {Metros: 0, HostsPerMetro: 10},
		"zero hosts":      {Metros: 2, HostsPerMetro: 0},
		"customer space":  {Metros: 4096, HostsPerMetro: 1 << 21},
		"outside space":   {Metros: 4096, HostsPerMetro: 10, OutsidePerMetro: 1 << 9},
		"too many metros": {Metros: 5000, HostsPerMetro: 10},
		"sharded, no edge delay": {Metros: 2, HostsPerMetro: 10, ShardsPerMetro: 2,
			EdgeLink: LinkConfig{Delay: -1}},
	} {
		s := NewSimulator(simStart, 1)
		if _, err := BuildBackbone(s, spec); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

// TestBackboneFluidDeterministic: the fluid layer's byte accounting and
// capacity consumption must replay bit-identically across worker counts
// (its jitter draws from shard PRNGs, its ticks are shard events).
func TestBackboneFluidDeterministic(t *testing.T) {
	run := func(workers int) (fluidBytes, fluidTicks, delivered uint64) {
		s, bb := buildTestBackbone(t, BackboneSpec{
			Metros: 3, HostsPerMetro: 64, HostsPerEdge: 32,
			EdgeLink:        LinkConfig{Delay: time.Millisecond, RateBps: 10e6},
			FluidBpsPerEdge: 8e6, FluidInterval: 10 * time.Millisecond,
		})
		s.SetWorkers(workers)
		if err := bb.StartFluid(300 * time.Millisecond); err != nil {
			t.Fatal(err)
		}
		d := bb.Metros[1].CountDeliveries()
		src := bb.Metros[0].Hosts[0]
		pkt := mkUDP(t, bb.HostAddr(0, 0), bb.HostAddr(1, 7), nil)
		for i := 0; i < 50; i++ {
			src.Schedule(time.Duration(i)*5*time.Millisecond, func() {
				src.Send(pkt)
			})
		}
		s.Run()
		fluidBytes, fluidTicks = s.FluidTotals()
		return fluidBytes, fluidTicks, d.Total()
	}
	b1, t1, d1 := run(1)
	b4, t4, d4 := run(4)
	if b1 == 0 || t1 == 0 {
		t.Fatalf("fluid accounted nothing: bytes=%d ticks=%d", b1, t1)
	}
	if d1 != 50 {
		t.Fatalf("delivered %d/50 probes", d1)
	}
	if b1 != b4 || t1 != t4 || d1 != d4 {
		t.Fatalf("worker divergence: bytes %d vs %d, ticks %d vs %d, delivered %d vs %d",
			b1, b4, t1, t4, d1, d4)
	}
}

// TestBackboneFluidConsumesCapacity: a probe sharing a rate-limited link
// with fluid load must serialize slower than without it.
func TestBackboneFluidConsumesCapacity(t *testing.T) {
	probe := func(fluidBps float64) time.Duration {
		s, bb := buildTestBackbone(t, BackboneSpec{
			Metros: 1, HostsPerMetro: 8,
			EdgeLink:        LinkConfig{Delay: time.Millisecond, RateBps: 1e6},
			FluidBpsPerEdge: fluidBps, FluidInterval: 50 * time.Millisecond,
		})
		if err := bb.StartFluid(time.Second); err != nil {
			t.Fatal(err)
		}
		f := bb.Metros[0]
		var at time.Time
		f.Hosts[3].SetHandler(func(now time.Time, _ []byte) { at = now })
		// Send mid-run so the fluid rate is already applied.
		f.Outside[0].Schedule(100*time.Millisecond, func() {
			f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(3), make([]byte, 1000)))
		})
		s.Run()
		if at.IsZero() {
			t.Fatal("probe undelivered")
		}
		return at.Sub(simStart)
	}
	idle := probe(0)
	loaded := probe(900e3) // 90% of the 1 Mbps edge link
	if loaded <= idle {
		t.Fatalf("fluid load did not slow the shared link: idle %v, loaded %v", idle, loaded)
	}
}

// TestBackboneMillionHosts is the continental-scale acceptance gate:
// a 1M-host backbone must build in ≤ 10s and route end to end.
func TestBackboneMillionHosts(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	if raceEnabled {
		t.Skip("race detector inflates build-time constants")
	}
	start := time.Now()
	s, bb := buildTestBackbone(t, BackboneSpec{Metros: 16, HostsPerMetro: 62500})
	built := time.Since(start)
	if built > 10*time.Second {
		t.Errorf("1M-host build took %v, want <= 10s", built)
	}
	if n := s.NodeCount(); n < 1_000_000 {
		t.Fatalf("only %d nodes", n)
	}
	gotCross := false
	bb.Metros[15].Hosts[62499].SetHandler(func(time.Time, []byte) { gotCross = true })
	if err := bb.Metros[0].Hosts[0].Send(mkUDP(t, bb.HostAddr(0, 0), bb.HostAddr(15, 62499), nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !gotCross {
		t.Fatal("corner-to-corner packet undelivered")
	}
	t.Logf("built 1M hosts in %v", built)
}
