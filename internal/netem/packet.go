package netem

import (
	"fmt"
	"time"
)

// Packet is a pooled, refcounted packet buffer. One Packet travels the
// whole emulated path — origination, link queues, transit hooks, local
// delivery — without per-hop copies; when its last reference is released
// it returns to the simulator's pool for reuse.
//
// Ownership rules:
//   - Node.SendPacket and Link queues take ownership (one reference).
//   - TransitHook, Handler and TraceHook callbacks receive a []byte view
//     of the buffer that is valid only for the duration of the call; to
//     keep the bytes longer, copy them (bytes.Clone).
//   - Code that holds a *Packet itself (queue disciplines, generators
//     passing buffers to SendPacket) uses Retain/Release to extend or
//     end its lifetime.
//   - Simulator.SetPoolDebug(true) poisons released buffers so a
//     retained-slice bug reads 0xDD garbage instead of silently aliasing
//     a recycled packet (see TestPacketPoolPoisonsReleasedBuffers).
type Packet struct {
	// Pkt is the serialized IPv4 datagram: a window into the pooled
	// backing buffer. Never append to it or store it past a callback.
	Pkt []byte
	// DSCP caches the packet's DSCP at enqueue time for queue
	// disciplines (package diffserv).
	DSCP uint8
	// Size is len(Pkt), kept for queue disciplines.
	Size int
	// Arrived is when the packet entered its current egress queue.
	Arrived time.Time

	buf  []byte // full-capacity backing array
	refs int32
	pool *packetPool
}

// QueuedPacket is the historical name for a packet sitting in a link
// egress queue; queue disciplines operate on the pooled Packet directly.
type QueuedPacket = Packet

// Retain adds a reference, keeping the buffer alive past the current
// callback. Pair every Retain with a Release.
func (p *Packet) Retain() *Packet {
	if p.pool != nil {
		p.refs++
	}
	return p
}

// Release drops one reference; at zero the buffer returns to the pool.
// Packets not obtained from a pool (zero-value literals in tests and
// queue benchmarks) ignore Release.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	p.refs--
	switch {
	case p.refs > 0:
	case p.refs == 0:
		p.pool.put(p)
	default:
		panic(fmt.Sprintf("netem: Packet released %d times past zero", -p.refs))
	}
}

// packetPool is a freelist of Packets. The event loop is single-threaded,
// so no locking is needed; buffers are reused most-recently-freed-first
// for cache locality.
type packetPool struct {
	free  []*Packet
	debug bool

	allocated uint64 // buffers ever created
	gets      uint64 // checkouts (hits + misses)
}

const poisonByte = 0xDD

// get returns a packet with an n-byte Pkt window, contents undefined.
func (pp *packetPool) get(n int) *Packet {
	pp.gets++
	var p *Packet
	if k := len(pp.free); k > 0 {
		p = pp.free[k-1]
		pp.free = pp.free[:k-1]
	} else {
		pp.allocated++
		p = &Packet{pool: pp}
	}
	if cap(p.buf) < n {
		p.buf = make([]byte, n+64) // headroom to absorb jittering sizes
	}
	p.Pkt = p.buf[:n]
	p.Size = n
	p.DSCP = 0
	p.refs = 1
	return p
}

// put returns a packet to the freelist, poisoning it first in debug mode
// so retained views are caught rather than silently reading recycled
// data.
func (pp *packetPool) put(p *Packet) {
	if pp.debug {
		for i := range p.Pkt {
			p.Pkt[i] = poisonByte
		}
	}
	p.Pkt = nil
	pp.free = append(pp.free, p)
}

// SetPoolDebug toggles poisoning of released packet buffers. Enable it in
// tests that must prove no hook or handler retains a buffer view past its
// call.
func (s *Simulator) SetPoolDebug(on bool) { s.pool.debug = on }

// NewPacket checks a buffer out of the simulator's pool and copies b into
// it: the one copy a packet pays at origination.
func (s *Simulator) NewPacket(b []byte) *Packet {
	p := s.pool.get(len(b))
	copy(p.Pkt, b)
	return p
}

// PoolStats reports how many packet buffers were ever allocated versus
// checked out; a steady-state run re-checks out the same few buffers.
func (s *Simulator) PoolStats() (allocated, gets uint64) {
	return s.pool.allocated, s.pool.gets
}
