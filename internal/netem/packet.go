package netem

import (
	"fmt"
	"time"

	"netneutral/internal/obs"
)

// Packet is a pooled, refcounted packet buffer. One Packet travels the
// whole emulated path — origination, link queues, transit hooks, local
// delivery — without per-hop copies; when its last reference is released
// it returns to the simulator's pool for reuse.
//
// Ownership rules:
//   - Node.SendPacket and Link queues take ownership (one reference).
//   - TransitHook, Handler and TraceHook callbacks receive a []byte view
//     of the buffer that is valid only for the duration of the call; to
//     keep the bytes longer, copy them (bytes.Clone).
//   - Code that holds a *Packet itself (queue disciplines, generators
//     passing buffers to SendPacket) uses Retain/Release to extend or
//     end its lifetime.
//   - Simulator.SetPoolDebug(true) poisons released buffers so a
//     retained-slice bug reads 0xDD garbage instead of silently aliasing
//     a recycled packet (see TestPacketPoolPoisonsReleasedBuffers).
type Packet struct {
	// Pkt is the serialized IPv4 datagram: a window into the pooled
	// backing buffer. Never append to it or store it past a callback.
	Pkt []byte
	// DSCP caches the packet's DSCP at enqueue time for queue
	// disciplines (package diffserv).
	DSCP uint8
	// Size is len(Pkt), kept for queue disciplines.
	Size int
	// Arrived is when the packet entered its current egress queue.
	Arrived time.Time

	buf  []byte // full-capacity backing array
	refs int32
	pool *packetPool // pool Release pushes to: the shard the packet is on
	home *packetPool // pool that allocated the buffer (owns it at rest)

	// Per-journey delay attribution, accumulated in nanoseconds since the
	// journey's previous trace event; shard.emit snapshots and resets the
	// accumulators, so each hop event carries exactly the components that
	// elapsed since the one before it. journey is the id stamped at
	// SendPacket (a pure function of the originating shard's sequence,
	// never of the worker count).
	attrQueue, attrSer, attrProp, attrPolicy, attrProc int64
	cause                                              PolicyCause
	class                                              uint8
	journey                                            uint64
	// flow caches FlowHash(Pkt), computed at the journey's first trace
	// emission (0 = not yet computed). Flow identity is stable for a
	// packet's whole journey — in-flight policing only remarks DSCP, and
	// address rewrites go through new packets — so later hops skip the
	// header parse and hash.
	flow uint64
}

// flowID returns the packet's flow hash, computing and caching it on
// first use. Packets too short for an IPv4 header hash to 0 and
// recompute harmlessly.
func (p *Packet) flowID() uint64 {
	if p.flow == 0 {
		p.flow = FlowHash(p.Pkt)
	}
	return p.flow
}

// QueuedPacket is the historical name for a packet sitting in a link
// egress queue; queue disciplines operate on the pooled Packet directly.
type QueuedPacket = Packet

// Retain adds a reference, keeping the buffer alive past the current
// callback. Pair every Retain with a Release.
func (p *Packet) Retain() *Packet {
	if p.pool != nil {
		p.refs++
	}
	return p
}

// Release drops one reference; at zero the buffer returns to the pool.
// Packets not obtained from a pool (zero-value literals in tests and
// queue benchmarks) ignore Release.
func (p *Packet) Release() {
	if p.pool == nil {
		return
	}
	p.refs--
	switch {
	case p.refs > 0:
	case p.refs == 0:
		p.pool.put(p)
	default:
		panic(fmt.Sprintf("netem: Packet released %d times past zero", -p.refs))
	}
}

// packetPool is a freelist of Packets. Each shard owns one: within an
// epoch only the owning shard's goroutine touches it, so no locking is
// needed; buffers are reused most-recently-freed-first for cache
// locality. A packet that crosses a shard boundary is re-homed to the
// destination shard's pool at the epoch barrier (see shard.mergeIncoming),
// so Release always pushes onto the freelist of the shard it runs on.
// Consequence: a cross-shard packet must carry exactly one reference —
// holding a Retain on a packet while it travels to another shard is
// unsupported (the refcount is not atomic).
type packetPool struct {
	shard int // owning shard id
	free  []*Packet
	// homebound[s] parks buffers released here that shard s's pool
	// allocated; the home shard reclaims them at the next epoch barrier
	// (one writer — this pool's shard — one reader — the home shard's
	// merge phase — never concurrently).
	homebound [][]*Packet
	debug     bool

	// Registry stripes (netem_pool_* families), owned by this pool's
	// shard; set by simMetrics.attachShard before any checkout.
	allocated *obs.Counter // buffers ever created
	gets      *obs.Counter // checkouts (hits + misses)
}

const poisonByte = 0xDD

// get returns a packet with an n-byte Pkt window, contents undefined.
func (pp *packetPool) get(n int) *Packet {
	pp.gets.Inc()
	var p *Packet
	if k := len(pp.free); k > 0 {
		p = pp.free[k-1]
		pp.free = pp.free[:k-1]
		p.pool = pp // may still point at the shard of its last journey
	} else {
		pp.allocated.Inc()
		p = &Packet{pool: pp, home: pp}
	}
	if cap(p.buf) < n {
		p.buf = make([]byte, n+64) // headroom to absorb jittering sizes
	}
	p.Pkt = p.buf[:n]
	p.Size = n
	p.DSCP = 0
	p.refs = 1
	p.attrQueue, p.attrSer, p.attrProp, p.attrPolicy, p.attrProc = 0, 0, 0, 0, 0
	p.cause, p.class, p.journey = 0, 0, 0
	p.flow = 0
	return p
}

// put returns a packet to the freelist, poisoning it first in debug mode
// so retained views are caught rather than silently reading recycled
// data. A buffer released away from the pool that allocated it (it
// crossed shards in flight) is parked homebound; the owning shard
// reclaims it at the next epoch barrier, so producer shards keep
// recycling even when every packet dies on a consumer shard.
func (pp *packetPool) put(p *Packet) {
	if pp.debug {
		for i := range p.Pkt {
			p.Pkt[i] = poisonByte
		}
	}
	p.Pkt = nil
	if p.home == pp {
		pp.free = append(pp.free, p)
		return
	}
	h := p.home.shard
	for len(pp.homebound) <= h {
		pp.homebound = append(pp.homebound, nil)
	}
	pp.homebound[h] = append(pp.homebound[h], p)
}

// SetPoolDebug toggles poisoning of released packet buffers on every
// shard pool. Enable it in tests that must prove no hook or handler
// retains a buffer view past its call.
func (s *Simulator) SetPoolDebug(on bool) {
	s.poolDebug = on
	for _, sh := range s.shards {
		sh.pool.debug = on
	}
}

// NewPacket checks a buffer out of shard 0's pool and copies b into it:
// the one copy a packet pays at origination. Senders running inside
// shard callbacks on sharded topologies use Node.NewPacket, which draws
// from the owning shard's pool; calling NewPacket from inside a
// multi-worker run panics (see Simulator.Schedule).
func (s *Simulator) NewPacket(b []byte) *Packet {
	s.guardShard0()
	p := s.shards[0].pool.get(len(b))
	copy(p.Pkt, b)
	return p
}

// PoolStats reports how many packet buffers were ever allocated versus
// checked out across all shard pools (a thin read over the
// netem_pool_* registry families); a steady-state run re-checks out the
// same few buffers.
func (s *Simulator) PoolStats() (allocated, gets uint64) {
	return s.met.poolAlloc.Value(), s.met.poolGets.Value()
}
