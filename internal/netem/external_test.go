package netem

import (
	"testing"
	"time"
)

// TestShardSeedStreamsDoNotCollide regresses the seed-derivation bug:
// applying the golden-ratio increment to the mixer input instead of
// stepping a mixed stream made shardSeed(r, 2) == shardSeed(r+g, 1), so
// experiments whose root seeds differed by the increment shared shard
// RNG streams.
func TestShardSeedStreamsDoNotCollide(t *testing.T) {
	const golden = int64(-0x61C8864680B583EB) // 0x9E3779B97F4A7C15 as int64
	roots := []int64{0, 1, 7, 42, -3, 1 << 40}
	for _, r := range roots {
		if a, b := shardSeed(r, 2), shardSeed(r+golden, 1); a == b {
			t.Errorf("shardSeed(%d, 2) == shardSeed(%d, 1) == %d", r, r+golden, a)
		}
		// Distinct shards of one root must differ too.
		seen := map[int64]int{}
		for id := 0; id < 64; id++ {
			s := shardSeed(r, id)
			if prev, dup := seen[s]; dup {
				t.Errorf("root %d: shards %d and %d share seed %d", r, prev, id, s)
			}
			seen[s] = id
		}
	}
	// Shard 0 must keep the root itself: single-shard replay compatibility.
	if shardSeed(99, 0) != 99 {
		t.Errorf("shard 0 seed = %d, want the root", shardSeed(99, 0))
	}
}

// TestStepMatchesRun drives a scenario one event at a time via the
// external-waiter API and checks it lands on the same counters and
// final clock as a plain Run.
func TestStepMatchesRun(t *testing.T) {
	build := func() (*Simulator, *Node) {
		s := NewSimulator(simStart, 5)
		a := s.MustAddNode("a", "", addr("10.0.0.1"))
		r := s.MustAddNode("r", "", addr("10.0.0.254"))
		b := s.MustAddNode("b", "", addr("10.0.1.1"))
		s.Connect(a, r, LinkConfig{Delay: time.Millisecond, RateBps: 1e6})
		s.Connect(r, b, LinkConfig{Delay: 2 * time.Millisecond, RateBps: 1e6})
		s.BuildRoutes()
		for i := 0; i < 5; i++ {
			if err := a.Send(mkUDP(t, a.Addr(), b.Addr(), make([]byte, 100+i))); err != nil {
				t.Fatal(err)
			}
		}
		return s, b
	}

	ref, _ := build()
	ref.Run()

	s, _ := build()
	steps := 0
	for {
		at, ok := s.NextEventAt()
		if !ok {
			break
		}
		if at.Before(s.Now()) {
			t.Fatalf("next event at %v is before now %v", at, s.Now())
		}
		if !s.Step() {
			t.Fatal("NextEventAt reported an event but Step ran none")
		}
		steps++
	}
	if s.Step() {
		t.Error("Step on an empty queue reported progress")
	}
	if got, want := s.EventsProcessed(), ref.EventsProcessed(); got != want {
		t.Errorf("events processed = %d, want %d", got, want)
	}
	if got, want := s.Delivered(), ref.Delivered(); got != want {
		t.Errorf("delivered = %d, want %d", got, want)
	}
	if !s.Now().Equal(ref.Now()) {
		t.Errorf("final clock = %v, want %v", s.Now(), ref.Now())
	}
	if uint64(steps) != s.EventsProcessed() {
		t.Errorf("steps = %d, events processed = %d", steps, s.EventsProcessed())
	}
}

// TestStepRejectsShardedSim: the single-step API must refuse a genuinely
// sharded simulator instead of silently breaking epoch ordering.
func TestStepRejectsShardedSim(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.0.2"))
	s.Connect(a, b, LinkConfig{Delay: time.Millisecond})
	s.SetShardCount(2)
	b.SetShard(1)
	defer func() {
		if recover() == nil {
			t.Fatal("Step on a sharded simulator did not panic")
		}
	}()
	s.Step()
}
