package netem

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"runtime"
	"testing"
	"time"
)

// randTopology builds a random connected topology: n nodes each with one
// address, a spanning tree plus extra random links with random costs.
func randTopology(t *testing.T, rng *rand.Rand, n int) (*Simulator, []*Node) {
	t.Helper()
	s := NewSimulator(simStart, rng.Int63())
	nodes := make([]*Node, n)
	for i := range nodes {
		a := netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1})
		nodes[i] = s.MustAddNode(fmt.Sprintf("n%d", i), "", a)
	}
	link := func(i, j int) {
		s.Connect(nodes[i], nodes[j], LinkConfig{
			Delay: time.Duration(1+rng.Intn(20)) * time.Millisecond,
			Cost:  float64(1 + rng.Intn(100)),
		})
	}
	for i := 1; i < n; i++ {
		link(rng.Intn(i), i) // spanning tree: connected by construction
	}
	for k := 0; k < n/2; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i != j {
			link(i, j)
		}
	}
	return s, nodes
}

// TestFIBMatchesLinearReference: on random topologies with random extra
// prefix routes and random (deliberately overlapping) block/range
// routes, the indexed FIB must return exactly what the linear reference
// scan returns, for every probe address.
func TestFIBMatchesLinearReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 4 + rng.Intn(30)
		s, nodes := randTopology(t, rng, n)
		s.BuildRoutes()

		// Sprinkle random broader prefixes (including overlapping and
		// duplicate lengths) over random nodes.
		for k := 0; k < 10; k++ {
			nd := nodes[rng.Intn(n)]
			if len(nd.links) == 0 {
				continue
			}
			bits := []int{0, 8, 10, 12, 16, 24}[rng.Intn(6)]
			base := netip.AddrFrom4([4]byte{byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), 0})
			p, err := base.Prefix(bits)
			if err != nil {
				t.Fatal(err)
			}
			nd.AddRoute(p, nd.links[rng.Intn(len(nd.links))])
		}

		// Sprinkle compressed block/range routes, confined to 10.0-3.x so
		// they overlap the node /32s, the prefixes above, and each other —
		// the tie-breaks (exact beats block beats prefix; earliest block
		// wins) are exactly what this must pin down.
		for k := 0; k < 8; k++ {
			nd := nodes[rng.Intn(n)]
			if len(nd.links) == 0 {
				continue
			}
			base := netip.AddrFrom4([4]byte{10, byte(rng.Intn(4)), byte(rng.Intn(256)), byte(rng.Intn(250))})
			count := 1 + rng.Intn(600)
			if rng.Intn(2) == 0 {
				if err := nd.AddRangeRoute(base, count, nd.links[rng.Intn(len(nd.links))]); err != nil {
					t.Fatal(err)
				}
			} else {
				links := make([]*Link, count)
				for i := range links {
					links[i] = nd.links[rng.Intn(len(nd.links))]
				}
				if err := nd.AddBlockRoute(base, links); err != nil {
					t.Fatal(err)
				}
			}
		}

		// Probes: every node address, random addresses anywhere, and
		// random addresses in the block neighborhood.
		var probes []netip.Addr
		for _, nd := range nodes {
			probes = append(probes, nd.Addr())
		}
		for k := 0; k < 50; k++ {
			probes = append(probes, netip.AddrFrom4([4]byte{
				byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256))}))
		}
		for k := 0; k < 80; k++ {
			probes = append(probes, netip.AddrFrom4([4]byte{
				10, byte(rng.Intn(4)), byte(rng.Intn(256)), byte(rng.Intn(256))}))
		}
		for _, nd := range nodes {
			for _, dst := range probes {
				got, want := nd.lookupRoute(dst), nd.lookupRouteLinear(dst)
				if got != want {
					t.Fatalf("trial %d: node %s dst %v: FIB %p != linear %p",
						trial, nd.Name, dst, got, want)
				}
			}
		}
	}
}

// TestFIBAnycastNearest: on random topologies with a random anycast
// group, a packet to the anycast address must reach a member whose
// Dijkstra distance from the source is minimal.
func TestFIBAnycastNearest(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	anyAddr := netip.MustParseAddr("10.255.0.1")
	for trial := 0; trial < 20; trial++ {
		n := 5 + rng.Intn(25)
		s, nodes := randTopology(t, rng, n)
		nMembers := 1 + rng.Intn(3)
		members := map[*Node]bool{}
		for len(members) < nMembers {
			m := nodes[rng.Intn(n)]
			if !members[m] {
				members[m] = true
				s.AddAnycast(anyAddr, m)
			}
		}
		s.BuildRoutes()

		var deliveredTo *Node
		for m := range members {
			node := m
			node.SetHandler(func(time.Time, []byte) { deliveredTo = node })
		}
		// Reference distances via an independent map-based Dijkstra.
		for _, src := range nodes {
			dist := refDijkstra(src)
			best := math.Inf(1)
			for m := range members {
				if d, ok := dist[m]; ok && d < best {
					best = d
				}
			}
			deliveredTo = nil
			if err := src.Send(mkUDP(t, src.Addr(), anyAddr, nil)); err != nil {
				t.Fatalf("trial %d: %s -> anycast: %v", trial, src.Name, err)
			}
			s.Run()
			if deliveredTo == nil {
				t.Fatalf("trial %d: anycast from %s undelivered", trial, src.Name)
			}
			if got := dist[deliveredTo]; got != best {
				t.Fatalf("trial %d: anycast from %s reached %s at distance %v, nearest is %v",
					trial, src.Name, deliveredTo.Name, got, best)
			}
		}
	}
}

// refDijkstra is an independent shortest-path reference (maps and linear
// extract-min, like the seed implementation).
func refDijkstra(src *Node) map[*Node]float64 {
	dist := map[*Node]float64{src: 0}
	visited := map[*Node]bool{}
	type nd struct {
		n *Node
		d float64
	}
	frontier := []nd{{src, 0}}
	for len(frontier) > 0 {
		mi := 0
		for i := range frontier {
			if frontier[i].d < frontier[mi].d {
				mi = i
			}
		}
		cur := frontier[mi]
		frontier = append(frontier[:mi], frontier[mi+1:]...)
		if visited[cur.n] {
			continue
		}
		visited[cur.n] = true
		for _, l := range cur.n.links {
			d := l.dir(cur.n)
			if d == nil {
				continue
			}
			next := l.Peer(cur.n)
			v := cur.d + d.cfg.cost()
			if old, ok := dist[next]; !ok || v < old {
				dist[next] = v
				frontier = append(frontier, nd{next, v})
			}
		}
	}
	return dist
}

// TestFIBRecompilesAfterRouteChange: routes added after a lookup must be
// visible (the dirty flag invalidates the compiled FIB).
func TestFIBRecompilesAfterRouteChange(t *testing.T) {
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	l := s.Connect(a, b, LinkConfig{Delay: time.Millisecond})
	dst := addr("10.9.0.1")
	if a.lookupRoute(dst) != nil {
		t.Fatal("route before any install")
	}
	a.AddRoute(netip.MustParsePrefix("10.9.0.0/16"), l)
	if a.lookupRoute(dst) != l {
		t.Fatal("route added after compile not visible")
	}
	a.ClearRoutes()
	if a.lookupRoute(dst) != nil {
		t.Fatal("cleared route still resolves")
	}
	// Block routes respect the same dirty/clear lifecycle.
	if err := a.AddRangeRoute(addr("10.9.0.0"), 512, l); err != nil {
		t.Fatal(err)
	}
	if a.lookupRoute(dst) != l {
		t.Fatal("range route added after compile not visible")
	}
	a.ClearRoutes()
	if a.lookupRoute(dst) != nil {
		t.Fatal("cleared range route still resolves")
	}
}

// TestFIBRouteMemoryRegression pins the memory cost of compressed
// routes: a range route must cost a bounded number of bytes per entry —
// not per covered address — however many hosts it stands for. This is
// the regression gate for the backbone's O(edges) router state.
func TestFIBRouteMemoryRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation inflates allocation sizes")
	}
	s := NewSimulator(simStart, 1)
	a := s.MustAddNode("a", "", addr("10.0.0.1"))
	b := s.MustAddNode("b", "", addr("10.0.1.1"))
	l := s.Connect(a, b, LinkConfig{Delay: time.Millisecond})

	const routes, span = 10000, 256
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	base := ipv4ToUint(addr("11.0.0.0"))
	for i := 0; i < routes; i++ {
		if err := a.AddRangeRoute(uintToIPv4(base+uint32(i)*span), span, l); err != nil {
			t.Fatal(err)
		}
	}
	if a.lookupRoute(addr("11.0.0.5")) != l { // force FIB compilation
		t.Fatal("range route does not resolve")
	}
	runtime.GC()
	runtime.ReadMemStats(&m1)
	perRoute := float64(int64(m1.HeapAlloc)-int64(m0.HeapAlloc)) / routes
	perAddr := perRoute / span
	t.Logf("range routes: %.1f B/route, %.3f B/covered-address", perRoute, perAddr)
	// Source entry (~40B) + compiled entry (~48B) + maxEnd word, with
	// slice-growth slack: anything near the old per-/32 map cost (tens
	// of bytes per covered address) fails loudly.
	if perRoute > 300 {
		t.Errorf("range route costs %.1f B/route, want <= 300", perRoute)
	}
	if perAddr > 2 {
		t.Errorf("range route costs %.3f B/covered-address, want <= 2", perAddr)
	}

	// Every one of the 2.56M covered addresses must resolve through the
	// compiled form; spot-check the corners and a stride.
	for i := 0; i < routes*span; i += 4099 {
		if a.lookupRoute(uintToIPv4(base+uint32(i))) != l {
			t.Fatalf("covered address %d does not resolve", i)
		}
	}
}
