package netem

import (
	"net/netip"
	"testing"
	"time"

	"netneutral/internal/wire"
)

func TestFlowKeyCanonicalizesDirections(t *testing.T) {
	a := netip.MustParseAddr("172.16.1.10")
	b := netip.MustParseAddr("10.10.0.5")
	mk := func(src, dst netip.Addr) []byte {
		buf := wire.NewSerializeBuffer(wire.IPv4HeaderLen, 8)
		buf.PushPayload(make([]byte, 8))
		if err := (&wire.IPv4{TTL: 64, Protocol: wire.ProtoUDP, Src: src, Dst: dst}).SerializeTo(buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	kf, fwdF, ok := FlowKeyOf(mk(a, b))
	if !ok {
		t.Fatal("forward packet rejected")
	}
	kr, fwdR, ok := FlowKeyOf(mk(b, a))
	if !ok {
		t.Fatal("reverse packet rejected")
	}
	if kf != kr {
		t.Errorf("directions map to different keys: %v vs %v", kf, kr)
	}
	if fwdF == fwdR {
		t.Errorf("both directions report forward=%v", fwdF)
	}
	want, err := FlowKeyFrom(a, b, wire.ProtoUDP)
	if err != nil {
		t.Fatal(err)
	}
	if kf != want {
		t.Errorf("FlowKeyOf = %v, FlowKeyFrom = %v", kf, want)
	}
	if kf.Lo != b.As4() || kf.Hi != a.As4() {
		t.Errorf("canonical order wrong: %v", kf)
	}

	if _, _, ok := FlowKeyOf([]byte{1, 2, 3}); ok {
		t.Error("short packet accepted")
	}
}

func TestNowNanosTracksClock(t *testing.T) {
	sim := NewSimulator(time.Date(2006, 11, 1, 0, 0, 0, 0, time.UTC), 1)
	n0 := sim.NowNanos()
	sim.RunFor(1500000) // 1.5ms
	if got := sim.NowNanos() - n0; got != 1500000 {
		t.Errorf("NowNanos advanced %d, want 1500000", got)
	}
}
