package netem

import "time"

// External-waiter support: simnet (the net.Conn/net.PacketConn bridge)
// drives the simulator one event at a time so it can hand control to
// ordinary goroutines blocked on sim-backed sockets between events and
// inject their sends at a deterministic virtual time. Single-stepping is
// only meaningful on the serial engine — one shard, one event order —
// so both entry points reject genuinely sharded simulators: an external
// driver interleaving with the epoch loop would have no defined "current
// event" to pause at.

// NextEventAt reports the timestamp of the earliest pending event, and
// whether one exists. Serial (unsharded) engine only.
func (s *Simulator) NextEventAt() (time.Time, bool) {
	s.guardSerial("NextEventAt")
	sh := s.shards[0]
	if sh.events.len() == 0 {
		return time.Time{}, false
	}
	return sh.events.h[0].at, true
}

// Step pops and dispatches the single earliest pending event, advancing
// the clock to its timestamp. It reports whether an event ran. Serial
// (unsharded) engine only: external drivers (simnet) interleave Step
// with their own injections, which requires the classic one-queue event
// order.
func (s *Simulator) Step() bool {
	s.guardSerial("Step")
	sh := s.shards[0]
	if sh.events.len() == 0 {
		return false
	}
	ev := sh.events.pop()
	sh.now = ev.at
	sh.mEvents.Inc()
	sh.dispatchEvent(&ev)
	if s.committed.Before(sh.now) {
		s.committed = sh.now
	}
	return true
}

// guardSerial rejects single-step APIs on sharded simulators.
func (s *Simulator) guardSerial(api string) {
	s.refreshPlan()
	if s.multi {
		panic("netem: Simulator." + api + " requires the serial engine; external waiters (simnet) cannot drive a sharded simulator")
	}
}
