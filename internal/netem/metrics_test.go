package netem

import (
	"fmt"
	"testing"
	"time"

	"netneutral/internal/obs"
)

// obsWorldResult captures everything observation must reproduce exactly
// across worker counts: the sim's own identity counters, the recorder's
// time-series rings, and the flight recorder's sampled event set.
type obsWorldResult struct {
	delivered, events uint64
	ticks             uint64
	rings             string
	flight            []obs.TraceRec
	flightSeen        uint64
}

// runObsWorld is runParWorld's observability twin: same topology family,
// with a Recorder ticking at every barrier and a FlightRecorder sampling
// 1-in-8 plus one tagged flow.
func runObsWorld(t testing.TB, seed int64, workers int) *obsWorldResult {
	t.Helper()
	sim := NewSimulator(simStart, seed)
	f, err := BuildFanout(sim, FanoutSpec{
		Hosts: 96, HostsPerEdge: 24, Outside: 1,
		ShardSubtrees: true,
		HostLink:      LinkConfig{Delay: 800 * time.Microsecond},
		EdgeLink:      LinkConfig{Delay: 1200 * time.Microsecond, RateBps: 50e6, QueueLen: 32},
		TransitLink:   LinkConfig{Delay: 1500 * time.Microsecond, RateBps: 80e6, QueueLen: 32},
		OutsideLink:   LinkConfig{Delay: 900 * time.Microsecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	sim.SetWorkers(workers)

	rec := obs.NewRecorder(sim.Metrics(), obs.RecorderConfig{RingSize: 64})
	sim.OnBarrier(func(now time.Time) { rec.Tick(now.UnixNano()) })
	fr := obs.NewFlightRecorder(obs.FlightConfig{SampleEvery: 8, RingSize: 256})
	fr.Tag(FlowHash(mkUDP(t, f.HostAddr(0), f.OutsideAddr(0), []byte{0xEE})))
	sim.AttachFlightRecorder(fr)

	delivered := f.CountDeliveries()
	end := simStart.Add(120 * time.Millisecond)
	sender := func(node *Node, pkt []byte, gap time.Duration) {
		var step func()
		step = func() {
			if node.Now().After(end) {
				return
			}
			_ = node.Send(pkt)
			node.Schedule(gap/2+time.Duration(node.Rand().Int63n(int64(gap))), step)
		}
		node.Schedule(time.Duration(node.Rand().Int63n(int64(gap))), step)
	}
	for i := 0; i < 96; i += 5 {
		sender(f.Outside[0], mkUDP(t, f.OutsideAddr(0), f.HostAddr(i), []byte{byte(i)}), 4*time.Millisecond)
	}
	sender(f.Hosts[0], mkUDP(t, f.HostAddr(0), f.OutsideAddr(0), []byte{0xEE}), 3*time.Millisecond)

	sim.RunFor(60 * time.Millisecond)
	sim.Run()

	res := &obsWorldResult{
		delivered:  sim.Delivered(),
		events:     sim.EventsProcessed(),
		ticks:      rec.Ticks(),
		flight:     fr.Events(),
		flightSeen: fr.Seen(),
	}
	for _, s := range rec.Series() {
		times, vals := s.Points()
		res.rings += s.Name
		for i := range times {
			res.rings += fmt.Sprintf(";%d=%g", times[i], vals[i])
		}
		res.rings += "\n"
	}
	// Hosts tally a strict subset of deliveries (outside-node deliveries
	// count only in the engine total).
	if ht := delivered.Total(); ht == 0 || ht > res.delivered {
		t.Fatalf("DeliveryCount %d vs Delivered %d", ht, res.delivered)
	}
	return res
}

// TestObservedParallelIdentity is the determinism-under-observation
// property at the engine level: with a Recorder ticking at barriers and
// a FlightRecorder sampling, a seeded run's counters, time-series rings
// and sampled-event set are bit-identical at workers 1 and 4.
func TestObservedParallelIdentity(t *testing.T) {
	serial := runObsWorld(t, 11, 1)
	if serial.delivered == 0 || serial.ticks == 0 || len(serial.flight) == 0 {
		t.Fatalf("degenerate observed world: delivered=%d ticks=%d flight=%d",
			serial.delivered, serial.ticks, len(serial.flight))
	}
	par := runObsWorld(t, 11, 4)
	if par.delivered != serial.delivered || par.events != serial.events {
		t.Fatalf("sim identity diverged under observation: delivered %d/%d events %d/%d",
			serial.delivered, par.delivered, serial.events, par.events)
	}
	if par.ticks != serial.ticks {
		t.Fatalf("recorder ticks diverged: %d vs %d", serial.ticks, par.ticks)
	}
	if par.rings != serial.rings {
		t.Fatalf("recorder rings diverged between worker counts:\n--- workers=1\n%s\n--- workers=4\n%s",
			serial.rings, par.rings)
	}
	if par.flightSeen != serial.flightSeen || len(par.flight) != len(serial.flight) {
		t.Fatalf("flight recorder diverged: seen %d/%d events %d/%d",
			serial.flightSeen, par.flightSeen, len(serial.flight), len(par.flight))
	}
	for i := range serial.flight {
		if serial.flight[i] != par.flight[i] {
			t.Fatalf("flight event %d diverged:\n workers=1: %+v\n workers=4: %+v",
				i, serial.flight[i], par.flight[i])
		}
	}
}

// TestRegistryMirrorsAccessors pins the satellite migration: the legacy
// accessors are thin reads over the registry, so the registry's merged
// families must agree with them exactly.
func TestRegistryMirrorsAccessors(t *testing.T) {
	sim := NewSimulator(simStart, 3)
	f, err := BuildFanout(sim, FanoutSpec{Hosts: 8, HostsPerEdge: 4, Outside: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(i%8), []byte{1})); err != nil {
			t.Fatal(err)
		}
	}
	sim.Run()
	snap := sim.Metrics().Snapshot()
	checks := []struct {
		name string
		want uint64
	}{
		{"netem_delivered_packets_total", sim.Delivered()},
		{"netem_forwarded_packets_total", sim.Forwarded()},
		{"netem_dropped_packets_total", sim.Dropped()},
		{"netem_events_total", sim.EventsProcessed()},
	}
	alloc, gets := sim.PoolStats()
	checks = append(checks,
		struct {
			name string
			want uint64
		}{"netem_pool_allocated_buffers_total", alloc},
		struct {
			name string
			want uint64
		}{"netem_pool_checkouts_total", gets})
	for _, c := range checks {
		m := snap.Get(c.name)
		if m == nil {
			t.Errorf("registry missing %s", c.name)
			continue
		}
		if uint64(m.Value) != c.want {
			t.Errorf("%s = %v, accessor says %d", c.name, m.Value, c.want)
		}
		if c.want == 0 && c.name != "netem_dropped_packets_total" {
			t.Errorf("%s unexpectedly zero (degenerate check)", c.name)
		}
	}
}

// TestOnBarrierSerialRuns pins that serial (unsharded) simulators tick
// observers at the end of every Run/RunUntil call — their quiescent
// points — with the virtual clock.
func TestOnBarrierSerialRuns(t *testing.T) {
	sim := NewSimulator(simStart, 1)
	var ticks []time.Time
	sim.OnBarrier(func(now time.Time) { ticks = append(ticks, now) })
	sim.Schedule(5*time.Millisecond, func() {})
	sim.RunFor(10 * time.Millisecond)
	sim.RunFor(10 * time.Millisecond)
	if len(ticks) != 2 {
		t.Fatalf("serial barrier ticks = %d, want 2", len(ticks))
	}
	if !ticks[0].Equal(simStart.Add(10 * time.Millisecond)) {
		t.Errorf("tick 0 at %v, want limit time", ticks[0])
	}
	if !ticks[1].Equal(simStart.Add(20 * time.Millisecond)) {
		t.Errorf("tick 1 at %v, want second limit", ticks[1])
	}
}
