package netem

import (
	"fmt"
	"time"

	"netneutral/internal/obs"
)

// Fluid background traffic: the hybrid abstraction that lets a
// continental backbone carry realistic load without simulating every
// background packet. A FluidFlow models an aggregate (the thousands of
// intra-metro flows that are not being measured) as a piecewise-constant
// bit rate on one link direction. Packet serialization on that direction
// runs at the residual rate (see linkDir.startTransmission), so policing,
// token buckets, and queues on the measured path see the load — while
// the event count per simulated second is one rate-update tick per
// interval instead of millions of packet events.
//
// Fidelity boundary, explicitly: fluid traffic consumes link capacity
// and therefore inflates the serialization (and hence queueing) delay of
// real packets sharing the direction, but it does not traverse transit
// hooks — DPI, per-packet policing, eavesdropping, and delivery counts
// never see it, and it cannot itself be dropped or reordered. Paths
// being measured or audited must carry real packets.
//
// Determinism: ticks are events on the shard that owns the link
// direction, and jitter draws from that shard's seeded PRNG, so a fluid
// run replays bit-identically at any worker count. The per-shard byte
// and tick tallies land in the netem_fluid_* registry families, which
// the eval harness's ObsDigest folds into its replay-identity hash.
type FluidConfig struct {
	// RateBps is the mean offered load in bits per second (required).
	RateBps float64
	// JitterFrac, in [0,1), re-draws each interval's rate uniformly in
	// RateBps·(1±JitterFrac) from the owning shard's PRNG. Zero holds
	// the rate constant.
	JitterFrac float64
	// Interval is the rate-update period (default 100ms). Shorter
	// intervals track jitter faster at more events per simulated second.
	Interval time.Duration
}

// FluidFlow is one attached background aggregate. Attach with
// Simulator.AttachFluid, then Start it for a bounded duration.
type FluidFlow struct {
	d     *linkDir
	node  *Node
	cfg   FluidConfig
	until time.Time
	rem   float64 // fractional byte carry between ticks
	bytes *obs.Counter
	ticks *obs.Counter
}

// fluidResidualFloor bounds how much capacity a fluid aggregate can
// take: real packets always serialize at ≥ 1% of the configured rate.
const fluidResidualFloor = 0.01

// AttachFluid attaches a fluid background aggregate to the link
// direction originating at from. The flow is inert until Start.
func (s *Simulator) AttachFluid(l *Link, from *Node, cfg FluidConfig) (*FluidFlow, error) {
	d := l.dir(from)
	if d == nil {
		return nil, ErrNotConnected
	}
	if cfg.RateBps <= 0 {
		return nil, fmt.Errorf("netem: fluid flow needs positive RateBps, got %g", cfg.RateBps)
	}
	if cfg.JitterFrac < 0 || cfg.JitterFrac >= 1 {
		return nil, fmt.Errorf("netem: fluid JitterFrac %g outside [0,1)", cfg.JitterFrac)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = 100 * time.Millisecond
	}
	if d.fluidBps > 0 {
		return nil, fmt.Errorf("netem: link direction %s->%s already carries a fluid flow", from.Name, d.to.Name)
	}
	bytes := s.Metrics().Counter("netem_fluid_bytes_total",
		"Background bytes offered by fluid flows (aggregate load, not packet events).")
	ticks := s.Metrics().Counter("netem_fluid_ticks_total",
		"Fluid flow rate-update ticks executed.")
	id := from.ShardID()
	return &FluidFlow{
		d: d, node: from, cfg: cfg,
		bytes: bytes.Stripe(id), ticks: ticks.Stripe(id),
	}, nil
}

// FluidTotals reports the bytes and ticks accounted by fluid flows
// across all shards (zero when none are attached). Registration is
// get-or-create, so reading is idempotent with AttachFluid's.
func (s *Simulator) FluidTotals() (bytes, ticks uint64) {
	reg := s.Metrics()
	return reg.Counter("netem_fluid_bytes_total",
			"Background bytes offered by fluid flows (aggregate load, not packet events).").Value(),
		reg.Counter("netem_fluid_ticks_total",
			"Fluid flow rate-update ticks executed.").Value()
}

// Start offers load for duration d of virtual time, beginning now. The
// flow stops offering load (and stops scheduling ticks) at the horizon,
// so Simulator.Run terminates with the rest of the workload.
func (f *FluidFlow) Start(d time.Duration) {
	f.until = f.node.Now().Add(d)
	f.d.fluidBps = f.cfg.RateBps
	f.node.Schedule(f.cfg.Interval, f.tick)
}

// Rate reports the load currently offered (0 when stopped).
func (f *FluidFlow) Rate() float64 { return f.d.fluidBps }

// tick accounts the bytes offered over the elapsed interval, then
// re-draws the next interval's rate — or retires the flow at its
// horizon. Runs on the shard owning the link direction.
func (f *FluidFlow) tick() {
	offered := f.d.fluidBps*f.cfg.Interval.Seconds()/8 + f.rem
	whole := uint64(offered)
	f.rem = offered - float64(whole)
	f.bytes.Add(whole)
	f.ticks.Inc()
	if !f.node.Now().Before(f.until) {
		f.d.fluidBps = 0
		return
	}
	rate := f.cfg.RateBps
	if j := f.cfg.JitterFrac; j > 0 {
		rate *= 1 + j*(2*f.node.Rand().Float64()-1)
	}
	f.d.fluidBps = rate
	f.node.Schedule(f.cfg.Interval, f.tick)
}
