package netem

import (
	"fmt"
	"math"
	"net/netip"
	"slices"
)

// route is one installed prefix route; the node's route list is the
// source of truth and is compiled into the indexed FIB on demand.
type route struct {
	prefix netip.Prefix
	link   *Link
}

// blockRoute is a prefix-compressed set of host-specificity routes
// covering the contiguous IPv4 range [first, first+n): either one link
// for the whole range (AddRangeRoute — a border router's per-edge
// aggregate) or one link per offset (AddBlockRoute — an edge router's
// per-host fan-out). One blockRoute replaces n map entries, which is
// what lets border and edge FIBs stay flat at a million hosts.
type blockRoute struct {
	first uint32
	n     uint32
	link  *Link   // whole-range link (range form; nil in block form)
	links []*Link // per-offset links (block form; nil in range form)
}

func (b *blockRoute) contains(v uint32) bool { return v-b.first < b.n }

func (b *blockRoute) lookup(v uint32) *Link {
	if b.links != nil {
		return b.links[v-b.first]
	}
	return b.link
}

// fib is a node's compiled forwarding table, probed in specificity
// order: an exact-match map for individually installed host (/32, /128)
// routes, then the block/range routes at host specificity (binary search
// over ranges sorted by first address; overlapping blocks resolve to the
// earliest installed), then a short table of broader prefixes sorted by
// descending length for longest-prefix match. Compiled lazily after any
// route change.
type fib struct {
	hosts  map[netip.Addr]*Link // nil when no single-IP routes exist
	blocks []compiledBlock      // sorted by first address, ascending
	maxEnd []uint32             // maxEnd[i] = max over blocks[:i+1] of first+n
	// prefixes may alias the node's route list when no reordering or
	// filtering was needed (the leaf-host case: one default route), so
	// compiling a million leaf FIBs allocates nothing.
	prefixes []route
	dirty    bool
}

type compiledBlock struct {
	blockRoute
	idx int32 // install order: the earliest-installed overlapping block wins
}

// AddRoute installs a static prefix route through the given link.
func (n *Node) AddRoute(prefix netip.Prefix, l *Link) {
	n.routes = append(n.routes, route{prefix: prefix, link: l})
	n.fib.dirty = true
}

// AddRangeRoute installs host-specificity routes for the n consecutive
// IPv4 addresses [first, first+n), all via link l, as one compressed
// entry — how a border router holds one route per edge-router block
// instead of one per customer. Range routes match like /32 routes: more
// specific than any prefix route, less specific than an exact AddRoute
// /32; overlapping ranges resolve to the earliest installed.
func (n *Node) AddRangeRoute(first netip.Addr, count int, l *Link) error {
	b, err := makeBlock(first, count)
	if err != nil {
		return err
	}
	b.link = l
	n.blocks = append(n.blocks, b)
	n.fib.dirty = true
	return nil
}

// AddBlockRoute installs host-specificity routes for the len(links)
// consecutive IPv4 addresses starting at first, where address first+i
// routes via links[i] — an edge router's whole customer fan-out as one
// flat offset-indexed array instead of a map entry per host. Matching
// semantics are those of AddRangeRoute. The links slice is retained.
func (n *Node) AddBlockRoute(first netip.Addr, links []*Link) error {
	b, err := makeBlock(first, len(links))
	if err != nil {
		return err
	}
	b.links = links
	n.blocks = append(n.blocks, b)
	n.fib.dirty = true
	return nil
}

func makeBlock(first netip.Addr, count int) (blockRoute, error) {
	if !first.Is4() {
		return blockRoute{}, fmt.Errorf("netem: block route base %v is not IPv4", first)
	}
	v := ipv4ToUint(first)
	if count <= 0 || uint64(v)+uint64(count) > 1<<32 {
		return blockRoute{}, fmt.Errorf("netem: block route [%v +%d) is empty or wraps the address space", first, count)
	}
	return blockRoute{first: v, n: uint32(count)}, nil
}

// ClearRoutes removes every installed route, block routes included.
func (n *Node) ClearRoutes() {
	n.routes = n.routes[:0]
	n.blocks = n.blocks[:0]
	n.fib.dirty = true
}

// RouteCount reports installed route entries (prefix plus block/range
// entries — a block counts once, however many addresses it covers).
func (n *Node) RouteCount() int { return len(n.routes) + len(n.blocks) }

// compileFIB rebuilds the indexed FIB from the route and block lists.
// Ties between equal-length prefixes resolve to the earliest-installed
// route, matching the historical linear scan (which only replaced on
// strictly longer).
func (n *Node) compileFIB() {
	f := &n.fib
	singles := 0
	for i := range n.routes {
		if n.routes[i].prefix.IsSingleIP() {
			singles++
		}
	}
	if singles == 0 {
		f.hosts = nil
		// No filtering needed; alias the route list when it is already in
		// descending-length order (always true for the one-default-route
		// leaf hosts), so the common compile is allocation-free. Stable
		// sorting an aliased list would also be correct — it only reorders
		// entries of different lengths, which cannot change any lookup —
		// but copying keeps the install-order list untouched.
		if sortedByLenDesc(n.routes) {
			f.prefixes = n.routes
		} else {
			f.prefixes = append(f.prefixes[:0:0], n.routes...)
			slices.SortStableFunc(f.prefixes, func(a, b route) int {
				return b.prefix.Bits() - a.prefix.Bits()
			})
		}
	} else {
		if f.hosts == nil {
			f.hosts = make(map[netip.Addr]*Link, singles)
		} else {
			clear(f.hosts)
		}
		f.prefixes = f.prefixes[:0]
		for _, r := range n.routes {
			if r.prefix.IsSingleIP() {
				if _, dup := f.hosts[r.prefix.Addr()]; !dup {
					f.hosts[r.prefix.Addr()] = r.link
				}
				continue
			}
			f.prefixes = append(f.prefixes, r)
		}
		// Stable sort by descending prefix length: stability preserves the
		// first-installed-wins tie-break the linear reference implements.
		slices.SortStableFunc(f.prefixes, func(a, b route) int {
			return b.prefix.Bits() - a.prefix.Bits()
		})
	}

	f.blocks = f.blocks[:0]
	f.maxEnd = f.maxEnd[:0]
	for i := range n.blocks {
		f.blocks = append(f.blocks, compiledBlock{blockRoute: n.blocks[i], idx: int32(i)})
	}
	slices.SortStableFunc(f.blocks, func(a, b compiledBlock) int {
		switch {
		case a.first < b.first:
			return -1
		case a.first > b.first:
			return 1
		}
		return 0
	})
	var maxEnd uint64 // 64-bit: an end of 1<<32 (top of the space) must stay sticky
	for i := range f.blocks {
		if end := uint64(f.blocks[i].first) + uint64(f.blocks[i].n); end > maxEnd {
			maxEnd = end
		}
		// Stored as uint32: 1<<32 wraps to 0, the "reaches the top" sentinel
		// lookupBlock understands (block lengths are positive, so a genuine
		// running max is never 0).
		f.maxEnd = append(f.maxEnd, uint32(maxEnd))
	}
	f.dirty = false
}

// sortedByLenDesc reports whether the routes are already in descending
// prefix-length order (the alias-without-copy fast path).
func sortedByLenDesc(rs []route) bool {
	for i := 1; i < len(rs); i++ {
		if rs[i].prefix.Bits() > rs[i-1].prefix.Bits() {
			return false
		}
	}
	return true
}

// lookupBlock finds the host-specificity block covering v, earliest
// installed first. Binary search lands on the last block starting at or
// before v; the backward scan is bounded by the running maximum of block
// ends, so with the disjoint blocks topology builders install it checks
// exactly one candidate.
func (f *fib) lookupBlock(v uint32) *Link {
	// First index whose block starts strictly after v.
	lo, hi := 0, len(f.blocks)
	for lo < hi {
		mid := (lo + hi) / 2
		if f.blocks[mid].first <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	var via *Link
	best := int32(-1)
	for j := lo - 1; j >= 0; j-- {
		if end := f.maxEnd[j]; end != 0 && end <= v {
			break // no earlier block can reach v
		}
		b := &f.blocks[j]
		if b.contains(v) && (best < 0 || b.idx < best) {
			best, via = b.idx, b.lookup(v)
		}
	}
	return via
}

// lookupRoute returns the best route for dst, or nil: exact host routes,
// then block/range routes (host specificity), then longest prefix.
func (n *Node) lookupRoute(dst netip.Addr) *Link {
	if n.fib.dirty {
		n.compileFIB()
	}
	f := &n.fib
	if f.hosts != nil {
		if l, ok := f.hosts[dst]; ok {
			return l
		}
	}
	if len(f.blocks) > 0 && dst.Is4() {
		if l := f.lookupBlock(ipv4ToUint(dst)); l != nil {
			return l
		}
	}
	for _, r := range f.prefixes {
		if r.prefix.Contains(dst) {
			return r.link
		}
	}
	return nil
}

// lookupRouteLinear is the reference implementation the FIB property
// tests assert lookupRoute against on random topologies: a linear scan
// for the longest matching prefix, with block/range routes modelled as
// the host routes they stand for — matched at host specificity (below
// an exact single-IP route, above any broader prefix), earliest
// installed first among overlapping blocks.
func (n *Node) lookupRouteLinear(dst netip.Addr) *Link {
	best := -1
	var via *Link
	for i := range n.routes {
		r := &n.routes[i]
		if r.prefix.Contains(dst) && r.prefix.Bits() > best {
			best = r.prefix.Bits()
			via = r.link
		}
	}
	if best == dst.BitLen() {
		return via // exact host route outranks blocks
	}
	if dst.Is4() {
		v := ipv4ToUint(dst)
		for i := range n.blocks {
			if b := &n.blocks[i]; b.contains(v) {
				return b.lookup(v)
			}
		}
	}
	return via
}

// dijkstraScratch holds per-source Dijkstra state, reused across the
// sources of one BuildRoutes call (and across calls) so route compilation
// on large topologies doesn't thrash the allocator.
type dijkstraScratch struct {
	dist    []float64
	first   []*Link
	visited []bool
	heap    []heapItem // binary heap of (dist, node id); stale entries skipped
}

type heapItem struct {
	dist float64
	id   int
}

func (d *dijkstraScratch) reset(n int) {
	if cap(d.dist) < n {
		d.dist = make([]float64, n)
		d.first = make([]*Link, n)
		d.visited = make([]bool, n)
	}
	d.dist = d.dist[:n]
	d.first = d.first[:n]
	d.visited = d.visited[:n]
	for i := range d.dist {
		d.dist[i] = math.Inf(1)
		d.first[i] = nil
		d.visited[i] = false
	}
	d.heap = d.heap[:0]
}

func (d *dijkstraScratch) push(it heapItem) {
	d.heap = append(d.heap, it)
	i := len(d.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if d.heap[i].dist >= d.heap[p].dist {
			break
		}
		d.heap[i], d.heap[p] = d.heap[p], d.heap[i]
		i = p
	}
}

func (d *dijkstraScratch) pop() heapItem {
	top := d.heap[0]
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && d.heap[l].dist < d.heap[m].dist {
			m = l
		}
		if r < n && d.heap[r].dist < d.heap[m].dist {
			m = r
		}
		if m == i {
			return top
		}
		d.heap[i], d.heap[m] = d.heap[m], d.heap[i]
		i = m
	}
}

// runDijkstra fills scratch with shortest-path distances and first-hop
// links from src.
func (s *Simulator) runDijkstra(src *Node) *dijkstraScratch {
	d := &s.dijkstra
	d.reset(len(s.nodeList))
	d.dist[src.id] = 0
	d.push(heapItem{0, src.id})
	for len(d.heap) > 0 {
		it := d.pop()
		if d.visited[it.id] {
			continue
		}
		d.visited[it.id] = true
		cur := s.nodeList[it.id]
		for _, l := range cur.links {
			dir := l.dir(cur)
			if dir == nil {
				continue
			}
			next := l.Peer(cur)
			nd := it.dist + dir.cfg.cost()
			if nd < d.dist[next.id] {
				d.dist[next.id] = nd
				if cur == src {
					d.first[next.id] = l
				} else {
					d.first[next.id] = d.first[cur.id]
				}
				d.push(heapItem{nd, next.id})
			}
		}
	}
	return d
}

// BuildRoutes computes shortest-path routes (Dijkstra over link costs)
// from every node to every node address and anycast group. It REPLACES
// every node's routing table; call it after the topology is complete and
// before adding manual prefix routes (AddRoute, InstallPrefixRoutes).
//
// Cost is O(nodes * links * log nodes): fine for scenario topologies up
// to a few thousand nodes. Metro-scale fan-outs should use BuildFanout,
// which installs hierarchical routes directly in O(hosts).
func (s *Simulator) BuildRoutes() {
	for _, src := range s.nodes {
		d := s.runDijkstra(src)
		// Install host routes for every reachable node's addresses.
		src.ClearRoutes()
		for id, l := range d.first {
			if l == nil {
				continue
			}
			for _, a := range s.nodeList[id].addrs {
				src.AddRoute(netip.PrefixFrom(a, a.BitLen()), l)
			}
		}
		// Anycast: route to the nearest member.
		for aAddr, members := range s.anycast {
			var bestLink *Link
			best := math.Inf(1)
			for _, m := range members {
				if m == src {
					bestLink = nil
					best = 0
					break
				}
				if dm := d.dist[m.id]; dm < best {
					best = dm
					bestLink = d.first[m.id]
				}
			}
			if best == 0 && bestLink == nil {
				continue // src itself serves the anycast address
			}
			if bestLink != nil {
				src.AddRoute(netip.PrefixFrom(aAddr, aAddr.BitLen()), bestLink)
			}
		}
	}
}

// InstallPrefixRoutes adds, on every node, a route for each given prefix
// via the same first hop as a representative address inside the prefix.
// This lets later-allocated addresses (dynamic addresses, spoofed
// sources) route without rebuilding: the covering prefix matches.
func (s *Simulator) InstallPrefixRoutes(prefixes ...netip.Prefix) error {
	for _, p := range prefixes {
		// Find any node address inside p to copy routing from.
		var rep netip.Addr
		found := false
		for a := range s.byAddr {
			if p.Contains(a) {
				rep, found = a, true
				break
			}
		}
		if !found {
			return fmt.Errorf("netem: no node address inside prefix %v", p)
		}
		for _, n := range s.nodes {
			if n.HasAddr(rep) || p.Contains(n.Addr()) {
				continue
			}
			if via := n.lookupRoute(rep); via != nil {
				n.AddRoute(p, via)
			}
		}
	}
	return nil
}
