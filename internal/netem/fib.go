package netem

import (
	"fmt"
	"math"
	"net/netip"
)

// route is one installed prefix route; the node's route list is the
// source of truth and is compiled into the indexed FIB on demand.
type route struct {
	prefix netip.Prefix
	link   *Link
}

// fib is a node's compiled forwarding table: an exact-match map for host
// (/32, /128) routes — the overwhelming majority on emulated topologies,
// where Dijkstra installs one host route per remote address — plus a
// short table of broader prefixes sorted by descending length for
// longest-prefix match. Compiled lazily after any route change, it turns
// the seed engine's O(routes) linear scan per forwarded packet into an
// O(1) map probe.
type fib struct {
	hosts    map[netip.Addr]*Link
	prefixes []route // sorted by prefix length, longest first
	dirty    bool
}

// AddRoute installs a static prefix route through the given link.
func (n *Node) AddRoute(prefix netip.Prefix, l *Link) {
	n.routes = append(n.routes, route{prefix: prefix, link: l})
	n.fib.dirty = true
}

// ClearRoutes removes every installed route.
func (n *Node) ClearRoutes() {
	n.routes = n.routes[:0]
	n.fib.dirty = true
}

// RouteCount reports installed routes (before FIB compilation).
func (n *Node) RouteCount() int { return len(n.routes) }

// compileFIB rebuilds the indexed FIB from the route list. Ties between
// equal-length prefixes resolve to the earliest-installed route, matching
// the historical linear scan (which only replaced on strictly longer).
func (n *Node) compileFIB() {
	f := &n.fib
	if f.hosts == nil {
		f.hosts = make(map[netip.Addr]*Link, len(n.routes))
	} else {
		clear(f.hosts)
	}
	f.prefixes = f.prefixes[:0]
	for _, r := range n.routes {
		if r.prefix.IsSingleIP() {
			if _, dup := f.hosts[r.prefix.Addr()]; !dup {
				f.hosts[r.prefix.Addr()] = r.link
			}
			continue
		}
		f.prefixes = append(f.prefixes, r)
	}
	// Stable insertion sort by descending prefix length: the table is
	// short (host routes never land here) and stability preserves the
	// first-installed-wins tie-break.
	for i := 1; i < len(f.prefixes); i++ {
		for j := i; j > 0 && f.prefixes[j].prefix.Bits() > f.prefixes[j-1].prefix.Bits(); j-- {
			f.prefixes[j], f.prefixes[j-1] = f.prefixes[j-1], f.prefixes[j]
		}
	}
	f.dirty = false
}

// lookupRoute returns the best (longest-prefix) route for dst, or nil.
func (n *Node) lookupRoute(dst netip.Addr) *Link {
	if n.fib.dirty {
		n.compileFIB()
	}
	if l, ok := n.fib.hosts[dst]; ok {
		return l
	}
	for _, r := range n.fib.prefixes {
		if r.prefix.Contains(dst) {
			return r.link
		}
	}
	return nil
}

// lookupRouteLinear is the seed engine's reference implementation: a
// linear scan for the longest matching prefix. The FIB property tests
// assert lookupRoute against it on random topologies.
func (n *Node) lookupRouteLinear(dst netip.Addr) *Link {
	best := -1
	var via *Link
	for i := range n.routes {
		r := &n.routes[i]
		if r.prefix.Contains(dst) && r.prefix.Bits() > best {
			best = r.prefix.Bits()
			via = r.link
		}
	}
	return via
}

// dijkstraScratch holds per-source Dijkstra state, reused across the
// sources of one BuildRoutes call (and across calls) so route compilation
// on large topologies doesn't thrash the allocator.
type dijkstraScratch struct {
	dist    []float64
	first   []*Link
	visited []bool
	heap    []heapItem // binary heap of (dist, node id); stale entries skipped
}

type heapItem struct {
	dist float64
	id   int
}

func (d *dijkstraScratch) reset(n int) {
	if cap(d.dist) < n {
		d.dist = make([]float64, n)
		d.first = make([]*Link, n)
		d.visited = make([]bool, n)
	}
	d.dist = d.dist[:n]
	d.first = d.first[:n]
	d.visited = d.visited[:n]
	for i := range d.dist {
		d.dist[i] = math.Inf(1)
		d.first[i] = nil
		d.visited[i] = false
	}
	d.heap = d.heap[:0]
}

func (d *dijkstraScratch) push(it heapItem) {
	d.heap = append(d.heap, it)
	i := len(d.heap) - 1
	for i > 0 {
		p := (i - 1) / 2
		if d.heap[i].dist >= d.heap[p].dist {
			break
		}
		d.heap[i], d.heap[p] = d.heap[p], d.heap[i]
		i = p
	}
}

func (d *dijkstraScratch) pop() heapItem {
	top := d.heap[0]
	n := len(d.heap) - 1
	d.heap[0] = d.heap[n]
	d.heap = d.heap[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && d.heap[l].dist < d.heap[m].dist {
			m = l
		}
		if r < n && d.heap[r].dist < d.heap[m].dist {
			m = r
		}
		if m == i {
			return top
		}
		d.heap[i], d.heap[m] = d.heap[m], d.heap[i]
		i = m
	}
}

// runDijkstra fills scratch with shortest-path distances and first-hop
// links from src.
func (s *Simulator) runDijkstra(src *Node) *dijkstraScratch {
	d := &s.dijkstra
	d.reset(len(s.nodeList))
	d.dist[src.id] = 0
	d.push(heapItem{0, src.id})
	for len(d.heap) > 0 {
		it := d.pop()
		if d.visited[it.id] {
			continue
		}
		d.visited[it.id] = true
		cur := s.nodeList[it.id]
		for _, l := range cur.links {
			dir := l.dir(cur)
			if dir == nil {
				continue
			}
			next := l.Peer(cur)
			nd := it.dist + dir.cfg.cost()
			if nd < d.dist[next.id] {
				d.dist[next.id] = nd
				if cur == src {
					d.first[next.id] = l
				} else {
					d.first[next.id] = d.first[cur.id]
				}
				d.push(heapItem{nd, next.id})
			}
		}
	}
	return d
}

// BuildRoutes computes shortest-path routes (Dijkstra over link costs)
// from every node to every node address and anycast group. It REPLACES
// every node's routing table; call it after the topology is complete and
// before adding manual prefix routes (AddRoute, InstallPrefixRoutes).
//
// Cost is O(nodes * links * log nodes): fine for scenario topologies up
// to a few thousand nodes. Metro-scale fan-outs should use BuildFanout,
// which installs hierarchical routes directly in O(hosts).
func (s *Simulator) BuildRoutes() {
	for _, src := range s.nodes {
		d := s.runDijkstra(src)
		// Install host routes for every reachable node's addresses.
		src.ClearRoutes()
		for id, l := range d.first {
			if l == nil {
				continue
			}
			for _, a := range s.nodeList[id].addrs {
				src.AddRoute(netip.PrefixFrom(a, a.BitLen()), l)
			}
		}
		// Anycast: route to the nearest member.
		for aAddr, members := range s.anycast {
			var bestLink *Link
			best := math.Inf(1)
			for _, m := range members {
				if m == src {
					bestLink = nil
					best = 0
					break
				}
				if dm := d.dist[m.id]; dm < best {
					best = dm
					bestLink = d.first[m.id]
				}
			}
			if best == 0 && bestLink == nil {
				continue // src itself serves the anycast address
			}
			if bestLink != nil {
				src.AddRoute(netip.PrefixFrom(aAddr, aAddr.BitLen()), bestLink)
			}
		}
	}
}

// InstallPrefixRoutes adds, on every node, a route for each given prefix
// via the same first hop as a representative address inside the prefix.
// This lets later-allocated addresses (dynamic addresses, spoofed
// sources) route without rebuilding: the covering prefix matches.
func (s *Simulator) InstallPrefixRoutes(prefixes ...netip.Prefix) error {
	for _, p := range prefixes {
		// Find any node address inside p to copy routing from.
		var rep netip.Addr
		found := false
		for a := range s.byAddr {
			if p.Contains(a) {
				rep, found = a, true
				break
			}
		}
		if !found {
			return fmt.Errorf("netem: no node address inside prefix %v", p)
		}
		for _, n := range s.nodes {
			if n.HasAddr(rep) || p.Contains(n.Addr()) {
				continue
			}
			if via := n.lookupRoute(rep); via != nil {
				n.AddRoute(p, via)
			}
		}
	}
	return nil
}
