package netem

import (
	"fmt"
	"net/netip"

	"netneutral/internal/wire"
)

// FlowKey identifies a bidirectional flow by its IPv4 endpoint pair and
// protocol, with the endpoints in canonical (numerically ascending)
// order so both directions of a conversation map to the same key. It is
// a small comparable value type: map lookups on it never allocate,
// which is what lets flow-state observers (package dpi) ride the
// forwarding hot path.
type FlowKey struct {
	Lo, Hi [4]byte
	Proto  uint8
}

// String renders the key for logs and test failures.
func (k FlowKey) String() string {
	return fmt.Sprintf("%d.%d.%d.%d<->%d.%d.%d.%d/%d",
		k.Lo[0], k.Lo[1], k.Lo[2], k.Lo[3],
		k.Hi[0], k.Hi[1], k.Hi[2], k.Hi[3], k.Proto)
}

// FlowKeyOf extracts the canonical flow key from a serialized IPv4
// packet without allocating. forward reports whether the packet's
// source is the Lo endpoint (i.e. which direction of the flow this
// packet travels); ok is false for packets too short to carry an IPv4
// header.
func FlowKeyOf(pkt []byte) (k FlowKey, forward bool, ok bool) {
	if len(pkt) < wire.IPv4HeaderLen {
		return FlowKey{}, false, false
	}
	var src, dst [4]byte
	copy(src[:], pkt[12:16])
	copy(dst[:], pkt[16:20])
	k.Proto = pkt[9]
	if lessAddr4(src, dst) {
		k.Lo, k.Hi = src, dst
		return k, true, true
	}
	k.Lo, k.Hi = dst, src
	return k, false, true
}

// FlowKeyFrom builds the canonical key for an (src, dst, proto) triple;
// the experiment harness uses it to name expected flows without
// constructing packets.
func FlowKeyFrom(src, dst netip.Addr, proto uint8) (FlowKey, error) {
	if !src.Is4() || !dst.Is4() {
		return FlowKey{}, ErrMalformedIPv4
	}
	a, b := src.As4(), dst.As4()
	k := FlowKey{Proto: proto}
	if lessAddr4(a, b) {
		k.Lo, k.Hi = a, b
	} else {
		k.Lo, k.Hi = b, a
	}
	return k, nil
}

func lessAddr4(a, b [4]byte) bool {
	for i := 0; i < 4; i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return true // equal: treat as forward
}

// NowNanos returns the simulator clock as integer nanoseconds — the
// timestamp form flow trackers keep per-flow (inter-arrival math on
// int64 stays allocation- and conversion-free on the hot path).
func (s *Simulator) NowNanos() int64 { return s.Now().UnixNano() }
