package netem

import (
	"fmt"
	"math"
	"net/netip"
	"time"
)

// QueuedPacket is a packet waiting in a link's egress queue, annotated
// with the metadata queue disciplines need.
type QueuedPacket struct {
	Pkt     []byte
	DSCP    uint8
	Size    int
	Arrived time.Time
}

// Queue is a link egress queue discipline. FIFO is the default; package
// diffserv provides DSCP-aware disciplines. Implementations are used from
// the single-threaded event loop and need no locking.
type Queue interface {
	// Enqueue accepts a packet or reports it dropped.
	Enqueue(p *QueuedPacket) bool
	// Dequeue returns the next packet to transmit, or nil if empty.
	Dequeue() *QueuedPacket
	// Len reports queued packets.
	Len() int
}

// FIFOQueue is a bounded tail-drop FIFO.
type FIFOQueue struct {
	q   []*QueuedPacket
	cap int
}

// NewFIFOQueue creates a FIFO with the given capacity (packets).
func NewFIFOQueue(capacity int) *FIFOQueue {
	if capacity <= 0 {
		capacity = 64
	}
	return &FIFOQueue{cap: capacity}
}

// Enqueue implements Queue.
func (f *FIFOQueue) Enqueue(p *QueuedPacket) bool {
	if len(f.q) >= f.cap {
		return false
	}
	f.q = append(f.q, p)
	return true
}

// Dequeue implements Queue.
func (f *FIFOQueue) Dequeue() *QueuedPacket {
	if len(f.q) == 0 {
		return nil
	}
	p := f.q[0]
	f.q = f.q[1:]
	return p
}

// Len implements Queue.
func (f *FIFOQueue) Len() int { return len(f.q) }

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Delay is the propagation delay.
	Delay time.Duration
	// RateBps is the transmission rate in bits per second; zero means
	// infinite (no serialization delay).
	RateBps float64
	// QueueLen bounds the egress queue in packets (default 64).
	QueueLen int
	// Cost is the routing metric (default: Delay in microseconds, min 1).
	Cost float64
}

func (c LinkConfig) cost() float64 {
	if c.Cost > 0 {
		return c.Cost
	}
	if c.Delay > 0 {
		return float64(c.Delay.Microseconds())
	}
	return 1
}

// Link is a bidirectional connection between two nodes, with independent
// egress state per direction.
type Link struct {
	a, b *Node
	dirs [2]*linkDir // [0] a->b, [1] b->a
}

type linkDir struct {
	sim     *Simulator
	from    *Node
	to      *Node
	cfg     LinkConfig
	queue   Queue
	busy    bool
	sent    uint64
	dropped uint64
}

// Connect joins two nodes with symmetric link characteristics.
func (s *Simulator) Connect(a, b *Node, cfg LinkConfig) *Link {
	return s.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym joins two nodes with per-direction characteristics
// (ab for a→b, ba for b→a).
func (s *Simulator) ConnectAsym(a, b *Node, ab, ba LinkConfig) *Link {
	l := &Link{a: a, b: b}
	l.dirs[0] = &linkDir{sim: s, from: a, to: b, cfg: ab, queue: NewFIFOQueue(ab.QueueLen)}
	l.dirs[1] = &linkDir{sim: s, from: b, to: a, cfg: ba, queue: NewFIFOQueue(ba.QueueLen)}
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	return l
}

// Peer returns the node on the other end of the link from n.
func (l *Link) Peer(n *Node) *Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// SetQueue replaces the egress queue discipline for the direction
// originating at from (e.g. a DiffServ priority queue at an ISP edge).
func (l *Link) SetQueue(from *Node, q Queue) error {
	d := l.dir(from)
	if d == nil {
		return ErrNotConnected
	}
	d.queue = q
	return nil
}

// Stats reports packets sent and dropped in the direction from the given
// node.
func (l *Link) Stats(from *Node) (sent, dropped uint64) {
	d := l.dir(from)
	if d == nil {
		return 0, 0
	}
	return d.sent, d.dropped
}

// QueueLen reports the current egress queue length in the direction from
// the given node.
func (l *Link) QueueLen(from *Node) int {
	d := l.dir(from)
	if d == nil {
		return 0
	}
	return d.queue.Len()
}

func (l *Link) dir(from *Node) *linkDir {
	if from == l.a {
		return l.dirs[0]
	}
	if from == l.b {
		return l.dirs[1]
	}
	return nil
}

// transmit enqueues pkt for transmission from node from across the link.
func (l *Link) transmit(from *Node, pkt []byte) {
	d := l.dir(from)
	if d == nil {
		return
	}
	dscp := uint8(0)
	if len(pkt) >= 2 {
		dscp = pkt[1] >> 2
	}
	qp := &QueuedPacket{Pkt: clone(pkt), DSCP: dscp, Size: len(pkt), Arrived: d.sim.now}
	if !d.queue.Enqueue(qp) {
		d.dropped++
		d.sim.emit(TraceDropQueue, from, pkt)
		return
	}
	if !d.busy {
		d.startTransmission()
	}
}

// startTransmission pulls the next packet and schedules its departure and
// arrival events.
func (d *linkDir) startTransmission() {
	qp := d.queue.Dequeue()
	if qp == nil {
		d.busy = false
		return
	}
	d.busy = true
	serialize := time.Duration(0)
	if d.cfg.RateBps > 0 {
		sec := float64(qp.Size*8) / d.cfg.RateBps
		serialize = time.Duration(math.Round(sec * float64(time.Second)))
	}
	d.sim.Schedule(serialize, func() {
		d.sent++
		// Arrival at the far end after propagation.
		to := d.to
		pkt := qp.Pkt
		d.sim.Schedule(d.cfg.Delay, func() { _ = to.dispatch(pkt, false) })
		// Line is free; next packet.
		d.startTransmission()
	})
}

// BuildRoutes computes shortest-path routes (Dijkstra over link costs)
// from every node to every node address and anycast group. It REPLACES
// every node's routing table; call it after the topology is complete and
// before adding manual prefix routes (AddRoute, InstallPrefixRoutes).
func (s *Simulator) BuildRoutes() {
	type nodeDist struct {
		node *Node
		dist float64
	}
	for _, src := range s.nodes {
		// Dijkstra from src.
		dist := map[*Node]float64{src: 0}
		first := map[*Node]*Link{} // first-hop link from src toward node
		visited := map[*Node]bool{}
		frontier := []nodeDist{{src, 0}}
		for len(frontier) > 0 {
			// Extract min (linear; topologies are small).
			mi := 0
			for i := range frontier {
				if frontier[i].dist < frontier[mi].dist {
					mi = i
				}
			}
			cur := frontier[mi]
			frontier = append(frontier[:mi], frontier[mi+1:]...)
			if visited[cur.node] {
				continue
			}
			visited[cur.node] = true
			for _, l := range cur.node.links {
				d := l.dir(cur.node)
				if d == nil {
					continue
				}
				next := l.Peer(cur.node)
				nd := cur.dist + d.cfg.cost()
				if old, ok := dist[next]; !ok || nd < old {
					dist[next] = nd
					if cur.node == src {
						first[next] = l
					} else {
						first[next] = first[cur.node]
					}
					frontier = append(frontier, nodeDist{next, nd})
				}
			}
		}
		// Install host routes for every reachable node's addresses.
		src.routes = src.routes[:0]
		for n, l := range first {
			if l == nil {
				continue
			}
			for _, a := range n.addrs {
				src.AddRoute(netip.PrefixFrom(a, 32), l)
			}
		}
		// Anycast: route to the nearest member.
		for aAddr, members := range s.anycast {
			var bestLink *Link
			best := math.Inf(1)
			for _, m := range members {
				if m == src {
					bestLink = nil
					best = 0
					break
				}
				if d, ok := dist[m]; ok && d < best {
					best = d
					bestLink = first[m]
				}
			}
			if best == 0 && bestLink == nil {
				continue // src itself serves the anycast address
			}
			if bestLink != nil {
				src.AddRoute(netip.PrefixFrom(aAddr, 32), bestLink)
			}
		}
	}
}

// InstallPrefixRoutes adds, on every node, a route for each given prefix
// via the same first hop as a representative address inside the prefix.
// This lets later-allocated addresses (dynamic addresses, spoofed
// sources) route without rebuilding: the covering prefix matches.
func (s *Simulator) InstallPrefixRoutes(prefixes ...netip.Prefix) error {
	for _, p := range prefixes {
		// Find any node address inside p to copy routing from.
		var rep netip.Addr
		found := false
		for a := range s.byAddr {
			if p.Contains(a) {
				rep, found = a, true
				break
			}
		}
		if !found {
			return fmt.Errorf("netem: no node address inside prefix %v", p)
		}
		for _, n := range s.nodes {
			if n.HasAddr(rep) || p.Contains(n.Addr()) {
				continue
			}
			if via := n.lookupRoute(rep); via != nil {
				n.AddRoute(p, via)
			}
		}
	}
	return nil
}
