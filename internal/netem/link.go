package netem

import (
	"math"
	"time"
)

// Queue is a link egress queue discipline. FIFO is the default; package
// diffserv provides DSCP-aware disciplines. Implementations are used from
// the single-threaded event loop and need no locking. Queues hold pooled
// packets: a queued *Packet carries one reference, which passes back to
// the link when Dequeue returns it (a queue that drops a packet it
// accepted must Release it).
type Queue interface {
	// Enqueue accepts a packet or reports it dropped.
	Enqueue(p *Packet) bool
	// Dequeue returns the next packet to transmit, or nil if empty.
	Dequeue() *Packet
	// Len reports queued packets.
	Len() int
}

// FIFOQueue is a bounded tail-drop FIFO backed by a ring buffer, so
// steady-state enqueue/dequeue never allocates. The ring itself is
// allocated on first enqueue: a million idle host links must not pay
// 64 pointer slots each up front.
type FIFOQueue struct {
	q    []*Packet
	head int
	n    int
	cap  int
}

// NewFIFOQueue creates a FIFO with the given capacity (packets).
func NewFIFOQueue(capacity int) *FIFOQueue {
	if capacity <= 0 {
		capacity = 64
	}
	return &FIFOQueue{cap: capacity}
}

// Enqueue implements Queue.
func (f *FIFOQueue) Enqueue(p *Packet) bool {
	if f.n >= f.cap {
		return false
	}
	if f.q == nil {
		f.q = make([]*Packet, f.cap)
	}
	f.q[(f.head+f.n)%f.cap] = p
	f.n++
	return true
}

// Dequeue implements Queue.
func (f *FIFOQueue) Dequeue() *Packet {
	if f.n == 0 {
		return nil
	}
	p := f.q[f.head]
	f.q[f.head] = nil
	f.head = (f.head + 1) % f.cap
	f.n--
	return p
}

// Len implements Queue.
func (f *FIFOQueue) Len() int { return f.n }

// LinkConfig describes one direction of a link.
type LinkConfig struct {
	// Delay is the propagation delay.
	Delay time.Duration
	// RateBps is the transmission rate in bits per second; zero means
	// infinite (no serialization delay).
	RateBps float64
	// QueueLen bounds the egress queue in packets (default 64).
	QueueLen int
	// Cost is the routing metric (default: Delay in microseconds, min 1).
	Cost float64
}

func (c LinkConfig) cost() float64 {
	if c.Cost > 0 {
		return c.Cost
	}
	if c.Delay > 0 {
		return float64(c.Delay.Microseconds())
	}
	return 1
}

// Link is a bidirectional connection between two nodes, with independent
// egress state per direction.
type Link struct {
	a, b *Node
	dirs [2]*linkDir // [0] a->b, [1] b->a
}

// linkDir is one direction's egress state. It is owned by the shard of
// its from node — serialization and queueing happen there — and only its
// arrival events cross into the to node's shard.
type linkDir struct {
	from    *Node
	to      *Node
	cfg     LinkConfig
	queue   Queue // nil until the first transmit (idle links stay queue-free)
	busy    bool
	sent    uint64
	dropped uint64
	// fluidBps is the aggregate background load a FluidFlow currently
	// offers on this direction (bits/s); startTransmission serializes
	// packets at the residual rate, so policing and queueing see the
	// load without per-packet events. See fluid.go.
	fluidBps float64
}

// Connect joins two nodes with symmetric link characteristics.
func (s *Simulator) Connect(a, b *Node, cfg LinkConfig) *Link {
	return s.ConnectAsym(a, b, cfg, cfg)
}

// ConnectAsym joins two nodes with per-direction characteristics
// (ab for a→b, ba for b→a).
func (s *Simulator) ConnectAsym(a, b *Node, ab, ba LinkConfig) *Link {
	var l Link
	var d [2]linkDir
	return s.connectInto(&l, &d[0], &d[1], a, b, ab, ba)
}

// connectInto wires preallocated link storage between a and b — the slab
// path topology builders use to stamp out a metro's host links as three
// arrays instead of three heap objects per host. The storage must be
// zero-valued and must outlive the simulator.
func (s *Simulator) connectInto(l *Link, d0, d1 *linkDir, a, b *Node, ab, ba LinkConfig) *Link {
	*l = Link{a: a, b: b}
	*d0 = linkDir{from: a, to: b, cfg: ab}
	*d1 = linkDir{from: b, to: a, cfg: ba}
	l.dirs[0], l.dirs[1] = d0, d1
	a.links = append(a.links, l)
	b.links = append(b.links, l)
	s.planDirty = true
	return l
}

// Peer returns the node on the other end of the link from n.
func (l *Link) Peer(n *Node) *Node {
	if n == l.a {
		return l.b
	}
	return l.a
}

// SetQueue replaces the egress queue discipline for the direction
// originating at from (e.g. a DiffServ priority queue at an ISP edge).
// Packets waiting in the old queue are transferred to the new one in
// order; any the new discipline refuses are dropped (and released).
func (l *Link) SetQueue(from *Node, q Queue) error {
	d := l.dir(from)
	if d == nil {
		return ErrNotConnected
	}
	old := d.queue
	if old == q {
		return nil
	}
	d.queue = q
	for old != nil {
		p := old.Dequeue()
		if p == nil {
			break
		}
		if !q.Enqueue(p) {
			d.dropped++
			d.from.sh.mLinkQDrop.Inc()
			p.cause = CauseQueueFull
			d.from.sh.emit(TraceDropQueue, from, p)
			p.Release()
		}
	}
	return nil
}

// Stats reports packets sent and dropped in the direction from the given
// node. Per-link counts stay on the linkDir (registering a metric family
// per link would explode cardinality on metro topologies); the registry
// carries the per-shard aggregates (netem_link_tx_packets_total,
// netem_link_queue_drops_total), incremented at the same sites.
func (l *Link) Stats(from *Node) (sent, dropped uint64) {
	d := l.dir(from)
	if d == nil {
		return 0, 0
	}
	return d.sent, d.dropped
}

// QueueLen reports the current egress queue length in the direction from
// the given node.
func (l *Link) QueueLen(from *Node) int {
	d := l.dir(from)
	if d == nil || d.queue == nil {
		return 0
	}
	return d.queue.Len()
}

func (l *Link) dir(from *Node) *linkDir {
	if from == l.a {
		return l.dirs[0]
	}
	if from == l.b {
		return l.dirs[1]
	}
	return nil
}

// transmit enqueues p for transmission from node from across the link,
// taking ownership of the packet's reference.
func (l *Link) transmit(from *Node, p *Packet) {
	d := l.dir(from)
	if d == nil {
		p.Release()
		return
	}
	sh := d.from.sh
	if len(p.Pkt) >= 2 {
		p.DSCP = p.Pkt[1] >> 2
	}
	p.Size = len(p.Pkt)
	p.Arrived = sh.now
	if d.queue == nil {
		d.queue = NewFIFOQueue(d.cfg.QueueLen)
	}
	if !d.queue.Enqueue(p) {
		d.dropped++
		sh.mLinkQDrop.Inc()
		p.cause = CauseQueueFull
		sh.emit(TraceDropQueue, from, p)
		p.Release()
		return
	}
	if !d.busy {
		d.startTransmission()
	}
}

// startTransmission pulls the next packet and schedules its departure
// event (a typed event: no closure, no allocation).
func (d *linkDir) startTransmission() {
	p := d.queue.Dequeue()
	if p == nil {
		d.busy = false
		return
	}
	d.busy = true
	serialize := time.Duration(0)
	if rate := d.cfg.RateBps; rate > 0 {
		if d.fluidBps > 0 {
			// Fluid background load consumes capacity: packets serialize at
			// the residual rate, floored so a saturating fluid can slow the
			// measured path by at most 100x rather than stall it.
			if rate -= d.fluidBps; rate < d.cfg.RateBps*fluidResidualFloor {
				rate = d.cfg.RateBps * fluidResidualFloor
			}
		}
		sec := float64(p.Size*8) / rate
		serialize = time.Duration(math.Round(sec * float64(time.Second)))
	}
	sh := d.from.sh
	p.attrQueue += int64(sh.now.Sub(p.Arrived))
	p.attrSer += int64(serialize)
	sh.schedule(sh.now.Add(serialize), event{kind: evDepart, dir: d, pkt: p})
}

// depart completes a serialization: the line is free for the next packet
// and p arrives at the far end after propagation. An arrival on another
// shard is staged in the outbox — the propagation delay of every
// cross-shard link is at least the engine's lookahead, which is what
// makes deferring it to the epoch barrier safe.
func (d *linkDir) depart(p *Packet) {
	d.sent++
	d.from.sh.mLinkTx.Inc()
	src, dst := d.from.sh, d.to.sh
	p.attrProp += int64(d.cfg.Delay)
	at := src.now.Add(d.cfg.Delay)
	ev := event{kind: evArrive, node: d.to, pkt: p}
	if dst == src {
		src.schedule(at, ev)
	} else {
		src.sendRemote(dst, at, ev)
	}
	d.startTransmission()
}
