package netem

import (
	"fmt"
	"math/bits"
	"net/netip"
	"time"
)

// BackboneSpec parameterizes a continental-scale topology: N metros —
// each a full BuildFanout subtree with its own address blocks, anycast
// neutralizer address, and shard(s) — stitched through one transit-core
// router with wide-area propagation delays.
//
//	          ┌── metro 0 (transit ── border ── edges ── hosts)
//	 core ────┼── metro 1
//	(shard 0) └── … metro N-1 (shards 1+m·K … )
//
// Addressing plan, explicit and validated (overlapping metros are
// rejected, not implied): metro m's customer block is the m-th
// power-of-two-sized slice of 10.0.0.0/9 large enough for
// HostsPerMetro+1 addresses, its outside block the m-th slice of
// 172.16.0.0/12 sized for OutsidePerMetro+1, and its neutralizer
// anycast address 10.224.0.0/11 base + m·256 + 1. A spec whose metros
// would not fit those spaces fails to build.
type BackboneSpec struct {
	// Metros is the number of metro subtrees (required, 1..4096).
	Metros int
	// HostsPerMetro is the customer-host count per metro (required).
	HostsPerMetro int
	// HostsPerEdge bounds one edge router's fan-out (default 256).
	HostsPerEdge int
	// OutsidePerMetro is the outside-user count per metro (default 1).
	OutsidePerMetro int
	// ShardsPerMetro spreads each metro's edge subtrees over K shards
	// (default 1: one shard per metro). The core always runs on shard 0.
	// Kept deliberately coarse: cross-shard outboxes are O(shards²), so
	// dozens of shards is the sweet spot, not one per edge.
	ShardsPerMetro int
	// CoreLink configures the metro-gateway↔core links. A zero Delay
	// gets a deterministic per-metro spread (2ms + (7m mod 29)ms — the
	// wide-area delays that bound the engine's lookahead).
	CoreLink LinkConfig
	// HostLink, EdgeLink, TransitLink, OutsideLink pass through to each
	// metro's FanoutSpec. EdgeLink must keep a positive delay when
	// ShardsPerMetro > 1.
	HostLink, EdgeLink, TransitLink, OutsideLink LinkConfig
	// FluidBpsPerEdge, when positive, attaches a fluid background
	// aggregate of this mean rate to both directions of every
	// border↔edge link at StartFluid time (see fluid.go for what fluid
	// load does and does not model).
	FluidBpsPerEdge float64
	// FluidJitterFrac and FluidInterval configure those aggregates
	// (defaults 0.2 and 100ms).
	FluidJitterFrac float64
	FluidInterval   time.Duration
}

// Backbone is a built multi-metro topology.
type Backbone struct {
	Sim    *Simulator
	Spec   BackboneSpec
	Core   *Node
	Metros []*Fanout

	fluid []*FluidFlow
}

// Backbone address spaces (see BackboneSpec doc).
var (
	backboneCustomerSpace = netip.MustParsePrefix("10.0.0.0/9")
	backboneOutsideSpace  = netip.MustParsePrefix("172.16.0.0/12")
	backboneAnycastBase   = netip.MustParseAddr("10.224.0.1")
)

// blockSizeFor returns the power-of-two block size holding want
// addresses (builders burn address 0 of a block, hence the +1 at calls).
func blockSizeFor(want int) uint32 {
	if want < 1 {
		want = 1
	}
	return uint32(1) << bits.Len32(uint32(want-1))
}

// backbonePlan carves the per-metro address blocks, validating that the
// whole spec fits its spaces.
func backbonePlan(spec BackboneSpec) (customer, outside []netip.Prefix, anycast []netip.Addr, err error) {
	custSize := blockSizeFor(spec.HostsPerMetro + 1)
	outSize := blockSizeFor(spec.OutsidePerMetro + 1)
	custSpace := uint64(1) << (32 - uint(backboneCustomerSpace.Bits()))
	outSpace := uint64(1) << (32 - uint(backboneOutsideSpace.Bits()))
	if uint64(spec.Metros)*uint64(custSize) > custSpace {
		return nil, nil, nil, fmt.Errorf("netem: %d metros × %d-address customer blocks exceed %v",
			spec.Metros, custSize, backboneCustomerSpace)
	}
	if uint64(spec.Metros)*uint64(outSize) > outSpace {
		return nil, nil, nil, fmt.Errorf("netem: %d metros × %d-address outside blocks exceed %v",
			spec.Metros, outSize, backboneOutsideSpace)
	}
	custBits := 32 - bits.Len32(custSize-1)
	outBits := 32 - bits.Len32(outSize-1)
	custBase := ipv4ToUint(backboneCustomerSpace.Addr())
	outBase := ipv4ToUint(backboneOutsideSpace.Addr())
	anyBase := ipv4ToUint(backboneAnycastBase)
	for m := 0; m < spec.Metros; m++ {
		customer = append(customer, netip.PrefixFrom(uintToIPv4(custBase+uint32(m)*custSize), custBits))
		outside = append(outside, netip.PrefixFrom(uintToIPv4(outBase+uint32(m)*outSize), outBits))
		anycast = append(anycast, uintToIPv4(anyBase+uint32(m)*256))
	}
	return customer, outside, anycast, nil
}

// backboneMetroDelay is the deterministic wide-area delay spread used
// when CoreLink.Delay is zero: distinct per metro, never less than 2ms,
// a pure function of the metro index (replay-stable).
func backboneMetroDelay(m int) time.Duration {
	return (2 + time.Duration(m*7%29)) * time.Millisecond
}

// BuildBackbone stamps the multi-metro topology onto a fresh simulator.
// Metro m's nodes are named "m<m>/…" ("m3/border"); its hosts are
// compact (anonymous, slab-allocated — reach them via
// Backbone.Metros[m].Hosts). The core installs three routes per metro —
// customer block, outside block, anycast /32 — so core routing state is
// O(metros) and every router's total state is O(edges + metros) at any
// host count.
func BuildBackbone(sim *Simulator, spec BackboneSpec) (*Backbone, error) {
	if spec.Metros < 1 || spec.Metros > 4096 {
		return nil, fmt.Errorf("netem: backbone needs 1..4096 metros, got %d", spec.Metros)
	}
	if spec.HostsPerMetro <= 0 {
		return nil, fmt.Errorf("netem: backbone needs at least 1 host per metro, got %d", spec.HostsPerMetro)
	}
	if spec.OutsidePerMetro <= 0 {
		spec.OutsidePerMetro = 1
	}
	if spec.ShardsPerMetro <= 0 {
		spec.ShardsPerMetro = 1
	}
	if spec.FluidJitterFrac == 0 {
		spec.FluidJitterFrac = 0.2
	}
	customer, outside, anycast, err := backbonePlan(spec)
	if err != nil {
		return nil, err
	}
	if spec.CoreLink.Delay < 0 {
		return nil, fmt.Errorf("netem: negative CoreLink delay")
	}

	bb := &Backbone{Sim: sim, Spec: spec}
	sim.SetShardCount(1 + spec.Metros*spec.ShardsPerMetro)
	core, err := sim.AddNode("core", "transit-core")
	if err != nil {
		return nil, err
	}
	bb.Core = core
	bb.Metros = make([]*Fanout, 0, spec.Metros)
	for m := 0; m < spec.Metros; m++ {
		shards := make([]int, spec.ShardsPerMetro)
		for k := range shards {
			shards[k] = 1 + m*spec.ShardsPerMetro + k
		}
		f, err := BuildFanout(sim, FanoutSpec{
			Hosts:        spec.HostsPerMetro,
			HostsPerEdge: spec.HostsPerEdge,
			Outside:      spec.OutsidePerMetro,
			Anycast:      anycast[m],
			CustomerNet:  customer[m],
			OutsideNet:   outside[m],
			NamePrefix:   fmt.Sprintf("m%d/", m),
			HostLink:     spec.HostLink,
			EdgeLink:     spec.EdgeLink,
			TransitLink:  spec.TransitLink,
			OutsideLink:  spec.OutsideLink,
			Shards:       shards,
			CompactHosts: true,
		})
		if err != nil {
			return nil, fmt.Errorf("metro %d: %w", m, err)
		}
		cl := spec.CoreLink
		if cl.Delay == 0 {
			cl.Delay = backboneMetroDelay(m)
		}
		up := sim.Connect(f.Transit, core, cl)
		f.Transit.AddRoute(defaultRoute, up)
		core.AddRoute(customer[m], up)
		core.AddRoute(outside[m], up)
		core.AddRoute(netip.PrefixFrom(anycast[m], 32), up)
		bb.Metros = append(bb.Metros, f)
	}
	return bb, nil
}

// Metro returns metro m's fan-out.
func (bb *Backbone) Metro(m int) *Fanout { return bb.Metros[m] }

// HostAddr returns the address of host i in metro m.
func (bb *Backbone) HostAddr(m, i int) netip.Addr { return bb.Metros[m].HostAddr(i) }

// StartFluid attaches (first call) and starts the configured background
// aggregates on every border↔edge link, offering load for duration d of
// virtual time. No-op when FluidBpsPerEdge is zero.
func (bb *Backbone) StartFluid(d time.Duration) error {
	if bb.Spec.FluidBpsPerEdge <= 0 {
		return nil
	}
	if bb.fluid == nil {
		cfg := FluidConfig{
			RateBps:    bb.Spec.FluidBpsPerEdge,
			JitterFrac: bb.Spec.FluidJitterFrac,
			Interval:   bb.Spec.FluidInterval,
		}
		for _, f := range bb.Metros {
			for e, l := range f.EdgeLinks {
				up, err := bb.Sim.AttachFluid(l, f.Edges[e], cfg)
				if err != nil {
					return err
				}
				down, err := bb.Sim.AttachFluid(l, f.Border, cfg)
				if err != nil {
					return err
				}
				bb.fluid = append(bb.fluid, up, down)
			}
		}
	}
	for _, fl := range bb.fluid {
		fl.Start(d)
	}
	return nil
}
