package netem

import (
	"testing"
	"time"
)

func TestBuildFanoutRouting(t *testing.T) {
	s := NewSimulator(simStart, 1)
	f, err := BuildFanout(s, FanoutSpec{Hosts: 600, HostsPerEdge: 100, Outside: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Edges) != 6 || len(f.Hosts) != 600 || len(f.Outside) != 2 {
		t.Fatalf("tiers = %d edges, %d hosts, %d outside", len(f.Edges), len(f.Hosts), len(f.Outside))
	}

	// Outside -> any host crosses transit, border, an edge (3 forwards).
	delivered := f.CountDeliveries()
	for _, i := range []int{0, 99, 100, 599} {
		if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(i), nil)); err != nil {
			t.Fatalf("send to host %d: %v", i, err)
		}
	}
	s.Run()
	if delivered.Total() != 4 {
		t.Fatalf("delivered %d/4 downstream packets", delivered.Total())
	}

	// Host -> outside works via default routes.
	got := false
	f.Outside[1].SetHandler(func(time.Time, []byte) { got = true })
	if err := f.Hosts[42].Send(mkUDP(t, f.HostAddr(42), f.OutsideAddr(1), nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !got {
		t.Fatal("upstream packet undelivered")
	}

	// Anycast from outside terminates at the border (neutralizer site).
	atBorder := false
	f.Border.SetHandler(func(time.Time, []byte) { atBorder = true })
	if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.Spec.Anycast, nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if !atBorder {
		t.Fatal("anycast packet did not reach the border")
	}

	// The border resolves hosts through prefix-compressed routes: one
	// range route per edge plus the default — O(edges) state, never
	// O(hosts).
	if n := f.Border.RouteCount(); n != len(f.Edges)+1 {
		t.Errorf("border has %d routes, want %d (one range per edge + default)", n, len(f.Edges)+1)
	}
	// Each edge holds its whole customer fan-out as one block route.
	if n := f.Edges[0].RouteCount(); n != 2 {
		t.Errorf("edge0 has %d routes, want 2 (host block + default)", n)
	}
}

// TestBuildFanoutCompactHosts: the slab-allocated anonymous-host path
// must route identically to the named path.
func TestBuildFanoutCompactHosts(t *testing.T) {
	s := NewSimulator(simStart, 1)
	f, err := BuildFanout(s, FanoutSpec{Hosts: 300, HostsPerEdge: 128, CompactHosts: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Node("host0"); got != nil {
		t.Fatal("compact hosts must not be name-resolvable")
	}
	if got := s.NodeByAddr(f.HostAddr(299)); got != f.Hosts[299] {
		t.Fatalf("NodeByAddr(%v) = %v, want host 299", f.HostAddr(299), got)
	}
	delivered := f.CountDeliveries()
	for _, i := range []int{0, 127, 128, 299} {
		if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(i), nil)); err != nil {
			t.Fatalf("send to host %d: %v", i, err)
		}
	}
	got := false
	f.Outside[0].SetHandler(func(time.Time, []byte) { got = true })
	if err := f.Hosts[200].Send(mkUDP(t, f.HostAddr(200), f.OutsideAddr(0), nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered.Total() != 4 || !got {
		t.Fatalf("delivered %d/4 downstream, upstream=%v", delivered.Total(), got)
	}
}

func TestBuildFanoutRejectsBadSpecs(t *testing.T) {
	s := NewSimulator(simStart, 1)
	if _, err := BuildFanout(s, FanoutSpec{Hosts: 0}); err == nil {
		t.Error("zero hosts accepted")
	}
	if _, err := BuildFanout(s, FanoutSpec{Hosts: 1 << 23}); err == nil {
		t.Error("hosts exceeding the customer block accepted")
	}
}

// TestBuildFanoutScales: a 20k-host build must stay well under a second
// and route end to end.
func TestBuildFanoutScales(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	s := NewSimulator(simStart, 1)
	start := time.Now()
	f, err := BuildFanout(s, FanoutSpec{Hosts: 20000})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Errorf("20k-host build took %v", el)
	}
	delivered := f.CountDeliveries()
	if err := f.Outside[0].Send(mkUDP(t, f.OutsideAddr(0), f.HostAddr(19999), nil)); err != nil {
		t.Fatal(err)
	}
	s.Run()
	if delivered.Total() != 1 {
		t.Fatal("last host unreachable")
	}
}
